// Decoding-algorithm behaviour, run across architectures where relevant.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "core/deadline.h"
#include "decode/beam.h"
#include "decode/diverse_beam.h"
#include "decode/greedy.h"
#include "decode/nucleus.h"
#include "decode/topn_sampling.h"
#include "nmt/scorer.h"
#include "nmt/transformer.h"
#include "rewrite/trainer.h"
#include "text/vocabulary.h"

namespace cyqr {
namespace {

Seq2SeqConfig SmallConfig() {
  Seq2SeqConfig config;
  config.vocab_size = 20;
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.num_layers = 1;
  config.dropout = 0.0f;
  return config;
}

/// A small trained model so decoding has meaningful structure.
class DecodeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(11);
    model_ = std::make_unique<TransformerSeq2Seq>(SmallConfig(), rng);
    const std::vector<SeqPair> data = {
        {{4, 5}, {10, 11, 12}},
        {{6, 7}, {13, 14}},
        {{8}, {15, 16}},
    };
    SupervisedTrainOptions options;
    options.max_steps = 200;
    options.batch_size = 3;
    TrainSupervised(*model_, data, options);
    model_->SetTraining(false);
  }
  static void TearDownTestSuite() {
    model_.reset();
    model_ = nullptr;
  }

  static std::unique_ptr<TransformerSeq2Seq> model_;
};

std::unique_ptr<TransformerSeq2Seq> DecodeTest::model_;

TEST_F(DecodeTest, GreedyReproducesTrainingTarget) {
  DecodeOptions options;
  options.max_len = 6;
  EXPECT_EQ(GreedyDecode(*model_, {4, 5}, options).ids,
            (std::vector<int32_t>{10, 11, 12}));
}

TEST_F(DecodeTest, GreedyLogProbMatchesSequenceScore) {
  DecodeOptions options;
  options.max_len = 6;
  const DecodedSequence out = GreedyDecode(*model_, {4, 5}, options);
  // Greedy accumulates log p per chosen token including EOS; scoring the
  // same sequence under teacher forcing must agree.
  EXPECT_NEAR(out.log_prob, ScoreSequence(*model_, {4, 5}, out.ids), 1e-3);
}

TEST_F(DecodeTest, BeamWidthOneEqualsGreedy) {
  DecodeOptions options;
  options.beam_size = 1;
  options.max_len = 6;
  const auto beam = BeamSearchDecode(*model_, {4, 5}, options);
  ASSERT_EQ(beam.size(), 1u);
  EXPECT_EQ(beam[0].ids, GreedyDecode(*model_, {4, 5}, options).ids);
}

TEST_F(DecodeTest, BeamReturnsSortedScores) {
  DecodeOptions options;
  options.beam_size = 3;
  options.max_len = 6;
  const auto beam = BeamSearchDecode(*model_, {4, 5}, options);
  ASSERT_GE(beam.size(), 2u);
  for (size_t i = 1; i < beam.size(); ++i) {
    EXPECT_GE(beam[i - 1].log_prob, beam[i].log_prob);
  }
}

TEST_F(DecodeTest, BeamTopHypothesisAtLeastAsGoodAsGreedy) {
  DecodeOptions options;
  options.beam_size = 4;
  options.max_len = 6;
  const auto beam = BeamSearchDecode(*model_, {6, 7}, options);
  const DecodedSequence greedy = GreedyDecode(*model_, {6, 7}, options);
  ASSERT_FALSE(beam.empty());
  EXPECT_GE(beam[0].log_prob, greedy.log_prob - 1e-4);
}

TEST_F(DecodeTest, TopNSamplingFirstTokensAreDistinct) {
  // Figure 4: at the first step the k most likely DISTINCT tokens are
  // assigned one per candidate.
  DecodeOptions options;
  options.beam_size = 3;
  options.top_n = 5;
  options.max_len = 6;
  const auto out = TopNSamplingDecode(*model_, {4, 5}, options);
  ASSERT_EQ(out.size(), 3u);
  std::set<int32_t> first_tokens;
  for (const auto& s : out) {
    ASSERT_FALSE(s.ids.empty());
    first_tokens.insert(s.ids[0]);
  }
  EXPECT_EQ(first_tokens.size(), 3u);
}

TEST_F(DecodeTest, TopNSamplingDeterministicPerSeed) {
  DecodeOptions options;
  options.beam_size = 3;
  options.max_len = 6;
  options.seed = 42;
  const auto a = TopNSamplingDecode(*model_, {4, 5}, options);
  const auto b = TopNSamplingDecode(*model_, {4, 5}, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ids, b[i].ids);
    EXPECT_DOUBLE_EQ(a[i].log_prob, b[i].log_prob);
  }
}

TEST_F(DecodeTest, TopNSamplingRespectsTopNPool) {
  // With top_n = 1 every step after the first is greedy, so candidate 0
  // (seeded with the argmax first token) must equal the greedy sequence.
  DecodeOptions options;
  options.beam_size = 3;
  options.top_n = 1;
  options.max_len = 6;
  const auto out = TopNSamplingDecode(*model_, {4, 5}, options);
  const DecodedSequence greedy = GreedyDecode(*model_, {4, 5}, options);
  bool found = false;
  for (const auto& s : out) {
    if (s.ids == greedy.ids) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(DecodeTest, DiverseBeamReturnsRequestedCount) {
  DecodeOptions options;
  options.beam_size = 3;
  options.num_groups = 3;
  options.max_len = 6;
  const auto out = DiverseBeamSearchDecode(*model_, {4, 5}, options);
  EXPECT_LE(out.size(), 3u);
  EXPECT_GE(out.size(), 1u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].log_prob, out[i].log_prob);
  }
}

TEST_F(DecodeTest, DiverseBeamFirstTokensMoreDiverseThanPlainBeam) {
  DecodeOptions options;
  options.beam_size = 3;
  options.num_groups = 3;
  options.diversity_penalty = 2.0f;
  options.max_len = 6;
  const auto diverse = DiverseBeamSearchDecode(*model_, {4, 5}, options);
  std::set<int32_t> diverse_first;
  for (const auto& s : diverse) {
    if (!s.ids.empty()) diverse_first.insert(s.ids[0]);
  }
  const auto plain = BeamSearchDecode(*model_, {4, 5}, options);
  std::set<int32_t> plain_first;
  for (const auto& s : plain) {
    if (!s.ids.empty()) plain_first.insert(s.ids[0]);
  }
  EXPECT_GE(diverse_first.size(), plain_first.size());
}

TEST_F(DecodeTest, BeamLengthPenaltyPrefersLongerHypotheses) {
  DecodeOptions plain;
  plain.beam_size = 4;
  plain.max_len = 6;
  DecodeOptions normalized = plain;
  normalized.length_penalty = 2.0f;
  const auto a = BeamSearchDecode(*model_, {4, 5}, plain);
  const auto b = BeamSearchDecode(*model_, {4, 5}, normalized);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  // Normalization divides by a length factor, so the top normalized
  // hypothesis is at least as long as the top raw one, and the average
  // returned length does not shrink.
  EXPECT_GE(b[0].ids.size(), a[0].ids.size());
  double raw_len = 0.0;
  for (const auto& s : a) raw_len += static_cast<double>(s.ids.size());
  double norm_len = 0.0;
  for (const auto& s : b) norm_len += static_cast<double>(s.ids.size());
  EXPECT_GE(norm_len / b.size(), raw_len / a.size());
}

TEST_F(DecodeTest, NucleusFirstTokensDistinct) {
  DecodeOptions options;
  options.beam_size = 3;
  options.max_len = 6;
  const auto out = NucleusSamplingDecode(*model_, {4, 5}, options);
  ASSERT_EQ(out.size(), 3u);
  std::set<int32_t> first;
  for (const auto& s : out) {
    ASSERT_FALSE(s.ids.empty());
    first.insert(s.ids[0]);
  }
  EXPECT_EQ(first.size(), 3u);
}

TEST_F(DecodeTest, NucleusTinyTopPIsGreedyAfterFirstToken) {
  // top_p -> 0 keeps only the argmax token in the nucleus.
  DecodeOptions options;
  options.beam_size = 3;
  options.max_len = 6;
  NucleusOptions nucleus;
  nucleus.top_p = 1e-6;
  const auto out = NucleusSamplingDecode(*model_, {4, 5}, options, nucleus);
  const DecodedSequence greedy = GreedyDecode(*model_, {4, 5}, options);
  bool found = false;
  for (const auto& s : out) {
    if (s.ids == greedy.ids) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(DecodeTest, NucleusDeterministicPerSeed) {
  DecodeOptions options;
  options.beam_size = 3;
  options.max_len = 6;
  options.seed = 77;
  const auto a = NucleusSamplingDecode(*model_, {6, 7}, options);
  const auto b = NucleusSamplingDecode(*model_, {6, 7}, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ids, b[i].ids);
  }
}

TEST_F(DecodeTest, NoSpecialTokensInOutput) {
  DecodeOptions options;
  options.beam_size = 4;
  options.max_len = 8;
  for (const auto& s : BeamSearchDecode(*model_, {8}, options)) {
    for (int32_t id : s.ids) {
      EXPECT_GE(id, kNumSpecialTokens);
    }
  }
  for (const auto& s : TopNSamplingDecode(*model_, {8}, options)) {
    for (int32_t id : s.ids) {
      EXPECT_GE(id, kNumSpecialTokens);
    }
  }
}

TEST_F(DecodeTest, MaxLenIsRespected) {
  DecodeOptions options;
  options.beam_size = 2;
  options.max_len = 2;
  for (const auto& s : BeamSearchDecode(*model_, {4, 5}, options)) {
    EXPECT_LE(s.ids.size(), 2u);
  }
  for (const auto& s : TopNSamplingDecode(*model_, {4, 5}, options)) {
    EXPECT_LE(s.ids.size(), 2u);
  }
}

TEST_F(DecodeTest, ExpiredDeadlineStopsEveryDecoderBeforeTheFirstStep) {
  // Regression for the serving deadline-propagation fix: a decoder handed
  // an already-expired deadline must not run a single model step. Every
  // surviving hypothesis is therefore the empty root.
  Deadline deadline = Deadline::AfterMillis(0);
  deadline.Charge(1.0);  // Deterministically expired (virtual time).
  ASSERT_TRUE(deadline.Expired());
  DecodeOptions options;
  options.beam_size = 3;
  options.max_len = 8;
  options.deadline = &deadline;

  EXPECT_TRUE(GreedyDecode(*model_, {4, 5}, options).ids.empty());
  for (const auto& s : BeamSearchDecode(*model_, {4, 5}, options)) {
    EXPECT_TRUE(s.ids.empty());
  }
  for (const auto& s : DiverseBeamSearchDecode(*model_, {4, 5}, options)) {
    EXPECT_TRUE(s.ids.empty());
  }
  for (const auto& s : NucleusSamplingDecode(*model_, {4, 5}, options)) {
    EXPECT_TRUE(s.ids.empty());
  }
  for (const auto& s : TopNSamplingDecode(*model_, {4, 5}, options)) {
    EXPECT_TRUE(s.ids.empty());
  }
}

TEST_F(DecodeTest, MidDecodeExpiryReturnsTruncatedHypotheses) {
  // A deadline that expires after construction but before the decode ends:
  // charge the budget away between steps by observing that the per-step
  // check bounds output length. With a generous budget the decode is
  // unaffected and matches the unbounded result exactly.
  DecodeOptions unbounded;
  unbounded.max_len = 6;
  const DecodedSequence reference = GreedyDecode(*model_, {4, 5}, unbounded);

  Deadline generous = Deadline::AfterMillis(60000);
  DecodeOptions bounded = unbounded;
  bounded.deadline = &generous;
  EXPECT_EQ(GreedyDecode(*model_, {4, 5}, bounded).ids, reference.ids);

  // An infinite deadline never expires regardless of charged time.
  Deadline infinite = Deadline::Infinite();
  infinite.Charge(1e9);
  bounded.deadline = &infinite;
  EXPECT_EQ(GreedyDecode(*model_, {4, 5}, bounded).ids, reference.ids);
}

}  // namespace
}  // namespace cyqr
