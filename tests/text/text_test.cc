#include <gtest/gtest.h>

#include "text/ngram.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace cyqr {
namespace {

TEST(TokenizerTest, LowercasesAndStripsPunctuation) {
  Tokenizer tok;
  auto out = tok.Tokenize("Red Mens Sandals! (Size-42)");
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], "red");
  EXPECT_EQ(out[3], "size");
  EXPECT_EQ(out[4], "42");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("  \t . , !").empty());
}

TEST(TokenizerTest, DetokenizeJoins) {
  Tokenizer tok;
  EXPECT_EQ(tok.Detokenize({"senior", "phone"}), "senior phone");
}

TEST(VocabularyTest, SpecialsAreReserved) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.size(), 4);
  EXPECT_EQ(vocab.Token(kPadId), "<pad>");
  EXPECT_EQ(vocab.Token(kBosId), "<bos>");
  EXPECT_EQ(vocab.Token(kEosId), "<eos>");
  EXPECT_EQ(vocab.Token(kUnkId), "<unk>");
}

TEST(VocabularyTest, BuildOrdersByFrequency) {
  Vocabulary vocab = Vocabulary::Build({{"b", "a", "b"}, {"b", "a", "c"}});
  // b (3) before a (2) before c (1).
  EXPECT_EQ(vocab.Id("b"), kNumSpecialTokens);
  EXPECT_EQ(vocab.Id("a"), kNumSpecialTokens + 1);
  EXPECT_EQ(vocab.Id("c"), kNumSpecialTokens + 2);
}

TEST(VocabularyTest, MinCountFiltersRareTokens) {
  Vocabulary vocab = Vocabulary::Build({{"common", "common", "rare"}}, 2);
  EXPECT_NE(vocab.Id("common"), kUnkId);
  EXPECT_EQ(vocab.Id("rare"), kUnkId);
}

TEST(VocabularyTest, MaxSizeCaps) {
  Vocabulary vocab =
      Vocabulary::Build({{"a", "a", "b", "b", "c"}}, 1, /*max_size=*/6);
  EXPECT_EQ(vocab.size(), 6);  // 4 specials + 2 most frequent.
  EXPECT_NE(vocab.Id("a"), kUnkId);
  EXPECT_EQ(vocab.Id("c"), kUnkId);
}

TEST(VocabularyTest, EncodeDecodeRoundTrip) {
  Vocabulary vocab = Vocabulary::Build({{"senior", "phone"}});
  auto ids = vocab.Encode({"senior", "phone", "nonexistent"});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[2], kUnkId);
  auto tokens = vocab.Decode(ids);
  ASSERT_EQ(tokens.size(), 2u);  // <unk> dropped.
  EXPECT_EQ(tokens[0], "senior");
  EXPECT_EQ(vocab.DecodeToString(ids), "senior phone");
}

TEST(VocabularyTest, SaveLoadRoundTrip) {
  Vocabulary vocab = Vocabulary::Build({{"senior", "phone", "senior"}});
  const std::string path = testing::TempDir() + "/vocab.txt";
  ASSERT_TRUE(vocab.Save(path).ok());
  Result<Vocabulary> loaded = Vocabulary::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), vocab.size());
  EXPECT_EQ(loaded.value().Id("senior"), vocab.Id("senior"));
  EXPECT_EQ(loaded.value().Id("phone"), vocab.Id("phone"));
  EXPECT_EQ(loaded.value().Token(kEosId), "<eos>");
}

TEST(VocabularyTest, LoadMissingFileFails) {
  EXPECT_FALSE(Vocabulary::Load("/nonexistent/vocab.txt").ok());
}

TEST(NGramTest, UniAndBigramSet) {
  auto set = UniAndBigramSet({"a", "b", "c"});
  // 3 unigrams + 2 bigrams.
  EXPECT_EQ(set.size(), 5u);
  EXPECT_TRUE(set.count("a"));
  EXPECT_TRUE(set.count(std::string("a") + '\x01' + "b"));
}

TEST(NGramTest, NGramsOrders) {
  EXPECT_EQ(NGrams({"a", "b", "c"}, 1).size(), 3u);
  EXPECT_EQ(NGrams({"a", "b", "c"}, 2).size(), 2u);
  EXPECT_EQ(NGrams({"a", "b", "c"}, 3).size(), 1u);
  EXPECT_TRUE(NGrams({"a", "b", "c"}, 4).empty());
  EXPECT_TRUE(NGrams({"a"}, 0).empty());
}

TEST(NGramTest, DistinctNGramsAcrossSequences) {
  // "a b" and "a c": unigrams {a,b,c}, bigrams {ab, ac} -> 5 distinct.
  EXPECT_EQ(DistinctNGrams({{"a", "b"}, {"a", "c"}}, 2), 5u);
  // Identical sequences add nothing.
  EXPECT_EQ(DistinctNGrams({{"a", "b"}, {"a", "b"}}, 2), 3u);
}

}  // namespace
}  // namespace cyqr
