#include <gtest/gtest.h>

#include <memory>

#include "baseline/rule_based.h"
#include "baseline/simrank.h"

namespace cyqr {
namespace {

TEST(RuleBasedTest, ReplacesColloquialPhrase) {
  SynonymDictionary dict;
  dict.Add("for grandpa", "senior");
  RuleBasedRewriter rewriter(&dict);
  const auto out = rewriter.Rewrite({"phone", "for", "grandpa"});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::vector<std::string>{"phone", "senior"}));
}

TEST(RuleBasedTest, MultipleSitesGiveMultipleRewrites) {
  SynonymDictionary dict;
  dict.Add("cellphone", "smartphone");
  dict.Add("cheap", "budget");
  RuleBasedRewriter rewriter(&dict);
  const auto out = rewriter.Rewrite({"cheap", "cellphone"}, 3);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (std::vector<std::string>{"budget", "cellphone"}));
  EXPECT_EQ(out[1], (std::vector<std::string>{"cheap", "smartphone"}));
}

TEST(RuleBasedTest, RespectsK) {
  SynonymDictionary dict;
  dict.Add("a", "x");
  dict.Add("b", "y");
  dict.Add("c", "z");
  RuleBasedRewriter rewriter(&dict);
  EXPECT_EQ(rewriter.Rewrite({"a", "b", "c"}, 2).size(), 2u);
}

TEST(RuleBasedTest, NoMatchGivesNoRewrites) {
  SynonymDictionary dict;
  dict.Add("foo", "bar");
  RuleBasedRewriter rewriter(&dict);
  EXPECT_TRUE(rewriter.Rewrite({"phone", "case"}).empty());
  EXPECT_FALSE(rewriter.HasSynonym({"phone", "case"}));
  EXPECT_TRUE(rewriter.HasSynonym({"foo", "case"}));
}

TEST(RuleBasedTest, RewritesAreLexicallyClose) {
  // The Table VII observation: rule rewrites change one phrase only.
  SynonymDictionary dict;
  dict.Add("sneakers", "sport shoes");
  RuleBasedRewriter rewriter(&dict);
  const auto out = rewriter.Rewrite({"red", "mens", "sneakers"});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0],
            (std::vector<std::string>{"red", "mens", "sport", "shoes"}));
}

class SimRankTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = std::make_unique<Catalog>(Catalog::Generate({}));
    ClickLogConfig config;
    config.num_distinct_queries = 150;
    config.num_sessions = 4000;
    log_ = std::make_unique<ClickLog>(ClickLog::Generate(*catalog_, config));
    SimRankRewriter::Options options;
    options.iterations = 3;
    simrank_ = std::make_unique<SimRankRewriter>(log_.get(), options);
  }
  static void TearDownTestSuite() {
    simrank_.reset();
    log_.reset();
    catalog_.reset();
  }
  static std::unique_ptr<Catalog> catalog_;
  static std::unique_ptr<ClickLog> log_;
  static std::unique_ptr<SimRankRewriter> simrank_;
};

std::unique_ptr<Catalog> SimRankTest::catalog_;
std::unique_ptr<ClickLog> SimRankTest::log_;
std::unique_ptr<SimRankRewriter> SimRankTest::simrank_;

TEST_F(SimRankTest, SelfSimilarityIsOne) {
  EXPECT_DOUBLE_EQ(simrank_->Similarity(0, 0), 1.0);
}

TEST_F(SimRankTest, SimilarityIsSymmetric) {
  for (int64_t a = 0; a < 20; ++a) {
    for (int64_t b = a + 1; b < 20; ++b) {
      EXPECT_DOUBLE_EQ(simrank_->Similarity(a, b),
                       simrank_->Similarity(b, a));
    }
  }
}

TEST_F(SimRankTest, MostSimilarSortedAndBounded) {
  bool any = false;
  for (int64_t q = 0; q < static_cast<int64_t>(log_->queries().size());
       ++q) {
    const auto similar = simrank_->MostSimilar(q, 3);
    EXPECT_LE(similar.size(), 3u);
    for (size_t i = 1; i < similar.size(); ++i) {
      EXPECT_GE(similar[i - 1].similarity, similar[i].similarity);
    }
    if (!similar.empty()) any = true;
  }
  EXPECT_TRUE(any);
}

TEST_F(SimRankTest, SimilarQueriesShareCategory) {
  // Co-click similarity should mostly surface same-intent queries.
  int64_t checked = 0;
  int64_t same_category = 0;
  for (int64_t q = 0; q < static_cast<int64_t>(log_->queries().size());
       ++q) {
    const auto similar = simrank_->MostSimilar(q, 1);
    if (similar.empty()) continue;
    ++checked;
    const auto& a = log_->queries()[q].intent;
    const auto& b = log_->queries()[similar[0].query_index].intent;
    if (a.category == b.category) ++same_category;
  }
  ASSERT_GT(checked, 20);
  EXPECT_GT(static_cast<double>(same_category) / checked, 0.9);
}

}  // namespace
}  // namespace cyqr
