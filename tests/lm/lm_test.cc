#include "lm/gpt_lm.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cyqr {
namespace {

Seq2SeqConfig SmallConfig(int64_t vocab) {
  Seq2SeqConfig config;
  config.vocab_size = vocab;
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.num_layers = 1;
  config.dropout = 0.0f;
  return config;
}

TEST(GptLmTest, ForwardShape) {
  Rng rng(1);
  GptLm model(SmallConfig(20), rng);
  EncodedBatch batch = PadBatch({{4, 5, 6}, {7, 8}});
  Tensor logits = model.Forward(batch);
  EXPECT_EQ(logits.shape(), Shape({2, 3, 20}));
}

TEST(GptLmTest, CausalityHolds) {
  // Changing a later token must not change earlier logits.
  Rng rng(2);
  GptLm model(SmallConfig(20), rng);
  model.SetTraining(false);
  NoGradGuard no_grad;
  EncodedBatch a = PadBatch({{4, 5, 6}});
  EncodedBatch b = PadBatch({{4, 5, 7}});
  Tensor la = model.Forward(a);
  Tensor lb = model.Forward(b);
  for (int64_t i = 0; i < 2 * 20; ++i) {
    EXPECT_NEAR(la.data()[i], lb.data()[i], 1e-5f);
  }
}

TEST(GptLmTest, TrainingReducesLoss) {
  Rng rng(3);
  GptLm model(SmallConfig(24), rng);
  // "query sep1 title sep2 rewrite" toy sequences.
  std::vector<std::vector<int32_t>> seqs = {
      {4, 5, 20, 10, 11, 12, 21, 6, 5},
      {7, 5, 20, 13, 14, 21, 8, 5},
  };
  LmTrainingOptions options;
  options.max_steps = 10;
  const double early = TrainLm(model, seqs, options);
  options.max_steps = 150;
  options.seed = 778;
  const double late = TrainLm(model, seqs, options);
  EXPECT_LT(late, early);
}

TEST(GptLmTest, GenerateStopsAtStopToken) {
  Rng rng(4);
  GptLm model(SmallConfig(24), rng);
  // Overfit a single pattern: 4 5 -> 20 -> 10 11 -> 21.
  std::vector<std::vector<int32_t>> seqs(4, {4, 5, 20, 10, 11, 21, 6, 5});
  LmTrainingOptions options;
  options.max_steps = 200;
  TrainLm(model, seqs, options);
  model.SetTraining(false);
  Rng gen_rng(5);
  const auto continuation =
      model.Generate({kBosId, 4, 5, 20}, /*stop_id=*/21,
                     /*max_new_tokens=*/8, /*top_n=*/1, gen_rng);
  // Greedy continuation should be the memorized "10 11" then stop at 21.
  EXPECT_EQ(continuation, (std::vector<int32_t>{10, 11}));
}

TEST(GptLmTest, GenerateRespectsMaxNewTokens) {
  Rng rng(6);
  GptLm model(SmallConfig(24), rng);
  model.SetTraining(false);
  Rng gen_rng(7);
  const auto continuation =
      model.Generate({kBosId, 4}, /*stop_id=*/23, 5, 3, gen_rng);
  EXPECT_LE(continuation.size(), 5u);
}

}  // namespace
}  // namespace cyqr
