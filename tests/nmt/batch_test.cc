#include "nmt/batch.h"

#include <gtest/gtest.h>

#include "text/vocabulary.h"

namespace cyqr {
namespace {

TEST(BatchTest, PadBatchShapesAndMask) {
  EncodedBatch b = PadBatch({{5, 6, 7}, {8}});
  EXPECT_EQ(b.batch, 2);
  EXPECT_EQ(b.max_len, 3);
  EXPECT_EQ(b.ids[0], 5);
  EXPECT_EQ(b.ids[3], 8);
  EXPECT_EQ(b.ids[4], kPadId);
  EXPECT_EQ(b.mask[2], 1.0f);
  EXPECT_EQ(b.mask[4], 0.0f);
}

TEST(BatchTest, PadBatchTruncates) {
  EncodedBatch b = PadBatch({{1, 2, 3, 4, 5}}, /*max_len_cap=*/3);
  EXPECT_EQ(b.max_len, 3);
  EXPECT_EQ(b.ids.size(), 3u);
}

TEST(BatchTest, PadBatchEmpty) {
  EncodedBatch b = PadBatch({});
  EXPECT_EQ(b.batch, 0);
  EXPECT_EQ(b.max_len, 0);
}

TEST(BatchTest, TeacherForcedShiftsInputsAndAppendsEos) {
  TeacherForcedBatch tf = MakeTeacherForced({{10, 11}});
  // Inputs: BOS 10 11; targets: 10 11 EOS.
  ASSERT_EQ(tf.inputs.max_len, 3);
  EXPECT_EQ(tf.inputs.ids[0], kBosId);
  EXPECT_EQ(tf.inputs.ids[1], 10);
  EXPECT_EQ(tf.inputs.ids[2], 11);
  EXPECT_EQ(tf.targets[0], 10);
  EXPECT_EQ(tf.targets[1], 11);
  EXPECT_EQ(tf.targets[2], kEosId);
  EXPECT_EQ(tf.target_mask[2], 1.0f);
}

TEST(BatchTest, TeacherForcedPadsShorterSequences) {
  TeacherForcedBatch tf = MakeTeacherForced({{10, 11}, {12}});
  ASSERT_EQ(tf.inputs.max_len, 3);
  // Second row: BOS 12 <pad>; targets 12 EOS (pad masked).
  EXPECT_EQ(tf.inputs.ids[3], kBosId);
  EXPECT_EQ(tf.inputs.ids[4], 12);
  EXPECT_EQ(tf.inputs.ids[5], kPadId);
  EXPECT_EQ(tf.targets[3], 12);
  EXPECT_EQ(tf.targets[4], kEosId);
  EXPECT_EQ(tf.target_mask[5], 0.0f);
}

TEST(BatchTest, CausalMaskBlocksFutureOnly) {
  auto mask = MakeCausalMask(1, 1, 3);
  // Row i blocks j > i.
  EXPECT_EQ(mask[0 * 3 + 1], -1e9f);
  EXPECT_EQ(mask[0 * 3 + 0], 0.0f);
  EXPECT_EQ(mask[2 * 3 + 0], 0.0f);
  EXPECT_EQ(mask[2 * 3 + 2], 0.0f);
  EXPECT_EQ(mask[1 * 3 + 2], -1e9f);
}

TEST(BatchTest, CausalMaskAlsoBlocksPadding) {
  std::vector<float> tgt_mask = {1.0f, 1.0f, 0.0f};
  auto mask = MakeCausalMask(1, 1, 3, tgt_mask);
  // Padding column blocked even at/below the diagonal.
  EXPECT_EQ(mask[2 * 3 + 2], -1e9f);
  EXPECT_EQ(mask[2 * 3 + 1], 0.0f);
}

TEST(BatchTest, PaddingMaskBlocksInvalidSourceColumns) {
  std::vector<float> src_mask = {1.0f, 0.0f};
  auto mask = MakePaddingMask(1, 2, 3, 2, src_mask);
  // For every head and query row, column 1 is blocked.
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(mask[(h * 3 + i) * 2 + 0], 0.0f);
      EXPECT_EQ(mask[(h * 3 + i) * 2 + 1], -1e9f);
    }
  }
}

}  // namespace
}  // namespace cyqr
