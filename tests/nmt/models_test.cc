// Cross-architecture behaviour tests: every Seq2SeqModel must expose
// consistent teacher-forced and incremental-decoding views of the same
// distribution, and must be able to overfit a tiny dataset.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "decode/greedy.h"
#include "nmt/attention_seq2seq.h"
#include "nmt/hybrid.h"
#include "nmt/rnn.h"
#include "nmt/transformer.h"
#include "rewrite/trainer.h"
#include "text/vocabulary.h"

namespace cyqr {
namespace {

Seq2SeqConfig SmallConfig() {
  Seq2SeqConfig config;
  config.vocab_size = 20;
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.num_layers = 1;
  config.dropout = 0.1f;
  return config;
}

std::unique_ptr<Seq2SeqModel> MakeByName(const std::string& name,
                                         const Seq2SeqConfig& config,
                                         Rng& rng) {
  if (name == "transformer") {
    return std::make_unique<TransformerSeq2Seq>(config, rng);
  }
  if (name == "attention-gru") return MakeAttentionSeq2Seq(config, rng);
  if (name == "pure-rnn") return MakePureRnnSeq2Seq(config, rng);
  if (name == "pure-lstm") {
    return std::make_unique<RnnSeq2Seq>(config, CellType::kLstm,
                                        CellType::kLstm,
                                        AttentionKind::kDot, rng);
  }
  if (name == "hybrid") {
    return std::make_unique<HybridSeq2Seq>(config, CellType::kRnn, rng);
  }
  return nullptr;
}

class Seq2SeqArchTest : public ::testing::TestWithParam<std::string> {};

TEST_P(Seq2SeqArchTest, ForwardShape) {
  Rng rng(1);
  auto model = MakeByName(GetParam(), SmallConfig(), rng);
  ASSERT_NE(model, nullptr);
  const EncodedBatch src = PadBatch({{4, 5, 6}, {7, 8}});
  const TeacherForcedBatch tf = MakeTeacherForced({{9, 10}, {11}});
  Tensor logits = model->Forward(src, tf.inputs);
  EXPECT_EQ(logits.shape(), Shape({2, tf.inputs.max_len, 20}));
}

TEST_P(Seq2SeqArchTest, StepMatchesTeacherForcedLogits) {
  // The incremental decoder and the teacher-forced forward pass must give
  // identical next-token distributions for the same prefix.
  Rng rng(2);
  auto model = MakeByName(GetParam(), SmallConfig(), rng);
  model->SetTraining(false);
  NoGradGuard no_grad;
  const std::vector<int32_t> src = {4, 5, 6, 7};
  const std::vector<int32_t> tgt = {9, 10, 11};

  const EncodedBatch src_batch = PadBatch({src});
  const TeacherForcedBatch tf = MakeTeacherForced({tgt});
  Tensor logits = model->Forward(src_batch, tf.inputs);

  auto state = model->StartDecode(src);
  int32_t last = kBosId;
  for (size_t t = 0; t < tgt.size() + 1; ++t) {
    const std::vector<float> step_logits = model->Step(*state, last);
    const float* tf_logits = logits.data() + t * 20;
    for (int v = 0; v < 20; ++v) {
      EXPECT_NEAR(step_logits[v], tf_logits[v], 2e-4f)
          << GetParam() << " step " << t << " vocab " << v;
    }
    if (t < tgt.size()) last = tgt[t];
  }
}

TEST_P(Seq2SeqArchTest, ClonedStatesEvolveIndependently) {
  Rng rng(3);
  auto model = MakeByName(GetParam(), SmallConfig(), rng);
  model->SetTraining(false);
  NoGradGuard no_grad;
  auto a = model->StartDecode({4, 5});
  model->Step(*a, kBosId);
  auto b = a->Clone();
  // Feed different tokens to the two states; their next logits must differ.
  const std::vector<float> la = model->Step(*a, 6);
  const std::vector<float> lb = model->Step(*b, 7);
  double diff = 0.0;
  for (int v = 0; v < 20; ++v) diff += std::fabs(la[v] - lb[v]);
  EXPECT_GT(diff, 1e-4);
  // And feeding the same token to a fresh clone reproduces the original.
  auto c = model->StartDecode({4, 5});
  model->Step(*c, kBosId);
  const std::vector<float> lc = model->Step(*c, 6);
  for (int v = 0; v < 20; ++v) EXPECT_NEAR(la[v], lc[v], 1e-5f);
}

TEST_P(Seq2SeqArchTest, OverfitsTinyDataset) {
  Rng rng(4);
  auto model = MakeByName(GetParam(), SmallConfig(), rng);
  const std::vector<SeqPair> data = {
      {{4, 5}, {10, 11, 12}},
      {{6, 7}, {13, 14}},
      {{8}, {15}},
  };
  SupervisedTrainOptions options;
  options.max_steps = 250;
  options.batch_size = 3;
  options.noam_warmup = 50;
  TrainSupervised(*model, data, options);
  model->SetTraining(false);
  for (const SeqPair& p : data) {
    DecodeOptions decode_options;
    decode_options.max_len = 6;
    const DecodedSequence out = GreedyDecode(*model, p.src, decode_options);
    EXPECT_EQ(out.ids, p.tgt) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, Seq2SeqArchTest,
                         ::testing::Values("transformer", "attention-gru",
                                           "pure-rnn", "pure-lstm",
                                           "hybrid"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(TransformerTest, AttentionCaptureProducesDistribution) {
  Rng rng(5);
  TransformerSeq2Seq model(SmallConfig(), rng);
  model.SetTraining(false);
  model.SetCaptureAttention(true);
  NoGradGuard no_grad;
  auto state = model.StartDecode({4, 5, 6});
  model.Step(*state, kBosId);
  model.Step(*state, 9);
  const auto& attn = model.LastCrossAttention();
  ASSERT_EQ(model.LastAttentionCols(), 3);
  ASSERT_EQ(model.LastAttentionRows(), 2);
  ASSERT_EQ(attn.size(), 6u);
  for (int i = 0; i < 2; ++i) {
    float row = 0.0f;
    for (int j = 0; j < 3; ++j) row += attn[i * 3 + j];
    EXPECT_NEAR(row, 1.0f, 1e-4f);
  }
}

TEST(RnnTest, GruCellKeepsHiddenBounded) {
  Rng rng(6);
  GruCell cell(8, 8, rng);
  Tensor h = Tensor::Zeros(Shape{1, 8});
  Tensor x = Tensor::Randn(Shape{1, 8}, rng, 5.0f);
  for (int t = 0; t < 50; ++t) h = cell.Step(x, h);
  for (int j = 0; j < 8; ++j) {
    EXPECT_LE(std::fabs(h.data()[j]), 1.0f + 1e-5f);
  }
}

TEST(RnnTest, LstmCellKeepsHiddenBounded) {
  Rng rng(8);
  LstmCell cell(8, 8, rng);
  Tensor state = Tensor::Zeros(Shape{1, 16});
  Tensor x = Tensor::Randn(Shape{1, 8}, rng, 5.0f);
  for (int t = 0; t < 50; ++t) state = cell.Step(x, state);
  Tensor h = cell.OutputFromState(state);
  for (int j = 0; j < 8; ++j) {
    EXPECT_LE(std::fabs(h.data()[j]), 1.0f + 1e-5f);
  }
}

TEST(RnnTest, LstmStateRoundTrip) {
  Rng rng(9);
  LstmCell cell(4, 6, rng);
  EXPECT_EQ(cell.state_size(), 12);
  Tensor h = Tensor::Randn(Shape{2, 6}, rng);
  Tensor state = cell.StateFromOutput(h);
  ASSERT_EQ(state.shape(), Shape({2, 12}));
  Tensor back = cell.OutputFromState(state);
  for (int64_t i = 0; i < h.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(back.data()[i], h.data()[i]);
  }
  // Cell memory component starts at zero.
  for (int64_t i = 0; i < 12; ++i) {
    if (i % 12 >= 6) {
      EXPECT_FLOAT_EQ(state.data()[i], 0.0f);
    }
  }
}

TEST(RnnTest, EncoderMaskFreezesHiddenOnPadding) {
  Rng rng(7);
  Seq2SeqConfig config = SmallConfig();
  RnnEncoder encoder(config, CellType::kGru, rng);
  encoder.SetTraining(false);
  NoGradGuard no_grad;
  // Same sequence with and without trailing padding: final hidden equal.
  EncodedBatch padded = PadBatch({{4, 5}, {4, 5, 6}});  // Row 0 padded.
  RnnEncoder::Output out = encoder.Forward(padded);
  EncodedBatch exact = PadBatch({{4, 5}});
  RnnEncoder::Output ref = encoder.Forward(exact);
  for (int j = 0; j < config.d_model; ++j) {
    EXPECT_NEAR(out.final_hidden.data()[j], ref.final_hidden.data()[j],
                1e-5f);
  }
}

}  // namespace
}  // namespace cyqr
