#include "nmt/scorer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/math.h"
#include "nmt/transformer.h"
#include "text/vocabulary.h"

namespace cyqr {
namespace {

Seq2SeqConfig SmallConfig() {
  Seq2SeqConfig config;
  config.vocab_size = 16;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_hidden = 16;
  config.num_layers = 1;
  config.dropout = 0.0f;
  return config;
}

TEST(ScorerTest, ScoreSequenceMatchesManualComputation) {
  Rng rng(1);
  TransformerSeq2Seq model(SmallConfig(), rng);
  model.SetTraining(false);
  NoGradGuard no_grad;
  const std::vector<int32_t> src = {4, 5};
  const std::vector<int32_t> tgt = {6, 7};
  const double score = ScoreSequence(model, src, tgt);

  // Manual: sum of log-softmax picks over the teacher-forced logits.
  const EncodedBatch src_batch = PadBatch({src});
  const TeacherForcedBatch tf = MakeTeacherForced({tgt});
  Tensor logits = model.Forward(src_batch, tf.inputs);
  double manual = 0.0;
  const int64_t v = 16;
  for (int64_t t = 0; t < tf.inputs.max_len; ++t) {
    std::vector<float> lp(v);
    LogSoftmax(logits.data() + t * v, v, lp.data());
    manual += lp[tf.targets[t]];
  }
  EXPECT_NEAR(score, manual, 1e-4);
}

TEST(ScorerTest, ScoreSequencesBatchMatchesSingles) {
  Rng rng(2);
  TransformerSeq2Seq model(SmallConfig(), rng);
  model.SetTraining(false);
  const std::vector<int32_t> src = {4, 5, 6};
  const std::vector<std::vector<int32_t>> tgts = {{7}, {8, 9}, {10, 11, 12}};
  const std::vector<double> batch = ScoreSequences(model, src, tgts);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < tgts.size(); ++i) {
    EXPECT_NEAR(batch[i], ScoreSequence(model, src, tgts[i]), 1e-3);
  }
}

TEST(ScorerTest, UntrainedPerplexityNearVocabSize) {
  // A freshly initialized model is near-uniform, so token perplexity is
  // near the vocabulary size.
  Rng rng(3);
  Seq2SeqConfig config = SmallConfig();
  TransformerSeq2Seq model(config, rng);
  model.SetTraining(false);
  std::vector<SeqPair> pairs;
  for (int i = 0; i < 8; ++i) {
    pairs.push_back({{4, 5}, {6, 7, 8}});
  }
  const TeacherForcedMetrics m = EvaluateTeacherForced(model, pairs);
  EXPECT_GT(m.perplexity, config.vocab_size * 0.4);
  EXPECT_LT(m.perplexity, config.vocab_size * 2.5);
}

TEST(ScorerTest, TokenAccuracyFromLogitsCountsMaskedPositions) {
  // Logits that argmax to the target at position 0 only.
  Tensor logits = Tensor::Zeros(Shape{1, 2, 4});
  logits.data()[2] = 5.0f;          // Position 0 argmax = 2.
  logits.data()[4 + 1] = 5.0f;      // Position 1 argmax = 1.
  std::vector<int32_t> targets = {2, 3};
  std::vector<float> mask_all = {1, 1};
  EXPECT_NEAR(TokenAccuracyFromLogits(logits, targets, mask_all), 0.5, 1e-9);
  std::vector<float> mask_first = {1, 0};
  EXPECT_NEAR(TokenAccuracyFromLogits(logits, targets, mask_first), 1.0,
              1e-9);
}

TEST(ScorerTest, LongerSequencesHaveLowerLogProb) {
  Rng rng(4);
  TransformerSeq2Seq model(SmallConfig(), rng);
  model.SetTraining(false);
  const std::vector<int32_t> src = {4};
  const double short_lp = ScoreSequence(model, src, {5});
  const double long_lp = ScoreSequence(model, src, {5, 6, 7, 8, 9});
  EXPECT_GT(short_lp, long_lp);
}

}  // namespace
}  // namespace cyqr
