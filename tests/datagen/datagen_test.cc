#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "core/string_util.h"
#include "datagen/click_log.h"
#include "datagen/query_pairs.h"
#include "datagen/synonyms.h"
#include "datagen/traffic.h"

namespace cyqr {
namespace {

class DatagenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = std::make_unique<Catalog>(Catalog::Generate({}));
    ClickLogConfig config;
    config.num_distinct_queries = 300;
    config.num_sessions = 8000;
    log_ = std::make_unique<ClickLog>(ClickLog::Generate(*catalog_, config));
  }
  static void TearDownTestSuite() {
    log_.reset();
    catalog_.reset();
  }
  static std::unique_ptr<Catalog> catalog_;
  static std::unique_ptr<ClickLog> log_;
};

std::unique_ptr<Catalog> DatagenTest::catalog_;
std::unique_ptr<ClickLog> DatagenTest::log_;

TEST_F(DatagenTest, CatalogHasProductsInEveryCategory) {
  std::set<std::string> categories;
  for (const Product& p : catalog_->products()) {
    categories.insert(p.category);
    EXPECT_FALSE(p.title_tokens.empty());
    EXPECT_GT(p.price, 0.0);
    EXPECT_GT(p.quality, 0.0);
  }
  EXPECT_EQ(categories.size(), catalog_->categories().size());
}

TEST_F(DatagenTest, TitlesAreMuchLongerThanQueries) {
  // The Table I shape: titles ~8x longer than queries.
  const DatasetStats stats = log_->Stats(*catalog_);
  EXPECT_GT(stats.avg_title_words, 3.0 * stats.avg_query_words);
  EXPECT_GT(stats.avg_query_words, 1.5);
}

TEST_F(DatagenTest, GenerationIsDeterministic) {
  Catalog again = Catalog::Generate({});
  ASSERT_EQ(again.products().size(), catalog_->products().size());
  EXPECT_EQ(again.products()[5].title_tokens,
            catalog_->products()[5].title_tokens);
}

TEST_F(DatagenTest, CanonicalQueryParsesBackToSameIntent) {
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    const QuerySpec spec = catalog_->SampleQuery(rng);
    const std::vector<std::string> canonical =
        catalog_->CanonicalQueryTokens(spec.intent);
    const QueryIntent parsed = catalog_->ParseQuery(canonical);
    EXPECT_EQ(parsed.category, spec.intent.category)
        << JoinStrings(canonical);
    EXPECT_EQ(parsed.brand, spec.intent.brand) << JoinStrings(canonical);
  }
}

TEST_F(DatagenTest, ColloquialSurfaceStillParsable) {
  // The ontology-aware parser resolves colloquial phrases, so even hard
  // queries should usually recover their category.
  Rng rng(78);
  int parsed_ok = 0;
  int total = 0;
  for (int i = 0; i < 100; ++i) {
    const QuerySpec spec = catalog_->SampleQuery(rng);
    if (!spec.is_colloquial) continue;
    ++total;
    if (catalog_->ParseQuery(spec.tokens).category == spec.intent.category) {
      ++parsed_ok;
    }
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(static_cast<double>(parsed_ok) / total, 0.8);
}

TEST_F(DatagenTest, MatchScoreRespectsBrandAndCategory) {
  const Product& p = catalog_->products()[0];
  QueryIntent intent;
  intent.category = p.category;
  EXPECT_GT(catalog_->MatchScore(intent, p), 0.0);
  intent.brand = p.brand;
  EXPECT_GT(catalog_->MatchScore(intent, p), 0.0);
  intent.brand = "nonexistent-brand";
  EXPECT_EQ(catalog_->MatchScore(intent, p), 0.0);
  intent.brand.clear();
  intent.category = "nonexistent-category";
  EXPECT_EQ(catalog_->MatchScore(intent, p), 0.0);
}

TEST_F(DatagenTest, MatchScoreRewardsAttributeOverlap) {
  const Product& p = catalog_->products()[0];
  QueryIntent base;
  base.category = p.category;
  QueryIntent with_attr = base;
  ASSERT_FALSE(p.attributes.empty());
  with_attr.attributes.push_back(p.attributes[0]);
  EXPECT_GT(catalog_->MatchScore(with_attr, p),
            catalog_->MatchScore(base, p));
}

TEST_F(DatagenTest, ClickPairsRespectMinClicks) {
  for (const ClickPair& p : log_->pairs()) {
    EXPECT_GE(p.clicks, 2);
  }
  EXPECT_GT(log_->pairs().size(), 100u);
}

TEST_F(DatagenTest, ClickedProductsMatchQueryIntent) {
  for (const ClickPair& p : log_->pairs()) {
    const QuerySpec& q = log_->queries()[p.query_index];
    EXPECT_GT(catalog_->MatchScore(q.intent, catalog_->product(p.product_id)),
              0.0);
  }
}

TEST_F(DatagenTest, PopularityIsNormalized) {
  double total = 0.0;
  for (double p : log_->query_popularity()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(DatagenTest, TokenPairsAlignWithClickPairs) {
  const auto pairs = log_->TokenPairs(*catalog_);
  ASSERT_EQ(pairs.size(), log_->pairs().size());
  EXPECT_EQ(pairs[0].query, log_->queries()[log_->pairs()[0].query_index].tokens);
}

TEST_F(DatagenTest, RuleDictionaryCoversNicknamesAndTrap) {
  Rng rng(5);
  const SynonymDictionary dict = BuildRuleDictionary(*catalog_, 0.7, rng);
  EXPECT_TRUE(dict.Contains("adi"));       // Brand nickname.
  EXPECT_TRUE(dict.Contains("cellphone")); // User head word.
  EXPECT_TRUE(dict.Contains("cherry"));    // Polysemy trap.
  EXPECT_GT(dict.size(), 20u);
}

TEST_F(DatagenTest, SynonymApplyReplacesLongestPhrase) {
  SynonymDictionary dict;
  dict.Add("for grandpa", "senior");
  dict.Add("grandpa", "WRONG");
  std::vector<std::string> out;
  ASSERT_TRUE(dict.Apply({"phone", "for", "grandpa"}, &out));
  EXPECT_EQ(out, (std::vector<std::string>{"phone", "senior"}));
}

TEST_F(DatagenTest, SynonymApplyReturnsFalseWithoutMatch) {
  SynonymDictionary dict;
  dict.Add("foo", "bar");
  std::vector<std::string> out;
  EXPECT_FALSE(dict.Apply({"phone", "case"}, &out));
}

TEST_F(DatagenTest, MinedQueryPairsShareIntentMostly) {
  const auto pairs = MineSynonymousQueryPairs(*log_, 4);
  ASSERT_GT(pairs.size(), 5u);
  int same_category = 0;
  for (const QueryPair& p : pairs) {
    const QueryIntent a = catalog_->ParseQuery(p.a);
    const QueryIntent b = catalog_->ParseQuery(p.b);
    if (a.category == b.category) ++same_category;
    EXPECT_GE(p.shared_clicks, 4);
  }
  EXPECT_GT(static_cast<double>(same_category) / pairs.size(), 0.9);
}

TEST_F(DatagenTest, MinedPairsSortedByEvidence) {
  const auto pairs = MineSynonymousQueryPairs(*log_, 2);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_GE(pairs[i - 1].shared_clicks, pairs[i].shared_clicks);
  }
}

TEST_F(DatagenTest, TrafficSamplerFollowsPopularity) {
  TrafficSampler sampler(log_.get());
  Rng rng(9);
  std::vector<int64_t> counts(log_->queries().size(), 0);
  const int64_t n = 20000;
  for (int64_t i = 0; i < n; ++i) {
    ++counts[sampler.SampleQueryIndex(rng)];
  }
  // The most popular query must be sampled far more than a median one.
  const auto head = sampler.HeadQueries(0.01);
  ASSERT_FALSE(head.empty());
  EXPECT_GT(counts[head[0]], n / 200);
}

TEST_F(DatagenTest, HeadQueriesCoverRequestedFraction) {
  TrafficSampler sampler(log_.get());
  const auto head = sampler.HeadQueries(0.5);
  double covered = 0.0;
  for (int64_t q : head) covered += log_->query_popularity()[q];
  EXPECT_GE(covered, 0.5);
  // Zipfian head: half the traffic from far fewer than half the queries.
  EXPECT_LT(head.size(), log_->queries().size() / 2);
  EXPECT_TRUE(sampler.IsHeadQuery(head[0], 0.5));
}

}  // namespace
}  // namespace cyqr
