#include "datagen/io.h"

#include <gtest/gtest.h>

#include <fstream>

namespace cyqr {
namespace {

TEST(DataIoTest, SaveLoadRoundTrip) {
  std::vector<TokenPair> pairs = {
      {{"phone", "for", "grandpa"}, {"senior", "smartphone", "official"}, 5},
      {{"red", "shoes"}, {"adibo", "red", "running", "shoes"}, 2},
  };
  const std::string path = testing::TempDir() + "/pairs.tsv";
  ASSERT_TRUE(SaveTokenPairs(pairs, path).ok());
  Result<std::vector<TokenPair>> loaded = LoadTokenPairs(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].query, pairs[0].query);
  EXPECT_EQ(loaded.value()[0].title, pairs[0].title);
  EXPECT_EQ(loaded.value()[0].clicks, 5);
  EXPECT_EQ(loaded.value()[1].clicks, 2);
}

TEST(DataIoTest, MissingClicksDefaultsToOne) {
  const std::string path = testing::TempDir() + "/two_field.tsv";
  std::ofstream(path) << "cheap phone\tbudget smartphone\n";
  Result<std::vector<TokenPair>> loaded = LoadTokenPairs(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].clicks, 1);
}

TEST(DataIoTest, MalformedLineFails) {
  const std::string path = testing::TempDir() + "/bad.tsv";
  std::ofstream(path) << "no tab on this line\n";
  Result<std::vector<TokenPair>> loaded = LoadTokenPairs(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DataIoTest, EmptyQueryFails) {
  const std::string path = testing::TempDir() + "/empty_query.tsv";
  std::ofstream(path) << "\ttitle words\t3\n";
  EXPECT_FALSE(LoadTokenPairs(path).ok());
}

TEST(DataIoTest, MissingFileFails) {
  Result<std::vector<TokenPair>> loaded =
      LoadTokenPairs("/nonexistent/nowhere.tsv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(DataIoTest, MalformedClickCountFails) {
  // Regression: strtoll with no end-pointer check used to load garbage
  // click fields as 0 (or a truncated prefix) instead of failing.
  const std::string path = testing::TempDir() + "/bad_clicks.tsv";
  for (const char* field : {"abc", "12x", "", "-3"}) {
    std::ofstream(path) << "red shoes\trunning shoes\t" << field << "\n";
    Result<std::vector<TokenPair>> loaded = LoadTokenPairs(path);
    ASSERT_FALSE(loaded.ok()) << "click field '" << field << "'";
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << "click field '" << field << "'";
  }
}

TEST(DataIoTest, ValidClickCountsStillParse) {
  const std::string path = testing::TempDir() + "/ok_clicks.tsv";
  std::ofstream(path) << "red shoes\trunning shoes\t0\n"
                      << "blue hat\twool hat\t42\n";
  Result<std::vector<TokenPair>> loaded = LoadTokenPairs(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].clicks, 0);
  EXPECT_EQ(loaded.value()[1].clicks, 42);
}

TEST(DataIoTest, BlankLinesSkipped) {
  const std::string path = testing::TempDir() + "/blanks.tsv";
  std::ofstream(path) << "a b\tc d\t2\n\n\ne f\tg h\t3\n";
  Result<std::vector<TokenPair>> loaded = LoadTokenPairs(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
}

}  // namespace
}  // namespace cyqr
