// The polysemy machinery ("cherry" the keyboard brand vs the snack
// flavor, Section IV-C2) — the context the rule-based baseline cannot use
// and the cycle model can.

#include <gtest/gtest.h>

#include <memory>

#include "baseline/rule_based.h"
#include "datagen/synonyms.h"
#include "eval/judge.h"

namespace cyqr {
namespace {

class PolysemyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = std::make_unique<Catalog>(Catalog::Generate({}));
  }
  static void TearDownTestSuite() { catalog_.reset(); }
  static std::unique_ptr<Catalog> catalog_;
};

std::unique_ptr<Catalog> PolysemyTest::catalog_;

TEST_F(PolysemyTest, CherryKeyboardParsesAsBrand) {
  const QueryIntent intent = catalog_->ParseQuery({"cherry", "keyboard"});
  EXPECT_EQ(intent.category, "keyboard");
  EXPECT_EQ(intent.brand, "cherry");
}

TEST_F(PolysemyTest, CherrySnackParsesAsFlavor) {
  const QueryIntent intent = catalog_->ParseQuery({"cherry", "snack"});
  EXPECT_EQ(intent.category, "snacks");
  EXPECT_TRUE(intent.brand.empty());
  ASSERT_EQ(intent.attributes.size(), 1u);
  EXPECT_EQ(intent.attributes[0], "cherry");
}

TEST_F(PolysemyTest, BareCherryIsAmbiguousButResolved) {
  // With no context, some category wins the vote; the important property
  // is that adding context flips the interpretation (checked above).
  const QueryIntent intent = catalog_->ParseQuery({"cherry"});
  EXPECT_FALSE(intent.category.empty());
}

TEST_F(PolysemyTest, RuleDictionaryRewriteBreaksKeyboardQueries) {
  Rng rng(5);
  const SynonymDictionary dict = BuildRuleDictionary(*catalog_, 1.0, rng);
  RuleBasedRewriter rule(&dict);
  const RelevanceJudge judge(catalog_.get());

  // The context-free rule turns "cherry keyboard" into
  // "cherry fruit keyboard", which retrieves nothing.
  QueryIntent intent;
  intent.category = "keyboard";
  intent.brand = "cherry";
  const auto rewrites = rule.Rewrite({"cherry", "keyboard"}, 3);
  ASSERT_FALSE(rewrites.empty());
  bool found_trap = false;
  for (const auto& r : rewrites) {
    if (judge.Score(intent, r) < 0.3) found_trap = true;
  }
  EXPECT_TRUE(found_trap);
}

TEST_F(PolysemyTest, RuleDictionaryRewriteIsFineForSnackQueries) {
  Rng rng(5);
  const SynonymDictionary dict = BuildRuleDictionary(*catalog_, 1.0, rng);
  RuleBasedRewriter rule(&dict);
  const RelevanceJudge judge(catalog_.get());

  QueryIntent intent;
  intent.category = "snacks";
  intent.attributes = {"cherry"};
  // "cherry snacks" -> "cherry fruit snacks": still parses to snacks and
  // "fruit" IS in the snack title vocabulary (head "dried fruit snack").
  const auto rewrites = rule.Rewrite({"cherry", "snacks"}, 3);
  ASSERT_FALSE(rewrites.empty());
  double best = 0.0;
  for (const auto& r : rewrites) {
    best = std::max(best, judge.Score(intent, r));
  }
  EXPECT_GT(best, 0.5);
}

TEST_F(PolysemyTest, NicknamesResolveToBrands) {
  const QueryIntent adi = catalog_->ParseQuery({"adi", "shoes"});
  EXPECT_EQ(adi.category, "shoes");
  EXPECT_EQ(adi.brand, "adibo");
  const QueryIntent hw = catalog_->ParseQuery({"hw", "phone"});
  EXPECT_EQ(hw.category, "phone");
  EXPECT_EQ(hw.brand, "huawi");
}

TEST_F(PolysemyTest, SharedAttributeTokensFollowTheCategory) {
  // "mens" exists in shoes, skincare, watch, perfume; the head decides.
  const QueryIntent shoes = catalog_->ParseQuery({"mens", "shoes"});
  EXPECT_EQ(shoes.category, "shoes");
  ASSERT_FALSE(shoes.attributes.empty());
  EXPECT_EQ(shoes.attributes[0], "mens");
  const QueryIntent watch = catalog_->ParseQuery({"mens", "watch"});
  EXPECT_EQ(watch.category, "watch");
  ASSERT_FALSE(watch.attributes.empty());
  EXPECT_EQ(watch.attributes[0], "mens");
}

TEST_F(PolysemyTest, ColloquialPhrasesResolveBeforeParsing) {
  const QueryIntent intent =
      catalog_->ParseQuery({"phone", "for", "grandpa"});
  EXPECT_EQ(intent.category, "phone");
  ASSERT_FALSE(intent.attributes.empty());
  EXPECT_EQ(intent.attributes[0], "senior");
}

}  // namespace
}  // namespace cyqr
