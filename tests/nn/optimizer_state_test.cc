// Optimizer-state persistence: export/import round trips, mismatch
// rejection, and the stream format's corruption/truncation defenses —
// the Adam half of the crash-safe training contract.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace cyqr {
namespace {

Tensor QuadraticStep(Adam& adam, Tensor& x) {
  adam.ZeroGrad();
  Tensor loss = SumAll(Mul(x, x));
  loss.Backward();
  adam.Step();
  return loss;
}

TEST(AdamStateTest, ImportedStateContinuesIdentically) {
  // Train one optimizer a few steps, transplant its state into a fresh
  // optimizer over a copy of the parameters, then take the same step in
  // both: every float of the resulting parameters must agree exactly.
  Tensor a = Tensor::FromData(Shape{3}, {5.0f, -3.0f, 2.0f});
  a.set_requires_grad(true);
  Adam::Options opt;
  opt.learning_rate = 0.1f;
  Adam adam_a({a}, opt);
  for (int i = 0; i < 7; ++i) QuadraticStep(adam_a, a);

  Tensor b = Tensor::FromData(
      Shape{3}, {a.data()[0], a.data()[1], a.data()[2]});
  b.set_requires_grad(true);
  Adam adam_b({b}, opt);
  ASSERT_TRUE(adam_b.ImportState(adam_a.ExportState()).ok());

  QuadraticStep(adam_a, a);
  QuadraticStep(adam_b, b);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

TEST(AdamStateTest, FreshImportDiffersFromFreshOptimizer) {
  // Sanity check of the previous test's power: WITHOUT the import, the
  // moment estimates differ and so does the update. Uses a large step
  // size so the divergence is representable in float next to x itself.
  Tensor a = Tensor::FromData(Shape{1}, {5.0f});
  a.set_requires_grad(true);
  Adam::Options opt;
  opt.learning_rate = 0.1f;
  Adam adam_a({a}, opt);
  for (int i = 0; i < 7; ++i) QuadraticStep(adam_a, a);

  Tensor b = Tensor::FromData(Shape{1}, {a.data()[0]});
  b.set_requires_grad(true);
  Adam adam_b({b}, opt);  // No state import.
  for (int i = 0; i < 3; ++i) {
    QuadraticStep(adam_a, a);
    QuadraticStep(adam_b, b);
  }
  EXPECT_NE(a.data()[0], b.data()[0]);
}

TEST(AdamStateTest, ImportRejectsWrongVectorCount) {
  Tensor a = Tensor::FromData(Shape{2}, {1.0f, 2.0f});
  a.set_requires_grad(true);
  Tensor b = Tensor::FromData(Shape{2}, {3.0f, 4.0f});
  b.set_requires_grad(true);
  Adam one({a}, {});
  Adam two({a, b}, {});
  EXPECT_FALSE(two.ImportState(one.ExportState()).ok());
  EXPECT_FALSE(one.ImportState(two.ExportState()).ok());
}

TEST(AdamStateTest, ImportRejectsWrongElementCount) {
  Tensor small = Tensor::FromData(Shape{2}, {1.0f, 2.0f});
  small.set_requires_grad(true);
  Tensor big = Tensor::FromData(Shape{3}, {1.0f, 2.0f, 3.0f});
  big.set_requires_grad(true);
  Adam adam_small({small}, {});
  Adam adam_big({big}, {});
  EXPECT_FALSE(adam_big.ImportState(adam_small.ExportState()).ok());
}

TEST(AdamStateTest, ImportRejectsNegativeStep) {
  Tensor x = Tensor::FromData(Shape{1}, {1.0f});
  x.set_requires_grad(true);
  Adam adam({x}, {});
  AdamState state = adam.ExportState();
  state.step = -1;
  EXPECT_FALSE(adam.ImportState(state).ok());
}

/// Serialized bytes of a 7-step optimizer state over two tensors.
std::string TrainedStateBytes() {
  Tensor a = Tensor::FromData(Shape{2}, {5.0f, -3.0f});
  a.set_requires_grad(true);
  Tensor b = Tensor::FromData(Shape{1}, {2.0f});
  b.set_requires_grad(true);
  Adam adam({a, b}, {});
  for (int i = 0; i < 7; ++i) {
    adam.ZeroGrad();
    Tensor loss = Add(SumAll(Mul(a, a)), SumAll(Mul(b, b)));
    loss.Backward();
    adam.Step();
  }
  std::ostringstream out;
  EXPECT_TRUE(SaveAdamState(adam.ExportState(), out).ok());
  return out.str();
}

TEST(AdamStateTest, StreamRoundTrip) {
  Tensor a = Tensor::FromData(Shape{2}, {5.0f, -3.0f});
  a.set_requires_grad(true);
  Tensor b = Tensor::FromData(Shape{1}, {2.0f});
  b.set_requires_grad(true);
  Adam adam({a, b}, {});
  for (int i = 0; i < 7; ++i) {
    adam.ZeroGrad();
    Tensor loss = Add(SumAll(Mul(a, a)), SumAll(Mul(b, b)));
    loss.Backward();
    adam.Step();
  }
  const AdamState original = adam.ExportState();
  std::stringstream buf;
  ASSERT_TRUE(SaveAdamState(original, buf).ok());
  AdamState restored;
  ASSERT_TRUE(LoadAdamState(buf, &restored).ok());
  EXPECT_EQ(restored.step, original.step);
  ASSERT_EQ(restored.m.size(), original.m.size());
  ASSERT_EQ(restored.v.size(), original.v.size());
  for (size_t t = 0; t < original.m.size(); ++t) {
    EXPECT_EQ(restored.m[t], original.m[t]);
    EXPECT_EQ(restored.v[t], original.v[t]);
  }
}

TEST(AdamStateTest, CorruptPayloadByteFailsChecksum) {
  std::string bytes = TrainedStateBytes();
  bytes[bytes.size() / 2] ^= 0x20;  // Flip a bit mid-payload.
  std::istringstream in(bytes);
  AdamState state;
  EXPECT_FALSE(LoadAdamState(in, &state).ok());
}

TEST(AdamStateTest, EveryTruncationFails) {
  const std::string bytes = TrainedStateBytes();
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::istringstream in(bytes.substr(0, cut));
    AdamState state;
    EXPECT_FALSE(LoadAdamState(in, &state).ok())
        << "truncation to " << cut << " bytes was accepted";
  }
}

TEST(AdamStateTest, FailedLoadLeavesOutputUntouched) {
  // All-or-nothing: a corrupt stream must not half-write the output.
  std::string bytes = TrainedStateBytes();
  bytes[bytes.size() - 1] ^= 0x01;  // Corrupt the footer checksum.
  AdamState state;
  state.step = 42;
  state.m = {{1.0f}};
  std::istringstream in(bytes);
  EXPECT_FALSE(LoadAdamState(in, &state).ok());
  EXPECT_EQ(state.step, 42);
  ASSERT_EQ(state.m.size(), 1u);
  EXPECT_EQ(state.m[0], std::vector<float>({1.0f}));
}

TEST(AdamStateTest, BadMagicRejected) {
  std::string bytes = TrainedStateBytes();
  bytes[0] ^= 0xFF;
  std::istringstream in(bytes);
  AdamState state;
  EXPECT_FALSE(LoadAdamState(in, &state).ok());
}

}  // namespace
}  // namespace cyqr
