#include "nn/attention.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace cyqr {
namespace {

TEST(AttentionTest, OutputShape) {
  Rng rng(1);
  MultiHeadAttention mha(8, 2, rng);
  Tensor q = Tensor::Randn(Shape{2, 3, 8}, rng);
  Tensor kv = Tensor::Randn(Shape{2, 5, 8}, rng);
  Tensor out = mha.Forward(q, kv);
  EXPECT_EQ(out.shape(), Shape({2, 3, 8}));
}

TEST(AttentionTest, SelfAttentionShape) {
  Rng rng(2);
  MultiHeadAttention mha(8, 4, rng);
  Tensor x = Tensor::Randn(Shape{1, 6, 8}, rng);
  EXPECT_EQ(mha.Forward(x, x).shape(), Shape({1, 6, 8}));
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  // With a causal mask, changing a future key must not change the output at
  // earlier query positions.
  Rng rng(3);
  MultiHeadAttention mha(8, 2, rng);
  const int64_t t = 4;
  std::vector<float> mask(1 * 2 * t * t, 0.0f);
  for (int64_t h = 0; h < 2; ++h) {
    for (int64_t i = 0; i < t; ++i) {
      for (int64_t j = i + 1; j < t; ++j) {
        mask[(h * t + i) * t + j] = -1e9f;
      }
    }
  }
  Tensor x = Tensor::Randn(Shape{1, t, 8}, rng);
  Tensor out1 = mha.Forward(x, x, mask);
  // Perturb the last position's input.
  std::vector<float> data(x.data(), x.data() + x.NumElements());
  for (int j = 0; j < 8; ++j) data[(t - 1) * 8 + j] += 5.0f;
  Tensor x2 = Tensor::FromData(Shape{1, t, 8}, data);
  Tensor out2 = mha.Forward(x2, x2, mask);
  for (int64_t i = 0; i < (t - 1) * 8; ++i) {
    EXPECT_NEAR(out1.data()[i], out2.data()[i], 1e-5f);
  }
}

TEST(AttentionTest, CapturedWeightsAreDistribution) {
  Rng rng(4);
  MultiHeadAttention mha(8, 2, rng);
  mha.set_capture_weights(true);
  Tensor q = Tensor::Randn(Shape{1, 3, 8}, rng);
  Tensor kv = Tensor::Randn(Shape{1, 5, 8}, rng);
  mha.Forward(q, kv);
  const auto& w = mha.last_attention();
  ASSERT_EQ(w.size(), 15u);
  EXPECT_EQ(mha.last_tq(), 3);
  EXPECT_EQ(mha.last_tk(), 5);
  for (int i = 0; i < 3; ++i) {
    float row = 0.0f;
    for (int j = 0; j < 5; ++j) row += w[i * 5 + j];
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST(AttentionTest, GradientsFlowToAllProjections) {
  Rng rng(5);
  MultiHeadAttention mha(8, 2, rng);
  Tensor x = Tensor::Randn(Shape{1, 3, 8}, rng);
  Tensor out = mha.Forward(x, x);
  SumAll(Mul(out, out)).Backward();
  for (const Tensor& p : mha.Parameters()) {
    ASSERT_NE(p.grad(), nullptr);
    double mag = 0.0;
    for (int64_t i = 0; i < p.NumElements(); ++i) {
      mag += std::fabs(p.grad()[i]);
    }
    EXPECT_GT(mag, 0.0);
  }
}

TEST(AttentionTest, NumericalGradientThroughAttention) {
  Rng rng(6);
  MultiHeadAttention mha(4, 2, rng);
  Tensor x = Tensor::Randn(Shape{1, 2, 4}, rng, 0.5f);
  x.set_requires_grad(true);
  auto f = [&] {
    Tensor out = mha.Forward(x, x);
    return SumAll(Mul(out, out));
  };
  EXPECT_LT(GradCheck(f, x), 3e-2);
}

}  // namespace
}  // namespace cyqr
