#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/schedule.h"
#include "tensor/ops.h"

namespace cyqr {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  Tensor x = Tensor::FromData(Shape{2}, {5.0f, -3.0f});
  x.set_requires_grad(true);
  Adam::Options opt;
  opt.learning_rate = 0.1f;
  Adam adam({x}, opt);
  for (int i = 0; i < 300; ++i) {
    adam.ZeroGrad();
    Tensor loss = SumAll(Mul(x, x));
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(x.data()[0], 0.0f, 1e-2f);
  EXPECT_NEAR(x.data()[1], 0.0f, 1e-2f);
}

TEST(AdamTest, SkipsParametersWithoutGradients) {
  Tensor a = Tensor::FromData(Shape{1}, {1.0f});
  a.set_requires_grad(true);
  Tensor b = Tensor::FromData(Shape{1}, {2.0f});
  b.set_requires_grad(true);
  Adam adam({a, b}, {});
  // Only a receives a gradient.
  SumAll(Mul(a, a)).Backward();
  adam.Step();
  EXPECT_NE(a.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(b.data()[0], 2.0f);
}

TEST(AdamTest, FirstStepSizeIsLearningRate) {
  // Adam's bias correction makes the first update ~= lr * sign(grad).
  Tensor x = Tensor::FromData(Shape{1}, {10.0f});
  x.set_requires_grad(true);
  Adam::Options opt;
  opt.learning_rate = 0.5f;
  Adam adam({x}, opt);
  SumAll(x).Backward();  // grad = 1.
  adam.Step();
  EXPECT_NEAR(x.data()[0], 9.5f, 1e-3f);
}

TEST(NoamScheduleTest, WarmupRampsUpThenDecays) {
  NoamSchedule sched(64, 100, 1.0f);
  EXPECT_LT(sched.LearningRate(1), sched.LearningRate(50));
  EXPECT_LT(sched.LearningRate(50), sched.LearningRate(100));
  EXPECT_GT(sched.LearningRate(100), sched.LearningRate(400));
}

TEST(NoamScheduleTest, PeakAtWarmup) {
  NoamSchedule sched(64, 200, 1.0f);
  const float peak = sched.LearningRate(200);
  EXPECT_GE(peak, sched.LearningRate(199));
  EXPECT_GE(peak, sched.LearningRate(201));
}

TEST(NoamScheduleTest, FactorScalesLinearly) {
  NoamSchedule a(64, 100, 1.0f);
  NoamSchedule b(64, 100, 2.0f);
  EXPECT_NEAR(b.LearningRate(37), 2.0f * a.LearningRate(37), 1e-7f);
}

}  // namespace
}  // namespace cyqr
