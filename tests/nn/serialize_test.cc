#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/file_util.h"
#include "nn/layers.h"

namespace cyqr {
namespace {

std::vector<float> SnapshotValues(const std::vector<Tensor>& params) {
  std::vector<float> values;
  for (const Tensor& p : params) {
    values.insert(values.end(), p.data(), p.data() + p.NumElements());
  }
  return values;
}

void ExpectValuesEqual(const std::vector<Tensor>& params,
                       const std::vector<float>& snapshot) {
  size_t i = 0;
  for (const Tensor& p : params) {
    for (int64_t j = 0; j < p.NumElements(); ++j) {
      ASSERT_FLOAT_EQ(p.data()[j], snapshot[i++]);
    }
  }
  EXPECT_EQ(i, snapshot.size());
}

TEST(SerializeTest, RoundTripPreservesValues) {
  Rng rng(1);
  Linear src(4, 6, rng);
  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(src.Parameters(), buf).ok());

  Rng rng2(2);
  Linear dst(4, 6, rng2);
  ASSERT_TRUE(LoadParameters(dst.Parameters(), buf).ok());

  auto a = src.Parameters();
  auto b = dst.Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (int64_t j = 0; j < a[i].NumElements(); ++j) {
      EXPECT_FLOAT_EQ(a[i].data()[j], b[i].data()[j]);
    }
  }
}

TEST(SerializeTest, CountMismatchFails) {
  Rng rng(3);
  Linear src(4, 6, rng);
  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(src.Parameters(), buf).ok());
  Linear dst(4, 6, rng, /*bias=*/false);  // One fewer parameter.
  Status s = LoadParameters(dst.Parameters(), buf);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ShapeMismatchFails) {
  Rng rng(4);
  Linear src(4, 6, rng);
  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(src.Parameters(), buf).ok());
  Linear dst(6, 4, rng);
  Status s = LoadParameters(dst.Parameters(), buf);
  EXPECT_FALSE(s.ok());
}

TEST(SerializeTest, BadMagicFails) {
  std::stringstream buf;
  buf << "garbage data here";
  Rng rng(5);
  Linear dst(2, 2, rng);
  Status s = LoadParameters(dst.Parameters(), buf);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(6);
  Embedding src(8, 4, rng);
  const std::string path = testing::TempDir() + "/cyqr_params.bin";
  ASSERT_TRUE(SaveParametersToFile(src.Parameters(), path).ok());
  Rng rng2(7);
  Embedding dst(8, 4, rng2);
  ASSERT_TRUE(LoadParametersFromFile(dst.Parameters(), path).ok());
  EXPECT_FLOAT_EQ(src.table().data()[5], dst.table().data()[5]);
}

TEST(SerializeTest, FileSaveIsAtomicNoTempLeftBehind) {
  Rng rng(20);
  Linear src(3, 3, rng);
  const std::string path = testing::TempDir() + "/cyqr_params_atomic.bin";
  ASSERT_TRUE(SaveParametersToFile(src.Parameters(), path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(TempPathFor(path)));
}

TEST(SerializeTest, ZeroLengthStreamFails) {
  std::stringstream buf;
  Rng rng(21);
  Linear dst(2, 2, rng);
  const Status status = LoadParameters(dst.Parameters(), buf);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(SerializeTest, TruncatedStreamFailsAndLeavesTensorsUntouched) {
  Rng rng(22);
  Linear src(4, 6, rng);
  std::stringstream full;
  ASSERT_TRUE(SaveParameters(src.Parameters(), full).ok());
  const std::string bytes = full.str();

  Rng rng2(23);
  Linear dst(4, 6, rng2);
  // Truncate at several depths: inside the header, inside tensor data,
  // and inside the footer. Every one must fail cleanly and leave the
  // destination bit-identical (all-or-nothing).
  for (const size_t keep :
       {size_t{0}, size_t{3}, size_t{10}, bytes.size() / 2,
        bytes.size() - 21, bytes.size() - 1}) {
    const std::vector<float> before = SnapshotValues(dst.Parameters());
    std::stringstream truncated(bytes.substr(0, keep));
    const Status status = LoadParameters(dst.Parameters(), truncated);
    EXPECT_FALSE(status.ok()) << "keep=" << keep;
    ExpectValuesEqual(dst.Parameters(), before);
  }
}

TEST(SerializeTest, BitFlippedDataFailsChecksum) {
  Rng rng(24);
  Linear src(4, 6, rng);
  std::stringstream full;
  ASSERT_TRUE(SaveParameters(src.Parameters(), full).ok());
  std::string bytes = full.str();
  // Flip one bit in the middle of the float payload: shapes still parse,
  // so only the footer checksum can catch it.
  bytes[bytes.size() / 2] ^= 0x01;

  Rng rng2(25);
  Linear dst(4, 6, rng2);
  const std::vector<float> before = SnapshotValues(dst.Parameters());
  std::stringstream corrupt(bytes);
  const Status status = LoadParameters(dst.Parameters(), corrupt);
  EXPECT_FALSE(status.ok());
  ExpectValuesEqual(dst.Parameters(), before);
}

TEST(SerializeTest, OutOfRangeRankRejected) {
  // Hand-craft a stream: valid magic, count=1, then an absurd rank that a
  // corrupt or hostile file could carry.
  std::stringstream buf;
  const uint32_t magic = 0x43595152;
  const uint64_t count = 1;
  const uint32_t rank = 1u << 30;
  buf.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  buf.write(reinterpret_cast<const char*>(&count), sizeof(count));
  buf.write(reinterpret_cast<const char*>(&rank), sizeof(rank));

  Rng rng(26);
  Linear dst(2, 2, rng, /*bias=*/false);  // Exactly one parameter tensor.
  const Status status = LoadParameters(dst.Parameters(), buf);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("rank out of range"), std::string::npos);
}

TEST(SerializeTest, ZeroLengthFileFails) {
  const std::string path = testing::TempDir() + "/cyqr_params_empty.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
  }
  Rng rng(27);
  Linear dst(2, 2, rng);
  EXPECT_FALSE(LoadParametersFromFile(dst.Parameters(), path).ok());
}

}  // namespace
}  // namespace cyqr
