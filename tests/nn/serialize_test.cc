#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "nn/layers.h"

namespace cyqr {
namespace {

TEST(SerializeTest, RoundTripPreservesValues) {
  Rng rng(1);
  Linear src(4, 6, rng);
  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(src.Parameters(), buf).ok());

  Rng rng2(2);
  Linear dst(4, 6, rng2);
  ASSERT_TRUE(LoadParameters(dst.Parameters(), buf).ok());

  auto a = src.Parameters();
  auto b = dst.Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (int64_t j = 0; j < a[i].NumElements(); ++j) {
      EXPECT_FLOAT_EQ(a[i].data()[j], b[i].data()[j]);
    }
  }
}

TEST(SerializeTest, CountMismatchFails) {
  Rng rng(3);
  Linear src(4, 6, rng);
  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(src.Parameters(), buf).ok());
  Linear dst(4, 6, rng, /*bias=*/false);  // One fewer parameter.
  Status s = LoadParameters(dst.Parameters(), buf);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ShapeMismatchFails) {
  Rng rng(4);
  Linear src(4, 6, rng);
  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(src.Parameters(), buf).ok());
  Linear dst(6, 4, rng);
  Status s = LoadParameters(dst.Parameters(), buf);
  EXPECT_FALSE(s.ok());
}

TEST(SerializeTest, BadMagicFails) {
  std::stringstream buf;
  buf << "garbage data here";
  Rng rng(5);
  Linear dst(2, 2, rng);
  Status s = LoadParameters(dst.Parameters(), buf);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(6);
  Embedding src(8, 4, rng);
  const std::string path = testing::TempDir() + "/cyqr_params.bin";
  ASSERT_TRUE(SaveParametersToFile(src.Parameters(), path).ok());
  Rng rng2(7);
  Embedding dst(8, 4, rng2);
  ASSERT_TRUE(LoadParametersFromFile(dst.Parameters(), path).ok());
  EXPECT_FLOAT_EQ(src.table().data()[5], dst.table().data()[5]);
}

}  // namespace
}  // namespace cyqr
