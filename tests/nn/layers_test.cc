#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace cyqr {
namespace {

TEST(LinearTest, OutputShape2DAnd3D) {
  Rng rng(1);
  Linear lin(4, 6, rng);
  Tensor x2 = Tensor::Zeros(Shape{3, 4});
  EXPECT_EQ(lin.Forward(x2).shape(), Shape({3, 6}));
  Tensor x3 = Tensor::Zeros(Shape{2, 3, 4});
  EXPECT_EQ(lin.Forward(x3).shape(), Shape({2, 3, 6}));
}

TEST(LinearTest, ZeroInputGivesBias) {
  Rng rng(2);
  Linear lin(3, 2, rng);
  // Freshly initialized bias is zero, so output of zero input is zero.
  Tensor y = lin.Forward(Tensor::Zeros(Shape{1, 3}));
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[1], 0.0f);
}

TEST(LinearTest, NoBiasVariantHasOneParameter) {
  Rng rng(3);
  Linear lin(3, 2, rng, /*bias=*/false);
  EXPECT_EQ(lin.Parameters().size(), 1u);
}

TEST(EmbeddingTest, ShapeAndGradientFlow) {
  Rng rng(4);
  Embedding emb(10, 4, rng);
  std::vector<int32_t> ids = {1, 3, 3, 7};
  Tensor e = emb.Forward(ids, 2, 2);
  EXPECT_EQ(e.shape(), Shape({2, 2, 4}));
  SumAll(Mul(e, e)).Backward();
  const Tensor table = emb.table();
  ASSERT_NE(table.grad(), nullptr);
  // Row 3 was used twice, row 0 never.
  double row3 = 0.0;
  double row0 = 0.0;
  for (int j = 0; j < 4; ++j) {
    row3 += std::fabs(table.grad()[3 * 4 + j]);
    row0 += std::fabs(table.grad()[0 * 4 + j]);
  }
  EXPECT_GT(row3, 0.0);
  EXPECT_EQ(row0, 0.0);
}

TEST(LayerNormLayerTest, OutputNormalized) {
  Rng rng(5);
  LayerNorm ln(6);
  Tensor x = Tensor::Randn(Shape{2, 6}, rng, 4.0f);
  Tensor y = ln.Forward(x);
  for (int r = 0; r < 2; ++r) {
    double mu = 0.0;
    for (int j = 0; j < 6; ++j) mu += y.data()[r * 6 + j];
    EXPECT_NEAR(mu / 6, 0.0, 1e-4);
  }
}

TEST(DropoutLayerTest, RespectsTrainingFlag) {
  Rng rng(6);
  Dropout drop(0.9f, rng);
  Tensor x = Tensor::Full(Shape{100}, 1.0f);
  drop.SetTraining(false);
  Tensor y_eval = drop.Forward(x);
  for (int64_t i = 0; i < 100; ++i) EXPECT_FLOAT_EQ(y_eval.data()[i], 1.0f);
  drop.SetTraining(true);
  Tensor y_train = drop.Forward(x);
  int zeros = 0;
  for (int64_t i = 0; i < 100; ++i) {
    if (y_train.data()[i] == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 50);
}

TEST(PositionalEncodingTest, DistinctPositionsAndBounded) {
  Tensor x = Tensor::Zeros(Shape{1, 4, 8});
  Tensor y = AddPositionalEncoding(x);
  // Position 0: sin(0)=0, cos(0)=1 alternating.
  EXPECT_NEAR(y.data()[0], 0.0f, 1e-6f);
  EXPECT_NEAR(y.data()[1], 1.0f, 1e-6f);
  // All values within [-1, 1].
  for (int64_t i = 0; i < y.NumElements(); ++i) {
    EXPECT_LE(std::fabs(y.data()[i]), 1.0f + 1e-6f);
  }
  // Different positions produce different encodings.
  bool differs = false;
  for (int j = 0; j < 8; ++j) {
    if (std::fabs(y.data()[0 * 8 + j] - y.data()[1 * 8 + j]) > 1e-4f) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(PositionalEncodingTest, OffsetMatchesShiftedPosition) {
  Tensor a = AddPositionalEncoding(Tensor::Zeros(Shape{1, 4, 8}), 0);
  Tensor b = AddPositionalEncoding(Tensor::Zeros(Shape{1, 1, 8}), 2);
  for (int j = 0; j < 8; ++j) {
    EXPECT_NEAR(b.data()[j], a.data()[2 * 8 + j], 1e-6f);
  }
}

}  // namespace
}  // namespace cyqr
