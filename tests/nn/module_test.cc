#include "nn/module.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "tensor/ops.h"

namespace cyqr {
namespace {

TEST(ModuleTest, ParametersCollectChildren) {
  Rng rng(1);
  FeedForward ff(4, 8, rng);
  // fc1: W+b, fc2: W+b.
  EXPECT_EQ(ff.Parameters().size(), 4u);
  EXPECT_EQ(ff.NumParameters(), 4 * 8 + 8 + 8 * 4 + 4);
}

TEST(ModuleTest, ParametersRequireGrad) {
  Rng rng(2);
  Linear lin(3, 5, rng);
  for (const Tensor& p : lin.Parameters()) {
    EXPECT_TRUE(p.requires_grad());
  }
}

TEST(ModuleTest, SetTrainingPropagates) {
  Rng rng(3);
  FeedForward ff(4, 8, rng);
  EXPECT_TRUE(ff.training());
  ff.SetTraining(false);
  EXPECT_FALSE(ff.training());
}

TEST(ModuleTest, ClipGradNormScalesDown) {
  Tensor p = Tensor::FromData(Shape{2}, {0.0f, 0.0f});
  p.set_requires_grad(true);
  float* g = p.mutable_grad();
  g[0] = 3.0f;
  g[1] = 4.0f;  // Norm 5.
  const double pre = ClipGradNorm({p}, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(p.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(p.grad()[1], 0.8f, 1e-5f);
}

TEST(ModuleTest, ClipGradNormNoopBelowThreshold) {
  Tensor p = Tensor::FromData(Shape{1}, {0.0f});
  p.set_requires_grad(true);
  p.mutable_grad()[0] = 0.5f;
  ClipGradNorm({p}, 10.0);
  EXPECT_FLOAT_EQ(p.grad()[0], 0.5f);
}

}  // namespace
}  // namespace cyqr
