#include "eval/ab_sim.h"

#include <gtest/gtest.h>

#include <memory>

#include "eval/judge.h"

namespace cyqr {
namespace {

class AbSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = std::make_unique<Catalog>(Catalog::Generate({}));
    ClickLogConfig config;
    config.num_distinct_queries = 300;
    config.num_sessions = 6000;
    log_ = std::make_unique<ClickLog>(ClickLog::Generate(*catalog_, config));
    index_ = std::make_unique<InvertedIndex>();
    for (const Product& p : catalog_->products()) {
      index_->AddDocument(p.id, p.title_tokens);
    }
  }
  static void TearDownTestSuite() {
    index_.reset();
    log_.reset();
    catalog_.reset();
  }
  static std::unique_ptr<Catalog> catalog_;
  static std::unique_ptr<ClickLog> log_;
  static std::unique_ptr<InvertedIndex> index_;
};

std::unique_ptr<Catalog> AbSimTest::catalog_;
std::unique_ptr<ClickLog> AbSimTest::log_;
std::unique_ptr<InvertedIndex> AbSimTest::index_;

TEST_F(AbSimTest, IdenticalArmsProduceIdenticalMetrics) {
  // Paired randomness: same rewriters => exactly equal outcomes.
  AbSimulator sim(catalog_.get(), log_.get(), index_.get());
  AbConfig config;
  config.num_sessions = 1500;
  const AbResult result = sim.Run(nullptr, nullptr, config);
  EXPECT_DOUBLE_EQ(result.control.ucvr, result.treatment.ucvr);
  EXPECT_DOUBLE_EQ(result.control.gmv, result.treatment.gmv);
  EXPECT_DOUBLE_EQ(result.control.qrr, result.treatment.qrr);
  EXPECT_DOUBLE_EQ(result.ucvr_lift, 0.0);
}

TEST_F(AbSimTest, OracleRewritesLiftConversionAndCutRequeries) {
  // Treatment adds the canonical rewrite for every query — an upper bound
  // on what the model can contribute. UCVR/GMV must rise, QRR must drop.
  AbSimulator sim(catalog_.get(), log_.get(), index_.get());
  AbConfig config;
  config.num_sessions = 4000;
  auto oracle = [this](const QuerySpec& q) {
    return std::vector<std::vector<std::string>>{
        catalog_->CanonicalQueryTokens(q.intent)};
  };
  const AbResult result = sim.Run(nullptr, oracle, config);
  EXPECT_GT(result.ucvr_lift, 0.0);
  EXPECT_GT(result.gmv_lift, 0.0);
  EXPECT_LT(result.qrr_delta, 0.0);
}

TEST_F(AbSimTest, MetricsAreSaneFractions) {
  AbSimulator sim(catalog_.get(), log_.get(), index_.get());
  AbConfig config;
  config.num_sessions = 1000;
  const AbResult result = sim.Run(nullptr, nullptr, config);
  EXPECT_GE(result.control.ucvr, 0.0);
  EXPECT_LE(result.control.ucvr, 1.0);
  EXPECT_GE(result.control.qrr, 0.0);
  EXPECT_LE(result.control.qrr, 1.0);
  EXPECT_GE(result.control.gmv, 0.0);
  EXPECT_EQ(result.control.sessions, 1000);
}

TEST_F(AbSimTest, DeterministicAcrossRuns) {
  AbSimulator sim(catalog_.get(), log_.get(), index_.get());
  AbConfig config;
  config.num_sessions = 800;
  const AbResult a = sim.Run(nullptr, nullptr, config);
  const AbResult b = sim.Run(nullptr, nullptr, config);
  EXPECT_DOUBLE_EQ(a.control.ucvr, b.control.ucvr);
  EXPECT_DOUBLE_EQ(a.control.gmv, b.control.gmv);
}

TEST_F(AbSimTest, IrrelevantRewritesDoNotHurtMuch) {
  // Adding garbage rewrites retrieves junk candidates, but the shared
  // ranker filters them, so metrics should not collapse.
  AbSimulator sim(catalog_.get(), log_.get(), index_.get());
  AbConfig config;
  config.num_sessions = 1500;
  auto garbage = [](const QuerySpec&) {
    return std::vector<std::vector<std::string>>{
        {"zzz", "not", "a", "product"}};
  };
  const AbResult result = sim.Run(nullptr, garbage, config);
  EXPECT_GT(result.ucvr_lift, -0.05);
}

}  // namespace
}  // namespace cyqr
