#include "eval/ranker.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "rewrite/trainer.h"

namespace cyqr {
namespace {

class RankerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = std::make_unique<Catalog>(Catalog::Generate({}));
    ClickLogConfig config;
    config.num_distinct_queries = 250;
    config.num_sessions = 8000;
    log_ = std::make_unique<ClickLog>(ClickLog::Generate(*catalog_, config));

    std::vector<std::vector<std::string>> corpus;
    for (const TokenPair& p : log_->TokenPairs(*catalog_)) {
      corpus.push_back(p.query);
      corpus.push_back(p.title);
    }
    vocab_ = std::make_unique<Vocabulary>(Vocabulary::Build(corpus));

    bm25_ = std::make_unique<Bm25Scorer>();
    for (const Product& p : catalog_->products()) {
      bm25_->AddDocument(p.id, p.title_tokens);
    }
    Rng rng(3);
    embedder_ = std::make_unique<TwoTowerModel>(vocab_->size(), 16, rng);
    TwoTowerModel::TrainOptions tower_options;
    tower_options.steps = 150;
    const double tower_loss = embedder_->Train(
        EncodePairs(log_->TokenPairs(*catalog_), *vocab_), tower_options);
    EXPECT_TRUE(std::isfinite(tower_loss));
  }
  static void TearDownTestSuite() {
    embedder_.reset();
    bm25_.reset();
    vocab_.reset();
    log_.reset();
    catalog_.reset();
  }
  static std::unique_ptr<Catalog> catalog_;
  static std::unique_ptr<ClickLog> log_;
  static std::unique_ptr<Vocabulary> vocab_;
  static std::unique_ptr<Bm25Scorer> bm25_;
  static std::unique_ptr<TwoTowerModel> embedder_;
};

std::unique_ptr<Catalog> RankerTest::catalog_;
std::unique_ptr<ClickLog> RankerTest::log_;
std::unique_ptr<Vocabulary> RankerTest::vocab_;
std::unique_ptr<Bm25Scorer> RankerTest::bm25_;
std::unique_ptr<TwoTowerModel> RankerTest::embedder_;

TEST_F(RankerTest, FeaturesAreFinite) {
  PairwiseRanker ranker(catalog_.get(), bm25_.get(), embedder_.get(), vocab_.get());
  const auto f = ranker.ExtractFeatures({"red", "shoes"}, 0);
  EXPECT_TRUE(std::isfinite(f.bm25));
  EXPECT_TRUE(std::isfinite(f.embedding_cosine));
  EXPECT_GT(f.quality, 0.0);
}

TEST_F(RankerTest, TrainingReducesPairwiseLoss) {
  PairwiseRanker ranker(catalog_.get(), bm25_.get(), embedder_.get(), vocab_.get());
  PairwiseRanker::TrainOptions options;
  options.steps = 200;
  const double early = ranker.Train(*log_, options);
  options.steps = 2000;
  options.seed = 4243;
  const double late = ranker.Train(*log_, options);
  EXPECT_LT(late, early + 0.1);  // Non-increasing up to sampling noise.
}

TEST_F(RankerTest, TrainedRankerPutsClickedItemsFirst) {
  PairwiseRanker ranker(catalog_.get(), bm25_.get(), embedder_.get(), vocab_.get());
  PairwiseRanker::TrainOptions options;
  options.steps = 2500;
  const double final_loss = ranker.Train(*log_, options);
  EXPECT_TRUE(std::isfinite(final_loss));

  // For queries with clicks, the mean rank of clicked items among all
  // products should be clearly better than random (i.e. < half).
  int64_t checked = 0;
  double mean_fraction = 0.0;
  PostingList all_docs;
  for (const Product& p : catalog_->products()) all_docs.push_back(p.id);
  std::vector<std::vector<int64_t>> clicked(log_->queries().size());
  for (const ClickPair& p : log_->pairs()) {
    clicked[p.query_index].push_back(p.product_id);
  }
  for (size_t q = 0; q < clicked.size() && checked < 30; ++q) {
    if (clicked[q].empty()) continue;
    const auto ranked = ranker.Rank(log_->queries()[q].tokens, all_docs);
    for (size_t pos = 0; pos < ranked.size(); ++pos) {
      if (ranked[pos].doc == clicked[q][0]) {
        mean_fraction +=
            static_cast<double>(pos) / static_cast<double>(ranked.size());
        ++checked;
        break;
      }
    }
  }
  ASSERT_GT(checked, 10);
  EXPECT_LT(mean_fraction / checked, 0.3);
}

TEST_F(RankerTest, RankIsSortedDescending) {
  PairwiseRanker ranker(catalog_.get(), bm25_.get(), embedder_.get(), vocab_.get());
  PostingList candidates = {0, 1, 2, 3, 4, 5};
  const auto ranked = ranker.Rank({"red", "shoes"}, candidates);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
}

}  // namespace
}  // namespace cyqr
