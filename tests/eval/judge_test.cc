#include "eval/judge.h"

#include <gtest/gtest.h>

#include <memory>

namespace cyqr {
namespace {

class JudgeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = std::make_unique<Catalog>(Catalog::Generate({}));
    judge_ = std::make_unique<RelevanceJudge>(catalog_.get());
  }
  static void TearDownTestSuite() {
    judge_.reset();
    catalog_.reset();
  }
  static std::unique_ptr<Catalog> catalog_;
  static std::unique_ptr<RelevanceJudge> judge_;
};

std::unique_ptr<Catalog> JudgeTest::catalog_;
std::unique_ptr<RelevanceJudge> JudgeTest::judge_;

QueryIntent PhoneSeniorIntent() {
  QueryIntent intent;
  intent.category = "phone";
  intent.attributes = {"senior"};
  return intent;
}

TEST_F(JudgeTest, CanonicalRewriteScoresHigh) {
  EXPECT_GE(judge_->Score(PhoneSeniorIntent(), {"senior", "smartphone"}),
            0.9);
}

TEST_F(JudgeTest, WrongCategoryScoresZero) {
  EXPECT_EQ(judge_->Score(PhoneSeniorIntent(), {"leather", "shoes"}), 0.0);
}

TEST_F(JudgeTest, EmptyRewriteScoresZero) {
  EXPECT_EQ(judge_->Score(PhoneSeniorIntent(), {}), 0.0);
}

TEST_F(JudgeTest, DroppedAttributeLosesSomeCredit) {
  const double with_attr =
      judge_->Score(PhoneSeniorIntent(), {"senior", "smartphone"});
  const double without_attr =
      judge_->Score(PhoneSeniorIntent(), {"smartphone"});
  EXPECT_GT(with_attr, without_attr);
  EXPECT_GT(without_attr, 0.0);
}

TEST_F(JudgeTest, BrandSwitchIsFatal) {
  QueryIntent intent;
  intent.category = "shoes";
  intent.brand = "adibo";
  EXPECT_GT(judge_->Score(intent, {"adibo", "shoes"}), 0.5);
  EXPECT_EQ(judge_->Score(intent, {"niko", "shoes"}), 0.0);
  // Generalizing the brand away is acceptable but discounted.
  const double general = judge_->Score(intent, {"shoes"});
  EXPECT_GT(general, 0.0);
  EXPECT_LT(general, judge_->Score(intent, {"adibo", "shoes"}));
}

TEST_F(JudgeTest, OutOfCatalogTokenIsHeavilyPenalized) {
  // The "cherry fruit keyboard" failure: "fruit" never appears in keyboard
  // titles, so AND retrieval dies.
  QueryIntent intent;
  intent.category = "keyboard";
  intent.brand = "cherry";
  const double clean = judge_->Score(intent, {"cherry", "keyboard"});
  const double polluted =
      judge_->Score(intent, {"cherry", "fruit", "keyboard"});
  EXPECT_GT(clean, 0.8);
  EXPECT_LT(polluted, clean * 0.5);
}

TEST_F(JudgeTest, CompareProtocol) {
  const QueryIntent intent = PhoneSeniorIntent();
  const std::vector<std::vector<std::string>> good = {
      {"senior", "smartphone"}};
  const std::vector<std::vector<std::string>> bad = {{"leather", "shoes"}};
  EXPECT_EQ(judge_->Compare(intent, good, bad),
            RelevanceJudge::Verdict::kWin);
  EXPECT_EQ(judge_->Compare(intent, bad, good),
            RelevanceJudge::Verdict::kLose);
  EXPECT_EQ(judge_->Compare(intent, good, good),
            RelevanceJudge::Verdict::kTie);
}

TEST_F(JudgeTest, ScoreSetAverages) {
  const QueryIntent intent = PhoneSeniorIntent();
  const double single =
      judge_->ScoreSet(intent, {{"senior", "smartphone"}});
  const double mixed = judge_->ScoreSet(
      intent, {{"senior", "smartphone"}, {"leather", "shoes"}});
  EXPECT_NEAR(mixed, single / 2.0, 1e-9);
  EXPECT_EQ(judge_->ScoreSet(intent, {}), 0.0);
}

}  // namespace
}  // namespace cyqr
