#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace cyqr {
namespace {

TEST(MetricsTest, F1IdenticalQueriesIsOne) {
  EXPECT_DOUBLE_EQ(NGramF1({"senior", "phone"}, {"senior", "phone"}), 1.0);
}

TEST(MetricsTest, F1DisjointQueriesIsZero) {
  EXPECT_DOUBLE_EQ(NGramF1({"a", "b"}, {"c", "d"}), 0.0);
}

TEST(MetricsTest, F1PartialOverlap) {
  // rewritten {a,b,ab}, original {a,c,ac}; overlap {a} -> p=r=1/3.
  EXPECT_NEAR(NGramF1({"a", "b"}, {"a", "c"}), 1.0 / 3.0, 1e-9);
}

TEST(MetricsTest, F1SingleWordReplacementIsHigh) {
  // The rule-based pattern: one token swapped in a 4-token query.
  const double f1 = NGramF1({"red", "mens", "sport", "sneakers"},
                            {"red", "mens", "sport", "shoes"});
  EXPECT_GT(f1, 0.5);
}

TEST(MetricsTest, F1EmptyInputs) {
  EXPECT_DOUBLE_EQ(NGramF1({}, {"a"}), 0.0);
  EXPECT_DOUBLE_EQ(NGramF1({"a"}, {}), 0.0);
}

TEST(MetricsTest, TokenEditDistanceBasics) {
  EXPECT_EQ(TokenEditDistance({"a", "b"}, {"a", "b"}), 0);
  EXPECT_EQ(TokenEditDistance({"a", "b"}, {"a", "c"}), 1);
  EXPECT_EQ(TokenEditDistance({"a"}, {"a", "b", "c"}), 2);
  EXPECT_EQ(TokenEditDistance({}, {"x", "y"}), 2);
}

TEST(MetricsTest, CharEditDistanceClassic) {
  EXPECT_EQ(CharEditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(CharEditDistance("", "abc"), 3);
  EXPECT_EQ(CharEditDistance("same", "same"), 0);
}

TEST(MetricsTest, EditDistanceSymmetric) {
  EXPECT_EQ(TokenEditDistance({"a", "b", "c"}, {"b", "c"}),
            TokenEditDistance({"b", "c"}, {"a", "b", "c"}));
}

TEST(MetricsTest, CosineSimilarityBasics) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-9);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1}, {1, 2}), 0.0);  // Dim mismatch.
}

TEST(MetricsTest, CosineScaleInvariant) {
  EXPECT_NEAR(CosineSimilarity({1, 2, 3}, {2, 4, 6}), 1.0, 1e-9);
}

}  // namespace
}  // namespace cyqr
