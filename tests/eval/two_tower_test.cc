#include "eval/two_tower.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"

namespace cyqr {
namespace {

TEST(TwoTowerTest, EmbeddingsAreUnitNorm) {
  Rng rng(1);
  TwoTowerModel model(30, 8, rng);
  const auto q = model.EmbedQuery({4, 5, 6});
  double norm = 0.0;
  for (float v : q) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(norm, 1.0, 1e-5);
  EXPECT_EQ(q.size(), 8u);
}

TEST(TwoTowerTest, PoolingIsOrderInsensitiveForMeanTower) {
  Rng rng(2);
  TwoTowerModel model(30, 8, rng);
  const auto a = model.EmbedQuery({4, 5, 6});
  const auto b = model.EmbedQuery({6, 4, 5});
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-6f);
  }
}

TEST(TwoTowerTest, TrainingPullsClickedPairsTogether) {
  Rng rng(3);
  TwoTowerModel model(40, 16, rng);
  // Two disjoint "categories": queries 4-6 click titles 10-14, queries
  // 7-9 click titles 20-24.
  std::vector<SeqPair> pairs;
  for (int rep = 0; rep < 8; ++rep) {
    pairs.push_back({{4, 5}, {10, 11, 12}});
    pairs.push_back({{5, 6}, {11, 12, 13, 14}});
    pairs.push_back({{7, 8}, {20, 21, 22}});
    pairs.push_back({{8, 9}, {22, 23, 24}});
  }
  TwoTowerModel::TrainOptions options;
  options.steps = 200;
  options.batch_size = 8;
  const double loss = model.Train(pairs, options);
  EXPECT_LT(loss, 1.5);

  const auto q1 = model.EmbedQuery({4, 5});
  const auto t_same = model.EmbedTitle({10, 11, 12});
  const auto t_other = model.EmbedTitle({20, 21, 22});
  EXPECT_GT(CosineSimilarity(q1, t_same), CosineSimilarity(q1, t_other));

  // Queries of the same category are closer than across categories —
  // exactly what Table VII's cosine metric needs.
  const auto q_same = model.EmbedQuery({5, 6});
  const auto q_other = model.EmbedQuery({7, 8});
  EXPECT_GT(CosineSimilarity(q1, q_same), CosineSimilarity(q1, q_other));
}

}  // namespace
}  // namespace cyqr
