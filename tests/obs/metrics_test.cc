#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace cyqr {
namespace {

TEST(CounterTest, IncrementsAndDropsNegativeDeltas) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Increment(5);
  c.Increment(-100);  // Monotonic: negative deltas are dropped.
  c.Increment(0);
  EXPECT_EQ(c.Value(), 6);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
}

TEST(MetricsConcurrencyTest, NThreadsTimesMIncrementsIsExact) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  Counter counter;
  Histogram histogram({1.0, 2.0, 3.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram, t] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
        histogram.Observe(static_cast<double>((t + i) % 4));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kIncrements);
  EXPECT_EQ(histogram.Count(), kThreads * kIncrements);
  int64_t bucket_sum = 0;
  for (size_t i = 0; i <= histogram.bounds().size(); ++i) {
    bucket_sum += histogram.BucketCount(i);
  }
  EXPECT_EQ(bucket_sum, kThreads * kIncrements);
  EXPECT_DOUBLE_EQ(histogram.Max(), 3.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({10.0, 20.0, 30.0});
  h.Observe(10.0);  // Exactly on a bound: belongs to that bound's bucket.
  h.Observe(10.5);
  h.Observe(30.0);
  h.Observe(31.0);  // Beyond the last bound: overflow bucket.
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 1);
  EXPECT_EQ(h.BucketCount(3), 1);  // +Inf overflow.
  EXPECT_EQ(h.Count(), 4);
  EXPECT_DOUBLE_EQ(h.Max(), 31.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 10.0 + 10.5 + 30.0 + 31.0);
}

TEST(HistogramTest, QuantilesExactWhenDataFillsBuckets) {
  Histogram h({10.0, 20.0, 30.0, 40.0});
  for (int v = 1; v <= 40; ++v) h.Observe(static_cast<double>(v));
  EXPECT_DOUBLE_EQ(h.QuantileEstimate(0.25), 10.0);
  EXPECT_DOUBLE_EQ(h.QuantileEstimate(0.5), 20.0);
  EXPECT_DOUBLE_EQ(h.QuantileEstimate(0.75), 30.0);
  EXPECT_DOUBLE_EQ(h.QuantileEstimate(1.0), 40.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.5);
}

TEST(HistogramTest, QuantileOfOverflowBucketReportsMax) {
  Histogram h({1.0});
  h.Observe(100.0);
  h.Observe(200.0);
  EXPECT_DOUBLE_EQ(h.QuantileEstimate(0.99), 200.0);
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.Count(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.QuantileEstimate(0.5), 0.0);
}

TEST(HistogramTest, MergeFromAddsEverything) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.Observe(0.5);
  b.Observe(1.5);
  b.Observe(9.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 3);
  EXPECT_EQ(a.BucketCount(0), 1);
  EXPECT_EQ(a.BucketCount(1), 1);
  EXPECT_EQ(a.BucketCount(2), 1);
  EXPECT_DOUBLE_EQ(a.Sum(), 11.0);
  EXPECT_DOUBLE_EQ(a.Max(), 9.0);
}

TEST(MetricNameTest, AcceptsConventionalNames) {
  EXPECT_TRUE(IsValidMetricName("cyqr_serving_requests_total"));
  EXPECT_TRUE(IsValidMetricName("cyqr_serving_rung_latency_millis"));
  EXPECT_TRUE(IsValidMetricName("cyqr_decode_topn_time_micros"));
  EXPECT_TRUE(IsValidMetricName("cyqr_train_tokens_per_sec"));
  EXPECT_TRUE(IsValidMetricName("cyqr_train_grad_norm"));
  EXPECT_TRUE(IsValidMetricName("cyqr_serving_breaker_state"));
}

TEST(MetricNameTest, RejectsNonConventionalNames) {
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("serving_requests_total"));  // No prefix.
  EXPECT_FALSE(IsValidMetricName("cyqr_requests_total"));     // No layer.
  EXPECT_FALSE(IsValidMetricName("cyqr_serving_requests"));   // No unit.
  EXPECT_FALSE(IsValidMetricName("cyqr_serving_Requests_total"));  // Case.
  EXPECT_FALSE(IsValidMetricName("cyqr_serving__requests_total"));
  EXPECT_FALSE(IsValidMetricName("cyqr_serving_requests_total_"));
  EXPECT_FALSE(IsValidMetricName("cyqr_serving_latency_ms"));  // Bad unit.
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("cyqr_test_requests_total");
  Counter* b = registry.GetCounter("cyqr_test_requests_total");
  EXPECT_EQ(a, b);
  Counter* cache =
      registry.GetCounter("cyqr_test_requests_total", {{"rung", "cache"}});
  EXPECT_NE(a, cache);
  // Label order does not matter: the sorted label set is the identity.
  Counter* ab = registry.GetCounter("cyqr_test_multi_total",
                                    {{"a", "1"}, {"b", "2"}});
  Counter* ba = registry.GetCounter("cyqr_test_multi_total",
                                    {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(ab, ba);
}

TEST(MetricsRegistryTest, HistogramKeepsBoundsAcrossLookups) {
  MetricsRegistry registry;
  const std::vector<double> bounds = {1.0, 2.0};
  Histogram* a = registry.GetHistogram("cyqr_test_latency_millis", bounds);
  Histogram* b = registry.GetHistogram("cyqr_test_latency_millis", bounds);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->bounds(), bounds);
}

TEST(MetricsRegistryTest, ExpositionTextGolden) {
  MetricsRegistry registry;
  registry.GetCounter("cyqr_test_requests_total", {{"rung", "cache"}})
      ->Increment(3);
  registry.GetGauge("cyqr_test_queue_depth_value")->Set(1.5);
  Histogram* h =
      registry.GetHistogram("cyqr_test_latency_millis", {1.0, 2.5});
  h->Observe(0.5);
  h->Observe(2.0);
  h->Observe(10.0);
  // Families are alphabetical; buckets are cumulative with a +Inf closer.
  const std::string expected =
      "# TYPE cyqr_test_latency_millis histogram\n"
      "cyqr_test_latency_millis_bucket{le=\"1\"} 1\n"
      "cyqr_test_latency_millis_bucket{le=\"2.5\"} 2\n"
      "cyqr_test_latency_millis_bucket{le=\"+Inf\"} 3\n"
      "cyqr_test_latency_millis_sum 12.5\n"
      "cyqr_test_latency_millis_count 3\n"
      "# TYPE cyqr_test_queue_depth_value gauge\n"
      "cyqr_test_queue_depth_value 1.5\n"
      "# TYPE cyqr_test_requests_total counter\n"
      "cyqr_test_requests_total{rung=\"cache\"} 3\n";
  EXPECT_EQ(registry.ExpositionText(), expected);
}

TEST(MetricsRegistryTest, JsonSnapshotContainsAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("cyqr_test_requests_total")->Increment(7);
  registry.GetGauge("cyqr_test_loss_value")->Set(0.25);
  Histogram* h =
      registry.GetHistogram("cyqr_test_latency_millis", {1.0, 2.0});
  h->Observe(1.5);
  const std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"cyqr_test_requests_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"cyqr_test_loss_value\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"cyqr_test_latency_millis\""),
            std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+Inf\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
}

TEST(MetricsRegistryTest, WriteJsonSnapshotReportsIoFailure) {
  MetricsRegistry registry;
  registry.GetCounter("cyqr_test_requests_total")->Increment();
  const Status s =
      registry.WriteJsonSnapshot("/nonexistent-dir/metrics.json");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndRecording) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIncrements; ++i) {
        // Lookup + record every iteration: hammers the registration path
        // and the lock-free fast path together.
        registry.GetCounter("cyqr_test_shared_requests_total")->Increment();
        registry
            .GetHistogram("cyqr_test_shared_latency_millis", {1.0, 2.0})
            ->Observe(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("cyqr_test_shared_requests_total")->Value(),
            kThreads * kIncrements);
  EXPECT_EQ(registry
                .GetHistogram("cyqr_test_shared_latency_millis", {1.0, 2.0})
                ->Count(),
            kThreads * kIncrements);
}

TEST(MetricsRegistryTest, GlobalIsStable) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
}

TEST(HistogramExemplarTest, LastWriterWinsPerBucketAndZeroIdIsIgnored) {
  Histogram h({1.0, 10.0});
  EXPECT_EQ(h.ExemplarTraceId(0), 0u);  // Never observed: no exemplar.
  h.Observe(0.5, /*exemplar_id=*/0xabc);
  h.Observe(0.7, /*exemplar_id=*/0xdef);  // Same bucket: last writer wins.
  h.Observe(5.0, /*exemplar_id=*/0x123);
  h.Observe(0.9);  // Plain Observe (id 0) must not clear the exemplar.
  EXPECT_EQ(h.ExemplarTraceId(0), 0xdefu);
  EXPECT_DOUBLE_EQ(h.ExemplarValue(0), 0.7);
  EXPECT_EQ(h.ExemplarTraceId(1), 0x123u);
  EXPECT_DOUBLE_EQ(h.ExemplarValue(1), 5.0);
  EXPECT_EQ(h.ExemplarTraceId(2), 0u);  // Overflow bucket untouched.
}

TEST(HistogramExemplarTest, MergeFromTakesOtherExemplarsWhereSet) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  a.Observe(0.5, /*exemplar_id=*/0x111);
  a.Observe(5.0, /*exemplar_id=*/0x222);
  b.Observe(5.5, /*exemplar_id=*/0x333);  // Only bucket 1 set in b.
  a.MergeFrom(b);
  // Bucket 0: b had none, a keeps its own. Bucket 1: b's wins.
  EXPECT_EQ(a.ExemplarTraceId(0), 0x111u);
  EXPECT_EQ(a.ExemplarTraceId(1), 0x333u);
  EXPECT_DOUBLE_EQ(a.ExemplarValue(1), 5.5);
}

TEST(HistogramExemplarTest, ExpositionCarriesTraceIdAnnotation) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("cyqr_test_latency_millis", {1.0, 2.5});
  h->Observe(0.5, /*exemplar_id=*/0x1f);
  const std::string text = registry.ExpositionText();
  // OpenMetrics-style suffix on the bucket line: the 16-hex trace id plus
  // the observed value that carried it.
  EXPECT_NE(
      text.find("cyqr_test_latency_millis_bucket{le=\"1\"} 1 "
                "# {trace_id=\"000000000000001f\"} 0.5"),
      std::string::npos)
      << text;
}

// Satellite property test for Histogram::MergeFrom: two histograms
// populated concurrently from a deterministic stream, split arbitrarily
// between them, must merge into exactly the histogram that saw the whole
// stream single-threaded — buckets, count, sum, and max all equal.
TEST(MetricsConcurrencyTest, MergeOfConcurrentlyPopulatedHalvesIsExact) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0, 8.0};
  Histogram left(bounds);
  Histogram right(bounds);
  Histogram reference(bounds);

  // Deterministic value stream: values spread across every bucket
  // (including overflow) with an integer-friendly pattern so the sums
  // compare exactly even in floating point.
  constexpr int kThreadsPerSide = 4;
  constexpr int kValuesPerThread = 25000;
  const auto value_at = [](int thread, int i) {
    return static_cast<double>((thread * 31 + i) % 40) * 0.25;
  };
  for (int t = 0; t < 2 * kThreadsPerSide; ++t) {
    for (int i = 0; i < kValuesPerThread; ++i) {
      reference.Observe(value_at(t, i));
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < 2 * kThreadsPerSide; ++t) {
    Histogram* target = t < kThreadsPerSide ? &left : &right;
    threads.emplace_back([target, t, &value_at] {
      for (int i = 0; i < kValuesPerThread; ++i) {
        target->Observe(value_at(t, i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  left.MergeFrom(right);
  ASSERT_EQ(left.Count(), reference.Count());
  for (size_t i = 0; i <= bounds.size(); ++i) {
    EXPECT_EQ(left.BucketCount(i), reference.BucketCount(i))
        << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(left.Sum(), reference.Sum());
  EXPECT_DOUBLE_EQ(left.Max(), reference.Max());
  EXPECT_DOUBLE_EQ(left.Mean(), reference.Mean());
}

}  // namespace
}  // namespace cyqr
