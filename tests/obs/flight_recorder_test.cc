#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace cyqr {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlightEventNameTest, AcceptsDottedLowercaseSegments) {
  EXPECT_TRUE(IsValidFlightEventName("serving.rung"));
  EXPECT_TRUE(IsValidFlightEventName("train.step_begin"));
  EXPECT_TRUE(IsValidFlightEventName("collective.barrier_wait"));
  EXPECT_TRUE(IsValidFlightEventName("train.dp.worker_loop"));
  EXPECT_TRUE(IsValidFlightEventName("queue.shed2"));
}

TEST(FlightEventNameTest, RejectsMalformedNames) {
  EXPECT_FALSE(IsValidFlightEventName(""));
  EXPECT_FALSE(IsValidFlightEventName("rung"));           // Single segment.
  EXPECT_FALSE(IsValidFlightEventName("Serving.rung"));   // Uppercase.
  EXPECT_FALSE(IsValidFlightEventName("serving..rung"));  // Empty segment.
  EXPECT_FALSE(IsValidFlightEventName(".serving.rung"));  // Leading dot.
  EXPECT_FALSE(IsValidFlightEventName("serving.rung."));  // Trailing dot.
  EXPECT_FALSE(IsValidFlightEventName("serving rung"));   // Space.
  EXPECT_FALSE(IsValidFlightEventName("serving.r-ung"));  // Dash.
}

TEST(FlightCategoryTest, NamesAreStableLowercaseLabels) {
  EXPECT_STREQ(FlightCategoryName(FlightCategory::kServing), "serving");
  EXPECT_STREQ(FlightCategoryName(FlightCategory::kQueue), "queue");
  EXPECT_STREQ(FlightCategoryName(FlightCategory::kTrain), "train");
  EXPECT_STREQ(FlightCategoryName(FlightCategory::kCollective),
               "collective");
  EXPECT_STREQ(FlightCategoryName(FlightCategory::kFault), "fault");
  EXPECT_STREQ(FlightCategoryName(FlightCategory::kGeneral), "general");
}

TEST(FlightRecorderTest, InternNameIsIdempotent) {
  FlightRecorder recorder(/*events_per_thread=*/64);
  const int32_t a = recorder.InternName("serving.rung");
  const int32_t b = recorder.InternName("serving.rung");
  const int32_t c = recorder.InternName("queue.shed");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FlightRecorderTest, RecordedEventsSurfaceInTimeOrder) {
  FlightRecorder recorder(/*events_per_thread=*/64);
  const int32_t begin_id = recorder.InternName("train.step_begin");
  const int32_t end_id = recorder.InternName("train.step_end");
  recorder.Record(FlightCategory::kTrain, begin_id, /*arg0=*/7, /*arg1=*/11);
  recorder.Record(FlightCategory::kTrain, end_id, /*arg0=*/7, /*arg1=*/42);

  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "train.step_begin");
  EXPECT_EQ(events[0].category, FlightCategory::kTrain);
  EXPECT_EQ(events[0].arg0, 7);
  EXPECT_EQ(events[0].arg1, 11);
  EXPECT_STREQ(events[1].name, "train.step_end");
  EXPECT_EQ(events[1].arg1, 42);
  EXPECT_LE(events[0].t_micros, events[1].t_micros);
  EXPECT_EQ(recorder.events_recorded_total(), 2);
  EXPECT_EQ(recorder.events_dropped_total(), 0);
  EXPECT_EQ(recorder.thread_count(), 1);
}

TEST(FlightRecorderTest, RingWrapKeepsNewestAndCountsDropped) {
  FlightRecorder recorder(/*events_per_thread=*/8);
  ASSERT_EQ(recorder.events_per_thread(), 8u);
  const int32_t id = recorder.InternName("general.tick");
  for (int64_t i = 0; i < 20; ++i) {
    recorder.Record(FlightCategory::kGeneral, id, i);
  }
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The ring keeps the newest 8 of the 20: arg0 in [12, 19], in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg0, static_cast<int64_t>(12 + i));
  }
  EXPECT_EQ(recorder.events_recorded_total(), 20);
  EXPECT_EQ(recorder.events_dropped_total(), 12);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder(/*events_per_thread=*/5);
  EXPECT_EQ(recorder.events_per_thread(), 8u);
}

TEST(FlightRecorderTest, JournalJsonBoundsEventCountAndKeepsNewest) {
  FlightRecorder recorder(/*events_per_thread=*/64);
  const int32_t id = recorder.InternName("general.tick");
  for (int64_t i = 0; i < 10; ++i) {
    recorder.Record(FlightCategory::kGeneral, id, i);
  }
  const std::string full = recorder.JournalJson();
  EXPECT_NE(full.find("\"version\":1"), std::string::npos);
  EXPECT_NE(full.find("\"source\":\"snapshot\""), std::string::npos);
  EXPECT_NE(full.find("\"recorded_total\":10"), std::string::npos);
  EXPECT_NE(full.find("\"name\":\"general.tick\""), std::string::npos);
  EXPECT_NE(full.find("\"arg0\":0"), std::string::npos);

  const std::string bounded = recorder.JournalJson(/*max_events=*/3);
  // Only the newest three events survive the bound.
  EXPECT_EQ(bounded.find("\"arg0\":0,"), std::string::npos);
  EXPECT_NE(bounded.find("\"arg0\":7"), std::string::npos);
  EXPECT_NE(bounded.find("\"arg0\":9"), std::string::npos);
}

TEST(FlightRecorderTest, WriteJournalProducesReadableFile) {
  FlightRecorder recorder(/*events_per_thread=*/64);
  const int32_t id = recorder.InternName("train.checkpoint");
  recorder.Record(FlightCategory::kTrain, id, /*arg0=*/5, /*arg1=*/123);
  const std::string path = testing::TempDir() + "/flight_journal.json";
  ASSERT_TRUE(recorder.WriteJournal(path).ok());
  const std::string contents = ReadFile(path);
  EXPECT_NE(contents.find("\"version\":1"), std::string::npos);
  EXPECT_NE(contents.find("\"name\":\"train.checkpoint\""),
            std::string::npos);
  EXPECT_NE(contents.find("\"arg1\":123"), std::string::npos);
}

TEST(FlightRecorderTest, CrashDumpWritesSourceTaggedJournal) {
  FlightRecorder recorder(/*events_per_thread=*/64);
  const std::string path = testing::TempDir() + "/flight_crash.json";
  recorder.EnableCrashDump(path);
  const int32_t id = recorder.InternName("serving.request");
  recorder.Record(FlightCategory::kServing, id, /*arg0=*/1, /*arg1=*/2);
  recorder.WriteCrashDumpNow("unit-test");
  const std::string contents = ReadFile(path);
  EXPECT_NE(contents.find("\"version\":1"), std::string::npos);
  EXPECT_NE(contents.find("\"source\":\"unit-test\""), std::string::npos);
  EXPECT_NE(contents.find("\"name\":\"serving.request\""),
            std::string::npos);
  // No stray temp file left behind after the rename.
  std::ifstream tmp(path + ".crash.tmp");
  EXPECT_FALSE(tmp.good());
}

// The TSan drill behind the "lock-free and coherent while written"
// acceptance criterion: several writer threads hammer their rings while a
// reader snapshots concurrently. Every surfaced event must be internally
// consistent (untorn) and per-thread event streams must stay in program
// order in the stitched journal.
TEST(FlightRecorderConcurrencyTest, SnapshotWhileWritingStitchesCoherently) {
  constexpr int kWriters = 4;
  constexpr int64_t kEventsPerWriter = 5000;
  FlightRecorder recorder(/*events_per_thread=*/1024);
  const int32_t id = recorder.InternName("general.drill");

  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    // ordering: relaxed — plain stop flag; the join below synchronizes.
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const std::vector<FlightEvent> events = recorder.Snapshot();
      for (const FlightEvent& event : events) {
        // Writer w records (arg0, arg1) = (w, i * 1000003 + w): any torn
        // slot breaks this relation.
        ASSERT_EQ(event.arg1 % 1000003, event.arg0);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, id, w] {
      for (int64_t i = 0; i < kEventsPerWriter; ++i) {
        recorder.Record(FlightCategory::kGeneral, id, w, i * 1000003 + w);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  // ordering: relaxed — see the stop-flag note above.
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(recorder.events_recorded_total(), kWriters * kEventsPerWriter);
  EXPECT_EQ(recorder.thread_count(), kWriters);

  // Quiescent snapshot: each writer's surviving events appear in program
  // order (arg1 strictly increasing per thread) and the stitched journal
  // is globally time-ordered.
  const std::vector<FlightEvent> events = recorder.Snapshot();
  EXPECT_EQ(events.size(), static_cast<size_t>(kWriters) * 1024);
  std::map<int32_t, int64_t> last_ticket;
  int64_t last_t = 0;
  for (const FlightEvent& event : events) {
    EXPECT_GE(event.t_micros, last_t);
    last_t = event.t_micros;
    auto it = last_ticket.find(event.thread_index);
    if (it != last_ticket.end()) {
      EXPECT_GT(event.arg1, it->second)
          << "thread " << event.thread_index
          << " events out of program order";
    }
    last_ticket[event.thread_index] = event.arg1;
  }
  EXPECT_EQ(last_ticket.size(), static_cast<size_t>(kWriters));
}

}  // namespace
}  // namespace cyqr
