#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/deadline.h"
#include "core/fault.h"
#include "core/status.h"
#include "obs/metrics.h"
#include "serving/backends.h"
#include "serving/fault_injection.h"
#include "serving/kv_store.h"
#include "serving/rewrite_service.h"

namespace cyqr {
namespace {

TEST(TraceTest, SpanRecordsNameDetailAndOutcome) {
  Trace trace;
  {
    TraceSpan span(&trace, "rung:cache");
    span.SetDetail("hit");
  }
  {
    TraceSpan span(&trace, "rung:direct-model");
    span.SetStatus(Status::Internal("decode blew up"));
  }
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].name, "rung:cache");
  EXPECT_EQ(trace.events()[0].detail, "hit");
  EXPECT_TRUE(trace.events()[0].ok);
  EXPECT_EQ(trace.events()[1].name, "rung:direct-model");
  EXPECT_FALSE(trace.events()[1].ok);
  EXPECT_EQ(trace.events()[1].detail, "Internal: decode blew up");
  EXPECT_EQ(trace.PathString(),
            "rung:cache:hit -> rung:direct-model:Internal: decode blew up");
}

TEST(TraceTest, OkStatusKeepsDetailAndOkFlag) {
  Trace trace;
  {
    TraceSpan span(&trace, "step");
    span.SetDetail("hit");
    span.SetStatus(Status::OK());
  }
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_TRUE(trace.events()[0].ok);
  EXPECT_EQ(trace.events()[0].detail, "hit");
}

TEST(TraceTest, ExplicitEndMakesDestructorIdempotent) {
  Trace trace;
  {
    TraceSpan span(&trace, "step");
    span.End();
    span.End();  // Second End (and the destructor) must not double-record.
  }
  EXPECT_EQ(trace.events().size(), 1u);
}

TEST(TraceTest, NullTraceIsNoOp) {
  TraceSpan span(nullptr, "rung:cache");
  span.SetDetail("hit");
  span.MarkFailed();
  span.End();  // Must not crash or record anywhere.
}

TEST(TraceTest, AnnotateRecordsInstantEvent) {
  Trace trace;
  trace.Annotate("breaker", "closed -> open");
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].name, "breaker");
  EXPECT_EQ(trace.events()[0].detail, "closed -> open");
  EXPECT_DOUBLE_EQ(trace.events()[0].duration_millis, 0.0);
  EXPECT_TRUE(trace.events()[0].ok);
  EXPECT_NE(trace.ToString().find("breaker: closed -> open"),
            std::string::npos);
}

// --- Serving-path trace tests: the ladder under injected faults. ---------

/// Model stub with a scriptable response: OK+candidates, OK+empty (miss),
/// or a fixed error.
class StubModelBackend : public ModelBackend {
 public:
  enum class Mode { kHit, kMiss, kError };

  explicit StubModelBackend(Mode mode) : mode_(mode) {}

  [[nodiscard]] Status Rewrite(const std::vector<std::string>& query_tokens,
                               int64_t k, int64_t max_len, Deadline& deadline,
                               std::vector<RewriteCandidate>* out) override {
    (void)query_tokens;
    (void)k;
    (void)max_len;
    (void)deadline;
    out->clear();
    switch (mode_) {
      case Mode::kHit: {
        RewriteCandidate c;
        c.tokens = {"stub", "rewrite"};
        out->push_back(std::move(c));
        return Status::OK();
      }
      case Mode::kMiss:
        return Status::OK();
      case Mode::kError:
        return Status::Internal("stub model failure");
    }
    return Status::OK();
  }

 private:
  Mode mode_;
};

TEST(ServingTraceTest, CacheOutageTraceNamesEveryRungInOrder) {
  // Cache is 100% down (injected IoError); the model runs but has nothing
  // to say; no rules configured. The trace must name the full ladder walk:
  // cache error -> model miss -> rules skipped -> passthrough answer.
  RewriteKvStore store;
  KvStoreBackend real_cache(&store);
  StubModelBackend real_model(StubModelBackend::Mode::kMiss);
  FaultPlan plan;
  plan.cache.error_probability = 1.0;
  plan.cache.error_code = StatusCode::kIoError;
  FaultHarness faults(&real_cache, &real_model, plan);
  RewriteService service(&faults.cache, &faults.model, nullptr, {});

  Trace trace;
  const RewriteService::Response response =
      service.Serve({"red", "dress"}, Deadline::AfterMillis(50.0), &trace);

  EXPECT_EQ(response.source, RewriteService::Source::kPassthrough);
  EXPECT_TRUE(response.degraded);
  ASSERT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.events()[0].name, "rung:cache");
  EXPECT_FALSE(trace.events()[0].ok);
  EXPECT_NE(trace.events()[0].detail.find("injected fault"),
            std::string::npos);
  EXPECT_EQ(trace.events()[1].name, "rung:direct-model");
  EXPECT_EQ(trace.events()[1].detail, "miss");
  EXPECT_TRUE(trace.events()[1].ok);
  EXPECT_EQ(trace.events()[2].name, "rung:rule-based");
  EXPECT_EQ(trace.events()[2].detail, "skipped(no rules)");
  EXPECT_EQ(trace.events()[3].name, "rung:passthrough");
  EXPECT_EQ(trace.events()[3].detail, "hit");
}

TEST(ServingTraceTest, HealthyCacheHitTraceIsOneSpan) {
  RewriteKvStore store;
  store.Put("red dress", {{"crimson", "gown"}});
  RewriteService service(&store, nullptr, {});
  Trace trace;
  const RewriteService::Response response =
      service.Serve({"red", "dress"}, Deadline::AfterMillis(50.0), &trace);
  EXPECT_EQ(response.source, RewriteService::Source::kCache);
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].name, "rung:cache");
  EXPECT_EQ(trace.events()[0].detail, "hit");
  EXPECT_EQ(trace.PathString(), "rung:cache:hit");
}

TEST(ServingTraceTest, BreakerTripIsAnnotatedInTrace) {
  // A wedged model trips the breaker after `failure_threshold` failures;
  // the transition must show up as a "breaker" annotation, and later
  // requests must record the model rung as skipped(breaker open).
  RewriteKvStore store;
  KvStoreBackend cache(&store);
  StubModelBackend model(StubModelBackend::Mode::kError);
  RewriteService::Options options;
  options.breaker.failure_threshold = 3;
  RewriteService service(&cache, &model, nullptr, options);

  Trace trip_trace;
  for (int i = 0; i < 3; ++i) {
    Trace* trace = (i == 2) ? &trip_trace : nullptr;
    service.Serve({"query"}, Deadline::AfterMillis(50.0), trace);
  }
  EXPECT_NE(trip_trace.PathString().find("breaker:closed -> open"),
            std::string::npos);

  Trace open_trace;
  service.Serve({"query"}, Deadline::AfterMillis(50.0), &open_trace);
  EXPECT_NE(open_trace.PathString().find(
                "rung:direct-model:skipped(breaker open)"),
            std::string::npos);
}

// --- The accounting invariant of ISSUE.md: under a fault drill, the
// per-rung answer counters must exactly account for every request. -------

int64_t RungAnswers(MetricsRegistry& registry, const char* rung) {
  return registry
      .GetCounter("cyqr_serving_rung_answers_total", {{"rung", rung}})
      ->Value();
}

TEST(ServingMetricsTest, RungAnswersSumToRequestsUnderMixedFaults) {
  // Flaky cache and flaky model (30%/40% injected errors) over a store
  // that answers some queries, a model that answers the rest: whatever
  // path each request takes, exactly one rung answers it.
  RewriteKvStore store;
  store.Put("head query", {{"precomputed", "rewrite"}});
  KvStoreBackend real_cache(&store);
  StubModelBackend real_model(StubModelBackend::Mode::kHit);
  FaultPlan plan;
  plan.cache.error_probability = 0.3;
  plan.model.error_probability = 0.4;
  plan.seed = 7;
  FaultHarness faults(&real_cache, &real_model, plan);

  MetricsRegistry registry;
  RewriteService service(&faults.cache, &faults.model, nullptr, {},
                         &registry);

  constexpr int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    const std::vector<std::string> query =
        (i % 2 == 0) ? std::vector<std::string>{"head", "query"}
                     : std::vector<std::string>{"tail", "query"};
    service.Serve(query, Deadline::AfterMillis(50.0), nullptr);
  }

  const int64_t requests =
      registry.GetCounter("cyqr_serving_requests_total")->Value();
  EXPECT_EQ(requests, kRequests);
  const int64_t answers = RungAnswers(registry, "cache") +
                          RungAnswers(registry, "direct-model") +
                          RungAnswers(registry, "rule-based") +
                          RungAnswers(registry, "passthrough");
  EXPECT_EQ(answers, requests);

  // Every request's latency was booked exactly once.
  EXPECT_EQ(registry
                .GetHistogram("cyqr_serving_request_latency_millis",
                              Histogram::DefaultLatencyBoundsMillis())
                ->Count(),
            kRequests);
  // The drill injected real faults, so some requests must have degraded —
  // and degraded can never exceed the request count.
  const int64_t degraded =
      registry.GetCounter("cyqr_serving_degraded_total")->Value();
  EXPECT_GT(degraded, 0);
  EXPECT_LE(degraded, requests);
}

TEST(ServingMetricsTest, SkippedRungsAreBookedAsSkippedNotAttempts) {
  MetricsRegistry registry;
  RewriteKvStore store;
  RewriteService service(&store, nullptr, {}, nullptr, &registry);
  service.Serve({"anything"});
  EXPECT_EQ(registry
                .GetCounter("cyqr_serving_rung_skipped_total",
                            {{"rung", "direct-model"}})
                ->Value(),
            1);
  EXPECT_EQ(registry
                .GetCounter("cyqr_serving_rung_attempts_total",
                            {{"rung", "direct-model"}})
                ->Value(),
            0);
  EXPECT_EQ(RungAnswers(registry, "passthrough"), 1);
}

TEST(TraceIdTest, IdsAreUniqueNonZeroAndHexRendered) {
  Trace a;
  Trace b;
  EXPECT_NE(a.id(), 0u);
  EXPECT_NE(b.id(), 0u);
  EXPECT_NE(a.id(), b.id());
  const std::string hex = a.IdHex();
  ASSERT_EQ(hex.size(), 16u);  // Fixed-width: the /tracez join format.
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
        << "non-hex char '" << c << "' in " << hex;
  }
}

TEST(TraceSamplerTest, RetainsRecentAndSlowestPerOutcome) {
  TraceSampler sampler(/*keep_per_bucket=*/2);
  // Four traces in one bucket: with keep=2 only the 2 newest and the 2
  // slowest survive.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    Trace t;
    t.Annotate("serve", "cache");
    sampler.Sample(t, "cache");
    ids.push_back(t.id());
  }
  Trace failed;
  sampler.Sample(failed, "failed");

  const std::vector<TraceSampler::BucketView> buckets = sampler.Snapshot();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].outcome, "cache");  // Sorted by outcome name.
  EXPECT_EQ(buckets[1].outcome, "failed");
  ASSERT_EQ(buckets[0].recent.size(), 2u);
  EXPECT_EQ(buckets[0].slowest.size(), 2u);
  // Recent view is newest-first: the last two sampled ids, in reverse.
  EXPECT_EQ(buckets[0].recent[0].trace_id, ids[3]);
  EXPECT_EQ(buckets[0].recent[1].trace_id, ids[2]);
  EXPECT_EQ(sampler.sampled_total(), 5);
}

TEST(TraceSamplerTest, FindResolvesRetainedIdsAndRejectsEvicted) {
  TraceSampler sampler(/*keep_per_bucket=*/1);
  Trace first;
  sampler.Sample(first, "cache");
  Trace second;
  sampler.Sample(second, "cache");

  TraceRecord record;
  ASSERT_TRUE(sampler.Find(second.id(), &record));
  EXPECT_EQ(record.trace_id, second.id());
  EXPECT_EQ(record.outcome, "cache");
  EXPECT_FALSE(sampler.Find(0xdead0000beef0000u, &record));
}

}  // namespace
}  // namespace cyqr
