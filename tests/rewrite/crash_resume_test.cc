// The crash-injection drill: kill training at an arbitrary step (real
// fork + hard exit, mimicking SIGKILL), resume from the newest
// checkpoint, and require the finished run to be bit-identical to one
// that was never interrupted. Also covers the NaN/grad-norm guardrails.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "rewrite/checkpoint.h"
#include "rewrite/trainer.h"

namespace cyqr {
namespace {

struct TinyWorld {
  Vocabulary vocab;
  std::vector<SeqPair> pairs;
};

TinyWorld MakeTinyWorld() {
  TinyWorld world;
  const std::vector<std::vector<std::string>> corpus = {
      {"cheap", "phone"},  {"brandx", "model1", "smartphone", "budget"},
      {"senior", "phone"}, {"brandx", "model2", "smartphone", "elderly"},
      {"gift", "watch"},   {"brandy", "luxury", "wrist", "watch"},
  };
  world.vocab = Vocabulary::Build(corpus);
  for (size_t i = 0; i + 1 < corpus.size(); i += 2) {
    world.pairs.push_back({world.vocab.Encode(corpus[i]),
                           world.vocab.Encode(corpus[i + 1])});
  }
  return world;
}

CycleConfig TinyConfig(int64_t vocab_size) {
  CycleConfig config = PaperScaledConfig(vocab_size);
  config.forward.num_layers = 1;
  config.forward.d_model = 16;
  config.forward.ff_hidden = 32;
  config.backward.num_layers = 1;
  config.backward.d_model = 16;
  config.backward.ff_hidden = 32;
  config.backward.vocab_size = vocab_size;
  config.max_title_len = 8;
  config.max_query_len = 6;
  return config;
}

/// The shared run shape: short warmup then a few cyclic steps, so the
/// replay covers both phases of Algorithm 1 (the cyclic phase draws from
/// both the batch RNG and the dropout RNG, the hard case for resume).
CycleTrainerOptions DrillOptions() {
  CycleTrainerOptions options;
  options.max_steps = 24;
  options.warmup_steps = 18;
  options.batch_size = 2;
  options.eval_every = 12;
  options.eval_queries = 3;
  return options;
}

struct TrainRun {
  std::unique_ptr<Rng> rng;
  std::unique_ptr<CycleModel> model;
  std::unique_ptr<CycleTrainer> trainer;
};

TrainRun MakeRun(const TinyWorld& world, const CycleTrainerOptions& options) {
  TrainRun run;
  run.rng = std::make_unique<Rng>(7);
  run.model = std::make_unique<CycleModel>(TinyConfig(world.vocab.size()),
                                           *run.rng);
  run.trainer = std::make_unique<CycleTrainer>(run.model.get(), world.pairs,
                                               options);
  return run;
}

std::vector<float> FlattenParams(const CycleModel& model) {
  std::vector<float> flat;
  for (const Tensor& p : model.Parameters()) {
    flat.insert(flat.end(), p.data(), p.data() + p.NumElements());
  }
  return flat;
}

std::string FreshDir(const char* name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CrashResumeTest, ResumeIsBitIdenticalToUninterruptedRun) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DrillOptions();

  // Reference: uninterrupted.
  TrainRun reference = MakeRun(world, options);
  ASSERT_TRUE(reference.trainer->Train(world.pairs).ok());

  // Interrupted: stop at an arbitrary step past a checkpoint, then a
  // brand-new process-equivalent (fresh model, fresh trainer) resumes.
  options.checkpoint_every = 5;
  options.checkpoint_dir = FreshDir("resume_bitident");
  TrainRun first = MakeRun(world, options);
  {
    CycleTrainerOptions partial = options;
    partial.max_steps = 17;  // "Killed" at step 17; newest checkpoint: 15.
    TrainRun interrupted = MakeRun(world, partial);
    ASSERT_TRUE(interrupted.trainer->Train(world.pairs).ok());
  }
  ASSERT_TRUE(first.trainer->ResumeLatest().ok());
  EXPECT_EQ(first.trainer->step(), 15);
  ASSERT_TRUE(first.trainer->Train(world.pairs).ok());

  // Wait: the reference ran WITHOUT checkpointing — prove writing
  // checkpoints did not perturb training either.
  EXPECT_EQ(FlattenParams(*reference.model), FlattenParams(*first.model));
  ASSERT_EQ(reference.trainer->curve().size(),
            first.trainer->curve().size());
  for (size_t i = 0; i < reference.trainer->curve().size(); ++i) {
    EXPECT_EQ(reference.trainer->curve()[i].translate_back_log_prob,
              first.trainer->curve()[i].translate_back_log_prob);
    EXPECT_EQ(reference.trainer->curve()[i].q2t_perplexity,
              first.trainer->curve()[i].q2t_perplexity);
  }
  EXPECT_EQ(reference.trainer->grad_norms(), first.trainer->grad_norms());
}

TEST(CrashResumeTest, ForkKillResumeMatchesUninterrupted) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DrillOptions();
  options.checkpoint_every = 5;
  options.checkpoint_dir = FreshDir("fork_drill");

  // Child: train with a hard crash injected mid-run. SimulateCrash uses
  // _Exit(137), the same observable as SIGKILL — no destructors, no
  // flushes, nothing graceful.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    CycleTrainerOptions crash = options;
    crash.fault_plan.crash_at_step = 13;
    TrainRun child = MakeRun(world, crash);
    const Status status = child.trainer->Train(world.pairs);
    (void)status;
    _Exit(0);  // Reaching here means the crash never fired.
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 137) << "child did not die at the drill";

  // The kill at step 13 must leave the rotation's newest checkpoint at
  // step 10, written atomically — never a torn file.
  Result<std::string> latest =
      LatestCheckpointFile(options.checkpoint_dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_NE(latest.value().find(CheckpointFileName(10)), std::string::npos);

  // Parent: resume in a fresh trainer and finish.
  TrainRun resumed = MakeRun(world, options);
  ASSERT_TRUE(resumed.trainer->ResumeLatest().ok());
  EXPECT_EQ(resumed.trainer->step(), 10);
  ASSERT_TRUE(resumed.trainer->Train(world.pairs).ok());

  // Reference: the same schedule never interrupted (no checkpointing).
  TrainRun reference = MakeRun(world, DrillOptions());
  ASSERT_TRUE(reference.trainer->Train(world.pairs).ok());

  EXPECT_EQ(FlattenParams(*reference.model), FlattenParams(*resumed.model));
  EXPECT_EQ(reference.trainer->grad_norms(),
            resumed.trainer->grad_norms());
}

TEST(CrashResumeTest, ForkKillLeavesParseableFlightDump) {
  // The post-mortem half of the kill drill: a hard _Exit(137) mid-run
  // must still leave a readable flight.json (written by the fault-dump
  // hook on the way down) whose newest events identify the in-flight
  // step. The child arms EnableCrashDump exactly like `cyqr_cli train`.
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DrillOptions();
  options.checkpoint_every = 5;
  options.checkpoint_dir = FreshDir("flight_dump_drill");
  const std::string dump_path =
      testing::TempDir() + "/flight_dump_drill.json";
  std::filesystem::remove(dump_path);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FlightRecorder::Global().EnableCrashDump(dump_path);
    CycleTrainerOptions crash = options;
    crash.fault_plan.crash_at_step = 13;
    TrainRun child = MakeRun(world, crash);
    const Status status = child.trainer->Train(world.pairs);
    (void)status;
    _Exit(0);  // Reaching here means the crash never fired.
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 137) << "child did not die at the drill";

  std::ifstream in(dump_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "no flight dump at " << dump_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string dump = buf.str();
  // No torn temp file left next to the finished dump.
  EXPECT_FALSE(std::filesystem::exists(dump_path + ".crash.tmp"));

  EXPECT_NE(dump.find("{\"version\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"source\":\"simulated-crash\""), std::string::npos);
  // The newest step event pins the death to the in-flight step: the
  // crash fires as step 13 is entered, so the journal's last
  // train.step_begin is step 12 (and step 12 also finished).
  const size_t last_begin = dump.rfind("\"name\":\"train.step_begin\"");
  ASSERT_NE(last_begin, std::string::npos);
  EXPECT_EQ(dump.compare(last_begin + std::strlen("\"name\":\"train.step_begin\""),
                         std::strlen(",\"arg0\":12"), ",\"arg0\":12"),
            0)
      << dump.substr(last_begin, 120);
  EXPECT_NE(dump.find("\"name\":\"train.step_end\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"train.checkpoint\""), std::string::npos);
}

TEST(CrashResumeTest, DataParallelForkKillResumeWithDifferentWorkerCount) {
  // The data-parallel torn-collective drill: a worker rank dies mid-step
  // (after shard compute, before the gradient collective) under K=2; the
  // whole process must exit 137 without corrupting the checkpoint
  // rotation, and a K=4 resume must land bit-identical to an
  // uninterrupted K=1 run.
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DrillOptions();
  options.batch_size = 4;
  options.grad_shards = 4;
  options.workers = 2;
  options.checkpoint_every = 5;
  options.checkpoint_dir = FreshDir("dp_fork_drill");

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    CycleTrainerOptions crash = options;
    crash.fault_plan.crash_worker_rank = 1;
    crash.fault_plan.crash_worker_at_step = 13;
    TrainRun child = MakeRun(world, crash);
    const Status status = child.trainer->Train(world.pairs);
    (void)status;
    _Exit(0);  // Reaching here means the crash never fired.
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 137) << "child did not die at the drill";

  Result<std::string> latest =
      LatestCheckpointFile(options.checkpoint_dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_NE(latest.value().find(CheckpointFileName(10)), std::string::npos);

  // Resume with twice the ranks.
  CycleTrainerOptions wider = options;
  wider.workers = 4;
  TrainRun resumed = MakeRun(world, wider);
  ASSERT_TRUE(resumed.trainer->ResumeLatest().ok());
  EXPECT_EQ(resumed.trainer->step(), 10);
  ASSERT_TRUE(resumed.trainer->Train(world.pairs).ok());

  // Reference: K=1, never interrupted, no checkpointing.
  CycleTrainerOptions single = DrillOptions();
  single.batch_size = 4;
  single.grad_shards = 4;
  single.workers = 1;
  TrainRun reference = MakeRun(world, single);
  ASSERT_TRUE(reference.trainer->Train(world.pairs).ok());

  EXPECT_EQ(FlattenParams(*reference.model), FlattenParams(*resumed.model));
  EXPECT_EQ(reference.trainer->grad_norms(),
            resumed.trainer->grad_norms());
}

TEST(CrashResumeTest, GradNormTraceIsRecordedEveryStep) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DrillOptions();
  options.max_steps = 10;
  options.warmup_steps = 10;
  options.eval_every = 0;
  TrainRun run = MakeRun(world, options);
  ASSERT_TRUE(run.trainer->Train(world.pairs).ok());
  ASSERT_EQ(run.trainer->grad_norms().size(), 10u);
  for (double norm : run.trainer->grad_norms()) {
    EXPECT_TRUE(std::isfinite(norm));
    EXPECT_GT(norm, 0.0);
  }
}

TEST(CrashResumeTest, InjectedNanBatchIsSkippedWithoutAborting) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DrillOptions();
  options.max_steps = 8;
  options.warmup_steps = 8;
  options.eval_every = 0;
  options.fault_plan.nan_loss_steps = {3};
  TrainRun run = MakeRun(world, options);
  ASSERT_TRUE(run.trainer->Train(world.pairs).ok());
  EXPECT_EQ(run.trainer->skipped_batches(), 1);
  EXPECT_EQ(run.trainer->consecutive_anomalies(), 0);  // Reset by step 4.
  EXPECT_EQ(run.trainer->rollbacks(), 0);
  for (float v : FlattenParams(*run.model)) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(CrashResumeTest, SkippedBatchDoesNotUpdateParameters) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DrillOptions();
  options.max_steps = 8;
  options.warmup_steps = 8;
  options.eval_every = 0;
  options.fault_plan.nan_loss_steps = {3};
  TrainRun run = MakeRun(world, options);
  for (int i = 0; i < 2; ++i) run.trainer->StepOnce();
  const std::vector<float> before = FlattenParams(*run.model);
  const double loss = run.trainer->StepOnce();  // The poisoned step.
  EXPECT_TRUE(std::isnan(loss));
  EXPECT_EQ(FlattenParams(*run.model), before);
  run.trainer->StepOnce();  // A healthy step updates again.
  EXPECT_NE(FlattenParams(*run.model), before);
}

TEST(CrashResumeTest, SustainedAnomaliesRollBackThenError) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DrillOptions();
  options.max_steps = 20;
  options.warmup_steps = 20;
  options.eval_every = 0;
  options.checkpoint_every = 2;
  options.checkpoint_dir = FreshDir("rollback_drill");
  options.max_consecutive_anomalies = 3;
  options.max_rollbacks = 1;
  // A persistent poison window: deterministic replay re-hits it, so the
  // trainer must roll back, retry, and finally give up with an error
  // instead of looping forever.
  options.fault_plan.nan_loss_steps = {5, 6, 7, 8, 9, 10};
  TrainRun run = MakeRun(world, options);
  const Status status = run.trainer->Train(world.pairs);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("rollback"), std::string::npos);
  EXPECT_EQ(run.trainer->rollbacks(), 2);  // 1 allowed + the fatal one.
}

TEST(CrashResumeTest, AnomaliesWithoutCheckpointsErrorOut) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DrillOptions();
  options.max_steps = 20;
  options.warmup_steps = 20;
  options.eval_every = 0;
  options.max_consecutive_anomalies = 3;
  options.fault_plan.nan_loss_steps = {2, 3, 4};
  TrainRun run = MakeRun(world, options);
  const Status status = run.trainer->Train(world.pairs);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("no checkpoint"), std::string::npos);
}

TEST(CrashResumeTest, ResumeLatestOnEmptyDirIsNotFound) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DrillOptions();
  options.checkpoint_dir = FreshDir("resume_empty");
  TrainRun run = MakeRun(world, options);
  const Status status = run.trainer->ResumeLatest();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(CrashResumeTest, CheckpointRotationKeepsOnlyNewest) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DrillOptions();
  options.max_steps = 12;
  options.warmup_steps = 12;
  options.eval_every = 0;
  options.checkpoint_every = 2;
  options.checkpoint_keep = 2;
  options.checkpoint_dir = FreshDir("rotation_drill");
  TrainRun run = MakeRun(world, options);
  ASSERT_TRUE(run.trainer->Train(world.pairs).ok());
  Result<std::vector<std::string>> files =
      ListCheckpointFiles(options.checkpoint_dir);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files.value().size(), 2u);
  EXPECT_NE(files.value()[0].find(CheckpointFileName(10)),
            std::string::npos);
  EXPECT_NE(files.value()[1].find(CheckpointFileName(12)),
            std::string::npos);
}

}  // namespace
}  // namespace cyqr
