// Core-contribution tests: the cycle model, Algorithm 1, and the Figure 3
// inference pipeline on a miniature synthetic world.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "rewrite/direct_model.h"
#include "rewrite/inference.h"
#include <sstream>

#include "nn/serialize.h"
#include "rewrite/trainer.h"

namespace cyqr {
namespace {

/// A deliberately tiny world: queries {a b, c d} map to titles in a small
/// shared vocabulary, enough for a 1-layer model to learn in ~100 steps.
struct TinyWorld {
  Vocabulary vocab;
  std::vector<SeqPair> pairs;
};

TinyWorld MakeTinyWorld() {
  TinyWorld world;
  const std::vector<std::vector<std::string>> corpus = {
      {"cheap", "phone"},  {"brandx", "model1", "smartphone", "budget"},
      {"senior", "phone"}, {"brandx", "model2", "smartphone", "elderly"},
      {"gift", "watch"},   {"brandy", "luxury", "wrist", "watch"},
  };
  world.vocab = Vocabulary::Build(corpus);
  for (size_t i = 0; i + 1 < corpus.size(); i += 2) {
    world.pairs.push_back({world.vocab.Encode(corpus[i]),
                           world.vocab.Encode(corpus[i + 1])});
  }
  return world;
}

CycleConfig TinyConfig(int64_t vocab_size) {
  CycleConfig config = PaperScaledConfig(vocab_size);
  config.forward.num_layers = 1;
  config.forward.d_model = 16;
  config.forward.ff_hidden = 32;
  config.backward.num_layers = 1;
  config.backward.d_model = 16;
  config.backward.ff_hidden = 32;
  config.backward.vocab_size = vocab_size;
  config.max_title_len = 8;
  config.max_query_len = 6;
  return config;
}

TEST(ConfigTest, PaperScaledShape) {
  CycleConfig config = PaperScaledConfig(500);
  EXPECT_EQ(config.forward.num_layers, 4);
  EXPECT_EQ(config.backward.num_layers, 1);
  EXPECT_FLOAT_EQ(config.lambda, 0.1f);
  EXPECT_EQ(config.beam_width, 3);
  EXPECT_EQ(config.top_n, 40);
  const std::string table = ConfigTable(config);
  EXPECT_NE(table.find("lambda"), std::string::npos);
  EXPECT_NE(table.find("500"), std::string::npos);
}

TEST(ConfigTest, SaveLoadRoundTrip) {
  CycleConfig config = PaperScaledConfig(321);
  config.forward.num_layers = 3;
  config.lambda = 0.25f;
  config.beam_width = 5;
  config.arch = ArchType::kAttentionRnn;
  const std::string path = testing::TempDir() + "/config.txt";
  ASSERT_TRUE(SaveCycleConfig(config, path).ok());
  Result<CycleConfig> loaded = LoadCycleConfig(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().forward.vocab_size, 321);
  EXPECT_EQ(loaded.value().forward.num_layers, 3);
  EXPECT_EQ(loaded.value().backward.num_layers, 1);
  EXPECT_FLOAT_EQ(loaded.value().lambda, 0.25f);
  EXPECT_EQ(loaded.value().beam_width, 5);
  EXPECT_EQ(loaded.value().arch, ArchType::kAttentionRnn);
}

TEST(ConfigTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadCycleConfig("/nonexistent/config.txt").ok());
}

TEST(CycleModelTest, ParametersCombineBothModels) {
  TinyWorld world = MakeTinyWorld();
  Rng rng(1);
  CycleModel model(TinyConfig(world.vocab.size()), rng);
  EXPECT_EQ(model.Parameters().size(),
            model.forward().Parameters().size() +
                model.backward().Parameters().size());
}

TEST(CycleTrainerTest, WarmupLossDecreases) {
  TinyWorld world = MakeTinyWorld();
  Rng rng(2);
  CycleModel model(TinyConfig(world.vocab.size()), rng);
  CycleTrainerOptions options;
  options.max_steps = 80;
  options.warmup_steps = 80;
  options.batch_size = 3;
  options.eval_every = 0;
  CycleTrainer trainer(&model, world.pairs, options);
  double first = 0.0;
  double last = 0.0;
  for (int i = 0; i < 80; ++i) {
    const double loss = trainer.StepOnce();
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.7);
  EXPECT_EQ(trainer.step(), 80);
}

TEST(CycleTrainerTest, CyclicPhaseRunsAndStaysFinite) {
  TinyWorld world = MakeTinyWorld();
  Rng rng(3);
  CycleModel model(TinyConfig(world.vocab.size()), rng);
  CycleTrainerOptions options;
  options.max_steps = 70;
  options.warmup_steps = 50;
  options.batch_size = 3;
  options.eval_every = 0;
  CycleTrainer trainer(&model, world.pairs, options);
  ASSERT_TRUE(trainer.Train({}).ok());
  // One more joint step directly; it must produce a finite loss.
  const double loss = trainer.StepOnce();
  EXPECT_TRUE(std::isfinite(loss));
}

/// A world where translating back is genuinely ambiguous: two queries
/// share a clicked title, so the backward model cannot be perfect from
/// supervision alone — the regime where the cyclic term matters.
TinyWorld MakeAmbiguousWorld() {
  TinyWorld world;
  const std::vector<std::vector<std::string>> corpus = {
      {"cheap", "phone"},   {"brandx", "model1", "smartphone", "budget"},
      {"budget", "phone"},  {"brandx", "model1", "smartphone", "budget"},
      {"senior", "phone"},  {"brandx", "model2", "smartphone", "elderly"},
      {"elderly", "phone"}, {"brandx", "model2", "smartphone", "elderly"},
      {"gift", "watch"},    {"brandy", "luxury", "wrist", "watch"},
      {"luxury", "watch"},  {"brandy", "luxury", "wrist", "watch"},
  };
  world.vocab = Vocabulary::Build(corpus);
  for (size_t i = 0; i + 1 < corpus.size(); i += 2) {
    world.pairs.push_back({world.vocab.Encode(corpus[i]),
                           world.vocab.Encode(corpus[i + 1])});
  }
  return world;
}

TEST(CycleTrainerTest, JointTrainingBeatsSeparateOnTranslateBack) {
  // The core claim of Figure 7: continuing training WITH the cyclic term
  // yields better translate-back log probability than continuing WITHOUT
  // it from the same warmup checkpoint.
  TinyWorld world = MakeAmbiguousWorld();
  const CycleConfig config = TinyConfig(world.vocab.size());
  Rng rng(4);
  CycleModel warm(config, rng);
  CycleTrainerOptions warmup_options;
  warmup_options.max_steps = 80;
  warmup_options.warmup_steps = 80;
  warmup_options.batch_size = 4;
  warmup_options.eval_every = 0;
  warmup_options.eval_queries = 6;
  CycleTrainer warmup_trainer(&warm, world.pairs, warmup_options);
  ASSERT_TRUE(warmup_trainer.Train({}).ok());

  // Fork the checkpoint into two identical models.
  std::stringstream checkpoint;
  ASSERT_TRUE(SaveParameters(warm.Parameters(), checkpoint).ok());
  Rng rng_a(5);
  Rng rng_b(6);
  CycleModel separate(config, rng_a);
  CycleModel joint(config, rng_b);
  {
    std::stringstream a(checkpoint.str());
    ASSERT_TRUE(LoadParameters(separate.Parameters(), a).ok());
    std::stringstream b(checkpoint.str());
    ASSERT_TRUE(LoadParameters(joint.Parameters(), b).ok());
  }

  CycleTrainerOptions continue_options = warmup_options;
  continue_options.max_steps = 60;
  continue_options.seed = 999;  // Same batches for both arms.
  continue_options.warmup_steps = 80;  // Separate arm: never cyclic.
  continue_options.joint = false;
  CycleTrainer separate_trainer(&separate, world.pairs, continue_options);
  ASSERT_TRUE(separate_trainer.Train({}).ok());

  continue_options.joint = true;
  continue_options.warmup_steps = 0;  // Joint arm: cyclic from step 1.
  CycleTrainer joint_trainer(&joint, world.pairs, continue_options);
  ASSERT_TRUE(joint_trainer.Train({}).ok());

  separate.SetTraining(false);
  joint.SetTraining(false);
  CycleTrainer sep_eval(&separate, world.pairs, continue_options);
  CycleTrainer joint_eval(&joint, world.pairs, continue_options);
  const double sep_lp =
      sep_eval.Evaluate(world.pairs).translate_back_log_prob;
  const double joint_lp =
      joint_eval.Evaluate(world.pairs).translate_back_log_prob;
  EXPECT_GT(joint_lp, sep_lp);
}

TEST(CycleTrainerTest, CurveIsRecordedAtEvalInterval) {
  TinyWorld world = MakeTinyWorld();
  Rng rng(5);
  CycleModel model(TinyConfig(world.vocab.size()), rng);
  CycleTrainerOptions options;
  options.max_steps = 40;
  options.warmup_steps = 40;
  options.batch_size = 3;
  options.eval_every = 20;
  options.eval_queries = 2;
  CycleTrainer trainer(&model, world.pairs, options);
  ASSERT_TRUE(trainer.Train(world.pairs).ok());
  ASSERT_EQ(trainer.curve().size(), 2u);
  EXPECT_EQ(trainer.curve()[0].step, 20);
  EXPECT_EQ(trainer.curve()[1].step, 40);
  EXPECT_GT(trainer.curve()[0].q2t_perplexity, 1.0);
}

TEST(EncodePairsTest, RoundTripsThroughVocabulary) {
  TinyWorld world = MakeTinyWorld();
  std::vector<TokenPair> token_pairs = {
      {{"cheap", "phone"}, {"brandx", "smartphone"}, 3}};
  const auto encoded = EncodePairs(token_pairs, world.vocab);
  ASSERT_EQ(encoded.size(), 1u);
  EXPECT_EQ(world.vocab.DecodeToString(encoded[0].src), "cheap phone");
  EXPECT_EQ(world.vocab.DecodeToString(encoded[0].tgt),
            "brandx smartphone");
}

TEST(EncodeQueryPairsTest, EmitsBothDirections) {
  TinyWorld world = MakeTinyWorld();
  std::vector<QueryPair> pairs = {
      {{"cheap", "phone"}, {"senior", "phone"}, 5}};
  const auto encoded = EncodeQueryPairs(pairs, world.vocab);
  ASSERT_EQ(encoded.size(), 2u);
  EXPECT_EQ(encoded[0].src, encoded[1].tgt);
  EXPECT_EQ(encoded[0].tgt, encoded[1].src);
}

class TrainedCycleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = std::make_unique<TinyWorld>(MakeTinyWorld());
    Rng rng(6);
    model_ = std::make_unique<CycleModel>(TinyConfig(world_->vocab.size()), rng);
    CycleTrainerOptions options;
    options.max_steps = 220;
    options.warmup_steps = 160;
    options.batch_size = 3;
    options.eval_every = 0;
    CycleTrainer trainer(model_.get(), world_->pairs, options);
    ASSERT_TRUE(trainer.Train({}).ok());
    model_->SetTraining(false);
  }
  static void TearDownTestSuite() {
    model_.reset();
    world_.reset();
  }
  static std::unique_ptr<TinyWorld> world_;
  static std::unique_ptr<CycleModel> model_;
};

std::unique_ptr<TinyWorld> TrainedCycleTest::world_;
std::unique_ptr<CycleModel> TrainedCycleTest::model_;

TEST_F(TrainedCycleTest, RewriteReturnsAtMostKSortedCandidates) {
  CycleRewriter rewriter(model_.get(), &world_->vocab);
  RewriteOptions options;
  options.k = 3;
  options.max_title_len = 8;
  options.max_query_len = 6;
  const auto result = rewriter.Rewrite({"cheap", "phone"}, options);
  EXPECT_LE(result.rewrites.size(), 3u);
  EXPECT_LE(result.synthetic_titles.size(), 3u);
  for (size_t i = 1; i < result.rewrites.size(); ++i) {
    EXPECT_GE(result.rewrites[i - 1].log_prob,
              result.rewrites[i].log_prob);
  }
}

TEST_F(TrainedCycleTest, OriginalQueryIsFilteredOut) {
  CycleRewriter rewriter(model_.get(), &world_->vocab);
  RewriteOptions options;
  options.k = 3;
  const std::vector<int32_t> query =
      world_->vocab.Encode({"cheap", "phone"});
  const auto result = rewriter.RewriteIds(query, options);
  for (const RewriteCandidate& c : result.rewrites) {
    EXPECT_NE(c.ids, query);
  }
}

TEST_F(TrainedCycleTest, KeepOriginalOptionAllowsIdentity) {
  CycleRewriter rewriter(model_.get(), &world_->vocab);
  RewriteOptions options;
  options.k = 6;
  options.keep_original = true;
  options.seed = 13;
  const std::vector<int32_t> query =
      world_->vocab.Encode({"cheap", "phone"});
  const auto result = rewriter.RewriteIds(query, options);
  // With the trained tiny model, translating back to the original query is
  // likely enough that it appears among candidates when not filtered.
  bool found_original = false;
  for (const RewriteCandidate& c : result.rewrites) {
    if (c.ids == query) found_original = true;
  }
  EXPECT_TRUE(found_original);
}

TEST_F(TrainedCycleTest, RewriteIsDeterministicPerSeed) {
  CycleRewriter rewriter(model_.get(), &world_->vocab);
  RewriteOptions options;
  options.seed = 31;
  const auto a = rewriter.Rewrite({"senior", "phone"}, options);
  const auto b = rewriter.Rewrite({"senior", "phone"}, options);
  ASSERT_EQ(a.rewrites.size(), b.rewrites.size());
  for (size_t i = 0; i < a.rewrites.size(); ++i) {
    EXPECT_EQ(a.rewrites[i].ids, b.rewrites[i].ids);
  }
}

TEST(DirectRewriterTest, TrainsAndRewrites) {
  TinyWorld world = MakeTinyWorld();
  // Synonymous pairs: cheap phone <-> senior phone (toy).
  std::vector<SeqPair> pairs = {
      {world.vocab.Encode({"cheap", "phone"}),
       world.vocab.Encode({"budget", "phone"})},
      {world.vocab.Encode({"budget", "phone"}),
       world.vocab.Encode({"cheap", "phone"})},
  };
  Seq2SeqConfig config;
  config.vocab_size = world.vocab.size();
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.num_layers = 1;
  Rng rng(7);
  DirectRewriter rewriter(DirectArch::kHybrid, config, &world.vocab, rng);
  SupervisedTrainOptions options;
  options.max_steps = 200;
  options.batch_size = 2;
  TrainSupervised(rewriter.model(), pairs, options);
  rewriter.model().SetTraining(false);
  const auto rewrites = rewriter.Rewrite({"cheap", "phone"}, 2);
  ASSERT_FALSE(rewrites.empty());
  // Identity is filtered.
  for (const auto& r : rewrites) {
    EXPECT_NE(r.tokens, (std::vector<std::string>{"cheap", "phone"}));
  }
  // The learned synonym should be the top rewrite.
  EXPECT_EQ(rewrites[0].tokens,
            (std::vector<std::string>{"budget", "phone"}));
}

TEST(DirectArchTest, AllArchitecturesConstruct) {
  TinyWorld world = MakeTinyWorld();
  Seq2SeqConfig config;
  config.vocab_size = world.vocab.size();
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.num_layers = 1;
  for (DirectArch arch : {DirectArch::kPureRnn, DirectArch::kHybrid,
                          DirectArch::kTransformer}) {
    Rng rng(8);
    DirectRewriter rewriter(arch, config, &world.vocab, rng);
    rewriter.model().SetTraining(false);
    EXPECT_NO_FATAL_FAILURE(rewriter.Rewrite({"cheap", "phone"}, 2));
  }
}

}  // namespace
}  // namespace cyqr
