// Trainer-checkpoint persistence: atomic write/rename, checksummed
// all-or-nothing loads, rotation, and the file-name/listing helpers —
// mirrors the corruption battery of tests/index/persist_test.cc.

#include "rewrite/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/file_util.h"

namespace cyqr {
namespace {

struct TinyWorld {
  Vocabulary vocab;
  std::vector<SeqPair> pairs;
};

TinyWorld MakeTinyWorld() {
  TinyWorld world;
  const std::vector<std::vector<std::string>> corpus = {
      {"cheap", "phone"},  {"brandx", "model1", "smartphone", "budget"},
      {"senior", "phone"}, {"brandx", "model2", "smartphone", "elderly"},
      {"gift", "watch"},   {"brandy", "luxury", "wrist", "watch"},
  };
  world.vocab = Vocabulary::Build(corpus);
  for (size_t i = 0; i + 1 < corpus.size(); i += 2) {
    world.pairs.push_back({world.vocab.Encode(corpus[i]),
                           world.vocab.Encode(corpus[i + 1])});
  }
  return world;
}

CycleConfig TinyConfig(int64_t vocab_size) {
  CycleConfig config = PaperScaledConfig(vocab_size);
  config.forward.num_layers = 1;
  config.forward.d_model = 16;
  config.forward.ff_hidden = 32;
  config.backward.num_layers = 1;
  config.backward.d_model = 16;
  config.backward.ff_hidden = 32;
  config.backward.vocab_size = vocab_size;
  config.max_title_len = 8;
  config.max_query_len = 6;
  return config;
}

std::string FreshDir(const char* name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A trainer stepped a few times so the checkpoint has non-trivial
/// optimizer moments, RNG offsets, and traces. The Rng is heap-held so
/// the model's dropout pointer into it survives the struct being moved.
struct SteppedTrainer {
  TinyWorld world;
  std::unique_ptr<Rng> rng;
  std::unique_ptr<CycleModel> model;
  std::unique_ptr<CycleTrainer> trainer;
};

SteppedTrainer MakeSteppedTrainer(int steps) {
  SteppedTrainer st;
  st.world = MakeTinyWorld();
  st.rng = std::make_unique<Rng>(11);
  st.model = std::make_unique<CycleModel>(TinyConfig(st.world.vocab.size()),
                                          *st.rng);
  CycleTrainerOptions options;
  options.max_steps = 100;
  options.warmup_steps = 100;
  options.batch_size = 2;
  options.eval_every = 0;
  st.trainer =
      std::make_unique<CycleTrainer>(st.model.get(), st.world.pairs, options);
  for (int i = 0; i < steps; ++i) st.trainer->StepOnce();
  return st;
}

TrainerCheckpoint SnapshotOf(const SteppedTrainer& st) {
  TrainerCheckpoint ckpt;
  ckpt.step = st.trainer->step();
  ckpt.trainer_rng = RngState{};
  ckpt.model_rng = RngState{};
  ckpt.skipped_batches = st.trainer->skipped_batches();
  ckpt.grad_norms = st.trainer->grad_norms();
  ckpt.curve = st.trainer->curve();
  return ckpt;
}

TEST(TrainerCheckpointTest, SaveLoadRoundTrip) {
  SteppedTrainer st = MakeSteppedTrainer(5);
  const std::string dir = FreshDir("ckpt_roundtrip");
  const std::string path = dir + "/" + CheckpointFileName(5);

  TrainerCheckpoint ckpt = SnapshotOf(st);
  ckpt.trainer_rng.s[0] = 0xDEADBEEF;
  ckpt.model_rng.has_cached_gaussian = true;
  ckpt.model_rng.cached_gaussian = 0.25;
  ckpt.consecutive_anomalies = 1;
  ASSERT_TRUE(
      SaveTrainerCheckpoint(st.model->Parameters(), ckpt, path).ok());

  // Restore into a second, differently-initialized model.
  Rng rng2(99);
  CycleModel other(TinyConfig(st.world.vocab.size()), rng2);
  TrainerCheckpoint restored;
  ASSERT_TRUE(
      LoadTrainerCheckpoint(other.Parameters(), &restored, path).ok());
  EXPECT_EQ(restored.step, 5);
  EXPECT_EQ(restored.trainer_rng.s[0], 0xDEADBEEFu);
  EXPECT_TRUE(restored.model_rng.has_cached_gaussian);
  EXPECT_EQ(restored.model_rng.cached_gaussian, 0.25);
  EXPECT_EQ(restored.consecutive_anomalies, 1);
  EXPECT_EQ(restored.grad_norms, ckpt.grad_norms);
  const std::vector<Tensor> a = st.model->Parameters();
  const std::vector<Tensor> b = other.Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    for (int64_t i = 0; i < a[t].NumElements(); ++i) {
      ASSERT_EQ(a[t].data()[i], b[t].data()[i])
          << "tensor " << t << " element " << i;
    }
  }
}

TEST(TrainerCheckpointTest, NoTempFileLeftBehind) {
  SteppedTrainer st = MakeSteppedTrainer(2);
  const std::string dir = FreshDir("ckpt_no_tmp");
  const std::string path = dir + "/" + CheckpointFileName(2);
  ASSERT_TRUE(
      SaveTrainerCheckpoint(st.model->Parameters(), SnapshotOf(st), path)
          .ok());
  EXPECT_FALSE(std::filesystem::exists(TempPathFor(path)));
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(TrainerCheckpointTest, CorruptByteFailsAndLeavesModelUntouched) {
  SteppedTrainer st = MakeSteppedTrainer(3);
  const std::string dir = FreshDir("ckpt_corrupt");
  const std::string path = dir + "/" + CheckpointFileName(3);
  ASSERT_TRUE(
      SaveTrainerCheckpoint(st.model->Parameters(), SnapshotOf(st), path)
          .ok());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  std::string bytes = content.value();
  bytes[bytes.size() / 3] ^= 0x40;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  Rng rng2(99);
  CycleModel other(TinyConfig(st.world.vocab.size()), rng2);
  const float before = other.Parameters()[0].data()[0];
  TrainerCheckpoint restored;
  restored.step = 42;
  EXPECT_FALSE(
      LoadTrainerCheckpoint(other.Parameters(), &restored, path).ok());
  // All-or-nothing: neither the state struct nor the tensors changed.
  EXPECT_EQ(restored.step, 42);
  EXPECT_EQ(other.Parameters()[0].data()[0], before);
}

TEST(TrainerCheckpointTest, EveryTruncationFails) {
  SteppedTrainer st = MakeSteppedTrainer(2);
  const std::string dir = FreshDir("ckpt_trunc");
  const std::string full_path = dir + "/" + CheckpointFileName(2);
  ASSERT_TRUE(SaveTrainerCheckpoint(st.model->Parameters(), SnapshotOf(st),
                                    full_path)
                  .ok());
  Result<std::string> content = ReadFileToString(full_path);
  ASSERT_TRUE(content.ok());
  const std::string& bytes = content.value();

  Rng rng2(99);
  CycleModel other(TinyConfig(st.world.vocab.size()), rng2);
  const std::string cut_path = dir + "/cut.cyqc";
  // Step through prefixes (coarsely; the file is tens of KB).
  for (size_t cut = 0; cut < bytes.size();
       cut += 1 + bytes.size() / 97) {
    std::ofstream(cut_path, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, cut);
    TrainerCheckpoint restored;
    EXPECT_FALSE(
        LoadTrainerCheckpoint(other.Parameters(), &restored, cut_path).ok())
        << "truncation to " << cut << " bytes was accepted";
  }
}

TEST(TrainerCheckpointTest, MissingFileFails) {
  Rng rng(1);
  TinyWorld world = MakeTinyWorld();
  CycleModel model(TinyConfig(world.vocab.size()), rng);
  TrainerCheckpoint restored;
  EXPECT_FALSE(LoadTrainerCheckpoint(model.Parameters(), &restored,
                                     "/nonexistent/ckpt.cyqc")
                   .ok());
}

TEST(CheckpointFilesTest, FileNamesSortChronologically) {
  EXPECT_EQ(CheckpointFileName(42), "ckpt-000000000042.cyqc");
  EXPECT_LT(CheckpointFileName(999), CheckpointFileName(1000));
}

TEST(CheckpointFilesTest, ListAndLatest) {
  const std::string dir = FreshDir("ckpt_list");
  for (int64_t step : {30, 10, 20}) {
    std::ofstream(dir + "/" + CheckpointFileName(step)) << "x";
  }
  std::ofstream(dir + "/notes.txt") << "ignored";
  Result<std::vector<std::string>> files = ListCheckpointFiles(dir);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files.value().size(), 3u);
  EXPECT_NE(files.value()[0].find(CheckpointFileName(10)),
            std::string::npos);
  EXPECT_NE(files.value()[2].find(CheckpointFileName(30)),
            std::string::npos);
  Result<std::string> latest = LatestCheckpointFile(dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_NE(latest.value().find(CheckpointFileName(30)), std::string::npos);
}

TEST(CheckpointFilesTest, AbsentDirIsEmptyNotError) {
  Result<std::vector<std::string>> files =
      ListCheckpointFiles(testing::TempDir() + "/ckpt_never_created");
  ASSERT_TRUE(files.ok());
  EXPECT_TRUE(files.value().empty());
}

TEST(CheckpointFilesTest, LatestOnEmptyDirIsNotFound) {
  const std::string dir = FreshDir("ckpt_empty");
  Result<std::string> latest = LatestCheckpointFile(dir);
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointFilesTest, PruneKeepsNewest) {
  const std::string dir = FreshDir("ckpt_prune");
  for (int64_t step : {10, 20, 30, 40, 50}) {
    std::ofstream(dir + "/" + CheckpointFileName(step)) << "x";
  }
  ASSERT_TRUE(PruneCheckpoints(dir, 2).ok());
  Result<std::vector<std::string>> files = ListCheckpointFiles(dir);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files.value().size(), 2u);
  EXPECT_NE(files.value()[0].find(CheckpointFileName(40)),
            std::string::npos);
  EXPECT_NE(files.value()[1].find(CheckpointFileName(50)),
            std::string::npos);
}

TEST(CheckpointFilesTest, PruneRejectsNonPositiveKeep) {
  const std::string dir = FreshDir("ckpt_prune_bad");
  EXPECT_FALSE(PruneCheckpoints(dir, 0).ok());
}

}  // namespace
}  // namespace cyqr
