// Data-parallel determinism drills (thread-only — no forking here, so the
// whole binary also runs under TSan): the parameter trajectory must be a
// pure function of the options, never of the worker count; a killed or
// stalled rank must end the run with a clean status instead of a hang;
// and checkpoints racing into one directory must never corrupt resume.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rewrite/checkpoint.h"
#include "rewrite/trainer.h"

namespace cyqr {
namespace {

struct TinyWorld {
  Vocabulary vocab;
  std::vector<SeqPair> pairs;
};

TinyWorld MakeTinyWorld() {
  TinyWorld world;
  const std::vector<std::vector<std::string>> corpus = {
      {"cheap", "phone"},  {"brandx", "model1", "smartphone", "budget"},
      {"senior", "phone"}, {"brandx", "model2", "smartphone", "elderly"},
      {"gift", "watch"},   {"brandy", "luxury", "wrist", "watch"},
  };
  world.vocab = Vocabulary::Build(corpus);
  for (size_t i = 0; i + 1 < corpus.size(); i += 2) {
    world.pairs.push_back({world.vocab.Encode(corpus[i]),
                           world.vocab.Encode(corpus[i + 1])});
  }
  return world;
}

CycleConfig TinyConfig(int64_t vocab_size) {
  CycleConfig config = PaperScaledConfig(vocab_size);
  config.forward.num_layers = 1;
  config.forward.d_model = 16;
  config.forward.ff_hidden = 32;
  config.backward.num_layers = 1;
  config.backward.d_model = 16;
  config.backward.ff_hidden = 32;
  config.backward.vocab_size = vocab_size;
  config.max_title_len = 8;
  config.max_query_len = 6;
  return config;
}

/// Short warmup then a few cyclic steps with S=4 shards: covers both
/// phases of Algorithm 1 and every shard-to-rank assignment for K <= 4.
CycleTrainerOptions DpOptions(int64_t workers) {
  CycleTrainerOptions options;
  options.max_steps = 12;
  options.warmup_steps = 8;
  options.batch_size = 4;
  options.grad_shards = 4;
  options.workers = workers;
  options.eval_every = 6;
  options.eval_queries = 3;
  return options;
}

struct TrainRun {
  std::unique_ptr<Rng> rng;
  std::unique_ptr<CycleModel> model;
  std::unique_ptr<CycleTrainer> trainer;
};

TrainRun MakeRun(const TinyWorld& world, const CycleTrainerOptions& options) {
  TrainRun run;
  run.rng = std::make_unique<Rng>(7);
  run.model = std::make_unique<CycleModel>(TinyConfig(world.vocab.size()),
                                           *run.rng);
  run.trainer = std::make_unique<CycleTrainer>(run.model.get(), world.pairs,
                                               options);
  return run;
}

std::vector<float> FlattenParams(const CycleModel& model) {
  std::vector<float> flat;
  for (const Tensor& p : model.Parameters()) {
    flat.insert(flat.end(), p.data(), p.data() + p.NumElements());
  }
  return flat;
}

std::string FreshDir(const char* name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(DpTrainTest, WorkerCountNeverChangesTheTrajectory) {
  const TinyWorld world = MakeTinyWorld();
  TrainRun baseline = MakeRun(world, DpOptions(1));
  ASSERT_TRUE(baseline.trainer->Train(world.pairs).ok());
  const std::vector<float> expected = FlattenParams(*baseline.model);
  ASSERT_FALSE(baseline.trainer->curve().empty());

  for (const int64_t workers : {2, 4}) {
    TrainRun run = MakeRun(world, DpOptions(workers));
    ASSERT_TRUE(run.trainer->Train(world.pairs).ok());
    EXPECT_EQ(FlattenParams(*run.model), expected) << "K=" << workers;
    EXPECT_EQ(run.trainer->grad_norms(), baseline.trainer->grad_norms())
        << "K=" << workers;
    ASSERT_EQ(run.trainer->curve().size(),
              baseline.trainer->curve().size());
    for (size_t i = 0; i < run.trainer->curve().size(); ++i) {
      EXPECT_EQ(run.trainer->curve()[i].translate_back_log_prob,
                baseline.trainer->curve()[i].translate_back_log_prob);
      EXPECT_EQ(run.trainer->curve()[i].q2t_perplexity,
                baseline.trainer->curve()[i].q2t_perplexity);
    }
  }
}

TEST(DpTrainTest, ResumeWithDifferentWorkerCountIsBitIdentical) {
  const TinyWorld world = MakeTinyWorld();

  // Reference: K=1, never interrupted, no checkpointing at all.
  TrainRun reference = MakeRun(world, DpOptions(1));
  ASSERT_TRUE(reference.trainer->Train(world.pairs).ok());

  // Interrupted at step 9 under K=2 (checkpoint rotation leaves step 8)...
  CycleTrainerOptions first = DpOptions(2);
  first.checkpoint_every = 4;
  first.checkpoint_dir = FreshDir("dp_resume_cross_k");
  {
    CycleTrainerOptions partial = first;
    partial.max_steps = 9;
    TrainRun interrupted = MakeRun(world, partial);
    ASSERT_TRUE(interrupted.trainer->Train(world.pairs).ok());
  }
  // ...then resumed under K=4: every word of persisted state is
  // K-independent, so the trajectory must still match the K=1 reference.
  CycleTrainerOptions second = first;
  second.workers = 4;
  TrainRun resumed = MakeRun(world, second);
  ASSERT_TRUE(resumed.trainer->ResumeLatest().ok());
  EXPECT_EQ(resumed.trainer->step(), 8);
  ASSERT_TRUE(resumed.trainer->Train(world.pairs).ok());

  EXPECT_EQ(FlattenParams(*reference.model), FlattenParams(*resumed.model));
  EXPECT_EQ(reference.trainer->grad_norms(),
            resumed.trainer->grad_norms());
}

TEST(DpTrainTest, StalledWorkerEndsRunWithDeadlineExceeded) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DpOptions(2);
  options.collective_timeout_millis = 300.0;
  options.fault_plan.stall_worker_rank = 1;
  options.fault_plan.stall_worker_at_step = 3;
  TrainRun run = MakeRun(world, options);
  const Status status = run.trainer->Train(world.pairs);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(DpTrainTest, StalledCoordinatorAlsoUnwindsCleanly) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DpOptions(2);
  options.collective_timeout_millis = 300.0;
  options.fault_plan.stall_worker_rank = 0;
  options.fault_plan.stall_worker_at_step = 2;
  TrainRun run = MakeRun(world, options);
  const Status status = run.trainer->Train(world.pairs);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(DpTrainTest, StallAfterCheckpointLeavesResumableState) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DpOptions(2);
  options.checkpoint_every = 4;
  options.checkpoint_dir = FreshDir("dp_stall_resume");
  options.collective_timeout_millis = 300.0;
  options.fault_plan.stall_worker_rank = 1;
  options.fault_plan.stall_worker_at_step = 6;
  TrainRun run = MakeRun(world, options);
  ASSERT_EQ(run.trainer->Train(world.pairs).code(),
            StatusCode::kDeadlineExceeded);

  // Checkpoints only happen at step boundaries while every rank is
  // parked, so the stall cannot have torn one: resume and finish, and the
  // result must match an undisturbed K=1 run.
  CycleTrainerOptions clean = options;
  clean.fault_plan = TrainFaultPlan{};
  TrainRun resumed = MakeRun(world, clean);
  ASSERT_TRUE(resumed.trainer->ResumeLatest().ok());
  EXPECT_EQ(resumed.trainer->step(), 4);
  ASSERT_TRUE(resumed.trainer->Train(world.pairs).ok());

  TrainRun reference = MakeRun(world, DpOptions(1));
  ASSERT_TRUE(reference.trainer->Train(world.pairs).ok());
  EXPECT_EQ(FlattenParams(*reference.model), FlattenParams(*resumed.model));
}

TEST(DpTrainTest, NanGuardrailsWorkUnderDataParallelism) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DpOptions(2);
  options.max_steps = 8;
  options.warmup_steps = 8;
  options.eval_every = 0;
  options.fault_plan.nan_loss_steps = {3};
  TrainRun run = MakeRun(world, options);
  ASSERT_TRUE(run.trainer->Train(world.pairs).ok());
  EXPECT_EQ(run.trainer->skipped_batches(), 1);
  EXPECT_EQ(run.trainer->rollbacks(), 0);
  for (float v : FlattenParams(*run.model)) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(DpTrainTest, MisconfiguredShardingIsRejected) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DpOptions(2);
  options.grad_shards = 3;  // batch_size=4 not divisible.
  TrainRun run = MakeRun(world, options);
  EXPECT_EQ(run.trainer->Train(world.pairs).code(),
            StatusCode::kInvalidArgument);

  options = DpOptions(4);
  options.grad_shards = 2;  // More workers than shards.
  TrainRun run2 = MakeRun(world, options);
  EXPECT_EQ(run2.trainer->Train(world.pairs).code(),
            StatusCode::kInvalidArgument);
}

TEST(DpTrainTest, CollectiveWaitIsReportedAfterDataParallelRuns) {
  const TinyWorld world = MakeTinyWorld();
  CycleTrainerOptions options = DpOptions(2);
  options.max_steps = 4;
  options.warmup_steps = 4;
  options.eval_every = 0;
  TrainRun run = MakeRun(world, options);
  ASSERT_TRUE(run.trainer->Train(world.pairs).ok());
  EXPECT_GE(run.trainer->collective_wait_millis(), 0.0);
}

TEST(DpTrainTest, RacingCheckpointWritersNeverCorruptResume) {
  // The coordinator-owns-writes invariant makes this race impossible in
  // the trainer itself; this drill attacks the layer below anyway: two
  // trainers (think: two ranks that both wrongly believe they own the
  // directory) checkpoint the same step into the same dir concurrently.
  // Unique temp staging means the survivor is one complete file, so
  // ResumeLatest must always load a valid checkpoint.
  const TinyWorld world = MakeTinyWorld();
  const std::string dir = FreshDir("dp_ckpt_race");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  ASSERT_FALSE(ec);

  CycleTrainerOptions options = DpOptions(1);
  options.max_steps = 2;
  options.warmup_steps = 2;
  options.eval_every = 0;
  options.checkpoint_dir = dir;
  TrainRun a = MakeRun(world, options);
  TrainRun b = MakeRun(world, options);
  ASSERT_TRUE(a.trainer->Train(world.pairs).ok());
  ASSERT_TRUE(b.trainer->Train(world.pairs).ok());

  for (int round = 0; round < 8; ++round) {
    std::thread racer_a([&] { ASSERT_TRUE(a.trainer->SaveCheckpoint().ok()); });
    std::thread racer_b([&] { ASSERT_TRUE(b.trainer->SaveCheckpoint().ok()); });
    racer_a.join();
    racer_b.join();
    TrainRun reader = MakeRun(world, options);
    ASSERT_TRUE(reader.trainer->ResumeLatest().ok()) << "round " << round;
    EXPECT_EQ(reader.trainer->step(), 2);
  }
  // No staging debris: every temp file was either renamed or removed.
  int leftovers = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp") != std::string::npos) {
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0);
}

}  // namespace
}  // namespace cyqr
