#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace cyqr {
namespace {

TEST(ShapeTest, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.NumElements(), 1);
  EXPECT_EQ(s.back(), 1);
  EXPECT_EQ(s.ToString(), "[]");
}

TEST(ShapeTest, RankAndDims) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.back(), 4);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, FromVector) {
  Shape s(std::vector<int64_t>{5, 7});
  EXPECT_EQ(s.NumElements(), 35);
}

TEST(ShapeTest, ZeroDimGivesZeroElements) {
  Shape s{0, 4};
  EXPECT_EQ(s.NumElements(), 0);
}

}  // namespace
}  // namespace cyqr
