#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace cyqr {
namespace {

TEST(TensorTest, ZerosAndFull) {
  Tensor z = Tensor::Zeros(Shape{2, 3});
  EXPECT_EQ(z.NumElements(), 6);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(z.data()[i], 0.0f);
  Tensor f = Tensor::Full(Shape{2}, 1.5f);
  EXPECT_EQ(f.data()[0], 1.5f);
  EXPECT_EQ(f.data()[1], 1.5f);
}

TEST(TensorTest, FromDataAndItem) {
  Tensor t = Tensor::FromData(Shape{2}, {1.0f, 2.0f});
  EXPECT_EQ(t.data()[1], 2.0f);
  Tensor s = Tensor::Scalar(3.5f);
  EXPECT_FLOAT_EQ(s.item(), 3.5f);
}

TEST(TensorTest, HandlesShareStorage) {
  Tensor a = Tensor::Zeros(Shape{2});
  Tensor b = a;
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 9.0f);
}

TEST(TensorTest, RandnUsesStddev) {
  Rng rng(5);
  Tensor t = Tensor::Randn(Shape{10000}, rng, 0.1f);
  double sq = 0.0;
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    sq += static_cast<double>(t.data()[i]) * t.data()[i];
  }
  EXPECT_NEAR(sq / t.NumElements(), 0.01, 0.001);
}

TEST(TensorTest, BackwardThroughSimpleChain) {
  Tensor x = Tensor::FromData(Shape{3}, {1.0f, 2.0f, 3.0f});
  x.set_requires_grad(true);
  // loss = sum(2 * x) -> d loss / dx = 2.
  Tensor loss = SumAll(Scale(x, 2.0f));
  loss.Backward();
  ASSERT_NE(x.grad(), nullptr);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 2.0f);
}

TEST(TensorTest, GradAccumulatesAcrossBackwards) {
  Tensor x = Tensor::FromData(Shape{1}, {1.0f});
  x.set_requires_grad(true);
  SumAll(Scale(x, 3.0f)).Backward();
  SumAll(Scale(x, 3.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(TensorTest, DiamondGraphGradientsAddUp) {
  // loss = sum(x*x + x) -> dx = 2x + 1.
  Tensor x = Tensor::FromData(Shape{2}, {1.0f, -2.0f});
  x.set_requires_grad(true);
  Tensor loss = SumAll(Add(Mul(x, x), x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], -3.0f);
}

TEST(TensorTest, NoGradGuardSuppressesTape) {
  Tensor x = Tensor::FromData(Shape{2}, {1.0f, 2.0f});
  x.set_requires_grad(true);
  {
    NoGradGuard guard;
    EXPECT_FALSE(NoGradGuard::GradEnabled());
    Tensor y = Scale(x, 2.0f);
    EXPECT_FALSE(y.requires_grad());
  }
  EXPECT_TRUE(NoGradGuard::GradEnabled());
  Tensor y = Scale(x, 2.0f);
  EXPECT_TRUE(y.requires_grad());
}

TEST(TensorTest, NoGradGuardNests) {
  NoGradGuard outer;
  {
    NoGradGuard inner;
    EXPECT_FALSE(NoGradGuard::GradEnabled());
  }
  EXPECT_FALSE(NoGradGuard::GradEnabled());
}

TEST(TensorTest, ConstantInputsGetNoGradient) {
  Tensor x = Tensor::FromData(Shape{2}, {1.0f, 2.0f});
  x.set_requires_grad(true);
  Tensor c = Tensor::FromData(Shape{2}, {5.0f, 5.0f});  // Constant.
  Tensor loss = SumAll(Mul(x, c));
  loss.Backward();
  EXPECT_NE(x.grad(), nullptr);
  EXPECT_EQ(c.grad(), nullptr);
}

}  // namespace
}  // namespace cyqr
