// Edge-case battery for tensor ops: degenerate shapes, single elements,
// and identity configurations that production code paths can hit.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace cyqr {
namespace {

TEST(OpsEdgeTest, SoftmaxSingleElementIsOne) {
  Tensor x = Tensor::FromData(Shape{1, 1}, {3.7f});
  EXPECT_FLOAT_EQ(Softmax(x).data()[0], 1.0f);
  EXPECT_NEAR(LogSoftmaxOp(x).data()[0], 0.0f, 1e-6f);
}

TEST(OpsEdgeTest, GroupLogSumExpGroupOfOneIsIdentity) {
  Tensor x = Tensor::FromData(Shape{3}, {0.5f, -1.0f, 2.0f});
  Tensor y = GroupLogSumExp(x, 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(y.data()[i], x.data()[i], 1e-6f);
  }
}

TEST(OpsEdgeTest, MatMulWithIdentityPreservesInput) {
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape{3, 3}, rng);
  Tensor eye = Tensor::Zeros(Shape{3, 3});
  for (int i = 0; i < 3; ++i) eye.data()[i * 3 + i] = 1.0f;
  Tensor out = MatMul(a, eye);
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(out.data()[i], a.data()[i], 1e-6f);
  }
}

TEST(OpsEdgeTest, ReshapeScalarToVector) {
  Tensor s = Tensor::Scalar(2.5f);
  Tensor v = Reshape(s, Shape{1});
  EXPECT_EQ(v.shape(), Shape({1}));
  EXPECT_FLOAT_EQ(v.data()[0], 2.5f);
}

TEST(OpsEdgeTest, TransposeLast2TwiceIsIdentity) {
  Rng rng(2);
  Tensor x = Tensor::Randn(Shape{2, 3, 4}, rng);
  Tensor y = TransposeLast2(TransposeLast2(x));
  ASSERT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(OpsEdgeTest, SliceWholeRangeIsCopy) {
  Tensor x = Tensor::FromData(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = SliceLastDim(x, 0, 3);
  ASSERT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
}

TEST(OpsEdgeTest, MaskedCrossEntropyAllMaskedIsZero) {
  Tensor logits = Tensor::Zeros(Shape{1, 2, 4});
  std::vector<int32_t> targets = {0, 1};
  std::vector<float> mask = {0, 0};
  Tensor loss = MaskedCrossEntropy(logits, targets, mask);
  EXPECT_FLOAT_EQ(loss.item(), 0.0f);
  // Backward on the zero-count loss must be a no-op, not a crash.
  logits.set_requires_grad(true);
  Tensor loss2 = MaskedCrossEntropy(logits, targets, mask);
  loss2.Backward();
}

TEST(OpsEdgeTest, SequenceLogProbEmptyMaskGivesZero) {
  Tensor logits = Tensor::Zeros(Shape{1, 2, 4});
  std::vector<int32_t> targets = {0, 1};
  std::vector<float> mask = {0, 0};
  Tensor lp = SequenceLogProb(logits, targets, mask);
  EXPECT_FLOAT_EQ(lp.data()[0], 0.0f);
}

TEST(OpsEdgeTest, DropoutProbabilityZeroIsIdentityEvenWhenTraining) {
  Rng rng(3);
  Tensor x = Tensor::Randn(Shape{8}, rng);
  Tensor y = DropoutOp(x, 0.0f, rng, /*training=*/true);
  for (int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
}

TEST(OpsEdgeTest, ScaleByZeroKillsGradientToo) {
  Tensor x = Tensor::FromData(Shape{2}, {1.0f, 2.0f});
  x.set_requires_grad(true);
  SumAll(Scale(x, 0.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 0.0f);
}

TEST(OpsEdgeTest, AddMaskWithLargeNegativeZeroesSoftmax) {
  Tensor s = Tensor::Zeros(Shape{1, 3});
  std::vector<float> mask = {0.0f, -1e9f, 0.0f};
  Tensor p = Softmax(AddMask(s, mask));
  EXPECT_NEAR(p.data()[1], 0.0f, 1e-9f);
  EXPECT_NEAR(p.data()[0], 0.5f, 1e-5f);
}

TEST(OpsEdgeTest, EmbeddingGatherSingleToken) {
  Tensor table = Tensor::FromData(Shape{2, 3}, {0, 1, 2, 10, 11, 12});
  Tensor e = EmbeddingGather(table, {1}, 1, 1);
  EXPECT_EQ(e.shape(), Shape({1, 1, 3}));
  EXPECT_FLOAT_EQ(e.data()[2], 12.0f);
}

TEST(OpsEdgeTest, BackwardTwiceOnSeparateGraphsAccumulates) {
  // Two separate graphs over the same leaf accumulate into one grad buffer
  // until ZeroGrad — the optimizer contract.
  Tensor x = Tensor::FromData(Shape{1}, {2.0f});
  x.set_requires_grad(true);
  SumAll(Mul(x, x)).Backward();        // d/dx = 4.
  SumAll(Scale(x, 3.0f)).Backward();   // d/dx = 3.
  EXPECT_FLOAT_EQ(x.grad()[0], 7.0f);
}

}  // namespace
}  // namespace cyqr
