// Numerical gradient verification for every differentiable op. Each test
// builds a small scalar program around the op and compares autograd against
// central differences. These checks are the foundation the NMT models rest
// on: if they pass, training gradients are trustworthy.

#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace cyqr {
namespace {

constexpr double kTol = 2e-2;  // float32 central differences are noisy.

Tensor MakeInput(const Shape& shape, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  Tensor t = Tensor::Randn(shape, rng, scale);
  t.set_requires_grad(true);
  return t;
}

TEST(GradCheckTest, Add) {
  Tensor a = MakeInput(Shape{2, 3}, 1);
  Tensor b = MakeInput(Shape{2, 3}, 2);
  EXPECT_LT(GradCheck([&] { return SumAll(Mul(Add(a, b), Add(a, b))); }, a),
            kTol);
  EXPECT_LT(GradCheck([&] { return SumAll(Mul(Add(a, b), Add(a, b))); }, b),
            kTol);
}

TEST(GradCheckTest, AddBiasBroadcast) {
  Tensor a = MakeInput(Shape{2, 2, 3}, 3);
  Tensor bias = MakeInput(Shape{3}, 4);
  EXPECT_LT(
      GradCheck([&] { return SumAll(Mul(Add(a, bias), Add(a, bias))); }, bias),
      kTol);
  EXPECT_LT(
      GradCheck([&] { return SumAll(Mul(Add(a, bias), Add(a, bias))); }, a),
      kTol);
}

TEST(GradCheckTest, SubAndMul) {
  Tensor a = MakeInput(Shape{4}, 5);
  Tensor b = MakeInput(Shape{4}, 6);
  EXPECT_LT(GradCheck([&] { return SumAll(Mul(Sub(a, b), Sub(a, b))); }, a),
            kTol);
  EXPECT_LT(GradCheck([&] { return SumAll(Mul(Sub(a, b), Sub(a, b))); }, b),
            kTol);
}

TEST(GradCheckTest, ScaleAddScalar) {
  Tensor a = MakeInput(Shape{5}, 7);
  EXPECT_LT(
      GradCheck([&] { return SumAll(Mul(AddScalar(Scale(a, 1.7f), 0.3f),
                                        AddScalar(Scale(a, 1.7f), 0.3f))); },
                a),
      kTol);
}

TEST(GradCheckTest, MatMul2D) {
  Tensor a = MakeInput(Shape{2, 3}, 8);
  Tensor b = MakeInput(Shape{3, 4}, 9);
  EXPECT_LT(GradCheck([&] { return SumAll(Mul(MatMul(a, b), MatMul(a, b))); },
                      a),
            kTol);
  EXPECT_LT(GradCheck([&] { return SumAll(Mul(MatMul(a, b), MatMul(a, b))); },
                      b),
            kTol);
}

TEST(GradCheckTest, MatMulTransA) {
  Tensor a = MakeInput(Shape{3, 2}, 10);  // op(A) is 2x3.
  Tensor b = MakeInput(Shape{3, 4}, 11);
  auto f = [&] {
    Tensor c = MatMul(a, b, /*trans_a=*/true);
    return SumAll(Mul(c, c));
  };
  EXPECT_LT(GradCheck(f, a), kTol);
  EXPECT_LT(GradCheck(f, b), kTol);
}

TEST(GradCheckTest, MatMulTransB) {
  Tensor a = MakeInput(Shape{2, 3}, 12);
  Tensor b = MakeInput(Shape{4, 3}, 13);  // op(B) is 3x4.
  auto f = [&] {
    Tensor c = MatMul(a, b, false, /*trans_b=*/true);
    return SumAll(Mul(c, c));
  };
  EXPECT_LT(GradCheck(f, a), kTol);
  EXPECT_LT(GradCheck(f, b), kTol);
}

TEST(GradCheckTest, MatMulBothTrans) {
  Tensor a = MakeInput(Shape{3, 2}, 14);
  Tensor b = MakeInput(Shape{4, 3}, 15);
  auto f = [&] {
    Tensor c = MatMul(a, b, true, true);
    return SumAll(Mul(c, c));
  };
  EXPECT_LT(GradCheck(f, a), kTol);
  EXPECT_LT(GradCheck(f, b), kTol);
}

TEST(GradCheckTest, MatMulBatchedSharedRhs) {
  Tensor a = MakeInput(Shape{2, 3, 4}, 16);
  Tensor b = MakeInput(Shape{4, 5}, 17);
  auto f = [&] {
    Tensor c = MatMul(a, b);
    return SumAll(Mul(c, c));
  };
  EXPECT_LT(GradCheck(f, a), kTol);
  EXPECT_LT(GradCheck(f, b), kTol);
}

TEST(GradCheckTest, MatMulBatchedBatched) {
  Tensor a = MakeInput(Shape{2, 3, 4}, 18);
  Tensor b = MakeInput(Shape{2, 4, 5}, 19);
  auto f = [&] {
    Tensor c = MatMul(a, b);
    return SumAll(Mul(c, c));
  };
  EXPECT_LT(GradCheck(f, a), kTol);
  EXPECT_LT(GradCheck(f, b), kTol);
}

TEST(GradCheckTest, MatMulBatchedTransB) {
  // The attention-score pattern: Q [B,Tq,dh] x K^T [B,dh,Tk].
  Tensor q = MakeInput(Shape{2, 3, 4}, 20);
  Tensor k = MakeInput(Shape{2, 5, 4}, 21);
  auto f = [&] {
    Tensor c = MatMul(q, k, false, true);
    return SumAll(Mul(c, c));
  };
  EXPECT_LT(GradCheck(f, q), kTol);
  EXPECT_LT(GradCheck(f, k), kTol);
}

TEST(GradCheckTest, TransposeLast2) {
  Tensor a = MakeInput(Shape{2, 3, 4}, 22);
  auto f = [&] {
    Tensor t = TransposeLast2(a);
    return SumAll(Mul(t, t));
  };
  EXPECT_LT(GradCheck(f, a), kTol);
}

TEST(GradCheckTest, Activations) {
  Tensor a = MakeInput(Shape{6}, 23);
  EXPECT_LT(GradCheck([&] { return SumAll(Mul(TanhOp(a), TanhOp(a))); }, a),
            kTol);
  EXPECT_LT(
      GradCheck([&] { return SumAll(Mul(SigmoidOp(a), SigmoidOp(a))); }, a),
      kTol);
  // ReLU is checked away from the kink.
  Tensor b = Tensor::FromData(Shape{4}, {1.0f, -2.0f, 0.5f, -0.3f});
  b.set_requires_grad(true);
  EXPECT_LT(GradCheck([&] { return SumAll(Mul(Relu(b), Relu(b))); }, b),
            kTol);
}

TEST(GradCheckTest, SoftmaxAndLogSoftmax) {
  Tensor a = MakeInput(Shape{2, 5}, 24);
  Tensor w = Tensor::FromData(Shape{2, 5}, {0.1f, 0.9f, -0.2f, 0.4f, 0.3f,
                                            -0.5f, 0.2f, 0.6f, -0.1f, 0.8f});
  EXPECT_LT(GradCheck([&] { return SumAll(Mul(Softmax(a), w)); }, a), kTol);
  EXPECT_LT(GradCheck([&] { return SumAll(Mul(LogSoftmaxOp(a), w)); }, a),
            kTol);
}

TEST(GradCheckTest, LayerNorm) {
  Tensor x = MakeInput(Shape{3, 4}, 25);
  Tensor gamma = MakeInput(Shape{4}, 26, 0.5f);
  Tensor beta = MakeInput(Shape{4}, 27, 0.5f);
  auto f = [&] {
    Tensor y = LayerNormOp(x, gamma, beta);
    return SumAll(Mul(y, y));
  };
  EXPECT_LT(GradCheck(f, x, 3e-3f), 5e-2);
  EXPECT_LT(GradCheck(f, gamma), kTol);
  EXPECT_LT(GradCheck(f, beta), kTol);
}

TEST(GradCheckTest, Dropout) {
  Tensor x = MakeInput(Shape{8}, 28);
  // Fresh same-seeded Rng per evaluation keeps the mask fixed, making the
  // op deterministic for the finite-difference probe.
  auto f = [&] {
    Rng rng(99);
    Tensor y = DropoutOp(x, 0.5f, rng, /*training=*/true);
    return SumAll(Mul(y, y));
  };
  EXPECT_LT(GradCheck(f, x), kTol);
}

TEST(GradCheckTest, ReshapeSplitMergeHeads) {
  Tensor x = MakeInput(Shape{2, 3, 8}, 29);
  EXPECT_LT(GradCheck(
                [&] {
                  Tensor y = Reshape(x, Shape{6, 8});
                  return SumAll(Mul(y, y));
                },
                x),
            kTol);
  EXPECT_LT(GradCheck(
                [&] {
                  Tensor y = SplitHeads(x, 2);
                  return SumAll(Mul(y, y));
                },
                x),
            kTol);
  EXPECT_LT(GradCheck(
                [&] {
                  Tensor y = MergeHeads(SplitHeads(x, 4), 4);
                  return SumAll(Mul(y, y));
                },
                x),
            kTol);
}

TEST(GradCheckTest, ConcatAndSlice) {
  Tensor a = MakeInput(Shape{2, 3}, 30);
  Tensor b = MakeInput(Shape{2, 2}, 31);
  auto f = [&] {
    Tensor c = ConcatLastDim(a, b);
    return SumAll(Mul(c, c));
  };
  EXPECT_LT(GradCheck(f, a), kTol);
  EXPECT_LT(GradCheck(f, b), kTol);
  EXPECT_LT(GradCheck(
                [&] {
                  Tensor s = SliceLastDim(a, 1, 3);
                  return SumAll(Mul(s, s));
                },
                a),
            kTol);
}

TEST(GradCheckTest, EmbeddingGather) {
  Tensor table = MakeInput(Shape{5, 3}, 32);
  std::vector<int32_t> ids = {0, 2, 2, 4};
  auto f = [&] {
    Tensor e = EmbeddingGather(table, ids, 2, 2);
    return SumAll(Mul(e, e));
  };
  EXPECT_LT(GradCheck(f, table), kTol);
}

TEST(GradCheckTest, AddMask) {
  Tensor s = MakeInput(Shape{2, 2}, 33);
  std::vector<float> mask = {0.0f, -5.0f, 0.0f, -5.0f};
  auto f = [&] {
    Tensor y = Softmax(AddMask(s, mask));
    Tensor w = Tensor::FromData(Shape{2, 2}, {1.0f, 2.0f, -1.0f, 0.5f});
    return SumAll(Mul(y, w));
  };
  EXPECT_LT(GradCheck(f, s), kTol);
}

TEST(GradCheckTest, MaskedCrossEntropy) {
  Tensor logits = MakeInput(Shape{2, 3, 4}, 34);
  std::vector<int32_t> targets = {0, 1, 2, 3, 0, 1};
  std::vector<float> mask = {1, 1, 0, 1, 1, 1};
  auto f = [&] { return MaskedCrossEntropy(logits, targets, mask); };
  EXPECT_LT(GradCheck(f, logits), kTol);
}

TEST(GradCheckTest, MaskedCrossEntropyLabelSmoothing) {
  Tensor logits = MakeInput(Shape{2, 2, 5}, 46);
  std::vector<int32_t> targets = {0, 1, 2, 3};
  std::vector<float> mask = {1, 1, 1, 0};
  auto f = [&] {
    return MaskedCrossEntropy(logits, targets, mask,
                              /*label_smoothing=*/0.2f);
  };
  EXPECT_LT(GradCheck(f, logits), kTol);
}

TEST(GradCheckTest, SequenceLogProb) {
  Tensor logits = MakeInput(Shape{2, 3, 4}, 35);
  std::vector<int32_t> targets = {0, 1, 2, 3, 0, 1};
  std::vector<float> mask = {1, 1, 0, 1, 1, 1};
  auto f = [&] {
    Tensor lp = SequenceLogProb(logits, targets, mask);
    return SumAll(Mul(lp, lp));
  };
  EXPECT_LT(GradCheck(f, logits), kTol);
}

TEST(GradCheckTest, GroupLogSumExp) {
  Tensor x = MakeInput(Shape{6}, 36);
  auto f = [&] {
    Tensor g = GroupLogSumExp(x, 3);
    return SumAll(Mul(g, g));
  };
  EXPECT_LT(GradCheck(f, x), kTol);
}

TEST(GradCheckTest, AddRowBroadcast) {
  Tensor a = MakeInput(Shape{2, 3, 4}, 40);
  Tensor b = MakeInput(Shape{2, 4}, 41);
  auto f = [&] {
    Tensor y = AddRowBroadcast(a, b);
    return SumAll(Mul(y, y));
  };
  EXPECT_LT(GradCheck(f, a), kTol);
  EXPECT_LT(GradCheck(f, b), kTol);
}

TEST(GradCheckTest, StackRows) {
  Tensor a = MakeInput(Shape{2, 3}, 42);
  Tensor b = MakeInput(Shape{2, 3}, 43);
  Tensor c = MakeInput(Shape{2, 3}, 44);
  auto f = [&] {
    Tensor y = StackRows({a, b, c});
    return SumAll(Mul(y, y));
  };
  EXPECT_LT(GradCheck(f, a), kTol);
  EXPECT_LT(GradCheck(f, b), kTol);
  EXPECT_LT(GradCheck(f, c), kTol);
}

TEST(GradCheckTest, StackRowsSharedInput) {
  // The same tensor stacked twice must receive both gradient contributions.
  Tensor a = MakeInput(Shape{1, 2}, 45);
  auto f = [&] {
    Tensor y = StackRows({a, a});
    return SumAll(Mul(y, y));
  };
  EXPECT_LT(GradCheck(f, a), kTol);
}

TEST(GradCheckTest, CycleLossShape) {
  // The exact composition used by the cyclic-consistency loss:
  // logsumexp over per-title (logPf + logPb) then mean over queries.
  Tensor fwd_logits = MakeInput(Shape{4, 3, 5}, 37);
  Tensor bwd_logits = MakeInput(Shape{4, 2, 5}, 38);
  std::vector<int32_t> fwd_targets = {0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1};
  std::vector<float> fwd_mask = {1, 1, 1, 1, 1, 0, 1, 1, 1, 1, 1, 1};
  std::vector<int32_t> bwd_targets = {1, 2, 3, 4, 0, 1, 2, 3};
  std::vector<float> bwd_mask = {1, 1, 1, 1, 1, 1, 1, 0};
  auto f = [&] {
    Tensor lpf = SequenceLogProb(fwd_logits, fwd_targets, fwd_mask);
    Tensor lpb = SequenceLogProb(bwd_logits, bwd_targets, bwd_mask);
    Tensor lc = GroupLogSumExp(Add(lpf, lpb), 2);  // 2 titles per query.
    return Scale(MeanAll(lc), -1.0f);
  };
  EXPECT_LT(GradCheck(f, fwd_logits), kTol);
  EXPECT_LT(GradCheck(f, bwd_logits), kTol);
}

}  // namespace
}  // namespace cyqr
