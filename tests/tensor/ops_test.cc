#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cyqr {
namespace {

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromData(Shape{2}, {1.0f, 2.0f});
  Tensor b = Tensor::FromData(Shape{2}, {10.0f, 20.0f});
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.data()[0], 11.0f);
  EXPECT_FLOAT_EQ(c.data()[1], 22.0f);
}

TEST(OpsTest, AddBiasBroadcast) {
  Tensor a = Tensor::FromData(Shape{2, 2}, {1, 2, 3, 4});
  Tensor bias = Tensor::FromData(Shape{2}, {10, 20});
  Tensor c = Add(a, bias);
  EXPECT_FLOAT_EQ(c.data()[0], 11.0f);
  EXPECT_FLOAT_EQ(c.data()[1], 22.0f);
  EXPECT_FLOAT_EQ(c.data()[2], 13.0f);
  EXPECT_FLOAT_EQ(c.data()[3], 24.0f);
}

TEST(OpsTest, MatMul2DKnownResult) {
  Tensor a = Tensor::FromData(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(c.data()[0], 58.0f);
  EXPECT_FLOAT_EQ(c.data()[1], 64.0f);
  EXPECT_FLOAT_EQ(c.data()[2], 139.0f);
  EXPECT_FLOAT_EQ(c.data()[3], 154.0f);
}

TEST(OpsTest, MatMulTransBEqualsExplicitTranspose) {
  Rng rng(3);
  Tensor a = Tensor::Randn(Shape{3, 4}, rng);
  Tensor b = Tensor::Randn(Shape{5, 4}, rng);
  Tensor c1 = MatMul(a, b, false, true);
  Tensor c2 = MatMul(a, TransposeLast2(b));
  ASSERT_EQ(c1.shape(), c2.shape());
  for (int64_t i = 0; i < c1.NumElements(); ++i) {
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-5f);
  }
}

TEST(OpsTest, MatMulBatchedMatchesPerBatch) {
  Rng rng(4);
  Tensor a = Tensor::Randn(Shape{2, 3, 4}, rng);
  Tensor b = Tensor::Randn(Shape{2, 4, 5}, rng);
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.shape(), Shape({2, 3, 5}));
  for (int batch = 0; batch < 2; ++batch) {
    Tensor a2 = Tensor::FromData(
        Shape{3, 4}, std::vector<float>(a.data() + batch * 12,
                                        a.data() + (batch + 1) * 12));
    Tensor b2 = Tensor::FromData(
        Shape{4, 5}, std::vector<float>(b.data() + batch * 20,
                                        b.data() + (batch + 1) * 20));
    Tensor c2 = MatMul(a2, b2);
    for (int64_t i = 0; i < 15; ++i) {
      EXPECT_NEAR(c.data()[batch * 15 + i], c2.data()[i], 1e-5f);
    }
  }
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Tensor a = Tensor::Randn(Shape{3, 7}, rng);
  Tensor s = Softmax(a);
  for (int r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int j = 0; j < 7; ++j) sum += s.data()[r * 7 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(6);
  Tensor a = Tensor::Randn(Shape{2, 5}, rng);
  Tensor s = Softmax(a);
  Tensor ls = LogSoftmaxOp(a);
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-5f);
  }
}

TEST(OpsTest, LayerNormNormalizesRows) {
  Rng rng(7);
  Tensor x = Tensor::Randn(Shape{4, 8}, rng, 3.0f);
  Tensor gamma = Tensor::Full(Shape{8}, 1.0f);
  Tensor beta = Tensor::Zeros(Shape{8});
  Tensor y = LayerNormOp(x, gamma, beta);
  for (int r = 0; r < 4; ++r) {
    double mu = 0.0;
    double var = 0.0;
    for (int j = 0; j < 8; ++j) mu += y.data()[r * 8 + j];
    mu /= 8;
    for (int j = 0; j < 8; ++j) {
      const double c = y.data()[r * 8 + j] - mu;
      var += c * c;
    }
    var /= 8;
    EXPECT_NEAR(mu, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(OpsTest, DropoutInferenceIsIdentity) {
  Rng rng(8);
  Tensor x = Tensor::Randn(Shape{10}, rng);
  Tensor y = DropoutOp(x, 0.5f, rng, /*training=*/false);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(OpsTest, DropoutTrainingZeroesAndRescales) {
  Rng rng(9);
  Tensor x = Tensor::Full(Shape{10000}, 1.0f);
  Tensor y = DropoutOp(x, 0.25f, rng, /*training=*/true);
  int zeros = 0;
  double sum = 0.0;
  for (int64_t i = 0; i < y.NumElements(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.data()[i], 1.0f / 0.75f, 1e-5f);
    }
    sum += y.data()[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.NumElements(), 0.25, 0.02);
  EXPECT_NEAR(sum / y.NumElements(), 1.0, 0.03);  // Expectation preserved.
}

TEST(OpsTest, SplitMergeHeadsRoundTrip) {
  Rng rng(10);
  Tensor x = Tensor::Randn(Shape{2, 3, 8}, rng);
  Tensor y = MergeHeads(SplitHeads(x, 4), 4);
  ASSERT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(OpsTest, SplitHeadsLayout) {
  // x[b=0, t, d] with d = h*2 + j; head h must receive columns 2h..2h+1.
  std::vector<float> data(1 * 2 * 4);
  for (int t = 0; t < 2; ++t) {
    for (int d = 0; d < 4; ++d) data[t * 4 + d] = t * 10.0f + d;
  }
  Tensor x = Tensor::FromData(Shape{1, 2, 4}, data);
  Tensor y = SplitHeads(x, 2);  // [2, 2, 2]
  ASSERT_EQ(y.shape(), Shape({2, 2, 2}));
  // Head 0, t=1 -> values 10, 11.
  EXPECT_FLOAT_EQ(y.data()[(0 * 2 + 1) * 2 + 0], 10.0f);
  EXPECT_FLOAT_EQ(y.data()[(0 * 2 + 1) * 2 + 1], 11.0f);
  // Head 1, t=0 -> values 2, 3.
  EXPECT_FLOAT_EQ(y.data()[(1 * 2 + 0) * 2 + 0], 2.0f);
  EXPECT_FLOAT_EQ(y.data()[(1 * 2 + 0) * 2 + 1], 3.0f);
}

TEST(OpsTest, ConcatSliceRoundTrip) {
  Tensor a = Tensor::FromData(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData(Shape{2, 3}, {5, 6, 7, 8, 9, 10});
  Tensor c = ConcatLastDim(a, b);
  ASSERT_EQ(c.shape(), Shape({2, 5}));
  Tensor a2 = SliceLastDim(c, 0, 2);
  Tensor b2 = SliceLastDim(c, 2, 5);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a2.data()[i], a.data()[i]);
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(b2.data()[i], b.data()[i]);
}

TEST(OpsTest, EmbeddingGatherPicksRows) {
  Tensor table = Tensor::FromData(Shape{3, 2}, {0, 1, 10, 11, 20, 21});
  std::vector<int32_t> ids = {2, 0, 1, 1};
  Tensor e = EmbeddingGather(table, ids, 2, 2);
  ASSERT_EQ(e.shape(), Shape({2, 2, 2}));
  EXPECT_FLOAT_EQ(e.data()[0], 20.0f);
  EXPECT_FLOAT_EQ(e.data()[2], 0.0f);
  EXPECT_FLOAT_EQ(e.data()[4], 10.0f);
  EXPECT_FLOAT_EQ(e.data()[6], 10.0f);
}

TEST(OpsTest, MaskedCrossEntropyIgnoresMaskedPositions) {
  // Uniform logits -> NLL = log(V) at every unmasked position.
  Tensor logits = Tensor::Zeros(Shape{1, 3, 4});
  std::vector<int32_t> targets = {0, 1, 2};
  std::vector<float> mask_all = {1, 1, 1};
  std::vector<float> mask_partial = {1, 0, 1};
  EXPECT_NEAR(MaskedCrossEntropy(logits, targets, mask_all).item(),
              std::log(4.0f), 1e-5f);
  EXPECT_NEAR(MaskedCrossEntropy(logits, targets, mask_partial).item(),
              std::log(4.0f), 1e-5f);
}

TEST(OpsTest, LabelSmoothingUniformLogitsInvariant) {
  // For uniform logits, every distribution gives NLL = log V regardless of
  // smoothing.
  Tensor logits = Tensor::Zeros(Shape{1, 2, 5});
  std::vector<int32_t> targets = {0, 3};
  std::vector<float> mask = {1, 1};
  EXPECT_NEAR(MaskedCrossEntropy(logits, targets, mask, 0.0f).item(),
              std::log(5.0f), 1e-5f);
  EXPECT_NEAR(MaskedCrossEntropy(logits, targets, mask, 0.3f).item(),
              std::log(5.0f), 1e-5f);
}

TEST(OpsTest, LabelSmoothingPenalizesOverconfidence) {
  // A model putting all mass on the target: zero plain NLL, positive
  // smoothed NLL.
  Tensor logits = Tensor::Zeros(Shape{1, 1, 4});
  logits.data()[2] = 30.0f;
  std::vector<int32_t> targets = {2};
  std::vector<float> mask = {1};
  EXPECT_NEAR(MaskedCrossEntropy(logits, targets, mask, 0.0f).item(), 0.0f,
              1e-4f);
  EXPECT_GT(MaskedCrossEntropy(logits, targets, mask, 0.1f).item(), 0.5f);
}

TEST(OpsTest, SequenceLogProbSumsChosenTokens) {
  Tensor logits = Tensor::Zeros(Shape{2, 2, 4});
  std::vector<int32_t> targets = {0, 1, 2, 3};
  std::vector<float> mask = {1, 1, 1, 0};
  Tensor lp = SequenceLogProb(logits, targets, mask);
  ASSERT_EQ(lp.shape(), Shape({2}));
  EXPECT_NEAR(lp.data()[0], -2.0f * std::log(4.0f), 1e-5f);
  EXPECT_NEAR(lp.data()[1], -1.0f * std::log(4.0f), 1e-5f);
}

TEST(OpsTest, GroupLogSumExpValues) {
  Tensor x = Tensor::FromData(Shape{4}, {0.0f, 0.0f, 1.0f, 3.0f});
  Tensor g = GroupLogSumExp(x, 2);
  ASSERT_EQ(g.shape(), Shape({2}));
  EXPECT_NEAR(g.data()[0], std::log(2.0f), 1e-5f);
  EXPECT_NEAR(g.data()[1], std::log(std::exp(1.0f) + std::exp(3.0f)), 1e-5f);
}

TEST(OpsTest, SumAllMeanAll) {
  Tensor x = Tensor::FromData(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(SumAll(x).item(), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(x).item(), 2.5f);
}

}  // namespace
}  // namespace cyqr
