// Randomized autograd verification: builds random op graphs over a fixed
// set of leaf tensors and checks analytic gradients against central
// differences. Complements the per-op gradchecks by exercising op
// COMPOSITIONS (shared subexpressions, diamonds, mixed shapes).

#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace cyqr {
namespace {

/// Builds a random scalar program from `leaves` using `rng`-chosen ops.
/// All leaves share the shape [2, 3] so every binary op is applicable.
Tensor RandomProgram(const std::vector<Tensor>& leaves, Rng& rng) {
  std::vector<Tensor> pool = leaves;
  const int ops = 6;
  for (int i = 0; i < ops; ++i) {
    const Tensor& a = pool[rng.NextBelow(pool.size())];
    const Tensor& b = pool[rng.NextBelow(pool.size())];
    Tensor out;
    switch (rng.NextBelow(8)) {
      case 0:
        out = Add(a, b);
        break;
      case 1:
        out = Sub(a, b);
        break;
      case 2:
        out = Mul(a, b);
        break;
      case 3:
        out = TanhOp(a);
        break;
      case 4:
        out = SigmoidOp(a);
        break;
      case 5:
        out = Scale(a, 0.7f);
        break;
      case 6:
        out = Softmax(a);
        break;
      case 7:
        out = MatMul(a, b, false, true);  // [2,3] x [2,3]^T = [2,2].
        out = MatMul(out, a);             // [2,2] x [2,3] = [2,3].
        break;
    }
    pool.push_back(out);
  }
  // Every leaf participates (a leaf skipped by the random draws would have
  // no gradient at all): add a small term touching all of them.
  Tensor all_leaves = leaves[0];
  for (size_t i = 1; i < leaves.size(); ++i) {
    all_leaves = Add(all_leaves, leaves[i]);
  }
  return Add(MeanAll(Mul(pool.back(), pool.back())),
             Scale(MeanAll(Mul(all_leaves, all_leaves)), 0.1f));
}

class AutogradFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AutogradFuzzTest, RandomGraphGradientsMatchNumeric) {
  const uint64_t seed = 9000 + GetParam();
  Rng init_rng(seed);
  std::vector<Tensor> leaves;
  for (int i = 0; i < 3; ++i) {
    Tensor t = Tensor::Randn(Shape{2, 3}, init_rng, 0.5f);
    t.set_requires_grad(true);
    leaves.push_back(t);
  }
  for (const Tensor& leaf : leaves) {
    // The graph must be rebuilt identically on every evaluation.
    auto f = [&leaves, seed] {
      Rng graph_rng(seed * 31 + 7);
      return RandomProgram(leaves, graph_rng);
    };
    EXPECT_LT(GradCheck(f, leaf), 3e-2) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzzTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace cyqr
