// Fixture: statement-level discards of Status/Result-returning calls.
#include "discarded_status_violation.h"

struct Status {
  static Status OK();
  bool ok() const;
};

Status SaveThing(int x);

struct Store {
  Status Load(int x);
};

void Run(Store* store) {
  SaveThing(1);      // violation: bare call, result dropped
  store->Load(2);    // violation: member call, result dropped
  Status::OK();      // violation: factory result dropped
  if (true) SaveThing(3);  // violation: braceless if body
}
