// Fixture: Result<T>::value() without a dominating ok() check.
#include "result_unwrap_violation.h"

template <typename T>
struct Result {
  bool ok() const;
  const T& value() const;
  int status() const;
};

Result<int> Fetch();

int UseUnchecked() {
  Result<int> r = Fetch();
  return r.value();  // violation
}

int UseParamUnchecked(const Result<int>& res) {
  return res.value();  // violation
}
