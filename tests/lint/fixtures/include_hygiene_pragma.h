#pragma once
// Fixture: #pragma once is an accepted guard — clean.

#include <string>

inline std::string PragmaName() { return "pragma"; }
