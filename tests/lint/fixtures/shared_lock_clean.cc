// Fixture: std::shared_lock reader regions — reads of CYQR_GUARDED_BY
// fields are legal under a shared hold; every write goes through an
// exclusive region or a CYQR_REQUIRES contract.
#include "shared_lock_clean.h"

#include <mutex>
#include <shared_mutex>

#include "core/thread_annotations.h"

class PlanBoard {
 public:
  int Snapshot() const {
    std::shared_lock<std::shared_mutex> lock(plan_mu_);
    return plan_;  // ok: read under the reader hold
  }

  bool Ready() const {
    std::shared_lock<std::shared_mutex> lock(plan_mu_);
    return plan_ > 0 && plan_ != 7;  // ok: pure reads
  }

  void Publish(int next) {
    std::unique_lock<std::shared_mutex> lock(plan_mu_);
    plan_ = next;  // ok: writer hold is exclusive
  }

  void BumpLocked() CYQR_REQUIRES(plan_mu_) {
    ++plan_;  // ok: caller contract grants the exclusive hold
  }

 private:
  mutable std::shared_mutex plan_mu_;
  int plan_ CYQR_GUARDED_BY(plan_mu_) = 0;
};
