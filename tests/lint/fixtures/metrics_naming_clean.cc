// Fixture: conventional metric names and rule look-alikes — clean.
#include "metrics_naming_clean.h"

#include <string>

// A free function named like the registry method: not a member call.
int* GetCounter(const std::string& name);

void RegisterConventionalNames(FakeRegistry& registry) {
  int* requests = registry.GetCounter("cyqr_serving_requests_total");
  int* rate = registry.GetGauge("cyqr_train_tokens_per_sec");
  int* norm = registry.GetGauge("cyqr_train_grad_norm");
  int* latency =
      registry.GetHistogram("cyqr_serving_rung_latency_millis", {1.0, 2.0});
  int* raw = GlobalRegistry()->GetCounter(R"(cyqr_decode_topn_calls_total)");
  (void)requests;
  (void)rate;
  (void)norm;
  (void)latency;
  (void)raw;
}

void RuleLookAlikes(FakeRegistry& registry) {
  // Free-function call: no receiver, so the rule must not fire even
  // though the name is junk.
  int* free_call = GetCounter("not a metric at all");
  // Runtime-built name: invisible to the lexer, left to the registry's
  // own validation.
  const std::string dynamic = std::string("cyqr_") + "serving_x_total";
  int* built = registry.GetCounter(dynamic);
  (void)free_call;
  (void)built;
}
