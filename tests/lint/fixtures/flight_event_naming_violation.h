#ifndef FIXTURE_FLIGHT_EVENT_NAMING_VIOLATION_H_
#define FIXTURE_FLIGHT_EVENT_NAMING_VIOLATION_H_

struct FakeBadRecorder {
  int InternName(const char* name);
};

#endif  // FIXTURE_FLIGHT_EVENT_NAMING_VIOLATION_H_
