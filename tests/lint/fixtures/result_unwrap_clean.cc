// Fixture: every Result unwrap is dominated by an ok() check (or the
// error is propagated through status()).
#include "result_unwrap_clean.h"

template <typename T>
struct Result {
  bool ok() const;
  const T& value() const;
  int status() const;
};

Result<int> Fetch();

int UseChecked() {
  Result<int> r = Fetch();
  if (!r.ok()) return -1;
  return r.value();
}

int PropagateStatus(const Result<int>& res) {
  if (!res.ok()) return res.status();
  return res.value();
}
