#ifndef FIXTURE_INCLUDE_HYGIENE_CLEAN_H_
#define FIXTURE_INCLUDE_HYGIENE_CLEAN_H_

#include <string>

std::string CleanName();

#endif  // FIXTURE_INCLUDE_HYGIENE_CLEAN_H_
