// Fixture: determinism killers and unbounded-buffer C functions.
#include "banned_functions_violation.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <random>

int Roll() {
  return std::rand() % 6;  // violation: global C RNG
}

void Seed() {
  srand(static_cast<unsigned>(time(nullptr)));  // violations: srand + time
}

int Parse(const char* s) {
  return atoi(s);  // violation: no error reporting
}

void Format(char* buf, int v) {
  sprintf(buf, "%d", v);  // violation: unbounded write
}
