// Fixture: the same mutex acquired through a second guard while the
// first is still held — a guaranteed self-deadlock on a non-recursive
// std::mutex, reported as the degenerate one-node cycle.
#include "lock_order_cycle_self.h"

#include <mutex>

std::mutex g_mu_self;

void DoubleAcquire() {
  std::lock_guard<std::mutex> first(g_mu_self);
  std::lock_guard<std::mutex> second(g_mu_self);
}
