// Fixture: every file stream is error-checked — no diagnostics.
#include "unchecked_stream_clean.h"

#include <fstream>
#include <string>
#include <vector>

bool ReadLines(const std::string& path, std::vector<std::string>* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;  // probe via is_open
  std::string line;
  while (std::getline(in, line)) {  // stream used as loop condition
    out->push_back(line);
  }
  return !in.bad();  // EOF-vs-error probe
}

bool WriteLines(const std::string& path,
                const std::vector<std::string>& lines) {
  std::ofstream out(path);
  for (const std::string& line : lines) {
    out << line << '\n';
  }
  out.flush();
  return out.good();  // probe via good
}
