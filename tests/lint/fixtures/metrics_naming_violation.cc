// Fixture: every way to break the cyqr_<layer>_<name>_<unit> convention.
#include "metrics_naming_violation.h"

void RegisterBadNames(FakeBadRegistry& registry) {
  int* a = registry.GetCounter("serving_requests_total");   // no cyqr_ prefix
  int* b = registry.GetCounter("cyqr_requests_total");      // missing layer
  int* c = registry.GetGauge("cyqr_serving_queue_depth");   // unknown unit
  int* d = registry.GetGauge("cyqr_serving_Breaker_state"); // uppercase
  int* e =
      registry.GetHistogram("cyqr_serving_latency_ms", {1.0});  // bad unit
  int* f = registry.GetCounter("cyqr_serving__requests_total");  // empty seg
  (void)a;
  (void)b;
  (void)c;
  (void)d;
  (void)e;
  (void)f;
}
