// Fixture: CYQR_GUARDED_BY fields touched without their mutex held.
#include "guarded_field_access_violation.h"

#include <mutex>

#include "core/thread_annotations.h"

class Ledger {
 public:
  void Deposit(int amount) {
    std::lock_guard<std::mutex> lock(mu_);
    balance_ += amount;  // ok: inside the region
  }

  int UnsafeRead() const {
    return balance_;  // violation: no lock, no REQUIRES
  }

  void UnsafeBump() {
    ++balance_;  // violation: lock-free increment
  }

  void LockedThenEscapes() {
    std::unique_lock<std::mutex> lock(mu_);
    balance_ += 1;  // ok: first segment
    lock.unlock();
    balance_ += 1;  // violation: the region ended at unlock()
  }

 private:
  mutable std::mutex mu_;
  int balance_ CYQR_GUARDED_BY(mu_) = 0;
};

struct Waiter {
  std::mutex mu;
  bool done CYQR_GUARDED_BY(mu) = false;
};

bool PollAfterRelease(Waiter* waiter) {
  {
    std::lock_guard<std::mutex> lock(waiter->mu);
    if (waiter->done) return true;  // ok: receiver's guard is held
  }
  return waiter->done;  // violation: guard evidence present, lock dropped
}
