// Fixture TU 1: acquires g_mu_a, then g_mu_b while holding it. Locally
// fine — the inversion only exists against lock_order_cycle_tu2.cc.
#include "lock_order_cycle_shared.h"

std::mutex g_mu_a;
std::mutex g_mu_b;

void TransferAThenB() {
  std::lock_guard<std::mutex> a(g_mu_a);
  std::lock_guard<std::mutex> b(g_mu_b);
}
