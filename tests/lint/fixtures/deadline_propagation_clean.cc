// Fixture: every deadline-accepting callee receives the request deadline.
#include "deadline_propagation_clean.h"

struct Deadline {
  bool HasBudget(int millis) const { return millis > 0; }
};

int Backend(int query, const Deadline& deadline);

int Serve(int query, const Deadline& deadline) {
  if (!deadline.HasBudget(5)) return 0;
  return Backend(query, deadline);
}

int ServeDetached(int query, const Deadline& deadline) {
  // The callee runs after this request completes; the request budget
  // intentionally does not apply to it.
  // NOLINTNEXTLINE(cyqr-deadline-propagation): detached background work.
  return Backend(query, Deadline());
}
