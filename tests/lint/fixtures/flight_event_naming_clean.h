#ifndef FIXTURE_FLIGHT_EVENT_NAMING_CLEAN_H_
#define FIXTURE_FLIGHT_EVENT_NAMING_CLEAN_H_

#include <string>

/// Stand-in recorder: the rule matches member calls by name, so the
/// fixture never needs the real cyqr_obs library.
struct FakeRecorder {
  int InternName(const char* name);
};

FakeRecorder* GlobalRecorder();

#endif  // FIXTURE_FLIGHT_EVENT_NAMING_CLEAN_H_
