#ifndef FIXTURE_METRICS_NAMING_CLEAN_H_
#define FIXTURE_METRICS_NAMING_CLEAN_H_

#include <string>
#include <vector>

/// Stand-in registry: the rule matches member calls by name, so the
/// fixture never needs the real cyqr_obs library.
struct FakeRegistry {
  int* GetCounter(const std::string& name);
  int* GetGauge(const std::string& name);
  int* GetHistogram(const std::string& name,
                    const std::vector<double>& bounds);
};

FakeRegistry* GlobalRegistry();

#endif  // FIXTURE_METRICS_NAMING_CLEAN_H_
