// Fixture: own header is included, but not first — violation.
#include <string>

#include "include_hygiene_order.h"

std::string OrderName() { return "wrong order"; }
