// Fixture: every explicit memory order carries an "ordering:" comment —
// same line, above the statement, or above a statement that wraps.
#include "atomic_ordering_clean.h"

#include <atomic>

std::atomic<int> hits{0};
std::atomic<bool> ready{false};

int Bump() {
  // ordering: relaxed — pure tally; no other memory is published or
  // consumed through this counter.
  return hits.fetch_add(1, std::memory_order_relaxed);
}

bool Ready() {
  return ready.load(std::memory_order_acquire);  // ordering: pairs w/ release
}

bool Flip(bool expected) {
  // ordering: acq_rel — the winner must observe prior writes; losers
  // re-read the state through the acquire failure order.
  return ready.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
}
