// Fixture: a NOLINT for a different rule must NOT silence this one.
#include "nolint_wrong_rule.h"

struct Widget {
  int v = 0;
};

Widget* Make() {
  return new Widget();  // NOLINT(cyqr-banned-functions)
}
