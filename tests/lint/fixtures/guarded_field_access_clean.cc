// Fixture: every CYQR_GUARDED_BY access holds the mutex — lock regions,
// CYQR_REQUIRES propagation, constructor exemption, and an unrelated
// struct sharing a field name with an annotated class (no guard evidence,
// so the type-blind receiver check must stay quiet).
#include "guarded_field_access_clean.h"

#include <mutex>
#include <utility>

#include "core/thread_annotations.h"

class Ledger {
 public:
  Ledger() { balance_ = 0; }  // ok: ctor exemption, not shared yet

  void Deposit(int amount) {
    std::lock_guard<std::mutex> lock(mu_);
    balance_ += amount;
  }

  int Read() const {
    std::lock_guard<std::mutex> lock(mu_);
    return balance_;
  }

  void BumpLocked() CYQR_REQUIRES(mu_) {
    ++balance_;  // ok: caller holds mu_ per the contract
  }

 private:
  mutable std::mutex mu_;
  int balance_ CYQR_GUARDED_BY(mu_) = 0;
};

struct Waiter {
  std::mutex mu;
  bool done CYQR_GUARDED_BY(mu) = false;
};

bool Poll(Waiter* waiter) {
  std::lock_guard<std::mutex> lock(waiter->mu);
  return waiter->done;  // ok: receiver's guard is held for the access
}

struct PlainResult {
  bool done = false;  // same field name, but nothing guards it
};

bool Consume(PlainResult result) {
  return result.done;  // ok: no guard evidence — unrelated struct
}
