// Fixture: CYQR_REQUIRES contracts honored — lock regions at the call
// site, REQUIRES propagated to the caller, and a cross-object call made
// while the receiver's mutex is held.
#include "requires_not_held_clean.h"

#include <mutex>

#include "core/thread_annotations.h"

class Registry {
 public:
  void Rebuild() {
    std::lock_guard<std::mutex> lock(mu_);
    CompactLocked();  // ok: mu_ held by the enclosing region
  }

  void RebuildFromLocked() CYQR_REQUIRES(mu_) {
    CompactLocked();  // ok: caller propagates the contract
  }

 private:
  void CompactLocked() CYQR_REQUIRES(mu_) { ++entries_; }

  std::mutex mu_;
  int entries_ = 0;
};

struct Guarded {
  std::mutex mu;
  void TouchLocked() CYQR_REQUIRES(mu);
};

void CrossObjectHeld(Guarded& g) {
  std::lock_guard<std::mutex> lock(g.mu);
  g.TouchLocked();  // ok: g.mu is held for the call
}

struct Unrelated {
  // Same method name as Guarded's, but no guard evidence in callers.
  void TouchLocked() {}
};

void CallUnrelated(Unrelated& u) {
  u.TouchLocked();  // ok: u never shows a mu, so the check stays quiet
}
