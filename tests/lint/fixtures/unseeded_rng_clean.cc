// Fixture: explicitly seeded generators and look-alike tokens — clean.
#include "unseeded_rng_clean.h"

#include <algorithm>
#include <random>
#include <vector>

std::mt19937 MakeEngine(unsigned seed) {
  std::mt19937 engine(seed);  // explicit seed: fine
  return engine;
}

std::mt19937_64 MakeWideEngine(unsigned long long seed) {
  std::mt19937_64 engine{seed};  // explicit brace seed: fine
  return engine;
}

unsigned DrawOnce(unsigned seed) {
  return std::mt19937(seed)();  // seeded temporary: fine
}

void ShuffleInPlace(std::vector<int>* v, unsigned seed) {
  std::shuffle(v->begin(), v->end(), std::mt19937{seed});  // fine
}

// A member type merely named mt19937 is not the std one.
struct my {
  using mt19937 = int;
};
my::mt19937 counter = 0;

// Return types and parameter declarations are not constructions.
std::mt19937 Reseed(std::mt19937 engine);
const char* kDoc = "std::mt19937 gen; inside a string is fine";
