// Fixture: manual lock management on declared std mutexes.
#include "lock_scope_violation.h"

#include <mutex>
#include <shared_mutex>

class Account {
 public:
  void Deposit(int amount) {
    mu_.lock();  // violation: manual lock
    balance_ += amount;
    mu_.unlock();  // violation: manual unlock
  }

  bool TryWithdraw(int amount) {
    if (!mu_.try_lock()) return false;  // violation: manual try_lock
    balance_ -= amount;
    mu_.unlock();  // violation: manual unlock
    return true;
  }

 private:
  mutable std::mutex mu_;
  int balance_ = 0;
};

int ReadShared() {
  static std::shared_mutex registry_mu;
  registry_mu.lock();  // violation: manual lock on shared_mutex
  int value = 42;
  registry_mu.unlock();  // violation: manual unlock
  return value;
}

void ReaderSection() {
  static std::shared_mutex table_mu;
  table_mu.lock_shared();  // violation: manual shared lock
  int value = 7;
  table_mu.unlock_shared();  // violation: manual shared unlock
  if (table_mu.try_lock_shared()) {  // violation: manual shared try_lock
    value += table_mu.try_lock_shared() ? 1 : 0;  // violation
  }
  (void)value;
}
