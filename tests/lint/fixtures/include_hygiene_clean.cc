// Fixture: own header first, guard present — clean.
#include "include_hygiene_clean.h"

#include <string>

std::string CleanName() { return "clean"; }
