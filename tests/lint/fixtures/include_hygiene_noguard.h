// Fixture: header with no include guard and no #pragma once — violation.
#include <string>

inline std::string Greeting() { return "hi"; }
