// Fixture: explicit memory orders with no written justification.
#include "atomic_ordering_violation.h"

#include <atomic>

std::atomic<int> hits{0};
std::atomic<bool> ready{false};

int Bump() {
  return hits.fetch_add(1, std::memory_order_relaxed);  // violation: bare RMW
}

bool Ready() {
  return ready.load(std::memory_order_acquire);  // violation
}

void Announce() {
  ready.store(true, std::memory_order::release);  // violation: scoped spelling
}
