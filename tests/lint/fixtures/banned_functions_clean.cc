// Fixture: seeded RNG, checked parsing, bounded formatting — clean.
#include "banned_functions_clean.h"

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>

std::mt19937 MakeEngine(unsigned seed) {
  std::mt19937 engine(seed);  // explicit seed: fine
  return engine;
}

long Parse(const std::string& s, bool* ok) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  *ok = end != s.c_str() && *end == '\0';
  return v;
}

void Format(char* buf, size_t n, int v) {
  std::snprintf(buf, n, "%d", v);  // bounded: fine
}

// Words that merely contain banned names are not calls:
int random_value = 0;
void operand(int) {}  // "rand" substring inside identifiers is fine.
const char* kDoc = "call std::rand() or atoi() and sprintf()";  // string
