// Fixture: conventional flight event names and rule look-alikes — clean.
#include "flight_event_naming_clean.h"

#include <string>

// A free function named like the recorder method: not a member call.
int InternName(const std::string& name);

void InternConventionalNames(FakeRecorder& recorder) {
  int rung = recorder.InternName("serving.rung");
  int shed = recorder.InternName("queue.shed");
  int step = recorder.InternName("train.step_begin");
  int wait = GlobalRecorder()->InternName("collective.barrier_wait");
  int deep = recorder.InternName("train.dp.worker_loop");
  (void)rung;
  (void)shed;
  (void)step;
  (void)wait;
  (void)deep;
}

void RuleLookAlikes(FakeRecorder& recorder) {
  // Free-function call: no receiver, so the rule must not fire even
  // though the name is junk.
  int free_call = InternName("not an event at all");
  // Runtime-built name: invisible to the lexer, left to the recorder's
  // own validation.
  const std::string dynamic = std::string("serving.") + "rung";
  int built = recorder.InternName(dynamic.c_str());
  (void)free_call;
  (void)built;
}
