// Fixture: critical sections stay small; blocking work runs outside, and
// condition-variable waits (which release the lock) are sanctioned.
#include "lock_held_blocking_clean.h"

#include <condition_variable>
#include <mutex>

struct BoundedQueue {
  bool Push(int v);
};

std::mutex mu;
std::condition_variable cv;
BoundedQueue queue;

void Publish(int v) {
  int staged = 0;
  {
    std::lock_guard<std::mutex> lk(mu);
    staged = v + 1;
  }
  queue.Push(staged);  // Outside the critical section: fine.
}

int WaitForWork() {
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk);  // Releases the lock while blocked: sanctioned.
  return 0;
}
