// Fixture: every way to break the <layer>.<event> convention.
#include "flight_event_naming_violation.h"

void InternBadNames(FakeBadRecorder& recorder) {
  int a = recorder.InternName("rung");              // single segment
  int b = recorder.InternName("Serving.rung");      // uppercase
  int c = recorder.InternName("serving..rung");     // empty segment
  int d = recorder.InternName(".serving.rung");     // leading dot
  int e = recorder.InternName("serving.rung.");     // trailing dot
  int f = recorder.InternName("serving rung");      // space
  (void)a;
  (void)b;
  (void)c;
  (void)d;
  (void)e;
  (void)f;
}
