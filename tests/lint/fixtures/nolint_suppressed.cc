// Fixture: violations silenced by documented NOLINT suppressions.
#include "nolint_suppressed.h"

struct Widget {
  int v = 0;
};

Widget* Make() {
  // Intentionally leaked registry entry; freed by the OS at exit.
  return new Widget();  // NOLINT(cyqr-raw-owning-new)
}

Widget* MakeToo() {
  // NOLINTNEXTLINE(cyqr-raw-owning-new): ownership handed to C API.
  return new Widget();
}

void Destroy(Widget* w) {
  delete w;  // NOLINT: fixture exercises the suppress-everything form.
}
