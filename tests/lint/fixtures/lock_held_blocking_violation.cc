// Fixture: blocking work performed while a scoped lock is held.
#include "lock_held_blocking_violation.h"

#include <chrono>
#include <mutex>
#include <thread>

struct Deadline {};
struct BoundedQueue {
  bool Push(int v);
  int Pop();
};
int CallModel(int query, const Deadline& deadline);

std::mutex mu;
BoundedQueue queue;

void Publish(int v) {
  std::lock_guard<std::mutex> lk(mu);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // violation
  queue.Push(v);                                              // violation
}

int ServeLocked(int query, const Deadline& deadline) {
  std::unique_lock<std::mutex> lk(mu);
  return CallModel(query, deadline);  // violation: slow call under lock
}
