// Fixture: holders of a Deadline that drop the budget on the way down.
#include "deadline_propagation_violation.h"

struct Deadline {
  bool Expired() const { return false; }
};

int Backend(int query, const Deadline& deadline);
int Lookup(int key, const Deadline& deadline);

int Serve(int query, const Deadline& deadline) {
  if (deadline.Expired()) return 0;     // Member call on the deadline: fine.
  int a = Backend(query, deadline);     // Forwards: fine.
  int b = Lookup(query);                // violation: budget dropped
  int c = Backend(query, Deadline());   // violation: fresh deadline
  return a + b + c;
}
