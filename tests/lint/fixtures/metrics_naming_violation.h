#ifndef FIXTURE_METRICS_NAMING_VIOLATION_H_
#define FIXTURE_METRICS_NAMING_VIOLATION_H_

#include <string>
#include <vector>

struct FakeBadRegistry {
  int* GetCounter(const std::string& name);
  int* GetGauge(const std::string& name);
  int* GetHistogram(const std::string& name,
                    const std::vector<double>& bounds);
};

#endif  // FIXTURE_METRICS_NAMING_VIOLATION_H_
