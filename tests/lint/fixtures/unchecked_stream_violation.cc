// Fixture: file streams used without any error check.
#include "unchecked_stream_violation.h"

#include <fstream>
#include <string>

std::string ReadFirstLine(const std::string& path) {
  std::ifstream in(path);  // violation: never checked
  std::string line;
  std::getline(in, line);
  return line;
}

void WriteGreeting(const std::string& path) {
  std::ofstream out(path);  // violation: never checked
  out << "hello\n";
}
