// Fixture: smart pointers, deleted functions, "new" in comments/strings.
#include "raw_owning_new_clean.h"

#include <memory>

struct Widget {
  int v = 0;
  Widget(const Widget&) = delete;  // `= delete` is not a deallocation
  Widget() = default;
};

std::unique_ptr<Widget> Make() {
  // Build a new widget (the word "new" in a comment is fine).
  return std::make_unique<Widget>();
}

const char* kDoc = "operator new and delete are words in this string";
