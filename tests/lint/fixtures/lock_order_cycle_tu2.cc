// Fixture TU 2: acquires g_mu_b, then g_mu_a — the inversion of TU 1's
// order. Analyzed together they deadlock; each TU alone is clean.
#include "lock_order_cycle_shared.h"

void TransferBThenA() {
  std::lock_guard<std::mutex> b(g_mu_b);
  std::lock_guard<std::mutex> a(g_mu_a);
}
