// Fixture: every Status/Result use is consumed — no diagnostics.
#include "discarded_status_clean.h"

struct Status {
  static Status OK();
  bool ok() const;
};

Status SaveThing(int x);

template <typename T>
struct Result {
  bool ok() const;
  Status status() const;
};

Result<int> LoadThing(int x);

Status Run() {
  Status saved = SaveThing(1);           // assigned
  if (!saved.ok()) return saved;         // checked
  if (!SaveThing(2).ok()) return saved;  // used in condition
  (void)SaveThing(3);                    // explicit void cast
  Result<int> r = LoadThing(4);          // Result assigned
  if (!r.ok()) return r.status();        // status() in return
  return SaveThing(5);                   // returned
}
