#ifndef FIXTURE_INCLUDE_HYGIENE_ORDER_H_
#define FIXTURE_INCLUDE_HYGIENE_ORDER_H_

#include <string>

std::string OrderName();

#endif  // FIXTURE_INCLUDE_HYGIENE_ORDER_H_
