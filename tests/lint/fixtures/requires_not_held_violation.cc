// Fixture: CYQR_REQUIRES callees invoked without the mutex held.
#include "requires_not_held_violation.h"

#include <mutex>

#include "core/thread_annotations.h"

class Registry {
 public:
  void Rebuild() {
    CompactLocked();  // violation: mu_ is not held here
  }

  void RebuildAfterRelease() {
    std::unique_lock<std::mutex> lock(mu_);
    lock.unlock();
    CompactLocked();  // violation: the region ended at unlock()
  }

 private:
  void CompactLocked() CYQR_REQUIRES(mu_) { ++entries_; }

  std::mutex mu_;
  int entries_ = 0;
};

struct Guarded {
  std::mutex mu;
  void TouchLocked() CYQR_REQUIRES(mu);
};

void CrossObjectAfterRelease(Guarded& g) {
  std::unique_lock<std::mutex> lock(g.mu);
  lock.unlock();
  g.TouchLocked();  // violation: evidence of g.mu, but it was released
}
