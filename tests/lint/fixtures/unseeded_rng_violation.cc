// Fixture: argless standard-library RNG construction in every spelling.
#include "unseeded_rng_violation.h"

#include <algorithm>
#include <random>
#include <vector>

std::mt19937 MakeEngine() {
  std::mt19937 engine;  // violation: default-seeded declaration
  return engine;
}

std::mt19937_64 MakeWideEngine() {
  std::mt19937_64 engine{};  // violation: empty-brace construction
  return engine;
}

unsigned DrawOnce() {
  return std::mt19937()();  // violation: seedless temporary
}

void ShuffleInPlace(std::vector<int>* v) {
  std::shuffle(v->begin(), v->end(), std::mt19937{});  // violation: temporary
}
