// Fixture: writes to CYQR_GUARDED_BY fields under only a shared (reader)
// hold — legal to read, a data race to mutate.
#include "shared_lock_violation.h"

#include <mutex>
#include <shared_mutex>

#include "core/thread_annotations.h"

class PlanBoard {
 public:
  int ReadAndPatch() {
    std::shared_lock<std::shared_mutex> lock(plan_mu_);
    int seen = plan_;  // ok: read under the reader hold
    plan_ = seen + 1;  // violation: assignment under shared hold
    plan_ += 2;        // violation: compound assignment
    ++plan_;           // violation: prefix increment
    plan_--;           // violation: postfix decrement
    return plan_;      // ok: read
  }

 private:
  mutable std::shared_mutex plan_mu_;
  int plan_ CYQR_GUARDED_BY(plan_mu_) = 0;
};
