// Fixture: scope-guarded mutexes and lock()-lookalike receivers — clean.
#include "lock_scope_clean.h"

#include <memory>
#include <mutex>
#include <shared_mutex>

class Account {
 public:
  void Deposit(int amount) {
    std::lock_guard<std::mutex> lock(mu_);  // RAII guard: fine
    balance_ += amount;
  }

  int Balance() const {
    std::unique_lock<std::mutex> lock(mu_);  // RAII guard: fine
    return balance_;
  }

 private:
  mutable std::mutex mu_;
  int balance_ = 0;
};

// weak_ptr::lock() is not lock management; the receiver was never
// declared as a mutex, so the rule must stay quiet.
std::shared_ptr<int> Pin(const std::weak_ptr<int>& weak) {
  return weak.lock();
}

// A non-std type that happens to be named mutex is not collected either.
struct my {
  using mutex = int;
};
my::mutex counter = 0;

// std::shared_lock is the RAII form of the reader hold — clean.
int PeekShared() {
  static std::shared_mutex table_mu;
  std::shared_lock<std::shared_mutex> lock(table_mu);
  return 7;
}
