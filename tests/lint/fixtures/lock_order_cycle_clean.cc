// Fixture: nested acquisition with a globally consistent order, a
// scoped_lock over both mutexes (atomic acquisition — no ordering edge),
// and an unlock/re-lock of one guard (segments of the same guard never
// count as nesting).
#include "lock_order_cycle_clean.h"

#include <mutex>

std::mutex g_mu_c;
std::mutex g_mu_d;

void FirstThenSecond() {
  std::lock_guard<std::mutex> c(g_mu_c);
  std::lock_guard<std::mutex> d(g_mu_d);
}

void AlsoFirstThenSecond() {
  std::lock_guard<std::mutex> c(g_mu_c);
  std::lock_guard<std::mutex> d(g_mu_d);
}

void BothAtOnce() {
  std::scoped_lock lock(g_mu_c, g_mu_d);
}

void ReacquireSameGuard() {
  std::unique_lock<std::mutex> lock(g_mu_c);
  lock.unlock();
  lock.lock();
}
