// Fixture: raw owning allocation outside the allowlist.
#include "raw_owning_new_violation.h"

struct Widget {
  int v = 0;
};

Widget* Make() {
  return new Widget();  // violation: raw new
}

void Destroy(Widget* w) {
  delete w;  // violation: raw delete
}
