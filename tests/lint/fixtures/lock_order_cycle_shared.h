// Fixture header: the two mutexes the lock_order_cycle_tu* fixtures
// acquire in opposite orders. Real deadlocks are cross-TU by nature —
// each TU's order looks locally consistent.
#ifndef FIXTURE_LOCK_ORDER_CYCLE_SHARED_H_
#define FIXTURE_LOCK_ORDER_CYCLE_SHARED_H_

#include <mutex>

extern std::mutex g_mu_a;
extern std::mutex g_mu_b;

#endif  // FIXTURE_LOCK_ORDER_CYCLE_SHARED_H_
