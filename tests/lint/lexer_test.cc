// Unit tests for the cyqr_lint lexer's hard cases: raw string literals,
// digit separators, and phase-2 line continuations. Every one of these,
// mis-lexed, makes rule spans fire mid-token or inside literal bodies —
// the fixtures here are the regressions for the hardened handling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lexer.h"

namespace cyqr_lint {
namespace {

LexedFile Lex(const std::string& source) {
  return LexFile("test.cc", source);
}

std::vector<const Token*> OfKind(const LexedFile& f, TokKind kind) {
  std::vector<const Token*> out;
  for (const Token& t : f.tokens) {
    if (t.kind == kind) out.push_back(&t);
  }
  return out;
}

const Token* FindIdent(const LexedFile& f, const std::string& name) {
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kIdent && t.text == name) return &t;
  }
  return nullptr;
}

TEST(LexerTest, RawStringBodyIsOpaque) {
  const LexedFile f =
      Lex("auto s = R\"(a \"quoted\" ident_inside)\"; int after = 1;\n");
  const auto strings = OfKind(f, TokKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  // The body is preserved in aux (for rules that need the value) but the
  // token text stays empty so identifier matching never fires inside it.
  EXPECT_EQ(strings[0]->aux, "a \"quoted\" ident_inside");
  EXPECT_EQ(strings[0]->text, "");
  EXPECT_EQ(FindIdent(f, "ident_inside"), nullptr);
  EXPECT_NE(FindIdent(f, "after"), nullptr);
}

TEST(LexerTest, RawStringCustomDelimiterShieldsPlainTerminator) {
  // With delimiter "xy", a bare )" inside the body must not end the
  // literal; only )xy" does.
  const LexedFile f =
      Lex("auto s = R\"xy(body )\" not the end)xy\"; int tail = 2;\n");
  const auto strings = OfKind(f, TokKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0]->aux, "body )\" not the end");
  EXPECT_NE(FindIdent(f, "tail"), nullptr);
  EXPECT_EQ(FindIdent(f, "end"), nullptr);
}

TEST(LexerTest, RawStringEncodingPrefixes) {
  const LexedFile f = Lex(
      "auto a = u8R\"(w)\";\n"
      "auto b = uR\"(x)\";\n"
      "auto c = UR\"(y)\";\n"
      "auto d = LR\"(z)\";\n");
  const auto strings = OfKind(f, TokKind::kString);
  ASSERT_EQ(strings.size(), 4u);
  EXPECT_EQ(strings[0]->aux, "w");
  EXPECT_EQ(strings[3]->aux, "z");
}

TEST(LexerTest, IdentEndingInRIsNotARawStringPrefix) {
  // TRACER"bar" is an identifier adjacent to an ordinary string; lexing
  // it as a raw string would swallow tokens until a stray )" appears.
  const LexedFile f = Lex("auto s = TRACER\"bar\"; int next = 3;\n");
  EXPECT_NE(FindIdent(f, "TRACER"), nullptr);
  const auto strings = OfKind(f, TokKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0]->aux, "bar");
  EXPECT_NE(FindIdent(f, "next"), nullptr);
}

TEST(LexerTest, RawStringLineAccounting) {
  const LexedFile f = Lex(
      "auto s = R\"(line one\n"
      "line two)\";\n"
      "int after = 1;\n");
  const Token* after = FindIdent(f, "after");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->line, 3);
}

TEST(LexerTest, DigitSeparatorsStayInsideOneNumberToken) {
  const LexedFile f = Lex("int x = 1'000'000; int y = 0xFF'FF;\n");
  const auto numbers = OfKind(f, TokKind::kNumber);
  ASSERT_EQ(numbers.size(), 2u);
  EXPECT_EQ(numbers[0]->text, "1'000'000");
  EXPECT_EQ(numbers[1]->text, "0xFF'FF");
  // No char-literal token was conjured out of the separators.
  EXPECT_TRUE(OfKind(f, TokKind::kChar).empty());
}

TEST(LexerTest, QuoteAfterNumberContextStartsCharLiteral) {
  // The separator rule must not glue a following char literal onto a
  // number: here the quote opens 'a'.
  const LexedFile f = Lex("auto v = f(1, 'a');\n");
  const auto numbers = OfKind(f, TokKind::kNumber);
  ASSERT_EQ(numbers.size(), 1u);
  EXPECT_EQ(numbers[0]->text, "1");
  EXPECT_EQ(OfKind(f, TokKind::kChar).size(), 1u);
}

TEST(LexerTest, LineContinuationExtendsLineComment) {
  // The classic hazard: a backslash at the end of a // comment splices
  // the next physical line into the comment. `hidden` is commented out.
  const LexedFile f = Lex(
      "int a = 1;  // trailing comment \\\n"
      "int hidden = 2;\n"
      "int b = 3;\n");
  EXPECT_EQ(FindIdent(f, "hidden"), nullptr);
  const Token* b = FindIdent(f, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->line, 3);
}

TEST(LexerTest, LineContinuationInsideIdentifier) {
  // Phase-2 splicing: foo\<newline>bar is the single identifier foobar.
  const LexedFile f = Lex(
      "int foo\\\n"
      "bar = 1;\n"
      "int rest = 2;\n");
  const Token* spliced = FindIdent(f, "foobar");
  ASSERT_NE(spliced, nullptr);
  EXPECT_EQ(spliced->line, 1);
  EXPECT_EQ(FindIdent(f, "bar"), nullptr);
  const Token* rest = FindIdent(f, "rest");
  ASSERT_NE(rest, nullptr);
  EXPECT_EQ(rest->line, 3);
}

TEST(LexerTest, OrderingCommentSpansEveryLineOfBlockComment) {
  const LexedFile f = Lex(
      "/* ordering: relaxed — this justification\n"
      "   wraps onto a second line */\n"
      "int x = 1;\n");
  EXPECT_EQ(f.ordering_comment_lines.count(1), 1u);
  EXPECT_EQ(f.ordering_comment_lines.count(2), 1u);
  EXPECT_EQ(f.ordering_comment_lines.count(3), 0u);
}

TEST(LexerTest, OrderingCommentOnSplicedLineComment) {
  // A spliced // comment carrying the marker covers both physical lines.
  const LexedFile f = Lex(
      "// ordering: relaxed — spliced \\\n"
      "continuation line\n"
      "int x = 1;\n");
  EXPECT_EQ(f.ordering_comment_lines.count(1), 1u);
  EXPECT_EQ(f.ordering_comment_lines.count(2), 1u);
}

}  // namespace
}  // namespace cyqr_lint
