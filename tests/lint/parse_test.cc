// Regression tests for the parse layer's lock-region and annotation
// recovery — the structure the thread-safety rules key on. The hard
// cases: nested guards, unique_lock's unlock/re-lock segmentation,
// scoped_lock over several mutexes, std::defer_lock, and annotation
// attachment on declarations and definitions alike.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "parse.h"

namespace cyqr_lint {
namespace {

ParsedFile Parse(const std::string& source) {
  return ParseFile(LexFile("test.cc", source));
}

const FunctionDef* FindFn(const ParsedFile& f, const std::string& name) {
  for (const FunctionDef& fn : f.functions) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

TEST(ParseTest, NestedLockRegionsAreBothRecovered) {
  const ParsedFile f = Parse(
      "void Nested() {\n"
      "  std::lock_guard<std::mutex> a(mu_a);\n"
      "  {\n"
      "    std::lock_guard<std::mutex> b(mu_b);\n"
      "    Use();\n"
      "  }\n"
      "}\n");
  const FunctionDef* fn = FindFn(f, "Nested");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->locks.size(), 2u);
  const LockRegion& outer = fn->locks[0];
  const LockRegion& inner = fn->locks[1];
  EXPECT_EQ(outer.mutexes, std::vector<std::string>({"mu_a"}));
  EXPECT_EQ(inner.mutexes, std::vector<std::string>({"mu_b"}));
  // The inner region nests strictly inside the outer one — the shape the
  // lock-order edge collector keys on.
  EXPECT_GT(inner.begin, outer.begin);
  EXPECT_LE(inner.end, outer.end);
}

TEST(ParseTest, UnlockTruncatesTheRegion) {
  const ParsedFile f = Parse(
      "void Early() {\n"
      "  std::unique_lock<std::mutex> lock(mu_);\n"
      "  touched_ = 1;\n"
      "  lock.unlock();\n"
      "  after_ = 2;\n"
      "}\n");
  const FunctionDef* fn = FindFn(f, "Early");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->locks.size(), 1u);
  const LockRegion& region = fn->locks[0];
  // `touched_` is inside the region; `after_` is past the unlock().
  EXPECT_TRUE(
      RangeMentionsIdent(f.lex.tokens, region.begin, region.end, "touched_"));
  EXPECT_FALSE(
      RangeMentionsIdent(f.lex.tokens, region.begin, region.end, "after_"));
}

TEST(ParseTest, RelockOpensASecondSegment) {
  const ParsedFile f = Parse(
      "void Segmented() {\n"
      "  std::unique_lock<std::mutex> lock(mu_);\n"
      "  first_ = 1;\n"
      "  lock.unlock();\n"
      "  gap_ = 2;\n"
      "  lock.lock();\n"
      "  second_ = 3;\n"
      "}\n");
  const FunctionDef* fn = FindFn(f, "Segmented");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->locks.size(), 2u);
  EXPECT_EQ(fn->locks[0].name, "lock");
  EXPECT_EQ(fn->locks[1].name, "lock");
  EXPECT_EQ(fn->locks[0].mutexes, fn->locks[1].mutexes);
  // The re-lock segment reports the .lock() line, not the declaration's.
  EXPECT_EQ(fn->locks[0].line, 2);
  EXPECT_EQ(fn->locks[1].line, 6);
  const auto& toks = f.lex.tokens;
  EXPECT_TRUE(RangeMentionsIdent(toks, fn->locks[0].begin, fn->locks[0].end,
                                 "first_"));
  EXPECT_FALSE(
      RangeMentionsIdent(toks, fn->locks[0].begin, fn->locks[0].end, "gap_"));
  EXPECT_FALSE(RangeMentionsIdent(toks, fn->locks[1].begin, fn->locks[1].end,
                                  "gap_"));
  EXPECT_TRUE(RangeMentionsIdent(toks, fn->locks[1].begin, fn->locks[1].end,
                                 "second_"));
}

TEST(ParseTest, SharedLockRegionsCarryTheSharedFlag) {
  const ParsedFile f = Parse(
      "void Mixed() {\n"
      "  std::shared_lock<std::shared_mutex> reader(mu_);\n"
      "  Peek();\n"
      "  reader.unlock();\n"
      "  std::unique_lock<std::shared_mutex> writer(mu_);\n"
      "  Poke();\n"
      "}\n");
  const FunctionDef* fn = FindFn(f, "Mixed");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->locks.size(), 2u);
  EXPECT_EQ(fn->locks[0].guard_type, "shared_lock");
  EXPECT_TRUE(fn->locks[0].shared);
  EXPECT_EQ(fn->locks[1].guard_type, "unique_lock");
  EXPECT_FALSE(fn->locks[1].shared);
  EXPECT_EQ(fn->locks[0].mutexes, fn->locks[1].mutexes);
}

TEST(ParseTest, ScopedLockOverTwoMutexesIsOneRegion) {
  const ParsedFile f = Parse(
      "void Both() {\n"
      "  std::scoped_lock lock(mu_a, mu_b);\n"
      "  Use();\n"
      "}\n");
  const FunctionDef* fn = FindFn(f, "Both");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->locks.size(), 1u);
  EXPECT_EQ(fn->locks[0].mutexes,
            std::vector<std::string>({"mu_a", "mu_b"}));
}

TEST(ParseTest, DeferLockContributesNoInitialRegion) {
  const ParsedFile f = Parse(
      "void Deferred() {\n"
      "  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);\n"
      "  not_held_ = 1;\n"
      "  lock.lock();\n"
      "  held_ = 2;\n"
      "}\n");
  const FunctionDef* fn = FindFn(f, "Deferred");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->locks.size(), 1u);
  const LockRegion& region = fn->locks[0];
  // The only region starts at the explicit .lock(); the defer_lock tag is
  // not recorded as a mutex.
  EXPECT_EQ(region.mutexes, std::vector<std::string>({"mu_"}));
  const auto& toks = f.lex.tokens;
  EXPECT_FALSE(
      RangeMentionsIdent(toks, region.begin, region.end, "not_held_"));
  EXPECT_TRUE(RangeMentionsIdent(toks, region.begin, region.end, "held_"));
}

TEST(ParseTest, MemberPathMutexesAreFlattened) {
  const ParsedFile f = Parse(
      "void Wait(Waiter* waiter) {\n"
      "  std::lock_guard<std::mutex> lock(waiter->mu);\n"
      "}\n");
  const FunctionDef* fn = FindFn(f, "Wait");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->locks.size(), 1u);
  EXPECT_EQ(fn->locks[0].mutexes,
            std::vector<std::string>({"waiter->mu"}));
}

TEST(ParseTest, GuardedFieldAndClassRecovery) {
  const ParsedFile f = Parse(
      "class Ledger {\n"
      " public:\n"
      "  void Deposit(int amount);\n"
      " private:\n"
      "  mutable std::mutex mu_;\n"
      "  int balance_ CYQR_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "int g_total CYQR_GUARDED_BY(g_mu) = 0;\n");
  ASSERT_EQ(f.classes.size(), 1u);
  EXPECT_EQ(f.classes[0].name, "Ledger");
  ASSERT_EQ(f.guarded_fields.size(), 2u);
  EXPECT_EQ(f.guarded_fields[0].class_name, "Ledger");
  EXPECT_EQ(f.guarded_fields[0].field, "balance_");
  EXPECT_EQ(f.guarded_fields[0].mutex, "mu_");
  EXPECT_EQ(f.guarded_fields[1].class_name, "");
  EXPECT_EQ(f.guarded_fields[1].field, "g_total");
  EXPECT_EQ(f.guarded_fields[1].mutex, "g_mu");
}

TEST(ParseTest, AnnotationRecoveredFromDeclarationAndDefinition) {
  const ParsedFile f = Parse(
      "class Registry {\n"
      " public:\n"
      "  Family* GetFamily(const std::string& name) CYQR_REQUIRES(mu_);\n"
      "  void Publish() CYQR_EXCLUDES(mu_) {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "  }\n"
      "};\n");
  // Declaration-site REQUIRES: recovered as an AnnotationSite even though
  // the function has no body in this file.
  bool saw_requires = false;
  bool saw_excludes = false;
  for (const AnnotationSite& site : f.annotations) {
    if (site.macro == "CYQR_REQUIRES") {
      saw_requires = true;
      EXPECT_EQ(site.function, "GetFamily");
      EXPECT_EQ(site.class_name, "Registry");
      EXPECT_EQ(site.args, std::vector<std::string>({"mu_"}));
    }
    if (site.macro == "CYQR_EXCLUDES") {
      saw_excludes = true;
      EXPECT_EQ(site.function, "Publish");
      EXPECT_EQ(site.class_name, "Registry");
    }
  }
  EXPECT_TRUE(saw_requires);
  EXPECT_TRUE(saw_excludes);
  // The definition's annotation also lands on the FunctionDef itself.
  const FunctionDef* publish = FindFn(f, "Publish");
  ASSERT_NE(publish, nullptr);
  EXPECT_EQ(publish->excludes_locks, std::vector<std::string>({"mu_"}));
  EXPECT_EQ(publish->class_name, "Registry");
}

TEST(ParseTest, AnnotatedDefinitionBodyIsStillRecovered) {
  // The CYQR_* group sits between the parameter list and the body; the
  // body-brace scan must skip it or the whole function vanishes.
  const ParsedFile f = Parse(
      "void Compact() CYQR_REQUIRES(mu_) {\n"
      "  entries_ = 0;\n"
      "}\n");
  const FunctionDef* fn = FindFn(f, "Compact");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->requires_locks, std::vector<std::string>({"mu_"}));
  EXPECT_TRUE(RangeMentionsIdent(f.lex.tokens, fn->body_begin, fn->body_end,
                                 "entries_"));
}

}  // namespace
}  // namespace cyqr_lint
