// Fixture-based self-tests for cyqr_lint: every rule has a
// known-violation and a known-clean fixture, plus suppression and
// allowlist coverage. The fixtures live outside the linted tree, so the
// in-tree gate never sees their deliberate violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.h"

namespace cyqr_lint {
namespace {

std::string Fixture(const char* name) {
  return std::string(CYQR_LINT_FIXTURE_DIR) + "/" + name;
}

/// Runs a single rule over one fixture file and returns its diagnostics.
std::vector<Diagnostic> RunRule(const char* rule, const char* file) {
  LintOptions options;
  options.enabled_rules.insert(rule);
  const LintResult result = RunLint({Fixture(file)}, options);
  EXPECT_TRUE(result.errors.empty());
  return result.diagnostics;
}

std::vector<int> Lines(const std::vector<Diagnostic>& diags) {
  std::vector<int> lines;
  for (const Diagnostic& d : diags) lines.push_back(d.line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(LintTest, DiscardedStatusViolations) {
  const auto diags =
      RunRule("discarded-status", "discarded_status_violation.cc");
  EXPECT_EQ(Lines(diags), std::vector<int>({16, 17, 18, 19}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "discarded-status");
  }
}

TEST(LintTest, DiscardedStatusClean) {
  EXPECT_TRUE(
      RunRule("discarded-status", "discarded_status_clean.cc").empty());
}

TEST(LintTest, UncheckedStreamViolations) {
  const auto diags =
      RunRule("unchecked-stream", "unchecked_stream_violation.cc");
  EXPECT_EQ(Lines(diags), std::vector<int>({8, 15}));
}

TEST(LintTest, UncheckedStreamClean) {
  EXPECT_TRUE(
      RunRule("unchecked-stream", "unchecked_stream_clean.cc").empty());
}

TEST(LintTest, BannedFunctionsViolations) {
  const auto diags =
      RunRule("banned-functions", "banned_functions_violation.cc");
  // rand, srand + time (same line), atoi, sprintf.
  EXPECT_EQ(Lines(diags), std::vector<int>({10, 14, 14, 18, 22}));
}

TEST(LintTest, BannedFunctionsClean) {
  EXPECT_TRUE(
      RunRule("banned-functions", "banned_functions_clean.cc").empty());
}

TEST(LintTest, UnseededRngViolations) {
  const auto diags =
      RunRule("banned-unseeded-rng", "unseeded_rng_violation.cc");
  // Declaration, empty-brace declaration, () temporary, {} temporary.
  EXPECT_EQ(Lines(diags), std::vector<int>({9, 14, 19, 23}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "banned-unseeded-rng");
  }
}

TEST(LintTest, UnseededRngClean) {
  EXPECT_TRUE(
      RunRule("banned-unseeded-rng", "unseeded_rng_clean.cc").empty());
}

TEST(LintTest, RawOwningNewViolations) {
  const auto diags =
      RunRule("raw-owning-new", "raw_owning_new_violation.cc");
  EXPECT_EQ(Lines(diags), std::vector<int>({9, 13}));
}

TEST(LintTest, RawOwningNewClean) {
  EXPECT_TRUE(
      RunRule("raw-owning-new", "raw_owning_new_clean.cc").empty());
}

TEST(LintTest, IncludeHygieneMissingGuard) {
  const auto diags =
      RunRule("include-hygiene", "include_hygiene_noguard.h");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("include guard"), std::string::npos);
}

TEST(LintTest, IncludeHygieneSelfIncludeOrder) {
  const auto diags = RunRule("include-hygiene", "include_hygiene_order.cc");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_NE(diags[0].message.find("first include"), std::string::npos);
}

TEST(LintTest, IncludeHygieneClean) {
  EXPECT_TRUE(
      RunRule("include-hygiene", "include_hygiene_clean.h").empty());
  EXPECT_TRUE(
      RunRule("include-hygiene", "include_hygiene_clean.cc").empty());
  EXPECT_TRUE(
      RunRule("include-hygiene", "include_hygiene_pragma.h").empty());
}

TEST(LintTest, MetricsNamingViolations) {
  const auto diags =
      RunRule("metrics-naming", "metrics_naming_violation.cc");
  // Missing prefix, missing layer, unknown unit, uppercase, bad unit
  // abbreviation, empty segment.
  EXPECT_EQ(Lines(diags), std::vector<int>({5, 6, 7, 8, 10, 11}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "metrics-naming");
    EXPECT_NE(d.message.find("cyqr_<layer>_<name>_<unit>"),
              std::string::npos);
  }
}

TEST(LintTest, MetricsNamingClean) {
  EXPECT_TRUE(
      RunRule("metrics-naming", "metrics_naming_clean.cc").empty());
}

TEST(LintTest, FlightEventNamingViolations) {
  const auto diags =
      RunRule("metrics-naming", "flight_event_naming_violation.cc");
  // Single segment, uppercase, empty segment, leading dot, trailing dot,
  // space.
  EXPECT_EQ(Lines(diags), std::vector<int>({5, 6, 7, 8, 9, 10}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "metrics-naming");
    EXPECT_NE(d.message.find("<layer>.<event>"), std::string::npos);
  }
}

TEST(LintTest, FlightEventNamingClean) {
  EXPECT_TRUE(
      RunRule("metrics-naming", "flight_event_naming_clean.cc").empty());
}

TEST(LintTest, NolintSuppressesSameLineNextLineAndBare) {
  EXPECT_TRUE(RunRule("raw-owning-new", "nolint_suppressed.cc").empty());
}

TEST(LintTest, NolintForAnotherRuleDoesNotSuppress) {
  const auto diags = RunRule("raw-owning-new", "nolint_wrong_rule.cc");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 9);
}

TEST(LintTest, AllowlistExemptsMatchingPaths) {
  LintOptions options;
  options.enabled_rules.insert("raw-owning-new");
  options.allow["raw-owning-new"].push_back("raw_owning_new_violation");
  const LintResult result =
      RunLint({Fixture("raw_owning_new_violation.cc")}, options);
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintTest, LockScopeViolations) {
  const auto diags = RunRule("lock-scope", "lock_scope_violation.cc");
  // Exclusive manual calls, plus the lock_shared/unlock_shared/
  // try_lock_shared family on a shared_mutex.
  EXPECT_EQ(Lines(diags),
            std::vector<int>({10, 12, 16, 18, 29, 31, 37, 39, 40, 41}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "lock-scope");
  }
  // Shared variants steer toward the RAII reader guard.
  EXPECT_NE(diags[6].message.find("std::shared_lock"), std::string::npos);
}

TEST(LintTest, LockScopeClean) {
  EXPECT_TRUE(RunRule("lock-scope", "lock_scope_clean.cc").empty());
}

TEST(LintTest, SharedLockWriteViolations) {
  // A std::shared_lock region is a reader hold: the reads in the fixture
  // stay clean, every mutation of the guarded field is flagged.
  const auto diags =
      RunRule("guarded-field-access", "shared_lock_violation.cc");
  EXPECT_EQ(Lines(diags), std::vector<int>({15, 16, 17, 18}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "guarded-field-access");
    EXPECT_NE(d.message.find("shared (reader) mode"), std::string::npos);
  }
}

TEST(LintTest, SharedLockReadsAndExclusiveWritesClean) {
  EXPECT_TRUE(
      RunRule("guarded-field-access", "shared_lock_clean.cc").empty());
}

TEST(LintTest, DeadlinePropagationViolations) {
  const auto diags =
      RunRule("deadline-propagation", "deadline_propagation_violation.cc");
  // Dropped budget (Lookup(query)), fresh deadline (Backend(..,
  // Deadline())); the forwarding call and the member call on the deadline
  // object itself stay clean.
  EXPECT_EQ(Lines(diags), std::vector<int>({14, 15}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "deadline-propagation");
    EXPECT_NE(d.message.find("without forwarding it"), std::string::npos);
  }
}

TEST(LintTest, DeadlinePropagationCleanIncludingNolint) {
  // The clean fixture also proves NOLINTNEXTLINE works for this rule.
  EXPECT_TRUE(
      RunRule("deadline-propagation", "deadline_propagation_clean.cc")
          .empty());
}

TEST(LintTest, LockHeldBlockingCallViolations) {
  const auto diags =
      RunRule("lock-held-blocking-call", "lock_held_blocking_violation.cc");
  // sleep_for under lock_guard, queue.Push under lock_guard, and a
  // deadline-bound callee under unique_lock.
  EXPECT_EQ(Lines(diags), std::vector<int>({20, 21, 26}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "lock-held-blocking-call");
    EXPECT_NE(d.message.find("is held"), std::string::npos);
  }
}

TEST(LintTest, LockHeldBlockingCallClean) {
  // Push outside the inner brace scope and cv.wait (which releases the
  // lock) both stay clean.
  EXPECT_TRUE(
      RunRule("lock-held-blocking-call", "lock_held_blocking_clean.cc")
          .empty());
}

TEST(LintTest, AtomicOrderingAuditViolations) {
  const auto diags =
      RunRule("atomic-ordering-audit", "atomic_ordering_violation.cc");
  // Bare relaxed fetch_add, unjustified acquire load, and the scoped
  // memory_order::release spelling.
  EXPECT_EQ(Lines(diags), std::vector<int>({10, 14, 18}));
  // The RMW site gets the sharper message.
  EXPECT_NE(diags[0].message.find("orders nothing"), std::string::npos);
  EXPECT_NE(diags[1].message.find("memory_order_acquire"),
            std::string::npos);
  EXPECT_NE(diags[2].message.find("memory_order_release"),
            std::string::npos);
}

TEST(LintTest, AtomicOrderingAuditClean) {
  // Same-line comment, comment above the statement, and one comment above
  // a CAS whose success/failure orders wrap onto later lines.
  EXPECT_TRUE(
      RunRule("atomic-ordering-audit", "atomic_ordering_clean.cc").empty());
}

TEST(LintTest, ResultUnwrapCheckViolations) {
  const auto diags =
      RunRule("result-unwrap-check", "result_unwrap_violation.cc");
  // Unchecked unwrap of a local Result and of a Result parameter.
  EXPECT_EQ(Lines(diags), std::vector<int>({15, 19}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "result-unwrap-check");
    EXPECT_NE(d.message.find("ok()"), std::string::npos);
  }
}

TEST(LintTest, ResultUnwrapCheckClean) {
  EXPECT_TRUE(
      RunRule("result-unwrap-check", "result_unwrap_clean.cc").empty());
}

TEST(LintTest, GuardedFieldAccessViolations) {
  const auto diags =
      RunRule("guarded-field-access", "guarded_field_access_violation.cc");
  // Lock-free read, lock-free increment, access after unlock(), and a
  // receiver-qualified access after the guard's block closed.
  EXPECT_EQ(Lines(diags), std::vector<int>({16, 20, 27, 45}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "guarded-field-access");
  }
}

TEST(LintTest, GuardedFieldAccessClean) {
  EXPECT_TRUE(
      RunRule("guarded-field-access", "guarded_field_access_clean.cc")
          .empty());
}

TEST(LintTest, RequiresNotHeldViolations) {
  const auto diags =
      RunRule("requires-not-held", "requires_not_held_violation.cc");
  // Unlocked same-object call, call after unlock(), and a cross-object
  // call after the receiver's mutex was released.
  EXPECT_EQ(Lines(diags), std::vector<int>({11, 17, 35}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "requires-not-held");
  }
}

TEST(LintTest, RequiresNotHeldClean) {
  EXPECT_TRUE(
      RunRule("requires-not-held", "requires_not_held_clean.cc").empty());
}

TEST(LintTest, LockOrderCycleAcrossTwoTus) {
  // Each TU's acquisition order is locally consistent; only the merged
  // cross-TU graph exposes the inversion. The one diagnostic must carry
  // both witness paths, file:line each, so the report is actionable
  // without re-running the analysis.
  LintOptions options;
  options.enabled_rules.insert("lock-order-cycle");
  const LintResult result =
      RunLint({Fixture("lock_order_cycle_tu1.cc"),
               Fixture("lock_order_cycle_tu2.cc")},
              options);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  const Diagnostic& d = result.diagnostics[0];
  EXPECT_EQ(d.rule, "lock-order-cycle");
  EXPECT_NE(d.message.find("'g_mu_a' held while acquiring 'g_mu_b'"),
            std::string::npos)
      << d.message;
  EXPECT_NE(d.message.find("'g_mu_b' held while acquiring 'g_mu_a'"),
            std::string::npos)
      << d.message;
  EXPECT_NE(d.message.find("lock_order_cycle_tu1.cc:10"), std::string::npos)
      << d.message;
  EXPECT_NE(d.message.find("lock_order_cycle_tu2.cc:7"), std::string::npos)
      << d.message;
}

TEST(LintTest, LockOrderCycleEachTuAloneIsClean) {
  EXPECT_TRUE(
      RunRule("lock-order-cycle", "lock_order_cycle_tu1.cc").empty());
  EXPECT_TRUE(
      RunRule("lock-order-cycle", "lock_order_cycle_tu2.cc").empty());
}

TEST(LintTest, LockOrderCycleConsistentOrderIsClean) {
  // Consistent nesting, scoped_lock over both mutexes (atomic — no
  // ordering edge), and unlock/re-lock of one guard all stay quiet.
  EXPECT_TRUE(
      RunRule("lock-order-cycle", "lock_order_cycle_clean.cc").empty());
}

TEST(LintTest, LockOrderCycleSelfAcquireIsReported) {
  const auto diags =
      RunRule("lock-order-cycle", "lock_order_cycle_self.cc");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("acquired while already held"),
            std::string::npos)
      << diags[0].message;
}

TEST(LintTest, AllRulesRunTogether) {
  // The whole fixture directory under every rule: all fifteen rules fire
  // somewhere, proving the multi-rule driver and cross-file fact
  // collection (status functions, deadline functions, thread-safety
  // annotations, lock-order edges) work end to end.
  const LintResult result = RunLint({CYQR_LINT_FIXTURE_DIR}, {});
  std::vector<std::string> fired;
  for (const Diagnostic& d : result.diagnostics) fired.push_back(d.rule);
  for (const char* rule :
       {"discarded-status", "unchecked-stream", "banned-functions",
        "banned-unseeded-rng", "raw-owning-new", "include-hygiene",
        "metrics-naming", "lock-scope", "deadline-propagation",
        "lock-held-blocking-call", "atomic-ordering-audit",
        "result-unwrap-check", "guarded-field-access", "requires-not-held",
        "lock-order-cycle"}) {
    EXPECT_NE(std::find(fired.begin(), fired.end(), rule), fired.end())
        << "rule never fired over fixtures: " << rule;
  }
}

TEST(LintTest, UnknownPathReportsError) {
  const LintResult result = RunLint({"/nonexistent/nowhere"}, {});
  EXPECT_FALSE(result.errors.empty());
}

TEST(LintTest, JsonOutputIsWellFormed) {
  LintOptions options;
  options.enabled_rules.insert("raw-owning-new");
  const LintResult result =
      RunLint({Fixture("raw_owning_new_violation.cc")}, options);
  const std::string json = FormatJson(result);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"rule\": \"raw-owning-new\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 9"), std::string::npos);
}

}  // namespace
}  // namespace cyqr_lint
