// Tests for the cyqr_lint production driver: parallel analysis waves,
// the content-hash incremental cache (including cross-file fact
// invalidation), and the span-based --fix engine.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "driver.h"

namespace cyqr_lint {
namespace {

namespace fs = std::filesystem;

class DriverTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("cyqr_lint_driver_" +
            std::string(
                testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  std::string Write(const std::string& name, const std::string& content) {
    const fs::path path = dir_ / name;
    std::ofstream out(path, std::ios::trunc);
    out << content;
    out.flush();
    EXPECT_TRUE(out.good());
    return path.string();
  }

  std::string ReadBack(const std::string& path) {
    std::string content;
    EXPECT_TRUE(ReadFileToString(path, &content));
    return content;
  }

  fs::path dir_;
};

/// (file, line, rule) triples for order-insensitive comparison.
std::vector<std::string> Keys(const LintResult& result) {
  std::vector<std::string> keys;
  for (const Diagnostic& d : result.diagnostics) {
    keys.push_back(d.file + ":" + std::to_string(d.line) + ":" + d.rule);
  }
  return keys;
}

TEST_F(DriverTest, IncrementalCacheSkipsUnchangedFiles) {
  Write("a.cc", "int Leak() { int* p = new int(3); return *p; }\n");
  const std::string b_path =
      Write("b.cc", "int Fine() { return 7; }\n");

  DriverOptions options;
  options.lint.enabled_rules.insert("raw-owning-new");
  options.cache_path = (dir_ / "cache.txt").string();
  options.jobs = 2;

  // Cold: everything is analyzed.
  const DriverResult cold = RunDriver({dir_.string()}, options);
  EXPECT_FALSE(cold.stats.cache_valid);
  EXPECT_EQ(cold.stats.files_analyzed, 2);
  EXPECT_EQ(cold.stats.files_from_cache, 0);
  ASSERT_EQ(cold.lint.diagnostics.size(), 1u);

  // Warm: nothing is re-analyzed; diagnostics replay from the cache.
  const DriverResult warm = RunDriver({dir_.string()}, options);
  EXPECT_TRUE(warm.stats.cache_valid);
  EXPECT_EQ(warm.stats.files_analyzed, 0);
  EXPECT_EQ(warm.stats.files_from_cache, 2);
  EXPECT_EQ(Keys(warm.lint), Keys(cold.lint));

  // Touch one file (no fact change): exactly that file is re-analyzed.
  Write("b.cc", "int Fine() { return 7; }\n// touched\n");
  const DriverResult touched = RunDriver({dir_.string()}, options);
  EXPECT_TRUE(touched.stats.cache_valid);
  EXPECT_EQ(touched.stats.files_analyzed, 1);
  EXPECT_EQ(touched.stats.files_from_cache, 1);
  EXPECT_EQ(Keys(touched.lint), Keys(cold.lint));
  (void)b_path;
}

TEST_F(DriverTest, CacheInvalidatedWhenFactsChangeElsewhere) {
  // a.cc calls Foo without forwarding its deadline — clean today, because
  // Foo is not known to accept one.
  Write("a.cc",
        "struct Deadline {};\n"
        "int Foo(int x);\n"
        "int Serve(int q, const Deadline& deadline) {\n"
        "  return Foo(q);\n"
        "}\n");
  Write("b.cc", "int Unrelated();\n");

  DriverOptions options;
  options.lint.enabled_rules.insert("deadline-propagation");
  options.cache_path = (dir_ / "cache.txt").string();
  options.jobs = 2;

  const DriverResult before = RunDriver({dir_.string()}, options);
  EXPECT_TRUE(before.lint.diagnostics.empty());
  const DriverResult warm = RunDriver({dir_.string()}, options);
  EXPECT_EQ(warm.stats.files_from_cache, 2);

  // b.cc now declares a deadline-accepting Foo overload. a.cc is
  // byte-identical, but its cached verdict is stale: the cross-file fact
  // set changed, so the fingerprint must force a full re-analysis.
  Write("b.cc",
        "struct Deadline {};\n"
        "int Foo(int x, const Deadline& deadline);\n");
  const DriverResult after = RunDriver({dir_.string()}, options);
  EXPECT_FALSE(after.stats.cache_valid);
  EXPECT_EQ(after.stats.files_analyzed, 2);
  EXPECT_EQ(after.stats.files_from_cache, 0);
  ASSERT_EQ(after.lint.diagnostics.size(), 1u);
  EXPECT_EQ(after.lint.diagnostics[0].line, 4);
  EXPECT_EQ(after.lint.diagnostics[0].rule, "deadline-propagation");
}

TEST_F(DriverTest, FixSynthesizesNolintAndIsIdempotent) {
  const std::string path =
      Write("leak.cc", "int Leak() {\n  int* p = new int(3);\n  return *p;\n}\n");

  DriverOptions options;
  options.lint.enabled_rules.insert("raw-owning-new");
  options.fix = true;
  options.fix_nolint_rules.push_back("raw-owning-new");

  const DriverResult first = RunDriver({path}, options);
  EXPECT_EQ(first.stats.files_fixed, 1);
  const std::string fixed = ReadBack(path);
  EXPECT_NE(
      fixed.find("// NOLINTNEXTLINE(cyqr-raw-owning-new): TODO: justify"),
      std::string::npos);
  // The synthesized suppression inherits the flagged line's indentation.
  EXPECT_NE(fixed.find("\n  // NOLINTNEXTLINE"), std::string::npos);

  // Second pass: the suppression silences the finding, so --fix has
  // nothing left to do and the file does not change again.
  const DriverResult second = RunDriver({path}, options);
  EXPECT_TRUE(second.lint.diagnostics.empty());
  EXPECT_EQ(second.stats.files_fixed, 0);
  EXPECT_EQ(ReadBack(path), fixed);
}

TEST_F(DriverTest, FixReordersSelfIncludeAndIsIdempotent) {
  Write("widget.h",
        "#ifndef WIDGET_H_\n#define WIDGET_H_\n#endif  // WIDGET_H_\n");
  const std::string path = Write("widget.cc",
                                 "#include <vector>\n"
                                 "#include \"widget.h\"\n"
                                 "int W() { return 1; }\n");

  DriverOptions options;
  options.lint.enabled_rules.insert("include-hygiene");
  options.fix = true;

  const DriverResult first = RunDriver({path}, options);
  EXPECT_EQ(first.stats.files_fixed, 1);
  const std::string fixed = ReadBack(path);
  EXPECT_EQ(fixed.rfind("#include \"widget.h\"\n#include <vector>\n", 0), 0u)
      << fixed;

  const DriverResult second = RunDriver({path}, options);
  EXPECT_TRUE(second.lint.diagnostics.empty());
  EXPECT_EQ(second.stats.files_fixed, 0);
  EXPECT_EQ(ReadBack(path), fixed);
}

TEST_F(DriverTest, FixDryRunRendersDiffWithoutWriting) {
  const std::string path =
      Write("leak.cc", "int* Leak() { return new int(3); }\n");
  const std::string original = ReadBack(path);

  DriverOptions options;
  options.lint.enabled_rules.insert("raw-owning-new");
  options.fix_dry_run = true;
  options.fix_nolint_rules.push_back("raw-owning-new");

  const DriverResult result = RunDriver({path}, options);
  EXPECT_EQ(result.stats.files_fixed, 1);
  EXPECT_NE(result.fix_diff.find("leak.cc:1"), std::string::npos);
  EXPECT_NE(result.fix_diff.find("NOLINTNEXTLINE(cyqr-raw-owning-new)"),
            std::string::npos);
  EXPECT_EQ(ReadBack(path), original);
}

TEST_F(DriverTest, ParallelMatchesSerial) {
  // The shipped fixture corpus under all twelve rules, once on a single
  // thread and once on eight: identical findings, any schedule.
  DriverOptions serial;
  serial.jobs = 1;
  DriverOptions parallel;
  parallel.jobs = 8;
  const std::vector<std::string> paths = {CYQR_LINT_FIXTURE_DIR};
  const DriverResult a = RunDriver(paths, serial);
  const DriverResult b = RunDriver(paths, parallel);
  EXPECT_FALSE(a.lint.diagnostics.empty());
  EXPECT_EQ(Keys(a.lint), Keys(b.lint));
  EXPECT_EQ(a.stats.files_analyzed, b.stats.files_analyzed);
}

TEST_F(DriverTest, ExpandPathsHonorsExcludeFragments) {
  Write("keep.cc", "int K();\n");
  fs::create_directories(dir_ / "fixtures");
  Write("fixtures/skip.cc", "int S();\n");

  std::vector<std::string> errors;
  const std::vector<std::string> all =
      ExpandPaths({dir_.string()}, {}, &errors);
  EXPECT_EQ(all.size(), 2u);
  const std::vector<std::string> filtered =
      ExpandPaths({dir_.string()}, {"fixtures"}, &errors);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_NE(filtered[0].find("keep.cc"), std::string::npos);
  EXPECT_TRUE(errors.empty());
}

TEST_F(DriverTest, CorruptCacheIsDiscardedNotTrusted) {
  const std::string path =
      Write("a.cc", "int Leak() { int* p = new int(3); return *p; }\n");
  DriverOptions options;
  options.lint.enabled_rules.insert("raw-owning-new");
  options.cache_path = (dir_ / "cache.txt").string();

  const DriverResult cold = RunDriver({path}, options);
  ASSERT_EQ(cold.lint.diagnostics.size(), 1u);

  // Truncate/corrupt the cache: the next run must fall back to a full
  // analysis and still report the finding.
  Write("cache.txt", "not a cache\n");
  const DriverResult after = RunDriver({path}, options);
  EXPECT_FALSE(after.stats.cache_valid);
  EXPECT_EQ(after.stats.files_analyzed, 1);
  EXPECT_EQ(Keys(after.lint), Keys(cold.lint));
}

TEST_F(DriverTest, FixWritesThroughSyncedTempThenRename) {
  const std::string path =
      Write("leak.cc", "int Leak() { int* p = new int(3); return *p; }\n");

  DriverOptions options;
  options.lint.enabled_rules.insert("raw-owning-new");
  options.fix = true;
  options.fix_nolint_rules.push_back("raw-owning-new");
  std::string tmp_seen;
  std::string tmp_content_at_sync;
  options.on_fix_tmp_synced = [&](const std::string& tmp) {
    tmp_seen = tmp;
    EXPECT_TRUE(ReadFileToString(tmp, &tmp_content_at_sync));
  };

  const DriverResult result = RunDriver({path}, options);
  EXPECT_EQ(result.stats.files_fixed, 1);
  // At sync time the temp file already held the complete fixed text; the
  // rename then published exactly that content and consumed the temp.
  ASSERT_FALSE(tmp_seen.empty());
  EXPECT_FALSE(fs::exists(tmp_seen));
  EXPECT_EQ(ReadBack(path), tmp_content_at_sync);
  EXPECT_NE(tmp_content_at_sync.find("NOLINTNEXTLINE(cyqr-raw-owning-new)"),
            std::string::npos);
}

TEST_F(DriverTest, FixCrashBeforeRenameLeavesOriginalIntact) {
  // Kill the process between fsync(tmp) and rename(tmp -> path): the
  // worst-possible crash point. Atomicity means the original file must
  // still read back byte-identical, and a plain re-run completes the fix.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string original =
      "int Leak() { int* p = new int(3); return *p; }\n";
  const std::string path = Write("crash.cc", original);

  DriverOptions options;
  options.lint.enabled_rules.insert("raw-owning-new");
  options.fix = true;
  options.fix_nolint_rules.push_back("raw-owning-new");

  DriverOptions crashing = options;
  crashing.on_fix_tmp_synced = [](const std::string&) { std::_Exit(87); };
  EXPECT_EXIT(RunDriver({path}, crashing), testing::ExitedWithCode(87), "");
  EXPECT_EQ(ReadBack(path), original);

  // Recovery is a plain re-run: the stale temp is overwritten, the
  // rename lands, and the fix is in place.
  const DriverResult retry = RunDriver({path}, options);
  EXPECT_EQ(retry.stats.files_fixed, 1);
  EXPECT_NE(ReadBack(path).find("NOLINTNEXTLINE(cyqr-raw-owning-new)"),
            std::string::npos);
}

}  // namespace
}  // namespace cyqr_lint
