// End-to-end integration: the full production pipeline on a small world —
// generate click log -> build vocabulary -> train the cycle model
// (Algorithm 1) -> rewrite hard queries (Figure 3) -> retrieve through the
// merged syntax tree (Figure 5) -> verify with the oracle judge and the
// learned ranker. One slow test that exercises every subsystem together.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baseline/rule_based.h"
#include "core/string_util.h"
#include "eval/judge.h"
#include "eval/ranker.h"
#include "index/retrieval.h"
#include "rewrite/inference.h"
#include "rewrite/trainer.h"
#include "serving/rewrite_service.h"

namespace cyqr {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = std::make_unique<World>();
    // 1. Synthetic world.
    world_->catalog = Catalog::Generate({});
    ClickLogConfig log_config;
    log_config.num_distinct_queries = 400;
    log_config.num_sessions = 20000;
    world_->log = ClickLog::Generate(world_->catalog, log_config);
    const auto token_pairs = world_->log.TokenPairs(world_->catalog);
    std::vector<std::vector<std::string>> corpus;
    for (const TokenPair& p : token_pairs) {
      corpus.push_back(p.query);
      corpus.push_back(p.title);
    }
    world_->vocab = Vocabulary::Build(corpus);

    // 2. Train a small joint model (enough to be clearly better than
    //    random on this world).
    CycleConfig config = PaperScaledConfig(world_->vocab.size());
    config.forward.num_layers = 1;
    Rng rng(77);
    world_->model = std::make_unique<CycleModel>(config, rng);
    CycleTrainerOptions options;
    options.max_steps = 320;
    options.warmup_steps = 260;
    options.batch_size = 8;
    options.eval_every = 0;
    CycleTrainer trainer(world_->model.get(),
                         EncodePairs(token_pairs, world_->vocab), options);
    ASSERT_TRUE(trainer.Train({}).ok());
    world_->model->SetTraining(false);

    // 3. Index.
    for (const Product& p : world_->catalog.products()) {
      world_->index.AddDocument(p.id, p.title_tokens);
    }
  }
  static void TearDownTestSuite() {
    world_.reset();
    world_ = nullptr;
  }

  struct World {
    Catalog catalog;
    ClickLog log;
    Vocabulary vocab;
    std::unique_ptr<CycleModel> model;
    InvertedIndex index;
  };
  static std::unique_ptr<World> world_;
};

std::unique_ptr<PipelineTest::World> PipelineTest::world_;

TEST_F(PipelineTest, RewritesImproveRecallForHardQueries) {
  CycleRewriter rewriter(world_->model.get(), &world_->vocab);
  RetrievalEngine engine(&world_->index);
  Rng rng(5);
  int64_t improved = 0;
  int64_t hard = 0;
  for (const QuerySpec& q : world_->log.queries()) {
    if (!q.is_colloquial) continue;
    const auto base = engine.RetrieveOne(q.tokens);
    if (!base.docs.empty()) continue;  // Only truly broken queries.
    ++hard;
    const auto result = rewriter.Rewrite(q.tokens, {});
    std::vector<std::vector<std::string>> all = {q.tokens};
    for (const RewriteCandidate& c : result.rewrites) all.push_back(c.tokens);
    const auto merged = engine.RetrieveMerged(all);
    if (!merged.docs.empty()) ++improved;
    if (hard >= 25) break;
  }
  ASSERT_GT(hard, 10);
  // The trained model must fix a clear majority of dead queries.
  EXPECT_GT(static_cast<double>(improved) / hard, 0.6);
}

TEST_F(PipelineTest, JudgeScoresModelAboveRandomTokens) {
  CycleRewriter rewriter(world_->model.get(), &world_->vocab);
  const RelevanceJudge judge(&world_->catalog);
  double model_score = 0.0;
  double garbage_score = 0.0;
  int64_t count = 0;
  for (const QuerySpec& q : world_->log.queries()) {
    if (!q.is_colloquial) continue;
    const auto result = rewriter.Rewrite(q.tokens, {});
    std::vector<std::vector<std::string>> rewrites;
    for (const RewriteCandidate& c : result.rewrites) {
      rewrites.push_back(c.tokens);
    }
    model_score += judge.ScoreSet(q.intent, rewrites);
    garbage_score += judge.ScoreSet(q.intent, {{"zzz", "nothing"}});
    if (++count >= 20) break;
  }
  ASSERT_GT(count, 10);
  EXPECT_GT(model_score, garbage_score + 1.0);
}

TEST_F(PipelineTest, ServingTiersAgreeOnHeadQueries) {
  // Precompute a few head queries; the service must return exactly the
  // precomputed rewrites for them.
  CycleRewriter rewriter(world_->model.get(), &world_->vocab);
  RewriteKvStore store;
  std::vector<std::vector<std::string>> head;
  for (size_t i = 0; i < 5; ++i) {
    head.push_back(world_->log.queries()[i].tokens);
  }
  RewriteService::PrecomputeHead(rewriter, head, {}, &store);
  EXPECT_EQ(store.size(), 5u);
  RewriteService service(&store, nullptr, {});
  for (const auto& q : head) {
    const auto response = service.Serve(q);
    EXPECT_EQ(response.source, RewriteService::Source::kCache);
    const auto* cached = store.Get(JoinStrings(q));
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(response.rewrites.size(),
              std::min<size_t>(cached->size(), 3));
  }
}

TEST_F(PipelineTest, LearnedRankerBeatsReverseOrderOnClicks) {
  // Train the pairwise ranker on the same world and verify it orders a
  // clicked item above the median of the candidate pool for most queries.
  Bm25Scorer bm25;
  for (const Product& p : world_->catalog.products()) {
    bm25.AddDocument(p.id, p.title_tokens);
  }
  Rng rng(9);
  TwoTowerModel embedder(world_->vocab.size(), 16, rng);
  TwoTowerModel::TrainOptions tower_options;
  tower_options.steps = 120;
  const double tower_loss =
      embedder.Train(EncodePairs(world_->log.TokenPairs(world_->catalog),
                                 world_->vocab),
                     tower_options);
  EXPECT_TRUE(std::isfinite(tower_loss));
  PairwiseRanker ranker(&world_->catalog, &bm25, &embedder, &world_->vocab);
  PairwiseRanker::TrainOptions rank_options;
  rank_options.steps = 1500;
  const double rank_loss = ranker.Train(world_->log, rank_options);
  EXPECT_TRUE(std::isfinite(rank_loss));

  PostingList all;
  for (const Product& p : world_->catalog.products()) all.push_back(p.id);
  int64_t wins = 0;
  int64_t total = 0;
  for (const ClickPair& p : world_->log.pairs()) {
    if (total >= 30) break;
    const auto& q = world_->log.queries()[p.query_index];
    const auto ranked = ranker.Rank(q.tokens, all);
    for (size_t pos = 0; pos < ranked.size(); ++pos) {
      if (ranked[pos].doc == p.product_id) {
        if (pos < ranked.size() / 2) ++wins;
        ++total;
        break;
      }
    }
  }
  ASSERT_GT(total, 20);
  EXPECT_GT(static_cast<double>(wins) / total, 0.7);
}

}  // namespace
}  // namespace cyqr
