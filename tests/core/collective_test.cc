// Collective contracts: the barrier synchronizes ranks, a lost rank turns
// into a clean kDeadlineExceeded instead of a hang, aborts fan out to
// every blocked rank, and the all-reduce's bits depend only on the slot
// contents — never on how many ranks participated.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/collective.h"
#include "core/status.h"

namespace cyqr {
namespace {

Collective::Options Opts(int world_size, double timeout_millis = 5000.0) {
  Collective::Options options;
  options.world_size = world_size;
  options.timeout_millis = timeout_millis;
  return options;
}

TEST(CollectiveTest, SingleRankBarrierIsImmediate) {
  Collective collective(Opts(1));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(collective.Barrier().ok());
  }
}

TEST(CollectiveTest, BarrierSynchronizesRanks) {
  constexpr int kWorld = 4;
  constexpr int kRounds = 10;
  Collective collective(Opts(kWorld));
  std::atomic<int> arrivals{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> ranks;
  for (int r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        arrivals.fetch_add(1);
        ASSERT_TRUE(collective.Barrier().ok());
        // Every rank of this round arrived before any rank passed.
        if (arrivals.load() < (round + 1) * kWorld) violated.store(true);
        ASSERT_TRUE(collective.Barrier().ok());  // Close the round.
      }
    });
  }
  for (std::thread& t : ranks) t.join();
  EXPECT_FALSE(violated.load());
}

TEST(CollectiveTest, MissingPeerTimesOutWithDeadlineExceeded) {
  Collective collective(Opts(2, /*timeout_millis=*/100.0));
  // The peer never arrives: the barrier must poison itself, not hang.
  const Status status = collective.Barrier();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  // The poison sticks: every later operation fails fast with it.
  EXPECT_EQ(collective.Barrier().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(collective.abort_status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(CollectiveTest, AbortWakesBlockedRanksAndFirstAbortWins) {
  Collective collective(Opts(2));
  Status seen;
  std::thread blocked([&] { seen = collective.Barrier(); });
  collective.Abort(Status::Internal("coordinator failed"));
  collective.Abort(Status::IoError("latecomer"));  // Must not overwrite.
  blocked.join();
  ASSERT_FALSE(seen.ok());
  EXPECT_EQ(seen.code(), StatusCode::kInternal);
  EXPECT_EQ(collective.abort_status().code(), StatusCode::kInternal);
}

TEST(CollectiveTest, StallUntilAbortedReturnsPeerAbort) {
  Collective collective(Opts(2));
  Status seen;
  std::thread stalled([&] { seen = collective.StallUntilAborted(); });
  collective.Abort(Status::DeadlineExceeded("peers timed out"));
  stalled.join();
  EXPECT_EQ(seen.code(), StatusCode::kDeadlineExceeded);
}

TEST(CollectiveTest, StallWithNoPeersSelfAborts) {
  Collective collective(Opts(1, /*timeout_millis=*/100.0));
  const Status status = collective.StallUntilAborted();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

/// The reference fold: the same fixed slot-index tree the collective
/// schedules, executed sequentially. AllReduceSum must match this bit for
/// bit at every world size.
std::vector<float> ReferenceTreeSum(std::vector<std::vector<float>> slots) {
  for (size_t stride = 1; stride < slots.size(); stride *= 2) {
    for (size_t j = 0; j + stride < slots.size(); j += 2 * stride) {
      for (size_t e = 0; e < slots[j].size(); ++e) {
        slots[j][e] += slots[j + stride][e];
      }
    }
  }
  return slots[0];
}

std::vector<std::vector<float>> MakeSlots(int num_slots) {
  // Values chosen to make float addition order observable: summing these
  // in a different order changes the low-order bits.
  std::vector<std::vector<float>> slots;
  for (int j = 0; j < num_slots; ++j) {
    slots.push_back({1.0f + 1e-7f * static_cast<float>(j * j),
                     -3.7f * static_cast<float>(j) + 0.1f,
                     1e-8f * static_cast<float>(j + 1), 42.0f});
  }
  return slots;
}

std::vector<float> RunAllReduce(int world_size, int num_slots) {
  Collective collective(Opts(world_size));
  std::vector<std::vector<float>> slots = MakeSlots(num_slots);
  std::vector<std::thread> ranks;
  for (int r = 1; r < world_size; ++r) {
    ranks.emplace_back([&collective, &slots, r] {
      ASSERT_TRUE(collective.AllReduceSum(r, &slots).ok());
    });
  }
  EXPECT_TRUE(collective.AllReduceSum(0, &slots).ok());
  for (std::thread& t : ranks) t.join();
  return slots[0];
}

TEST(CollectiveTest, AllReduceSumIsBitIdenticalAcrossWorldSizes) {
  for (const int num_slots : {1, 2, 4, 5, 8}) {
    const std::vector<float> reference =
        ReferenceTreeSum(MakeSlots(num_slots));
    for (const int world : {1, 2, 3, 4}) {
      if (world > num_slots) continue;
      EXPECT_EQ(RunAllReduce(world, num_slots), reference)
          << "world=" << world << " slots=" << num_slots;
    }
  }
}

TEST(CollectiveTest, BarrierAccumulatesWaitTime) {
  Collective collective(Opts(2));
  std::thread peer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(collective.Barrier().ok());
  });
  ASSERT_TRUE(collective.Barrier().ok());
  peer.join();
  // The first arrival waited ~20ms for the sleeper.
  EXPECT_GT(collective.total_wait_millis(), 5.0);
}

}  // namespace
}  // namespace cyqr
