// ThreadPool contracts: every admitted job runs exactly once, every shed
// job's hook runs exactly once, Drain() flushes the queue before joining,
// and the pool's accounting (submitted == completed + shed) is exact.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/status.h"
#include "core/thread_pool.h"

namespace cyqr {
namespace {

/// Lets a test hold the pool's workers hostage until it says otherwise —
/// the deterministic way to force a full queue.
class Gate {
 public:
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ThreadPoolTest, RunsEveryAdmittedJob) {
  ThreadPool::Options options;
  options.num_threads = 3;
  options.queue_capacity = 128;
  ThreadPool pool(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&] { ran.fetch_add(1); }).ok());
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.completed_total(), 100);
  EXPECT_EQ(pool.submitted_total(), 100);
  EXPECT_EQ(pool.shed_total(), 0);
}

TEST(ThreadPoolTest, ShedHookRunsForRefusedJobs) {
  ThreadPool::Options options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  options.shed_policy = ShedPolicy::kRejectNewest;
  ThreadPool pool(options);

  Gate gate;
  std::atomic<int> ran{0};
  std::atomic<int> shed{0};
  // One job wedges the worker; two fill the queue; the rest must shed.
  ASSERT_TRUE(pool.Submit([&] { gate.Wait(); }).ok());
  // The wedge job may not have been picked up yet; give the worker a
  // moment so the queue state is deterministic (queue empty, worker busy).
  while (pool.InFlight() == 0) std::this_thread::yield();

  constexpr int kExtra = 6;
  int admitted = 0;
  for (int i = 0; i < kExtra; ++i) {
    ThreadPool::Job job;
    job.run = [&] { ran.fetch_add(1); };
    job.shed = [&] { shed.fetch_add(1); };
    const Status status = pool.Submit(std::move(job));
    if (status.ok()) {
      ++admitted;
    } else {
      // Overload shed, not shutdown: the status must say so.
      EXPECT_EQ(status.code(), StatusCode::kUnavailable);
      EXPECT_NE(status.message().find("full"), std::string::npos)
          << status.ToString();
    }
  }
  EXPECT_EQ(admitted, 2);          // queue_capacity
  EXPECT_EQ(shed.load(), kExtra - 2);  // hooks ran synchronously

  gate.Open();
  pool.Drain();
  EXPECT_EQ(ran.load(), admitted);
  // Accounting invariant: nothing vanished, nothing ran twice.
  EXPECT_EQ(pool.submitted_total(), 1 + kExtra);
  EXPECT_EQ(pool.completed_total(), 1 + admitted);
  EXPECT_EQ(pool.shed_total(), kExtra - admitted);
}

TEST(ThreadPoolTest, EvictOldestRunsVictimsShedHook) {
  ThreadPool::Options options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.shed_policy = ShedPolicy::kEvictOldest;
  ThreadPool pool(options);

  Gate gate;
  ASSERT_TRUE(pool.Submit([&] { gate.Wait(); }).ok());
  while (pool.InFlight() == 0) std::this_thread::yield();

  std::atomic<int> first_shed{0};
  std::atomic<int> second_ran{0};
  ThreadPool::Job first;
  first.run = [] {};
  first.shed = [&] { first_shed.fetch_add(1); };
  ASSERT_TRUE(pool.Submit(std::move(first)).ok());

  ThreadPool::Job second;
  second.run = [&] { second_ran.fetch_add(1); };
  ASSERT_TRUE(pool.Submit(std::move(second)).ok());  // Evicts `first`.
  EXPECT_EQ(first_shed.load(), 1);

  gate.Open();
  pool.Drain();
  EXPECT_EQ(second_ran.load(), 1);
  EXPECT_EQ(pool.shed_total(), 1);
  EXPECT_EQ(pool.completed_total(), 2);
}

TEST(ThreadPoolTest, DrainFlushesQueuedJobsThenRefusesNewOnes) {
  ThreadPool::Options options;
  options.num_threads = 2;
  options.queue_capacity = 64;
  ThreadPool pool(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }).ok());
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 32);  // Drain ran everything already queued.

  std::atomic<int> late_shed{0};
  ThreadPool::Job late;
  late.run = [&] { ran.fetch_add(1); };
  late.shed = [&] { late_shed.fetch_add(1); };
  const Status status = pool.Submit(std::move(late));
  // Post-Drain submissions used to vanish with a bare `false`; the status
  // now names the reason so callers can distinguish shutdown from overload.
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("draining"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(late_shed.load(), 1);
  EXPECT_EQ(ran.load(), 32);

  pool.Drain();  // Idempotent.
  EXPECT_EQ(pool.completed_total() + pool.shed_total(),
            pool.submitted_total());
}

TEST(ThreadPoolTest, AccountingExactUnderConcurrentSubmitters) {
  ThreadPool::Options options;
  options.num_threads = 2;
  options.queue_capacity = 4;  // Small on purpose: force real shedding.
  ThreadPool pool(options);
  std::atomic<int> ran{0};
  std::atomic<int> shed{0};

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 200;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        ThreadPool::Job job;
        job.run = [&] { ran.fetch_add(1); };
        job.shed = [&] { shed.fetch_add(1); };
        // (void): admission is accounted via the run/shed hooks here.
        (void)pool.Submit(std::move(job));
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Drain();

  const int total = kSubmitters * kPerSubmitter;
  EXPECT_EQ(pool.submitted_total(), total);
  // Exactly-once: every job either ran or shed, never both, never neither.
  EXPECT_EQ(ran.load() + shed.load(), total);
  EXPECT_EQ(pool.completed_total(), ran.load());
  EXPECT_EQ(pool.shed_total(), shed.load());
}

}  // namespace
}  // namespace cyqr
