#include "core/string_util.h"

#include <gtest/gtest.h>

namespace cyqr {
namespace {

TEST(StringUtilTest, SplitBasic) {
  auto parts = SplitString("red mens sandals");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "red");
  EXPECT_EQ(parts[2], "sandals");
}

TEST(StringUtilTest, SplitCollapsesRepeatedDelimiters) {
  auto parts = SplitString("  a   b  ");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringUtilTest, SplitEmpty) {
  EXPECT_TRUE(SplitString("").empty());
  EXPECT_TRUE(SplitString("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrips) {
  std::vector<std::string> parts = {"cheap", "senior", "phone"};
  EXPECT_EQ(JoinStrings(parts), "cheap senior phone");
  EXPECT_EQ(JoinStrings(parts, "-"), "cheap-senior-phone");
  EXPECT_EQ(JoinStrings({}), "");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("iPhone 12 PRO"), "iphone 12 pro");
}

TEST(StringUtilTest, StripAscii) {
  EXPECT_EQ(StripAscii("  hello \t\n"), "hello");
  EXPECT_EQ(StripAscii(""), "");
  EXPECT_EQ(StripAscii("   "), "");
}

}  // namespace
}  // namespace cyqr
