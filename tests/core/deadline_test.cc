#include "core/deadline.h"

#include <gtest/gtest.h>

namespace cyqr {
namespace {

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.HasBudget(1e12));
  d.Charge(1e12);
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, DefaultConstructedIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
}

TEST(DeadlineTest, ChargeConsumesBudgetDeterministically) {
  // Budgets are huge relative to wall-clock noise so only the charged
  // virtual time decides the outcome.
  Deadline d = Deadline::AfterMillis(1e6);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.HasBudget(1e5));

  d.Charge(1e6 - 100.0);
  EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(d.HasBudget(1e5));
  EXPECT_LE(d.RemainingMillis(), 100.0);

  d.Charge(200.0);
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMillis(), 0.0);
  EXPECT_FALSE(d.HasBudget(1.0));
}

TEST(DeadlineTest, ElapsedIncludesChargedTime) {
  Deadline d = Deadline::AfterMillis(1000.0);
  d.Charge(250.0);
  EXPECT_GE(d.ElapsedMillis(), 250.0);
  EXPECT_EQ(d.charged_millis(), 250.0);
}

TEST(DeadlineTest, RemainingNeverNegative) {
  Deadline d = Deadline::AfterMillis(10.0);
  d.Charge(1e9);
  EXPECT_EQ(d.RemainingMillis(), 0.0);
}

}  // namespace
}  // namespace cyqr
