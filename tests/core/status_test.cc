#include "core/status.h"

#include <gtest/gtest.h>

namespace cyqr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad beam width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad beam width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad beam width");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status Inner(bool fail) {
  if (fail) return Status::Internal("inner failed");
  return Status::OK();
}

Status Outer(bool fail) {
  CYQR_RETURN_IF_ERROR(Inner(fail));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Outer(false).ok());
  Status s = Outer(true);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace cyqr
