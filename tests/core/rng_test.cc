#include "core/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace cyqr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBelow(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All residues appear over 1000 draws.
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(17);
  std::vector<float> w = {1.0f, 0.0f, 3.0f};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleCategorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, SampleFromLogitsIsShiftInvariant) {
  // Softmax sampling must not change when logits get a constant offset.
  std::vector<float> base = {0.0f, 1.0f, 2.0f};
  std::vector<float> shifted = {100.0f, 101.0f, 102.0f};
  Rng a(21);
  Rng b(21);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.SampleFromLogits(base.data(), 3),
              b.SampleFromLogits(shifted.data(), 3));
  }
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(23);
  auto perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Split();
  // Parent and child streams should not be identical.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace cyqr
