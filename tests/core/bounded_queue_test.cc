// BoundedQueue semantics: FIFO order, never-exceeds-capacity, the two shed
// policies (who exactly loses a slot, and who is told), and close/drain
// behaviour — the contracts RewriteServer's overload protection stands on.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/bounded_queue.h"

namespace cyqr {
namespace {

TEST(BoundedQueueTest, FifoOrderPreserved) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    const auto result = queue.Push(i);
    EXPECT_TRUE(result.admitted);
    EXPECT_FALSE(result.rejected.has_value());
    EXPECT_FALSE(result.evicted.has_value());
  }
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(BoundedQueueTest, RejectNewestHandsBackTheArrival) {
  BoundedQueue<int> queue(2, ShedPolicy::kRejectNewest);
  EXPECT_TRUE(queue.Push(1).admitted);
  EXPECT_TRUE(queue.Push(2).admitted);

  const auto overflow = queue.Push(3);
  EXPECT_FALSE(overflow.admitted);
  ASSERT_TRUE(overflow.rejected.has_value());
  EXPECT_EQ(*overflow.rejected, 3);  // The arrival itself lost.
  EXPECT_EQ(queue.size(), 2u);

  // Queued work was preserved, in order.
  int out = -1;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, EvictOldestAdmitsArrivalAndReturnsVictim) {
  BoundedQueue<int> queue(2, ShedPolicy::kEvictOldest);
  EXPECT_TRUE(queue.Push(1).admitted);
  EXPECT_TRUE(queue.Push(2).admitted);

  const auto overflow = queue.Push(3);
  EXPECT_TRUE(overflow.admitted);
  EXPECT_FALSE(overflow.rejected.has_value());
  ASSERT_TRUE(overflow.evicted.has_value());
  EXPECT_EQ(*overflow.evicted, 1);  // The oldest queued item lost.
  EXPECT_EQ(queue.size(), 2u);

  int out = -1;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 3);
}

TEST(BoundedQueueTest, NeverGrowsPastCapacityUnderEitherPolicy) {
  for (const ShedPolicy policy :
       {ShedPolicy::kRejectNewest, ShedPolicy::kEvictOldest}) {
    BoundedQueue<int> queue(3, policy);
    for (int i = 0; i < 50; ++i) {
      queue.Push(i);
      EXPECT_LE(queue.size(), 3u) << ShedPolicyName(policy);
    }
  }
}

TEST(BoundedQueueTest, CloseRejectsNewPushesButDrainsQueued) {
  BoundedQueue<std::string> queue(4);
  EXPECT_TRUE(queue.Push("a").admitted);
  EXPECT_TRUE(queue.Push("b").admitted);
  queue.Close();
  EXPECT_TRUE(queue.closed());

  const auto late = queue.Push("late");
  EXPECT_FALSE(late.admitted);
  ASSERT_TRUE(late.rejected.has_value());
  EXPECT_EQ(*late.rejected, "late");

  // Already-queued items still come out (drain), then Pop reports closed.
  std::string out;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, "b");
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<int> queue(4);
  std::atomic<int> finished{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      int out = 0;
      while (queue.Pop(&out)) {
      }
      finished.fetch_add(1);
    });
  }
  queue.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(finished.load(), 3);
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersLoseNothing) {
  // Capacity large enough that nothing sheds: every pushed item must come
  // out exactly once across the consumers.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(kProducers * kPerProducer);
  std::atomic<int64_t> popped_sum{0};
  std::atomic<int64_t> popped_count{0};

  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      int out = 0;
      while (queue.Pop(&out)) {
        popped_sum.fetch_add(out);
        popped_count.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.Push(p * kPerProducer + i).admitted);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n - 1) / 2);
}

TEST(ShedPolicyTest, NamesAndParsingRoundTrip) {
  EXPECT_STREQ(ShedPolicyName(ShedPolicy::kRejectNewest), "reject");
  EXPECT_STREQ(ShedPolicyName(ShedPolicy::kEvictOldest), "oldest");
  ShedPolicy policy = ShedPolicy::kRejectNewest;
  EXPECT_TRUE(ParseShedPolicy("oldest", &policy));
  EXPECT_EQ(policy, ShedPolicy::kEvictOldest);
  EXPECT_TRUE(ParseShedPolicy("reject", &policy));
  EXPECT_EQ(policy, ShedPolicy::kRejectNewest);
  EXPECT_FALSE(ParseShedPolicy("newest", &policy));
  EXPECT_FALSE(ParseShedPolicy("", &policy));
}

}  // namespace
}  // namespace cyqr
