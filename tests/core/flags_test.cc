#include "core/flags.h"

#include <gtest/gtest.h>

namespace cyqr {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser flags = Parse({"--steps=100", "--out=dir"});
  EXPECT_EQ(flags.GetInt("steps"), 100);
  EXPECT_EQ(flags.GetString("out"), "dir");
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser flags = Parse({"--steps", "100", "--out", "dir"});
  EXPECT_EQ(flags.GetInt("steps"), 100);
  EXPECT_EQ(flags.GetString("out"), "dir");
}

TEST(FlagsTest, BareSwitchIsTrue) {
  FlagParser flags = Parse({"--separate", "--steps=5"});
  EXPECT_TRUE(flags.GetBool("separate"));
  EXPECT_FALSE(flags.GetBool("missing"));
  EXPECT_TRUE(flags.GetBool("missing", true));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetInt("steps", 42), 42);
  EXPECT_EQ(flags.GetString("out", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(flags.GetDouble("lambda", 0.1), 0.1);
  EXPECT_FALSE(flags.Has("steps"));
}

TEST(FlagsTest, PositionalArguments) {
  FlagParser flags = Parse({"train", "--steps=5", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "train");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(FlagsTest, DoubleParsing) {
  FlagParser flags = Parse({"--lambda=0.25"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("lambda"), 0.25);
}

TEST(FlagsTest, UnusedFlagsDetected) {
  FlagParser flags = Parse({"--steps=5", "--typo=oops"});
  EXPECT_EQ(flags.GetInt("steps"), 5);
  const auto unused = flags.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, NegativeNumberAsValue) {
  // "--offset -3": -3 does not start with "--", so it is the value.
  FlagParser flags = Parse({"--offset", "-3"});
  EXPECT_EQ(flags.GetInt("offset"), -3);
}

}  // namespace
}  // namespace cyqr
