#include "core/math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace cyqr {
namespace {

TEST(MathTest, LogSumExpMatchesNaiveOnSmallValues) {
  std::vector<double> x = {0.1, 0.5, -0.3};
  double naive = std::log(std::exp(0.1) + std::exp(0.5) + std::exp(-0.3));
  EXPECT_NEAR(LogSumExp(x), naive, 1e-12);
}

TEST(MathTest, LogSumExpStableForLargeValues) {
  std::vector<double> x = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(x), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, LogSumExpStableForVeryNegativeValues) {
  std::vector<double> x = {-1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(x), -1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, LogSumExpEmptyIsNegInf) {
  const double* empty = nullptr;
  EXPECT_TRUE(std::isinf(LogSumExp(empty, 0)));
  EXPECT_LT(LogSumExp(empty, 0), 0);
}

TEST(MathTest, LogSumExpAllNegInf) {
  const double ninf = -std::numeric_limits<double>::infinity();
  std::vector<double> x = {ninf, ninf};
  EXPECT_TRUE(std::isinf(LogSumExp(x)));
}

TEST(MathTest, LogAddCommutesAndMatchesLse) {
  EXPECT_NEAR(LogAdd(0.3, -0.7), LogAdd(-0.7, 0.3), 1e-12);
  std::vector<double> x = {0.3, -0.7};
  EXPECT_NEAR(LogAdd(0.3, -0.7), LogSumExp(x), 1e-12);
}

TEST(MathTest, LogAddWithNegInfIsIdentity) {
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_NEAR(LogAdd(ninf, 1.5), 1.5, 1e-12);
  EXPECT_NEAR(LogAdd(1.5, ninf), 1.5, 1e-12);
}

TEST(MathTest, SoftmaxSumsToOneAndOrders) {
  std::vector<float> x = {1.0f, 2.0f, 3.0f};
  SoftmaxInPlace(x.data(), x.size());
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0f, 1e-6f);
  EXPECT_LT(x[0], x[1]);
  EXPECT_LT(x[1], x[2]);
}

TEST(MathTest, SoftmaxStableForHugeLogits) {
  std::vector<float> x = {10000.0f, 10000.0f};
  SoftmaxInPlace(x.data(), x.size());
  EXPECT_NEAR(x[0], 0.5f, 1e-6f);
}

TEST(MathTest, LogSoftmaxExpSumsToOne) {
  std::vector<float> logits = {0.5f, -1.0f, 2.0f, 0.0f};
  std::vector<float> out(4);
  LogSoftmax(logits.data(), 4, out.data());
  double sum = 0.0;
  for (float v : out) sum += std::exp(v);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(MathTest, TopKIndicesDescending) {
  std::vector<float> x = {0.3f, 2.0f, -1.0f, 1.5f};
  auto idx = TopKIndices(x.data(), x.size(), 3);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
  EXPECT_EQ(idx[2], 0u);
}

TEST(MathTest, TopKClampsToN) {
  std::vector<float> x = {1.0f, 2.0f};
  auto idx = TopKIndices(x.data(), x.size(), 10);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(MathTest, MeanAndQuantile) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  std::vector<double> x = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 1.0), 5.0);
}

}  // namespace
}  // namespace cyqr
