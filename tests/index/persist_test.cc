#include "index/persist.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/checksum.h"
#include "core/file_util.h"

namespace cyqr {
namespace {

InvertedIndex SampleIndex() {
  InvertedIndex index;
  index.AddDocument(0, {"red", "shoes"});
  index.AddDocument(1, {"red", "running", "shoes"});
  index.AddDocument(2, {"wool", "hat"});
  return index;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(IndexPersistTest, SaveLoadRoundTrip) {
  const InvertedIndex index = SampleIndex();
  const std::string path = TempPath("index.snap");
  ASSERT_TRUE(SaveInvertedIndex(index, path).ok());

  Result<InvertedIndex> loaded = LoadInvertedIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_documents(), 3);
  EXPECT_EQ(loaded.value().num_terms(), index.num_terms());
  EXPECT_EQ(loaded.value().total_postings(), index.total_postings());
  EXPECT_EQ(loaded.value().Lookup("red"), PostingList({0, 1}));
  EXPECT_EQ(loaded.value().Lookup("shoes"), PostingList({0, 1}));
  EXPECT_EQ(loaded.value().Lookup("hat"), PostingList({2}));
  EXPECT_TRUE(loaded.value().Lookup("absent").empty());
}

TEST(IndexPersistTest, SaveIsDeterministic) {
  const std::string a = TempPath("index_a.snap");
  const std::string b = TempPath("index_b.snap");
  ASSERT_TRUE(SaveInvertedIndex(SampleIndex(), a).ok());
  ASSERT_TRUE(SaveInvertedIndex(SampleIndex(), b).ok());
  Result<std::string> ca = ReadFileToString(a);
  Result<std::string> cb = ReadFileToString(b);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ(ca.value(), cb.value());
}

TEST(IndexPersistTest, MissingFileFails) {
  Result<InvertedIndex> loaded =
      LoadInvertedIndex("/nonexistent/index.snap");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IndexPersistTest, TruncatedFileFails) {
  const std::string path = TempPath("index_trunc.snap");
  ASSERT_TRUE(SaveInvertedIndex(SampleIndex(), path).ok());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  // Chop mid-footer: the missing trailing newline must be detected.
  const std::string cut =
      content.value().substr(0, content.value().size() - 5);
  std::ofstream(path, std::ios::trunc) << cut;
  Result<InvertedIndex> loaded = LoadInvertedIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IndexPersistTest, CorruptPayloadFailsChecksum) {
  const std::string path = TempPath("index_corrupt.snap");
  ASSERT_TRUE(SaveInvertedIndex(SampleIndex(), path).ok());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  std::string damaged = content.value();
  damaged[0] = damaged[0] == 'z' ? 'y' : 'z';  // Flip a payload byte.
  std::ofstream(path, std::ios::trunc) << damaged;
  Result<InvertedIndex> loaded = LoadInvertedIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST(IndexPersistTest, MissingFooterFails) {
  const std::string path = TempPath("index_nofooter.snap");
  std::ofstream(path) << "red\t0 1\n";
  Result<InvertedIndex> loaded = LoadInvertedIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("footer"), std::string::npos);
}

TEST(IndexPersistTest, MalformedPostingIdFails) {
  // Hand-build a snapshot whose checksum is valid but whose id field is
  // garbage: "12x" must not quietly load as 12.
  const std::string payload = "red\t0 12x\n";
  const std::string path = TempPath("index_badid.snap");
  {
    char footer[160];
    std::snprintf(footer, sizeof(footer),
                  "#cyqr-index-footer docs=13 terms=1 postings=2 "
                  "fnv1a=%016llx",
                  static_cast<unsigned long long>(Fnv1a64(payload)));
    std::ofstream(path) << payload << footer << "\n";
  }
  Result<InvertedIndex> loaded = LoadInvertedIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("malformed posting id"),
            std::string::npos);
}

TEST(IndexPersistTest, UnsortedPostingsRejected) {
  const std::string payload = "red\t1 0\n";
  const std::string path = TempPath("index_unsorted.snap");
  {
    char footer[160];
    std::snprintf(footer, sizeof(footer),
                  "#cyqr-index-footer docs=2 terms=1 postings=2 "
                  "fnv1a=%016llx",
                  static_cast<unsigned long long>(Fnv1a64(payload)));
    std::ofstream(path) << payload << footer << "\n";
  }
  Result<InvertedIndex> loaded = LoadInvertedIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("strictly increasing"),
            std::string::npos);
}

TEST(IndexPersistTest, CountMismatchFails) {
  const std::string payload = "red\t0 1\n";
  const std::string path = TempPath("index_count.snap");
  {
    char footer[160];
    std::snprintf(footer, sizeof(footer),
                  "#cyqr-index-footer docs=2 terms=2 postings=2 "
                  "fnv1a=%016llx",
                  static_cast<unsigned long long>(Fnv1a64(payload)));
    std::ofstream(path) << payload << footer << "\n";
  }
  Result<InvertedIndex> loaded = LoadInvertedIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("term count mismatch"),
            std::string::npos);
}

TEST(IndexPersistTest, OutOfRangePostingRejected) {
  const std::string payload = "red\t0 7\n";
  const std::string path = TempPath("index_range.snap");
  {
    char footer[160];
    std::snprintf(footer, sizeof(footer),
                  "#cyqr-index-footer docs=2 terms=1 postings=2 "
                  "fnv1a=%016llx",
                  static_cast<unsigned long long>(Fnv1a64(payload)));
    std::ofstream(path) << payload << footer << "\n";
  }
  Result<InvertedIndex> loaded = LoadInvertedIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
}

TEST(IndexPersistTest, SaveIsAtomicNoTempLeftBehind) {
  const std::string path = TempPath("index_atomic.snap");
  ASSERT_TRUE(SaveInvertedIndex(SampleIndex(), path).ok());
  std::ifstream tmp(TempPathFor(path));
  EXPECT_FALSE(tmp.is_open());
}

}  // namespace
}  // namespace cyqr
