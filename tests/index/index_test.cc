#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/rng.h"
#include "index/retrieval.h"

namespace cyqr {
namespace {

TEST(PostingTest, IntersectBasics) {
  RetrievalCost cost;
  EXPECT_EQ(IntersectLists({1, 3, 5}, {3, 4, 5}, &cost),
            (PostingList{3, 5}));
  EXPECT_GT(cost.postings_scanned, 0);
  EXPECT_TRUE(IntersectLists({1, 2}, {3, 4}, nullptr).empty());
  EXPECT_TRUE(IntersectLists({}, {1}, nullptr).empty());
}

TEST(PostingTest, UnionBasics) {
  EXPECT_EQ(UnionLists({1, 3}, {2, 3, 4}, nullptr),
            (PostingList{1, 2, 3, 4}));
  EXPECT_EQ(UnionLists({}, {1, 2}, nullptr), (PostingList{1, 2}));
  EXPECT_EQ(UnionLists({5}, {}, nullptr), (PostingList{5}));
}

TEST(PostingTest, PropertiesOnRandomLists) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::set<DocId> sa;
    std::set<DocId> sb;
    for (int i = 0; i < 30; ++i) {
      sa.insert(static_cast<DocId>(rng.NextBelow(50)));
      sb.insert(static_cast<DocId>(rng.NextBelow(50)));
    }
    PostingList a(sa.begin(), sa.end());
    PostingList b(sb.begin(), sb.end());
    PostingList inter = IntersectLists(a, b, nullptr);
    PostingList uni = UnionLists(a, b, nullptr);
    // |A| + |B| = |A u B| + |A n B|.
    EXPECT_EQ(a.size() + b.size(), uni.size() + inter.size());
    EXPECT_TRUE(std::is_sorted(uni.begin(), uni.end()));
    EXPECT_TRUE(std::is_sorted(inter.begin(), inter.end()));
    for (DocId d : inter) {
      EXPECT_TRUE(sa.count(d) && sb.count(d));
    }
  }
}

TEST(InvertedIndexTest, LookupAfterAdd) {
  InvertedIndex index;
  index.AddDocument(0, {"red", "shoes"});
  index.AddDocument(1, {"red", "phone"});
  index.AddDocument(2, {"blue", "shoes", "shoes"});  // Duplicates collapse.
  EXPECT_EQ(index.Lookup("red"), (PostingList{0, 1}));
  EXPECT_EQ(index.Lookup("shoes"), (PostingList{0, 2}));
  EXPECT_TRUE(index.Lookup("missing").empty());
  EXPECT_EQ(index.num_documents(), 3);
  EXPECT_EQ(index.num_terms(), 4);
  EXPECT_EQ(index.total_postings(), 6);
}

TEST(SyntaxTreeTest, FromQueryBuildsAndOfTerms) {
  SyntaxTree tree = SyntaxTree::FromQuery({"red", "mens", "sandals"});
  EXPECT_EQ(tree.ToString(), "(red & mens & sandals)");
  EXPECT_EQ(tree.NodeCount(), 4);
}

TEST(SyntaxTreeTest, SingleTokenIsLeaf) {
  SyntaxTree tree = SyntaxTree::FromQuery({"red"});
  EXPECT_EQ(tree.ToString(), "red");
  EXPECT_EQ(tree.NodeCount(), 1);
}

TEST(SyntaxTreeTest, DuplicateTokensCollapse) {
  SyntaxTree tree = SyntaxTree::FromQuery({"red", "red", "shoes"});
  EXPECT_EQ(tree.NodeCount(), 3);
}

TEST(SyntaxTreeTest, EvaluateAndOr) {
  InvertedIndex index;
  index.AddDocument(0, {"red", "sandals"});
  index.AddDocument(1, {"red", "slippers"});
  index.AddDocument(2, {"blue", "sandals"});
  auto root = SyntaxNode::And();
  root->children.push_back(SyntaxNode::Term("red"));
  auto or_node = SyntaxNode::Or();
  or_node->children.push_back(SyntaxNode::Term("sandals"));
  or_node->children.push_back(SyntaxNode::Term("slippers"));
  root->children.push_back(std::move(or_node));
  SyntaxTree tree(std::move(root));
  RetrievalCost cost;
  EXPECT_EQ(tree.Evaluate(index, &cost), (PostingList{0, 1}));
  EXPECT_GT(cost.nodes_evaluated, 0);
  EXPECT_GT(cost.postings_scanned, 0);
}

TEST(TreeMergeTest, Figure5Example) {
  // Original: red mens sandals; rewrites diverge at the last position.
  TreeMerger::Result merged = TreeMerger::Merge({
      {"red", "mens", "sandals"},
      {"red", "mens", "slippers"},
      {"red", "mens", "anklet"},
  });
  EXPECT_EQ(merged.tree.ToString(),
            "(red & mens & (anklet | sandals | slippers))");
  EXPECT_EQ(merged.groups_total, 3);
  EXPECT_EQ(merged.groups_required, 3);
}

TEST(TreeMergeTest, IdenticalQueriesStaySimple) {
  TreeMerger::Result merged =
      TreeMerger::Merge({{"red", "shoes"}, {"red", "shoes"}});
  EXPECT_EQ(merged.tree.ToString(), "(red & shoes)");
}

TEST(TreeMergeTest, MissingTokenRelaxesGroup) {
  // "mens" appears in only one query, so it cannot stay AND-required.
  TreeMerger::Result merged =
      TreeMerger::Merge({{"red", "mens", "shoes"}, {"red", "shoes"}});
  EXPECT_EQ(merged.tree.ToString(), "(red & shoes)");
  EXPECT_EQ(merged.groups_total, 3);
  EXPECT_EQ(merged.groups_required, 2);
}

TEST(TreeMergeTest, MergedTreeSmallerThanSeparateTrees) {
  const std::vector<std::vector<std::string>> queries = {
      {"red", "mens", "sandals"},
      {"red", "mens", "slippers"},
      {"red", "mens", "anklet"},
  };
  TreeMerger::Result merged = TreeMerger::Merge(queries);
  int64_t separate_nodes = 0;
  for (const auto& q : queries) {
    separate_nodes += SyntaxTree::FromQuery(q).NodeCount();
  }
  EXPECT_LT(merged.tree.NodeCount(), separate_nodes);
  // "slightly larger than the previous tree for only the original query".
  EXPECT_LE(merged.tree.NodeCount(),
            SyntaxTree::FromQuery(queries[0]).NodeCount() + 3);
}

/// Property: merged retrieval never loses a document that any individual
/// query retrieves (recall preservation), across randomized query sets.
class TreeMergeRecallTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeMergeRecallTest, MergedIsSupersetOfUnion) {
  Rng rng(1000 + GetParam());
  const std::vector<std::string> words = {"red",    "blue",  "mens",
                                          "womens", "shoes", "sandals",
                                          "phone",  "case",  "sport"};
  // Random corpus.
  InvertedIndex index;
  for (DocId d = 0; d < 60; ++d) {
    std::vector<std::string> doc;
    const int64_t len = rng.NextInt(2, 5);
    for (int64_t i = 0; i < len; ++i) {
      doc.push_back(words[rng.NextBelow(words.size())]);
    }
    index.AddDocument(d, doc);
  }
  // Random related queries (sharing some tokens).
  const int64_t num_queries = rng.NextInt(2, 4);
  std::vector<std::vector<std::string>> queries;
  for (int64_t q = 0; q < num_queries; ++q) {
    std::vector<std::string> query;
    const int64_t len = rng.NextInt(1, 3);
    for (int64_t i = 0; i < len; ++i) {
      query.push_back(words[rng.NextBelow(words.size())]);
    }
    queries.push_back(std::move(query));
  }
  RetrievalEngine engine(&index);
  const auto separate = engine.RetrieveSeparate(queries);
  const auto merged = engine.RetrieveMerged(queries);
  // Every doc from per-query retrieval must appear in the merged result.
  for (DocId d : separate.docs) {
    EXPECT_TRUE(std::binary_search(merged.docs.begin(), merged.docs.end(),
                                   d))
        << "doc " << d << " lost by merge (trial " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrials, TreeMergeRecallTest,
                         ::testing::Range(0, 25));

TEST(RetrievalEngineTest, MergedCostsLessThanSeparate) {
  // Build a corpus where the shared tokens have long posting lists; the
  // merged tree scans them once instead of once per query.
  InvertedIndex index;
  Rng rng(12);
  const std::vector<std::string> tails = {"sandals", "slippers", "anklet"};
  for (DocId d = 0; d < 200; ++d) {
    std::vector<std::string> doc = {"red", "mens"};
    doc.push_back(tails[rng.NextBelow(tails.size())]);
    index.AddDocument(d, doc);
  }
  const std::vector<std::vector<std::string>> queries = {
      {"red", "mens", "sandals"},
      {"red", "mens", "slippers"},
      {"red", "mens", "anklet"},
  };
  RetrievalEngine engine(&index);
  const auto separate = engine.RetrieveSeparate(queries);
  const auto merged = engine.RetrieveMerged(queries);
  EXPECT_LT(merged.cost.postings_scanned, separate.cost.postings_scanned);
  EXPECT_LT(merged.tree_nodes, separate.tree_nodes);
}

TEST(RetrievalEngineTest, MaxDocsCapApplies) {
  InvertedIndex index;
  for (DocId d = 0; d < 50; ++d) index.AddDocument(d, {"red"});
  RetrievalEngine engine(&index);
  EXPECT_EQ(engine.RetrieveOne({"red"}, 10).docs.size(), 10u);
  EXPECT_EQ(engine.RetrieveOne({"red"}).docs.size(), 50u);
}

}  // namespace
}  // namespace cyqr
