#include "index/bm25.h"

#include <gtest/gtest.h>

namespace cyqr {
namespace {

class Bm25Test : public ::testing::Test {
 protected:
  void SetUp() override {
    scorer_.AddDocument(0, {"red", "running", "shoes"});
    scorer_.AddDocument(1, {"red", "leather", "boots", "winter", "warm"});
    scorer_.AddDocument(2, {"blue", "running", "shoes", "running"});
    scorer_.AddDocument(3, {"red", "red", "red", "phone"});
  }
  Bm25Scorer scorer_;
};

TEST_F(Bm25Test, MatchingTermsScorePositive) {
  EXPECT_GT(scorer_.Score({"running", "shoes"}, 0), 0.0);
  EXPECT_DOUBLE_EQ(scorer_.Score({"running", "shoes"}, 1), 0.0);
}

TEST_F(Bm25Test, UnknownDocScoresZero) {
  EXPECT_DOUBLE_EQ(scorer_.Score({"red"}, 99), 0.0);
  EXPECT_DOUBLE_EQ(scorer_.Score({"red"}, -1), 0.0);
}

TEST_F(Bm25Test, RareTermsOutweighCommonTerms) {
  // "leather" appears in 1 doc, "red" in 3: doc 1 should beat doc 3 for
  // a query hitting its rare term.
  EXPECT_GT(scorer_.Score({"leather"}, 1), scorer_.Score({"red"}, 3));
}

TEST_F(Bm25Test, TermFrequencySaturates) {
  // Doc 3 has "red" three times; the score grows with tf but must be less
  // than 3x the single-occurrence score (k1 saturation).
  const double tf1 = scorer_.Score({"red"}, 0);
  const double tf3 = scorer_.Score({"red"}, 3);
  EXPECT_GT(tf3, tf1 * 0.9);  // Same idf; doc 3 shorter-normalized anyway.
  EXPECT_LT(tf3, tf1 * 3.0);
}

TEST_F(Bm25Test, RankSortsDescending) {
  const auto ranked = scorer_.Rank({"running", "shoes"}, {0, 1, 2, 3});
  ASSERT_EQ(ranked.size(), 4u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
  // Doc 2 mentions "running" twice — it should be first or second.
  EXPECT_TRUE(ranked[0].doc == 2 || ranked[1].doc == 2);
}

TEST_F(Bm25Test, EmptyQueryScoresZeroEverywhere) {
  for (DocId d = 0; d < 4; ++d) {
    EXPECT_DOUBLE_EQ(scorer_.Score({}, d), 0.0);
  }
}

}  // namespace
}  // namespace cyqr
