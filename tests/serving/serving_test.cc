#include <gtest/gtest.h>

#include <memory>

#include "rewrite/trainer.h"
#include "serving/fault_injection.h"
#include "serving/rewrite_service.h"

namespace cyqr {
namespace {

using Source = RewriteService::Source;

TEST(KvStoreTest, PutGetRoundTrip) {
  RewriteKvStore store;
  store.Put("cheap phone", {{"budget", "smartphone"}});
  const auto* hit = store.Get("cheap phone");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0], (std::vector<std::string>{"budget", "smartphone"}));
  EXPECT_EQ(store.Get("missing"), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, OverwriteReplaces) {
  RewriteKvStore store;
  store.Put("q", {{"a"}});
  store.Put("q", {{"b"}, {"c"}});
  ASSERT_EQ(store.Get("q")->size(), 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, SaveLoadRoundTrip) {
  RewriteKvStore store;
  store.Put("cheap phone", {{"budget", "smartphone"}, {"senior", "phone"}});
  store.Put("coin", {});
  const std::string path = testing::TempDir() + "/kv_store.tsv";
  ASSERT_TRUE(store.Save(path).ok());
  RewriteKvStore loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  const auto* hit = loaded.Get("cheap phone");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 2u);
  EXPECT_EQ((*hit)[1], (std::vector<std::string>{"senior", "phone"}));
  ASSERT_NE(loaded.Get("coin"), nullptr);
  EXPECT_TRUE(loaded.Get("coin")->empty());
}

TEST(KvStoreTest, LoadMissingFileFails) {
  RewriteKvStore store;
  EXPECT_FALSE(store.Load("/nonexistent/path.tsv").ok());
}

TEST(LatencyRecorderTest, Percentiles) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) recorder.Record(static_cast<double>(i));
  EXPECT_EQ(recorder.count(), 100);
  EXPECT_NEAR(recorder.MeanMillis(), 50.5, 1e-9);
  EXPECT_NEAR(recorder.PercentileMillis(0.5), 50.0, 1.5);
  EXPECT_NEAR(recorder.PercentileMillis(0.99), 99.0, 1.5);
  EXPECT_DOUBLE_EQ(recorder.MaxMillis(), 100.0);
}

// ---------------------------------------------------------------------------
// Degradation-ladder tests, driven through the backend seams with fakes and
// fault injection (no model training: fully deterministic).
// ---------------------------------------------------------------------------

/// Scriptable model backend: returns canned rewrites, charges virtual
/// latency, or fails, as configured.
class FakeModelBackend : public ModelBackend {
 public:
  Status Rewrite(const std::vector<std::string>& query_tokens, int64_t k,
                 int64_t max_len, Deadline& deadline,
                 std::vector<RewriteCandidate>* out) override {
    (void)query_tokens;
    (void)k;
    (void)max_len;
    ++calls;
    if (charge_millis > 0) deadline.Charge(charge_millis);
    if (!status.ok()) return status;
    *out = result;
    return Status::OK();
  }

  static std::vector<RewriteCandidate> Canned(
      std::vector<std::string> tokens) {
    RewriteCandidate c;
    c.tokens = std::move(tokens);
    return {c};
  }

  Status status = Status::OK();
  std::vector<RewriteCandidate> result = Canned({"model", "answer"});
  double charge_millis = 0;
  int calls = 0;
};

class LadderTest : public ::testing::Test {
 protected:
  LadderTest() {
    store_.Put("senior phone", {{"elderly", "phone"}});
    dictionary_.Add("cheap", "budget");
    rules_ = std::make_unique<RuleBasedRewriter>(&dictionary_);
    cache_ = std::make_unique<KvStoreBackend>(&store_);
  }

  RewriteService::Options SmallBreakerOptions() {
    RewriteService::Options options;
    options.breaker.failure_threshold = 2;
    options.breaker.cooldown_requests = 3;
    return options;
  }

  RewriteKvStore store_;
  SynonymDictionary dictionary_;
  std::unique_ptr<RuleBasedRewriter> rules_;
  std::unique_ptr<KvStoreBackend> cache_;
  FakeModelBackend model_;
};

TEST_F(LadderTest, CacheHitIsNotDegraded) {
  RewriteService service(cache_.get(), &model_, rules_.get(), {});
  const auto response = service.Serve({"senior", "phone"});
  EXPECT_EQ(response.source, Source::kCache);
  EXPECT_FALSE(response.degraded);
  EXPECT_TRUE(response.degraded_status.ok());
  ASSERT_EQ(response.rewrites.size(), 1u);
  EXPECT_EQ(response.rewrites[0],
            (std::vector<std::string>{"elderly", "phone"}));
  EXPECT_EQ(service.cache_hits(), 1);
  EXPECT_EQ(model_.calls, 0);
}

TEST_F(LadderTest, CacheMissFallsToModelNotDegraded) {
  RewriteService service(cache_.get(), &model_, rules_.get(), {});
  const auto response = service.Serve({"gaming", "mouse"});
  EXPECT_EQ(response.source, Source::kDirectModel);
  EXPECT_FALSE(response.degraded);
  ASSERT_EQ(response.rewrites.size(), 1u);
  EXPECT_EQ(response.rewrites[0],
            (std::vector<std::string>{"model", "answer"}));
  // The cache attempt is recorded as a clean miss.
  ASSERT_GE(response.attempts.size(), 2u);
  EXPECT_EQ(response.attempts[0].rung, Source::kCache);
  EXPECT_EQ(response.attempts[0].status.code(), StatusCode::kNotFound);
}

TEST_F(LadderTest, ModelFailureFallsToRuleBased) {
  model_.status = Status::Internal("model wedged");
  RewriteService service(cache_.get(), &model_, rules_.get(), {});
  const auto response = service.Serve({"cheap", "phone"});
  EXPECT_EQ(response.source, Source::kRuleBased);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.degraded_status.code(), StatusCode::kInternal);
  ASSERT_EQ(response.rewrites.size(), 1u);
  EXPECT_EQ(response.rewrites[0],
            (std::vector<std::string>{"budget", "phone"}));
  EXPECT_EQ(service.model_failures(), 1);
  EXPECT_EQ(service.rule_based_answers(), 1);
}

TEST_F(LadderTest, ModelFailureNoSynonymFallsToPassthrough) {
  model_.status = Status::Internal("model wedged");
  RewriteService service(cache_.get(), &model_, rules_.get(), {});
  const auto response = service.Serve({"gaming", "mouse"});
  EXPECT_EQ(response.source, Source::kPassthrough);
  EXPECT_TRUE(response.degraded);
  ASSERT_EQ(response.rewrites.size(), 1u);
  EXPECT_EQ(response.rewrites[0],
            (std::vector<std::string>{"gaming", "mouse"}));
  // The rule rung was tried and missed cleanly.
  bool saw_rule_miss = false;
  for (const auto& attempt : response.attempts) {
    if (attempt.rung == Source::kRuleBased) {
      saw_rule_miss = attempt.status.code() == StatusCode::kNotFound;
    }
  }
  EXPECT_TRUE(saw_rule_miss);
}

TEST_F(LadderTest, NullModelReportsPassthroughNotModel) {
  // Regression: a cache-only service used to report kDirectModel, bump
  // model_calls_, and record a phantom latency sample on every miss.
  RewriteService service(cache_.get(), nullptr, nullptr, {});
  const auto response = service.Serve({"unknown", "query"});
  EXPECT_EQ(response.source, Source::kPassthrough);
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.degraded_status.ok());  // Nothing *failed*.
  ASSERT_EQ(response.rewrites.size(), 1u);
  EXPECT_EQ(response.rewrites[0],
            (std::vector<std::string>{"unknown", "query"}));
  EXPECT_EQ(service.model_calls(), 0);
  EXPECT_EQ(service.model_latency().count(), 0);
  // The model rung is visible as skipped, not as a phantom call.
  bool saw_skipped_model = false;
  for (const auto& attempt : response.attempts) {
    if (attempt.rung == Source::kDirectModel) {
      saw_skipped_model = attempt.skipped;
    }
  }
  EXPECT_TRUE(saw_skipped_model);
}

TEST_F(LadderTest, ExhaustedDeadlineSkipsModel) {
  RewriteService service(cache_.get(), &model_, rules_.get(), {});
  Deadline deadline = Deadline::AfterMillis(1000.0);
  deadline.Charge(1000.0);  // Budget already gone at entry.
  const auto response = service.Serve({"cheap", "phone"}, deadline);
  EXPECT_EQ(model_.calls, 0);
  EXPECT_EQ(response.source, Source::kRuleBased);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.degraded_status.code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(LadderTest, SlowModelCountsAsFailureAndTripsBreaker) {
  RewriteService::Options options = SmallBreakerOptions();
  model_.charge_millis = 500.0;  // Each decode blows the 100 ms budget.
  RewriteService service(cache_.get(), &model_, rules_.get(), options);

  for (int i = 0; i < 2; ++i) {
    const auto response =
        service.Serve({"gaming", "mouse"}, Deadline::AfterMillis(100.0));
    EXPECT_EQ(response.source, Source::kPassthrough);
    EXPECT_TRUE(response.degraded);
  }
  EXPECT_EQ(service.model_failures(), 2);
  EXPECT_EQ(service.breaker().state(), CircuitBreaker::State::kOpen);
}

TEST_F(LadderTest, CorruptModelOutputIsRejected) {
  model_.result.clear();
  RewriteCandidate garbage;
  garbage.tokens = {"ok", "", "tokens"};  // Empty token: invalid output.
  model_.result.push_back(garbage);
  RewriteService service(cache_.get(), &model_, rules_.get(), {});
  const auto response = service.Serve({"cheap", "phone"});
  EXPECT_EQ(response.source, Source::kRuleBased);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.degraded_status.code(), StatusCode::kInternal);
  EXPECT_EQ(service.model_failures(), 1);
}

TEST_F(LadderTest, CacheOutageServedByModelIsDegraded) {
  FaultSpec outage;
  outage.error_probability = 1.0;
  outage.error_code = StatusCode::kIoError;
  outage.error_message = "kv cluster down";
  FaultyKvBackend faulty_cache(cache_.get(), outage, /*seed=*/7);
  RewriteService service(&faulty_cache, &model_, rules_.get(), {});

  // Even a head query (cached!) is served by the model during the outage.
  const auto response = service.Serve({"senior", "phone"});
  EXPECT_EQ(response.source, Source::kDirectModel);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.degraded_status.code(), StatusCode::kIoError);
  EXPECT_EQ(service.cache_hits(), 0);
}

TEST_F(LadderTest, CacheLatencySpikeEatsModelBudget) {
  FaultSpec slow_cache;
  slow_cache.latency_probability = 1.0;
  slow_cache.latency_millis = 80.0;
  FaultyKvBackend faulty_cache(cache_.get(), slow_cache, /*seed=*/8);
  RewriteService::Options options;
  options.model_min_budget_millis = 30.0;
  RewriteService service(&faulty_cache, &model_, rules_.get(), options);

  // 100 ms budget, 80 ms cache stall: under 30 ms left, model skipped.
  const auto response =
      service.Serve({"cheap", "phone"}, Deadline::AfterMillis(100.0));
  EXPECT_EQ(model_.calls, 0);
  EXPECT_EQ(response.source, Source::kRuleBased);
  EXPECT_TRUE(response.degraded);
  EXPECT_GE(response.latency_millis, 80.0);
}

TEST_F(LadderTest, FaultHarnessAppliesWholePlan) {
  // One FaultPlan describes the whole scenario: flaky cache AND slow model.
  FaultPlan plan;
  plan.cache.error_probability = 1.0;
  plan.cache.error_code = StatusCode::kIoError;
  plan.model.latency_probability = 1.0;
  plan.model.latency_millis = 80.0;
  plan.seed = 21;
  FaultHarness faults(cache_.get(), &model_, plan);
  RewriteService service(&faults.cache, &faults.model, rules_.get(), {});

  // Cache down, model blows the 50 ms default budget: rules answer.
  const auto response = service.Serve({"cheap", "phone"});
  EXPECT_EQ(response.source, Source::kRuleBased);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.degraded_status.code(), StatusCode::kIoError);
  EXPECT_EQ(faults.cache.injector().injected_errors(), 1);
  EXPECT_EQ(faults.model.injector().injected_latency_spikes(), 1);
}

// The acceptance scenario: direct model fault-injected to fail 100%; every
// request is still answered; responses are flagged degraded with the
// failing rung's Status; the breaker transitions open -> half-open ->
// closed as the fault clears.
TEST_F(LadderTest, FlappingModelDrivesBreakerThroughFullCycle) {
  FaultSpec wedged;
  wedged.error_probability = 1.0;
  wedged.error_code = StatusCode::kInternal;
  wedged.error_message = "model wedged";
  FaultyModelBackend faulty_model(&model_, wedged, /*seed=*/9);
  RewriteService service(cache_.get(), &faulty_model, rules_.get(),
                         SmallBreakerOptions());
  const std::vector<std::string> query = {"gaming", "mouse"};

  // Requests 1-2: model fails twice -> breaker opens (threshold 2).
  for (int i = 0; i < 2; ++i) {
    const auto response = service.Serve(query, Deadline::Infinite());
    ASSERT_FALSE(response.rewrites.empty());
    EXPECT_EQ(response.source, Source::kPassthrough);
    EXPECT_TRUE(response.degraded);
    EXPECT_EQ(response.degraded_status.code(), StatusCode::kInternal);
    EXPECT_EQ(response.degraded_status.message(), "model wedged");
  }
  EXPECT_EQ(service.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(service.breaker().times_opened(), 1);

  // Requests 3-4: breaker open -> model rung skipped, still answered.
  for (int i = 0; i < 2; ++i) {
    const auto response = service.Serve(query, Deadline::Infinite());
    ASSERT_FALSE(response.rewrites.empty());
    EXPECT_TRUE(response.degraded);
    EXPECT_EQ(response.degraded_status.code(),
              StatusCode::kFailedPrecondition);
    bool model_skipped = false;
    for (const auto& attempt : response.attempts) {
      if (attempt.rung == Source::kDirectModel) {
        model_skipped = attempt.skipped;
      }
    }
    EXPECT_TRUE(model_skipped);
  }
  const int faulted_calls_before_probe =
      static_cast<int>(faulty_model.injector().calls());
  EXPECT_EQ(service.breaker().rejected_requests(), 2);

  // Request 5: cooldown (3) served -> half-open probe; still wedged, so
  // the probe fails and the breaker reopens.
  {
    const auto response = service.Serve(query, Deadline::Infinite());
    ASSERT_FALSE(response.rewrites.empty());
    EXPECT_TRUE(response.degraded);
  }
  EXPECT_EQ(static_cast<int>(faulty_model.injector().calls()),
            faulted_calls_before_probe + 1);
  EXPECT_EQ(service.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(service.breaker().times_opened(), 2);

  // The fault clears mid-run.
  faulty_model.injector().set_spec(FaultSpec{});

  // Requests 6-7: still in cooldown, answered degraded.
  for (int i = 0; i < 2; ++i) {
    const auto response = service.Serve(query, Deadline::Infinite());
    ASSERT_FALSE(response.rewrites.empty());
    EXPECT_TRUE(response.degraded);
  }

  // Request 8: half-open probe succeeds -> breaker closes, healthy answer.
  {
    const auto response = service.Serve(query, Deadline::Infinite());
    EXPECT_EQ(response.source, Source::kDirectModel);
    EXPECT_FALSE(response.degraded);
  }
  EXPECT_EQ(service.breaker().state(), CircuitBreaker::State::kClosed);

  // Request 9: back to normal operation.
  {
    const auto response = service.Serve(query, Deadline::Infinite());
    EXPECT_EQ(response.source, Source::kDirectModel);
    EXPECT_FALSE(response.degraded);
  }
  // Every single request during the outage was answered.
  EXPECT_EQ(service.degraded_requests(), 7);
}

TEST_F(LadderTest, InjectedCorruptOutputRejectedByValidation) {
  FaultSpec corrupting;
  corrupting.corrupt_probability = 1.0;
  FaultyModelBackend faulty_model(&model_, corrupting, /*seed=*/10);
  RewriteService service(cache_.get(), &faulty_model, rules_.get(), {});
  const auto response = service.Serve({"cheap", "phone"});
  EXPECT_NE(response.source, Source::kDirectModel);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.degraded_status.code(), StatusCode::kInternal);
  EXPECT_EQ(service.model_failures(), 1);
}

// ---------------------------------------------------------------------------
// End-to-end tests with a real (tiny, trained) direct model.
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::vector<std::vector<std::string>> corpus = {
        {"cheap", "phone"}, {"budget", "phone"}, {"senior", "phone"}};
    vocab_ = Vocabulary::Build(corpus);
    Seq2SeqConfig config;
    config.vocab_size = vocab_.size();
    config.d_model = 16;
    config.num_heads = 2;
    config.ff_hidden = 32;
    config.num_layers = 1;
    Rng rng(4);
    fallback_ = std::make_unique<DirectRewriter>(DirectArch::kHybrid,
                                                 config, &vocab_, rng);
    std::vector<SeqPair> pairs = {
        {vocab_.Encode({"cheap", "phone"}),
         vocab_.Encode({"budget", "phone"})},
    };
    SupervisedTrainOptions options;
    options.max_steps = 120;
    options.batch_size = 1;
    TrainSupervised(fallback_->model(), pairs, options);
    fallback_->model().SetTraining(false);
    store_.Put("senior phone", {{"elderly", "phone"}});
  }

  Vocabulary vocab_;
  RewriteKvStore store_;
  std::unique_ptr<DirectRewriter> fallback_;
};

TEST_F(ServiceTest, CacheHitServesFromStore) {
  RewriteService service(&store_, fallback_.get(), {});
  const auto response = service.Serve({"senior", "phone"});
  EXPECT_EQ(response.source, Source::kCache);
  EXPECT_FALSE(response.degraded);
  ASSERT_EQ(response.rewrites.size(), 1u);
  EXPECT_EQ(response.rewrites[0],
            (std::vector<std::string>{"elderly", "phone"}));
  EXPECT_EQ(service.cache_hits(), 1);
  EXPECT_EQ(service.model_calls(), 0);
}

TEST_F(ServiceTest, CacheMissFallsBackToModel) {
  RewriteService service(&store_, fallback_.get(), {});
  const auto response = service.Serve({"cheap", "phone"});
  EXPECT_EQ(response.source, Source::kDirectModel);
  EXPECT_EQ(service.model_calls(), 1);
  ASSERT_FALSE(response.rewrites.empty());
  EXPECT_EQ(response.rewrites[0],
            (std::vector<std::string>{"budget", "phone"}));
}

TEST_F(ServiceTest, CacheIsFasterThanModel) {
  RewriteService service(&store_, fallback_.get(), {});
  for (int i = 0; i < 20; ++i) {
    service.Serve({"senior", "phone"});
    service.Serve({"cheap", "phone"});
  }
  EXPECT_LT(service.cache_latency().MeanMillis(),
            service.model_latency().MeanMillis());
}

TEST_F(ServiceTest, MaxRewritesCapApplies) {
  store_.Put("many", {{"a"}, {"b"}, {"c"}, {"d"}, {"e"}});
  RewriteService::Options options;
  options.max_rewrites = 2;
  RewriteService service(&store_, nullptr, options);
  EXPECT_EQ(service.Serve({"many"}).rewrites.size(), 2u);
}

TEST_F(ServiceTest, DirectRewriterHonorsExpiredDeadline) {
  // Regression for the deadline-propagation fix: the deadline-bound
  // Rewrite overload must stop before the first decode step when the
  // budget is already gone, and behave identically to the unbounded form
  // when plenty of budget remains.
  Deadline expired = Deadline::AfterMillis(0);
  expired.Charge(1.0);  // Deterministically expired (virtual time).
  ASSERT_TRUE(expired.Expired());
  EXPECT_TRUE(fallback_->Rewrite({"cheap", "phone"}, 2, 10, expired).empty());

  const Deadline generous = Deadline::AfterMillis(60000);
  const auto bounded = fallback_->Rewrite({"cheap", "phone"}, 2, 10, generous);
  const auto unbounded = fallback_->Rewrite({"cheap", "phone"}, 2, 10);
  ASSERT_EQ(bounded.size(), unbounded.size());
  for (size_t i = 0; i < bounded.size(); ++i) {
    EXPECT_EQ(bounded[i].ids, unbounded[i].ids);
  }
}

TEST_F(ServiceTest, DirectModelBackendReportsDeadlineExpiry) {
  DirectModelBackend backend(fallback_.get());
  Deadline expired = Deadline::AfterMillis(0);
  expired.Charge(1.0);
  std::vector<RewriteCandidate> out;
  const Status status =
      backend.Rewrite({"cheap", "phone"}, 2, 10, expired, &out);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("deadline expired"), std::string::npos)
      << status.ToString();
  EXPECT_TRUE(out.empty());

  Deadline fresh = Deadline::AfterMillis(60000);
  ASSERT_TRUE(backend.Rewrite({"cheap", "phone"}, 2, 10, fresh, &out).ok());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].tokens, (std::vector<std::string>{"budget", "phone"}));
}

TEST_F(ServiceTest, NullFallbackServesIdentityPassthrough) {
  RewriteService service(&store_, nullptr, {});
  const auto response = service.Serve({"unknown", "query"});
  EXPECT_EQ(response.source, Source::kPassthrough);
  EXPECT_TRUE(response.degraded);
  ASSERT_EQ(response.rewrites.size(), 1u);
  EXPECT_EQ(response.rewrites[0],
            (std::vector<std::string>{"unknown", "query"}));
  EXPECT_EQ(service.model_calls(), 0);
}

}  // namespace
}  // namespace cyqr
