#include <gtest/gtest.h>

#include "rewrite/trainer.h"
#include "serving/rewrite_service.h"

namespace cyqr {
namespace {

TEST(KvStoreTest, PutGetRoundTrip) {
  RewriteKvStore store;
  store.Put("cheap phone", {{"budget", "smartphone"}});
  const auto* hit = store.Get("cheap phone");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0], (std::vector<std::string>{"budget", "smartphone"}));
  EXPECT_EQ(store.Get("missing"), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, OverwriteReplaces) {
  RewriteKvStore store;
  store.Put("q", {{"a"}});
  store.Put("q", {{"b"}, {"c"}});
  ASSERT_EQ(store.Get("q")->size(), 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, SaveLoadRoundTrip) {
  RewriteKvStore store;
  store.Put("cheap phone", {{"budget", "smartphone"}, {"senior", "phone"}});
  store.Put("coin", {});
  const std::string path = testing::TempDir() + "/kv_store.tsv";
  ASSERT_TRUE(store.Save(path).ok());
  RewriteKvStore loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  const auto* hit = loaded.Get("cheap phone");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 2u);
  EXPECT_EQ((*hit)[1], (std::vector<std::string>{"senior", "phone"}));
  ASSERT_NE(loaded.Get("coin"), nullptr);
  EXPECT_TRUE(loaded.Get("coin")->empty());
}

TEST(KvStoreTest, LoadMissingFileFails) {
  RewriteKvStore store;
  EXPECT_FALSE(store.Load("/nonexistent/path.tsv").ok());
}

TEST(LatencyRecorderTest, Percentiles) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) recorder.Record(static_cast<double>(i));
  EXPECT_EQ(recorder.count(), 100);
  EXPECT_NEAR(recorder.MeanMillis(), 50.5, 1e-9);
  EXPECT_NEAR(recorder.PercentileMillis(0.5), 50.0, 1.5);
  EXPECT_NEAR(recorder.PercentileMillis(0.99), 99.0, 1.5);
  EXPECT_DOUBLE_EQ(recorder.MaxMillis(), 100.0);
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::vector<std::vector<std::string>> corpus = {
        {"cheap", "phone"}, {"budget", "phone"}, {"senior", "phone"}};
    vocab_ = Vocabulary::Build(corpus);
    Seq2SeqConfig config;
    config.vocab_size = vocab_.size();
    config.d_model = 16;
    config.num_heads = 2;
    config.ff_hidden = 32;
    config.num_layers = 1;
    Rng rng(4);
    fallback_ = std::make_unique<DirectRewriter>(DirectArch::kHybrid,
                                                 config, &vocab_, rng);
    std::vector<SeqPair> pairs = {
        {vocab_.Encode({"cheap", "phone"}),
         vocab_.Encode({"budget", "phone"})},
    };
    SupervisedTrainOptions options;
    options.max_steps = 120;
    options.batch_size = 1;
    TrainSupervised(fallback_->model(), pairs, options);
    fallback_->model().SetTraining(false);
    store_.Put("senior phone", {{"elderly", "phone"}});
  }

  Vocabulary vocab_;
  RewriteKvStore store_;
  std::unique_ptr<DirectRewriter> fallback_;
};

TEST_F(ServiceTest, CacheHitServesFromStore) {
  RewriteService service(&store_, fallback_.get(), {});
  const auto response = service.Serve({"senior", "phone"});
  EXPECT_EQ(response.source, RewriteService::Source::kCache);
  ASSERT_EQ(response.rewrites.size(), 1u);
  EXPECT_EQ(response.rewrites[0],
            (std::vector<std::string>{"elderly", "phone"}));
  EXPECT_EQ(service.cache_hits(), 1);
  EXPECT_EQ(service.model_calls(), 0);
}

TEST_F(ServiceTest, CacheMissFallsBackToModel) {
  RewriteService service(&store_, fallback_.get(), {});
  const auto response = service.Serve({"cheap", "phone"});
  EXPECT_EQ(response.source, RewriteService::Source::kDirectModel);
  EXPECT_EQ(service.model_calls(), 1);
  ASSERT_FALSE(response.rewrites.empty());
  EXPECT_EQ(response.rewrites[0],
            (std::vector<std::string>{"budget", "phone"}));
}

TEST_F(ServiceTest, CacheIsFasterThanModel) {
  RewriteService service(&store_, fallback_.get(), {});
  for (int i = 0; i < 20; ++i) {
    service.Serve({"senior", "phone"});
    service.Serve({"cheap", "phone"});
  }
  EXPECT_LT(service.cache_latency().MeanMillis(),
            service.model_latency().MeanMillis());
}

TEST_F(ServiceTest, MaxRewritesCapApplies) {
  store_.Put("many", {{"a"}, {"b"}, {"c"}, {"d"}, {"e"}});
  RewriteService::Options options;
  options.max_rewrites = 2;
  RewriteService service(&store_, nullptr, options);
  EXPECT_EQ(service.Serve({"many"}).rewrites.size(), 2u);
}

TEST_F(ServiceTest, NullFallbackGivesEmptyRewrites) {
  RewriteService service(&store_, nullptr, {});
  const auto response = service.Serve({"unknown", "query"});
  EXPECT_TRUE(response.rewrites.empty());
  EXPECT_EQ(response.source, RewriteService::Source::kDirectModel);
}

}  // namespace
}  // namespace cyqr
