// RewriteServer contracts: admission control sheds what cannot meet its
// deadline, the bounded queue sheds under backpressure (both policies),
// transient faults are retried with budget-capped backoff, Drain() answers
// every in-flight request, and submitted == served + shed always.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serving/server.h"

namespace cyqr {
namespace {

using ServerResponse = RewriteServer::ServerResponse;
using Source = RewriteService::Source;

/// Thread-safe scriptable model backend: optionally blocks on a gate, and
/// fails the first `fail_first_calls` invocations with a transient error.
class ScriptableModelBackend : public ModelBackend {
 public:
  Status Rewrite(const std::vector<std::string>& query_tokens, int64_t k,
                 int64_t max_len, Deadline& deadline,
                 std::vector<RewriteCandidate>* out) override {
    (void)query_tokens;
    (void)k;
    (void)max_len;
    (void)deadline;
    if (gated.load()) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !gated.load(); });
    }
    const int64_t call = calls.fetch_add(1);
    if (call < fail_first_calls.load()) {
      return Status::IoError("injected transient outage");
    }
    RewriteCandidate c;
    c.tokens = {"model", "answer"};
    *out = {c};
    return Status::OK();
  }

  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gated.store(false);
    }
    cv_.notify_all();
  }

  std::atomic<bool> gated{false};
  std::atomic<int64_t> fail_first_calls{0};
  std::atomic<int64_t> calls{0};

 private:
  std::mutex mu_;
  std::condition_variable cv_;
};

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : cache_(&store_) {
    // Never trip the breaker by accident; breaker behaviour has its own
    // tests.
    service_options_.breaker.failure_threshold = 1000000;
    service_ = std::make_unique<RewriteService>(&cache_, &model_, nullptr,
                                                service_options_);
  }

  RewriteServer::Options BaseOptions() {
    RewriteServer::Options options;
    options.num_threads = 1;
    options.queue_depth = 4;
    options.retry.max_retries = 0;
    return options;
  }

  RewriteKvStore store_;  // Empty: every request falls through to the model.
  KvStoreBackend cache_;
  ScriptableModelBackend model_;
  RewriteService::Options service_options_;
  std::unique_ptr<RewriteService> service_;
};

TEST_F(ServerTest, ServesThroughTheLadder) {
  RewriteServer server(service_.get(), BaseOptions());
  const ServerResponse out = server.ServeBlocking({"cheap", "phone"});
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.response.source, Source::kDirectModel);
  EXPECT_EQ(out.retries, 0);
  server.Drain();
  EXPECT_EQ(server.submitted_total(), 1);
  EXPECT_EQ(server.served_total(), 1);
  EXPECT_EQ(server.shed_total(), 0);
}

TEST_F(ServerTest, AdmissionControlShedsWhenQueueWaitExceedsBudget) {
  RewriteServer::Options options = BaseOptions();
  // A cold server estimates 1 s of service time per queued request: any
  // queued backlog at all exceeds a 50 ms budget.
  options.initial_service_millis = 1000.0;
  RewriteServer server(service_.get(), options);

  model_.gated.store(true);
  std::atomic<int> answered{0};
  // First request: queue empty -> estimated wait 0 -> admitted; it wedges
  // the single worker on the gated model.
  ASSERT_TRUE(server.Submit({"a"}, Deadline::AfterMillis(50),
                            [&](ServerResponse) { answered.fetch_add(1); }));
  while (server.QueueDepth() > 0) std::this_thread::yield();
  // Second: queue still empty (the wedge is in flight) -> admitted.
  ASSERT_TRUE(server.Submit({"b"}, Deadline::AfterMillis(50),
                            [&](ServerResponse) { answered.fetch_add(1); }));

  // Third: one queued request x 1000 ms estimate >> 50 ms budget -> shed
  // now, with a Retry-After hint, without ever touching the queue.
  ServerResponse shed_response;
  EXPECT_FALSE(server.Submit({"c"}, Deadline::AfterMillis(50),
                             [&](ServerResponse r) {
                               shed_response = std::move(r);
                               answered.fetch_add(1);
                             }));
  EXPECT_EQ(shed_response.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(shed_response.retry_after_millis, 50.0);

  // An unlimited-budget request is always admitted (it can afford any
  // wait) — admission control is per-deadline, not a global gate.
  EXPECT_TRUE(server.Submit({"d"}, Deadline::Infinite(),
                            [&](ServerResponse) { answered.fetch_add(1); }));

  model_.OpenGate();
  server.Drain();
  EXPECT_EQ(answered.load(), 4);  // Every submission was answered.
  EXPECT_EQ(server.submitted_total(), 4);
  EXPECT_EQ(server.served_total(), 3);
  EXPECT_EQ(server.shed_total(), 1);
}

TEST_F(ServerTest, BackpressureShedsWhenQueueIsFull) {
  RewriteServer::Options options = BaseOptions();
  options.queue_depth = 2;
  RewriteServer server(service_.get(), options);

  model_.gated.store(true);
  std::atomic<int> served_cb{0};
  std::atomic<int> shed_cb{0};
  auto callback = [&](ServerResponse r) {
    (r.status.ok() ? served_cb : shed_cb).fetch_add(1);
  };
  // Infinite deadlines bypass admission control; only the bounded queue
  // can shed. 1 wedged + 2 queued; everything else must be refused.
  constexpr int kTotal = 8;
  int admitted = 0;
  for (int i = 0; i < kTotal; ++i) {
    if (server.Submit({"q", std::to_string(i)}, Deadline::Infinite(),
                      callback)) {
      ++admitted;
    }
    if (i == 0) {
      while (server.QueueDepth() > 0) std::this_thread::yield();
    }
  }
  EXPECT_EQ(admitted, 3);
  EXPECT_EQ(shed_cb.load(), kTotal - 3);

  model_.OpenGate();
  server.Drain();
  EXPECT_EQ(served_cb.load(), 3);
  EXPECT_EQ(server.submitted_total(), kTotal);
  EXPECT_EQ(server.served_total() + server.shed_total(), kTotal);
}

TEST_F(ServerTest, EvictOldestAnswersTheDisplacedRequest) {
  RewriteServer::Options options = BaseOptions();
  options.queue_depth = 1;
  options.shed_policy = ShedPolicy::kEvictOldest;
  RewriteServer server(service_.get(), options);

  model_.gated.store(true);
  std::mutex mu;
  std::vector<std::pair<std::string, bool>> answers;  // (tag, served?)
  auto tagged = [&](std::string tag) {
    return [&, tag](ServerResponse r) {
      std::lock_guard<std::mutex> lock(mu);
      answers.emplace_back(tag, r.status.ok());
    };
  };

  ASSERT_TRUE(server.Submit({"a"}, Deadline::Infinite(), tagged("a")));
  while (server.QueueDepth() > 0) std::this_thread::yield();
  ASSERT_TRUE(server.Submit({"b"}, Deadline::Infinite(), tagged("b")));
  // Queue is full (holds b); submitting c evicts b — freshest work wins.
  ASSERT_TRUE(server.Submit({"c"}, Deadline::Infinite(), tagged("c")));

  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(answers.size(), 1u);  // b was answered (shed) synchronously.
    EXPECT_EQ(answers[0].first, "b");
    EXPECT_FALSE(answers[0].second);
  }

  model_.OpenGate();
  server.Drain();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(answers.size(), 3u);
  EXPECT_EQ(server.served_total(), 2);
  EXPECT_EQ(server.shed_total(), 1);
}

TEST_F(ServerTest, TransientFaultIsRetriedWithBackoffUntilSuccess) {
  RewriteServer::Options options = BaseOptions();
  options.retry.max_retries = 2;
  options.retry.base_backoff_millis = 1.0;
  RewriteServer server(service_.get(), options);

  // The model fails its first two calls with a transient error; the third
  // succeeds. One request should therefore retry twice and come back
  // healthy (undegraded, answered by the model).
  model_.fail_first_calls.store(2);
  const ServerResponse out =
      server.ServeBlocking({"flaky"}, Deadline::AfterMillis(200));
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.retries, 2);
  EXPECT_EQ(out.response.source, Source::kDirectModel);
  EXPECT_FALSE(out.response.degraded);
  EXPECT_EQ(model_.calls.load(), 3);
  EXPECT_EQ(server.retries_total(), 2);
}

TEST_F(ServerTest, RetryStopsWhenBudgetCannotAffordTheBackoff) {
  RewriteServer::Options options = BaseOptions();
  options.retry.max_retries = 10;
  options.retry.base_backoff_millis = 50.0;  // Each backoff eats the budget.
  options.retry.max_backoff_millis = 50.0;
  RewriteServer server(service_.get(), options);

  model_.fail_first_calls.store(1000000);  // Never recovers.
  const ServerResponse out =
      server.ServeBlocking({"doomed"}, Deadline::AfterMillis(40));
  ASSERT_TRUE(out.status.ok());  // Still answered — degraded, not dropped.
  EXPECT_TRUE(out.response.degraded);
  // At most one backoff (25..50 ms after jitter) fits a 40 ms budget.
  EXPECT_LE(out.retries, 1);
}

TEST_F(ServerTest, RetryDisabledForNonTransientOutcomes) {
  RewriteServer::Options options = BaseOptions();
  options.retry.max_retries = 5;
  RewriteServer server(service_.get(), options);

  // A clean model answer after a cache miss is not degraded: no retries.
  const ServerResponse out = server.ServeBlocking({"ok"});
  EXPECT_EQ(out.retries, 0);
  EXPECT_EQ(model_.calls.load(), 1);
}

TEST_F(ServerTest, DrainAnswersEverythingAndRefusesLateSubmissions) {
  RewriteServer::Options options = BaseOptions();
  options.num_threads = 2;
  options.queue_depth = 64;
  RewriteServer server(service_.get(), options);

  std::atomic<int> answered{0};
  for (int i = 0; i < 20; ++i) {
    // (void): admission is accounted via the callback tally.
    (void)server.Submit({"q", std::to_string(i)}, Deadline::Infinite(),
                        [&](ServerResponse) { answered.fetch_add(1); });
  }
  server.Drain();
  EXPECT_EQ(answered.load(), 20);  // Graceful: nothing dropped on the floor.
  EXPECT_EQ(server.served_total(), 20);

  // Post-drain submissions are shed with kUnavailable, still answered.
  ServerResponse late;
  EXPECT_FALSE(server.Submit({"late"}, Deadline::Infinite(),
                             [&](ServerResponse r) { late = std::move(r); }));
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.submitted_total(),
            server.served_total() + server.shed_total());
}

TEST_F(ServerTest, MetricsFollowTheServingNamingConvention) {
  MetricsRegistry metrics;
  RewriteServer::Options options = BaseOptions();
  options.queue_depth = 1;
  RewriteServer server(service_.get(), options, &metrics);

  model_.gated.store(true);
  std::atomic<int> answered{0};
  auto cb = [&](ServerResponse) { answered.fetch_add(1); };
  // (void) x3: every outcome, shed included, is answered through `cb`.
  (void)server.Submit({"a"}, Deadline::Infinite(), cb);
  while (server.QueueDepth() > 0) std::this_thread::yield();
  (void)server.Submit({"b"}, Deadline::Infinite(), cb);
  (void)server.Submit({"c"}, Deadline::Infinite(), cb);  // Queue full: shed.
  model_.OpenGate();
  server.Drain();
  EXPECT_EQ(answered.load(), 3);

  EXPECT_EQ(metrics.GetCounter("cyqr_serving_shed_total")->Value(),
            server.shed_total());
  EXPECT_EQ(metrics.GetGauge("cyqr_serving_queue_depth_count")->Value(), 0.0);
  const std::string exposition = metrics.ExpositionText();
  EXPECT_NE(exposition.find("cyqr_serving_shed_total"), std::string::npos);
  EXPECT_NE(exposition.find("cyqr_serving_queue_depth_count"),
            std::string::npos);
  EXPECT_NE(exposition.find("cyqr_serving_retries_total"), std::string::npos);
}

}  // namespace
}  // namespace cyqr
