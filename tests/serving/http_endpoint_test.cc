#include "serving/http_endpoint.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/collective.h"
#include "obs/flight_recorder.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cyqr {
namespace {

/// Raw-socket GET against 127.0.0.1:port; returns the full response
/// (status line + headers + body) or "" on any socket failure. Kept
/// deliberately independent of HttpEndpoint's own parsing.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Connection: close — EOF ends the response.
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string StatusLine(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

std::string Body(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(HttpEndpointTest, ServesRegisteredRouteOnEphemeralPort) {
  HttpEndpoint::Options options;
  options.port = 0;
  HttpEndpoint endpoint(options);
  endpoint.AddRoute("/ping", [](const std::string&) {
    IntrospectPage page;
    page.content_type = "text/plain";
    page.body = "pong\n";
    return page;
  });
  ASSERT_TRUE(endpoint.Start().ok());
  ASSERT_GT(endpoint.port(), 0);

  const std::string response = HttpGet(endpoint.port(), "/ping");
  EXPECT_EQ(StatusLine(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(Body(response), "pong\n");
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_GE(endpoint.requests_total(), 1);
  endpoint.Stop();
}

TEST(HttpEndpointTest, UnknownPathGets404AndStopIsIdempotent) {
  HttpEndpoint::Options options;
  options.port = 0;
  HttpEndpoint endpoint(options);
  endpoint.AddRoute("/only", [](const std::string&) {
    return IntrospectPage{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(endpoint.Start().ok());
  const std::string response = HttpGet(endpoint.port(), "/nope");
  EXPECT_EQ(StatusLine(response), "HTTP/1.1 404 Not Found");
  endpoint.Stop();
  endpoint.Stop();  // Idempotent.
  // A second endpoint can bind a fresh ephemeral port after the first
  // stopped — no lingering listener state.
  HttpEndpoint second(options);
  second.AddRoute("/only", [](const std::string&) {
    return IntrospectPage{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(second.Start().ok());
  EXPECT_EQ(StatusLine(HttpGet(second.port(), "/only")),
            "HTTP/1.1 200 OK");
  second.Stop();
}

TEST(HttpEndpointTest, ConcurrentScrapesAllAnswered) {
  HttpEndpoint::Options options;
  options.port = 0;
  HttpEndpoint endpoint(options);
  endpoint.AddRoute("/ping", [](const std::string&) {
    return IntrospectPage{200, "text/plain", "pong"};
  });
  ASSERT_TRUE(endpoint.Start().ok());
  constexpr int kClients = 8;
  constexpr int kGetsEach = 10;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kGetsEach; ++i) {
        const std::string response = HttpGet(endpoint.port(), "/ping");
        // Under a scrape storm a 503 shed is a legal answer; silence or
        // garbage is not.
        const std::string line = StatusLine(response);
        if (line == "HTTP/1.1 200 OK" ||
            line == "HTTP/1.1 503 Service Unavailable") {
          // ordering: relaxed — plain tally; the join below synchronizes.
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  // ordering: relaxed — read after the join; no concurrent writers left.
  EXPECT_EQ(ok_count.load(std::memory_order_relaxed), kClients * kGetsEach);
  endpoint.Stop();
}

class IntrospectionRoutesTest : public testing::Test {
 protected:
  IntrospectionRoutesTest()
      : recorder_(/*events_per_thread=*/64),
        sampler_(/*keep_per_bucket=*/4) {
    Introspector::Options options;
    options.metrics = &registry_;
    options.traces = &sampler_;
    options.flight = &recorder_;
    options.build_info = "http_endpoint_test";
    introspector_ = std::make_unique<Introspector>(options);
  }

  MetricsRegistry registry_;
  TraceSampler sampler_;
  FlightRecorder recorder_;
  std::unique_ptr<Introspector> introspector_;
};

TEST_F(IntrospectionRoutesTest, ServesMetricsStatuszTracezFlightz) {
  registry_.GetCounter("cyqr_test_requests_total")->Increment(3);
  recorder_.Record(FlightCategory::kGeneral,
                   recorder_.InternName("general.tick"), 1, 2);

  // A real collective wired as a /statusz section: its generation() is
  // lock-guarded, so the renderer is legal on endpoint threads.
  Collective::Options collective_options;
  collective_options.world_size = 1;
  Collective collective(collective_options);
  ASSERT_TRUE(collective.Barrier().ok());
  introspector_->AddStatusSection("collective_generation", [&collective] {
    return std::to_string(collective.generation());
  });

  HttpEndpoint::Options options;
  options.port = 0;
  HttpEndpoint endpoint(options);
  RegisterIntrospectionRoutes(&endpoint, introspector_.get());
  ASSERT_TRUE(endpoint.Start().ok());

  const std::string metrics = HttpGet(endpoint.port(), "/metrics");
  EXPECT_EQ(StatusLine(metrics), "HTTP/1.1 200 OK");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(Body(metrics).find("cyqr_test_requests_total 3"),
            std::string::npos);

  const std::string statusz = HttpGet(endpoint.port(), "/statusz");
  EXPECT_EQ(StatusLine(statusz), "HTTP/1.1 200 OK");
  const std::string statusz_body = Body(statusz);
  EXPECT_NE(statusz_body.find("http_endpoint_test"), std::string::npos);
  EXPECT_NE(statusz_body.find("collective_generation: 1"),
            std::string::npos);

  const std::string flightz = HttpGet(endpoint.port(), "/flightz");
  EXPECT_EQ(StatusLine(flightz), "HTTP/1.1 200 OK");
  EXPECT_NE(Body(flightz).find("\"name\":\"general.tick\""),
            std::string::npos);

  const std::string tracez = HttpGet(endpoint.port(), "/tracez");
  EXPECT_EQ(StatusLine(tracez), "HTTP/1.1 200 OK");

  const std::string root = HttpGet(endpoint.port(), "/");
  EXPECT_EQ(StatusLine(root), "HTTP/1.1 200 OK");
  endpoint.Stop();
}

TEST_F(IntrospectionRoutesTest, ExemplarTraceIdResolvesInTracez) {
  // One sampled trace whose id is attached to a histogram observation:
  // the /metrics exemplar annotation must join against /tracez.
  Trace trace;
  trace.Annotate("serve", "cache");
  sampler_.Sample(trace, "cache");
  Histogram* latency = registry_.GetHistogram(
      "cyqr_test_latency_millis", {1.0, 10.0, 100.0});
  latency->Observe(0.5, trace.id());

  HttpEndpoint::Options options;
  options.port = 0;
  HttpEndpoint endpoint(options);
  RegisterIntrospectionRoutes(&endpoint, introspector_.get());
  ASSERT_TRUE(endpoint.Start().ok());

  const std::string metrics_body = Body(HttpGet(endpoint.port(), "/metrics"));
  const std::string annotation = "# {trace_id=\"" + trace.IdHex() + "\"}";
  EXPECT_NE(metrics_body.find(annotation), std::string::npos)
      << "no exemplar annotation in:\n"
      << metrics_body;

  const std::string tracez_body = Body(HttpGet(endpoint.port(), "/tracez"));
  EXPECT_NE(tracez_body.find(trace.IdHex()), std::string::npos)
      << "exemplar trace id not resolvable in:\n"
      << tracez_body;
  endpoint.Stop();
}

}  // namespace
}  // namespace cyqr
