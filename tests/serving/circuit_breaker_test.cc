#include "serving/circuit_breaker.h"

#include <gtest/gtest.h>

namespace cyqr {
namespace {

CircuitBreaker::Options SmallOptions() {
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  options.cooldown_requests = 3;
  return options;
}

TEST(CircuitBreakerTest, StartsClosedAndAllows) {
  CircuitBreaker breaker(SmallOptions());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(SmallOptions());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsFailureStreak) {
  CircuitBreaker breaker(SmallOptions());
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  // Never two in a row: stays closed.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, OpenRejectsUntilCooldownThenProbes) {
  CircuitBreaker breaker(SmallOptions());
  breaker.RecordFailure();
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Cooldown is 3 requests: the first two are rejected, the third becomes
  // the half-open probe.
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.rejected_requests(), 2);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, ProbeSuccessCloses) {
  CircuitBreaker breaker(SmallOptions());
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.AllowRequest();
  breaker.AllowRequest();
  ASSERT_TRUE(breaker.AllowRequest());  // Probe.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, ProbeFailureReopensForFullCooldown) {
  CircuitBreaker breaker(SmallOptions());
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.AllowRequest();
  breaker.AllowRequest();
  ASSERT_TRUE(breaker.AllowRequest());  // Probe.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2);
  // A fresh full cooldown applies.
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, UnresolvedProbeBlocksFurtherRequests) {
  CircuitBreaker breaker(SmallOptions());
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.AllowRequest();
  breaker.AllowRequest();
  ASSERT_TRUE(breaker.AllowRequest());  // Probe in flight.
  EXPECT_FALSE(breaker.AllowRequest());
}

}  // namespace
}  // namespace cyqr
