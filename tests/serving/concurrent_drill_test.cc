// The multi-threaded fault drill (ROADMAP "multi-threaded serving"), plus
// contention tests for the shared serving state it depends on: the breaker
// admits exactly one half-open probe under a thundering herd, the KV
// snapshot survives concurrent copy-swap writes, and the fault injector's
// deterministic failure window fires exactly once per scheduled call no
// matter how calls interleave.
//
// The drill itself: N submitter threads push traffic through a
// RewriteServer over a service whose cache is in a fault-injected outage
// and whose model flaps, concurrently tripping and re-closing the breaker.
// The accounting invariant — per-rung answers sum exactly to requests
// served, and served + shed equals requests submitted — must hold to the
// request, and the MetricsRegistry counters must agree exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.h"
#include "obs/flight_recorder.h"
#include "serving/fault_injection.h"
#include "serving/server.h"

namespace cyqr {
namespace {

using Source = RewriteService::Source;
using State = CircuitBreaker::State;

// ---------------------------------------------------------------------------
// CircuitBreaker under contention.
// ---------------------------------------------------------------------------

TEST(BreakerConcurrencyTest, ExactlyOneProbeWinsTheHalfOpenTransition) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.cooldown_requests = 1;
  CircuitBreaker breaker(options);
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), State::kOpen);

  // A thundering herd arrives exactly when the cooldown expires: every
  // thread is eligible to become the probe, but the CAS must pick one.
  constexpr int kThreads = 8;
  std::atomic<int> admitted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> herd;
  for (int i = 0; i < kThreads; ++i) {
    herd.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      if (breaker.AllowRequest()) admitted.fetch_add(1);
    });
  }
  go.store(true);
  for (auto& t : herd) t.join();

  EXPECT_EQ(admitted.load(), 1);
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
  EXPECT_EQ(breaker.rejected_requests(), kThreads - 1);
}

TEST(BreakerConcurrencyTest, InvariantsHoldUnderMixedContention) {
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  options.cooldown_requests = 3;
  CircuitBreaker breaker(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<int64_t> allowed{0};
  std::atomic<int64_t> denied{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (breaker.AllowRequest()) {
          allowed.fetch_add(1);
          // Mostly failures, so the breaker keeps cycling through all
          // three states while threads race on every transition.
          if ((t + i) % 5 == 0) {
            breaker.RecordSuccess();
          } else {
            breaker.RecordFailure();
          }
        } else {
          denied.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  // No request is lost or double-counted by the admission decision.
  EXPECT_EQ(allowed.load() + denied.load(), kThreads * kPerThread);
  EXPECT_EQ(breaker.rejected_requests(), denied.load());
  // The breaker really cycled (this workload trips it thousands of times).
  EXPECT_GT(breaker.times_opened(), 0);
  const State final_state = breaker.state();
  EXPECT_TRUE(final_state == State::kClosed || final_state == State::kOpen ||
              final_state == State::kHalfOpen);
}

// ---------------------------------------------------------------------------
// KV store: lock-free readers against copy-swap writers.
// ---------------------------------------------------------------------------

TEST(KvStoreConcurrencyTest, ReadersNeverSeeTornStateDuringWrites) {
  RewriteKvStore store;
  store.Put("stable", {{"always", "here"}});

  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const RewriteKvStore::Snapshot snap = store.snapshot();
        auto it = snap->find("stable");
        // The stable key must be visible and intact in every snapshot,
        // no matter how many swaps happen mid-read.
        ASSERT_NE(it, snap->end());
        ASSERT_EQ(it->second.size(), 1u);
        ASSERT_EQ(it->second[0],
                  (std::vector<std::string>{"always", "here"}));
        reads.fetch_add(1);
      }
    });
  }

  constexpr int kWrites = 300;
  for (int i = 0; i < kWrites; ++i) {
    store.Put("key " + std::to_string(i), {{"value", std::to_string(i)}});
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(store.size(), 1u + kWrites);
  // Spot-check a few written keys landed.
  EXPECT_NE(store.Get("key 0"), nullptr);
  EXPECT_NE(store.Get("key 299"), nullptr);
}

// ---------------------------------------------------------------------------
// FaultInjector: the deterministic window is exact under concurrency.
// ---------------------------------------------------------------------------

TEST(FaultInjectorConcurrencyTest, FailureWindowFiresExactlyByCount) {
  FaultSpec spec;
  spec.fail_calls_begin = 10;
  spec.fail_calls_end = 30;
  FaultInjector injector(spec, /*seed=*/7);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;  // 100 calls total, window covers 20.
  std::atomic<int64_t> failures{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        Deadline deadline = Deadline::Infinite();
        if (!injector.OnCall(deadline).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) t.join();

  // Deterministic-by-count: calls 10..29 fail, wherever they landed.
  EXPECT_EQ(failures.load(), spec.fail_calls_end - spec.fail_calls_begin);
  EXPECT_EQ(injector.calls(), kThreads * kPerThread);
  EXPECT_EQ(injector.injected_errors(), failures.load());
}

// ---------------------------------------------------------------------------
// The drill.
// ---------------------------------------------------------------------------

/// Minimal thread-safe model backend that answers every call.
class SteadyModelBackend : public ModelBackend {
 public:
  Status Rewrite(const std::vector<std::string>& query_tokens, int64_t k,
                 int64_t max_len, Deadline& deadline,
                 std::vector<RewriteCandidate>* out) override {
    (void)query_tokens;
    (void)k;
    (void)max_len;
    (void)deadline;
    RewriteCandidate c;
    c.tokens = {"model", "answer"};
    *out = {c};
    return Status::OK();
  }
};

TEST(ConcurrentFaultDrillTest, AccountingStaysExactThroughOutageAndFlapping) {
  // Store covers some queries so the cache rung answers when healthy.
  RewriteKvStore store;
  for (int i = 0; i < 8; ++i) {
    store.Put("hot " + std::to_string(i), {{"cached", std::to_string(i)}});
  }
  KvStoreBackend base_cache(&store);
  SteadyModelBackend base_model;

  // The outage: the cache hard-fails for a deterministic window of calls,
  // and the model flaps with 30% errors — enough to trip the breaker
  // (threshold 3) repeatedly and drive real open/half-open/closed cycling
  // while the herd runs.
  FaultPlan plan;
  plan.cache.fail_calls_begin = 50;
  plan.cache.fail_calls_end = 250;
  plan.cache.error_code = StatusCode::kIoError;
  plan.model.error_probability = 0.4;
  plan.model.error_code = StatusCode::kInternal;
  plan.seed = 1234;
  FaultHarness faults(&base_cache, &base_model, plan);

  SynonymDictionary dictionary;
  dictionary.Add("hot", "popular");
  RuleBasedRewriter rules(&dictionary);

  MetricsRegistry metrics;
  RewriteService::Options service_options;
  service_options.breaker.failure_threshold = 3;
  service_options.breaker.cooldown_requests = 5;
  RewriteService service(&faults.cache, &faults.model, &rules,
                         service_options, &metrics);

  RewriteServer::Options server_options;
  server_options.num_threads = 4;
  server_options.queue_depth = 64;
  server_options.retry.max_retries = 1;
  server_options.retry.base_backoff_millis = 0.5;
  RewriteServer server(&service, server_options, &metrics);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 150;
  constexpr int kTotal = kSubmitters * kPerSubmitter;

  // Per-rung answer tally, collected from the responses themselves.
  std::atomic<int64_t> answered_by[4] = {{0}, {0}, {0}, {0}};
  std::atomic<int64_t> served{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> answered{0};
  auto tally = [&](RewriteServer::ServerResponse response) {
    answered.fetch_add(1);
    if (response.status.ok()) {
      served.fetch_add(1);
      answered_by[static_cast<int>(response.response.source)].fetch_add(1);
    } else {
      shed.fetch_add(1);
    }
  };

  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        // Mix of cacheable and uncached queries, unlimited budget so only
        // backpressure (never admission control) can shed.
        std::vector<std::string> query =
            (i % 3 == 0)
                ? std::vector<std::string>{"hot", std::to_string(i % 8)}
                : std::vector<std::string>{"tail", std::to_string(s),
                                           std::to_string(i)};
        if (i % 4 == 3) {
          // Open-loop burst: fire-and-forget, may shed under backpressure;
          // (void): every outcome reaches `tally` through the callback.
          (void)server.Submit(std::move(query), Deadline::Infinite(), tally);
        } else {
          // Closed-loop: guarantees the workers process real volume (the
          // outage window and breaker cycling need served traffic, not a
          // queue that overflows faster than one core can drain it).
          tally(server.ServeBlocking(query, Deadline::Infinite()));
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  server.Drain();

  // --- The accounting invariant, exact to the request. ---
  EXPECT_EQ(answered.load(), kTotal);  // Every submission was answered.
  EXPECT_EQ(served.load() + shed.load(), kTotal);
  EXPECT_EQ(server.submitted_total(), kTotal);
  EXPECT_EQ(server.served_total(), served.load());
  EXPECT_EQ(server.shed_total(), shed.load());

  // Per-rung answers sum exactly to requests served.
  const int64_t rung_sum = answered_by[0].load() + answered_by[1].load() +
                           answered_by[2].load() + answered_by[3].load();
  EXPECT_EQ(rung_sum, served.load());

  // The metrics pipeline is exact, not approximate: requests counter ==
  // Serve() invocations (one per served request plus one per retry —
  // retried Serve() calls also answer through some rung, so rung-level
  // series exceed the final-response tally by exactly the retry count).
  EXPECT_EQ(metrics.GetCounter("cyqr_serving_requests_total")->Value(),
            served.load() + server.retries_total());
  const char* kRungLabels[4] = {"cache", "direct-model", "rule-based",
                                "passthrough"};
  int64_t metric_rung_sum = 0;
  for (const char* rung : kRungLabels) {
    metric_rung_sum +=
        metrics
            .GetCounter("cyqr_serving_rung_answers_total", {{"rung", rung}})
            ->Value();
  }
  EXPECT_EQ(metric_rung_sum, served.load() + server.retries_total());

  // The service's own tally counters agree exactly with the metric series
  // (both count per-Serve answers, retries included).
  EXPECT_EQ(service.cache_hits(),
            metrics
                .GetCounter("cyqr_serving_rung_answers_total",
                            {{"rung", "cache"}})
                ->Value());
  EXPECT_EQ(service.rule_based_answers(),
            metrics
                .GetCounter("cyqr_serving_rung_answers_total",
                            {{"rung", "rule-based"}})
                ->Value());
  EXPECT_EQ(service.passthrough_answers(),
            metrics
                .GetCounter("cyqr_serving_rung_answers_total",
                            {{"rung", "passthrough"}})
                ->Value());

  // The drill exercised what it claims: the outage window fired in full,
  // and the breaker actually cycled under contention.
  EXPECT_EQ(faults.cache.injector().injected_errors(),
            plan.cache.fail_calls_end - plan.cache.fail_calls_begin);
  EXPECT_GT(service.breaker().times_opened(), 0);

  // --- Flight-recorder coherence under the same contention. ---
  // The serving path records into the global recorder from every worker
  // thread while this drill runs; the stitched journal must come back
  // time-ordered with no torn slots (garbage args) despite the lock-free
  // writes. This is the in-process half of the TSan drill — the sanitizer
  // preset runs this whole binary.
  const std::vector<FlightEvent> journal =
      FlightRecorder::Global().Snapshot();
  ASSERT_FALSE(journal.empty());
  int64_t last_t = 0;
  int64_t rung_events = 0;
  int64_t queue_events = 0;
  for (const FlightEvent& event : journal) {
    EXPECT_GE(event.t_micros, last_t);
    last_t = event.t_micros;
    if (std::string(event.name) == "serving.rung") {
      ++rung_events;
      // arg0 = rung index, arg1 = outcome code: both live in [0, 3]; a
      // torn slot would surface out-of-range garbage here.
      EXPECT_GE(event.arg0, 0);
      EXPECT_LE(event.arg0, 3);
      EXPECT_GE(event.arg1, 0);
      EXPECT_LE(event.arg1, 3);
    } else if (std::string(event.name).rfind("queue.", 0) == 0) {
      ++queue_events;
    }
  }
  EXPECT_GT(rung_events, 0);
  EXPECT_GT(queue_events, 0);
  EXPECT_GT(FlightRecorder::Global().events_recorded_total(), 0);
  EXPECT_GT(FlightRecorder::Global().thread_count(), 0);
}

}  // namespace
}  // namespace cyqr
