// Corrupt-file tests for the hardened KV-store persistence: truncated,
// bit-flipped, and zero-length snapshots must fail with a non-OK Status —
// never crash, and never leave a half-loaded store.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/checksum.h"
#include "core/file_util.h"
#include "serving/kv_store.h"

namespace cyqr {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// The store is pinned in place (mutex + atomic members make it
// immovable), so helpers fill a caller-owned instance.
void FillStore(RewriteKvStore* store) {
  store->Put("cheap phone", {{"budget", "smartphone"}, {"senior", "phone"}});
  store->Put("gaming laptop", {{"gamer", "notebook"}});
  store->Put("coin", {});
}

std::string ReadAll(const std::string& path) {
  Result<std::string> content = ReadFileToString(path);
  EXPECT_TRUE(content.ok());
  return content.value();
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.flush();
  EXPECT_TRUE(out.good());
}

// A store pre-populated with a sentinel; any failed load must leave it
// exactly as it was (all-or-nothing).
void FillSentinel(RewriteKvStore* store) {
  store->Put("sentinel", {{"intact"}});
}

void ExpectSentinelIntact(const RewriteKvStore& store) {
  EXPECT_EQ(store.size(), 1u);
  const auto* hit = store.Get("sentinel");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], (std::vector<std::string>{"intact"}));
}

TEST(KvPersistenceTest, RoundTripWithFooter) {
  const std::string path = TestPath("kv_roundtrip.tsv");
  RewriteKvStore store;
  FillStore(&store);
  ASSERT_TRUE(store.Save(path).ok());

  RewriteKvStore loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), 3u);
  const auto* hit = loaded.Get("cheap phone");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 2u);
  EXPECT_EQ((*hit)[1], (std::vector<std::string>{"senior", "phone"}));
  ASSERT_NE(loaded.Get("coin"), nullptr);
  EXPECT_TRUE(loaded.Get("coin")->empty());
}

TEST(KvPersistenceTest, SaveIsAtomicNoTempLeftBehind) {
  const std::string path = TestPath("kv_atomic.tsv");
  RewriteKvStore saved;
  FillStore(&saved);
  ASSERT_TRUE(saved.Save(path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(TempPathFor(path)));
}

TEST(KvPersistenceTest, ZeroLengthFileFails) {
  const std::string path = TestPath("kv_zero.tsv");
  WriteAll(path, "");
  RewriteKvStore store;
  FillSentinel(&store);
  const Status status = store.Load(path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  ExpectSentinelIntact(store);
}

TEST(KvPersistenceTest, TruncatedFileFails) {
  const std::string path = TestPath("kv_truncated.tsv");
  RewriteKvStore saved;
  FillStore(&saved);
  ASSERT_TRUE(saved.Save(path).ok());
  const std::string content = ReadAll(path);
  // Chop off the tail (footer and part of the last record).
  WriteAll(path, content.substr(0, content.size() - 30));
  RewriteKvStore store;
  FillSentinel(&store);
  const Status status = store.Load(path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  ExpectSentinelIntact(store);
}

TEST(KvPersistenceTest, BitFlippedPayloadFails) {
  const std::string path = TestPath("kv_bitflip.tsv");
  RewriteKvStore saved;
  FillStore(&saved);
  ASSERT_TRUE(saved.Save(path).ok());
  std::string content = ReadAll(path);
  // Flip a bit in the middle of the payload; the footer stays valid so
  // only the checksum can catch this.
  content[content.size() / 4] ^= 0x20;
  WriteAll(path, content);
  RewriteKvStore store;
  FillSentinel(&store);
  const Status status = store.Load(path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  ExpectSentinelIntact(store);
}

TEST(KvPersistenceTest, MissingFooterFails) {
  const std::string path = TestPath("kv_nofooter.tsv");
  WriteAll(path, "cheap phone\tbudget smartphone\ncoin\n");
  RewriteKvStore store;
  FillSentinel(&store);
  const Status status = store.Load(path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  ExpectSentinelIntact(store);
}

TEST(KvPersistenceTest, MidFileGarbageReportsLineNumber) {
  const std::string path = TestPath("kv_garbage.tsv");
  RewriteKvStore saved;
  FillStore(&saved);
  ASSERT_TRUE(saved.Save(path).ok());
  std::string content = ReadAll(path);
  // Inject an empty record (bare newline) as the new line 1, then repair
  // the footer checksum so line parsing — not the checksum — must reject
  // the file. Build the corrupted payload first, recompute its footer.
  const size_t footer_begin = content.rfind("#cyqr-kv-footer");
  const std::string payload = "\n" + content.substr(0, footer_begin);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "#cyqr-kv-footer records=%llu fnv1a=%016llx",
                static_cast<unsigned long long>(3),
                static_cast<unsigned long long>(Fnv1a64(payload)));
  WriteAll(path, payload + buf + "\n");
  RewriteKvStore store;
  FillSentinel(&store);
  const Status status = store.Load(path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("line 1"), std::string::npos)
      << status.ToString();
  ExpectSentinelIntact(store);
}

TEST(KvPersistenceTest, RecordCountMismatchFails) {
  const std::string path = TestPath("kv_count.tsv");
  // One record but footer claims two; checksum is made consistent so only
  // the record count check can reject.
  const std::string payload = "cheap phone\tbudget smartphone\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "#cyqr-kv-footer records=%llu fnv1a=%016llx",
                static_cast<unsigned long long>(2),
                static_cast<unsigned long long>(Fnv1a64(payload)));
  WriteAll(path, payload + buf + "\n");
  RewriteKvStore store;
  FillSentinel(&store);
  const Status status = store.Load(path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  ExpectSentinelIntact(store);
}

TEST(KvPersistenceTest, EmptyStoreRoundTrips) {
  const std::string path = TestPath("kv_empty_store.tsv");
  RewriteKvStore empty;
  ASSERT_TRUE(empty.Save(path).ok());
  RewriteKvStore loaded;
  FillSentinel(&loaded);
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), 0u);
}

}  // namespace
}  // namespace cyqr
