#include "serving/fault_injection.h"

#include <gtest/gtest.h>

namespace cyqr {
namespace {

TEST(FaultInjectorTest, NoFaultsPassThrough) {
  FaultInjector injector(FaultSpec{}, /*seed=*/1);
  Deadline deadline = Deadline::AfterMillis(1000.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.OnCall(deadline).ok());
  }
  EXPECT_EQ(injector.calls(), 10);
  EXPECT_EQ(injector.injected_errors(), 0);
  EXPECT_EQ(deadline.charged_millis(), 0.0);
}

TEST(FaultInjectorTest, CertainErrorAlwaysFires) {
  FaultSpec spec;
  spec.error_probability = 1.0;
  spec.error_code = StatusCode::kIoError;
  spec.error_message = "cache outage";
  FaultInjector injector(spec, /*seed=*/2);
  Deadline deadline;
  const Status status = injector.OnCall(deadline);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "cache outage");
  EXPECT_EQ(injector.injected_errors(), 1);
}

TEST(FaultInjectorTest, LatencySpikeChargesDeadline) {
  FaultSpec spec;
  spec.latency_probability = 1.0;
  spec.latency_millis = 40.0;
  FaultInjector injector(spec, /*seed=*/3);
  Deadline deadline = Deadline::AfterMillis(100.0);
  EXPECT_TRUE(injector.OnCall(deadline).ok());
  EXPECT_EQ(deadline.charged_millis(), 40.0);
  EXPECT_TRUE(injector.OnCall(deadline).ok());
  EXPECT_TRUE(injector.OnCall(deadline).ok());
  // Three spikes blow the 100 ms budget.
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(injector.injected_latency_spikes(), 3);
}

TEST(FaultInjectorTest, DeterministicFailureWindow) {
  FaultSpec spec;
  spec.fail_calls_begin = 2;
  spec.fail_calls_end = 4;
  FaultInjector injector(spec, /*seed=*/4);
  Deadline deadline;
  EXPECT_TRUE(injector.OnCall(deadline).ok());   // Call 0.
  EXPECT_TRUE(injector.OnCall(deadline).ok());   // Call 1.
  EXPECT_FALSE(injector.OnCall(deadline).ok());  // Call 2: in window.
  EXPECT_FALSE(injector.OnCall(deadline).ok());  // Call 3: in window.
  EXPECT_TRUE(injector.OnCall(deadline).ok());   // Call 4: cleared.
}

TEST(FaultInjectorTest, SeededProbabilityIsReproducible) {
  FaultSpec spec;
  spec.error_probability = 0.5;
  FaultInjector a(spec, /*seed=*/99);
  FaultInjector b(spec, /*seed=*/99);
  Deadline deadline;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.OnCall(deadline).ok(), b.OnCall(deadline).ok());
  }
  EXPECT_GT(a.injected_errors(), 0);
  EXPECT_LT(a.injected_errors(), 50);
}

TEST(FaultInjectorTest, SpecCanBeSwappedMidRun) {
  FaultSpec broken;
  broken.error_probability = 1.0;
  FaultInjector injector(broken, /*seed=*/5);
  Deadline deadline;
  EXPECT_FALSE(injector.OnCall(deadline).ok());
  injector.set_spec(FaultSpec{});  // Outage clears.
  EXPECT_TRUE(injector.OnCall(deadline).ok());
}

TEST(FaultyKvBackendTest, InjectsInFrontOfRealStore) {
  RewriteKvStore store;
  store.Put("cheap phone", {{"budget", "phone"}});
  KvStoreBackend base(&store);
  FaultSpec spec;
  spec.fail_calls_begin = 0;
  spec.fail_calls_end = 1;
  FaultyKvBackend faulty(&base, spec, /*seed=*/6);

  Deadline deadline;
  RewriteKvStore::Rewrites out;
  EXPECT_FALSE(faulty.Lookup("cheap phone", deadline, &out).ok());
  // Window over: the real hit comes through.
  ASSERT_TRUE(faulty.Lookup("cheap phone", deadline, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::vector<std::string>{"budget", "phone"}));
  // Clean miss is NotFound, not an injected failure.
  EXPECT_EQ(faulty.Lookup("missing", deadline, &out).code(),
            StatusCode::kNotFound);
}

TEST(CorruptRewritesTest, ProducesInvalidOutput) {
  std::vector<RewriteCandidate> out(1);
  out[0].tokens = {"good", "tokens"};
  CorruptRewrites(/*max_len=*/10, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tokens.size(), 11u);
  EXPECT_TRUE(out[0].tokens[0].empty());
}

}  // namespace
}  // namespace cyqr
