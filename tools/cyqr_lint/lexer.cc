#include "lexer.h"

#include <cctype>

namespace cyqr_lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-char operators kept as single tokens. ">>" is intentionally
/// absent (see TokKind doc); "<<" is kept so stream inserts lex cleanly.
const char* const kTwoCharOps[] = {
    "::", "->", "<<", "==", "!=", "<=", ">=", "&&",
    "||", "++", "--", "+=", "-=", "*=", "/=",
};

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Parses NOLINT / NOLINTNEXTLINE markers out of a comment's text and
/// records them in the suppression map.
void HarvestNolint(const std::string& comment, int line,
                   std::unordered_map<int, std::set<std::string>>* nolint) {
  size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    size_t after = pos + 6;
    int target = line;
    if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = line + 1;
    }
    std::set<std::string>& rules = (*nolint)[target];
    if (after < comment.size() && comment[after] == '(') {
      const size_t close = comment.find(')', after);
      const std::string list =
          close == std::string::npos
              ? comment.substr(after + 1)
              : comment.substr(after + 1, close - after - 1);
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        std::string item = Trim(
            comma == std::string::npos ? list.substr(start)
                                       : list.substr(start, comma - start));
        if (!item.empty()) {
          if (item.rfind("cyqr-", 0) == 0) item = item.substr(5);
          rules.insert(item == "*" ? "*" : item);
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else {
      rules.insert("*");  // Bare NOLINT: everything on this line.
    }
    pos = after;
  }
}

/// Records every line of a comment spanning [first_line, last_line] as
/// carrying an "ordering:" justification when the comment contains one.
void HarvestOrdering(const std::string& comment, int first_line,
                     int last_line, std::set<int>* ordering_lines) {
  if (comment.find("ordering:") == std::string::npos) return;
  for (int l = first_line; l <= last_line; ++l) ordering_lines->insert(l);
}

}  // namespace

LexedFile LexFile(std::string path, const std::string& source) {
  LexedFile out;
  out.path = std::move(path);

  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // Only whitespace seen since the newline.

  auto push = [&out](TokKind kind, std::string text, int tok_line) {
    out.tokens.push_back(Token{kind, std::move(text), "", tok_line});
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Line comment. A backslash immediately before the newline splices the
    // next physical line into the comment (the classic `// comment \`
    // hazard: without this the spliced line would lex as code).
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const int first_line = line;
      size_t end = i;
      while (end < n) {
        const size_t eol = source.find('\n', end);
        if (eol == std::string::npos) {
          end = n;
          break;
        }
        size_t last = eol;
        while (last > end && (source[last - 1] == '\r')) --last;
        if (last > end && source[last - 1] == '\\') {
          ++line;  // Comment continues onto the next physical line.
          end = eol + 1;
          continue;
        }
        end = eol;
        break;
      }
      const std::string text = source.substr(i, end - i);
      HarvestNolint(text, first_line, &out.nolint);
      HarvestOrdering(text, first_line, line, &out.ordering_comment_lines);
      i = end;
      continue;
    }
    // Block comment. NOLINT markers apply to the comment's first line.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const size_t close = source.find("*/", i + 2);
      const size_t end = close == std::string::npos ? n : close + 2;
      const std::string text = source.substr(i, end - i);
      HarvestNolint(text, line, &out.nolint);
      const int first_line = line;
      for (size_t j = i; j < end; ++j) {
        if (source[j] == '\n') ++line;
      }
      HarvestOrdering(text, first_line, line, &out.ordering_comment_lines);
      i = end;
      continue;
    }

    // Preprocessor directive: '#' with only whitespace before it. The
    // whole logical line (including '\' continuations) becomes one token.
    if (c == '#' && at_line_start) {
      const int tok_line = line;
      size_t j = i + 1;
      while (j < n && (source[j] == ' ' || source[j] == '\t')) ++j;
      std::string name;
      while (j < n && IsIdentChar(source[j])) name += source[j++];
      std::string payload;
      while (j < n) {
        if (source[j] == '\\' && j + 1 < n && source[j + 1] == '\n') {
          ++line;
          j += 2;
          payload += ' ';
          continue;
        }
        if (source[j] == '\n') break;
        payload += source[j++];
      }
      // Strip a trailing line comment from the payload.
      const size_t slashes = payload.find("//");
      if (slashes != std::string::npos) {
        HarvestNolint(payload.substr(slashes), tok_line, &out.nolint);
        payload = payload.substr(0, slashes);
      }
      Token tok{TokKind::kDirective, std::move(name), "", tok_line};
      tok.aux = Trim(payload);
      out.tokens.push_back(std::move(tok));
      i = j;
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    // String literal (handles raw strings via the preceding identifier
    // check below, since R"..." lexes the R as part of the prefix here).
    if (IsIdentStart(c)) {
      const int tok_line = line;
      std::string ident;
      while (i < n) {
        if (IsIdentChar(source[i])) {
          ident += source[i++];
          continue;
        }
        // Phase-2 line splice inside an identifier: `foo\<newline>bar`
        // is one token. Without this the spliced halves would lex as two
        // identifiers and rule spans would misfire mid-token.
        if (source[i] == '\\' && i + 1 < n &&
            (source[i + 1] == '\n' ||
             (source[i + 1] == '\r' && i + 2 < n && source[i + 2] == '\n'))) {
          i += source[i + 1] == '\n' ? 2 : 3;
          ++line;
          continue;
        }
        break;
      }
      // Raw string literal: the prefix must be exactly one of the five
      // raw-string spellings. An identifier that merely *ends* in R
      // (`FooR"x"`) is an ordinary identifier adjacent to a string.
      const bool raw_prefix = ident == "R" || ident == "uR" ||
                              ident == "u8R" || ident == "UR" ||
                              ident == "LR";
      if (i < n && source[i] == '"' && raw_prefix) {
        size_t j = i + 1;
        std::string delim;
        while (j < n && source[j] != '(' && source[j] != '"' &&
               source[j] != '\n' && delim.size() < 16) {
          delim += source[j++];
        }
        const std::string terminator = ")" + delim + "\"";
        const size_t close = source.find(terminator, j);
        const size_t end =
            close == std::string::npos ? n : close + terminator.size();
        for (size_t k = i; k < end; ++k) {
          if (source[k] == '\n') ++line;
        }
        Token tok{TokKind::kString, "", "", tok_line};
        if (close != std::string::npos && j < n) {
          tok.aux = source.substr(j + 1, close - (j + 1));
        }
        i = end;
        out.tokens.push_back(std::move(tok));
        continue;
      }
      // Encoding-prefixed ordinary literal (u8"x", L'c', ...): treat the
      // short prefix as part of the literal, not an identifier.
      if (i < n && (source[i] == '"' || source[i] == '\'') &&
          ident.size() <= 3 &&
          (ident == "u" || ident == "U" || ident == "L" || ident == "u8")) {
        // Fall through to the literal scanner with the prefix consumed.
      } else {
        push(TokKind::kIdent, ident, tok_line);
        continue;
      }
    }

    if (c == '"' || source[i] == '"' || c == '\'' || source[i] == '\'') {
      const char quote = source[i];
      const int tok_line = line;
      size_t j = i + 1;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) ++j;
        if (source[j] == '\n') ++line;  // Unterminated; keep counting.
        ++j;
      }
      Token tok{quote == '"' ? TokKind::kString : TokKind::kChar, "", "",
                tok_line};
      if (quote == '"') tok.aux = source.substr(i + 1, j - (i + 1));
      i = j < n ? j + 1 : n;
      out.tokens.push_back(std::move(tok));
      continue;
    }

    // pp-number: digits, idents, dots, exponent signs, digit separators.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      const int tok_line = line;
      std::string num;
      while (i < n) {
        const char d = source[i];
        // A digit separator is only part of the number when sandwiched
        // between digit characters (1'000). A bare quote after a number
        // (`{1,'a'}` minus the comma) starts a char literal instead.
        if (d == '\'') {
          if (i + 1 < n &&
              std::isalnum(static_cast<unsigned char>(source[i + 1]))) {
            num += d;
            ++i;
            continue;
          }
          break;
        }
        if (IsIdentChar(d) || d == '.') {
          num += d;
          ++i;
          continue;
        }
        // Phase-2 line splice inside a number (`1'0\<newline>00`).
        if (d == '\\' && i + 1 < n &&
            (source[i + 1] == '\n' ||
             (source[i + 1] == '\r' && i + 2 < n && source[i + 2] == '\n'))) {
          i += source[i + 1] == '\n' ? 2 : 3;
          ++line;
          continue;
        }
        if ((d == '+' || d == '-') && !num.empty() &&
            (num.back() == 'e' || num.back() == 'E' || num.back() == 'p' ||
             num.back() == 'P')) {
          num += d;
          ++i;
          continue;
        }
        break;
      }
      push(TokKind::kNumber, num, tok_line);
      continue;
    }

    // Operators and punctuation.
    bool matched = false;
    for (const char* op : kTwoCharOps) {
      if (source.compare(i, 2, op) == 0) {
        push(TokKind::kPunct, op, line);
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(TokKind::kPunct, std::string(1, c), line);
    ++i;
  }

  out.num_lines = line;
  return out;
}

bool IsSuppressed(const LexedFile& file, int line, const std::string& rule) {
  auto it = file.nolint.find(line);
  if (it == file.nolint.end()) return false;
  return it->second.count("*") > 0 || it->second.count(rule) > 0;
}

}  // namespace cyqr_lint
