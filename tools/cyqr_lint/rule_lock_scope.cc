#include <set>

#include "rules.h"

namespace cyqr_lint {

namespace {

/// Manual lock()/unlock()/try_lock() calls on a declared std mutex.
/// Manual lock management leaks the lock on any early return or exception
/// between the lock() and the unlock() — under the multi-threaded serving
/// front end that is a wedged worker, not a crash, and it hides from every
/// test that does not hit the exact interleaving. Scope-based guards
/// (std::lock_guard / std::unique_lock / std::scoped_lock) cannot leak.
///
/// The rule is name-driven and file-local to stay lexer-honest: it first
/// collects every identifier declared in this file with a std mutex type
/// (`std::mutex mu_;`, including timed/recursive/shared variants), then
/// flags `name.lock(` / `name.unlock(` / `name.try_lock(` on exactly
/// those names. Calls on other receivers (for example
/// `std::weak_ptr::lock()`) never fire, because those names were never
/// collected as mutexes.
class LockScopeRule : public Rule {
 public:
  const char* name() const override { return "lock-scope"; }

  void Check(const ParsedFile& file, const LintContext& /*ctx*/,
             std::vector<Diagnostic>* out) const override {
    const std::vector<Token>& toks = file.lex.tokens;
    static const std::set<std::string> kMutexTypes = {
        "mutex",            "timed_mutex",
        "recursive_mutex",  "recursive_timed_mutex",
        "shared_mutex",     "shared_timed_mutex"};

    // Pass 1: names declared as std mutexes in this file.
    std::set<std::string> mutex_names;
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!IsIdent(toks, i, "std") || !IsPunct(toks, i + 1, "::")) continue;
      if (toks[i + 2].kind != TokKind::kIdent ||
          kMutexTypes.count(toks[i + 2].text) == 0) {
        continue;
      }
      // `std::mutex NAME ;` — a declaration, not a template argument
      // (`lock_guard<std::mutex>`) or a type in a signature.
      if (toks[i + 3].kind == TokKind::kIdent &&
          IsPunct(toks, i + 4, ";")) {
        mutex_names.insert(toks[i + 3].text);
      }
    }
    if (mutex_names.empty()) return;

    // Pass 2: manual lock-management calls on those names.
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent ||
          mutex_names.count(toks[i].text) == 0) {
        continue;
      }
      if (!IsPunct(toks, i + 1, ".")) continue;
      if (toks[i + 2].kind != TokKind::kIdent) continue;
      const std::string& method = toks[i + 2].text;
      static const std::set<std::string> kManualMethods = {
          "lock",        "unlock",        "try_lock",
          "lock_shared", "unlock_shared", "try_lock_shared"};
      if (kManualMethods.count(method) == 0) continue;
      if (!IsPunct(toks, i + 3, "(")) continue;
      const bool shared = method.find("shared") != std::string::npos;
      Diagnostic d;
      d.file = file.lex.path;
      d.line = toks[i].line;
      d.rule = name();
      d.message = "manual '" + toks[i].text + "." + method +
                  "()' on a std::mutex: use " +
                  (shared ? std::string("std::shared_lock")
                          : std::string("std::lock_guard or "
                                        "std::unique_lock")) +
                  " so the lock cannot leak on early "
                  "return or exception";
      out->push_back(std::move(d));
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeLockScopeRule() {
  return std::make_unique<LockScopeRule>();
}

}  // namespace cyqr_lint
