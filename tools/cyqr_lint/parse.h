#ifndef CYQR_LINT_PARSE_H_
#define CYQR_LINT_PARSE_H_

#include <string>
#include <utility>
#include <vector>

#include "lexer.h"

namespace cyqr_lint {

/// The recovery layer between the lexer and the flow-aware rules. This is
/// deliberately not a C++ AST: it is a recursive-descent pass over the
/// token stream that recovers exactly the shape the rules need — function
/// boundaries, parameter lists, call expressions with argument spans,
/// class extents, thread-safety annotation attachments, and lock-guard
/// scope regions — by bracket matching. Anything it cannot recognize it
/// skips, so malformed code degrades to "no structure" rather than wrong
/// structure.

/// One parameter of a recovered function definition.
struct Param {
  /// Flattened type tokens, space-separated ("const Deadline &").
  std::string type;
  /// "" for unnamed parameters.
  std::string name;
};

/// One call expression inside a function body. Local declarations of the
/// form `Type name(args);` are indistinguishable from calls at this level
/// and appear as calls named `name`; rules key on callee names specific
/// enough for that not to matter.
struct CallSite {
  std::string callee;    ///< Called identifier (unqualified).
  std::string receiver;  ///< Ident before '.'/'->' on member calls, else "".
  bool member_call = false;
  int line = 0;
  size_t name_index = 0;   ///< Token index of the callee identifier.
  size_t open_paren = 0;   ///< '(' of the argument list.
  size_t close_paren = 0;  ///< Matching ')'.
  /// Top-level comma-separated argument token ranges [begin, end).
  std::vector<std::pair<size_t, size_t>> args;
};

/// The token region over which a scope-based lock guard is held. One
/// guard declaration can yield several regions: the initial region runs
/// from the token after the declaration to the close of the enclosing
/// brace scope, truncated at an explicit `name.unlock()`; each later
/// `name.lock()` re-acquisition opens a fresh region (the unique_lock
/// unlock/re-lock idiom). A `std::defer_lock` guard contributes no
/// initial region — only its explicit `.lock()` segments.
struct LockRegion {
  std::string guard_type;  ///< lock_guard/unique_lock/scoped_lock/shared_lock.
  std::string name;        ///< Guard variable name.
  /// Flattened mutex expressions passed to the guard constructor
  /// ("mu_", "waiter->mu"); std::defer_lock-style tags are dropped. A
  /// std::scoped_lock over several mutexes lists them all.
  std::vector<std::string> mutexes;
  /// True for std::shared_lock guards: the region holds the mutex in
  /// reader (shared) mode — reads of guarded fields are legal, writes
  /// still need an exclusive hold.
  bool shared = false;
  int line = 0;       ///< Guard declaration line.
  size_t begin = 0;   ///< First token inside the held region.
  size_t end = 0;     ///< Exclusive end of the held region.
};

/// A class/struct definition's extent (used to attribute fields and
/// inline member functions to their class).
struct ClassDef {
  std::string name;
  int line = 0;
  size_t body_begin = 0;  ///< Token index of the class body '{'.
  size_t body_end = 0;    ///< Token index of the matching '}'.
};

/// A field declared with CYQR_GUARDED_BY(mutex).
struct GuardedFieldDecl {
  std::string class_name;  ///< Innermost enclosing class; "" at file scope.
  std::string field;
  std::string mutex;  ///< Flattened CYQR_GUARDED_BY argument.
  int line = 0;
};

/// One CYQR_REQUIRES/CYQR_ACQUIRE/CYQR_RELEASE/CYQR_EXCLUDES attachment,
/// recovered from declarations and definitions alike (the backward walk
/// from the macro finds the function name before the parameter list).
struct AnnotationSite {
  std::string macro;       ///< "CYQR_REQUIRES", "CYQR_ACQUIRE", ...
  std::string function;    ///< Attached function name (unqualified).
  std::string class_name;  ///< Qualifier or enclosing class; "" for free.
  std::vector<std::string> args;  ///< Flattened mutex expressions.
  int line = 0;
};

/// A recovered function definition (free function, method, or ctor).
struct FunctionDef {
  std::string name;
  /// `C` for `C::name` out-of-line definitions and for definitions inside
  /// the body of class C; "" for free functions.
  std::string class_name;
  int line = 0;
  size_t name_index = 0;  ///< Token index of the definition name.
  std::vector<Param> params;
  size_t body_begin = 0;  ///< Token index of the body '{'.
  size_t body_end = 0;    ///< Token index of the matching '}'.
  std::vector<CallSite> calls;
  std::vector<LockRegion> locks;
  /// Mutex expressions from CYQR_* annotations between the parameter list
  /// and the body (definitions only; header declarations surface through
  /// AnnotationSite instead).
  std::vector<std::string> requires_locks;
  std::vector<std::string> acquire_locks;
  std::vector<std::string> release_locks;
  std::vector<std::string> excludes_locks;

  /// True when any parameter's type mentions `fragment` (e.g. "Deadline").
  bool HasParamOfType(const std::string& fragment) const;
  /// Name of the first parameter whose type mentions `fragment`, or "".
  std::string ParamNameOfType(const std::string& fragment) const;
};

struct ParsedFile {
  LexedFile lex;
  std::vector<FunctionDef> functions;
  std::vector<ClassDef> classes;
  std::vector<GuardedFieldDecl> guarded_fields;
  std::vector<AnnotationSite> annotations;
};

/// Recovers the structure above from a lexed file.
ParsedFile ParseFile(LexedFile lex);

/// Splits the parenthesized group whose '(' is at `open` and ')' at
/// `close` into top-level comma-separated token ranges [begin, end).
/// Nested (), {}, and [] groups shield their commas.
std::vector<std::pair<size_t, size_t>> SplitArgs(
    const std::vector<Token>& toks, size_t open, size_t close);

/// True when the token range [begin, end) contains an identifier token
/// with exactly this text.
bool RangeMentionsIdent(const std::vector<Token>& toks, size_t begin,
                        size_t end, const std::string& ident);

/// Flattens the token range [begin, end) into one member path, keeping
/// identifiers joined by '.', '->', and '::' ("waiter->mu",
/// "std::defer_lock"); other tokens (<> template groups, '&') are
/// dropped. Returns "" when the range has no identifier.
std::string FlattenMemberPath(const std::vector<Token>& toks, size_t begin,
                              size_t end);

}  // namespace cyqr_lint

#endif  // CYQR_LINT_PARSE_H_
