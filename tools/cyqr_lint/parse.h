#ifndef CYQR_LINT_PARSE_H_
#define CYQR_LINT_PARSE_H_

#include <string>
#include <utility>
#include <vector>

#include "lexer.h"

namespace cyqr_lint {

/// The recovery layer between the lexer and the flow-aware rules. This is
/// deliberately not a C++ AST: it is a recursive-descent pass over the
/// token stream that recovers exactly the shape the rules need — function
/// boundaries, parameter lists, call expressions with argument spans, and
/// lock-guard scope regions — by bracket matching. Anything it cannot
/// recognize it skips, so malformed code degrades to "no structure"
/// rather than wrong structure.

/// One parameter of a recovered function definition.
struct Param {
  /// Flattened type tokens, space-separated ("const Deadline &").
  std::string type;
  /// "" for unnamed parameters.
  std::string name;
};

/// One call expression inside a function body. Local declarations of the
/// form `Type name(args);` are indistinguishable from calls at this level
/// and appear as calls named `name`; rules key on callee names specific
/// enough for that not to matter.
struct CallSite {
  std::string callee;    ///< Called identifier (unqualified).
  std::string receiver;  ///< Ident before '.'/'->' on member calls, else "".
  bool member_call = false;
  int line = 0;
  size_t name_index = 0;   ///< Token index of the callee identifier.
  size_t open_paren = 0;   ///< '(' of the argument list.
  size_t close_paren = 0;  ///< Matching ')'.
  /// Top-level comma-separated argument token ranges [begin, end).
  std::vector<std::pair<size_t, size_t>> args;
};

/// The token region over which a scope-based lock guard is held: from the
/// token after its declaration to the close of the enclosing brace scope,
/// truncated at an explicit `name.unlock()` when one appears.
struct LockRegion {
  std::string guard_type;  ///< lock_guard/unique_lock/scoped_lock/shared_lock.
  std::string name;        ///< Guard variable name.
  int line = 0;
  size_t begin = 0;  ///< First token inside the held region.
  size_t end = 0;    ///< Exclusive end of the held region.
};

/// A recovered function definition (free function, method, or ctor).
struct FunctionDef {
  std::string name;
  int line = 0;
  std::vector<Param> params;
  size_t body_begin = 0;  ///< Token index of the body '{'.
  size_t body_end = 0;    ///< Token index of the matching '}'.
  std::vector<CallSite> calls;
  std::vector<LockRegion> locks;

  /// True when any parameter's type mentions `fragment` (e.g. "Deadline").
  bool HasParamOfType(const std::string& fragment) const;
  /// Name of the first parameter whose type mentions `fragment`, or "".
  std::string ParamNameOfType(const std::string& fragment) const;
};

struct ParsedFile {
  LexedFile lex;
  std::vector<FunctionDef> functions;
};

/// Recovers the structure above from a lexed file.
ParsedFile ParseFile(LexedFile lex);

/// Splits the parenthesized group whose '(' is at `open` and ')' at
/// `close` into top-level comma-separated token ranges [begin, end).
/// Nested (), {}, and [] groups shield their commas.
std::vector<std::pair<size_t, size_t>> SplitArgs(
    const std::vector<Token>& toks, size_t open, size_t close);

/// True when the token range [begin, end) contains an identifier token
/// with exactly this text.
bool RangeMentionsIdent(const std::vector<Token>& toks, size_t begin,
                        size_t end, const std::string& ident);

}  // namespace cyqr_lint

#endif  // CYQR_LINT_PARSE_H_
