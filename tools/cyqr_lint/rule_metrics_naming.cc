#include <algorithm>

#include "rules.h"

namespace cyqr_lint {

namespace {

/// Known unit suffixes; mirrors kUnitSuffixes in src/obs/metrics.cc (the
/// linter is standalone and cannot link cyqr_obs). "per_sec" is handled
/// separately because it spans two segments.
const char* const kUnits[] = {
    "total", "millis", "micros", "seconds", "bytes", "tokens",
    "ratio", "count",  "state",  "norm",    "value",
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Mirror of cyqr::IsValidMetricName: cyqr_<layer>_<name>_<unit>,
/// lowercase [a-z0-9_], at least four segments, known unit suffix.
bool ValidName(const std::string& name) {
  if (name.rfind("cyqr_", 0) != 0) return false;
  if (name.back() == '_' || name.find("__") != std::string::npos) {
    return false;
  }
  for (char c : name) {
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  if (std::count(name.begin(), name.end(), '_') < 3) return false;
  if (EndsWith(name, "_per_sec")) return true;
  const size_t last = name.rfind('_');
  const std::string unit = name.substr(last + 1);
  for (const char* known : kUnits) {
    if (unit == known) return true;
  }
  return false;
}

/// Mirror of cyqr::IsValidFlightEventName: `<layer>.<event>` — lowercase
/// [a-z0-9_] segments, at least two, separated by single dots.
bool ValidFlightEventName(const std::string& name) {
  if (name.empty()) return false;
  int segments = 1;
  size_t segment_len = 0;
  for (const char c : name) {
    if (c == '.') {
      if (segment_len == 0) return false;  // Leading or doubled dot.
      ++segments;
      segment_len = 0;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
               c == '_') {
      ++segment_len;
    } else {
      return false;
    }
  }
  return segment_len > 0 && segments >= 2;
}

/// Enforces the instrument naming convention (DESIGN.md "Observability")
/// at MetricsRegistry call sites — the first argument of GetCounter /
/// GetGauge / GetHistogram, when it is a string literal, must be a valid
/// `cyqr_<layer>_<name>_<unit>` name — and the flight-recorder convention
/// at InternName call sites, whose literal must be a `<layer>.<event>`
/// dotted name. Names built at runtime are invisible to the lexer and are
/// left to the registry's / recorder's own CYQR_CHECK.
class MetricsNamingRule : public Rule {
 public:
  const char* name() const override { return "metrics-naming"; }

  void Check(const ParsedFile& file, const LintContext& /*ctx*/,
             std::vector<Diagnostic>* out) const override {
    const std::vector<Token>& toks = file.lex.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const std::string& t = toks[i].text;
      const bool is_metric =
          t == "GetCounter" || t == "GetGauge" || t == "GetHistogram";
      const bool is_flight = t == "InternName";
      if (!is_metric && !is_flight) continue;
      // Member call only (`registry.Get*` / `recorder.InternName`): a free
      // function that happens to share the name is not a registry.
      if (!(i >= 1 &&
            (IsPunct(toks, i - 1, ".") || IsPunct(toks, i - 1, "->")))) {
        continue;
      }
      if (!IsPunct(toks, i + 1, "(") || i + 2 >= toks.size() ||
          toks[i + 2].kind != TokKind::kString) {
        continue;
      }
      const std::string& literal = toks[i + 2].aux;
      if (is_metric ? ValidName(literal) : ValidFlightEventName(literal)) {
        continue;
      }
      Diagnostic d;
      d.file = file.lex.path;
      d.line = toks[i + 2].line;
      d.rule = name();
      d.message =
          is_metric
              ? "metric name \"" + literal + "\" violates the " +
                    "cyqr_<layer>_<name>_<unit> convention (lowercase " +
                    "[a-z0-9_], >= 4 segments, known unit suffix)"
              : "flight event name \"" + literal + "\" violates the " +
                    "<layer>.<event> convention (lowercase [a-z0-9_] " +
                    "segments, >= 2, separated by single dots)";
      out->push_back(std::move(d));
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeMetricsNamingRule() {
  return std::make_unique<MetricsNamingRule>();
}

}  // namespace cyqr_lint
