#ifndef CYQR_LINT_LINT_H_
#define CYQR_LINT_LINT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "parse.h"

namespace cyqr_lint {

/// A mechanical, line-span-based repair attached to a diagnostic. Fixes
/// are applied by the driver under --fix; they must be idempotent (a
/// second --fix pass over fixed output produces no further edits).
struct FixEdit {
  enum class Kind {
    kAppendToLine,     ///< Append `text` at the end of `line`.
    kDeleteLine,       ///< Remove `line` entirely.
    kInsertLineBefore  ///< Insert `text` as a new line before `line`.
  };
  Kind kind = Kind::kAppendToLine;
  int line = 0;
  std::string text;
};

/// One finding. Formats as "file:line: [rule] message".
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  /// Optional mechanical repair (applied under --fix).
  std::vector<FixEdit> fixes;
};

/// Cross-file facts shared by every rule. Populated by a pre-pass over
/// all lexed files before any rule runs.
struct LintContext {
  /// Unqualified names of functions/methods declared to return Status or
  /// Result<T> anywhere in the scanned tree. Seeded with the core factory
  /// names so a call like Status::OK() is flagged even when status.h is
  /// outside the scan set.
  std::set<std::string> status_functions;
  /// Unqualified names of functions/methods that accept a Deadline (or
  /// DeadlineBudget) parameter anywhere in the scanned tree — the callee
  /// set for the deadline-propagation rule.
  std::set<std::string> deadline_functions;
};

/// A named invariant check. Rules are pure: they read the parsed file and
/// the shared context and emit diagnostics; suppression and allowlists
/// are applied by the driver.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  virtual void Check(const ParsedFile& file, const LintContext& ctx,
                     std::vector<Diagnostic>* out) const = 0;
};

/// All built-in rules: discarded-status, unchecked-stream,
/// banned-functions, banned-unseeded-rng, raw-owning-new, include-hygiene,
/// metrics-naming, lock-scope, deadline-propagation,
/// lock-held-blocking-call, atomic-ordering-audit, result-unwrap-check.
std::vector<std::unique_ptr<Rule>> BuildAllRules();

/// Scans one lexed file for Status/Result-returning declarations
/// (the pre-pass behind LintContext::status_functions).
void CollectStatusFunctions(const LexedFile& file,
                            std::set<std::string>* names);

/// Scans one lexed file for functions declared with a Deadline parameter
/// (the pre-pass behind LintContext::deadline_functions). Works on raw
/// tokens so pure declarations (`virtual ... = 0;`) are collected too.
void CollectDeadlineFunctions(const LexedFile& file,
                              std::set<std::string>* names);

struct LintOptions {
  /// When non-empty, only rules named here run.
  std::set<std::string> enabled_rules;
  /// rule name -> path substrings exempt from that rule.
  std::map<std::string, std::vector<std::string>> allow;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // Sorted by (file, line, rule).
  int files_scanned = 0;
  std::vector<std::string> errors;  // Unreadable paths etc.
};

/// Runs every enabled rule over one parsed file, dropping
/// NOLINT-suppressed and allowlisted findings. The per-file unit of work
/// shared by RunLint and the parallel driver.
void AnalyzeFile(const ParsedFile& file, const LintContext& ctx,
                 const LintOptions& options,
                 const std::vector<std::unique_ptr<Rule>>& rules,
                 std::vector<Diagnostic>* out);

/// Lints every C++ source file under `paths` (files or directories,
/// recursively; .h/.hpp/.cc/.cpp). Two passes: collect cross-file facts,
/// then run rules, dropping NOLINT-suppressed and allowlisted findings.
/// Serial convenience wrapper over the driver in driver.h.
LintResult RunLint(const std::vector<std::string>& paths,
                   const LintOptions& options);

/// Renders diagnostics as "file:line: [rule] message" lines, or as a JSON
/// array of {file, line, rule, message} objects.
std::string FormatText(const LintResult& result);
std::string FormatJson(const LintResult& result);

/// Seeds LintContext with the core factory/propagation names that must be
/// recognized even when core/status.h is outside the scan set.
void SeedContext(LintContext* ctx);

}  // namespace cyqr_lint

#endif  // CYQR_LINT_LINT_H_
