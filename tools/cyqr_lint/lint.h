#ifndef CYQR_LINT_LINT_H_
#define CYQR_LINT_LINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "parse.h"

namespace cyqr_lint {

/// A mechanical, line-span-based repair attached to a diagnostic. Fixes
/// are applied by the driver under --fix; they must be idempotent (a
/// second --fix pass over fixed output produces no further edits).
struct FixEdit {
  enum class Kind {
    kAppendToLine,     ///< Append `text` at the end of `line`.
    kDeleteLine,       ///< Remove `line` entirely.
    kInsertLineBefore  ///< Insert `text` as a new line before `line`.
  };
  Kind kind = Kind::kAppendToLine;
  int line = 0;
  std::string text;
};

/// One finding. Formats as "file:line: [rule] message".
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  /// Optional mechanical repair (applied under --fix).
  std::vector<FixEdit> fixes;
};

/// One acquisition-order edge in the global lock graph: `from` was held
/// when `to` was acquired. Nodes are class-qualified mutex names
/// ("MetricsRegistry::mu_") or bare names for file-scope mutexes.
struct LockOrderEdge {
  std::string from;
  std::string to;
  std::string file;  ///< Witness file (where the inner acquisition is).
  int line = 0;      ///< Witness line of the inner acquisition.
};

/// Cross-file facts shared by every rule. Populated by a pre-pass over
/// all lexed files before any rule runs.
struct LintContext {
  /// Unqualified names of functions/methods declared to return Status or
  /// Result<T> anywhere in the scanned tree. Seeded with the core factory
  /// names so a call like Status::OK() is flagged even when status.h is
  /// outside the scan set.
  std::set<std::string> status_functions;
  /// Unqualified names of functions/methods that accept a Deadline (or
  /// DeadlineBudget) parameter anywhere in the scanned tree — the callee
  /// set for the deadline-propagation rule.
  std::set<std::string> deadline_functions;
  /// "Class::field" (or "::field" at file scope) -> guarding mutex name
  /// as written in the CYQR_GUARDED_BY annotation.
  std::map<std::string, std::string> guarded_fields;
  /// CYQR_REQUIRES attachments, keyed by both "Class::fn" and plain "fn";
  /// values are the required mutex names as written (unqualified).
  std::map<std::string, std::vector<std::string>> requires_functions;
  /// CYQR_ACQUIRE attachments, keyed like requires_functions; values are
  /// class-qualified mutex nodes for the lock-order graph.
  std::map<std::string, std::vector<std::string>> acquire_functions;
  /// The merged global acquisition-order graph. Deliberately NOT part of
  /// the cache fingerprint: edges feed only the whole-tree cycle pass,
  /// which is recomputed fresh every run, never replayed from cache.
  std::vector<LockOrderEdge> lock_order_edges;
};

/// A named invariant check. Rules are pure: they read the parsed file and
/// the shared context and emit diagnostics; suppression and allowlists
/// are applied by the driver.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  virtual void Check(const ParsedFile& file, const LintContext& ctx,
                     std::vector<Diagnostic>* out) const = 0;
};

/// All built-in rules: discarded-status, unchecked-stream,
/// banned-functions, banned-unseeded-rng, raw-owning-new, include-hygiene,
/// metrics-naming, lock-scope, deadline-propagation,
/// lock-held-blocking-call, atomic-ordering-audit, result-unwrap-check,
/// guarded-field-access, requires-not-held, lock-order-cycle.
std::vector<std::unique_ptr<Rule>> BuildAllRules();

/// Scans one lexed file for Status/Result-returning declarations
/// (the pre-pass behind LintContext::status_functions).
void CollectStatusFunctions(const LexedFile& file,
                            std::set<std::string>* names);

/// Scans one lexed file for functions declared with a Deadline parameter
/// (the pre-pass behind LintContext::deadline_functions). Works on raw
/// tokens so pure declarations (`virtual ... = 0;`) are collected too.
void CollectDeadlineFunctions(const LexedFile& file,
                              std::set<std::string>* names);

/// Extracts one file's thread-safety facts in serialized form so the
/// driver can cache them and merge them into the LintContext.
///
/// `core_facts` are declaration facts that other files' diagnostics can
/// depend on, so they take part in the driver's whole-context cache
/// fingerprint:
///   "gf <Class::field> <mutex>"   guarded-field declaration
///   "rq <fnkey> <m1,m2>"          REQUIRES attachment (mutexes as written)
///   "aq <fnkey> <qm1,qm2>"        ACQUIRE attachment (qualified nodes)
/// Function keys are emitted both plain ("GetFamily") and class-qualified
/// ("MetricsRegistry::GetFamily").
///
/// `edge_facts` describe this file's contribution to the global lock
/// acquisition-order graph (resolved against the merged context by
/// ResolveEdgeFacts; excluded from the fingerprint):
///   "le <from> <to> <line>"          direct nested-region edge
///   "hc <held> <callee> <line>"      call made while <held> was held
///   "fl <class|-> <fn> <qm> <line>"  fn's body acquires <qm>
/// Lines carrying NOLINT(cyqr-lock-order-cycle) are excluded at
/// collection time, which keeps suppression sound for cache-hit files.
void CollectThreadSafetyFacts(const ParsedFile& file,
                              std::set<std::string>* core_facts,
                              std::vector<std::string>* edge_facts);

/// Merges one file's serialized core facts into the context maps.
void MergeThreadSafetyFacts(const std::set<std::string>& core_facts,
                            LintContext* ctx);

/// Resolves one file's serialized edge facts against the merged
/// requires/acquire maps and appends the resulting lock-order edges.
/// Call only after every file's core facts have been merged.
void ResolveEdgeFacts(const std::string& file,
                      const std::vector<std::string>& edge_facts,
                      LintContext* ctx);

/// The whole-tree lock-order-cycle pass: finds strongly connected
/// components in the merged acquisition-order graph and reports each
/// cycle once, with the full witness path (every edge's file:line) in the
/// message. Deterministic: edges are deduplicated and ordered before
/// detection. Returns unsuppressed-but-unfiltered diagnostics; the caller
/// applies allowlists.
std::vector<Diagnostic> CheckLockOrderCycles(const LintContext& ctx);

struct LintOptions {
  /// When non-empty, only rules named here run.
  std::set<std::string> enabled_rules;
  /// rule name -> path substrings exempt from that rule.
  std::map<std::string, std::vector<std::string>> allow;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // Sorted by (file, line, rule).
  int files_scanned = 0;
  std::vector<std::string> errors;  // Unreadable paths etc.
};

/// Cumulative per-rule wall time, indexed in lockstep with the rules
/// vector passed to AnalyzeFile. Thread-safe: workers add from all lanes.
class RuleTimings {
 public:
  explicit RuleTimings(size_t rule_count) : nanos_(rule_count) {}
  void Add(size_t rule_index, int64_t nanos) {
    // ordering: relaxed — stats tally; nothing is published through it and
    // the driver reads it only after the worker pool has drained.
    nanos_[rule_index].fetch_add(nanos, std::memory_order_relaxed);
  }
  int64_t nanos(size_t rule_index) const {
    // ordering: relaxed — stat snapshot for reporting; read after Drain().
    return nanos_[rule_index].load(std::memory_order_relaxed);
  }
  size_t size() const { return nanos_.size(); }

 private:
  std::vector<std::atomic<int64_t>> nanos_;
};

/// Runs every enabled rule over one parsed file, dropping
/// NOLINT-suppressed and allowlisted findings. The per-file unit of work
/// shared by RunLint and the parallel driver. When `timings` is given it
/// accumulates each rule's wall time (same indexing as `rules`).
void AnalyzeFile(const ParsedFile& file, const LintContext& ctx,
                 const LintOptions& options,
                 const std::vector<std::unique_ptr<Rule>>& rules,
                 std::vector<Diagnostic>* out, RuleTimings* timings = nullptr);

/// True when `file` matches an `--allow=rule:fragment` exemption.
bool IsAllowlisted(const LintOptions& options, const std::string& rule,
                   const std::string& file);

/// Lints every C++ source file under `paths` (files or directories,
/// recursively; .h/.hpp/.cc/.cpp). Two passes: collect cross-file facts,
/// then run rules, dropping NOLINT-suppressed and allowlisted findings.
/// Serial convenience wrapper over the driver in driver.h.
LintResult RunLint(const std::vector<std::string>& paths,
                   const LintOptions& options);

/// Renders diagnostics as "file:line: [rule] message" lines, or as a JSON
/// array of {file, line, rule, message} objects.
std::string FormatText(const LintResult& result);
std::string FormatJson(const LintResult& result);

/// Renders the result as a SARIF 2.1.0 log (one run, every built-in rule
/// listed in the tool component) for GitHub code scanning upload.
std::string FormatSarif(const LintResult& result);

/// Seeds LintContext with the core factory/propagation names that must be
/// recognized even when core/status.h is outside the scan set.
void SeedContext(LintContext* ctx);

}  // namespace cyqr_lint

#endif  // CYQR_LINT_LINT_H_
