#ifndef CYQR_LINT_DRIVER_H_
#define CYQR_LINT_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "lint.h"

namespace cyqr_lint {

/// The production front end around the per-file analysis: parallel
/// lex/analyze waves on the project's own cyqr::ThreadPool (the linter
/// dogfoods the serving substrate it lints), a content-hash incremental
/// cache so repeated tree-gate runs only re-analyze changed files, and a
/// span-based --fix engine for the mechanical rules.
struct DriverOptions {
  LintOptions lint;
  /// Worker threads; <= 0 means hardware_concurrency (min 1).
  int jobs = 0;
  /// Path of the incremental cache file; empty disables caching.
  std::string cache_path;
  /// Path substrings excluded from the scan entirely (fixtures etc.).
  std::vector<std::string> exclude;
  /// Apply mechanical fixes attached to diagnostics, rewriting files.
  bool fix = false;
  /// Compute fixes and render them as a diff instead of writing files.
  bool fix_dry_run = false;
  /// Rules for which --fix synthesizes a NOLINTNEXTLINE(cyqr-<rule>)
  /// suppression (with a TODO justification) at each finding.
  std::vector<std::string> fix_nolint_rules;
  /// Test hook: called after a fix temp file is written and fsynced,
  /// just before the rename commits it. A test that _exits here proves a
  /// mid-fix kill leaves the original file intact.
  std::function<void(const std::string& tmp_path)> on_fix_tmp_synced;
};

struct DriverStats {
  int files_total = 0;      ///< Files discovered after excludes.
  int files_analyzed = 0;   ///< Lexed + rules run this invocation.
  int files_from_cache = 0; ///< Diagnostics reused from the cache.
  int files_fixed = 0;      ///< Files rewritten (or diffed) by --fix.
  int jobs = 1;             ///< Worker threads actually used.
  bool cache_valid = false; ///< Cache fingerprint matched this run.
  /// Cumulative wall time per rule in milliseconds, in rule order
  /// (summed across workers, so totals can exceed wall clock).
  std::vector<std::pair<std::string, double>> rule_millis;
};

struct DriverResult {
  LintResult lint;
  DriverStats stats;
  /// Under --fix-dry-run: one "path:line: -/+ text" entry per edit.
  std::string fix_diff;
};

DriverResult RunDriver(const std::vector<std::string>& paths,
                       const DriverOptions& options);

/// Files or directories -> sorted unique list of lintable source files
/// (.h/.hpp/.cc/.cpp), dropping any whose path contains an `exclude`
/// fragment.
std::vector<std::string> ExpandPaths(const std::vector<std::string>& paths,
                                     const std::vector<std::string>& exclude,
                                     std::vector<std::string>* errors);

bool ReadFileToString(const std::string& path, std::string* out);

/// FNV-1a 64-bit — the cache's content hash.
uint64_t HashContent(const std::string& data);

/// Applies line-span edits to `source`. Edits are applied in descending
/// line order so an edit can never shift the span of one still pending;
/// kInsertLineBefore lines inherit the indentation of the line they are
/// inserted before when `text` itself starts at column zero.
std::string ApplyFixes(const std::string& source,
                       std::vector<FixEdit> edits);

std::string FormatStats(const DriverStats& stats);

}  // namespace cyqr_lint

#endif  // CYQR_LINT_DRIVER_H_
