#include "rules.h"

namespace cyqr_lint {

namespace {

/// File-stream types whose every use must be followed by an error check.
/// String streams are deliberately excluded: they fail only on malformed
/// extraction, which the project handles through parsing Status paths.
bool IsFileStreamType(const std::string& ident) {
  return ident == "ifstream" || ident == "ofstream" || ident == "fstream";
}

bool IsStateProbe(const std::string& ident) {
  return ident == "fail" || ident == "good" || ident == "bad" ||
         ident == "eof" || ident == "is_open" || ident == "rdstate";
}

class UncheckedStreamRule : public Rule {
 public:
  const char* name() const override { return "unchecked-stream"; }

  void Check(const ParsedFile& file, const LintContext& /*ctx*/,
             std::vector<Diagnostic>* out) const override {
    const std::vector<Token>& toks = file.lex.tokens;
    std::vector<bool> in_condition;
    MarkValueUseContexts(toks, &in_condition);

    // Track brace depth so a stream's "scope region" runs from its
    // declaration to the close of the enclosing block.
    std::vector<int> depth_at(toks.size(), 0);
    int depth = 0;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (IsPunct(toks, i, "{")) ++depth;
      if (IsPunct(toks, i, "}")) depth = depth > 0 ? depth - 1 : 0;
      depth_at[i] = depth;
    }

    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      // Declaration shape: std :: (i|o)fstream NAME ...
      if (!IsIdent(toks, i, "std") || !IsPunct(toks, i + 1, "::")) continue;
      if (toks[i + 2].kind != TokKind::kIdent ||
          !IsFileStreamType(toks[i + 2].text)) {
        continue;
      }
      size_t name_idx = i + 3;
      // Skip reference/pointer declarators (parameters like
      // `std::ifstream& in` are the caller's responsibility).
      if (IsPunct(toks, name_idx, "&") || IsPunct(toks, name_idx, "*")) {
        continue;
      }
      if (name_idx >= toks.size() ||
          toks[name_idx].kind != TokKind::kIdent) {
        continue;  // e.g. a cast or template argument, not a declaration.
      }
      const std::string& var = toks[name_idx].text;
      // Region: until the enclosing block closes.
      const int decl_depth = depth_at[name_idx];
      size_t region_end = toks.size();
      for (size_t j = name_idx + 1; j < toks.size(); ++j) {
        if (depth_at[j] < decl_depth) {
          region_end = j;
          break;
        }
      }
      if (HasCheck(toks, in_condition, name_idx + 1, region_end, var)) {
        continue;
      }
      Diagnostic d;
      d.file = file.lex.path;
      d.line = toks[name_idx].line;
      d.rule = name();
      d.message = "stream '" + var +
                  "' is never checked after use; test .fail()/.good()/"
                  ".bad()/.is_open() or use it as a condition";
      out->push_back(std::move(d));
    }
  }

 private:
  /// A check is any state probe on the variable, a negation, or the
  /// variable appearing inside an if/while/for condition (stream-to-bool
  /// or `while (std::getline(var, ...))`).
  static bool HasCheck(const std::vector<Token>& toks,
                       const std::vector<bool>& in_condition, size_t begin,
                       size_t end, const std::string& var) {
    for (size_t j = begin; j < end; ++j) {
      if (toks[j].kind != TokKind::kIdent || toks[j].text != var) continue;
      // `obj.var` / `obj->var()` is a member of something else, not this
      // stream variable.
      if (j > 0 && (IsPunct(toks, j - 1, ".") || IsPunct(toks, j - 1, "->"))) {
        continue;
      }
      if (in_condition[j]) return true;
      if (IsPunct(toks, j + 1, ".") && j + 2 < toks.size() &&
          toks[j + 2].kind == TokKind::kIdent &&
          IsStateProbe(toks[j + 2].text)) {
        return true;
      }
      if (j > 0 && IsPunct(toks, j - 1, "!")) return true;
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<Rule> MakeUncheckedStreamRule() {
  return std::make_unique<UncheckedStreamRule>();
}

}  // namespace cyqr_lint
