#include <algorithm>

#include "rules.h"

namespace cyqr_lint {

namespace {

std::string StripThis(const std::string& path) {
  if (path.rfind("this->", 0) == 0) return path.substr(6);
  return path;
}

bool RegionHolds(const LockRegion& region, const std::string& needed) {
  for (const std::string& m : region.mutexes) {
    if (StripThis(m) == needed) return true;
  }
  return false;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// True when `receiver.guard` or `receiver->guard` appears anywhere in the
/// function body — the same type-blindness safety valve as the
/// guarded-field-access rule: a cross-object call is only checked when the
/// function shows evidence the receiver carries the required mutex, so an
/// unrelated class whose method shares a name with an annotated one does
/// not produce noise.
bool FnMentionsGuard(const FunctionDef& fn, const std::vector<Token>& toks,
                     const std::string& receiver, const std::string& guard) {
  for (size_t i = fn.body_begin + 1; i + 2 < fn.body_end; ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != receiver) continue;
    if (!IsPunct(toks, i + 1, ".") && !IsPunct(toks, i + 1, "->")) continue;
    if (toks[i + 2].kind == TokKind::kIdent && toks[i + 2].text == guard) {
      return true;
    }
  }
  return false;
}

/// Enforces CYQR_REQUIRES at call sites: calling a function that requires
/// a mutex without an enclosing lock region holding it (and without the
/// caller itself declaring CYQR_REQUIRES on the same mutex) is a race —
/// the callee touches guarded state assuming the caller serialized.
class RequiresNotHeldRule : public Rule {
 public:
  const char* name() const override { return "requires-not-held"; }

  void Check(const ParsedFile& file, const LintContext& ctx,
             std::vector<Diagnostic>* out) const override {
    if (ctx.requires_functions.empty()) return;
    const std::vector<Token>& toks = file.lex.tokens;
    for (const FunctionDef& fn : file.functions) {
      if (!fn.class_name.empty() && fn.name == fn.class_name) continue;
      std::vector<std::string> held_always;
      for (const std::string& m : fn.requires_locks) {
        held_always.push_back(StripThis(m));
      }
      auto merge = [&held_always, &ctx](const std::string& key) {
        auto it = ctx.requires_functions.find(key);
        if (it == ctx.requires_functions.end()) return;
        for (const std::string& m : it->second) {
          if (!Contains(held_always, StripThis(m))) {
            held_always.push_back(StripThis(m));
          }
        }
      };
      if (!fn.class_name.empty()) {
        merge(fn.class_name + "::" + fn.name);
      } else {
        merge(fn.name);
      }

      for (const CallSite& call : fn.calls) {
        const bool other_object = call.member_call &&
                                  !call.receiver.empty() &&
                                  call.receiver != "this";
        // Same-object calls prefer the qualified key (a method named like
        // a free function must not inherit its contract); cross-object
        // calls can only match by plain name.
        auto it = ctx.requires_functions.end();
        if (!other_object && !fn.class_name.empty()) {
          it = ctx.requires_functions.find(fn.class_name + "::" +
                                           call.callee);
        }
        if (it == ctx.requires_functions.end()) {
          it = ctx.requires_functions.find(call.callee);
        }
        if (it == ctx.requires_functions.end()) continue;
        for (const std::string& m : it->second) {
          const std::string plain = StripThis(m);
          std::string needed = plain;
          if (other_object) {
            if (!FnMentionsGuard(fn, toks, call.receiver, plain)) continue;
            needed = call.receiver + toks[call.name_index - 1].text + plain;
          }
          bool held = !other_object && Contains(held_always, plain);
          if (!held) {
            for (const LockRegion& region : fn.locks) {
              if (call.name_index >= region.begin &&
                  call.name_index < region.end &&
                  RegionHolds(region, needed)) {
                held = true;
                break;
              }
            }
          }
          if (held) continue;
          Diagnostic d;
          d.file = file.lex.path;
          d.line = call.line;
          d.rule = name();
          d.message = "'" + call.callee + "' declares CYQR_REQUIRES(" + m +
                      ") but no enclosing lock region holds '" + needed +
                      "'; lock it before the call or propagate "
                      "CYQR_REQUIRES to the caller";
          out->push_back(std::move(d));
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeRequiresNotHeldRule() {
  return std::make_unique<RequiresNotHeldRule>();
}

}  // namespace cyqr_lint
