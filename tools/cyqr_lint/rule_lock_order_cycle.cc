#include "rules.h"

namespace cyqr_lint {

namespace {

/// Whole-tree deadlock detection over the global lock acquisition-order
/// graph. The per-file Check is intentionally empty: edges are collected
/// per file by CollectThreadSafetyFacts (cache-safe, NOLINT applied at
/// collection time) and the cycle search runs once over the merged graph
/// in the driver (CheckLockOrderCycles in lint.cc) after every file's
/// facts are in. This registration gives the pass its rule name for
/// --list-rules, --rule=, --allow=, and NOLINT(cyqr-lock-order-cycle).
class LockOrderCycleRule : public Rule {
 public:
  const char* name() const override { return "lock-order-cycle"; }

  void Check(const ParsedFile& file, const LintContext& ctx,
             std::vector<Diagnostic>* out) const override {
    (void)file;
    (void)ctx;
    (void)out;
  }
};

}  // namespace

std::unique_ptr<Rule> MakeLockOrderCycleRule() {
  return std::make_unique<LockOrderCycleRule>();
}

}  // namespace cyqr_lint
