#include "rules.h"

#include <algorithm>

namespace cyqr_lint {

namespace {

/// Read-modify-write operations where memory_order_relaxed changes
/// behaviour subtly: the RMW itself stays atomic, but it stops ordering
/// the surrounding loads/stores, which is almost never what a counter
/// consumer that also reads other state wants.
bool IsRmwMember(const std::string& callee) {
  return callee == "fetch_add" || callee == "fetch_sub" ||
         callee == "fetch_and" || callee == "fetch_or" ||
         callee == "fetch_xor" || callee == "exchange" ||
         callee == "compare_exchange_weak" ||
         callee == "compare_exchange_strong";
}

/// Finds the nearest enclosing member call for a token index, if the
/// memory_order token sits inside some call's argument list.
const CallSite* EnclosingCall(const FunctionDef& fn, size_t tok_index) {
  const CallSite* best = nullptr;
  for (const CallSite& call : fn.calls) {
    if (tok_index <= call.open_paren || tok_index >= call.close_paren) {
      continue;
    }
    // Innermost call wins: smaller span.
    if (best == nullptr ||
        call.close_paren - call.open_paren <
            best->close_paren - best->open_paren) {
      best = &call;
    }
  }
  return best;
}

/// Finds the first line of the statement containing token `i`: the line
/// of the token just after the previous ';', '{', or '}'. A wrapped call
/// (CAS with separate success/failure orders on their own lines) is
/// justified by one comment above the statement, not one per line.
int StatementFirstLine(const std::vector<Token>& toks, size_t i) {
  for (size_t j = i; j > 0;) {
    --j;
    if (toks[j].kind == TokKind::kPunct &&
        (toks[j].text == ";" || toks[j].text == "{" ||
         toks[j].text == "}")) {
      return toks[j + 1].line;
    }
  }
  return toks[i].line;
}

/// Every explicit std::memory_order_* argument is a claim about which
/// reorderings are safe. The claim must be written down: a comment
/// containing "ordering:" on the same line, or within the two lines
/// above the statement it belongs to (the lexer records every line of a
/// comment carrying the marker). Bare relaxed on an RMW gets a sharper
/// message because it is the most commonly wrong strength.
class AtomicOrderingAuditRule : public Rule {
 public:
  const char* name() const override { return "atomic-ordering-audit"; }

  void Check(const ParsedFile& file, const LintContext& /*ctx*/,
             std::vector<Diagnostic>* out) const override {
    const std::vector<Token>& toks = file.lex.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const std::string& t = toks[i].text;
      if (t.rfind("memory_order_", 0) != 0 && t != "memory_order") {
        continue;
      }
      // `memory_order::relaxed` spelling: fold the scoped enum name in.
      std::string order = t;
      if (t == "memory_order" && IsPunct(toks, i + 1, "::") &&
          i + 2 < toks.size() && toks[i + 2].kind == TokKind::kIdent) {
        order = "memory_order_" + toks[i + 2].text;
      }
      if (order == "memory_order") continue;  // Type use, not a constant.
      const int line = toks[i].line;
      const int stmt_line = std::min(StatementFirstLine(toks, i), line);
      bool justified = false;
      for (int l = stmt_line - 2; l <= line; ++l) {
        if (file.lex.ordering_comment_lines.count(l) > 0) {
          justified = true;
          break;
        }
      }
      if (justified) continue;

      Diagnostic d;
      d.file = file.lex.path;
      d.line = line;
      d.rule = name();
      const CallSite* call = nullptr;
      for (const FunctionDef& fn : file.functions) {
        if (i > fn.body_begin && i < fn.body_end) {
          call = EnclosingCall(fn, i);
          if (call != nullptr) break;
        }
      }
      if (order == "memory_order_relaxed" && call != nullptr &&
          IsRmwMember(call->callee)) {
        d.message = "relaxed " + call->callee +
                    " orders nothing around it; add a '// ordering:' "
                    "comment proving no nearby load/store depends on "
                    "this RMW, or strengthen it";
      } else {
        d.message = "explicit " + order +
                    " needs a '// ordering:' justification comment on "
                    "this line or the two lines above";
      }
      out->push_back(std::move(d));
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeAtomicOrderingAuditRule() {
  return std::make_unique<AtomicOrderingAuditRule>();
}

}  // namespace cyqr_lint
