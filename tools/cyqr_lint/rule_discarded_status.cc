#include "rules.h"

namespace cyqr_lint {

namespace {

class DiscardedStatusRule : public Rule {
 public:
  const char* name() const override { return "discarded-status"; }

  void Check(const ParsedFile& file, const LintContext& ctx,
             std::vector<Diagnostic>* out) const override {
    const std::vector<Token>& toks = file.lex.tokens;
    std::vector<bool> value_use;
    MarkValueUseContexts(toks, &value_use);

    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      if (ctx.status_functions.count(toks[i].text) == 0) continue;
      if (!IsPunct(toks, i + 1, "(")) continue;
      if (value_use[i]) continue;  // Condition or return expression.
      // Exclude declarations/definitions: `Status Save(...)` has a type
      // name directly before the function name, which breaks the "chain
      // then statement boundary" shape below only if the type itself
      // looks like a chain — so explicitly skip when the close paren is
      // followed by anything other than ';' (e.g. '{' of a body).
      const size_t close = MatchForward(toks, i + 1, "(", ")");
      if (close >= toks.size() || !IsPunct(toks, close + 1, ";")) continue;

      // The call's result is discarded only when the full statement is
      // nothing but a qualifier chain ending in this call. The chain must
      // strictly alternate separator/identifier (obj.member, ns::Func):
      // an identifier directly before the name means this is a
      // declaration (`Status Save(...)`), not a call.
      size_t s = i;
      while (s >= 2 && toks[s - 1].kind == TokKind::kPunct &&
             (toks[s - 1].text == "::" || toks[s - 1].text == "." ||
              toks[s - 1].text == "->") &&
             toks[s - 2].kind == TokKind::kIdent) {
        s -= 2;
      }
      if (!AtStatementBoundary(toks, s)) continue;

      Diagnostic d;
      d.file = file.lex.path;
      d.line = toks[i].line;
      d.rule = name();
      d.message = "result of Status/Result-returning '" + toks[i].text +
                  "' is discarded; check it, propagate it, or cast to "
                  "(void) with justification";
      out->push_back(std::move(d));
    }
  }

 private:
  /// True when a statement can begin at token index `s`.
  static bool AtStatementBoundary(const std::vector<Token>& toks,
                                  size_t s) {
    if (s == 0) return true;
    const Token& prev = toks[s - 1];
    if (prev.kind == TokKind::kDirective) return true;
    if (prev.kind == TokKind::kIdent) {
      return prev.text == "else" || prev.text == "do";
    }
    if (prev.kind != TokKind::kPunct) return false;
    if (prev.text == ";" || prev.text == "{" || prev.text == "}" ||
        prev.text == ":") {
      return true;
    }
    if (prev.text == ")") {
      // A braceless `if (...) Foo();` body: the paren group must be the
      // condition of a control-flow keyword. Anything else — a (void)
      // cast, a C-style cast, a macro call — is not treated as a
      // discard site.
      int depth = 0;
      for (size_t j = s - 1; j > 0; --j) {
        if (IsPunct(toks, j, ")")) ++depth;
        if (IsPunct(toks, j, "(")) {
          if (--depth == 0) {
            const Token& before = toks[j - 1];
            return before.kind == TokKind::kIdent &&
                   (before.text == "if" || before.text == "while" ||
                    before.text == "for");
          }
        }
      }
      return false;
    }
    return false;
  }
};

}  // namespace

void CollectStatusFunctions(const LexedFile& file,
                            std::set<std::string>* names) {
  const std::vector<Token>& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    size_t after_type = 0;
    if (toks[i].text == "Status") {
      // Optionally qualified: cyqr::Status. A following "::" means this
      // is a qualified call (Status::OK), not a return type.
      after_type = i + 1;
      if (IsPunct(toks, after_type, "::")) continue;
    } else if (toks[i].text == "Result" && IsPunct(toks, i + 1, "<")) {
      // Result<...>: match the template argument list by bracket count
      // (the lexer never fuses ">>", so nesting counts cleanly).
      const size_t close = MatchForward(toks, i + 1, "<", ">");
      if (close >= toks.size()) continue;
      after_type = close + 1;
    } else {
      continue;
    }
    // `Status Name(` / `Result<T> Name(` declares/defines Name.
    if (after_type < toks.size() &&
        toks[after_type].kind == TokKind::kIdent &&
        toks[after_type].text != "operator" &&
        IsPunct(toks, after_type + 1, "(")) {
      names->insert(toks[after_type].text);
    }
  }
}

std::unique_ptr<Rule> MakeDiscardedStatusRule() {
  return std::make_unique<DiscardedStatusRule>();
}

}  // namespace cyqr_lint
