#include <algorithm>

#include "rules.h"

namespace cyqr_lint {

namespace {

/// Strips an explicit `this->` so "this->mu_" and "mu_" compare equal.
std::string StripThis(const std::string& path) {
  if (path.rfind("this->", 0) == 0) return path.substr(6);
  return path;
}

bool RegionHolds(const LockRegion& region, const std::string& needed) {
  for (const std::string& m : region.mutexes) {
    if (StripThis(m) == needed) return true;
  }
  return false;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// True when the guarded-field access whose field identifier sits at
/// token `i` mutates the field: it is followed by an assignment or
/// compound-assignment operator, or bracketed by ++/-- (prefix forms
/// look before the start of the whole access expression, which for a
/// qualified access is the receiver two tokens back).
bool IsWriteAccess(const std::vector<Token>& toks, size_t i, bool qualified) {
  static const char* kMutators[] = {"=", "+=", "-=", "*=", "/=", "++", "--"};
  for (const char* op : kMutators) {
    if (IsPunct(toks, i + 1, op)) return true;
  }
  const size_t start = qualified ? i - 2 : i;
  if (start > 0 &&
      (IsPunct(toks, start - 1, "++") || IsPunct(toks, start - 1, "--"))) {
    return true;
  }
  return false;
}

/// True when `receiver.guard` or `receiver->guard` appears anywhere in the
/// function body. The receiver-qualified check is type-blind (the lexer does
/// not know what type `out` in `out.response` is), so it only fires when the
/// function itself shows evidence the receiver carries the guard — a function
/// that never touches `out.mu` is almost certainly handling an unrelated
/// struct that happens to share a field name with an annotated class.
bool FnMentionsGuard(const FunctionDef& fn, const std::vector<Token>& toks,
                     const std::string& receiver, const std::string& guard) {
  for (size_t i = fn.body_begin + 1; i + 2 < fn.body_end; ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != receiver) continue;
    if (!IsPunct(toks, i + 1, ".") && !IsPunct(toks, i + 1, "->")) continue;
    if (toks[i + 2].kind == TokKind::kIdent && toks[i + 2].text == guard) {
      return true;
    }
  }
  return false;
}

/// Enforces CYQR_GUARDED_BY: a guarded field may only be touched inside a
/// lock region holding its mutex, or from a function that declares
/// CYQR_REQUIRES on that mutex. A std::shared_lock region is a reader
/// hold: reads of the guarded field are legal under it, but writes still
/// demand an exclusive region (lock_guard/unique_lock/scoped_lock) or a
/// CYQR_REQUIRES declaration. Constructors/destructors are exempt — the
/// object is not shared while it is being built or torn down.
class GuardedFieldAccessRule : public Rule {
 public:
  const char* name() const override { return "guarded-field-access"; }

  void Check(const ParsedFile& file, const LintContext& ctx,
             std::vector<Diagnostic>* out) const override {
    if (ctx.guarded_fields.empty()) return;
    const std::vector<Token>& toks = file.lex.tokens;
    for (const FunctionDef& fn : file.functions) {
      if (!fn.class_name.empty() && fn.name == fn.class_name) continue;
      const std::vector<std::string> held_always = HeldForWholeBody(fn, ctx);
      for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
        if (toks[i].kind != TokKind::kIdent) continue;
        // A name followed by '(' is a call, the requires-not-held rule's
        // territory (fields holding callables are out of model).
        if (IsPunct(toks, i + 1, "(")) continue;
        const std::string& ident = toks[i].text;

        bool qualified = i > fn.body_begin + 1 &&
                         (IsPunct(toks, i - 1, ".") ||
                          IsPunct(toks, i - 1, "->"));
        std::string receiver;
        if (qualified && i >= 2 && toks[i - 2].kind == TokKind::kIdent) {
          receiver = toks[i - 2].text;
        }
        if (qualified && receiver == "this") {
          qualified = false;  // this->field is a plain member access.
        }

        std::string mutex;   // Guard as annotated (plain member name).
        std::string needed;  // Path a lock region must mention.
        if (!qualified) {
          auto it = ctx.guarded_fields.end();
          if (!fn.class_name.empty()) {
            it = ctx.guarded_fields.find(fn.class_name + "::" + ident);
          }
          if (it == ctx.guarded_fields.end()) {
            it = ctx.guarded_fields.find("::" + ident);
          }
          if (it == ctx.guarded_fields.end()) continue;
          mutex = it->second;
          needed = StripThis(mutex);
        } else {
          if (receiver.empty()) continue;  // Chained access: give up.
          // Another object's field: any class annotating this field name
          // tells us its guard; the receiver must hold receiver->guard.
          const std::string suffix = "::" + ident;
          for (const auto& entry : ctx.guarded_fields) {
            const std::string& key = entry.first;
            if (key.size() > suffix.size() &&
                key.compare(key.size() - suffix.size(), suffix.size(),
                            suffix) == 0) {
              mutex = entry.second;
              break;
            }
          }
          if (mutex.empty()) continue;
          if (!FnMentionsGuard(fn, toks, receiver, StripThis(mutex))) {
            continue;  // No evidence the receiver is of the annotated type.
          }
          needed = receiver + toks[i - 1].text + StripThis(mutex);
        }

        bool held_exclusive = Contains(held_always, StripThis(mutex));
        bool held_shared = false;
        if (!held_exclusive) {
          for (const LockRegion& region : fn.locks) {
            if (i >= region.begin && i < region.end &&
                RegionHolds(region, needed)) {
              if (region.shared) {
                held_shared = true;
              } else {
                held_exclusive = true;
                break;
              }
            }
          }
        }
        if (held_exclusive) continue;
        const bool is_write = IsWriteAccess(toks, i, qualified);
        if (held_shared && !is_write) continue;
        Diagnostic d;
        d.file = file.lex.path;
        d.line = toks[i].line;
        d.rule = name();
        const std::string shown =
            qualified ? receiver + "->" + ident : ident;
        if (held_shared) {
          d.message = "guarded field '" + shown + "' (CYQR_GUARDED_BY " +
                      mutex + ") written while holding '" + needed +
                      "' only in shared (reader) mode; writes need an "
                      "exclusive hold — use std::unique_lock or "
                      "std::lock_guard for this region";
        } else {
          d.message = "guarded field '" + shown + "' (CYQR_GUARDED_BY " +
                      mutex + ") accessed without holding '" + needed +
                      "'; wrap the access in a lock region or declare "
                      "CYQR_REQUIRES(" +
                      mutex + ") on the function";
        }
        out->push_back(std::move(d));
      }
    }
  }

 private:
  /// Mutexes held for the whole body: the definition's own CYQR_REQUIRES
  /// plus any declaration-site REQUIRES merged into the context.
  static std::vector<std::string> HeldForWholeBody(const FunctionDef& fn,
                                                   const LintContext& ctx) {
    std::vector<std::string> held;
    for (const std::string& m : fn.requires_locks) {
      if (!Contains(held, StripThis(m))) held.push_back(StripThis(m));
    }
    auto merge = [&held, &ctx](const std::string& key) {
      auto it = ctx.requires_functions.find(key);
      if (it == ctx.requires_functions.end()) return;
      for (const std::string& m : it->second) {
        if (!Contains(held, StripThis(m))) held.push_back(StripThis(m));
      }
    };
    if (!fn.class_name.empty()) {
      merge(fn.class_name + "::" + fn.name);
    } else {
      merge(fn.name);
    }
    return held;
  }
};

}  // namespace

std::unique_ptr<Rule> MakeGuardedFieldAccessRule() {
  return std::make_unique<GuardedFieldAccessRule>();
}

}  // namespace cyqr_lint
