#include "rules.h"

#include <set>

namespace cyqr_lint {

std::vector<std::unique_ptr<Rule>> BuildAllRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(MakeDiscardedStatusRule());
  rules.push_back(MakeUncheckedStreamRule());
  rules.push_back(MakeBannedFunctionsRule());
  rules.push_back(MakeUnseededRngRule());
  rules.push_back(MakeRawOwningNewRule());
  rules.push_back(MakeIncludeHygieneRule());
  rules.push_back(MakeMetricsNamingRule());
  rules.push_back(MakeLockScopeRule());
  rules.push_back(MakeDeadlinePropagationRule());
  rules.push_back(MakeLockHeldBlockingCallRule());
  rules.push_back(MakeAtomicOrderingAuditRule());
  rules.push_back(MakeResultUnwrapCheckRule());
  rules.push_back(MakeGuardedFieldAccessRule());
  rules.push_back(MakeRequiresNotHeldRule());
  rules.push_back(MakeLockOrderCycleRule());
  return rules;
}

bool IsControlKeyword(const std::string& ident) {
  static const std::set<std::string> kKeywords = {
      "if",       "while",     "for",    "switch",  "catch",
      "return",   "co_return", "sizeof", "alignof", "decltype",
      "operator", "throw",     "new",    "delete",  "static_assert",
      "typeid",   "alignas",   "noexcept"};
  return kKeywords.count(ident) > 0;
}

bool IsIdent(const std::vector<Token>& toks, size_t i, const char* text) {
  return i < toks.size() && toks[i].kind == TokKind::kIdent &&
         toks[i].text == text;
}

bool IsPunct(const std::vector<Token>& toks, size_t i, const char* text) {
  return i < toks.size() && toks[i].kind == TokKind::kPunct &&
         toks[i].text == text;
}

size_t MatchForward(const std::vector<Token>& toks, size_t open,
                    const char* open_text, const char* close_text) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks, i, open_text)) {
      ++depth;
    } else if (IsPunct(toks, i, close_text)) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

void MarkValueUseContexts(const std::vector<Token>& toks,
                          std::vector<bool>* flags) {
  flags->assign(toks.size(), false);
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t == "if" || t == "while" || t == "for" || t == "switch") {
      // Mark the parenthesized condition.
      size_t open = i + 1;
      if (IsIdent(toks, open, "constexpr")) ++open;  // if constexpr (...)
      if (!IsPunct(toks, open, "(")) continue;
      const size_t close = MatchForward(toks, open, "(", ")");
      for (size_t j = open; j <= close && j < toks.size(); ++j) {
        (*flags)[j] = true;
      }
    } else if (t == "return" || t == "co_return") {
      // Mark up to the statement-ending ';' at this nesting level.
      int paren = 0;
      for (size_t j = i; j < toks.size(); ++j) {
        (*flags)[j] = true;
        if (IsPunct(toks, j, "(")) ++paren;
        if (IsPunct(toks, j, ")")) --paren;
        if (paren == 0 &&
            (IsPunct(toks, j, ";") || IsPunct(toks, j, "{"))) {
          break;
        }
      }
    }
  }
}

}  // namespace cyqr_lint
