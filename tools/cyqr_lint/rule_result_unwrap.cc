#include "rules.h"

namespace cyqr_lint {

namespace {

/// `Result<T>::value()` CYQR_CHECK-fails on an error result — it is the
/// moral equivalent of unwrap(). Calling it without a dominating ok()
/// check in the same function turns every propagated error into a
/// process abort. The flow-aware shape: track every local/parameter of
/// type Result<...>, and require a `name.ok()` or `name.status()`
/// mention at an earlier token index than any `name.value()`.
class ResultUnwrapCheckRule : public Rule {
 public:
  const char* name() const override { return "result-unwrap-check"; }

  void Check(const ParsedFile& file, const LintContext& /*ctx*/,
             std::vector<Diagnostic>* out) const override {
    const std::vector<Token>& toks = file.lex.tokens;
    for (const FunctionDef& fn : file.functions) {
      // Collect Result-typed names: parameters first...
      std::vector<std::string> result_names;
      for (const Param& p : fn.params) {
        if (p.type.find("Result") != std::string::npos && !p.name.empty()) {
          result_names.push_back(p.name);
        }
      }
      // ...then local declarations: Result < ... > NAME  (or auto NAME =
      // ... is invisible here; rules stay conservative and skip those).
      for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
        if (!IsIdent(toks, i, "Result")) continue;
        if (!IsPunct(toks, i + 1, "<")) continue;
        const size_t tclose = MatchForward(toks, i + 1, "<", ">");
        if (tclose >= fn.body_end) continue;
        if (tclose + 1 < fn.body_end &&
            toks[tclose + 1].kind == TokKind::kIdent) {
          result_names.push_back(toks[tclose + 1].text);
        }
      }
      if (result_names.empty()) continue;

      for (const std::string& rname : result_names) {
        // Token index of the first check and of each unwrap.
        size_t first_check = toks.size();
        for (size_t i = fn.body_begin + 1; i + 2 < fn.body_end; ++i) {
          if (toks[i].kind != TokKind::kIdent || toks[i].text != rname) {
            continue;
          }
          if (!IsPunct(toks, i + 1, ".") && !IsPunct(toks, i + 1, "->")) {
            continue;
          }
          const std::string& member = toks[i + 2].text;
          if (member == "ok" || member == "status") {
            if (i < first_check) first_check = i;
            continue;
          }
          if (member == "value" && IsPunct(toks, i + 3, "(") &&
              i < first_check) {
            Diagnostic d;
            d.file = file.lex.path;
            d.line = toks[i].line;
            d.rule = name();
            d.message = "'" + rname + ".value()' without a prior '" +
                        rname + ".ok()' check in '" + fn.name +
                        "'; an error result aborts here — branch on "
                        "ok() first or propagate with status()";
            out->push_back(std::move(d));
          }
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeResultUnwrapCheckRule() {
  return std::make_unique<ResultUnwrapCheckRule>();
}

}  // namespace cyqr_lint
