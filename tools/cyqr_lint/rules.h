#ifndef CYQR_LINT_RULES_H_
#define CYQR_LINT_RULES_H_

#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace cyqr_lint {

/// Shared token-walking helpers for the rule implementations. All indices
/// are positions into LexedFile::tokens.

/// True for an identifier token with exactly this text.
bool IsIdent(const std::vector<Token>& toks, size_t i, const char* text);

/// True for a punct token with exactly this text.
bool IsPunct(const std::vector<Token>& toks, size_t i, const char* text);

/// Index of the ')' matching the '(' at `open`, or toks.size() when
/// unbalanced. Also used for '{'/'}' and '<'/'>' via the bracket pair.
size_t MatchForward(const std::vector<Token>& toks, size_t open,
                    const char* open_text, const char* close_text);

/// Marks every token index that sits inside an if/while/for/switch
/// condition or a return expression — positions where using a value means
/// the value is NOT discarded. `flags` is resized to toks.size().
void MarkValueUseContexts(const std::vector<Token>& toks,
                          std::vector<bool>* flags);

/// True for identifiers that introduce control flow or otherwise can
/// never be the name of a function definition or call (if, while, return,
/// sizeof, operator, ...). Shared by the parse layer and rules.
bool IsControlKeyword(const std::string& ident);

/// Rule factories (one translation unit per rule).
std::unique_ptr<Rule> MakeDiscardedStatusRule();
std::unique_ptr<Rule> MakeUncheckedStreamRule();
std::unique_ptr<Rule> MakeBannedFunctionsRule();
std::unique_ptr<Rule> MakeUnseededRngRule();
std::unique_ptr<Rule> MakeRawOwningNewRule();
std::unique_ptr<Rule> MakeIncludeHygieneRule();
std::unique_ptr<Rule> MakeMetricsNamingRule();
std::unique_ptr<Rule> MakeLockScopeRule();
std::unique_ptr<Rule> MakeDeadlinePropagationRule();
std::unique_ptr<Rule> MakeLockHeldBlockingCallRule();
std::unique_ptr<Rule> MakeAtomicOrderingAuditRule();
std::unique_ptr<Rule> MakeResultUnwrapCheckRule();
std::unique_ptr<Rule> MakeGuardedFieldAccessRule();
std::unique_ptr<Rule> MakeRequiresNotHeldRule();
std::unique_ptr<Rule> MakeLockOrderCycleRule();

}  // namespace cyqr_lint

#endif  // CYQR_LINT_RULES_H_
