#include "rules.h"

namespace cyqr_lint {

namespace {

/// Calls that block the calling thread outright. Holding a mutex across
/// any of these turns one slow request into a convoy: every other thread
/// that needs the lock queues up behind an operation whose latency the
/// lock holder does not control.
bool IsSleepOrSystemBlocking(const std::string& callee) {
  return callee == "sleep_for" || callee == "sleep_until" ||
         callee == "sleep" || callee == "usleep" || callee == "nanosleep" ||
         callee == "system" || callee == "getline" || callee == "getchar" ||
         callee == "fgets" || callee == "fread" || callee == "fwrite";
}

/// Member calls that block (queue handoff, thread join, file open). Push
/// on a BoundedQueue never blocks by design, but it takes the queue's own
/// internal mutex — calling it while holding another lock builds a lock
/// hierarchy nobody audited; Pop blocks until an element arrives.
bool IsBlockingMemberCall(const std::string& callee) {
  return callee == "Push" || callee == "Pop" || callee == "join" ||
         callee == "open" || callee == "flush" || callee == "ServeBlocking";
}

/// Condition-variable waits atomically release the lock while sleeping —
/// that is the one sanctioned way to block "inside" a lock scope.
bool IsCvWait(const std::string& callee) {
  return callee == "wait" || callee == "wait_for" ||
         callee == "wait_until" || callee == "notify_one" ||
         callee == "notify_all";
}

class LockHeldBlockingCallRule : public Rule {
 public:
  const char* name() const override { return "lock-held-blocking-call"; }

  void Check(const ParsedFile& file, const LintContext& ctx,
             std::vector<Diagnostic>* out) const override {
    for (const FunctionDef& fn : file.functions) {
      for (const LockRegion& lock : fn.locks) {
        for (const CallSite& call : fn.calls) {
          if (call.name_index < lock.begin ||
              call.name_index >= lock.end) {
            continue;
          }
          const char* why = nullptr;
          if (IsSleepOrSystemBlocking(call.callee)) {
            why = "sleeps or does blocking I/O";
          } else if (call.member_call && IsCvWait(call.callee)) {
            continue;  // cv.wait releases the lock while blocked.
          } else if (call.member_call &&
                     IsBlockingMemberCall(call.callee)) {
            why = "can block on another thread or on I/O";
          } else if (!call.member_call &&
                     ctx.deadline_functions.count(call.callee) > 0) {
            // Deadline-taking functions are the backend/serving calls —
            // exactly the unbounded-latency work that must not run under
            // a lock.
            why = "is a deadline-bound (potentially slow) call";
          }
          if (why == nullptr) continue;
          Diagnostic d;
          d.file = file.lex.path;
          d.line = call.line;
          d.rule = name();
          d.message = "'" + call.callee + "' " + why + " while '" +
                      lock.name + "' (" + lock.guard_type + ", line " +
                      std::to_string(lock.line) +
                      ") is held; move it outside the critical section "
                      "or NOLINT with justification";
          out->push_back(std::move(d));
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeLockHeldBlockingCallRule() {
  return std::make_unique<LockHeldBlockingCallRule>();
}

}  // namespace cyqr_lint
