#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cyqr_lint {

namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

/// Files or directories -> sorted unique list of source files.
std::vector<std::string> ExpandPaths(const std::vector<std::string>& paths,
                                     std::vector<std::string>* errors) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && HasLintableExtension(it->path())) {
          files.push_back(it->path().lexically_normal().string());
        }
      }
      if (ec) errors->push_back("cannot walk directory: " + p);
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(fs::path(p).lexically_normal().string());
    } else {
      errors->push_back("no such file or directory: " + p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  *out = buf.str();
  return true;
}

bool IsAllowlisted(const LintOptions& options, const std::string& rule,
                   const std::string& file) {
  auto it = options.allow.find(rule);
  if (it == options.allow.end()) return false;
  for (const std::string& fragment : it->second) {
    if (file.find(fragment) != std::string::npos) return true;
  }
  return false;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

LintResult RunLint(const std::vector<std::string>& paths,
                   const LintOptions& options) {
  LintResult result;
  const std::vector<std::string> files =
      ExpandPaths(paths, &result.errors);

  // Pass 1: lex everything and collect cross-file facts.
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  LintContext ctx;
  // Core factory/propagation names: calls like Status::OK() or
  // v.status() must be flagged even when core/status.h is not scanned.
  ctx.status_functions = {"OK",
                          "InvalidArgument",
                          "NotFound",
                          "OutOfRange",
                          "FailedPrecondition",
                          "Internal",
                          "IoError",
                          "Unimplemented",
                          "status"};
  for (const std::string& path : files) {
    std::string source;
    if (!ReadFile(path, &source)) {
      result.errors.push_back("cannot read: " + path);
      continue;
    }
    lexed.push_back(LexFile(path, source));
    CollectStatusFunctions(lexed.back(), &ctx.status_functions);
  }
  result.files_scanned = static_cast<int>(lexed.size());

  // Pass 2: run rules, then drop suppressed / allowlisted findings.
  const std::vector<std::unique_ptr<Rule>> rules = BuildAllRules();
  for (const LexedFile& file : lexed) {
    for (const auto& rule : rules) {
      if (!options.enabled_rules.empty() &&
          options.enabled_rules.count(rule->name()) == 0) {
        continue;
      }
      std::vector<Diagnostic> found;
      rule->Check(file, ctx, &found);
      for (Diagnostic& d : found) {
        if (IsSuppressed(file, d.line, d.rule)) continue;
        if (IsAllowlisted(options, d.rule, d.file)) continue;
        result.diagnostics.push_back(std::move(d));
      }
    }
  }
  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

std::string FormatText(const LintResult& result) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    out << d.file << ':' << d.line << ": [" << d.rule << "] " << d.message
        << '\n';
  }
  return out.str();
}

std::string FormatJson(const LintResult& result) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    out << "  {\"file\": \"" << JsonEscape(d.file)
        << "\", \"line\": " << d.line << ", \"rule\": \""
        << JsonEscape(d.rule) << "\", \"message\": \""
        << JsonEscape(d.message) << "\"}";
    if (i + 1 < result.diagnostics.size()) out << ',';
    out << '\n';
  }
  out << "]\n";
  return out.str();
}

}  // namespace cyqr_lint
