#include "lint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <sstream>
#include <tuple>
#include <utility>

#include "driver.h"

namespace cyqr_lint {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Joins strings with commas ("mu_,io_mu_") for the serialized facts.
std::string JoinComma(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ',';
    out += p;
  }
  return out;
}

std::vector<std::string> SplitComma(const std::string& joined) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : joined) {
    if (c == ',') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

/// Maps a mutex expression to its node in the global lock graph. Plain
/// member names are qualified by the owning class ("mu_" in a
/// MetricsRegistry method -> "MetricsRegistry::mu_") so same-named
/// mutexes in different classes never alias; already-qualified paths
/// ("waiter->mu", "Shard::mu") pass through, with an explicit `this->`
/// prefix folded into the class qualifier.
std::string QualifyMutex(const std::string& class_name, std::string path) {
  if (path.rfind("this->", 0) == 0) path = path.substr(6);
  if (path.find("::") != std::string::npos ||
      path.find("->") != std::string::npos ||
      path.find('.') != std::string::npos) {
    return path;
  }
  if (class_name.empty()) return path;
  return class_name + "::" + path;
}

}  // namespace

bool IsAllowlisted(const LintOptions& options, const std::string& rule,
                   const std::string& file) {
  auto it = options.allow.find(rule);
  if (it == options.allow.end()) return false;
  for (const std::string& fragment : it->second) {
    if (file.find(fragment) != std::string::npos) return true;
  }
  return false;
}

void SeedContext(LintContext* ctx) {
  // Core factory/propagation names: calls like Status::OK() or
  // v.status() must be flagged even when core/status.h is not scanned.
  ctx->status_functions.insert({"OK", "InvalidArgument", "NotFound",
                                "OutOfRange", "FailedPrecondition",
                                "Internal", "IoError", "Unimplemented",
                                "status"});
}

void AnalyzeFile(const ParsedFile& file, const LintContext& ctx,
                 const LintOptions& options,
                 const std::vector<std::unique_ptr<Rule>>& rules,
                 std::vector<Diagnostic>* out, RuleTimings* timings) {
  for (size_t r = 0; r < rules.size(); ++r) {
    const auto& rule = rules[r];
    if (!options.enabled_rules.empty() &&
        options.enabled_rules.count(rule->name()) == 0) {
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    std::vector<Diagnostic> found;
    rule->Check(file, ctx, &found);
    for (Diagnostic& d : found) {
      if (IsSuppressed(file.lex, d.line, d.rule)) continue;
      if (IsAllowlisted(options, d.rule, d.file)) continue;
      out->push_back(std::move(d));
    }
    if (timings != nullptr) {
      timings->Add(r, std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count());
    }
  }
}

void CollectThreadSafetyFacts(const ParsedFile& file,
                              std::set<std::string>* core_facts,
                              std::vector<std::string>* edge_facts) {
  for (const GuardedFieldDecl& gf : file.guarded_fields) {
    const std::string key = gf.class_name + "::" + gf.field;
    core_facts->insert("gf " + key + " " + gf.mutex);
  }
  for (const AnnotationSite& site : file.annotations) {
    const char* tag = nullptr;
    std::vector<std::string> args = site.args;
    if (site.macro == "CYQR_REQUIRES") {
      tag = "rq";  // Mutexes stay as written: matched against the
                   // caller's own lock regions and REQUIRES lists.
    } else if (site.macro == "CYQR_ACQUIRE") {
      tag = "aq";  // Mutexes become graph nodes: qualify them.
      for (std::string& m : args) m = QualifyMutex(site.class_name, m);
    } else {
      continue;  // RELEASE/EXCLUDES carry no cross-file obligations yet.
    }
    const std::string joined = JoinComma(args);
    if (joined.empty()) continue;
    core_facts->insert(std::string(tag) + " " + site.function + " " + joined);
    if (!site.class_name.empty()) {
      core_facts->insert(std::string(tag) + " " + site.class_name +
                         "::" + site.function + " " + joined);
    }
  }

  const char* kCycleRule = "lock-order-cycle";
  std::set<std::string> seen;  // Dedup within the file.
  auto emit = [&](const std::string& fact) {
    if (seen.insert(fact).second) edge_facts->push_back(fact);
  };
  for (const FunctionDef& fn : file.functions) {
    // Mutexes held for the whole body via the definition's own REQUIRES.
    std::vector<std::string> held_always;
    for (const std::string& m : fn.requires_locks) {
      held_always.push_back(QualifyMutex(fn.class_name, m));
    }
    for (const LockRegion& outer : fn.locks) {
      // Direct nesting: a region opened inside another held region means
      // outer's mutexes were held when inner's were acquired. Segments of
      // the same guard are sequential, never nested.
      for (const LockRegion& inner : fn.locks) {
        if (&inner == &outer || inner.name == outer.name) continue;
        if (inner.begin <= outer.begin || inner.end > outer.end) continue;
        if (IsSuppressed(file.lex, inner.line, kCycleRule)) continue;
        for (const std::string& mo : outer.mutexes) {
          for (const std::string& mi : inner.mutexes) {
            emit("le " + QualifyMutex(fn.class_name, mo) + " " +
                 QualifyMutex(fn.class_name, mi) + " " +
                 std::to_string(inner.line));
          }
        }
      }
      // This function acquires these mutexes in its body; if some file
      // declares a REQUIRES for it, the merge resolves that into edges.
      if (IsSuppressed(file.lex, outer.line, kCycleRule)) continue;
      const std::string cls = fn.class_name.empty() ? "-" : fn.class_name;
      for (const std::string& m : outer.mutexes) {
        emit("fl " + cls + " " + fn.name + " " +
             QualifyMutex(fn.class_name, m) + " " +
             std::to_string(outer.line));
      }
    }
    // Calls made while a lock is held: if the callee is a CYQR_ACQUIRE
    // function anywhere in the tree, the merge adds held -> acquired.
    for (const CallSite& call : fn.calls) {
      if (IsSuppressed(file.lex, call.line, kCycleRule)) continue;
      for (const LockRegion& region : fn.locks) {
        if (call.name_index < region.begin || call.name_index >= region.end) {
          continue;
        }
        for (const std::string& m : region.mutexes) {
          emit("hc " + QualifyMutex(fn.class_name, m) + " " + call.callee +
               " " + std::to_string(call.line));
        }
      }
      for (const std::string& held : held_always) {
        emit("hc " + held + " " + call.callee + " " +
             std::to_string(call.line));
      }
    }
  }
}

void MergeThreadSafetyFacts(const std::set<std::string>& core_facts,
                            LintContext* ctx) {
  for (const std::string& fact : core_facts) {
    std::istringstream in(fact);
    std::string tag, key, value;
    if (!(in >> tag >> key >> value)) continue;
    if (tag == "gf") {
      ctx->guarded_fields[key] = value;
      continue;
    }
    std::map<std::string, std::vector<std::string>>* dest = nullptr;
    if (tag == "rq") dest = &ctx->requires_functions;
    if (tag == "aq") dest = &ctx->acquire_functions;
    if (dest == nullptr) continue;
    std::vector<std::string>& mutexes = (*dest)[key];
    for (const std::string& m : SplitComma(value)) {
      if (std::find(mutexes.begin(), mutexes.end(), m) == mutexes.end()) {
        mutexes.push_back(m);
      }
    }
  }
}

void ResolveEdgeFacts(const std::string& file,
                      const std::vector<std::string>& edge_facts,
                      LintContext* ctx) {
  for (const std::string& fact : edge_facts) {
    std::istringstream in(fact);
    std::string tag;
    if (!(in >> tag)) continue;
    if (tag == "le") {
      LockOrderEdge edge;
      if (!(in >> edge.from >> edge.to >> edge.line)) continue;
      edge.file = file;
      ctx->lock_order_edges.push_back(std::move(edge));
    } else if (tag == "hc") {
      std::string held, callee;
      int line = 0;
      if (!(in >> held >> callee >> line)) continue;
      auto it = ctx->acquire_functions.find(callee);
      if (it == ctx->acquire_functions.end()) continue;
      for (const std::string& acquired : it->second) {
        ctx->lock_order_edges.push_back({held, acquired, file, line});
      }
    } else if (tag == "fl") {
      std::string cls, fn, acquired;
      int line = 0;
      if (!(in >> cls >> fn >> acquired >> line)) continue;
      if (cls == "-") cls.clear();
      auto it = ctx->requires_functions.end();
      if (!cls.empty()) {
        it = ctx->requires_functions.find(cls + "::" + fn);
      }
      if (it == ctx->requires_functions.end()) {
        it = ctx->requires_functions.find(fn);
      }
      if (it == ctx->requires_functions.end()) continue;
      for (const std::string& required : it->second) {
        const std::string from = QualifyMutex(cls, required);
        if (from == acquired) continue;  // REQUIRES(m) + re-guard of m is
                                         // the lock-scope rule's domain.
        ctx->lock_order_edges.push_back({from, acquired, file, line});
      }
    }
  }
}

std::vector<Diagnostic> CheckLockOrderCycles(const LintContext& ctx) {
  std::vector<Diagnostic> out;
  // Deduplicate edges, keeping the lexicographically first witness so
  // reports are stable across runs and worker interleavings.
  std::vector<LockOrderEdge> edges = ctx.lock_order_edges;
  std::sort(edges.begin(), edges.end(),
            [](const LockOrderEdge& a, const LockOrderEdge& b) {
              return std::tie(a.from, a.to, a.file, a.line) <
                     std::tie(b.from, b.to, b.file, b.line);
            });
  std::map<std::pair<std::string, std::string>, LockOrderEdge> uniq;
  for (const LockOrderEdge& e : edges) {
    uniq.emplace(std::make_pair(e.from, e.to), e);
  }
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& entry : uniq) {
    const LockOrderEdge& e = entry.second;
    if (e.from == e.to) {
      // Length-1 cycle: the same mutex acquired while already held.
      Diagnostic d;
      d.file = e.file;
      d.line = e.line;
      d.rule = "lock-order-cycle";
      d.message = "mutex '" + e.from +
                  "' acquired while already held (self-deadlock for a "
                  "non-recursive mutex)";
      out.push_back(std::move(d));
      continue;
    }
    adj[e.from].push_back(e.to);
  }
  auto reachable = [&adj](const std::string& from, const std::string& to) {
    std::set<std::string> visited{from};
    std::deque<std::string> queue{from};
    while (!queue.empty()) {
      const std::string node = queue.front();
      queue.pop_front();
      auto it = adj.find(node);
      if (it == adj.end()) continue;
      for (const std::string& next : it->second) {
        if (next == to) return true;
        if (visited.insert(next).second) queue.push_back(next);
      }
    }
    return false;
  };
  // Group mutually reachable nodes; report each component once, anchored
  // at its lexicographically smallest node.
  std::set<std::string> reported;
  for (const auto& entry : adj) {
    const std::string& a = entry.first;
    if (reported.count(a) != 0) continue;
    std::vector<std::string> component;
    for (const auto& other : adj) {
      const std::string& b = other.first;
      if (b == a) continue;
      if (reachable(a, b) && reachable(b, a)) component.push_back(b);
    }
    if (component.empty()) continue;
    reported.insert(a);
    for (const std::string& b : component) reported.insert(b);
    // Shortest cycle through `a` by BFS with parent links.
    std::map<std::string, std::string> parent;
    std::deque<std::string> queue{a};
    std::string closer;  // Node with an edge back to `a`.
    while (!queue.empty() && closer.empty()) {
      const std::string node = queue.front();
      queue.pop_front();
      auto it = adj.find(node);
      if (it == adj.end()) continue;
      for (const std::string& next : it->second) {
        if (next == a && node != a) {
          closer = node;
          break;
        }
        if (next != a && parent.emplace(next, node).second) {
          queue.push_back(next);
        }
      }
    }
    if (closer.empty()) continue;  // Only possible via self-edges.
    std::vector<std::string> cycle{a};
    for (std::string node = closer; node != a;) {
      cycle.insert(cycle.begin() + 1, node);
      auto it = parent.find(node);
      if (it == parent.end()) break;
      node = it->second;
    }
    cycle.push_back(a);  // A -> ... -> closer -> A.
    std::string order;
    for (const std::string& node : cycle) {
      if (!order.empty()) order += " -> ";
      order += "'" + node + "'";
    }
    std::string witnesses;
    const LockOrderEdge* first = nullptr;
    for (size_t i = 0; i + 1 < cycle.size(); ++i) {
      auto it = uniq.find(std::make_pair(cycle[i], cycle[i + 1]));
      if (it == uniq.end()) continue;
      const LockOrderEdge& e = it->second;
      if (first == nullptr) first = &e;
      if (!witnesses.empty()) witnesses += "; ";
      witnesses += "'" + e.from + "' held while acquiring '" + e.to + "' (" +
                   e.file + ":" + std::to_string(e.line) + ")";
    }
    Diagnostic d;
    d.file = first != nullptr ? first->file : "";
    d.line = first != nullptr ? first->line : 0;
    d.rule = "lock-order-cycle";
    d.message = "potential deadlock: lock acquisition order cycle " + order +
                "; witness: " + witnesses +
                "; establish one global acquisition order";
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.message) <
                     std::tie(b.file, b.line, b.message);
            });
  return out;
}

LintResult RunLint(const std::vector<std::string>& paths,
                   const LintOptions& options) {
  DriverOptions driver_options;
  driver_options.lint = options;
  driver_options.jobs = 1;
  return RunDriver(paths, driver_options).lint;
}

std::string FormatText(const LintResult& result) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    out << d.file << ':' << d.line << ": [" << d.rule << "] " << d.message
        << '\n';
  }
  return out.str();
}

std::string FormatJson(const LintResult& result) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    out << "  {\"file\": \"" << JsonEscape(d.file)
        << "\", \"line\": " << d.line << ", \"rule\": \""
        << JsonEscape(d.rule) << "\", \"message\": \""
        << JsonEscape(d.message) << "\"}";
    if (i + 1 < result.diagnostics.size()) out << ',';
    out << '\n';
  }
  out << "]\n";
  return out.str();
}

std::string FormatSarif(const LintResult& result) {
  const std::vector<std::unique_ptr<Rule>> rules = BuildAllRules();
  std::map<std::string, size_t> rule_index;
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"cyqr_lint\",\n"
      << "          \"rules\": [\n";
  for (size_t i = 0; i < rules.size(); ++i) {
    rule_index[rules[i]->name()] = i;
    out << "            {\"id\": \"cyqr-" << JsonEscape(rules[i]->name())
        << "\"}";
    if (i + 1 < rules.size()) out << ',';
    out << '\n';
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    out << "        {\n"
        << "          \"ruleId\": \"cyqr-" << JsonEscape(d.rule) << "\",\n";
    auto it = rule_index.find(d.rule);
    if (it != rule_index.end()) {
      out << "          \"ruleIndex\": " << it->second << ",\n";
    }
    out << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(d.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << JsonEscape(d.file) << "\"},\n"
        << "                \"region\": {\"startLine\": "
        << (d.line > 0 ? d.line : 1) << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
    if (i + 1 < result.diagnostics.size()) out << ',';
    out << '\n';
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace cyqr_lint
