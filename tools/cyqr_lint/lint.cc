#include "lint.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "driver.h"

namespace cyqr_lint {

namespace {

bool IsAllowlisted(const LintOptions& options, const std::string& rule,
                   const std::string& file) {
  auto it = options.allow.find(rule);
  if (it == options.allow.end()) return false;
  for (const std::string& fragment : it->second) {
    if (file.find(fragment) != std::string::npos) return true;
  }
  return false;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void SeedContext(LintContext* ctx) {
  // Core factory/propagation names: calls like Status::OK() or
  // v.status() must be flagged even when core/status.h is not scanned.
  ctx->status_functions.insert({"OK", "InvalidArgument", "NotFound",
                                "OutOfRange", "FailedPrecondition",
                                "Internal", "IoError", "Unimplemented",
                                "status"});
}

void AnalyzeFile(const ParsedFile& file, const LintContext& ctx,
                 const LintOptions& options,
                 const std::vector<std::unique_ptr<Rule>>& rules,
                 std::vector<Diagnostic>* out) {
  for (const auto& rule : rules) {
    if (!options.enabled_rules.empty() &&
        options.enabled_rules.count(rule->name()) == 0) {
      continue;
    }
    std::vector<Diagnostic> found;
    rule->Check(file, ctx, &found);
    for (Diagnostic& d : found) {
      if (IsSuppressed(file.lex, d.line, d.rule)) continue;
      if (IsAllowlisted(options, d.rule, d.file)) continue;
      out->push_back(std::move(d));
    }
  }
}

LintResult RunLint(const std::vector<std::string>& paths,
                   const LintOptions& options) {
  DriverOptions driver_options;
  driver_options.lint = options;
  driver_options.jobs = 1;
  return RunDriver(paths, driver_options).lint;
}

std::string FormatText(const LintResult& result) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    out << d.file << ':' << d.line << ": [" << d.rule << "] " << d.message
        << '\n';
  }
  return out.str();
}

std::string FormatJson(const LintResult& result) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    out << "  {\"file\": \"" << JsonEscape(d.file)
        << "\", \"line\": " << d.line << ", \"rule\": \""
        << JsonEscape(d.rule) << "\", \"message\": \""
        << JsonEscape(d.message) << "\"}";
    if (i + 1 < result.diagnostics.size()) out << ',';
    out << '\n';
  }
  out << "]\n";
  return out.str();
}

}  // namespace cyqr_lint
