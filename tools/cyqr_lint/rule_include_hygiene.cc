#include "rules.h"

#include <filesystem>

namespace cyqr_lint {

namespace {

bool IsHeaderPath(const std::string& path) {
  const std::string ext = std::filesystem::path(path).extension().string();
  return ext == ".h" || ext == ".hpp";
}

bool IsSourcePath(const std::string& path) {
  const std::string ext = std::filesystem::path(path).extension().string();
  return ext == ".cc" || ext == ".cpp";
}

/// Strips the quotes/angle brackets from an #include payload.
std::string IncludeTarget(const std::string& payload) {
  if (payload.size() >= 2 &&
      ((payload.front() == '"' && payload.back() == '"') ||
       (payload.front() == '<' && payload.back() == '>'))) {
    return payload.substr(1, payload.size() - 2);
  }
  return payload;
}

class IncludeHygieneRule : public Rule {
 public:
  const char* name() const override { return "include-hygiene"; }

  void Check(const ParsedFile& file, const LintContext& /*ctx*/,
             std::vector<Diagnostic>* out) const override {
    if (IsHeaderPath(file.lex.path)) {
      CheckGuard(file.lex, out);
    } else if (IsSourcePath(file.lex.path)) {
      CheckSelfIncludeFirst(file.lex, out);
    }
  }

 private:
  /// Headers must open with `#pragma once` or an #ifndef/#define guard
  /// pair before any other directive or code token.
  void CheckGuard(const LexedFile& file,
                  std::vector<Diagnostic>* out) const {
    for (const Token& tok : file.tokens) {
      if (tok.kind != TokKind::kDirective) break;  // Code before a guard.
      if (tok.text == "pragma" && tok.aux == "once") return;
      if (tok.text == "ifndef") return;  // Paired #define assumed next.
      if (tok.text == "include" || tok.text == "define") break;
    }
    Diagnostic d;
    d.file = file.path;
    d.line = file.tokens.empty() ? 1 : file.tokens.front().line;
    d.rule = name();
    d.message =
        "header has no include guard; start with #ifndef/#define or "
        "#pragma once";
    out->push_back(std::move(d));
  }

  /// foo.cc must include its own foo.h before any other include, so the
  /// header is proven self-contained by every build.
  void CheckSelfIncludeFirst(const LexedFile& file,
                             std::vector<Diagnostic>* out) const {
    const std::string stem =
        std::filesystem::path(file.path).stem().string();
    int first_line = 0;
    bool first_seen = false;
    for (const Token& tok : file.tokens) {
      if (tok.kind != TokKind::kDirective || tok.text != "include") {
        continue;
      }
      const std::filesystem::path target(IncludeTarget(tok.aux));
      const bool is_self = target.stem().string() == stem &&
                           IsHeaderPath(target.string());
      if (!first_seen) {
        first_seen = true;
        first_line = tok.line;
        if (is_self) return;  // Own header is first: clean.
      } else if (is_self) {
        Diagnostic d;
        d.file = file.path;
        d.line = tok.line;
        d.rule = name();
        d.message = "own header '" + target.string() +
                    "' must be the first include (currently line " +
                    std::to_string(first_line) + " comes first)";
        // Span fix: delete the misplaced include and re-insert it before
        // the include that currently sits first.
        FixEdit del;
        del.kind = FixEdit::Kind::kDeleteLine;
        del.line = tok.line;
        d.fixes.push_back(std::move(del));
        FixEdit ins;
        ins.kind = FixEdit::Kind::kInsertLineBefore;
        ins.line = first_line;
        ins.text = "#include " + tok.aux;
        d.fixes.push_back(std::move(ins));
        out->push_back(std::move(d));
        return;
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeIncludeHygieneRule() {
  return std::make_unique<IncludeHygieneRule>();
}

}  // namespace cyqr_lint
