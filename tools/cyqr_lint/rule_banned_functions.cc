#include "rules.h"

namespace cyqr_lint {

namespace {

struct BannedEntry {
  const char* ident;       // The called identifier.
  bool require_call;       // Only flag when followed by '('.
  const char* why;
};

/// Determinism killers and unbounded-buffer C functions. The replay
/// debugger and the fault harness both assume a run can be reproduced
/// from its seed; wall-clock seeding and global C RNG state break that.
const BannedEntry kBanned[] = {
    {"rand", true, "use cyqr::Rng with an explicit seed"},
    {"srand", true, "use cyqr::Rng with an explicit seed"},
    {"random_shuffle", true, "use std::shuffle with a seeded cyqr::Rng"},
    {"atoi", true, "no error reporting; use std::strtol and check endptr"},
    {"atol", true, "no error reporting; use std::strtol and check endptr"},
    {"atof", true, "no error reporting; use std::strtod and check endptr"},
    {"sprintf", true, "unbounded buffer write; use std::snprintf"},
    {"vsprintf", true, "unbounded buffer write; use std::vsnprintf"},
    {"gets", true, "unbounded buffer read"},
};

bool IsMemberAccess(const std::vector<Token>& toks, size_t i) {
  return i > 0 && (IsPunct(toks, i - 1, ".") || IsPunct(toks, i - 1, "->"));
}

class BannedFunctionsRule : public Rule {
 public:
  const char* name() const override { return "banned-functions"; }

  void Check(const ParsedFile& file, const LintContext& /*ctx*/,
             std::vector<Diagnostic>* out) const override {
    const std::vector<Token>& toks = file.lex.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const std::string& t = toks[i].text;

      for (const BannedEntry& entry : kBanned) {
        if (t != entry.ident) continue;
        if (entry.require_call && !IsPunct(toks, i + 1, "(")) continue;
        // Member calls like parser.atoi(...) are a different function.
        if (IsMemberAccess(toks, i)) continue;
        Report(file, toks[i].line, "'" + t + "' is banned: " + entry.why,
               out);
        break;
      }

      // time(nullptr)/time(NULL)/time(0): wall-clock seeding.
      if (t == "time" && IsPunct(toks, i + 1, "(") &&
          !IsMemberAccess(toks, i) && i + 3 < toks.size() &&
          IsPunct(toks, i + 3, ")") &&
          (IsIdent(toks, i + 2, "nullptr") || IsIdent(toks, i + 2, "NULL") ||
           (toks[i + 2].kind == TokKind::kNumber &&
            toks[i + 2].text == "0"))) {
        Report(file, toks[i].line,
               "wall-clock seeding via 'time(...)' is banned: pass an "
               "explicit seed so runs can be replayed",
               out);
      }
      // Seedless std:: RNG construction lives in its own rule:
      // banned-unseeded-rng (rule_unseeded_rng.cc).
    }
  }

 private:
  void Report(const ParsedFile& file, int line, std::string message,
              std::vector<Diagnostic>* out) const {
    Diagnostic d;
    d.file = file.lex.path;
    d.line = line;
    d.rule = name();
    d.message = std::move(message);
    out->push_back(std::move(d));
  }
};

}  // namespace

std::unique_ptr<Rule> MakeBannedFunctionsRule() {
  return std::make_unique<BannedFunctionsRule>();
}

}  // namespace cyqr_lint
