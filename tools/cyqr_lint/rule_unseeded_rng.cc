#include "rules.h"

namespace cyqr_lint {

namespace {

/// Seedless standard-library RNG construction. `std::mt19937 gen;` (and
/// the `{}` / `()` spellings) takes the implicit default seed, silently
/// correlating every such generator in the process and breaking the
/// replay-from-seed invariant the crash-resume machinery depends on.
/// cyqr::Rng already requires a seed by construction; this rule keeps
/// std:: generators to the same standard.
class UnseededRngRule : public Rule {
 public:
  const char* name() const override { return "banned-unseeded-rng"; }

  void Check(const ParsedFile& file, const LintContext& /*ctx*/,
             std::vector<Diagnostic>* out) const override {
    const std::vector<Token>& toks = file.lex.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const std::string& t = toks[i].text;
      if (t != "mt19937" && t != "mt19937_64" && t != "default_random_engine") {
        continue;
      }
      if (!(i >= 2 && IsIdent(toks, i - 2, "std") &&
            IsPunct(toks, i - 1, "::"))) {
        continue;
      }
      // `std::mt19937 gen;` or `std::mt19937 gen{};` — seedless named
      // declaration (default or empty-brace construction).
      if (i + 1 < toks.size() && toks[i + 1].kind == TokKind::kIdent) {
        if (IsPunct(toks, i + 2, ";") ||
            (IsPunct(toks, i + 2, "{") && IsPunct(toks, i + 3, "}"))) {
          Report(file, toks[i].line,
                 "seedless 'std::" + t + " " + toks[i + 1].text +
                     "' is banned: construct it with an explicit seed",
                 out);
        }
        continue;
      }
      // `std::mt19937()` / `std::mt19937{}` — seedless temporary.
      if ((IsPunct(toks, i + 1, "(") && IsPunct(toks, i + 2, ")")) ||
          (IsPunct(toks, i + 1, "{") && IsPunct(toks, i + 2, "}"))) {
        Report(file, toks[i].line,
               "seedless 'std::" + t +
                   "' temporary is banned: construct it with an explicit "
                   "seed",
               out);
      }
    }
  }

 private:
  void Report(const ParsedFile& file, int line, std::string message,
              std::vector<Diagnostic>* out) const {
    Diagnostic d;
    d.file = file.lex.path;
    d.line = line;
    d.rule = name();
    d.message = std::move(message);
    out->push_back(std::move(d));
  }
};

}  // namespace

std::unique_ptr<Rule> MakeUnseededRngRule() {
  return std::make_unique<UnseededRngRule>();
}

}  // namespace cyqr_lint
