#ifndef CYQR_LINT_LEXER_H_
#define CYQR_LINT_LEXER_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace cyqr_lint {

/// Token kinds produced by the lightweight C++ lexer. The lexer is not a
/// full C++ front end: it strips comments and string/char literals (so
/// rule matching never fires inside them), folds preprocessor directives
/// into single tokens, and keeps just enough operator structure for the
/// rules (":: -> . ! == != <= >=" stay combined; ">" is never combined
/// into ">>" so template argument lists can be matched by bracket
/// counting).
enum class TokKind {
  kIdent,
  kNumber,
  kString,     // String literal (incl. raw); text is "", aux is the body.
  kChar,       // Character literal; text is "".
  kPunct,      // Operator / punctuation, possibly multi-char.
  kDirective,  // Whole preprocessor directive; text = name, aux = payload.
};

struct Token {
  TokKind kind;
  std::string text;
  /// Directive payload (the "x.h" of an #include), or the uninterpreted
  /// body of a string literal (escape sequences kept verbatim). `text`
  /// stays "" for literals so token-matching rules never fire inside them;
  /// rules that need the value (metrics-naming) read `aux` explicitly.
  std::string aux;
  int line = 0;
};

/// A lexed source file plus the suppression map harvested from comments.
struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  /// line -> rules suppressed on that line via NOLINT / NOLINTNEXTLINE
  /// comments. The special entry "*" suppresses every rule.
  std::unordered_map<int, std::set<std::string>> nolint;
  /// Lines whose comment text contains an "ordering:" justification (the
  /// atomic-ordering-audit rule accepts a justification on the same line
  /// as the memory_order argument or on nearby preceding lines). For a
  /// multi-line block comment every spanned line is recorded.
  std::set<int> ordering_comment_lines;
  int num_lines = 0;
};

/// Lexes `source` (the file contents) into tokens. Never fails: bytes the
/// lexer does not understand become single-character punct tokens.
LexedFile LexFile(std::string path, const std::string& source);

/// True when `file` suppresses `rule` on `line` (exact rule name, with or
/// without the "cyqr-" prefix at the suppression site, or a bare NOLINT).
bool IsSuppressed(const LexedFile& file, int line, const std::string& rule);

}  // namespace cyqr_lint

#endif  // CYQR_LINT_LEXER_H_
