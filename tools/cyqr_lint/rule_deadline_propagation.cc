#include "rules.h"

namespace cyqr_lint {

namespace {

/// The serving ladder's core discipline (DESIGN.md "Fault-tolerant
/// serving"): a function that was handed the request's Deadline must hand
/// it onward to every callee that can accept one. Dropping the budget at
/// any hop silently converts a deadline-bound request into an unbounded
/// one — the callee then consults the wall clock (or nothing) and the
/// request blows through its budget with no record of where.
///
/// Flow-aware shape: for every recovered function definition with a
/// `Deadline` (or `DeadlineBudget`) parameter, every call to a callee
/// known to accept a Deadline anywhere in the scanned tree must mention
/// the deadline parameter in its argument list. Calls that intentionally
/// do not forward (e.g. the deadline is captured into a job closure
/// submitted to a pool) carry a NOLINT(cyqr-deadline-propagation) with
/// justification.
class DeadlinePropagationRule : public Rule {
 public:
  const char* name() const override { return "deadline-propagation"; }

  void Check(const ParsedFile& file, const LintContext& ctx,
             std::vector<Diagnostic>* out) const override {
    const std::vector<Token>& toks = file.lex.tokens;
    for (const FunctionDef& fn : file.functions) {
      const std::string deadline_param = fn.ParamNameOfType("Deadline");
      if (deadline_param.empty()) continue;

      for (const CallSite& call : fn.calls) {
        if (ctx.deadline_functions.count(call.callee) == 0) continue;
        // A call *on* the deadline object itself (deadline.HasBudget(...))
        // or on another Deadline value is not a forwarding hop.
        if (call.receiver == deadline_param) continue;
        // The defining function's own recursive overload chain is covered
        // by the same test; no exemption needed.
        bool forwards = false;
        for (const auto& arg : call.args) {
          if (RangeMentionsIdent(toks, arg.first, arg.second,
                                 deadline_param)) {
            forwards = true;
            break;
          }
        }
        if (forwards) continue;
        Diagnostic d;
        d.file = file.lex.path;
        d.line = call.line;
        d.rule = name();
        d.message = "'" + fn.name + "' holds deadline '" + deadline_param +
                     "' but calls '" + call.callee +
                     "' (which accepts a Deadline) without forwarding it; "
                     "pass the request deadline through or NOLINT with "
                     "justification";
        out->push_back(std::move(d));
      }
    }
  }
};

}  // namespace

void CollectDeadlineFunctions(const LexedFile& file,
                              std::set<std::string>* names) {
  const std::vector<Token>& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (!IsPunct(toks, i + 1, "(")) continue;
    if (IsControlKeyword(toks[i].text)) continue;
    const size_t close = MatchForward(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    // Look for a parameter-declaration-shaped `Deadline` inside the
    // group: the type name followed by (&, *, &&)* then a name or a
    // parameter-list separator. `Deadline::...` (qualified call) and
    // `Deadline(...)` (constructor) never match.
    for (size_t j = i + 2; j < close; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      if (toks[j].text != "Deadline" && toks[j].text != "DeadlineBudget") {
        continue;
      }
      size_t k = j + 1;
      while (k < close && (IsPunct(toks, k, "&") || IsPunct(toks, k, "*") ||
                           IsPunct(toks, k, "&&"))) {
        ++k;
      }
      const bool param_shape =
          k < close
              ? (toks[k].kind == TokKind::kIdent || IsPunct(toks, k, ",") ||
                 IsPunct(toks, k, "="))
              : k == close;  // Unnamed trailing param: `..., Deadline&)`.
      if (param_shape) {
        names->insert(toks[i].text);
        break;
      }
    }
  }
}

std::unique_ptr<Rule> MakeDeadlinePropagationRule() {
  return std::make_unique<DeadlinePropagationRule>();
}

}  // namespace cyqr_lint
