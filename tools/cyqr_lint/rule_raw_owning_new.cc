#include "rules.h"

namespace cyqr_lint {

namespace {

class RawOwningNewRule : public Rule {
 public:
  const char* name() const override { return "raw-owning-new"; }

  void Check(const ParsedFile& file, const LintContext& /*ctx*/,
             std::vector<Diagnostic>* out) const override {
    const std::vector<Token>& toks = file.lex.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const bool is_new = toks[i].text == "new";
      const bool is_delete = toks[i].text == "delete";
      if (!is_new && !is_delete) continue;
      // `operator new` / `operator delete` declarations and `= delete`
      // function deletion are not ownership transfers.
      if (i > 0 && IsIdent(toks, i - 1, "operator")) continue;
      if (is_delete && i > 0 && IsPunct(toks, i - 1, "=")) continue;
      Diagnostic d;
      d.file = file.lex.path;
      d.line = toks[i].line;
      d.rule = name();
      d.message = std::string("raw owning '") + toks[i].text +
                  "' outside the allowlist; use std::make_unique/"
                  "std::make_shared or a container";
      out->push_back(std::move(d));
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeRawOwningNewRule() {
  return std::make_unique<RawOwningNewRule>();
}

}  // namespace cyqr_lint
