// cyqr_lint — project-native static analyzer for the cycleqr tree.
//
//   cyqr_lint [--json] [--sarif=FILE] [--rule=NAME ...]
//             [--allow=RULE:PATH_FRAGMENT ...]
//             [--exclude=PATH_FRAGMENT ...] [--jobs=N] [--cache=FILE]
//             [--stats] [--fix] [--fix-dry-run] [--fix-nolint=RULE ...]
//             [--list-rules] PATH [PATH ...]
//
// Walks the given files/directories (.h .hpp .cc .cpp) and enforces the
// project invariants as named rules. The flat token rules:
//
//   discarded-status   a Status/Result-returning call whose value is
//                      ignored at statement level
//   unchecked-stream   a file stream that is never error-checked after
//                      use (the PR-1 LoadParameters bug class)
//   banned-functions   std::rand / atoi / sprintf / time(nullptr) —
//                      determinism and safety killers for replay
//                      debugging
//   banned-unseeded-rng  argless std::mt19937 / mt19937_64 /
//                      default_random_engine construction (declaration
//                      or temporary): the implicit default seed breaks
//                      replay-from-seed
//   raw-owning-new     raw new/delete outside an allowlist
//   include-hygiene    headers without guards; .cc files whose own
//                      header is not the first include
//   metrics-naming     metric names outside the <subsystem>_<noun>_
//                      <unit> convention
//   lock-scope         mutex locked without a scoped guard
//
// The flow-aware rules (built on the parse layer's recovered functions,
// calls, and lock regions):
//
//   deadline-propagation     a function holding a Deadline parameter
//                            calls a Deadline-accepting callee without
//                            forwarding it
//   lock-held-blocking-call  sleep/IO/queue handoff/backend call inside
//                            a lock_guard or unique_lock scope
//   atomic-ordering-audit    explicit std::memory_order_* without a
//                            '// ordering:' justification comment
//   result-unwrap-check      Result<T>::value() with no dominating ok()
//                            check in the same function
//
// The thread-safety rules (driven by the CYQR_GUARDED_BY / CYQR_REQUIRES
// / CYQR_ACQUIRE annotation macros in src/core/thread_annotations.h,
// resolved as cross-file facts):
//
//   guarded-field-access     a CYQR_GUARDED_BY(m) field touched outside
//                            a lock region holding m and outside a
//                            CYQR_REQUIRES(m) function
//   requires-not-held        call site of a CYQR_REQUIRES(m) function
//                            with no enclosing lock region holding m
//   lock-order-cycle         cycle in the global (whole-tree) lock
//                            acquisition-order graph built from nested
//                            lock regions and CYQR_ACQUIRE edges; the
//                            report carries every witness edge's
//                            file:line
//
// Suppression: `// NOLINT(cyqr-<rule>)` on the offending line, or
// `// NOLINTNEXTLINE(cyqr-<rule>)` on the line above; a justification
// after the closing paren is expected by review convention. Allowlists
// exempt whole paths: `--allow=raw-owning-new:bench/`.
//
// Driver: analysis runs in parallel on the project's own
// cyqr::ThreadPool (--jobs). With --cache=FILE, per-file facts and
// diagnostics are keyed by content hash plus a whole-context
// fingerprint, so an unchanged file costs one hash on re-run (--stats
// prints the hit counts). --fix applies the mechanical span fixes
// (include reordering; NOLINT insertion for rules named via
// --fix-nolint=RULE); --fix-dry-run prints the edits instead.
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/file_util.h"
#include "driver.h"
#include "lint.h"

namespace cyqr_lint {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cyqr_lint [--json] [--sarif=FILE] [--rule=NAME ...] "
               "[--allow=RULE:PATH_FRAGMENT ...] "
               "[--exclude=PATH_FRAGMENT ...] [--jobs=N] [--cache=FILE] "
               "[--stats] [--fix] [--fix-dry-run] [--fix-nolint=RULE ...] "
               "[--list-rules] PATH [PATH ...]\n");
  return 2;
}

int Main(int argc, char** argv) {
  DriverOptions options;
  std::vector<std::string> paths;
  bool json = false;
  bool stats = false;
  std::string sarif_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--fix") {
      options.fix = true;
    } else if (arg == "--fix-dry-run") {
      options.fix_dry_run = true;
    } else if (arg.rfind("--fix-nolint=", 0) == 0) {
      options.fix_nolint_rules.push_back(arg.substr(13));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = static_cast<int>(std::strtol(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--cache=", 0) == 0) {
      options.cache_path = arg.substr(8);
    } else if (arg.rfind("--exclude=", 0) == 0) {
      options.exclude.push_back(arg.substr(10));
    } else if (arg == "--list-rules") {
      for (const auto& rule : BuildAllRules()) {
        std::printf("%s\n", rule->name());
      }
      return 0;
    } else if (arg.rfind("--rule=", 0) == 0) {
      options.lint.enabled_rules.insert(arg.substr(7));
    } else if (arg.rfind("--allow=", 0) == 0) {
      const std::string spec = arg.substr(8);
      const size_t colon = spec.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= spec.size()) {
        std::fprintf(stderr, "bad --allow spec: %s\n", spec.c_str());
        return Usage();
      }
      options.lint.allow[spec.substr(0, colon)].push_back(
          spec.substr(colon + 1));
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  const DriverResult result = RunDriver(paths, options);
  for (const std::string& error : result.lint.errors) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
  }
  bool sarif_failed = false;
  if (!sarif_path.empty()) {
    const cyqr::Status written =
        cyqr::WriteStringToFileAtomic(sarif_path, FormatSarif(result.lint));
    if (!written.ok()) {
      std::fprintf(stderr, "error: cannot write SARIF: %s\n",
                   sarif_path.c_str());
      sarif_failed = true;
    }
  }
  if (options.fix_dry_run && !result.fix_diff.empty()) {
    std::fputs(result.fix_diff.c_str(), stdout);
  }
  if (json) {
    std::fputs(FormatJson(result.lint).c_str(), stdout);
  } else {
    std::fputs(FormatText(result.lint).c_str(), stdout);
    std::fprintf(stderr, "cyqr_lint: %d file(s), %zu violation(s)\n",
                 result.lint.files_scanned,
                 result.lint.diagnostics.size());
  }
  if (stats) std::fputs(FormatStats(result.stats).c_str(), stderr);
  if (!result.lint.errors.empty() || sarif_failed) return 2;
  return result.lint.diagnostics.empty() ? 0 : 1;
}

}  // namespace
}  // namespace cyqr_lint

int main(int argc, char** argv) { return cyqr_lint::Main(argc, argv); }
