// cyqr_lint — project-native static analyzer for the cycleqr tree.
//
//   cyqr_lint [--json] [--rule=NAME ...] [--allow=RULE:PATH_FRAGMENT ...]
//             [--list-rules] PATH [PATH ...]
//
// Walks the given files/directories (.h .hpp .cc .cpp) and enforces the
// project invariants as named rules:
//
//   discarded-status   a Status/Result-returning call whose value is
//                      ignored at statement level
//   unchecked-stream   a file stream that is never error-checked after
//                      use (the PR-1 LoadParameters bug class)
//   banned-functions   std::rand / atoi / sprintf / time(nullptr) —
//                      determinism and safety killers for replay
//                      debugging
//   banned-unseeded-rng  argless std::mt19937 / mt19937_64 /
//                      default_random_engine construction (declaration
//                      or temporary): the implicit default seed breaks
//                      replay-from-seed
//   raw-owning-new     raw new/delete outside an allowlist
//   include-hygiene    headers without guards; .cc files whose own
//                      header is not the first include
//
// Suppression: `// NOLINT(cyqr-<rule>)` on the offending line, or
// `// NOLINTNEXTLINE(cyqr-<rule>)` on the line above; a justification
// after the closing paren is expected by review convention. Allowlists
// exempt whole paths: `--allow=raw-owning-new:bench/`.
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

namespace cyqr_lint {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cyqr_lint [--json] [--rule=NAME ...] "
               "[--allow=RULE:PATH_FRAGMENT ...] [--list-rules] "
               "PATH [PATH ...]\n");
  return 2;
}

int Main(int argc, char** argv) {
  LintOptions options;
  std::vector<std::string> paths;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : BuildAllRules()) {
        std::printf("%s\n", rule->name());
      }
      return 0;
    } else if (arg.rfind("--rule=", 0) == 0) {
      options.enabled_rules.insert(arg.substr(7));
    } else if (arg.rfind("--allow=", 0) == 0) {
      const std::string spec = arg.substr(8);
      const size_t colon = spec.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= spec.size()) {
        std::fprintf(stderr, "bad --allow spec: %s\n", spec.c_str());
        return Usage();
      }
      options.allow[spec.substr(0, colon)].push_back(
          spec.substr(colon + 1));
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  const LintResult result = RunLint(paths, options);
  for (const std::string& error : result.errors) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
  }
  if (json) {
    std::fputs(FormatJson(result).c_str(), stdout);
  } else {
    std::fputs(FormatText(result).c_str(), stdout);
    std::fprintf(stderr, "cyqr_lint: %d file(s), %zu violation(s)\n",
                 result.files_scanned, result.diagnostics.size());
  }
  if (!result.errors.empty()) return 2;
  return result.diagnostics.empty() ? 0 : 1;
}

}  // namespace
}  // namespace cyqr_lint

int main(int argc, char** argv) { return cyqr_lint::Main(argc, argv); }
