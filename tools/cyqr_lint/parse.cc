#include "parse.h"

#include <set>

#include "rules.h"

namespace cyqr_lint {

namespace {

bool IsGuardType(const std::string& ident) {
  return ident == "lock_guard" || ident == "unique_lock" ||
         ident == "scoped_lock" || ident == "shared_lock";
}

/// Skips a balanced group starting at `i` (which must be on the opening
/// token); returns the index just past the matching close, or toks.size().
size_t SkipGroup(const std::vector<Token>& toks, size_t i, const char* open,
                 const char* close) {
  const size_t match = MatchForward(toks, i, open, close);
  return match >= toks.size() ? toks.size() : match + 1;
}

/// Parses one parameter range [begin, end) into type + name. The name is
/// the last identifier that is immediately followed by the range end, a
/// default-value '=', or an array '['; everything before it is the type.
Param ParseParam(const std::vector<Token>& toks, size_t begin, size_t end) {
  Param param;
  // Cut off a default argument.
  size_t effective_end = end;
  int depth = 0;
  for (size_t i = begin; i < end; ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "(" || t == "{" || t == "[" || t == "<") ++depth;
    if (t == ")" || t == "}" || t == "]" || t == ">") --depth;
    if (t == "=" && depth == 0) {
      effective_end = i;
      break;
    }
  }
  size_t name_index = effective_end;  // Sentinel: unnamed.
  for (size_t i = effective_end; i > begin;) {
    --i;
    if (toks[i].kind == TokKind::kIdent) {
      // `int x[3]`: the name is before the bracket group.
      name_index = i;
      break;
    }
    if (IsPunct(toks, i, "]")) continue;  // Walk through array suffixes.
    if (toks[i].kind == TokKind::kPunct &&
        (toks[i].text == "[" || toks[i].kind == TokKind::kNumber)) {
      continue;
    }
    break;
  }
  for (size_t i = begin; i < effective_end; ++i) {
    if (i == name_index) continue;
    if (!param.type.empty()) param.type += ' ';
    param.type += toks[i].text;
  }
  if (name_index < effective_end) param.name = toks[name_index].text;
  // A single-token "parameter" (macro argument, type-only declaration
  // like `int`) has no reliable name/type split: treat it as a name with
  // no type so type-driven rules never fire on it.
  if (param.type.empty() && name_index >= effective_end) param.name = "";
  return param;
}

/// From the token after the parameter list's ')', walks over trailing
/// qualifiers (const, noexcept, override, final, &, &&, trailing return
/// types, member initializer lists) looking for the body '{'. Returns the
/// index of the '{', or toks.size() when this is not a definition.
size_t FindBodyBrace(const std::vector<Token>& toks, size_t i) {
  const size_t n = toks.size();
  while (i < n) {
    if (IsPunct(toks, i, "{")) return i;
    if (IsPunct(toks, i, ";")) return n;  // Declaration only.
    if (toks[i].kind == TokKind::kIdent) {
      const std::string& t = toks[i].text;
      if (t == "const" || t == "override" || t == "final" ||
          t == "noexcept" || t == "mutable" || t == "try") {
        ++i;
        // noexcept(...) condition.
        if (IsPunct(toks, i, "(")) i = SkipGroup(toks, i, "(", ")");
        continue;
      }
      return n;  // Some other identifier: not a definition shape.
    }
    if (IsPunct(toks, i, "&") || IsPunct(toks, i, "&&")) {
      ++i;
      continue;
    }
    if (IsPunct(toks, i, "->")) {
      // Trailing return type: skip tokens (including template groups)
      // until the body '{' or a ';'.
      ++i;
      while (i < n && !IsPunct(toks, i, "{") && !IsPunct(toks, i, ";")) {
        if (IsPunct(toks, i, "(")) {
          i = SkipGroup(toks, i, "(", ")");
        } else {
          ++i;
        }
      }
      continue;
    }
    if (IsPunct(toks, i, ":")) {
      // Member initializer list: ident/qualifier tokens, each initializer
      // carrying one (...) or {...} group, comma-separated, then '{'.
      ++i;
      while (i < n) {
        if (IsPunct(toks, i, "{")) {
          // Either an init like `b_{x}` was just skipped and this is the
          // body, or this is a brace initializer — disambiguated below by
          // what preceded: SkipGroup advances past initializer braces, so
          // a '{' seen at loop head after an ident is an initializer and
          // otherwise the body.
          return i;
        }
        if (IsPunct(toks, i, "(")) {
          i = SkipGroup(toks, i, "(", ")");
          continue;
        }
        if (toks[i].kind == TokKind::kIdent && i + 1 < n &&
            IsPunct(toks, i + 1, "{")) {
          i = SkipGroup(toks, i + 1, "{", "}");
          continue;
        }
        if (IsPunct(toks, i, ",") || toks[i].kind == TokKind::kIdent ||
            IsPunct(toks, i, "::") || IsPunct(toks, i, "<") ||
            IsPunct(toks, i, ">")) {
          ++i;
          continue;
        }
        return n;  // Unrecognized initializer shape.
      }
      return n;
    }
    if (IsPunct(toks, i, "=")) return n;  // = default / = delete / = 0.
    return n;
  }
  return n;
}

/// Whether the identifier at `i` can open a function definition: it must
/// not be a control keyword, must not be a member access, and the prior
/// token must look like the end of a declaration prefix (type name,
/// '*'/'&', '::', '>', or a statement-ish boundary).
bool CanBeDefinitionName(const std::vector<Token>& toks, size_t i) {
  if (IsControlKeyword(toks[i].text)) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::kPunct &&
      (prev.text == "." || prev.text == "->")) {
    return false;  // Member call, never a definition.
  }
  return true;
}

}  // namespace

bool FunctionDef::HasParamOfType(const std::string& fragment) const {
  for (const Param& p : params) {
    if (p.type.find(fragment) != std::string::npos) return true;
  }
  return false;
}

std::string FunctionDef::ParamNameOfType(const std::string& fragment) const {
  for (const Param& p : params) {
    if (p.type.find(fragment) != std::string::npos) return p.name;
  }
  return "";
}

std::vector<std::pair<size_t, size_t>> SplitArgs(
    const std::vector<Token>& toks, size_t open, size_t close) {
  std::vector<std::pair<size_t, size_t>> args;
  if (close <= open + 1 || close >= toks.size()) return args;
  size_t begin = open + 1;
  int depth = 0;
  for (size_t i = open + 1; i < close; ++i) {
    if (toks[i].kind == TokKind::kPunct) {
      const std::string& t = toks[i].text;
      if (t == "(" || t == "{" || t == "[") ++depth;
      if (t == ")" || t == "}" || t == "]") --depth;
      if (t == "," && depth == 0) {
        args.emplace_back(begin, i);
        begin = i + 1;
      }
    }
  }
  args.emplace_back(begin, close);
  return args;
}

bool RangeMentionsIdent(const std::vector<Token>& toks, size_t begin,
                        size_t end, const std::string& ident) {
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == ident) {
      return true;
    }
  }
  return false;
}

ParsedFile ParseFile(LexedFile lex) {
  ParsedFile out;
  out.lex = std::move(lex);
  const std::vector<Token>& toks = out.lex.tokens;
  const size_t n = toks.size();

  // Pass 1: recover function definitions by the shape
  //   NAME ( params ) [qualifiers] [init-list] {
  for (size_t i = 0; i < n; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (!IsPunct(toks, i + 1, "(")) continue;
    if (!CanBeDefinitionName(toks, i)) continue;
    const size_t close = MatchForward(toks, i + 1, "(", ")");
    if (close >= n) continue;
    const size_t body = FindBodyBrace(toks, close + 1);
    if (body >= n) continue;
    const size_t body_end = MatchForward(toks, body, "{", "}");
    if (body_end >= n) continue;

    FunctionDef fn;
    fn.name = toks[i].text;
    fn.line = toks[i].line;
    fn.body_begin = body;
    fn.body_end = body_end;
    for (const auto& range : SplitArgs(toks, i + 1, close)) {
      if (range.first >= range.second) continue;  // Empty list: ().
      fn.params.push_back(ParseParam(toks, range.first, range.second));
    }
    out.functions.push_back(std::move(fn));
    // Do not skip past the body: nested recognizable definitions (local
    // structs' methods) are rare but harmless to record. The outer scan
    // continues token by token.
  }

  // Pass 2: per function, recover calls and lock regions inside the body.
  for (FunctionDef& fn : out.functions) {
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;

      // Lock-guard declaration: [std ::] guard_type [<...>] NAME ( | { | ;
      if (IsGuardType(toks[i].text)) {
        size_t j = i + 1;
        if (IsPunct(toks, j, "<")) {
          const size_t tclose = MatchForward(toks, j, "<", ">");
          if (tclose >= fn.body_end) continue;
          j = tclose + 1;
        }
        if (j < fn.body_end && toks[j].kind == TokKind::kIdent) {
          LockRegion region;
          region.guard_type = toks[i].text;
          region.name = toks[j].text;
          region.line = toks[i].line;
          // Held from the end of the declaration statement.
          size_t decl_end = j + 1;
          if (IsPunct(toks, decl_end, "(")) {
            decl_end = SkipGroup(toks, decl_end, "(", ")");
          } else if (IsPunct(toks, decl_end, "{")) {
            decl_end = SkipGroup(toks, decl_end, "{", "}");
          }
          region.begin = decl_end;
          // Until the enclosing brace scope closes...
          int depth = 0;
          region.end = fn.body_end;
          for (size_t k = decl_end; k < fn.body_end; ++k) {
            if (IsPunct(toks, k, "{")) ++depth;
            if (IsPunct(toks, k, "}")) {
              if (depth == 0) {
                region.end = k;
                break;
              }
              --depth;
            }
          }
          // ...or an explicit name.unlock() releases it early.
          for (size_t k = region.begin; k + 3 < region.end; ++k) {
            if (toks[k].kind == TokKind::kIdent &&
                toks[k].text == region.name && IsPunct(toks, k + 1, ".") &&
                IsIdent(toks, k + 2, "unlock") &&
                IsPunct(toks, k + 3, "(")) {
              region.end = k;
              break;
            }
          }
          fn.locks.push_back(std::move(region));
          continue;
        }
      }

      // Call expression: IDENT ( ... )
      if (!IsPunct(toks, i + 1, "(")) continue;
      if (IsControlKeyword(toks[i].text)) continue;
      const size_t close = MatchForward(toks, i + 1, "(", ")");
      if (close >= fn.body_end + 1) continue;
      CallSite call;
      call.callee = toks[i].text;
      call.line = toks[i].line;
      call.name_index = i;
      call.open_paren = i + 1;
      call.close_paren = close;
      if (i >= 1 && toks[i - 1].kind == TokKind::kPunct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
        call.member_call = true;
        if (i >= 2 && toks[i - 2].kind == TokKind::kIdent) {
          call.receiver = toks[i - 2].text;
        }
      }
      if (close > i + 2) {
        call.args = SplitArgs(toks, i + 1, close);
      }
      fn.calls.push_back(std::move(call));
    }
  }
  return out;
}

}  // namespace cyqr_lint
