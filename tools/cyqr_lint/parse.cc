#include "parse.h"

#include <set>

#include "rules.h"

namespace cyqr_lint {

namespace {

bool IsGuardType(const std::string& ident) {
  return ident == "lock_guard" || ident == "unique_lock" ||
         ident == "scoped_lock" || ident == "shared_lock";
}

bool IsAnnotationMacro(const std::string& ident) {
  return ident == "CYQR_GUARDED_BY" || ident == "CYQR_REQUIRES" ||
         ident == "CYQR_ACQUIRE" || ident == "CYQR_RELEASE" ||
         ident == "CYQR_EXCLUDES";
}

/// Skips a balanced group starting at `i` (which must be on the opening
/// token); returns the index just past the matching close, or toks.size().
size_t SkipGroup(const std::vector<Token>& toks, size_t i, const char* open,
                 const char* close) {
  const size_t match = MatchForward(toks, i, open, close);
  return match >= toks.size() ? toks.size() : match + 1;
}

/// Backward bracket match: `close_index` must sit on a `close` token;
/// returns the index of the matching `open`, or toks.size().
size_t MatchBackward(const std::vector<Token>& toks, size_t close_index,
                     const char* open, const char* close) {
  int depth = 0;
  for (size_t i = close_index + 1; i > 0;) {
    --i;
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == close) ++depth;
    if (toks[i].text == open) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

/// Parses one parameter range [begin, end) into type + name. The name is
/// the last identifier that is immediately followed by the range end, a
/// default-value '=', or an array '['; everything before it is the type.
Param ParseParam(const std::vector<Token>& toks, size_t begin, size_t end) {
  Param param;
  // Cut off a default argument.
  size_t effective_end = end;
  int depth = 0;
  for (size_t i = begin; i < end; ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "(" || t == "{" || t == "[" || t == "<") ++depth;
    if (t == ")" || t == "}" || t == "]" || t == ">") --depth;
    if (t == "=" && depth == 0) {
      effective_end = i;
      break;
    }
  }
  size_t name_index = effective_end;  // Sentinel: unnamed.
  for (size_t i = effective_end; i > begin;) {
    --i;
    if (toks[i].kind == TokKind::kIdent) {
      // `int x[3]`: the name is before the bracket group.
      name_index = i;
      break;
    }
    if (IsPunct(toks, i, "]")) continue;  // Walk through array suffixes.
    if (toks[i].kind == TokKind::kPunct &&
        (toks[i].text == "[" || toks[i].kind == TokKind::kNumber)) {
      continue;
    }
    break;
  }
  for (size_t i = begin; i < effective_end; ++i) {
    if (i == name_index) continue;
    if (!param.type.empty()) param.type += ' ';
    param.type += toks[i].text;
  }
  if (name_index < effective_end) param.name = toks[name_index].text;
  // A single-token "parameter" (macro argument, type-only declaration
  // like `int`) has no reliable name/type split: treat it as a name with
  // no type so type-driven rules never fire on it.
  if (param.type.empty() && name_index >= effective_end) param.name = "";
  return param;
}

/// From the token after the parameter list's ')', walks over trailing
/// qualifiers (const, noexcept, override, final, CYQR_* thread-safety
/// annotations, &, &&, trailing return types, member initializer lists)
/// looking for the body '{'. Returns the index of the '{', or toks.size()
/// when this is not a definition.
size_t FindBodyBrace(const std::vector<Token>& toks, size_t i) {
  const size_t n = toks.size();
  while (i < n) {
    if (IsPunct(toks, i, "{")) return i;
    if (IsPunct(toks, i, ";")) return n;  // Declaration only.
    if (toks[i].kind == TokKind::kIdent) {
      const std::string& t = toks[i].text;
      if (t == "const" || t == "override" || t == "final" ||
          t == "noexcept" || t == "mutable" || t == "try") {
        ++i;
        // noexcept(...) condition.
        if (IsPunct(toks, i, "(")) i = SkipGroup(toks, i, "(", ")");
        continue;
      }
      if (IsAnnotationMacro(t) && IsPunct(toks, i + 1, "(")) {
        i = SkipGroup(toks, i + 1, "(", ")");
        continue;
      }
      return n;  // Some other identifier: not a definition shape.
    }
    if (IsPunct(toks, i, "&") || IsPunct(toks, i, "&&")) {
      ++i;
      continue;
    }
    if (IsPunct(toks, i, "->")) {
      // Trailing return type: skip tokens (including template groups)
      // until the body '{' or a ';'.
      ++i;
      while (i < n && !IsPunct(toks, i, "{") && !IsPunct(toks, i, ";")) {
        if (IsPunct(toks, i, "(")) {
          i = SkipGroup(toks, i, "(", ")");
        } else {
          ++i;
        }
      }
      continue;
    }
    if (IsPunct(toks, i, ":")) {
      // Member initializer list: ident/qualifier tokens, each initializer
      // carrying one (...) or {...} group, comma-separated, then '{'.
      ++i;
      while (i < n) {
        if (IsPunct(toks, i, "{")) {
          // Either an init like `b_{x}` was just skipped and this is the
          // body, or this is a brace initializer — disambiguated below by
          // what preceded: SkipGroup advances past initializer braces, so
          // a '{' seen at loop head after an ident is an initializer and
          // otherwise the body.
          return i;
        }
        if (IsPunct(toks, i, "(")) {
          i = SkipGroup(toks, i, "(", ")");
          continue;
        }
        if (toks[i].kind == TokKind::kIdent && i + 1 < n &&
            IsPunct(toks, i + 1, "{")) {
          i = SkipGroup(toks, i + 1, "{", "}");
          continue;
        }
        if (IsPunct(toks, i, ",") || toks[i].kind == TokKind::kIdent ||
            IsPunct(toks, i, "::") || IsPunct(toks, i, "<") ||
            IsPunct(toks, i, ">")) {
          ++i;
          continue;
        }
        return n;  // Unrecognized initializer shape.
      }
      return n;
    }
    if (IsPunct(toks, i, "=")) return n;  // = default / = delete / = 0.
    return n;
  }
  return n;
}

/// Whether the identifier at `i` can open a function definition: it must
/// not be a control keyword, must not be a member access, and the prior
/// token must look like the end of a declaration prefix (type name,
/// '*'/'&', '::', '>', or a statement-ish boundary).
bool CanBeDefinitionName(const std::vector<Token>& toks, size_t i) {
  if (IsControlKeyword(toks[i].text)) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::kPunct &&
      (prev.text == "." || prev.text == "->")) {
    return false;  // Member call, never a definition.
  }
  return true;
}

/// Name of the innermost class whose body span contains token `i`, or "".
std::string EnclosingClass(const std::vector<ClassDef>& classes, size_t i) {
  const ClassDef* best = nullptr;
  for (const ClassDef& c : classes) {
    if (c.body_begin < i && i < c.body_end) {
      if (best == nullptr ||
          c.body_end - c.body_begin < best->body_end - best->body_begin) {
        best = &c;
      }
    }
  }
  return best != nullptr ? best->name : std::string();
}

/// A std::unique_lock tag argument that means "not locked on entry" or
/// "already locked": either way it is not a mutex operand.
bool IsLockTag(const std::string& flattened) {
  return flattened == "std::defer_lock" || flattened == "defer_lock" ||
         flattened == "std::adopt_lock" || flattened == "adopt_lock" ||
         flattened == "std::try_to_lock" || flattened == "try_to_lock";
}

bool IsDeferTag(const std::string& flattened) {
  return flattened == "std::defer_lock" || flattened == "defer_lock";
}

}  // namespace

bool FunctionDef::HasParamOfType(const std::string& fragment) const {
  for (const Param& p : params) {
    if (p.type.find(fragment) != std::string::npos) return true;
  }
  return false;
}

std::string FunctionDef::ParamNameOfType(const std::string& fragment) const {
  for (const Param& p : params) {
    if (p.type.find(fragment) != std::string::npos) return p.name;
  }
  return "";
}

std::vector<std::pair<size_t, size_t>> SplitArgs(
    const std::vector<Token>& toks, size_t open, size_t close) {
  std::vector<std::pair<size_t, size_t>> args;
  if (close <= open + 1 || close >= toks.size()) return args;
  size_t begin = open + 1;
  int depth = 0;
  for (size_t i = open + 1; i < close; ++i) {
    if (toks[i].kind == TokKind::kPunct) {
      const std::string& t = toks[i].text;
      if (t == "(" || t == "{" || t == "[") ++depth;
      if (t == ")" || t == "}" || t == "]") --depth;
      if (t == "," && depth == 0) {
        args.emplace_back(begin, i);
        begin = i + 1;
      }
    }
  }
  args.emplace_back(begin, close);
  return args;
}

bool RangeMentionsIdent(const std::vector<Token>& toks, size_t begin,
                        size_t end, const std::string& ident) {
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == ident) {
      return true;
    }
  }
  return false;
}

std::string FlattenMemberPath(const std::vector<Token>& toks, size_t begin,
                              size_t end) {
  std::string path;
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent || toks[i].kind == TokKind::kNumber) {
      path += toks[i].text;
      continue;
    }
    if (toks[i].kind == TokKind::kPunct &&
        (toks[i].text == "." || toks[i].text == "->" ||
         toks[i].text == "::")) {
      path += toks[i].text;
    }
  }
  // Trim dangling separators left by dropped tokens ("&mu_" is fine, but
  // "this->" with a dropped tail would leave "this->").
  while (!path.empty() &&
         (path.back() == '.' || path.back() == ':' || path.back() == '>')) {
    path.pop_back();
    if (!path.empty() && path.back() == '-') path.pop_back();
  }
  return path;
}

ParsedFile ParseFile(LexedFile lex) {
  ParsedFile out;
  out.lex = std::move(lex);
  const std::vector<Token>& toks = out.lex.tokens;
  const size_t n = toks.size();

  // Pass 0: class/struct body extents, so fields and inline methods can
  // be attributed to their class.
  for (size_t i = 0; i < n; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (toks[i].text != "class" && toks[i].text != "struct") continue;
    if (i > 0 && IsIdent(toks, i - 1, "enum")) continue;  // enum class.
    size_t j = i + 1;
    if (j >= n || toks[j].kind != TokKind::kIdent) continue;  // Anonymous.
    const std::string name = toks[j].text;
    const int line = toks[j].line;
    // Walk the head (final, base clauses, template bases) to '{' or give
    // up on ';' (forward declaration) or anything unrecognized (e.g. a
    // `struct S* f()` return type).
    size_t k = j + 1;
    size_t body = n;
    while (k < n) {
      if (IsPunct(toks, k, "{")) {
        body = k;
        break;
      }
      if (IsPunct(toks, k, ";")) break;  // Forward declaration.
      if (toks[k].kind == TokKind::kIdent || IsPunct(toks, k, "::") ||
          IsPunct(toks, k, ",") || IsPunct(toks, k, ":")) {
        ++k;
        continue;
      }
      if (IsPunct(toks, k, "<")) {
        k = SkipGroup(toks, k, "<", ">");
        continue;
      }
      break;  // Not a class-definition shape.
    }
    if (body >= n) continue;
    const size_t body_end = MatchForward(toks, body, "{", "}");
    if (body_end >= n) continue;
    ClassDef cls;
    cls.name = name;
    cls.line = line;
    cls.body_begin = body;
    cls.body_end = body_end;
    out.classes.push_back(std::move(cls));
  }

  // Pass 1: recover function definitions by the shape
  //   NAME ( params ) [qualifiers] [annotations] [init-list] {
  for (size_t i = 0; i < n; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (!IsPunct(toks, i + 1, "(")) continue;
    if (!CanBeDefinitionName(toks, i)) continue;
    if (IsAnnotationMacro(toks[i].text)) continue;
    const size_t close = MatchForward(toks, i + 1, "(", ")");
    if (close >= n) continue;
    const size_t body = FindBodyBrace(toks, close + 1);
    if (body >= n) continue;
    const size_t body_end = MatchForward(toks, body, "{", "}");
    if (body_end >= n) continue;

    FunctionDef fn;
    fn.name = toks[i].text;
    fn.line = toks[i].line;
    fn.name_index = i;
    fn.body_begin = body;
    fn.body_end = body_end;
    // Class attribution: a `C::name` / `C::~C` qualifier wins; otherwise
    // the innermost enclosing class body (inline methods in headers).
    size_t qual = i;  // Index whose predecessor should be '::'.
    if (qual >= 1 && IsPunct(toks, qual - 1, "~")) --qual;
    if (qual >= 2 && IsPunct(toks, qual - 1, "::") &&
        toks[qual - 2].kind == TokKind::kIdent) {
      fn.class_name = toks[qual - 2].text;
    } else {
      fn.class_name = EnclosingClass(out.classes, i);
    }
    for (const auto& range : SplitArgs(toks, i + 1, close)) {
      if (range.first >= range.second) continue;  // Empty list: ().
      fn.params.push_back(ParseParam(toks, range.first, range.second));
    }
    // Thread-safety annotations between the parameter list and the body.
    for (size_t k = close + 1; k < body; ++k) {
      if (toks[k].kind != TokKind::kIdent ||
          !IsAnnotationMacro(toks[k].text) || !IsPunct(toks, k + 1, "(")) {
        continue;
      }
      const size_t aclose = MatchForward(toks, k + 1, "(", ")");
      if (aclose >= body) continue;
      std::vector<std::string>* dest = nullptr;
      if (toks[k].text == "CYQR_REQUIRES") dest = &fn.requires_locks;
      if (toks[k].text == "CYQR_ACQUIRE") dest = &fn.acquire_locks;
      if (toks[k].text == "CYQR_RELEASE") dest = &fn.release_locks;
      if (toks[k].text == "CYQR_EXCLUDES") dest = &fn.excludes_locks;
      if (dest == nullptr) continue;
      for (const auto& range : SplitArgs(toks, k + 1, aclose)) {
        const std::string path =
            FlattenMemberPath(toks, range.first, range.second);
        if (!path.empty()) dest->push_back(path);
      }
      k = aclose;
    }
    out.functions.push_back(std::move(fn));
    // Do not skip past the body: nested recognizable definitions (local
    // structs' methods) are rare but harmless to record. The outer scan
    // continues token by token.
  }

  // Pass 2: per function, recover calls and lock regions inside the body.
  for (FunctionDef& fn : out.functions) {
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;

      // Lock-guard declaration: [std ::] guard_type [<...>] NAME ( | { | ;
      if (IsGuardType(toks[i].text)) {
        size_t j = i + 1;
        if (IsPunct(toks, j, "<")) {
          const size_t tclose = MatchForward(toks, j, "<", ">");
          if (tclose >= fn.body_end) continue;
          j = tclose + 1;
        }
        if (j < fn.body_end && toks[j].kind == TokKind::kIdent) {
          const std::string guard_type = toks[i].text;
          const std::string guard_name = toks[j].text;
          const int guard_line = toks[i].line;
          // Constructor arguments: mutexes, plus possible lock tags.
          std::vector<std::string> mutexes;
          bool deferred = false;
          size_t decl_end = j + 1;
          size_t args_open = n;
          size_t args_close = n;
          if (IsPunct(toks, decl_end, "(")) {
            args_open = decl_end;
            args_close = MatchForward(toks, decl_end, "(", ")");
            decl_end = SkipGroup(toks, decl_end, "(", ")");
          } else if (IsPunct(toks, decl_end, "{")) {
            args_open = decl_end;
            args_close = MatchForward(toks, decl_end, "{", "}");
            decl_end = SkipGroup(toks, decl_end, "{", "}");
          }
          if (args_open < n && args_close < n) {
            for (const auto& range : SplitArgs(toks, args_open, args_close)) {
              const std::string path =
                  FlattenMemberPath(toks, range.first, range.second);
              if (path.empty()) continue;
              if (IsDeferTag(path)) deferred = true;
              if (!IsLockTag(path)) mutexes.push_back(path);
            }
          }
          // The guard can be held until the enclosing brace scope closes.
          int depth = 0;
          size_t scope_end = fn.body_end;
          for (size_t k = decl_end; k < fn.body_end; ++k) {
            if (IsPunct(toks, k, "{")) ++depth;
            if (IsPunct(toks, k, "}")) {
              if (depth == 0) {
                scope_end = k;
                break;
              }
              --depth;
            }
          }
          // Segment the scope at explicit name.unlock()/name.lock()
          // calls: held regions alternate with released gaps (the
          // unique_lock early-release and re-lock idiom). A defer_lock
          // guard starts released.
          bool held = !deferred;
          size_t pos = decl_end;
          int segment_line = guard_line;
          while (pos < scope_end) {
            if (held) {
              size_t cut = scope_end;
              size_t resume = scope_end;
              for (size_t k = pos; k + 3 < scope_end; ++k) {
                if (toks[k].kind == TokKind::kIdent &&
                    toks[k].text == guard_name && IsPunct(toks, k + 1, ".") &&
                    IsIdent(toks, k + 2, "unlock") &&
                    IsPunct(toks, k + 3, "(")) {
                  cut = k;
                  resume = SkipGroup(toks, k + 3, "(", ")");
                  break;
                }
              }
              LockRegion region;
              region.guard_type = guard_type;
              region.name = guard_name;
              region.mutexes = mutexes;
              region.shared = guard_type == "shared_lock";
              region.line = segment_line;
              region.begin = pos;
              region.end = cut;
              fn.locks.push_back(std::move(region));
              if (cut >= scope_end) break;
              pos = resume;
              held = false;
            } else {
              size_t resume = scope_end;
              int line = segment_line;
              for (size_t k = pos; k + 3 < scope_end; ++k) {
                if (toks[k].kind == TokKind::kIdent &&
                    toks[k].text == guard_name && IsPunct(toks, k + 1, ".") &&
                    IsIdent(toks, k + 2, "lock") &&
                    IsPunct(toks, k + 3, "(")) {
                  resume = SkipGroup(toks, k + 3, "(", ")");
                  line = toks[k].line;
                  break;
                }
              }
              if (resume >= scope_end) break;
              pos = resume;
              segment_line = line;
              held = true;
            }
          }
          continue;
        }
      }

      // Call expression: IDENT ( ... )
      if (!IsPunct(toks, i + 1, "(")) continue;
      if (IsControlKeyword(toks[i].text)) continue;
      if (IsAnnotationMacro(toks[i].text)) continue;
      const size_t close = MatchForward(toks, i + 1, "(", ")");
      if (close >= fn.body_end + 1) continue;
      CallSite call;
      call.callee = toks[i].text;
      call.line = toks[i].line;
      call.name_index = i;
      call.open_paren = i + 1;
      call.close_paren = close;
      if (i >= 1 && toks[i - 1].kind == TokKind::kPunct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
        call.member_call = true;
        if (i >= 2 && toks[i - 2].kind == TokKind::kIdent) {
          call.receiver = toks[i - 2].text;
        }
      }
      if (close > i + 2) {
        call.args = SplitArgs(toks, i + 1, close);
      }
      fn.calls.push_back(std::move(call));
    }
  }

  // Pass 3: CYQR_GUARDED_BY fields and function-attached annotations
  // (declarations included — pass 1 only sees definitions).
  for (size_t i = 0; i + 1 < n; ++i) {
    if (toks[i].kind != TokKind::kIdent || !IsAnnotationMacro(toks[i].text) ||
        !IsPunct(toks, i + 1, "(")) {
      continue;
    }
    const size_t close = MatchForward(toks, i + 1, "(", ")");
    if (close >= n) continue;
    std::vector<std::string> args;
    for (const auto& range : SplitArgs(toks, i + 1, close)) {
      const std::string path =
          FlattenMemberPath(toks, range.first, range.second);
      if (!path.empty()) args.push_back(path);
    }
    if (args.empty()) continue;

    if (toks[i].text == "CYQR_GUARDED_BY") {
      // Field form: `Type name CYQR_GUARDED_BY(mu);` — the field name is
      // the identifier immediately before the macro.
      if (i == 0 || toks[i - 1].kind != TokKind::kIdent) continue;
      GuardedFieldDecl field;
      field.class_name = EnclosingClass(out.classes, i);
      field.field = toks[i - 1].text;
      field.mutex = args[0];
      field.line = toks[i].line;
      out.guarded_fields.push_back(std::move(field));
      continue;
    }

    // Function form: walk backward over trailing qualifiers and earlier
    // annotation groups to the parameter list's ')', then match back to
    // its '(' — the identifier before it is the function name.
    size_t k = i;
    std::string function;
    size_t name_index = n;
    while (k > 0) {
      --k;
      if (toks[k].kind == TokKind::kIdent) {
        const std::string& t = toks[k].text;
        if (t == "const" || t == "noexcept" || t == "override" ||
            t == "final" || t == "mutable") {
          continue;
        }
        break;  // Unexpected shape.
      }
      if (IsPunct(toks, k, ")")) {
        const size_t open = MatchBackward(toks, k, "(", ")");
        if (open >= n || open == 0) break;
        size_t before = open - 1;
        if (toks[before].kind != TokKind::kIdent) break;
        if (IsAnnotationMacro(toks[before].text) ||
            toks[before].text == "noexcept") {
          // That group belonged to another annotation (or a noexcept
          // condition); keep walking backward past it.
          k = before;
          continue;
        }
        function = toks[before].text;
        name_index = before;
        break;
      }
      break;  // Unexpected shape.
    }
    if (function.empty()) continue;
    AnnotationSite site;
    site.macro = toks[i].text;
    site.function = function;
    site.args = std::move(args);
    site.line = toks[i].line;
    size_t qual = name_index;
    if (qual >= 1 && IsPunct(toks, qual - 1, "~")) --qual;
    if (qual >= 2 && IsPunct(toks, qual - 1, "::") &&
        toks[qual - 2].kind == TokKind::kIdent) {
      site.class_name = toks[qual - 2].text;
    } else {
      site.class_name = EnclosingClass(out.classes, name_index);
    }
    out.annotations.push_back(std::move(site));
  }
  return out;
}

}  // namespace cyqr_lint
