#include "driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/file_util.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"

namespace cyqr_lint {

namespace {

namespace fs = std::filesystem;

/// Bump whenever a rule's behaviour changes: stale caches from an older
/// rule set must miss, or a fixed rule would keep replaying its old
/// (possibly wrong) diagnostics for unchanged files.
constexpr const char* kRulesVersionSalt = "cyqr-lint-rules-v3";
constexpr const char* kCacheMagic = "cyqr-lint-cache 3";

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool IsExcluded(const std::string& path,
                const std::vector<std::string>& exclude) {
  for (const std::string& fragment : exclude) {
    if (path.find(fragment) != std::string::npos) return true;
  }
  return false;
}

/// Minimal barrier for the two analysis waves: every submitted job calls
/// Done() exactly once; Wait() returns when all of them have.
class WaitGroup {
 public:
  void Add(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }
  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ CYQR_GUARDED_BY(mu_) = 0;
};

struct CacheEntry {
  uint64_t hash = 0;
  std::vector<std::string> status_facts;
  std::vector<std::string> deadline_facts;
  /// Serialized thread-safety declaration facts ("gf ..."/"rq ..."/
  /// "aq ..."); part of the whole-context fingerprint.
  std::vector<std::string> ts_facts;
  /// Serialized lock-order edge facts ("le ..."/"hc ..."/"fl ...");
  /// outside the fingerprint — the cycle pass recomputes from them fresh
  /// every run, so they influence no per-file diagnostic.
  std::vector<std::string> edge_facts;
  std::vector<Diagnostic> diags;
};

struct Cache {
  bool loaded = false;
  uint64_t fingerprint = 0;
  std::map<std::string, CacheEntry> entries;
};

Cache LoadCache(const std::string& path) {
  Cache cache;
  if (path.empty()) return cache;
  std::ifstream in(path);
  if (!in.is_open()) return cache;
  std::string line;
  if (!std::getline(in, line) || line != kCacheMagic) return cache;
  if (!std::getline(in, line) || line.rfind("fingerprint ", 0) != 0) {
    return cache;
  }
  cache.fingerprint = std::strtoull(line.c_str() + 12, nullptr, 16);
  CacheEntry* entry = nullptr;
  std::string entry_path;
  while (std::getline(in, line)) {
    if (line.rfind("file ", 0) == 0) {
      // "file <hash-hex> <path>" — path last, it may contain spaces.
      std::istringstream fields(line.substr(5));
      std::string hash_hex;
      fields >> hash_hex;
      std::getline(fields, entry_path);
      if (!entry_path.empty() && entry_path.front() == ' ') {
        entry_path.erase(0, 1);
      }
      entry = &cache.entries[entry_path];
      entry->hash = std::strtoull(hash_hex.c_str(), nullptr, 16);
    } else if (entry != nullptr && line.rfind("s ", 0) == 0) {
      entry->status_facts.push_back(line.substr(2));
    } else if (entry != nullptr && line.rfind("d ", 0) == 0) {
      entry->deadline_facts.push_back(line.substr(2));
    } else if (entry != nullptr && line.rfind("t ", 0) == 0) {
      entry->ts_facts.push_back(line.substr(2));
    } else if (entry != nullptr && line.rfind("e ", 0) == 0) {
      entry->edge_facts.push_back(line.substr(2));
    } else if (entry != nullptr && line.rfind("g ", 0) == 0) {
      // "g <line> <rule> <message...>"
      std::istringstream fields(line.substr(2));
      Diagnostic d;
      fields >> d.line >> d.rule;
      std::getline(fields, d.message);
      if (!d.message.empty() && d.message.front() == ' ') {
        d.message.erase(0, 1);
      }
      d.file = entry_path;
      entry->diags.push_back(std::move(d));
    } else {
      return Cache{};  // Corrupt line: discard the whole cache.
    }
  }
  cache.loaded = true;
  return cache;
}

void HashMix(uint64_t* h, const std::string& s) {
  for (char c : s) {
    *h ^= static_cast<unsigned char>(c);
    *h *= 1099511628211ull;
  }
  *h ^= 0xffu;  // Separator so {"ab","c"} != {"a","bc"}.
  *h *= 1099511628211ull;
}

/// Cached diagnostics are valid only under the exact same analysis
/// context: rule set version, enabled rules, allowlists, and the merged
/// cross-file fact sets (a new Status-returning function elsewhere can
/// create findings in an unchanged file).
uint64_t Fingerprint(const LintOptions& options, const LintContext& ctx) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  HashMix(&h, kRulesVersionSalt);
  for (const std::string& rule : options.enabled_rules) HashMix(&h, rule);
  for (const auto& kv : options.allow) {
    HashMix(&h, kv.first);
    for (const std::string& fragment : kv.second) HashMix(&h, fragment);
  }
  for (const std::string& name : ctx.status_functions) HashMix(&h, name);
  for (const std::string& name : ctx.deadline_functions) HashMix(&h, name);
  for (const auto& kv : ctx.guarded_fields) {
    HashMix(&h, "gf");
    HashMix(&h, kv.first);
    HashMix(&h, kv.second);
  }
  for (const auto& kv : ctx.requires_functions) {
    HashMix(&h, "rq");
    HashMix(&h, kv.first);
    for (const std::string& m : kv.second) HashMix(&h, m);
  }
  for (const auto& kv : ctx.acquire_functions) {
    HashMix(&h, "aq");
    HashMix(&h, kv.first);
    for (const std::string& m : kv.second) HashMix(&h, m);
  }
  // ctx.lock_order_edges deliberately excluded: see LintContext.
  return h;
}

std::string StripNewlines(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

void WriteCache(const std::string& path, uint64_t fingerprint,
                const std::map<std::string, CacheEntry>& entries,
                std::vector<std::string>* errors) {
  if (path.empty()) return;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) {
      errors->push_back("cannot write cache: " + tmp);
      return;
    }
    char hex[32];
    out << kCacheMagic << '\n';
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    out << "fingerprint " << hex << '\n';
    for (const auto& kv : entries) {
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(kv.second.hash));
      out << "file " << hex << ' ' << kv.first << '\n';
      for (const std::string& name : kv.second.status_facts) {
        out << "s " << name << '\n';
      }
      for (const std::string& name : kv.second.deadline_facts) {
        out << "d " << name << '\n';
      }
      for (const std::string& fact : kv.second.ts_facts) {
        out << "t " << fact << '\n';
      }
      for (const std::string& fact : kv.second.edge_facts) {
        out << "e " << fact << '\n';
      }
      for (const Diagnostic& d : kv.second.diags) {
        out << "g " << d.line << ' ' << d.rule << ' '
            << StripNewlines(d.message) << '\n';
      }
    }
    out.flush();
    if (!out.good()) {
      errors->push_back("cannot write cache: " + tmp);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) errors->push_back("cannot publish cache: " + path);
}

/// Per-file state threaded through the two waves. Each worker touches
/// only its own slot, so the vectors need no locking; the WaitGroup's
/// release/acquire pair publishes the writes to the coordinating thread.
struct FileWork {
  std::string path;
  std::string source;
  uint64_t hash = 0;
  bool read_ok = false;
  bool hash_hit = false;  ///< Content matches the cache entry.
  bool parsed_ok = false;
  ParsedFile parsed;  ///< Wave 1 parses once; wave 2 reuses it.
  std::set<std::string> status_facts;
  std::set<std::string> deadline_facts;
  std::set<std::string> ts_facts;
  std::vector<std::string> edge_facts;
  bool analyzed = false;
  std::vector<Diagnostic> diags;
  bool fixed = false;
};

/// Runs `fn(i)` for every index on the pool; falls back to running
/// inline when admission is refused so a small queue can never deadlock
/// or drop work.
void ParallelFor(cyqr::ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  WaitGroup wg;
  wg.Add(static_cast<int>(n));
  for (size_t i = 0; i < n; ++i) {
    const cyqr::Status admitted = pool->Submit([&fn, &wg, i] {
      fn(i);
      wg.Done();
    });
    if (!admitted.ok()) {
      fn(i);
      wg.Done();
    }
  }
  wg.Wait();
}

}  // namespace

std::vector<std::string> ExpandPaths(const std::vector<std::string>& paths,
                                     const std::vector<std::string>& exclude,
                                     std::vector<std::string>* errors) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && HasLintableExtension(it->path())) {
          files.push_back(it->path().lexically_normal().string());
        }
      }
      if (ec) errors->push_back("cannot walk directory: " + p);
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(fs::path(p).lexically_normal().string());
    } else {
      errors->push_back("no such file or directory: " + p);
    }
  }
  files.erase(std::remove_if(files.begin(), files.end(),
                             [&exclude](const std::string& f) {
                               return IsExcluded(f, exclude);
                             }),
              files.end());
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  *out = buf.str();
  return true;
}

uint64_t HashContent(const std::string& data) {
  uint64_t h = 1469598103934665603ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string ApplyFixes(const std::string& source,
                       std::vector<FixEdit> edits) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : source) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const bool trailing_newline = current.empty() && !source.empty();
  if (!current.empty()) lines.push_back(std::move(current));

  // Descending line order; deletes before inserts on the same line so a
  // delete+insert pair at one spot nets a replacement.
  std::stable_sort(edits.begin(), edits.end(),
                   [](const FixEdit& a, const FixEdit& b) {
                     if (a.line != b.line) return a.line > b.line;
                     return a.kind == FixEdit::Kind::kDeleteLine &&
                            b.kind != FixEdit::Kind::kDeleteLine;
                   });
  for (const FixEdit& edit : edits) {
    const size_t idx = static_cast<size_t>(edit.line - 1);
    if (idx >= lines.size() && edit.kind != FixEdit::Kind::kInsertLineBefore) {
      continue;  // Span drifted (should not happen): skip, do not corrupt.
    }
    switch (edit.kind) {
      case FixEdit::Kind::kAppendToLine:
        lines[idx] += edit.text;
        break;
      case FixEdit::Kind::kDeleteLine:
        lines.erase(lines.begin() + static_cast<long>(idx));
        break;
      case FixEdit::Kind::kInsertLineBefore: {
        std::string text = edit.text;
        if (!text.empty() && text[0] != ' ' && text[0] != '\t' &&
            idx < lines.size()) {
          const std::string& target = lines[idx];
          const size_t indent = target.find_first_not_of(" \t");
          if (indent != std::string::npos && indent > 0) {
            text = target.substr(0, indent) + text;
          }
        }
        if (idx >= lines.size()) {
          lines.push_back(std::move(text));
        } else {
          lines.insert(lines.begin() + static_cast<long>(idx),
                       std::move(text));
        }
        break;
      }
    }
  }
  std::string out;
  for (size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size() || trailing_newline) out += '\n';
  }
  return out;
}

std::string FormatStats(const DriverStats& stats) {
  std::ostringstream out;
  out << "cyqr_lint stats: files=" << stats.files_total
      << " analyzed=" << stats.files_analyzed
      << " from_cache=" << stats.files_from_cache
      << " fixed=" << stats.files_fixed << " jobs=" << stats.jobs
      << " cache=" << (stats.cache_valid ? "warm" : "cold") << '\n';
  for (const auto& kv : stats.rule_millis) {
    char ms[32];
    std::snprintf(ms, sizeof(ms), "%.2f", kv.second);
    out << "cyqr_lint rule_ms " << kv.first << ' ' << ms << '\n';
  }
  return out.str();
}

DriverResult RunDriver(const std::vector<std::string>& paths,
                       const DriverOptions& options) {
  DriverResult result;
  const std::vector<std::string> files =
      ExpandPaths(paths, options.exclude, &result.lint.errors);
  result.stats.files_total = static_cast<int>(files.size());

  const bool fix_mode = options.fix || options.fix_dry_run;
  Cache cache = LoadCache(options.cache_path);

  int jobs = options.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (jobs < 1) jobs = 1;
  result.stats.jobs = jobs;

  cyqr::ThreadPool::Options pool_options;
  pool_options.num_threads = jobs;
  pool_options.queue_capacity = std::max<size_t>(64, files.size() + 1);
  cyqr::ThreadPool pool(pool_options);

  std::vector<FileWork> work(files.size());
  std::atomic<int> read_failures{0};

  // Wave 1: read + hash every file; lex+parse and collect facts for the
  // ones the cache cannot vouch for. Facts for hash-hit files come
  // straight from the cache, so a warm run never re-lexes an unchanged
  // tree.
  ParallelFor(&pool, work.size(), [&](size_t i) {
    FileWork& w = work[i];
    w.path = files[i];
    if (!ReadFileToString(w.path, &w.source)) {
      // ordering: pure tally, read only after the WaitGroup barrier.
      read_failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    w.read_ok = true;
    w.hash = HashContent(w.source);
    auto it = cache.entries.find(w.path);
    if (cache.loaded && it != cache.entries.end() &&
        it->second.hash == w.hash) {
      w.hash_hit = true;
      w.status_facts.insert(it->second.status_facts.begin(),
                            it->second.status_facts.end());
      w.deadline_facts.insert(it->second.deadline_facts.begin(),
                              it->second.deadline_facts.end());
      w.ts_facts.insert(it->second.ts_facts.begin(),
                        it->second.ts_facts.end());
      w.edge_facts = it->second.edge_facts;
      return;
    }
    w.parsed = ParseFile(LexFile(w.path, w.source));
    w.parsed_ok = true;
    CollectStatusFunctions(w.parsed.lex, &w.status_facts);
    CollectDeadlineFunctions(w.parsed.lex, &w.deadline_facts);
    CollectThreadSafetyFacts(w.parsed, &w.ts_facts, &w.edge_facts);
  });

  // Barrier: the cross-file fact sets must be complete before any rule
  // runs, and the context fingerprint decides cached-diagnostic reuse.
  LintContext ctx;
  SeedContext(&ctx);
  for (const FileWork& w : work) {
    ctx.status_functions.insert(w.status_facts.begin(),
                                w.status_facts.end());
    ctx.deadline_functions.insert(w.deadline_facts.begin(),
                                  w.deadline_facts.end());
    MergeThreadSafetyFacts(w.ts_facts, &ctx);
  }
  const uint64_t fingerprint = Fingerprint(options.lint, ctx);
  const bool cache_valid =
      cache.loaded && cache.fingerprint == fingerprint;
  result.stats.cache_valid = cache_valid;
  // Edge facts resolve only against the complete requires/acquire maps,
  // so this runs after every file's declaration facts are merged.
  for (const FileWork& w : work) {
    ResolveEdgeFacts(w.path, w.edge_facts, &ctx);
  }

  // Wave 2: analyze. Cached diagnostics are reused only when the file's
  // content AND the whole-context fingerprint match — and never in fix
  // mode, because cached findings carry no fix spans.
  const std::vector<std::unique_ptr<Rule>> rules = BuildAllRules();
  RuleTimings timings(rules.size());
  std::atomic<int> analyzed{0};
  std::atomic<int> from_cache{0};
  ParallelFor(&pool, work.size(), [&](size_t i) {
    FileWork& w = work[i];
    if (!w.read_ok) return;
    if (cache_valid && w.hash_hit && !fix_mode) {
      w.diags = cache.entries.find(w.path)->second.diags;
      // ordering: pure tally, read only after Drain().
      from_cache.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!w.parsed_ok) {
      w.parsed = ParseFile(LexFile(w.path, w.source));
      w.parsed_ok = true;
    }
    AnalyzeFile(w.parsed, ctx, options.lint, rules, &w.diags, &timings);
    w.analyzed = true;
    // ordering: pure tally, read only after Drain().
    analyzed.fetch_add(1, std::memory_order_relaxed);
  });
  pool.Drain();
  result.stats.files_analyzed = analyzed.load();
  result.stats.files_from_cache = from_cache.load();

  // Whole-tree pass: cycles in the merged lock acquisition-order graph.
  // Never cached (edges are re-resolved every run, including from
  // hash-hit files); NOLINT was applied at edge collection, allowlists
  // apply here.
  std::vector<Diagnostic> cycle_diags;
  if (options.lint.enabled_rules.empty() ||
      options.lint.enabled_rules.count("lock-order-cycle") != 0) {
    const auto cycle_start = std::chrono::steady_clock::now();
    for (Diagnostic& d : CheckLockOrderCycles(ctx)) {
      if (IsAllowlisted(options.lint, d.rule, d.file)) continue;
      cycle_diags.push_back(std::move(d));
    }
    for (size_t r = 0; r < rules.size(); ++r) {
      if (std::string(rules[r]->name()) == "lock-order-cycle") {
        timings.Add(r, std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - cycle_start)
                           .count());
      }
    }
  }
  for (size_t r = 0; r < rules.size(); ++r) {
    result.stats.rule_millis.emplace_back(
        rules[r]->name(), static_cast<double>(timings.nanos(r)) / 1e6);
  }

  // Fix phase (serial: touches the filesystem). Synthesized NOLINT
  // suppressions are attached first so they ride the same edit engine.
  if (fix_mode) {
    std::ostringstream diff;
    for (FileWork& w : work) {
      if (!w.read_ok) continue;
      std::vector<FixEdit> edits;
      for (Diagnostic& d : w.diags) {
        if (d.fixes.empty()) {
          const bool synth =
              std::find(options.fix_nolint_rules.begin(),
                        options.fix_nolint_rules.end(),
                        d.rule) != options.fix_nolint_rules.end();
          if (synth) {
            FixEdit nolint;
            nolint.kind = FixEdit::Kind::kInsertLineBefore;
            nolint.line = d.line;
            nolint.text = "// NOLINTNEXTLINE(cyqr-" + d.rule +
                          "): TODO: justify this exemption.";
            d.fixes.push_back(std::move(nolint));
          }
        }
        for (const FixEdit& e : d.fixes) {
          edits.push_back(e);
          diff << w.path << ':' << e.line << ": "
               << (e.kind == FixEdit::Kind::kDeleteLine ? "- (delete line)"
                   : e.kind == FixEdit::Kind::kAppendToLine
                       ? "+ (append) " + e.text
                       : "+ " + e.text)
               << '\n';
        }
      }
      if (edits.empty()) continue;
      const std::string fixed = ApplyFixes(w.source, std::move(edits));
      if (fixed == w.source) continue;
      w.fixed = true;
      ++result.stats.files_fixed;
      if (options.fix && !options.fix_dry_run) {
        // Temp + fsync + rename: an interrupted fix run (crash, SIGKILL,
        // power cut) can never truncate a source file — the original is
        // replaced only by the atomic rename of a fully synced temp.
        const std::string tmp = cyqr::TempPathFor(w.path);
        bool streamed = false;
        {
          std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
          out << fixed;
          out.flush();
          streamed = out.good();
        }
        if (!streamed || !cyqr::SyncFile(tmp).ok()) {
          result.lint.errors.push_back("cannot rewrite: " + w.path);
          std::error_code ec;
          fs::remove(tmp, ec);
          continue;
        }
        if (options.on_fix_tmp_synced) options.on_fix_tmp_synced(tmp);
        if (!cyqr::RenameFile(tmp, w.path).ok()) {
          result.lint.errors.push_back("cannot rewrite: " + w.path);
          std::error_code ec;
          fs::remove(tmp, ec);
        }
      }
    }
    result.fix_diff = diff.str();
  }

  // Assemble the result and the next cache generation. Files just
  // rewritten by --fix are dropped from the cache: their on-disk content
  // no longer matches the hash the diagnostics were computed from.
  std::map<std::string, CacheEntry> next_entries;
  int scanned = 0;
  for (FileWork& w : work) {
    if (!w.read_ok) {
      result.lint.errors.push_back("cannot read: " + w.path);
      continue;
    }
    ++scanned;
    for (const Diagnostic& d : w.diags) {
      result.lint.diagnostics.push_back(d);
    }
    if (options.cache_path.empty() || w.fixed) continue;
    CacheEntry entry;
    entry.hash = w.hash;
    entry.status_facts.assign(w.status_facts.begin(),
                              w.status_facts.end());
    entry.deadline_facts.assign(w.deadline_facts.begin(),
                                w.deadline_facts.end());
    entry.ts_facts.assign(w.ts_facts.begin(), w.ts_facts.end());
    entry.edge_facts = w.edge_facts;
    entry.diags = w.diags;
    next_entries[w.path] = std::move(entry);
  }
  for (Diagnostic& d : cycle_diags) {
    result.lint.diagnostics.push_back(std::move(d));
  }
  result.lint.files_scanned = scanned;
  std::sort(result.lint.diagnostics.begin(), result.lint.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  if (!options.cache_path.empty()) {
    WriteCache(options.cache_path, fingerprint, next_entries,
               &result.lint.errors);
  }
  return result;
}

}  // namespace cyqr_lint
