// cyqr — command-line interface for the cycle-consistent query rewriter.
//
//   cyqr generate-data --out DIR [--queries N] [--sessions N] [--seed S]
//       Writes a synthetic click log (pairs.tsv) plus the distinct queries.
//
//   cyqr train --data pairs.tsv --out MODEL_DIR
//              [--steps N] [--warmup N] [--layers N] [--separate]
//              [--checkpoint-every N] [--checkpoint-dir DIR]
//              [--checkpoint-keep K] [--resume]
//              [--crash-at-step N] [--nan-at-step N]
//              [--introspect-port P] [--introspect-hold-ms MS]
//              [--flight-out flight.json]
//       Builds a vocabulary, trains the cycle model (Algorithm 1), and
//       stores config + vocabulary + parameters in MODEL_DIR. With
//       --checkpoint-every the run is crash-safe: atomic checksummed
//       checkpoints rotate in --checkpoint-dir (default
//       MODEL_DIR/checkpoints) and --resume continues bit-identically
//       from the newest one. --crash-at-step / --nan-at-step are the
//       fault-drill hooks (die as if SIGKILLed / poison one batch).
//       The flight recorder is always armed: any kill/fault dumps the
//       event journal to --flight-out (default MODEL_DIR/flight.json),
//       and a clean run writes it there on exit. --introspect-port
//       serves /metrics /statusz /tracez /flightz live during training
//       (0 = ephemeral; --introspect-hold-ms keeps the endpoint up
//       after the run for scraping).
//
//   cyqr rewrite --model MODEL_DIR --query "phone for grandpa" [--k 3]
//       Runs the Figure 3 inference pipeline on one query.
//
//   cyqr eval --model MODEL_DIR --data pairs.tsv [--limit N]
//       Teacher-forced perplexity/accuracy plus translate-back metrics.
//
//   cyqr precompute --model MODEL_DIR --queries queries.tsv --out kv.tsv
//                   [--limit N] [--k 3]
//       The nightly batch job: runs the cyclic pipeline over head queries
//       and writes the KV rewrite snapshot (atomic, checksummed).
//
//   cyqr serve --kv kv.tsv --queries queries.tsv [--requests N]
//              [--budget-ms 50] [--cache-error-p F] [--cache-latency-p F]
//              [--cache-latency-ms F] [--fault-seed S]
//              [--threads N] [--queue-depth D] [--shed-policy reject|oldest]
//              [--metrics-out metrics.json] [--metrics-prom metrics.prom]
//              [--print-trace N] [--introspect-port P]
//              [--introspect-hold-ms MS] [--flight-out flight.json]
//       Replays traffic through the fault-tolerant serving ladder
//       (cache -> ... -> identity passthrough) with optional cache fault
//       injection, and reports rung mix, degradation, and latency.
//       --threads N > 0 serves through the concurrent RewriteServer front
//       end (N workers, bounded admission queue of --queue-depth, full
//       queue handled per --shed-policy) and adds served/shed/retry
//       accounting to the report. --metrics-out / --metrics-prom dump the
//       metrics registry as a JSON snapshot / Prometheus text exposition
//       after the replay; --print-trace prints the per-request trace (the
//       exact rung path) for the first N requests (single-threaded mode
//       only). train accepts the same two metrics flags for its
//       cyqr_train_* telemetry. --introspect-port serves the live
//       /metrics /statusz /tracez /flightz pages during the replay
//       (and, with --introspect-hold-ms, for a scrape window after it);
//       --flight-out arms the crash dump and writes the flight journal
//       there when the replay completes.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/bounded_queue.h"
#include "core/deadline.h"
#include "core/file_util.h"
#include "core/flags.h"
#include "core/stopwatch.h"
#include "core/string_util.h"
#include "obs/flight_recorder.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "datagen/io.h"
#include "rewrite/inference.h"
#include "rewrite/trainer.h"
#include "nn/serialize.h"
#include "serving/fault_injection.h"
#include "serving/http_endpoint.h"
#include "serving/rewrite_service.h"
#include "serving/server.h"
#include "text/tokenizer.h"

namespace cyqr {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cyqr <generate-data|train|rewrite|eval|precompute|"
               "serve> [--flags]\n"
               "run with a subcommand and no flags for its options\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Dumps the global metrics registry to the paths given by --metrics-out
/// (JSON snapshot) and --metrics-prom (Prometheus text exposition); empty
/// paths are skipped. Returns 0 or the Fail() exit code.
int DumpMetricsFiles(const std::string& json_path,
                     const std::string& prom_path) {
  if (!json_path.empty()) {
    const Status s = MetricsRegistry::Global().WriteJsonSnapshot(json_path);
    if (!s.ok()) return Fail(s);
    std::printf("metrics snapshot (json) written to %s\n",
                json_path.c_str());
  }
  if (!prom_path.empty()) {
    const Status s =
        MetricsRegistry::Global().WriteExpositionText(prom_path);
    if (!s.ok()) return Fail(s);
    std::printf("metrics exposition (prom) written to %s\n",
                prom_path.c_str());
  }
  return 0;
}

/// The live-introspection stack behind --introspect-port: the page
/// renderer plus the loopback HTTP front end serving it. Holding the
/// struct keeps both alive until the subcommand finishes.
struct IntrospectionStack {
  std::unique_ptr<Introspector> introspector;
  std::unique_ptr<HttpEndpoint> endpoint;
};

/// Starts /metrics, /statusz, /tracez and /flightz on 127.0.0.1:`port`
/// (0 picks a free port) over the process-global registry, trace sampler
/// and flight recorder. Returns null on bind/listen failure (reported).
std::unique_ptr<IntrospectionStack> StartIntrospection(
    int port, const std::string& build_info) {
  auto stack = std::make_unique<IntrospectionStack>();
  Introspector::Options options;
  options.metrics = &MetricsRegistry::Global();
  options.traces = &TraceSampler::Global();
  options.flight = &FlightRecorder::Global();
  options.build_info = build_info;
  stack->introspector = std::make_unique<Introspector>(options);
  HttpEndpoint::Options endpoint_options;
  endpoint_options.port = port;
  stack->endpoint = std::make_unique<HttpEndpoint>(endpoint_options);
  RegisterIntrospectionRoutes(stack->endpoint.get(),
                              stack->introspector.get());
  const Status started = stack->endpoint->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return nullptr;
  }
  std::printf("introspection: http://127.0.0.1:%d/statusz\n",
              stack->endpoint->port());
  std::fflush(stdout);  // A smoke harness reads the port before we finish.
  return stack;
}

/// Keeps the introspection endpoint alive `hold_ms` after the subcommand's
/// work, so an external scraper (the CI smoke) can probe a quiesced
/// process before the endpoint tears down.
void HoldIntrospection(const IntrospectionStack* stack, int64_t hold_ms) {
  if (stack == nullptr || hold_ms <= 0) return;
  std::printf("holding introspection endpoint for %lld ms\n",
              static_cast<long long>(hold_ms));
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
}

int GenerateData(const FlagParser& flags) {
  const std::string out_dir = flags.GetString("out");
  if (out_dir.empty()) {
    std::fprintf(stderr,
                 "generate-data flags: --out DIR [--queries N] "
                 "[--sessions N] [--seed S]\n");
    return 2;
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  Catalog catalog = Catalog::Generate({});
  ClickLogConfig config;
  config.num_distinct_queries = flags.GetInt("queries", 800);
  config.num_sessions = flags.GetInt("sessions", 40000);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  ClickLog log = ClickLog::Generate(catalog, config);

  const std::vector<TokenPair> pairs = log.TokenPairs(catalog);
  Status s = SaveTokenPairs(pairs, out_dir + "/pairs.tsv");
  if (!s.ok()) return Fail(s);

  std::ofstream queries(out_dir + "/queries.tsv");
  if (!queries.is_open()) {
    return Fail(Status::IoError("cannot open " + out_dir + "/queries.tsv"));
  }
  for (const QuerySpec& q : log.queries()) {
    queries << JoinStrings(q.tokens) << '\t'
            << (q.is_colloquial ? "colloquial" : "canonical") << '\n';
  }
  queries.flush();
  if (!queries.good()) {
    return Fail(Status::IoError("failed writing " + out_dir +
                                "/queries.tsv"));
  }
  const DatasetStats stats = log.Stats(catalog);
  std::printf("wrote %lld pairs (%lld distinct queries, vocab %lld) to %s\n",
              static_cast<long long>(stats.num_pairs),
              static_cast<long long>(stats.num_distinct_queries),
              static_cast<long long>(stats.vocab_size), out_dir.c_str());
  return 0;
}

Result<Vocabulary> BuildVocabFromPairs(const std::vector<TokenPair>& pairs) {
  std::vector<std::vector<std::string>> corpus;
  for (const TokenPair& p : pairs) {
    corpus.push_back(p.query);
    corpus.push_back(p.title);
  }
  return Vocabulary::Build(corpus);
}

int Train(const FlagParser& flags) {
  const std::string data_path = flags.GetString("data");
  const std::string out_dir = flags.GetString("out");
  if (data_path.empty() || out_dir.empty()) {
    std::fprintf(stderr,
                 "train flags: --data pairs.tsv --out MODEL_DIR "
                 "[--steps N] [--warmup N] [--layers N] [--batch N] "
                 "[--lambda F] [--separate] [--seed S] "
                 "[--workers K] [--grad-shards S] "
                 "[--collective-timeout-ms MS] "
                 "[--eval-every N] [--curve-out curve.tsv] "
                 "[--checkpoint-every N] [--checkpoint-dir DIR] "
                 "[--checkpoint-keep K] [--resume] "
                 "[--crash-at-step N] [--nan-at-step N] "
                 "[--crash-worker-rank R --crash-worker-at-step N] "
                 "[--stall-worker-rank R --stall-worker-at-step N] "
                 "[--metrics-out metrics.json] "
                 "[--metrics-prom metrics.prom] "
                 "[--introspect-port P] [--introspect-hold-ms MS] "
                 "[--flight-out flight.json]\n");
    return 2;
  }
  const std::string metrics_out = flags.GetString("metrics-out");
  const std::string metrics_prom = flags.GetString("metrics-prom");
  const int64_t introspect_port = flags.GetInt("introspect-port", -1);
  const int64_t introspect_hold_ms = flags.GetInt("introspect-hold-ms", 0);
  std::string flight_out = flags.GetString("flight-out");
  if (flight_out.empty()) flight_out = out_dir + "/flight.json";
  // The model dir is created before training (not after, like the model
  // files) so the armed flight dump — and a mid-run kill drill — always
  // has somewhere to land.
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    return Fail(Status::IoError("cannot create directory " + out_dir));
  }
  // Always-on post-mortem: every fault path (simulated crash, collective
  // abort, guardrail rollback, SIGSEGV/SIGABRT) leaves the stitched
  // journal at --flight-out; clean runs write it explicitly below.
  FlightRecorder::Global().EnableCrashDump(flight_out);
  Result<std::vector<TokenPair>> pairs = LoadTokenPairs(data_path);
  if (!pairs.ok()) return Fail(pairs.status());
  Result<Vocabulary> vocab = BuildVocabFromPairs(pairs.value());
  if (!vocab.ok()) return Fail(vocab.status());
  std::printf("data: %zu pairs, vocabulary %lld tokens\n",
              pairs.value().size(),
              static_cast<long long>(vocab.value().size()));

  CycleConfig config = PaperScaledConfig(vocab.value().size());
  config.forward.num_layers = flags.GetInt("layers", 2);
  config.lambda = static_cast<float>(flags.GetDouble("lambda", 0.1));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1234)));
  CycleModel model(config, rng);

  CycleTrainerOptions options;
  options.max_steps = flags.GetInt("steps", 560);
  options.warmup_steps = flags.GetInt("warmup", 420);
  options.batch_size = flags.GetInt("batch", 8);
  options.joint = !flags.GetBool("separate", false);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));
  options.eval_every = flags.GetInt("eval-every", 0);
  // Data-parallel engine: K worker threads over S gradient shards.
  options.workers = flags.GetInt("workers", 0);
  options.grad_shards = flags.GetInt("grad-shards", 4);
  options.collective_timeout_millis =
      flags.GetDouble("collective-timeout-ms", 20000.0);
  options.checkpoint_every = flags.GetInt("checkpoint-every", 0);
  options.checkpoint_keep = flags.GetInt("checkpoint-keep", 3);
  options.checkpoint_dir = flags.GetString("checkpoint-dir");
  const bool resume = flags.GetBool("resume", false);
  if (options.checkpoint_dir.empty() &&
      (options.checkpoint_every > 0 || resume)) {
    options.checkpoint_dir = out_dir + "/checkpoints";
  }
  if (!metrics_out.empty() || !metrics_prom.empty() ||
      introspect_port >= 0) {
    options.metrics = &MetricsRegistry::Global();
  }
  // Fault-drill hooks.
  options.fault_plan.crash_at_step = flags.GetInt("crash-at-step", -1);
  const int64_t nan_at_step = flags.GetInt("nan-at-step", -1);
  if (nan_at_step >= 0) {
    options.fault_plan.nan_loss_steps.push_back(nan_at_step);
  }
  options.fault_plan.crash_worker_rank =
      flags.GetInt("crash-worker-rank", -1);
  options.fault_plan.crash_worker_at_step =
      flags.GetInt("crash-worker-at-step", -1);
  options.fault_plan.stall_worker_rank =
      flags.GetInt("stall-worker-rank", -1);
  options.fault_plan.stall_worker_at_step =
      flags.GetInt("stall-worker-at-step", -1);
  const std::vector<SeqPair> train = EncodePairs(pairs.value(),
                                                 vocab.value());
  std::printf("training %s model: %lld steps (warmup %lld, workers %lld)"
              "...\n",
              options.joint ? "joint" : "separate",
              static_cast<long long>(options.max_steps),
              static_cast<long long>(options.warmup_steps),
              static_cast<long long>(options.workers));
  Stopwatch watch;
  CycleTrainer trainer(&model, train, options);
  if (resume) {
    const Status resumed = trainer.ResumeLatest();
    if (resumed.ok()) {
      std::printf("resumed from checkpoint at step %lld\n",
                  static_cast<long long>(trainer.step()));
    } else if (resumed.code() == StatusCode::kNotFound) {
      std::printf("no checkpoint to resume from; starting fresh\n");
    } else {
      return Fail(resumed);
    }
  }
  std::unique_ptr<IntrospectionStack> introspection;
  if (introspect_port >= 0) {
    introspection = StartIntrospection(static_cast<int>(introspect_port),
                                       "cyqr_cli train");
    if (introspection == nullptr) return 1;
    // Sections must stay thread-safe: renderers run on endpoint threads
    // while the trainer mutates its own (unsynchronized) state, so only
    // immutable or atomic values are exposed here.
    introspection->introspector->AddStatusSection(
        "subcommand", [] { return std::string("train"); });
    introspection->introspector->AddStatusSection(
        "flight_dump_path", [flight_out] { return flight_out; });
  }
  // With --eval-every the training pairs double as the curve's eval set
  // (the trainer samples options.eval_queries of them per point).
  const Status trained =
      trainer.Train(options.eval_every > 0 ? train
                                           : std::vector<SeqPair>{});
  // Dump telemetry even when training fails — the series leading up to a
  // divergence are exactly what a postmortem needs.
  const int metrics_code = DumpMetricsFiles(metrics_out, metrics_prom);
  const std::string curve_out = flags.GetString("curve-out");
  if (!curve_out.empty()) {
    // Full-precision TSV so drill scripts can demand bit-identical curves
    // across worker counts.
    std::string tsv =
        "step\tq2t_ppl\tt2q_ppl\tq2t_acc\tt2q_acc\ttb_logp\ttb_acc\n";
    for (const TrainMetricsPoint& p : trainer.curve()) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "%lld\t%.17g\t%.17g\t%.17g\t%.17g\t%.17g\t%.17g\n",
                    static_cast<long long>(p.step), p.q2t_perplexity,
                    p.t2q_perplexity, p.q2t_accuracy, p.t2q_accuracy,
                    p.translate_back_log_prob, p.translate_back_accuracy);
      tsv += line;
    }
    const Status curve_status = WriteStringToFileAtomic(curve_out, tsv);
    if (!curve_status.ok()) return Fail(curve_status);
  }
  // Clean runs leave the same journal a fault path would have dumped, so
  // "what did the last run do?" has one answer regardless of outcome.
  const Status journal = FlightRecorder::Global().WriteJournal(flight_out);
  if (journal.ok()) {
    std::printf("flight journal written to %s\n", flight_out.c_str());
  } else {
    std::fprintf(stderr, "warning: flight journal not written: %s\n",
                 journal.ToString().c_str());
  }
  HoldIntrospection(introspection.get(), introspect_hold_ms);
  if (!trained.ok()) return Fail(trained);
  if (metrics_code != 0) return metrics_code;
  std::printf("trained in %.1fs\n", watch.ElapsedSeconds());
  if (trainer.skipped_batches() > 0) {
    std::printf("guardrails: skipped %lld anomalous batches, "
                "%lld rollbacks\n",
                static_cast<long long>(trainer.skipped_batches()),
                static_cast<long long>(trainer.rollbacks()));
  }

  Status s = SaveCycleConfig(config, out_dir + "/config.txt");
  if (!s.ok()) return Fail(s);
  s = vocab.value().Save(out_dir + "/vocab.txt");
  if (!s.ok()) return Fail(s);
  s = SaveParametersToFile(model.Parameters(), out_dir + "/model.params");
  if (!s.ok()) return Fail(s);
  std::printf("model saved to %s\n", out_dir.c_str());
  return 0;
}

struct LoadedModel {
  CycleConfig config;
  Vocabulary vocab;
  std::unique_ptr<CycleModel> model;
};

Result<LoadedModel> LoadModel(const std::string& model_dir) {
  Result<CycleConfig> config = LoadCycleConfig(model_dir + "/config.txt");
  if (!config.ok()) return config.status();
  Result<Vocabulary> vocab = Vocabulary::Load(model_dir + "/vocab.txt");
  if (!vocab.ok()) return vocab.status();
  LoadedModel loaded;
  loaded.config = config.value();
  loaded.vocab = std::move(vocab).value();
  Rng rng(0);
  loaded.model = std::make_unique<CycleModel>(loaded.config, rng);
  Status s = LoadParametersFromFile(loaded.model->Parameters(),
                                    model_dir + "/model.params");
  if (!s.ok()) return s;
  loaded.model->SetTraining(false);
  return loaded;
}

int Rewrite(const FlagParser& flags) {
  const std::string model_dir = flags.GetString("model");
  const std::string query = flags.GetString("query");
  if (model_dir.empty() || query.empty()) {
    std::fprintf(stderr,
                 "rewrite flags: --model MODEL_DIR --query \"...\" "
                 "[--k 3] [--titles]\n");
    return 2;
  }
  Result<LoadedModel> loaded = LoadModel(model_dir);
  if (!loaded.ok()) return Fail(loaded.status());

  Tokenizer tokenizer;
  CycleRewriter rewriter(loaded.value().model.get(),
                         &loaded.value().vocab);
  RewriteOptions options;
  options.k = flags.GetInt("k", 3);
  Stopwatch watch;
  const CycleRewriter::Result result =
      rewriter.Rewrite(tokenizer.Tokenize(query), options);
  const double millis = watch.ElapsedMillis();

  if (flags.GetBool("titles", false)) {
    for (const DecodedSequence& t : result.synthetic_titles) {
      std::printf("title (%7.2f): %s\n", t.log_prob,
                  loaded.value().vocab.DecodeToString(t.ids).c_str());
    }
  }
  for (const RewriteCandidate& c : result.rewrites) {
    std::printf("rewrite (%7.2f): %s\n", c.log_prob,
                JoinStrings(c.tokens).c_str());
  }
  std::printf("(%.0f ms)\n", millis);
  return 0;
}

int Eval(const FlagParser& flags) {
  const std::string model_dir = flags.GetString("model");
  const std::string data_path = flags.GetString("data");
  if (model_dir.empty() || data_path.empty()) {
    std::fprintf(stderr,
                 "eval flags: --model MODEL_DIR --data pairs.tsv "
                 "[--limit N]\n");
    return 2;
  }
  Result<LoadedModel> loaded = LoadModel(model_dir);
  if (!loaded.ok()) return Fail(loaded.status());
  Result<std::vector<TokenPair>> pairs = LoadTokenPairs(data_path);
  if (!pairs.ok()) return Fail(pairs.status());

  std::vector<SeqPair> encoded =
      EncodePairs(pairs.value(), loaded.value().vocab);
  const int64_t limit = flags.GetInt("limit", 200);
  if (static_cast<int64_t>(encoded.size()) > limit) encoded.resize(limit);

  CycleTrainerOptions options;
  options.eval_queries = 32;
  CycleTrainer evaluator(loaded.value().model.get(), encoded, options);
  const TrainMetricsPoint point = evaluator.Evaluate(encoded);
  std::printf("pairs evaluated:            %zu\n", encoded.size());
  std::printf("query-to-title perplexity:  %.3f\n", point.q2t_perplexity);
  std::printf("title-to-query perplexity:  %.3f\n", point.t2q_perplexity);
  std::printf("query-to-title accuracy:    %.3f\n", point.q2t_accuracy);
  std::printf("title-to-query accuracy:    %.3f\n", point.t2q_accuracy);
  std::printf("translate-back log P(x|x):  %.3f\n",
              point.translate_back_log_prob);
  std::printf("translate-back accuracy:    %.3f\n",
              point.translate_back_accuracy);
  return 0;
}

/// Loads queries.tsv (as written by generate-data: "query\tkind"); only the
/// first tab field is used.
Result<std::vector<std::vector<std::string>>> LoadQueries(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  std::vector<std::vector<std::string>> queries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    const std::string query =
        tab == std::string::npos ? line : line.substr(0, tab);
    std::vector<std::string> tokens = SplitString(query);
    if (!tokens.empty()) queries.push_back(std::move(tokens));
  }
  if (in.bad()) return Status::IoError("read error in " + path);
  return queries;
}

int Precompute(const FlagParser& flags) {
  const std::string model_dir = flags.GetString("model");
  const std::string queries_path = flags.GetString("queries");
  const std::string out_path = flags.GetString("out");
  if (model_dir.empty() || queries_path.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "precompute flags: --model MODEL_DIR --queries queries.tsv "
                 "--out kv.tsv [--limit N] [--k 3]\n");
    return 2;
  }
  Result<LoadedModel> loaded = LoadModel(model_dir);
  if (!loaded.ok()) return Fail(loaded.status());
  Result<std::vector<std::vector<std::string>>> queries =
      LoadQueries(queries_path);
  if (!queries.ok()) return Fail(queries.status());
  std::vector<std::vector<std::string>> head = std::move(queries).value();
  const int64_t limit = flags.GetInt("limit", 200);
  if (static_cast<int64_t>(head.size()) > limit) head.resize(limit);

  CycleRewriter rewriter(loaded.value().model.get(), &loaded.value().vocab);
  RewriteOptions options;
  options.k = flags.GetInt("k", 3);
  RewriteKvStore store;
  Stopwatch watch;
  RewriteService::PrecomputeHead(rewriter, head, options, &store);
  Status s = store.Save(out_path);
  if (!s.ok()) return Fail(s);
  std::printf("precomputed %zu head queries into %s in %.1fs\n",
              head.size(), out_path.c_str(), watch.ElapsedSeconds());
  return 0;
}

int ServeTraffic(const FlagParser& flags) {
  const std::string kv_path = flags.GetString("kv");
  const std::string queries_path = flags.GetString("queries");
  if (kv_path.empty() || queries_path.empty()) {
    std::fprintf(stderr,
                 "serve flags: --kv kv.tsv --queries queries.tsv "
                 "[--requests N] [--budget-ms 50] [--cache-error-p F] "
                 "[--cache-latency-p F] [--cache-latency-ms F] "
                 "[--fault-seed S] [--threads N] [--queue-depth D] "
                 "[--shed-policy reject|oldest] "
                 "[--metrics-out metrics.json] "
                 "[--metrics-prom metrics.prom] [--print-trace N] "
                 "[--introspect-port P] [--introspect-hold-ms MS] "
                 "[--flight-out flight.json]\n");
    return 2;
  }
  // Read every flag before any I/O, so an early load failure doesn't make
  // the unused-flag warning misreport flags that were never reached.
  FaultSpec cache_faults;
  cache_faults.error_probability = flags.GetDouble("cache-error-p", 0.0);
  cache_faults.error_code = StatusCode::kIoError;
  cache_faults.error_message = "injected cache outage";
  cache_faults.latency_probability =
      flags.GetDouble("cache-latency-p", 0.0);
  cache_faults.latency_millis = flags.GetDouble("cache-latency-ms", 20.0);
  const uint64_t fault_seed =
      static_cast<uint64_t>(flags.GetInt("fault-seed", 42));
  RewriteService::Options options;
  options.default_budget_millis = flags.GetDouble("budget-ms", 50.0);
  const int64_t requests = flags.GetInt("requests", 1000);
  const int64_t threads = flags.GetInt("threads", 0);
  const int64_t queue_depth = flags.GetInt("queue-depth", 64);
  const std::string shed_policy_text =
      flags.GetString("shed-policy", "reject");
  const std::string metrics_out = flags.GetString("metrics-out");
  const std::string metrics_prom = flags.GetString("metrics-prom");
  const int64_t print_trace = flags.GetInt("print-trace", 0);
  const int64_t introspect_port = flags.GetInt("introspect-port", -1);
  const int64_t introspect_hold_ms = flags.GetInt("introspect-hold-ms", 0);
  const std::string flight_out = flags.GetString("flight-out");
  ShedPolicy shed_policy = ShedPolicy::kRejectNewest;
  if (!ParseShedPolicy(shed_policy_text, &shed_policy)) {
    return Fail(Status::InvalidArgument("unknown --shed-policy '" +
                                        shed_policy_text +
                                        "' (use reject|oldest)"));
  }

  RewriteKvStore store;
  Status s = store.Load(kv_path);
  if (!s.ok()) return Fail(s);
  Result<std::vector<std::vector<std::string>>> queries =
      LoadQueries(queries_path);
  if (!queries.ok()) return Fail(queries.status());
  if (queries.value().empty()) {
    return Fail(Status::InvalidArgument("no queries in " + queries_path));
  }
  std::printf("kv snapshot: %zu records (checksum ok)\n", store.size());

  if (!flight_out.empty()) {
    // Arm the post-mortem dump: fault paths (and the server's drain) leave
    // the flight journal here; the clean path writes it explicitly below.
    FlightRecorder::Global().EnableCrashDump(flight_out);
  }
  if (introspect_port >= 0) {
    // Exemplars written to /metrics must resolve on /tracez, so the
    // service samples traces whenever the endpoint is up.
    options.trace_sampler = &TraceSampler::Global();
  }
  KvStoreBackend cache(&store);
  FaultyKvBackend faulty_cache(&cache, cache_faults, fault_seed);
  RewriteService service(&faulty_cache, nullptr, nullptr, options,
                         &MetricsRegistry::Global());

  std::unique_ptr<IntrospectionStack> introspection;
  if (introspect_port >= 0) {
    introspection = StartIntrospection(static_cast<int>(introspect_port),
                                       "cyqr_cli serve");
    if (introspection == nullptr) return 1;
    introspection->introspector->AddStatusSection(
        "subcommand", [] { return std::string("serve"); });
    // Breaker state reads an atomic; safe from endpoint threads.
    introspection->introspector->AddStatusSection(
        "breaker_state", [&service] {
          return std::string(
              CircuitBreaker::StateName(service.breaker().state()));
        });
  }

  if (threads > 0) {
    // Concurrent front end: --threads workers drain a bounded admission
    // queue; the same number of closed-loop client threads drives it.
    if (print_trace > 0) {
      std::fprintf(stderr,
                   "warning: --print-trace is ignored with --threads\n");
    }
    RewriteServer::Options server_options;
    server_options.num_threads = static_cast<int>(threads);
    server_options.queue_depth = static_cast<size_t>(queue_depth);
    server_options.shed_policy = shed_policy;
    server_options.default_budget_millis = options.default_budget_millis;
    RewriteServer server(&service, server_options,
                         &MetricsRegistry::Global());
    if (introspection != nullptr) {
      // Queue sections read relaxed atomics off the live server; the
      // endpoint is stopped before `server` leaves scope below.
      introspection->introspector->AddStatusSection(
          "queue_depth", [&server] {
            return std::to_string(server.QueueDepth());
          });
      introspection->introspector->AddStatusSection(
          "shed_total", [&server] {
            return std::to_string(server.shed_total());
          });
    }

    LatencyRecorder latency;
    std::atomic<int64_t> by_source[4] = {};
    std::atomic<int64_t> next_request{0};
    std::vector<std::thread> clients;
    for (int64_t c = 0; c < threads; ++c) {
      clients.emplace_back([&]() {
        for (int64_t i = next_request.fetch_add(1);
             i < requests;
             i = next_request.fetch_add(1)) {
          const auto& query = queries.value()[static_cast<size_t>(i) %
                                              queries.value().size()];
          const Deadline deadline =
              options.default_budget_millis > 0
                  ? Deadline::AfterMillis(options.default_budget_millis)
                  : Deadline::Infinite();
          const auto out = server.ServeBlocking(query, deadline);
          if (out.status.ok()) {
            latency.Record(out.total_millis);
            ++by_source[static_cast<int>(out.response.source)];
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
    server.Drain();

    std::printf(
        "served %lld / shed %lld of %lld requests "
        "(%lld retries) under a %.0f ms budget\n",
        static_cast<long long>(server.served_total()),
        static_cast<long long>(server.shed_total()),
        static_cast<long long>(server.submitted_total()),
        static_cast<long long>(server.retries_total()),
        options.default_budget_millis);
    std::printf("workers %lld, queue depth %lld, shed policy %s\n",
                static_cast<long long>(threads),
                static_cast<long long>(queue_depth),
                ShedPolicyName(shed_policy));
    for (int i = 0; i < 4; ++i) {
      const int64_t answered = by_source[i].load();
      if (answered == 0) continue;
      std::printf("  %-12s %lld\n",
                  RewriteService::SourceName(
                      static_cast<RewriteService::Source>(i)),
                  static_cast<long long>(answered));
    }
    std::printf("latency:       p50 %.3f ms, p99 %.3f ms, max %.3f ms\n",
                latency.PercentileMillis(0.5),
                latency.PercentileMillis(0.99), latency.MaxMillis());
    if (!flight_out.empty()) {
      // Overwrites the drain-time dump with the full post-replay journal.
      const Status journal =
          FlightRecorder::Global().WriteJournal(flight_out);
      if (!journal.ok()) {
        std::fprintf(stderr, "warning: flight journal not written: %s\n",
                     journal.ToString().c_str());
      }
    }
    HoldIntrospection(introspection.get(), introspect_hold_ms);
    // The queue status sections capture `server` by reference; stop the
    // endpoint before it goes out of scope.
    if (introspection != nullptr) introspection->endpoint->Stop();
    return DumpMetricsFiles(metrics_out, metrics_prom);
  }

  LatencyRecorder latency;
  int64_t by_source[4] = {0, 0, 0, 0};
  for (int64_t i = 0; i < requests; ++i) {
    const auto& query =
        queries.value()[static_cast<size_t>(i) % queries.value().size()];
    const Deadline deadline =
        options.default_budget_millis > 0
            ? Deadline::AfterMillis(options.default_budget_millis)
            : Deadline::Infinite();
    if (i < print_trace) {
      Trace trace;
      const auto response = service.Serve(query, deadline, &trace);
      latency.Record(response.latency_millis);
      ++by_source[static_cast<int>(response.source)];
      std::printf("trace[%lld] %s: %s\n", static_cast<long long>(i),
                  JoinStrings(query).c_str(), trace.PathString().c_str());
      continue;
    }
    const auto response = service.Serve(query, deadline, nullptr);
    latency.Record(response.latency_millis);
    ++by_source[static_cast<int>(response.source)];
  }
  std::printf("served %lld requests under a %.0f ms budget\n",
              static_cast<long long>(requests),
              options.default_budget_millis);
  for (int i = 0; i < 4; ++i) {
    if (by_source[i] == 0) continue;
    std::printf("  %-12s %lld\n",
                RewriteService::SourceName(
                    static_cast<RewriteService::Source>(i)),
                static_cast<long long>(by_source[i]));
  }
  std::printf("degraded:      %lld (%.1f%%)\n",
              static_cast<long long>(service.degraded_requests()),
              100.0 * service.degraded_requests() / requests);
  std::printf("latency:       p50 %.3f ms, p99 %.3f ms, max %.3f ms\n",
              latency.PercentileMillis(0.5), latency.PercentileMillis(0.99),
              latency.MaxMillis());
  if (!flight_out.empty()) {
    const Status journal = FlightRecorder::Global().WriteJournal(flight_out);
    if (!journal.ok()) {
      std::fprintf(stderr, "warning: flight journal not written: %s\n",
                   journal.ToString().c_str());
    }
  }
  HoldIntrospection(introspection.get(), introspect_hold_ms);
  return DumpMetricsFiles(metrics_out, metrics_prom);
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  FlagParser flags(argc - 1, argv + 1);
  int code;
  if (command == "generate-data") {
    code = GenerateData(flags);
  } else if (command == "train") {
    code = Train(flags);
  } else if (command == "rewrite") {
    code = Rewrite(flags);
  } else if (command == "eval") {
    code = Eval(flags);
  } else if (command == "precompute") {
    code = Precompute(flags);
  } else if (command == "serve") {
    code = ServeTraffic(flags);
  } else {
    return Usage();
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                 unused.c_str());
  }
  return code;
}

}  // namespace
}  // namespace cyqr

int main(int argc, char** argv) { return cyqr::Main(argc, argv); }
