#!/usr/bin/env bash
# End-to-end crash-resume drill through the real CLI: train a model with
# checkpointing, train the same model again but die mid-run with a hard
# exit (the drill's stand-in for SIGKILL), resume from the surviving
# checkpoint, and require the resumed run's saved parameters to be
# byte-identical to the uninterrupted baseline's.
#
# Usage: scripts/crash_resume_drill.sh /path/to/cyqr_cli [workdir]
set -euo pipefail

CLI="${1:?usage: crash_resume_drill.sh /path/to/cyqr_cli [workdir]}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"
rm -rf "$WORK/data" "$WORK/baseline" "$WORK/crashed"

STEPS=30
CRASH_AT=23
TRAIN_FLAGS=(--steps "$STEPS" --warmup 24 --batch 4 --layers 1
             --seed 99 --checkpoint-every 5)

echo "== drill workdir: $WORK"
"$CLI" generate-data --out "$WORK/data" --queries 40 --sessions 120 \
  --seed 7

echo "== baseline: uninterrupted run"
"$CLI" train --data "$WORK/data/pairs.tsv" --out "$WORK/baseline" \
  "${TRAIN_FLAGS[@]}"

echo "== crashed run: injecting hard crash at step $CRASH_AT"
set +e
"$CLI" train --data "$WORK/data/pairs.tsv" --out "$WORK/crashed" \
  "${TRAIN_FLAGS[@]}" --crash-at-step "$CRASH_AT"
crash_code=$?
set -e
if [[ "$crash_code" -ne 137 ]]; then
  echo "FAIL: crashed run exited $crash_code, expected 137" >&2
  exit 1
fi
if [[ -e "$WORK/crashed/model.params" ]]; then
  echo "FAIL: crashed run left a model.params behind" >&2
  exit 1
fi
ls "$WORK/crashed/checkpoints"/ckpt-*.cyqc > /dev/null

echo "== resumed run: picking up from the newest checkpoint"
"$CLI" train --data "$WORK/data/pairs.tsv" --out "$WORK/crashed" \
  "${TRAIN_FLAGS[@]}" --resume

echo "== comparing resumed parameters against the baseline"
cmp "$WORK/baseline/model.params" "$WORK/crashed/model.params"
echo "PASS: resumed model is byte-identical to the uninterrupted baseline"
