#!/usr/bin/env bash
# End-to-end crash-resume drill through the real CLI: train a model with
# checkpointing, train the same model again but die mid-run with a hard
# exit (the drill's stand-in for SIGKILL), resume from the surviving
# checkpoint, and require the resumed run's saved parameters to be
# byte-identical to the uninterrupted baseline's.
#
# Two modes:
#   legacy (default) — single-threaded trainer, coordinator crash.
#   dp               — data-parallel trainer: the uninterrupted baseline
#                      runs with 1 worker, the crashed run loses worker
#                      rank 1 mid-step under 2 workers, and the resume
#                      finishes under 4 workers. Parameters AND the final
#                      convergence-curve point must still be bit-identical
#                      to the baseline: worker count is never allowed to
#                      change the trajectory.
#
# Usage: scripts/crash_resume_drill.sh /path/to/cyqr_cli [workdir] [mode]
set -euo pipefail

CLI="${1:?usage: crash_resume_drill.sh /path/to/cyqr_cli [workdir] [mode]}"
WORK="${2:-$(mktemp -d)}"
MODE="${3:-legacy}"
mkdir -p "$WORK"
rm -rf "$WORK/data" "$WORK/baseline" "$WORK/crashed"

# The hard exit must still leave a readable post-mortem: the flight
# recorder's crash dump, written on the way down by the fault hook. It
# must parse, be tagged with the simulated-crash source, and carry train
# events from the interrupted run. Checked after each crash, before the
# resume overwrites the file with the clean run's journal.
check_flight_dump() {
  local dump="$1"
  if [[ ! -s "$dump" ]]; then
    echo "FAIL: crashed run left no flight dump at $dump" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$dump" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path, "r", encoding="utf-8") as f:
    dump = json.load(f)  # A torn dump fails right here.

assert dump.get("version") == 1, f"bad version: {dump.get('version')!r}"
assert dump.get("source") == "simulated-crash", \
    f"bad source: {dump.get('source')!r}"
events = dump.get("events", [])
assert events, "flight dump has no events"
names = {e["name"] for e in events}
assert any(n.startswith("train.") for n in names), \
    f"no train events in dump: {sorted(names)}"
print(f"flight dump OK: {len(events)} events, last = "
      f"{events[-1]['name']} step {events[-1]['arg0']}")
PY
  else
    grep -q '"source":"simulated-crash"' "$dump" ||
      { echo "FAIL: dump not tagged simulated-crash" >&2; exit 1; }
    grep -q '"name":"train\.' "$dump" ||
      { echo "FAIL: no train events in dump" >&2; exit 1; }
    echo "flight dump OK (grep fallback)"
  fi
}

echo "== drill workdir: $WORK (mode: $MODE)"
"$CLI" generate-data --out "$WORK/data" --queries 40 --sessions 120 \
  --seed 7

if [[ "$MODE" == "dp" ]]; then
  STEPS=12
  CRASH_AT=9
  TRAIN_FLAGS=(--steps "$STEPS" --warmup 8 --batch 4 --grad-shards 4
               --layers 1 --seed 99 --checkpoint-every 3 --eval-every 6)

  echo "== dp baseline: uninterrupted run with 1 worker"
  "$CLI" train --data "$WORK/data/pairs.tsv" --out "$WORK/baseline" \
    "${TRAIN_FLAGS[@]}" --workers 1 --curve-out "$WORK/baseline/curve.tsv"

  echo "== dp crashed run: 2 workers, rank 1 dies at step $CRASH_AT"
  set +e
  "$CLI" train --data "$WORK/data/pairs.tsv" --out "$WORK/crashed" \
    "${TRAIN_FLAGS[@]}" --workers 2 \
    --crash-worker-rank 1 --crash-worker-at-step "$CRASH_AT"
  crash_code=$?
  set -e
  if [[ "$crash_code" -ne 137 ]]; then
    echo "FAIL: crashed run exited $crash_code, expected 137" >&2
    exit 1
  fi
  if [[ -e "$WORK/crashed/model.params" ]]; then
    echo "FAIL: crashed run left a model.params behind" >&2
    exit 1
  fi
  ls "$WORK/crashed/checkpoints"/ckpt-*.cyqc > /dev/null
  if ls "$WORK/crashed/checkpoints"/*.tmp* > /dev/null 2>&1; then
    echo "FAIL: crashed run left torn temp files in the checkpoint dir" >&2
    exit 1
  fi
  echo "== checking the crashed run's flight dump"
  check_flight_dump "$WORK/crashed/flight.json"

  echo "== dp resumed run: picking up under 4 workers"
  "$CLI" train --data "$WORK/data/pairs.tsv" --out "$WORK/crashed" \
    "${TRAIN_FLAGS[@]}" --workers 4 --resume \
    --curve-out "$WORK/crashed/curve.tsv"

  echo "== comparing resumed parameters against the 1-worker baseline"
  cmp "$WORK/baseline/model.params" "$WORK/crashed/model.params"

  echo "== comparing the final convergence-curve point"
  # The resumed run replays only the steps after the surviving
  # checkpoint, so its curve is a suffix of the baseline's; the final
  # sampled point (step $STEPS) must match bit for bit.
  if [[ "$(tail -n 1 "$WORK/baseline/curve.tsv")" != \
        "$(tail -n 1 "$WORK/crashed/curve.tsv")" ]]; then
    echo "FAIL: final curve points diverge across worker counts" >&2
    diff "$WORK/baseline/curve.tsv" "$WORK/crashed/curve.tsv" >&2 || true
    exit 1
  fi
  echo "PASS: kill under K=2 + resume under K=4 is bit-identical to K=1"
  exit 0
fi

STEPS=30
CRASH_AT=23
TRAIN_FLAGS=(--steps "$STEPS" --warmup 24 --batch 4 --layers 1
             --seed 99 --checkpoint-every 5)

echo "== baseline: uninterrupted run"
"$CLI" train --data "$WORK/data/pairs.tsv" --out "$WORK/baseline" \
  "${TRAIN_FLAGS[@]}"

echo "== crashed run: injecting hard crash at step $CRASH_AT"
set +e
"$CLI" train --data "$WORK/data/pairs.tsv" --out "$WORK/crashed" \
  "${TRAIN_FLAGS[@]}" --crash-at-step "$CRASH_AT"
crash_code=$?
set -e
if [[ "$crash_code" -ne 137 ]]; then
  echo "FAIL: crashed run exited $crash_code, expected 137" >&2
  exit 1
fi
if [[ -e "$WORK/crashed/model.params" ]]; then
  echo "FAIL: crashed run left a model.params behind" >&2
  exit 1
fi
ls "$WORK/crashed/checkpoints"/ckpt-*.cyqc > /dev/null
echo "== checking the crashed run's flight dump"
check_flight_dump "$WORK/crashed/flight.json"

echo "== resumed run: picking up from the newest checkpoint"
"$CLI" train --data "$WORK/data/pairs.tsv" --out "$WORK/crashed" \
  "${TRAIN_FLAGS[@]}" --resume

echo "== comparing resumed parameters against the baseline"
cmp "$WORK/baseline/model.params" "$WORK/crashed/model.params"
echo "PASS: resumed model is byte-identical to the uninterrupted baseline"
