#!/usr/bin/env bash
# Incremental-cache drill through the real cyqr_lint binary: a cold run
# must analyze every file, a warm run on unchanged sources must serve
# every verdict from the cache, and touching one file must re-analyze
# exactly that file while the rest stay cached. Assertions key off the
# machine-readable --stats line on stderr.
#
# Usage: scripts/lint_cache_drill.sh /path/to/cyqr_lint [workdir]
set -euo pipefail

LINT="${1:?usage: lint_cache_drill.sh /path/to/cyqr_lint [workdir]}"
WORK="${2:-$(mktemp -d)}"
rm -rf "$WORK"
mkdir -p "$WORK/src"
CACHE="$WORK/drill.cache"

cat > "$WORK/src/alpha.h" <<'EOF'
#ifndef DRILL_ALPHA_H_
#define DRILL_ALPHA_H_

int Twice(int x);

#endif  // DRILL_ALPHA_H_
EOF

cat > "$WORK/src/alpha.cc" <<'EOF'
#include "alpha.h"

int Twice(int x) { return x * 2; }
EOF

cat > "$WORK/src/beta.cc" <<'EOF'
#include "alpha.h"

int Quadruple(int x) { return Twice(Twice(x)); }
EOF

run_lint() {
  # Violations would exit 1 and fail the drill via errexit; the stats
  # line is the assertion surface.
  "$LINT" --stats --cache="$CACHE" "$WORK/src" 2> "$WORK/stats.txt"
  cat "$WORK/stats.txt"
}

expect_stats() {
  local label="$1"; shift
  for want in "$@"; do
    if ! grep -q "$want" "$WORK/stats.txt"; then
      echo "FAIL[$label]: expected '$want' in stats:" >&2
      cat "$WORK/stats.txt" >&2
      exit 1
    fi
  done
  echo "ok[$label]"
}

echo "== cold run: everything analyzed"
run_lint
expect_stats cold "files=3" "analyzed=3" "from_cache=0" "cache=cold"

echo "== warm run: everything served from cache"
run_lint
expect_stats warm "files=3" "analyzed=0" "from_cache=3" "cache=warm"

echo "== touch one file: only it is re-analyzed"
printf '\n// touched by the cache drill\n' >> "$WORK/src/beta.cc"
run_lint
expect_stats touched "files=3" "analyzed=1" "from_cache=2" "cache=warm"

echo "PASS: incremental cache skips unchanged files"
