#!/usr/bin/env bash
# Validates a Prometheus text exposition (what /metrics serves and
# `cyqr_cli --metrics-text-out` style dumps contain): every sample line
# must parse, every series must be declared by a preceding `# TYPE` line
# of a known type, histogram series must come as _bucket/_sum/_count with
# a cumulative +Inf closer, and exemplar annotations must carry a 16-hex
# trace id. Used by the CI introspection smoke against a live endpoint.
#
# Usage: scripts/check_prom_text.sh EXPOSITION.txt [EXPOSITION2.txt ...]
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: check_prom_text.sh EXPOSITION.txt [...]" >&2
  exit 2
fi

check_with_python() {
  python3 - "$1" <<'PY'
import re
import sys

path = sys.argv[1]
with open(path, "r", encoding="utf-8") as f:
    lines = f.read().splitlines()

errors = []
types = {}  # family name -> declared type
name_re = re.compile(r"^cyqr(_[a-z0-9]+){2,}$")
sample_re = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[^}]*\})? '
    r'(?P<value>[^ ]+)'
    r'(?P<exemplar> # \{trace_id="[0-9a-f]{16}"\} [^ ]+)?$')
exemplars = 0
buckets = {}  # (family, labels minus le) -> list of (le, count) in order

def family_of(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)], suffix
    return name, ""

for i, line in enumerate(lines, start=1):
    if not line:
        continue
    if line.startswith("# TYPE "):
        parts = line.split(" ")
        if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                               "histogram"):
            errors.append(f"line {i}: malformed TYPE line: {line!r}")
            continue
        types[parts[2]] = parts[3]
        if not name_re.match(parts[2]):
            errors.append(f"line {i}: bad metric name {parts[2]!r}")
        continue
    if line.startswith("#"):
        continue  # Other comments are legal exposition.
    m = sample_re.match(line)
    if not m:
        errors.append(f"line {i}: unparseable sample: {line!r}")
        continue
    family, suffix = family_of(m.group("name"))
    if family not in types:
        errors.append(f"line {i}: series {m.group('name')!r} has no TYPE")
        continue
    if suffix and types[family] != "histogram":
        errors.append(
            f"line {i}: {m.group('name')!r} suffix on non-histogram")
    if types[family] == "histogram" and not suffix:
        errors.append(f"line {i}: bare sample for histogram {family!r}")
    value = m.group("value")
    try:
        float(value)
    except ValueError:
        errors.append(f"line {i}: non-numeric value {value!r}")
    if m.group("exemplar"):
        exemplars += 1
        if suffix != "_bucket":
            errors.append(f"line {i}: exemplar outside a bucket series")
    if suffix == "_bucket":
        le = None
        labels = m.group("labels") or ""
        le_match = re.search(r'le="([^"]*)"', labels)
        if not le_match:
            errors.append(f"line {i}: bucket sample without le label")
        else:
            le = le_match.group(1)
        # One bucket chain per labelled instrument, not per family: the
        # le label is stripped, every other label distinguishes chains.
        other = re.sub(r'le="[^"]*",?', "", labels).strip("{},")
        buckets.setdefault((family, other), []).append((le, float(value)))

for (family, other), series in buckets.items():
    where = f"histogram {family}" + (f"{{{other}}}" if other else "")
    if series[-1][0] != "+Inf":
        errors.append(f"{where}: last bucket is not +Inf")
    counts = [count for _, count in series]
    if any(b > a for b, a in zip(counts, counts[1:])):
        errors.append(f"{where}: bucket counts not cumulative")

if not types:
    errors.append("no TYPE lines: not a Prometheus exposition")

if errors:
    for e in errors:
        print(f"check_prom_text: {path}: {e}", file=sys.stderr)
    sys.exit(1)

print(f"check_prom_text: {path}: OK ({len(types)} families, "
      f"{exemplars} exemplars)")
PY
}

check_with_grep() {
  # Degraded fallback when python3 is unavailable: structural greps only.
  local path="$1"
  grep -q '^# TYPE cyqr_' "$path" ||
    { echo "check_prom_text: $path: no TYPE lines" >&2; return 1; }
  grep -q '^cyqr_' "$path" ||
    { echo "check_prom_text: $path: no samples" >&2; return 1; }
  echo "check_prom_text: $path: OK (grep fallback)"
}

status=0
for exposition in "$@"; do
  if [[ ! -s "$exposition" ]]; then
    echo "check_prom_text: $exposition: missing or empty" >&2
    status=1
    continue
  fi
  if command -v python3 >/dev/null 2>&1; then
    check_with_python "$exposition" || status=1
  else
    check_with_grep "$exposition" || status=1
  fi
done
exit "$status"
