#!/usr/bin/env bash
# Runs the tier-1 test suite under AddressSanitizer + UBSan so memory and
# UB bugs surfaced by the fault-injection tests (truncated files, corrupt
# streams, degradation-ladder edge cases) fail loudly.
#
# Usage: scripts/run_sanitized_tests.sh [ctest-args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-asan
cmake -B "$BUILD_DIR" -S . \
  -DCYCLEQR_SANITIZE=ON \
  -DCYCLEQR_BUILD_BENCHMARKS=OFF \
  -DCYCLEQR_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR"
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --output-on-failure -j"$(nproc)" "$@"
