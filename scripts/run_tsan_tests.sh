#!/usr/bin/env bash
# Runs the concurrency-sensitive test binaries under ThreadSanitizer: the
# thread-pool/bounded-queue/collective primitives, the concurrent serving
# front end with its multi-threaded fault drill, the metrics registry, and
# the data-parallel training drills (train_dp_test is fork-free by design
# so TSan sees every worker interleaving). Any data race in the breaker
# atomics, the KV snapshot swap, the server's accounting, or the trainer's
# plan/slot handoffs fails the run loudly (halt_on_error).
#
# The binaries are invoked directly rather than through ctest: the drill's
# value under TSan is the interleavings it generates, and one process
# running every case back to back produces far more cross-thread traffic
# than ctest's one-process-per-case isolation.
#
# Usage: scripts/run_tsan_tests.sh [extra-gtest-args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
cmake -B "$BUILD_DIR" -S . \
  -DCYCLEQR_TSAN=ON \
  -DCYCLEQR_BUILD_BENCHMARKS=OFF \
  -DCYCLEQR_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target core_test serving_test obs_test train_dp_test

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
for binary in core_test serving_test obs_test train_dp_test; do
  echo "=== TSan: ${binary} ==="
  "$BUILD_DIR/tests/${binary}" "$@"
done
echo "TSan run clean."
