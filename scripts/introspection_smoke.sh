#!/usr/bin/env bash
# End-to-end smoke of the live-introspection endpoint through the real
# CLI: build a tiny model + KV store, start `cyqr_cli serve
# --introspect-port 0` (ephemeral port, parsed from the serve log), and
# while the endpoint holds:
#
#   - /metrics must answer HTTP 200 with a valid Prometheus text
#     exposition (scripts/check_prom_text.sh) carrying at least one
#     trace-id exemplar,
#   - /statusz must answer 200 with a breaker_state that agrees with the
#     cyqr_serving_breaker_state gauge in /metrics,
#   - /tracez must resolve the exemplar's trace id,
#   - /flightz must answer 200 with a version-1 flight journal.
#
# Usage: scripts/introspection_smoke.sh /path/to/cyqr_cli [workdir]
set -euo pipefail

CLI="${1:?usage: introspection_smoke.sh /path/to/cyqr_cli [workdir]}"
WORK="${2:-$(mktemp -d)}"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
mkdir -p "$WORK"
rm -rf "$WORK/data" "$WORK/model" "$WORK/serve.log"

echo "== smoke workdir: $WORK"
"$CLI" generate-data --out "$WORK/data" --queries 40 --sessions 120 \
  --seed 7
"$CLI" train --data "$WORK/data/pairs.tsv" --out "$WORK/model" \
  --steps 8 --warmup 6 --batch 4 --layers 1 --seed 99 --eval-every 0
"$CLI" precompute --model "$WORK/model" \
  --queries "$WORK/data/queries.tsv" --out "$WORK/kv.tsv" --limit 20

echo "== starting serve with a held introspection endpoint"
"$CLI" serve --kv "$WORK/kv.tsv" --queries "$WORK/data/queries.tsv" \
  --requests 300 --threads 2 --introspect-port 0 \
  --introspect-hold-ms 20000 --flight-out "$WORK/flight.json" \
  > "$WORK/serve.log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT

# The serve log prints "introspection: http://127.0.0.1:PORT/statusz" as
# soon as the endpoint is up; poll for it instead of guessing a port.
port=""
for _ in $(seq 1 100); do
  port="$(sed -n \
    's|^introspection: http://127\.0\.0\.1:\([0-9]*\)/statusz$|\1|p' \
    "$WORK/serve.log" | head -n 1)"
  [[ -n "$port" ]] && break
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "FAIL: serve exited before the endpoint came up" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$port" ]]; then
  echo "FAIL: no introspection port in the serve log" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
echo "== endpoint is live on port $port"

# curl -f turns any non-2xx answer into a failure under `set -e`.
curl -fsS "http://127.0.0.1:$port/metrics" > "$WORK/metrics.prom"
curl -fsS "http://127.0.0.1:$port/statusz" > "$WORK/statusz.txt"
curl -fsS "http://127.0.0.1:$port/tracez" > "$WORK/tracez.txt"
curl -fsS "http://127.0.0.1:$port/flightz" > "$WORK/flightz.json"

echo "== validating the /metrics exposition"
"$SCRIPT_DIR/check_prom_text.sh" "$WORK/metrics.prom"

echo "== checking the exemplar joins /metrics to /tracez"
trace_id="$(grep -o 'trace_id="[0-9a-f]\{16\}"' "$WORK/metrics.prom" |
  head -n 1 | cut -d'"' -f2)"
if [[ -z "$trace_id" ]]; then
  echo "FAIL: no trace-id exemplar in /metrics" >&2
  exit 1
fi
if ! grep -q "$trace_id" "$WORK/tracez.txt"; then
  echo "FAIL: exemplar trace id $trace_id not resolvable in /tracez" >&2
  exit 1
fi

echo "== checking /statusz agrees with the breaker gauge"
state_line="$(grep '^breaker_state: ' "$WORK/statusz.txt" || true)"
if [[ -z "$state_line" ]]; then
  echo "FAIL: no breaker_state section in /statusz" >&2
  cat "$WORK/statusz.txt" >&2
  exit 1
fi
state_name="${state_line#breaker_state: }"
case "$state_name" in
  closed) want_gauge=0 ;;
  open) want_gauge=1 ;;
  half-open) want_gauge=2 ;;
  *) echo "FAIL: unknown breaker state '$state_name'" >&2; exit 1 ;;
esac
if ! grep -q "^cyqr_serving_breaker_state $want_gauge$" \
    "$WORK/metrics.prom"; then
  echo "FAIL: /statusz says '$state_name' but the gauge disagrees:" >&2
  grep '^cyqr_serving_breaker_state' "$WORK/metrics.prom" >&2 || true
  exit 1
fi

echo "== checking /flightz serves the journal"
grep -q '"version":1' "$WORK/flightz.json" ||
  { echo "FAIL: /flightz is not a version-1 journal" >&2; exit 1; }
grep -q '"name":"serving.' "$WORK/flightz.json" ||
  { echo "FAIL: /flightz has no serving events" >&2; exit 1; }

kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
echo "PASS: introspection endpoints answered and cross-checked"
