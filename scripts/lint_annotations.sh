#!/usr/bin/env bash
# Runs cyqr_lint over the whole tree in JSON mode and converts every
# diagnostic into a GitHub Actions workflow command
# (::error file=F,line=N,title=...::message) so violations surface as
# inline annotations on the PR diff. The raw JSON report is written to a
# file for artifact upload, a SARIF 2.1.0 report is written alongside it
# for GitHub code scanning, and per-rule wall-time (--stats) lands in the
# job step summary when $GITHUB_STEP_SUMMARY is set. The script preserves
# the linter's exit code (0 clean, 1 violations, 2 usage/IO error).
#
# Usage: scripts/lint_annotations.sh /path/to/cyqr_lint [report.json] [report.sarif]
set -euo pipefail

LINT="${1:?usage: lint_annotations.sh /path/to/cyqr_lint [report.json] [report.sarif]}"
REPORT="${2:-lint_report.json}"
SARIF="${3:-lint_report.sarif}"
STATS_LOG=$(mktemp)
trap 'rm -f "$STATS_LOG"' EXIT

# Mirror the tree gate: production code plus tests, minus the lint
# fixture corpus (which exists to violate the rules on purpose).
set +e
"$LINT" --json --stats --jobs="$(nproc)" --exclude=tests/lint/fixtures \
  --sarif="$SARIF" \
  src tools bench examples tests > "$REPORT" 2> "$STATS_LOG"
code=$?
set -e

# Stats went to stderr; replay them for the log, then fold the per-rule
# timing table into the step summary so slow rules are visible per-run.
cat "$STATS_LOG" >&2
if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
  {
    echo "### cyqr_lint per-rule timings"
    echo
    echo "| rule | wall ms |"
    echo "| --- | ---: |"
    sed -nE 's/^cyqr_lint rule_ms ([a-z0-9-]+) ([0-9.]+)$/| \1 | \2 |/p' \
      "$STATS_LOG"
  } >> "$GITHUB_STEP_SUMMARY"
fi

if [[ "$code" -ge 2 ]]; then
  echo "::error::cyqr_lint failed to run (exit $code)" >&2
  exit "$code"
fi

# One diagnostic object per line; pull the fields apart with sed. The
# message is the last quoted field, so greedy matching is safe.
sed -nE 's/.*\{"file": "([^"]+)", "line": ([0-9]+), "rule": "([^"]+)", "message": "(.*)"\}.*/::error file=\1,line=\2,title=cyqr-lint \3::\4/p' \
  "$REPORT"

count=$(grep -c '"rule":' "$REPORT" || true)
echo "cyqr_lint: $count violation(s); JSON report at $REPORT, SARIF at $SARIF" >&2
exit "$code"
