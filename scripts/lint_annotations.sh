#!/usr/bin/env bash
# Runs cyqr_lint over the whole tree in JSON mode and converts every
# diagnostic into a GitHub Actions workflow command
# (::error file=F,line=N,title=...::message) so violations surface as
# inline annotations on the PR diff. The raw JSON report is written to a
# file for artifact upload; the script preserves the linter's exit code
# (0 clean, 1 violations, 2 usage/IO error).
#
# Usage: scripts/lint_annotations.sh /path/to/cyqr_lint [report.json]
set -euo pipefail

LINT="${1:?usage: lint_annotations.sh /path/to/cyqr_lint [report.json]}"
REPORT="${2:-lint_report.json}"

# Mirror the tree gate: production code plus tests, minus the lint
# fixture corpus (which exists to violate the rules on purpose).
set +e
"$LINT" --json --jobs="$(nproc)" --exclude=tests/lint/fixtures \
  src tools bench examples tests > "$REPORT"
code=$?
set -e

if [[ "$code" -ge 2 ]]; then
  echo "::error::cyqr_lint failed to run (exit $code)" >&2
  exit "$code"
fi

# One diagnostic object per line; pull the fields apart with sed. The
# message is the last quoted field, so greedy matching is safe.
sed -nE 's/.*\{"file": "([^"]+)", "line": ([0-9]+), "rule": "([^"]+)", "message": "(.*)"\}.*/::error file=\1,line=\2,title=cyqr-lint \3::\4/p' \
  "$REPORT"

count=$(grep -c '"rule":' "$REPORT" || true)
echo "cyqr_lint: $count violation(s); JSON report at $REPORT" >&2
exit "$code"
