#!/usr/bin/env bash
# Runs the project's static-analysis gates locally, mirroring the CI
# lint job: cyqr_lint is mandatory; clang-tidy runs when available.
#
# Usage: scripts/run_lint.sh [--changed] [extra cyqr_lint args...]
#
#   --changed   Lint only files that differ from the merge base with the
#               default branch (origin/main, falling back to main, falling
#               back to HEAD~1) instead of the whole tree. Cross-file facts
#               (GUARDED_BY maps, lock-order edges) are collected from the
#               changed set only — fast inner-loop feedback; the full-tree
#               sweep (CI, or this script without the flag) remains the
#               authority on cross-TU verdicts such as lock-order cycles.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

CHANGED_ONLY=0
EXTRA_ARGS=()
for arg in "$@"; do
  if [[ "$arg" == "--changed" ]]; then
    CHANGED_ONLY=1
  else
    EXTRA_ARGS+=("$arg")
  fi
done

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target cyqr_lint

LINT_TARGETS=(src tools bench examples tests)
if [[ "$CHANGED_ONLY" == 1 ]]; then
  # Merge base against the default branch: what this branch would add.
  BASE=""
  for ref in origin/main main; do
    if git rev-parse --verify --quiet "$ref" >/dev/null; then
      BASE=$(git merge-base HEAD "$ref") && break
    fi
  done
  [[ -n "$BASE" ]] || BASE=$(git rev-parse HEAD~1)
  # Changed + untracked lintable files, filtered to the gate's roots and
  # extensions; deleted files drop out via the existence check.
  mapfile -t LINT_TARGETS < <(
    { git diff --name-only "$BASE" -- 'src' 'tools' 'bench' 'examples' 'tests';
      git ls-files --others --exclude-standard -- 'src' 'tools' 'bench' 'examples' 'tests'; } |
      sort -u |
      grep -E '\.(h|cc|cpp|hpp)$' |
      grep -v '^tests/lint/fixtures/' |
      while read -r f; do [[ -f "$f" ]] && echo "$f"; done
  )
  if [[ ${#LINT_TARGETS[@]} -eq 0 ]]; then
    echo "== cyqr_lint: no lintable files changed since $BASE =="
    exit 0
  fi
  echo "== cyqr_lint (--changed: ${#LINT_TARGETS[@]} files since ${BASE:0:12}) =="
else
  echo "== cyqr_lint =="
fi

"$BUILD_DIR"/tools/cyqr_lint/cyqr_lint --jobs="$(nproc)" \
  --cache="$BUILD_DIR/cyqr_lint_local.cache" \
  --exclude=tests/lint/fixtures \
  "${LINT_TARGETS[@]}" ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"}

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Spot-check the core and serving layers; full-tree tidy is slow and
  # belongs in a scheduled job, not the inner loop.
  clang-tidy -p "$BUILD_DIR" --quiet \
    src/core/*.cc src/serving/*.cc src/index/*.cc
else
  echo "clang-tidy not found; skipped (cyqr_lint gate still enforced)"
fi
