#!/usr/bin/env bash
# Runs the project's static-analysis gates locally, mirroring the CI
# lint job: cyqr_lint is mandatory; clang-tidy runs when available.
#
# Usage: scripts/run_lint.sh [extra cyqr_lint args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target cyqr_lint

echo "== cyqr_lint =="
"$BUILD_DIR"/tools/cyqr_lint/cyqr_lint --jobs="$(nproc)" \
  --cache="$BUILD_DIR/cyqr_lint_local.cache" \
  --exclude=tests/lint/fixtures \
  src tools bench examples tests "$@"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Spot-check the core and serving layers; full-tree tidy is slow and
  # belongs in a scheduled job, not the inner loop.
  clang-tidy -p "$BUILD_DIR" --quiet \
    src/core/*.cc src/serving/*.cc src/index/*.cc
else
  echo "clang-tidy not found; skipped (cyqr_lint gate still enforced)"
fi
