#!/usr/bin/env bash
# Validates a metrics JSON snapshot (the BENCH_*.json artifacts written by
# `cyqr_cli --metrics-out` and the bench binaries): the file must parse,
# declare schema version 1, carry the counters/gauges/histograms sections,
# and keep every histogram internally consistent (bucket counts sum to the
# series count, the final bucket is the +Inf overflow, names follow the
# cyqr_<layer>_<name>_<unit> convention).
#
# Usage: scripts/check_metrics_json.sh SNAPSHOT.json [SNAPSHOT2.json ...]
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: check_metrics_json.sh SNAPSHOT.json [...]" >&2
  exit 2
fi

check_with_python() {
  python3 - "$1" <<'PY'
import json
import re
import sys

path = sys.argv[1]
with open(path, "r", encoding="utf-8") as f:
    snap = json.load(f)

errors = []
name_re = re.compile(r"^cyqr(_[a-z0-9]+){3,}$")
units = {"total", "millis", "micros", "seconds", "bytes", "tokens",
         "ratio", "count", "state", "norm", "value"}


def check_name(name):
    if not name_re.match(name):
        errors.append(f"bad metric name: {name!r}")
        return
    if not (name.endswith("_per_sec") or name.rsplit("_", 1)[1] in units):
        errors.append(f"unknown unit suffix: {name!r}")


if snap.get("version") != 1:
    errors.append(f"version must be 1, got {snap.get('version')!r}")

for section in ("counters", "gauges", "histograms"):
    if not isinstance(snap.get(section), list):
        errors.append(f"missing or non-array section: {section}")

for c in snap.get("counters", []):
    check_name(c["name"])
    if not isinstance(c["value"], int) or c["value"] < 0:
        errors.append(f"counter {c['name']} has bad value {c['value']!r}")

for g in snap.get("gauges", []):
    check_name(g["name"])
    if "value" not in g:
        errors.append(f"gauge {g['name']} has no value")

for h in snap.get("histograms", []):
    check_name(h["name"])
    buckets = h.get("buckets", [])
    if not buckets or buckets[-1].get("le") != "+Inf":
        errors.append(f"histogram {h['name']} lacks the +Inf bucket")
    total = sum(b.get("count", 0) for b in buckets)
    if total != h.get("count"):
        errors.append(
            f"histogram {h['name']}: bucket sum {total} != count "
            f"{h.get('count')}")
    if any(b.get("count", 0) < 0 for b in buckets):
        errors.append(f"histogram {h['name']} has a negative bucket")

if errors:
    for e in errors:
        print(f"check_metrics_json: {path}: {e}", file=sys.stderr)
    sys.exit(1)

n = (len(snap.get("counters", [])) + len(snap.get("gauges", [])) +
     len(snap.get("histograms", [])))
print(f"check_metrics_json: {path}: OK ({n} series)")
PY
}

check_with_grep() {
  # Degraded fallback when python3 is unavailable: structural greps only.
  local path="$1"
  grep -q '"version": 1' "$path" ||
    { echo "check_metrics_json: $path: missing version 1" >&2; return 1; }
  for section in counters gauges histograms; do
    grep -q "\"$section\":" "$path" ||
      { echo "check_metrics_json: $path: missing $section" >&2; return 1; }
  done
  echo "check_metrics_json: $path: OK (grep fallback)"
}

status=0
for snapshot in "$@"; do
  if [[ ! -s "$snapshot" ]]; then
    echo "check_metrics_json: $snapshot: missing or empty" >&2
    status=1
    continue
  fi
  if command -v python3 >/dev/null 2>&1; then
    check_with_python "$snapshot" || status=1
  else
    check_with_grep "$snapshot" || status=1
  fi
done
exit "$status"
