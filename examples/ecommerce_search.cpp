// End-to-end e-commerce search demo (the Figure 1 scenario): a hard
// colloquial query retrieves nothing from the inverted index; the cyclic
// rewriter produces standard rewrites; the merged syntax tree (Figure 5)
// retrieves their union at near single-query cost.

#include <cstdio>

#include "core/string_util.h"
#include "datagen/click_log.h"
#include "index/retrieval.h"
#include "rewrite/inference.h"
#include "rewrite/trainer.h"

using namespace cyqr;

int main() {
  // World + index.
  Catalog catalog = Catalog::Generate({});
  ClickLogConfig log_config;
  log_config.num_distinct_queries = 700;
  log_config.num_sessions = 35000;
  ClickLog click_log = ClickLog::Generate(catalog, log_config);
  InvertedIndex index;
  for (const Product& p : catalog.products()) {
    index.AddDocument(p.id, p.title_tokens);
  }
  RetrievalEngine engine(&index);

  // Vocabulary + jointly trained cycle model.
  const std::vector<TokenPair> token_pairs = click_log.TokenPairs(catalog);
  std::vector<std::vector<std::string>> corpus;
  for (const TokenPair& p : token_pairs) {
    corpus.push_back(p.query);
    corpus.push_back(p.title);
  }
  const Vocabulary vocab = Vocabulary::Build(corpus);
  CycleConfig config = PaperScaledConfig(vocab.size());
  config.forward.num_layers = 2;
  Rng rng(7);
  CycleModel model(config, rng);
  CycleTrainerOptions train_options;
  train_options.max_steps = 460;
  train_options.warmup_steps = 380;
  train_options.eval_every = 0;
  std::printf("training cycle model (%lld steps)...\n",
              static_cast<long long>(train_options.max_steps));
  CycleTrainer trainer(&model, EncodePairs(token_pairs, vocab),
                       train_options);
  if (!trainer.Train({}).ok()) return 1;
  model.SetTraining(false);
  CycleRewriter rewriter(&model, &vocab);

  // Hard queries through the whole stack.
  const std::vector<std::vector<std::string>> hard_queries = {
      {"phone", "for", "grandpa"},
      {"comfortable", "sneakers", "for", "men"},
      {"keyboard", "for", "esports"},
  };
  for (const auto& query : hard_queries) {
    std::printf("\n==== query: \"%s\" ====\n", JoinStrings(query).c_str());
    const auto direct = engine.RetrieveOne(query);
    std::printf("inverted index, original query: %zu results\n",
                direct.docs.size());

    RewriteOptions options;
    options.k = 3;
    const CycleRewriter::Result result = rewriter.Rewrite(query, options);
    std::vector<std::vector<std::string>> all_queries = {query};
    for (const RewriteCandidate& c : result.rewrites) {
      std::printf("  rewrite: \"%s\" (log-prob %.2f)\n",
                  JoinStrings(c.tokens).c_str(), c.log_prob);
      all_queries.push_back(c.tokens);
    }

    const auto separate = engine.RetrieveSeparate(all_queries);
    const auto merged = engine.RetrieveMerged(all_queries);
    TreeMerger::Result merged_tree = TreeMerger::Merge(all_queries);
    std::printf("merged syntax tree: %s\n",
                merged_tree.tree.ToString().c_str());
    std::printf("separate trees: %zu results, %lld postings scanned, "
                "%lld nodes\n",
                separate.docs.size(),
                static_cast<long long>(separate.cost.postings_scanned),
                static_cast<long long>(separate.tree_nodes));
    std::printf("merged tree:    %zu results, %lld postings scanned, "
                "%lld nodes\n",
                merged.docs.size(),
                static_cast<long long>(merged.cost.postings_scanned),
                static_cast<long long>(merged.tree_nodes));
    // Show a couple of retrieved titles.
    int shown = 0;
    for (DocId d : merged.docs) {
      if (shown++ >= 2) break;
      std::printf("  hit: %s\n",
                  JoinStrings(catalog.product(d).title_tokens).c_str());
    }
  }
  return 0;
}
