// Online-serving demo (Section III-G): precompute the traffic head into a
// key-value store with the full cyclic pipeline, serve the long tail with
// the fast hybrid direct model, and report per-path latency percentiles
// against the 50 ms serving budget. Ends with a fault drill: the direct
// model is fault-injected dead and the degradation ladder + circuit
// breaker keep every request answered.

#include <cstdio>

#include "core/string_util.h"
#include "datagen/traffic.h"
#include "rewrite/direct_model.h"
#include "rewrite/inference.h"
#include "rewrite/trainer.h"
#include "serving/fault_injection.h"
#include "serving/rewrite_service.h"

using namespace cyqr;

int main() {
  // World.
  Catalog catalog = Catalog::Generate({});
  ClickLogConfig log_config;
  log_config.num_distinct_queries = 600;
  log_config.num_sessions = 30000;
  ClickLog click_log = ClickLog::Generate(catalog, log_config);
  const std::vector<TokenPair> token_pairs = click_log.TokenPairs(catalog);
  std::vector<std::vector<std::string>> corpus;
  for (const TokenPair& p : token_pairs) {
    corpus.push_back(p.query);
    corpus.push_back(p.title);
  }
  const Vocabulary vocab = Vocabulary::Build(corpus);

  // Offline model: the full cyclic pipeline (slow, accurate).
  CycleConfig config = PaperScaledConfig(vocab.size());
  config.forward.num_layers = 2;
  Rng rng(7);
  CycleModel cycle(config, rng);
  CycleTrainerOptions cycle_options;
  cycle_options.max_steps = 420;
  cycle_options.warmup_steps = 340;
  cycle_options.eval_every = 0;
  std::printf("training offline cycle model...\n");
  CycleTrainer trainer(&cycle, EncodePairs(token_pairs, vocab),
                       cycle_options);
  if (!trainer.Train({}).ok()) return 1;
  cycle.SetTraining(false);
  CycleRewriter pipeline(&cycle, &vocab);

  // Online fallback: hybrid direct q2q model on mined synonymous pairs.
  std::printf("training online direct model...\n");
  Seq2SeqConfig direct_config;
  direct_config.vocab_size = vocab.size();
  direct_config.d_model = 32;
  direct_config.num_heads = 2;
  direct_config.ff_hidden = 64;
  direct_config.num_layers = 1;
  Rng direct_rng(8);
  DirectRewriter direct(DirectArch::kHybrid, direct_config, &vocab,
                        direct_rng);
  const auto mined = MineSynonymousQueryPairs(click_log, 3);
  SupervisedTrainOptions direct_options;
  direct_options.max_steps = 250;
  TrainSupervised(direct.model(), EncodeQueryPairs(mined, vocab),
                  direct_options);
  direct.model().SetTraining(false);

  // Nightly batch job: precompute the head (80% of traffic) into the KV
  // store.
  TrafficSampler traffic(&click_log);
  const std::vector<int64_t> head = traffic.HeadQueries(0.8);
  std::printf("precomputing %zu head queries into the KV store...\n",
              head.size());
  RewriteKvStore store;
  std::vector<std::vector<std::string>> head_tokens;
  for (int64_t q : head) {
    head_tokens.push_back(click_log.queries()[q].tokens);
  }
  RewriteService::PrecomputeHead(pipeline, head_tokens, {}, &store);

  // Live traffic through the two-tier service.
  RewriteService service(&store, &direct, {});
  Rng traffic_rng(99);
  const int64_t kRequests = 400;
  for (int64_t i = 0; i < kRequests; ++i) {
    const int64_t q = traffic.SampleQueryIndex(traffic_rng);
    service.Serve(click_log.queries()[q].tokens);
  }

  std::printf("\nserved %lld requests: %lld cache hits, %lld model calls "
              "(%.0f%% cache hit rate)\n",
              static_cast<long long>(kRequests),
              static_cast<long long>(service.cache_hits()),
              static_cast<long long>(service.model_calls()),
              100.0 * service.cache_hits() / kRequests);
  std::printf("cache path:  mean %.3f ms, p99 %.3f ms\n",
              service.cache_latency().MeanMillis(),
              service.cache_latency().PercentileMillis(0.99));
  std::printf("model path:  mean %.1f ms, p99 %.1f ms\n",
              service.model_latency().MeanMillis(),
              service.model_latency().PercentileMillis(0.99));
  std::printf("(paper budget: 50 ms end-to-end; cache <5 ms, direct model "
              "~30 ms on a 32-core CPU)\n");

  // Show one example from each path.
  const auto cached = service.Serve(head_tokens[0]);
  std::printf("\nhead query \"%s\" -> ", JoinStrings(head_tokens[0]).c_str());
  for (const auto& r : cached.rewrites) {
    std::printf("\"%s\" ", JoinStrings(r).c_str());
  }
  std::printf("(from cache)\n");

  // Fault drill: wedge the direct model (100%% injected errors) and replay
  // traffic. The ladder answers every request anyway; the circuit breaker
  // opens after a few failures so tail queries stop paying for timeouts.
  std::printf("\n--- fault drill: direct model wedged ---\n");
  KvStoreBackend cache_backend(&store);
  DirectModelBackend model_backend(&direct);
  FaultSpec wedged;
  wedged.error_probability = 1.0;
  wedged.error_message = "injected model outage";
  FaultyModelBackend faulty_model(&model_backend, wedged, /*seed=*/5);
  RewriteService drilled(&cache_backend, &faulty_model, nullptr, {});
  Rng drill_rng(123);
  int64_t answered = 0;
  for (int64_t i = 0; i < kRequests; ++i) {
    const int64_t q = traffic.SampleQueryIndex(drill_rng);
    const auto response = drilled.Serve(click_log.queries()[q].tokens);
    answered += response.rewrites.empty() ? 0 : 1;
  }
  std::printf("answered %lld/%lld requests during the outage "
              "(%lld degraded, %lld model failures)\n",
              static_cast<long long>(answered),
              static_cast<long long>(kRequests),
              static_cast<long long>(drilled.degraded_requests()),
              static_cast<long long>(drilled.model_failures()));
  std::printf("circuit breaker: state=%s, opened %lld times, "
              "rejected %lld model calls\n",
              CircuitBreaker::StateName(drilled.breaker().state()),
              static_cast<long long>(drilled.breaker().times_opened()),
              static_cast<long long>(drilled.breaker().rejected_requests()));
  return 0;
}
