// Quickstart: train the cyclic query-rewriting model on a synthetic
// e-commerce click log and rewrite a few hard colloquial queries.
//
// This walks the full pipeline of the paper:
//   click log -> vocabulary -> forward/backward transformers ->
//   warmup training -> cyclic-consistent joint training (Algorithm 1) ->
//   Figure 3 inference.

#include <cstdio>

#include "core/stopwatch.h"
#include "datagen/click_log.h"
#include "rewrite/inference.h"
#include "rewrite/trainer.h"

using namespace cyqr;

int main() {
  Stopwatch total;

  // 1. Synthetic world + click log (substitute for the JD 60-day log).
  Catalog catalog = Catalog::Generate({});
  ClickLogConfig log_config;
  log_config.num_distinct_queries = 600;
  log_config.num_sessions = 30000;
  ClickLog click_log = ClickLog::Generate(catalog, log_config);
  const std::vector<TokenPair> token_pairs = click_log.TokenPairs(catalog);
  std::printf("click log: %zu aggregated (query,title) pairs\n",
              token_pairs.size());

  // 2. Vocabulary over queries and titles.
  std::vector<std::vector<std::string>> corpus;
  for (const TokenPair& p : token_pairs) {
    corpus.push_back(p.query);
    corpus.push_back(p.title);
  }
  const Vocabulary vocab = Vocabulary::Build(corpus);
  std::printf("vocabulary: %lld tokens\n",
              static_cast<long long>(vocab.size()));

  // 3. The cycle model: 4-layer query-to-title + 1-layer title-to-query
  //    transformers (paper Table II at laptop width).
  CycleConfig config = PaperScaledConfig(vocab.size());
  config.forward.num_layers = 2;  // Quickstart speed; benches use 4.
  Rng rng(1234);
  CycleModel model(config, rng);
  std::printf("parameters: forward %lld, backward %lld\n",
              static_cast<long long>(model.forward().NumParameters()),
              static_cast<long long>(model.backward().NumParameters()));

  // 4. Algorithm 1: warmup on L_f + L_b, then the cyclic term.
  const std::vector<SeqPair> train = EncodePairs(token_pairs, vocab);
  CycleTrainerOptions train_options;
  train_options.max_steps = 360;
  train_options.warmup_steps = 300;
  train_options.batch_size = 8;
  train_options.eval_every = 0;
  CycleTrainer trainer(&model, train, train_options);
  Stopwatch train_watch;
  if (!trainer.Train({}).ok()) return 1;
  model.SetTraining(false);
  std::printf("trained %lld steps in %.1fs\n",
              static_cast<long long>(trainer.step()),
              train_watch.ElapsedSeconds());

  // 5. Rewrite hard colloquial queries (Figure 3 pipeline).
  CycleRewriter rewriter(&model, &vocab);
  const std::vector<std::vector<std::string>> hard_queries = {
      {"phone", "for", "grandpa"},
      {"milkpowder", "for", "seniors"},
      {"comfortable", "shoes", "for", "men"},
      {"coin", "year", "of", "the", "boar"},
  };
  for (const auto& query : hard_queries) {
    Stopwatch watch;
    CycleRewriter::Result result = rewriter.Rewrite(query);
    std::string q;
    for (const auto& t : query) q += t + " ";
    std::printf("\nquery: %s(%.0f ms)\n", q.c_str(), watch.ElapsedMillis());
    if (!result.synthetic_titles.empty()) {
      std::string title;
      for (const auto& tok : result.synthetic_titles[0].ids) {
        title += vocab.Token(tok) + " ";
      }
      std::printf("  top synthetic title: %s\n", title.c_str());
    }
    for (const RewriteCandidate& c : result.rewrites) {
      std::string r;
      for (const auto& t : c.tokens) r += t + " ";
      std::printf("  rewrite (log-prob %7.2f): %s\n", c.log_prob, r.c_str());
    }
  }
  std::printf("\ntotal: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
