// Attention-visualization example (the Figure 6 workflow): train a small
// cycle model, rewrite a nickname + vague-word query, and dump the decoder
// cross-attention of both translation hops as CSV so it can be plotted.

#include <cstdio>

#include "core/string_util.h"
#include "datagen/click_log.h"
#include "nmt/transformer.h"
#include "rewrite/inference.h"
#include "rewrite/trainer.h"

using namespace cyqr;

namespace {

void DumpAttentionCsv(const Seq2SeqModel& model, const Vocabulary& vocab,
                      const std::vector<int32_t>& src,
                      const std::vector<int32_t>& tgt, const char* label) {
  const auto* transformer = dynamic_cast<const TransformerSeq2Seq*>(&model);
  if (transformer == nullptr) return;
  const_cast<TransformerSeq2Seq*>(transformer)->SetCaptureAttention(true);
  NoGradGuard no_grad;
  const EncodedBatch src_batch = PadBatch({src});
  const TeacherForcedBatch tf = MakeTeacherForced({tgt});
  (void)model.Forward(src_batch, tf.inputs);

  std::printf("\n# %s (rows: target tokens, cols: source tokens)\n", label);
  std::printf("token");
  for (int32_t id : src) std::printf(",%s", vocab.Token(id).c_str());
  std::printf("\n");
  const auto& attn = transformer->LastCrossAttention();
  const int64_t cols = transformer->LastAttentionCols();
  for (size_t i = 0; i < tgt.size(); ++i) {
    std::printf("%s", vocab.Token(tgt[i]).c_str());
    for (int64_t j = 0; j < cols; ++j) {
      std::printf(",%.4f", attn[i * cols + j]);
    }
    std::printf("\n");
  }
  const_cast<TransformerSeq2Seq*>(transformer)->SetCaptureAttention(false);
}

}  // namespace

int main() {
  Catalog catalog = Catalog::Generate({});
  ClickLogConfig log_config;
  log_config.num_distinct_queries = 600;
  log_config.num_sessions = 30000;
  ClickLog click_log = ClickLog::Generate(catalog, log_config);
  const std::vector<TokenPair> token_pairs = click_log.TokenPairs(catalog);
  std::vector<std::vector<std::string>> corpus;
  for (const TokenPair& p : token_pairs) {
    corpus.push_back(p.query);
    corpus.push_back(p.title);
  }
  const Vocabulary vocab = Vocabulary::Build(corpus);

  CycleConfig config = PaperScaledConfig(vocab.size());
  config.forward.num_layers = 2;
  Rng rng(7);
  CycleModel model(config, rng);
  CycleTrainerOptions options;
  options.max_steps = 440;
  options.warmup_steps = 360;
  options.eval_every = 0;
  std::printf("training cycle model...\n");
  CycleTrainer trainer(&model, EncodePairs(token_pairs, vocab), options);
  if (!trainer.Train({}).ok()) return 1;
  model.SetTraining(false);
  CycleRewriter rewriter(&model, &vocab);

  // The paper's example shape: brand nickname + vague descriptor + head.
  // Fall back to a colloquial in-vocabulary query from the log if the
  // default probe contains out-of-vocabulary tokens.
  std::vector<std::string> query = {"adi", "comfortable", "shoes"};
  auto in_vocab = [&vocab](const std::vector<std::string>& tokens) {
    for (const std::string& tok : tokens) {
      if (!vocab.Contains(tok)) return false;
    }
    return true;
  };
  if (!in_vocab(query)) {
    for (const QuerySpec& q : click_log.queries()) {
      if (q.is_colloquial && q.tokens.size() >= 3 && in_vocab(q.tokens)) {
        query = q.tokens;
        break;
      }
    }
  }
  RewriteOptions rewrite_options;
  const CycleRewriter::Result result =
      rewriter.Rewrite(query, rewrite_options);
  if (result.synthetic_titles.empty() || result.rewrites.empty()) {
    std::printf("no rewrite produced\n");
    return 1;
  }
  std::printf("query:   %s\n", JoinStrings(query).c_str());
  std::printf("title:   %s\n",
              vocab.DecodeToString(result.synthetic_titles[0].ids).c_str());
  std::printf("rewrite: %s\n",
              JoinStrings(result.rewrites[0].tokens).c_str());

  DumpAttentionCsv(model.forward(), vocab, vocab.Encode(query),
                   result.synthetic_titles[0].ids,
                   "query -> synthetic title cross attention");
  DumpAttentionCsv(model.backward(), vocab, result.synthetic_titles[0].ids,
                   result.rewrites[0].ids,
                   "synthetic title -> rewritten query cross attention");
  return 0;
}
