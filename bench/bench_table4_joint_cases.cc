// Regenerates Table IV: example rewrites from the JOINTLY trained model
// (cycle-consistent, Algorithm 1). Compare against bench_table3: the joint
// model's rewrites preserve the original intent more often, e.g.
// "milk powder for seniors" -> "adult milk powder" instead of drifting to
// a different product segment.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/string_util.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();
  const CycleConfig config = bench::BenchCycleConfig(world.vocab.size());
  const auto model = bench::GetTrainedCycleModel(world, config,
                                                 /*joint=*/true,
                                                 "joint_transformer");
  CycleRewriter rewriter(model.get(), &world.vocab);

  std::printf("\nTable IV — good cases from the jointly trained model\n");
  std::printf("%s\n",
              bench::Row({"original query", "top synthetic title",
                          "rewritten query"}, 30).c_str());
  std::printf("%s\n", std::string(95, '-').c_str());
  for (const QuerySpec& query : bench::HardQueries(world, 6)) {
    RewriteOptions options;
    options.k = 3;
    const CycleRewriter::Result result =
        rewriter.Rewrite(query.tokens, options);
    std::string title = "-";
    if (!result.synthetic_titles.empty()) {
      title = world.vocab.DecodeToString(result.synthetic_titles[0].ids);
    }
    std::string rewrite = "-";
    if (!result.rewrites.empty()) {
      rewrite = JoinStrings(result.rewrites[0].tokens);
    }
    std::printf("%s\n", bench::Row({JoinStrings(query.tokens),
                                    title.substr(0, 44), rewrite}, 30)
                            .c_str());
  }
  return 0;
}
