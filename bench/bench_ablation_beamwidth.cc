// Ablation: beam width k of the cyclic pipeline (number of synthetic
// titles AND output rewrites, paper default 3). Larger k explores more
// intermediate titles at quadratic candidate-scoring cost; this sweep
// reports rewrite quality (oracle judge) vs end-to-end latency.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/stopwatch.h"
#include "eval/judge.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();
  const CycleConfig config = bench::BenchCycleConfig(world.vocab.size());
  const auto model = bench::GetTrainedCycleModel(world, config,
                                                 /*joint=*/true,
                                                 "joint_transformer");
  CycleRewriter rewriter(model.get(), &world.vocab);
  const RelevanceJudge judge(&world.catalog);
  const std::vector<QuerySpec> queries = bench::HardQueries(world, 40);

  std::printf("Ablation — beam width k (%zu hard queries)\n", queries.size());
  std::printf("%s\n", bench::Row({"k", "judge-score", "#rewrites",
                                  "ms/query"}, 13)
                          .c_str());
  std::printf("%s\n", std::string(56, '-').c_str());
  for (int64_t k : {1, 2, 3, 5}) {
    RewriteOptions options;
    options.k = k;
    double total_score = 0.0;
    double total_rewrites = 0.0;
    Stopwatch watch;
    for (const QuerySpec& q : queries) {
      const auto result = rewriter.Rewrite(q.tokens, options);
      std::vector<std::vector<std::string>> rewrites;
      for (const RewriteCandidate& c : result.rewrites) {
        rewrites.push_back(c.tokens);
      }
      total_score += judge.ScoreSet(q.intent, rewrites);
      total_rewrites += static_cast<double>(rewrites.size());
    }
    const double millis = watch.ElapsedMillis() / queries.size();
    char buf[32];
    std::vector<std::string> cells;
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(k));
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", total_score / queries.size());
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  total_rewrites / queries.size());
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", millis);
    cells.push_back(buf);
    std::printf("%s\n", bench::Row(cells, 13).c_str());
  }
  std::printf("\nexpected shape: latency grows roughly quadratically with "
              "k (k titles x k candidates, each scored against every "
              "title); quality saturates near the paper's k = 3.\n");
  return 0;
}
