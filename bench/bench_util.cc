#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "nn/serialize.h"
#include "obs/metrics.h"

namespace cyqr::bench {

namespace {
constexpr char kCacheDir[] = "cyqr_bench_cache";
}  // namespace

BenchWorld BuildWorld(int64_t num_queries, int64_t num_sessions,
                      uint64_t seed) {
  BenchWorld world;
  world.catalog = Catalog::Generate({});
  ClickLogConfig log_config;
  log_config.num_distinct_queries = num_queries;
  log_config.num_sessions = num_sessions;
  log_config.seed = seed;
  world.click_log = ClickLog::Generate(world.catalog, log_config);
  world.token_pairs = world.click_log.TokenPairs(world.catalog);

  std::vector<std::vector<std::string>> corpus;
  for (const TokenPair& p : world.token_pairs) {
    corpus.push_back(p.query);
    corpus.push_back(p.title);
  }
  world.vocab = Vocabulary::Build(corpus);

  std::vector<SeqPair> all = EncodePairs(world.token_pairs, world.vocab);
  // 90/10 deterministic split.
  for (size_t i = 0; i < all.size(); ++i) {
    if (i % 10 == 9) {
      world.eval.push_back(std::move(all[i]));
    } else {
      world.train.push_back(std::move(all[i]));
    }
  }
  return world;
}

CycleConfig BenchCycleConfig(int64_t vocab_size, ArchType arch,
                             int64_t forward_layers) {
  CycleConfig config = PaperScaledConfig(vocab_size);
  config.arch = arch;
  config.forward.num_layers = forward_layers;
  return config;
}

CycleTrainerOptions BenchTrainerOptions(bool joint) {
  CycleTrainerOptions options;
  options.max_steps = 560;
  options.warmup_steps = joint ? 420 : 560;
  options.joint = joint;
  options.batch_size = 8;
  options.eval_every = 0;
  options.eval_queries = 24;
  return options;
}

std::unique_ptr<CycleModel> GetTrainedCycleModel(
    const BenchWorld& world, const CycleConfig& config, bool joint,
    const std::string& cache_key) {
  Rng rng(1234);
  auto model = std::make_unique<CycleModel>(config, rng);
  const std::string path =
      std::string(kCacheDir) + "/" + cache_key + ".params";
  if (std::filesystem::exists(path) &&
      LoadParametersFromFile(model->Parameters(), path).ok()) {
    std::printf("[bench] loaded cached model '%s'\n", cache_key.c_str());
    model->SetTraining(false);
    return model;
  }
  std::printf("[bench] training model '%s' (this runs once; cached in %s)\n",
              cache_key.c_str(), kCacheDir);
  CycleTrainer trainer(model.get(), world.train, BenchTrainerOptions(joint));
  const Status trained = trainer.Train({});
  if (!trained.ok()) {
    std::fprintf(stderr, "[bench] training '%s' failed: %s\n",
                 cache_key.c_str(), trained.ToString().c_str());
    std::exit(1);
  }
  model->SetTraining(false);
  std::error_code ec;
  std::filesystem::create_directories(kCacheDir, ec);
  if (!ec) {
    const Status saved = SaveParametersToFile(model->Parameters(), path);
    if (!saved.ok()) {
      std::fprintf(stderr, "[bench] model cache write failed: %s\n",
                   saved.ToString().c_str());
    }
  }
  return model;
}

std::vector<std::vector<std::string>> ModelRewrites(
    const CycleRewriter& rewriter, const std::vector<std::string>& query,
    int64_t k) {
  RewriteOptions options;
  options.k = k;
  std::vector<std::vector<std::string>> out;
  for (const RewriteCandidate& c : rewriter.Rewrite(query, options).rewrites) {
    out.push_back(c.tokens);
  }
  return out;
}

std::vector<QuerySpec> HardQueries(const BenchWorld& world, size_t n,
                                   uint64_t seed) {
  std::vector<QuerySpec> out;
  Rng rng(seed);
  const auto& queries = world.click_log.queries();
  std::vector<size_t> order = rng.Permutation(queries.size());
  for (size_t i : order) {
    if (!queries[i].is_colloquial) continue;
    out.push_back(queries[i]);
    if (out.size() >= n) break;
  }
  return out;
}

std::string Row(const std::vector<std::string>& cells, int width) {
  std::string out;
  for (const std::string& cell : cells) {
    std::string padded = cell;
    if (static_cast<int>(padded.size()) < width) {
      padded.append(width - padded.size(), ' ');
    }
    out += padded;
    out += ' ';
  }
  return out;
}

Status DumpMetrics(const std::string& path) {
  return MetricsRegistry::Global().WriteJsonSnapshot(path);
}

}  // namespace cyqr::bench
