// Related-work baseline study: SimRank++ [25] click-graph rewriting vs the
// jointly trained cycle model. Two claims from the paper to demonstrate:
//  1. quality — SimRank++ can only suggest EXISTING queries that co-clicked
//     with the input, so it cannot generalize to tail queries that share no
//     clicks; the generative model covers them.
//  2. scalability — "this method is not scalable to the current industrial
//     scale of data": SimRank++'s iteration cost grows with the number of
//     co-clicked pairs (quadratic in queries per item), measured here by
//     scaling the click log.

#include <cstdio>

#include "baseline/simrank.h"
#include "bench/bench_util.h"
#include "core/stopwatch.h"
#include "core/string_util.h"
#include "eval/judge.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();
  const CycleConfig config = bench::BenchCycleConfig(world.vocab.size());
  const auto joint = bench::GetTrainedCycleModel(world, config,
                                                 /*joint=*/true,
                                                 "joint_transformer");
  CycleRewriter rewriter(joint.get(), &world.vocab);
  const RelevanceJudge judge(&world.catalog);

  std::printf("building SimRank++ similarity (this is the expensive "
              "part)...\n");
  Stopwatch build_watch;
  SimRankRewriter simrank(&world.click_log, {});
  std::printf("built in %.1fs for %zu click pairs\n\n",
              build_watch.ElapsedSeconds(), world.click_log.pairs().size());

  // Quality: judge score and coverage over hard queries.
  const std::vector<QuerySpec> queries = bench::HardQueries(world, 60);
  double simrank_score = 0.0;
  double model_score = 0.0;
  int64_t simrank_covered = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    // Find the query's index in the log (HardQueries draws from the log).
    int64_t index = -1;
    for (size_t i = 0; i < world.click_log.queries().size(); ++i) {
      if (world.click_log.queries()[i].tokens == queries[qi].tokens) {
        index = static_cast<int64_t>(i);
        break;
      }
    }
    std::vector<std::vector<std::string>> simrank_rewrites;
    if (index >= 0) {
      for (const auto& similar : simrank.MostSimilar(index, 3)) {
        simrank_rewrites.push_back(
            world.click_log.queries()[similar.query_index].tokens);
      }
    }
    if (!simrank_rewrites.empty()) ++simrank_covered;
    simrank_score += judge.ScoreSet(queries[qi].intent, simrank_rewrites);
    model_score += judge.ScoreSet(
        queries[qi].intent, bench::ModelRewrites(rewriter,
                                                 queries[qi].tokens));
  }
  std::printf("quality on %zu hard queries (oracle judge):\n",
              queries.size());
  std::printf("  SimRank++      mean score %.3f   coverage %3.0f%%\n",
              simrank_score / queries.size(),
              100.0 * simrank_covered / queries.size());
  std::printf("  joint model    mean score %.3f   coverage 100%%\n\n",
              model_score / queries.size());

  // Scalability: build time vs click-log scale.
  std::printf("scalability (SimRank++ build time vs click-log size):\n");
  std::printf("  %-10s %14s %14s\n", "sessions", "click pairs",
              "build time");
  Catalog catalog = Catalog::Generate({});
  for (int64_t sessions : {10000, 20000, 40000, 80000}) {
    ClickLogConfig log_config;
    log_config.num_distinct_queries = 800;
    log_config.num_sessions = sessions;
    ClickLog log = ClickLog::Generate(catalog, log_config);
    Stopwatch watch;
    SimRankRewriter scaled(&log, {});
    std::printf("  %-10lld %14zu %13.2fs\n",
                static_cast<long long>(sessions), log.pairs().size(),
                watch.ElapsedSeconds());
  }
  std::printf("\nexpected shape: build time grows super-linearly in click "
              "pairs (co-clicked query pairs per item are quadratic) — the "
              "paper's scalability objection.\n");
  return 0;
}
