// Section III-G serving bench: latency of the three rewrite paths —
// KV-store cache hit (paper: <5 ms at production scale), the fast direct
// query-to-query model (paper: ~30 ms on a 32-core CPU), and the full
// two-hop cyclic pipeline (paper: >100 ms even on GPU, too slow to serve).
// Shape to reproduce: cache << direct model << full pipeline.
//
// The fault-injection benches measure the degradation ladder under outage:
// a dead cache falls back to the model, and a dead model is absorbed by the
// circuit breaker (after the first few timeouts, requests short-circuit to
// the passthrough rung — the steady-state cost of an outage should be
// microseconds, not model-decode milliseconds).

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "core/string_util.h"
#include "datagen/traffic.h"
#include "rewrite/direct_model.h"
#include "serving/fault_injection.h"
#include "serving/rewrite_service.h"

namespace {

using namespace cyqr;

struct ServingFixture {
  bench::BenchWorld world = bench::BuildWorld();
  std::unique_ptr<CycleModel> joint;
  std::unique_ptr<CycleRewriter> pipeline;
  std::unique_ptr<DirectRewriter> direct;
  RewriteKvStore store;
  std::vector<std::vector<std::string>> head_queries;
  std::vector<std::vector<std::string>> tail_queries;

  ServingFixture() {
    const CycleConfig config =
        bench::BenchCycleConfig(world.vocab.size());
    joint = bench::GetTrainedCycleModel(world, config, /*joint=*/true,
                                        "joint_transformer");
    pipeline = std::make_unique<CycleRewriter>(joint.get(), &world.vocab);

    // Fast path: hybrid direct model on mined synonymous pairs.
    Seq2SeqConfig direct_config;
    direct_config.vocab_size = world.vocab.size();
    direct_config.d_model = 32;
    direct_config.num_heads = 2;
    direct_config.ff_hidden = 64;
    direct_config.num_layers = 1;
    Rng rng(42);
    direct = std::make_unique<DirectRewriter>(DirectArch::kHybrid,
                                              direct_config, &world.vocab,
                                              rng);
    const auto mined = MineSynonymousQueryPairs(world.click_log, 3);
    const auto pairs = EncodeQueryPairs(mined, world.vocab);
    SupervisedTrainOptions options;
    options.max_steps = 200;
    TrainSupervised(direct->model(), pairs, options);
    direct->model().SetTraining(false);

    // Precompute the traffic head into the KV store.
    TrafficSampler traffic(&world.click_log);
    for (int64_t q : traffic.HeadQueries(0.8)) {
      head_queries.push_back(world.click_log.queries()[q].tokens);
    }
    RewriteOptions rewrite_options;
    // Cap precompute volume so fixture setup stays fast.
    if (head_queries.size() > 100) head_queries.resize(100);
    RewriteService::PrecomputeHead(*pipeline, head_queries, rewrite_options,
                                   &store);
    for (const QuerySpec& q : world.click_log.queries()) {
      if (store.Get(JoinStrings(q.tokens)) == nullptr) {
        tail_queries.push_back(q.tokens);
      }
      if (tail_queries.size() >= 50) break;
    }
  }
};

ServingFixture& GetFixture() {
  // Intentionally leaked Meyers singleton: benchmark fixtures must outlive
  // static-destruction order at process exit.
  static ServingFixture* fixture =
      new ServingFixture();  // NOLINT(cyqr-raw-owning-new)
  return *fixture;
}

void BM_CacheHit(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  RewriteService service(&f.store, f.direct.get(), {});
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.head_queries[i++ % f.head_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_CacheHit)->Unit(benchmark::kMicrosecond);

void BM_DirectModelFallback(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  RewriteService service(&f.store, f.direct.get(), {});
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.tail_queries[i++ % f.tail_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_DirectModelFallback)->Unit(benchmark::kMillisecond);

// Cache outage (100% injected IoError): every request, including head
// queries, is absorbed by the direct-model rung.
void BM_CacheOutageFallsToModel(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  KvStoreBackend cache(&f.store);
  FaultSpec outage;
  outage.error_probability = 1.0;
  outage.error_code = StatusCode::kIoError;
  FaultyKvBackend faulty_cache(&cache, outage, /*seed=*/17);
  DirectModelBackend model(f.direct.get());
  RewriteService service(&faulty_cache, &model, nullptr, {});
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.head_queries[i++ % f.head_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_CacheOutageFallsToModel)->Unit(benchmark::kMillisecond);

// Model outage (100% injected errors) on tail queries: after the breaker
// opens, requests short-circuit to passthrough — steady-state cost of a
// wedged model should be near the cache-hit floor, not model latency.
void BM_ModelOutageSteadyState(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  KvStoreBackend cache(&f.store);
  DirectModelBackend model(f.direct.get());
  FaultSpec wedged;
  wedged.error_probability = 1.0;
  FaultyModelBackend faulty_model(&model, wedged, /*seed=*/18);
  RewriteService service(&cache, &faulty_model, nullptr, {});
  // Trip the breaker before timing starts.
  for (int i = 0; i < 8; ++i) {
    service.Serve(f.tail_queries[i % f.tail_queries.size()]);
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.tail_queries[i++ % f.tail_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_ModelOutageSteadyState)->Unit(benchmark::kMicrosecond);

void BM_FullCyclicPipeline(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    const auto result = f.pipeline->Rewrite(
        f.tail_queries[i++ % f.tail_queries.size()], {});
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_FullCyclicPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
