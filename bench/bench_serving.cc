// Section III-G serving bench: latency of the three rewrite paths —
// KV-store cache hit (paper: <5 ms at production scale), the fast direct
// query-to-query model (paper: ~30 ms on a 32-core CPU), and the full
// two-hop cyclic pipeline (paper: >100 ms even on GPU, too slow to serve).
// Shape to reproduce: cache << direct model << full pipeline.
//
// The fault-injection benches measure the degradation ladder under outage:
// a dead cache falls back to the model, and a dead model is absorbed by the
// circuit breaker (after the first few timeouts, requests short-circuit to
// the passthrough rung — the steady-state cost of an outage should be
// microseconds, not model-decode milliseconds).

// The instrumentation-overhead pair (BM_CacheHit vs BM_CacheHitInstrumented)
// measures the cost of the metrics registry on the serving hot path; the
// acceptance bar is <= 5% p50 overhead. Running this binary also writes the
// registry contents to BENCH_serving.json (override with --metrics-out=PATH,
// disable with --metrics-out=).

// The closed-loop overload mode (--overload) measures saturation behaviour
// of the concurrent RewriteServer front end: Zipfian traffic is offered at
// 1x / 2x / 4x the calibrated capacity and the resulting curves — achieved
// QPS, shed rate, p50/p99 of admitted requests, deadline violations — are
// recorded into the same metrics snapshot. The acceptance shape is
// shed-not-collapse: past saturation the server refuses load (nonzero shed
// rate) while the p99 of what it does admit stays inside the deadline
// budget, instead of every request timing out in a growing queue.

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/deadline.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "core/string_util.h"
#include "datagen/traffic.h"
#include "obs/flight_recorder.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/direct_model.h"
#include "serving/fault_injection.h"
#include "serving/http_endpoint.h"
#include "serving/latency.h"
#include "serving/rewrite_service.h"
#include "serving/server.h"

namespace {

using namespace cyqr;

struct ServingFixture {
  bench::BenchWorld world = bench::BuildWorld();
  std::unique_ptr<CycleModel> joint;
  std::unique_ptr<CycleRewriter> pipeline;
  std::unique_ptr<DirectRewriter> direct;
  RewriteKvStore store;
  std::vector<std::vector<std::string>> head_queries;
  std::vector<std::vector<std::string>> tail_queries;

  ServingFixture() {
    const CycleConfig config =
        bench::BenchCycleConfig(world.vocab.size());
    joint = bench::GetTrainedCycleModel(world, config, /*joint=*/true,
                                        "joint_transformer");
    pipeline = std::make_unique<CycleRewriter>(joint.get(), &world.vocab);

    // Fast path: hybrid direct model on mined synonymous pairs.
    Seq2SeqConfig direct_config;
    direct_config.vocab_size = world.vocab.size();
    direct_config.d_model = 32;
    direct_config.num_heads = 2;
    direct_config.ff_hidden = 64;
    direct_config.num_layers = 1;
    Rng rng(42);
    direct = std::make_unique<DirectRewriter>(DirectArch::kHybrid,
                                              direct_config, &world.vocab,
                                              rng);
    const auto mined = MineSynonymousQueryPairs(world.click_log, 3);
    const auto pairs = EncodeQueryPairs(mined, world.vocab);
    SupervisedTrainOptions options;
    options.max_steps = 200;
    TrainSupervised(direct->model(), pairs, options);
    direct->model().SetTraining(false);

    // Precompute the traffic head into the KV store.
    TrafficSampler traffic(&world.click_log);
    for (int64_t q : traffic.HeadQueries(0.8)) {
      head_queries.push_back(world.click_log.queries()[q].tokens);
    }
    RewriteOptions rewrite_options;
    // Cap precompute volume so fixture setup stays fast.
    if (head_queries.size() > 100) head_queries.resize(100);
    RewriteService::PrecomputeHead(*pipeline, head_queries, rewrite_options,
                                   &store);
    for (const QuerySpec& q : world.click_log.queries()) {
      if (store.Get(JoinStrings(q.tokens)) == nullptr) {
        tail_queries.push_back(q.tokens);
      }
      if (tail_queries.size() >= 50) break;
    }
  }
};

ServingFixture& GetFixture() {
  // Intentionally leaked Meyers singleton: benchmark fixtures must outlive
  // static-destruction order at process exit.
  static ServingFixture* fixture =
      new ServingFixture();  // NOLINT(cyqr-raw-owning-new)
  return *fixture;
}

void BM_CacheHit(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  RewriteService service(&f.store, f.direct.get(), {});
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.head_queries[i++ % f.head_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_CacheHit)->Unit(benchmark::kMicrosecond);

// Identical to BM_CacheHit but with the metrics registry attached: the
// difference between the two is the per-request cost of instrumentation
// (budget: <= 5% p50).
void BM_CacheHitInstrumented(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  RewriteService service(&f.store, f.direct.get(), {}, nullptr,
                         &MetricsRegistry::Global());
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.head_queries[i++ % f.head_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_CacheHitInstrumented)->Unit(benchmark::kMicrosecond);

// Cache hit with metrics AND a per-request Trace: the fully-observable
// configuration a debugging session would run with.
void BM_CacheHitTraced(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  RewriteService service(&f.store, f.direct.get(), {}, nullptr,
                         &MetricsRegistry::Global());
  size_t i = 0;
  for (auto _ : state) {
    Trace trace;
    const auto response =
        service.Serve(f.head_queries[i++ % f.head_queries.size()],
                      Deadline::AfterMillis(50.0), &trace);
    benchmark::DoNotOptimize(&response);
    benchmark::DoNotOptimize(&trace);
  }
}
BENCHMARK(BM_CacheHitTraced)->Unit(benchmark::kMicrosecond);

void BM_DirectModelFallback(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  RewriteService service(&f.store, f.direct.get(), {});
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.tail_queries[i++ % f.tail_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_DirectModelFallback)->Unit(benchmark::kMillisecond);

// Cache outage (100% injected IoError): every request, including head
// queries, is absorbed by the direct-model rung.
void BM_CacheOutageFallsToModel(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  KvStoreBackend cache(&f.store);
  FaultSpec outage;
  outage.error_probability = 1.0;
  outage.error_code = StatusCode::kIoError;
  FaultyKvBackend faulty_cache(&cache, outage, /*seed=*/17);
  DirectModelBackend model(f.direct.get());
  RewriteService service(&faulty_cache, &model, nullptr, {});
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.head_queries[i++ % f.head_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_CacheOutageFallsToModel)->Unit(benchmark::kMillisecond);

// Model outage (100% injected errors) on tail queries: after the breaker
// opens, requests short-circuit to passthrough — steady-state cost of a
// wedged model should be near the cache-hit floor, not model latency.
void BM_ModelOutageSteadyState(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  KvStoreBackend cache(&f.store);
  DirectModelBackend model(f.direct.get());
  FaultSpec wedged;
  wedged.error_probability = 1.0;
  FaultyModelBackend faulty_model(&model, wedged, /*seed=*/18);
  RewriteService service(&cache, &faulty_model, nullptr, {});
  // Trip the breaker before timing starts.
  for (int i = 0; i < 8; ++i) {
    service.Serve(f.tail_queries[i % f.tail_queries.size()]);
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.tail_queries[i++ % f.tail_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_ModelOutageSteadyState)->Unit(benchmark::kMicrosecond);

void BM_FullCyclicPipeline(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    const auto result = f.pipeline->Rewrite(
        f.tail_queries[i++ % f.tail_queries.size()], {});
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_FullCyclicPipeline)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Overload mode (--overload): closed-loop saturation curves for the
// concurrent RewriteServer front end.
// ---------------------------------------------------------------------------

// Stands in for the direct model in the overload drill: burns a fixed slice
// of wall-clock CPU per call so server capacity is known and reproducible,
// and the drill does not pay for training a real model.
class SpinModelBackend : public ModelBackend {
 public:
  explicit SpinModelBackend(double spin_millis) : spin_millis_(spin_millis) {}

  [[nodiscard]] Status Rewrite(const std::vector<std::string>& query_tokens,
                               int64_t /*k*/, int64_t /*max_len*/,
                               Deadline& /*deadline*/,
                               std::vector<RewriteCandidate>* out) override {
    Stopwatch spin;
    while (spin.ElapsedMillis() < spin_millis_) {
    }
    RewriteCandidate candidate;
    candidate.tokens = query_tokens;
    out->push_back(std::move(candidate));
    return Status::OK();
  }

 private:
  double spin_millis_;
};

// Minimal loopback HTTP GET for the scrape-under-load drill: returns true
// when the endpoint answered 200 within the (blocking) socket round trip.
bool HttpGetOk(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  char buf[512];
  std::string head;
  while (head.find("\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
    if (head.size() > 65536) break;  // Drain cap; status line seen by now.
  }
  ::close(fd);
  return head.rfind("HTTP/1.1 200", 0) == 0;
}

// Offers paced Zipfian traffic at 1x / 2x / 4x the calibrated capacity and
// records the resulting curves as labelled gauges in the global registry
// (they land in BENCH_serving.json next to the per-path latency benches).
// The shape that matters: past saturation the shed ratio grows while the
// p99 of *admitted* requests stays inside the 50 ms deadline budget —
// overload is refused at the door instead of timing out everyone in a
// growing queue.
void RunOverloadBench(int introspect_port) {
  std::printf("overload mode: paced Zipfian traffic at 1x/2x/4x capacity\n");

  // --introspect-port: stand up the live endpoint and scrape /metrics at
  // ~1 Hz for the whole overload run, proving introspection stays
  // answerable while the serving path is saturated.
  std::unique_ptr<Introspector> introspector;
  std::unique_ptr<HttpEndpoint> endpoint;
  if (introspect_port >= 0) {
    Introspector::Options introspect_options;
    introspect_options.metrics = &MetricsRegistry::Global();
    introspect_options.traces = &TraceSampler::Global();
    introspect_options.flight = &FlightRecorder::Global();
    introspect_options.build_info = "bench_serving overload";
    introspector = std::make_unique<Introspector>(introspect_options);
    HttpEndpoint::Options endpoint_options;
    endpoint_options.port = introspect_port;
    endpoint = std::make_unique<HttpEndpoint>(endpoint_options);
    RegisterIntrospectionRoutes(endpoint.get(), introspector.get());
    const Status started = endpoint->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "warning: introspection disabled: %s\n",
                   started.ToString().c_str());
      endpoint.reset();
      introspector.reset();
    } else {
      std::printf("  introspection: http://127.0.0.1:%d/metrics\n",
                  endpoint->port());
    }
  }
  std::atomic<bool> stop_scraper{false};
  std::atomic<int64_t> scrapes_ok{0};
  std::atomic<int64_t> scrapes_failed{0};
  std::thread scraper;
  if (endpoint != nullptr) {
    scraper = std::thread([&] {
      // ordering: relaxed — plain stop flag and tallies; joined before read.
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        if (HttpGetOk(endpoint->port(), "/metrics")) {
          // ordering: relaxed — plain tally; the join below synchronizes.
          scrapes_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          // ordering: relaxed — same tally contract as above.
          scrapes_failed.fetch_add(1, std::memory_order_relaxed);
        }
        // ~1 Hz, in short slices so shutdown stays prompt.
        for (int i = 0; i < 20; ++i) {
          // ordering: relaxed — see stop flag note above.
          if (stop_scraper.load(std::memory_order_relaxed)) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
    });
  }

  // World + precomputed head cache, but no model training: overload is
  // about queueing behaviour, so the deterministic spin backend stands in
  // for the model and the head queries get canned rewrites.
  bench::BenchWorld world = bench::BuildWorld();
  RewriteKvStore store;
  {
    TrafficSampler head_traffic(&world.click_log);
    std::vector<std::pair<std::string, RewriteKvStore::Rewrites>> entries;
    for (int64_t q : head_traffic.HeadQueries(0.8)) {
      const auto& tokens = world.click_log.queries()[q].tokens;
      entries.emplace_back(JoinStrings(tokens),
                           RewriteKvStore::Rewrites{tokens});
    }
    store.PutMany(std::move(entries));
  }

  KvStoreBackend cache(&store);
  SpinModelBackend model(/*spin_millis=*/0.3);
  RewriteService service(&cache, &model, nullptr, {});

  // Pre-sample the traffic so the paced loop below does no sampling work.
  constexpr int kRequestsPerLevel = 500;
  TrafficSampler traffic(&world.click_log);
  Rng rng(2024);
  std::vector<const std::vector<std::string>*> requests;
  requests.reserve(kRequestsPerLevel);
  for (int i = 0; i < kRequestsPerLevel; ++i) {
    const int64_t q = traffic.SampleQueryIndex(rng);
    requests.push_back(&world.click_log.queries()[q].tokens);
  }

  // Calibrate capacity with a closed one-at-a-time loop over the same mix.
  constexpr int kCalibration = 200;
  Stopwatch calibration;
  for (int i = 0; i < kCalibration; ++i) {
    const auto response = service.Serve(*requests[i % requests.size()],
                                        Deadline::AfterMillis(50.0));
    benchmark::DoNotOptimize(&response);
  }
  const double capacity_qps =
      kCalibration / (calibration.ElapsedMillis() / 1000.0);
  std::printf("  calibrated capacity: %.0f requests/sec\n", capacity_qps);

  MetricsRegistry& registry = MetricsRegistry::Global();
  constexpr struct {
    const char* label;
    double multiplier;
  } kLevels[] = {{"1x", 1.0}, {"2x", 2.0}, {"4x", 4.0}};
  for (const auto& level : kLevels) {
    RewriteServer::Options options;
    options.num_threads = 2;
    options.queue_depth = 32;
    options.retry.max_retries = 1;
    RewriteServer server(&service, options);
    LatencyRecorder latency;

    const double offered_qps = capacity_qps * level.multiplier;
    Stopwatch clock;
    for (int i = 0; i < kRequestsPerLevel; ++i) {
      const double send_at_millis = 1000.0 * i / offered_qps;
      while (clock.ElapsedMillis() < send_at_millis) {
        std::this_thread::yield();
      }
      // (void): sheds are expected under overload; the callback filters.
      (void)server.Submit(*requests[i], Deadline::AfterMillis(50.0),
                          [&latency](RewriteServer::ServerResponse response) {
                            if (response.status.ok()) {
                              latency.Record(response.total_millis);
                            }
                          });
    }
    const double offered_window_millis = clock.ElapsedMillis();
    server.Drain();
    const double served_window_millis = clock.ElapsedMillis();

    const int64_t served = server.served_total();
    const int64_t shed = server.shed_total();
    const int64_t violations = server.deadline_violations_total();
    const double shed_ratio =
        static_cast<double>(shed) / kRequestsPerLevel;
    const double violation_ratio =
        served > 0 ? static_cast<double>(violations) / served : 0.0;
    const double offered_per_sec =
        kRequestsPerLevel / (offered_window_millis / 1000.0);
    const double served_per_sec =
        static_cast<double>(served) / (served_window_millis / 1000.0);
    const double p50 = latency.PercentileMillis(0.5);
    const double p99 = latency.PercentileMillis(0.99);

    const MetricLabels labels = {{"load", level.label}};
    registry.GetGauge("cyqr_bench_overload_offered_qps_value", labels)
        ->Set(offered_per_sec);
    registry.GetGauge("cyqr_bench_overload_served_qps_value", labels)
        ->Set(served_per_sec);
    registry.GetGauge("cyqr_bench_overload_shed_ratio", labels)
        ->Set(shed_ratio);
    registry.GetGauge("cyqr_bench_overload_p50_millis", labels)->Set(p50);
    registry.GetGauge("cyqr_bench_overload_p99_millis", labels)->Set(p99);
    registry.GetGauge("cyqr_bench_overload_deadline_violation_ratio", labels)
        ->Set(violation_ratio);
    std::printf(
        "  %s: offered %.0f/s served %.0f/s shed %.1f%% p50 %.2f ms "
        "p99 %.2f ms deadline-violations %.1f%%\n",
        level.label, offered_per_sec, served_per_sec, 100.0 * shed_ratio,
        p50, p99, 100.0 * violation_ratio);
  }

  if (scraper.joinable()) {
    // ordering: relaxed — plain stop flag; the join is the synchronization.
    stop_scraper.store(true, std::memory_order_relaxed);
    scraper.join();
    const int64_t ok = scrapes_ok.load();
    const int64_t failed = scrapes_failed.load();
    registry.GetGauge("cyqr_bench_introspect_scrapes_count")
        ->Set(static_cast<double>(ok));
    registry.GetGauge("cyqr_bench_introspect_scrape_failures_count")
        ->Set(static_cast<double>(failed));
    std::printf("  scrape under load: %lld ok, %lld failed\n",
                static_cast<long long>(ok), static_cast<long long>(failed));
    endpoint->Stop();
  }

  // Flight-recorder accounting for the whole overload run: the always-on
  // queue.* / serving.* events land here so BENCH_serving.json shows what
  // the recorder cost (drops mean the ring or thread table saturated).
  const FlightRecorder& flight = FlightRecorder::Global();
  registry.GetGauge("cyqr_bench_flight_events_recorded_count")
      ->Set(static_cast<double>(flight.events_recorded_total()));
  registry.GetGauge("cyqr_bench_flight_events_dropped_count")
      ->Set(static_cast<double>(flight.events_dropped_total()));
  registry.GetGauge("cyqr_bench_flight_threads_count")
      ->Set(static_cast<double>(flight.thread_count()));
  std::printf(
      "  flight recorder: %lld events recorded, %lld dropped, "
      "%d threads\n",
      static_cast<long long>(flight.events_recorded_total()),
      static_cast<long long>(flight.events_dropped_total()),
      static_cast<int>(flight.thread_count()));
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): strips --metrics-out=PATH,
// --overload and --introspect-port=N before handing argv to the benchmark
// library, then dumps the global metrics registry as the
// BENCH_serving.json artifact after the run.
int main(int argc, char** argv) {
  std::string metrics_out = "BENCH_serving.json";
  bool overload = false;
  int introspect_port = -1;  // Disabled unless --introspect-port is given.
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    constexpr char kFlag[] = "--metrics-out=";
    constexpr char kPortFlag[] = "--introspect-port=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      metrics_out = argv[i] + std::strlen(kFlag);
    } else if (std::strncmp(argv[i], kPortFlag, std::strlen(kPortFlag)) ==
               0) {
      char* end = nullptr;
      const long port = std::strtol(argv[i] + std::strlen(kPortFlag),
                                    &end, 10);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "error: bad %s value\n", argv[i]);
        return 1;
      }
      introspect_port = static_cast<int>(port);
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (overload) {
    RunOverloadBench(introspect_port);
  }
  if (!metrics_out.empty()) {
    const cyqr::Status s = cyqr::bench::DumpMetrics(metrics_out);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  }
  return 0;
}
