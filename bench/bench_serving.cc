// Section III-G serving bench: latency of the three rewrite paths —
// KV-store cache hit (paper: <5 ms at production scale), the fast direct
// query-to-query model (paper: ~30 ms on a 32-core CPU), and the full
// two-hop cyclic pipeline (paper: >100 ms even on GPU, too slow to serve).
// Shape to reproduce: cache << direct model << full pipeline.
//
// The fault-injection benches measure the degradation ladder under outage:
// a dead cache falls back to the model, and a dead model is absorbed by the
// circuit breaker (after the first few timeouts, requests short-circuit to
// the passthrough rung — the steady-state cost of an outage should be
// microseconds, not model-decode milliseconds).

// The instrumentation-overhead pair (BM_CacheHit vs BM_CacheHitInstrumented)
// measures the cost of the metrics registry on the serving hot path; the
// acceptance bar is <= 5% p50 overhead. Running this binary also writes the
// registry contents to BENCH_serving.json (override with --metrics-out=PATH,
// disable with --metrics-out=).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/deadline.h"
#include "core/string_util.h"
#include "datagen/traffic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/direct_model.h"
#include "serving/fault_injection.h"
#include "serving/rewrite_service.h"

namespace {

using namespace cyqr;

struct ServingFixture {
  bench::BenchWorld world = bench::BuildWorld();
  std::unique_ptr<CycleModel> joint;
  std::unique_ptr<CycleRewriter> pipeline;
  std::unique_ptr<DirectRewriter> direct;
  RewriteKvStore store;
  std::vector<std::vector<std::string>> head_queries;
  std::vector<std::vector<std::string>> tail_queries;

  ServingFixture() {
    const CycleConfig config =
        bench::BenchCycleConfig(world.vocab.size());
    joint = bench::GetTrainedCycleModel(world, config, /*joint=*/true,
                                        "joint_transformer");
    pipeline = std::make_unique<CycleRewriter>(joint.get(), &world.vocab);

    // Fast path: hybrid direct model on mined synonymous pairs.
    Seq2SeqConfig direct_config;
    direct_config.vocab_size = world.vocab.size();
    direct_config.d_model = 32;
    direct_config.num_heads = 2;
    direct_config.ff_hidden = 64;
    direct_config.num_layers = 1;
    Rng rng(42);
    direct = std::make_unique<DirectRewriter>(DirectArch::kHybrid,
                                              direct_config, &world.vocab,
                                              rng);
    const auto mined = MineSynonymousQueryPairs(world.click_log, 3);
    const auto pairs = EncodeQueryPairs(mined, world.vocab);
    SupervisedTrainOptions options;
    options.max_steps = 200;
    TrainSupervised(direct->model(), pairs, options);
    direct->model().SetTraining(false);

    // Precompute the traffic head into the KV store.
    TrafficSampler traffic(&world.click_log);
    for (int64_t q : traffic.HeadQueries(0.8)) {
      head_queries.push_back(world.click_log.queries()[q].tokens);
    }
    RewriteOptions rewrite_options;
    // Cap precompute volume so fixture setup stays fast.
    if (head_queries.size() > 100) head_queries.resize(100);
    RewriteService::PrecomputeHead(*pipeline, head_queries, rewrite_options,
                                   &store);
    for (const QuerySpec& q : world.click_log.queries()) {
      if (store.Get(JoinStrings(q.tokens)) == nullptr) {
        tail_queries.push_back(q.tokens);
      }
      if (tail_queries.size() >= 50) break;
    }
  }
};

ServingFixture& GetFixture() {
  // Intentionally leaked Meyers singleton: benchmark fixtures must outlive
  // static-destruction order at process exit.
  static ServingFixture* fixture =
      new ServingFixture();  // NOLINT(cyqr-raw-owning-new)
  return *fixture;
}

void BM_CacheHit(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  RewriteService service(&f.store, f.direct.get(), {});
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.head_queries[i++ % f.head_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_CacheHit)->Unit(benchmark::kMicrosecond);

// Identical to BM_CacheHit but with the metrics registry attached: the
// difference between the two is the per-request cost of instrumentation
// (budget: <= 5% p50).
void BM_CacheHitInstrumented(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  RewriteService service(&f.store, f.direct.get(), {}, nullptr,
                         &MetricsRegistry::Global());
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.head_queries[i++ % f.head_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_CacheHitInstrumented)->Unit(benchmark::kMicrosecond);

// Cache hit with metrics AND a per-request Trace: the fully-observable
// configuration a debugging session would run with.
void BM_CacheHitTraced(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  RewriteService service(&f.store, f.direct.get(), {}, nullptr,
                         &MetricsRegistry::Global());
  size_t i = 0;
  for (auto _ : state) {
    Trace trace;
    const auto response =
        service.Serve(f.head_queries[i++ % f.head_queries.size()],
                      Deadline::AfterMillis(50.0), &trace);
    benchmark::DoNotOptimize(&response);
    benchmark::DoNotOptimize(&trace);
  }
}
BENCHMARK(BM_CacheHitTraced)->Unit(benchmark::kMicrosecond);

void BM_DirectModelFallback(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  RewriteService service(&f.store, f.direct.get(), {});
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.tail_queries[i++ % f.tail_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_DirectModelFallback)->Unit(benchmark::kMillisecond);

// Cache outage (100% injected IoError): every request, including head
// queries, is absorbed by the direct-model rung.
void BM_CacheOutageFallsToModel(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  KvStoreBackend cache(&f.store);
  FaultSpec outage;
  outage.error_probability = 1.0;
  outage.error_code = StatusCode::kIoError;
  FaultyKvBackend faulty_cache(&cache, outage, /*seed=*/17);
  DirectModelBackend model(f.direct.get());
  RewriteService service(&faulty_cache, &model, nullptr, {});
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.head_queries[i++ % f.head_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_CacheOutageFallsToModel)->Unit(benchmark::kMillisecond);

// Model outage (100% injected errors) on tail queries: after the breaker
// opens, requests short-circuit to passthrough — steady-state cost of a
// wedged model should be near the cache-hit floor, not model latency.
void BM_ModelOutageSteadyState(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  KvStoreBackend cache(&f.store);
  DirectModelBackend model(f.direct.get());
  FaultSpec wedged;
  wedged.error_probability = 1.0;
  FaultyModelBackend faulty_model(&model, wedged, /*seed=*/18);
  RewriteService service(&cache, &faulty_model, nullptr, {});
  // Trip the breaker before timing starts.
  for (int i = 0; i < 8; ++i) {
    service.Serve(f.tail_queries[i % f.tail_queries.size()]);
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto response =
        service.Serve(f.tail_queries[i++ % f.tail_queries.size()]);
    benchmark::DoNotOptimize(&response);
  }
}
BENCHMARK(BM_ModelOutageSteadyState)->Unit(benchmark::kMicrosecond);

void BM_FullCyclicPipeline(benchmark::State& state) {
  ServingFixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    const auto result = f.pipeline->Rewrite(
        f.tail_queries[i++ % f.tail_queries.size()], {});
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_FullCyclicPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): strips --metrics-out=PATH before
// handing argv to the benchmark library, then dumps the global metrics
// registry as the BENCH_serving.json artifact after the run.
int main(int argc, char** argv) {
  std::string metrics_out = "BENCH_serving.json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    constexpr char kFlag[] = "--metrics-out=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      metrics_out = argv[i] + std::strlen(kFlag);
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    const cyqr::Status s = cyqr::bench::DumpMetrics(metrics_out);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  }
  return 0;
}
