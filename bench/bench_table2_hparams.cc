// Regenerates Table II: model hyperparameters. The architecture shape
// (4-layer query-to-title transformer, 1-layer title-to-query transformer,
// lambda 0.1, beam width 3, top-n 40, dropout 0.1) follows the paper; the
// widths are scaled to single-core CPU training.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();
  const CycleConfig config = PaperScaledConfig(world.vocab.size());
  std::printf("Table II — %s", ConfigTable(config).c_str());

  Rng rng(1);
  CycleModel model(config, rng);
  std::printf("\n  trainable parameters: forward %lld, backward %lld\n",
              static_cast<long long>(model.forward().NumParameters()),
              static_cast<long long>(model.backward().NumParameters()));
  std::printf("  (the forward model is the larger one: the paper notes the"
              "\n   query-to-title direction needs more memorization)\n");
  return 0;
}
