// Regenerates Table I: statistics of the (synthetic) click-log data set.
// Paper shape to reproduce: far more pairs than distinct queries, and item
// titles several times longer than queries (6.12 vs 49.96 words at JD).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();
  const DatasetStats stats = world.click_log.Stats(world.catalog);

  std::printf("Table I — statistics of the data set\n");
  std::printf("------------------------------------------------\n");
  std::printf("  # query-item pairs (>=2 clicks)   %lld\n",
              static_cast<long long>(stats.num_pairs));
  std::printf("  # search sessions                 %lld\n",
              static_cast<long long>(stats.num_sessions));
  std::printf("  # distinct queries                %lld\n",
              static_cast<long long>(stats.num_distinct_queries));
  std::printf("  # products (item titles)          %lld\n",
              static_cast<long long>(stats.num_products));
  std::printf("  vocabulary size                   %lld\n",
              static_cast<long long>(stats.vocab_size));
  std::printf("  average words per query           %.2f\n",
              stats.avg_query_words);
  std::printf("  average words per title           %.2f\n",
              stats.avg_title_words);
  std::printf("\npaper (JD production): query 6.12 words, title 49.96 words"
              " — the title/query length ratio (~8x) is the shape this"
              " generator reproduces (%.1fx here).\n",
              stats.avg_title_words / stats.avg_query_words);
  return 0;
}
