#ifndef CYCLEQR_BENCH_BENCH_UTIL_H_
#define CYCLEQR_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "datagen/click_log.h"
#include "datagen/query_pairs.h"
#include "datagen/synonyms.h"
#include "rewrite/inference.h"
#include "rewrite/trainer.h"

namespace cyqr::bench {

/// The shared synthetic world every bench harness runs on. Deterministic:
/// same seeds -> same catalog, click log, vocabulary and train/eval split.
struct BenchWorld {
  Catalog catalog;
  ClickLog click_log;
  Vocabulary vocab;
  std::vector<TokenPair> token_pairs;
  std::vector<SeqPair> train;
  std::vector<SeqPair> eval;
};

/// Builds the default bench world (~800 distinct queries, 40k sessions).
BenchWorld BuildWorld(int64_t num_queries = 800, int64_t num_sessions = 40000,
                      uint64_t seed = 11);

/// The bench-scale cycle configuration: the paper's 4/1-layer shape is kept
/// for the flagship convergence bench; other benches use 2 forward layers.
CycleConfig BenchCycleConfig(int64_t vocab_size,
                             ArchType arch = ArchType::kTransformer,
                             int64_t forward_layers = 2);

/// Default Algorithm 1 schedule used by the benches.
CycleTrainerOptions BenchTrainerOptions(bool joint);

/// Returns a trained cycle model, loading cached parameters from
/// cyqr_bench_cache/<cache_key>.params when present (training results are
/// deterministic, so the cache is exact). Delete the directory to retrain.
std::unique_ptr<CycleModel> GetTrainedCycleModel(
    const BenchWorld& world, const CycleConfig& config, bool joint,
    const std::string& cache_key);

/// Rewrites for one query through the full Figure 3 pipeline; convenience
/// wrapper returning token vectors.
std::vector<std::vector<std::string>> ModelRewrites(
    const CycleRewriter& rewriter, const std::vector<std::string>& query,
    int64_t k = 3);

/// Picks `n` distinct colloquial ("hard") queries from the world's log.
std::vector<QuerySpec> HardQueries(const BenchWorld& world, size_t n,
                                   uint64_t seed = 17);

/// Renders a row of fixed-width columns.
std::string Row(const std::vector<std::string>& cells, int width = 14);

/// Writes the global metrics registry as a JSON snapshot to `path` (the
/// `BENCH_*.json` artifact emitter; CI validates the file with
/// scripts/check_metrics_json.sh).
[[nodiscard]] Status DumpMetrics(const std::string& path);

}  // namespace cyqr::bench

#endif  // CYCLEQR_BENCH_BENCH_UTIL_H_
