// Regenerates Figure 9: pure RNN vs hybrid (transformer encoder + RNN
// decoder) on DIRECT query-to-query training (the serving simplification of
// Section III-G, trained on mined synonymous query pairs). Paper claim:
// "the hybrid RNN model shows significantly better results than the pure
// RNN model" — the transformer encoder is worth keeping.

#include <cstdio>

#include "bench/bench_util.h"
#include "rewrite/direct_model.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();

  // Section III-G training data: queries sharing >= 3 clicks on the same
  // items are synonymous pairs.
  const std::vector<QueryPair> mined =
      MineSynonymousQueryPairs(world.click_log, 3);
  const std::vector<SeqPair> all = EncodeQueryPairs(mined, world.vocab);
  std::vector<SeqPair> train;
  std::vector<SeqPair> eval;
  for (size_t i = 0; i < all.size(); ++i) {
    (i % 10 == 9 ? eval : train).push_back(all[i]);
  }
  std::printf("Figure 9 — pure RNN vs hybrid on direct query-to-query\n");
  std::printf("mined synonymous pairs: %zu (train %zu / eval %zu)\n\n",
              mined.size(), train.size(), eval.size());

  auto run = [&](DirectArch arch) {
    Seq2SeqConfig config;
    config.vocab_size = world.vocab.size();
    config.d_model = 32;
    config.num_heads = 2;
    config.ff_hidden = 64;
    config.num_layers = 1;
    Rng rng(99);
    DirectRewriter rewriter(arch, config, &world.vocab, rng);
    SupervisedTrainOptions options;
    options.max_steps = 400;
    options.batch_size = 8;
    options.eval_every = 40;
    std::vector<SupervisedEvalPoint> curve;
    TrainSupervised(rewriter.model(), train, options, &eval, &curve);
    return curve;
  };

  std::printf("training pure RNN direct model...\n");
  const auto pure = run(DirectArch::kPureRnn);
  std::printf("training hybrid (transformer encoder + RNN decoder)...\n");
  const auto hybrid = run(DirectArch::kHybrid);

  std::printf("\n%s\n",
              bench::Row({"step", "ppl(pure)", "ppl(hybrid)", "acc(pure)",
                          "acc(hybrid)", "logP(pure)", "logP(hybrid)"},
                         13)
                  .c_str());
  std::printf("%s\n", std::string(98, '-').c_str());
  char buf[16];
  for (size_t i = 0; i < pure.size() && i < hybrid.size(); ++i) {
    std::vector<std::string> cells;
    auto add = [&](double v) {
      std::snprintf(buf, sizeof(buf), "%.3f", v);
      cells.push_back(buf);
    };
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(pure[i].step));
    cells.push_back(buf);
    add(pure[i].metrics.perplexity);
    add(hybrid[i].metrics.perplexity);
    add(pure[i].metrics.token_accuracy);
    add(hybrid[i].metrics.token_accuracy);
    add(pure[i].metrics.mean_log_prob);
    add(hybrid[i].metrics.mean_log_prob);
    std::printf("%s\n", bench::Row(cells, 13).c_str());
  }
  std::printf("\nexpected shape: hybrid converges to lower perplexity and "
              "higher accuracy than pure RNN.\n");
  return 0;
}
