// Data-parallel training scaling bench: runs the same training schedule
// under --workers=1,2,4 (comma list, overridable), reports steps/sec,
// collective wait, and the speedup over the 1-worker baseline, and checks
// that every worker count lands on bit-identical parameters — the
// determinism contract the trainer's collective is built around.
//
// After the run the global metrics registry is dumped to
// BENCH_training.json (override with --metrics-out=PATH, disable with
// --metrics-out=); CI validates the file with
// scripts/check_metrics_json.sh.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "obs/metrics.h"
#include "rewrite/cycle_model.h"
#include "rewrite/trainer.h"

namespace cyqr::bench {
namespace {

struct ScalingPoint {
  int64_t workers = 0;
  double seconds = 0.0;
  double steps_per_sec = 0.0;
  double tokens_per_sec = 0.0;
  double collective_wait_millis = 0.0;
  std::vector<float> params;
};

CycleTrainerOptions ScalingOptions(int64_t workers) {
  CycleTrainerOptions options = BenchTrainerOptions(/*joint=*/true);
  options.max_steps = 48;
  options.warmup_steps = 32;
  options.batch_size = 8;
  options.grad_shards = 8;
  options.workers = workers;
  options.seed = 99;
  return options;
}

ScalingPoint RunOne(const BenchWorld& world, int64_t workers) {
  const CycleTrainerOptions options = ScalingOptions(workers);
  const CycleConfig config =
      BenchCycleConfig(world.vocab.size(), ArchType::kTransformer,
                       /*forward_layers=*/1);
  Rng rng(1234);
  CycleModel model(config, rng);
  CycleTrainer trainer(&model, world.train, options);
  Stopwatch watch;
  const Status trained = trainer.Train({});
  ScalingPoint point;
  point.workers = workers;
  point.seconds = watch.ElapsedSeconds();
  if (!trained.ok()) {
    std::fprintf(stderr, "error: workers=%lld: %s\n",
                 static_cast<long long>(workers),
                 trained.ToString().c_str());
    return point;
  }
  point.steps_per_sec =
      static_cast<double>(options.max_steps) / point.seconds;
  // Uniform batch sampling makes the expected token throughput the mean
  // pair length times the batch schedule.
  int64_t corpus_tokens = 0;
  for (const SeqPair& p : world.train) {
    corpus_tokens += static_cast<int64_t>(p.src.size() + p.tgt.size());
  }
  const double tokens_per_step =
      static_cast<double>(corpus_tokens) /
      static_cast<double>(world.train.size()) *
      static_cast<double>(options.batch_size);
  point.tokens_per_sec = tokens_per_step * point.steps_per_sec;
  point.collective_wait_millis = trainer.collective_wait_millis();
  for (const Tensor& p : model.Parameters()) {
    point.params.insert(point.params.end(), p.data(),
                        p.data() + p.NumElements());
  }
  return point;
}

int RunScalingBench(const std::vector<int64_t>& worker_counts,
                    const std::string& metrics_out) {
  BenchWorld world = BuildWorld(/*num_queries=*/200, /*num_sessions=*/4000);
  std::printf("train scaling: %zu pairs, vocabulary %lld tokens\n",
              world.train.size(),
              static_cast<long long>(world.vocab.size()));

  MetricsRegistry& registry = MetricsRegistry::Global();
  std::vector<ScalingPoint> points;
  for (const int64_t workers : worker_counts) {
    points.push_back(RunOne(world, workers));
    const ScalingPoint& p = points.back();
    if (p.params.empty()) return 1;
    const std::string prefix =
        "cyqr_train_workers" + std::to_string(workers);
    registry.GetGauge(prefix + "_steps_per_sec")->Set(p.steps_per_sec);
    registry.GetGauge(prefix + "_tokens_per_sec")->Set(p.tokens_per_sec);
    registry.GetGauge(prefix + "_collective_wait_millis")
        ->Set(p.collective_wait_millis);
    const double speedup =
        points.front().steps_per_sec > 0.0
            ? p.steps_per_sec / points.front().steps_per_sec
            : 0.0;
    registry.GetGauge(prefix + "_speedup_ratio")->Set(speedup);
    std::printf(
        "  workers=%lld: %.2f steps/s, %.0f tokens/s (%.2fs total, "
        "collective wait %.1f ms, speedup %.2fx)\n",
        static_cast<long long>(workers), p.steps_per_sec,
        p.tokens_per_sec, p.seconds, p.collective_wait_millis, speedup);
  }

  // The scaling curve is only honest if every point trained the same
  // model: worker count must never change the bits.
  bool deterministic = true;
  for (const ScalingPoint& p : points) {
    if (p.params != points.front().params) {
      std::fprintf(stderr,
                   "error: workers=%lld diverged from workers=%lld\n",
                   static_cast<long long>(p.workers),
                   static_cast<long long>(points.front().workers));
      deterministic = false;
    }
  }
  registry.GetGauge("cyqr_train_scaling_deterministic_state")
      ->Set(deterministic ? 1.0 : 0.0);
  if (!deterministic) return 1;
  std::printf("  all worker counts bit-identical\n");

  if (!metrics_out.empty()) {
    const Status s = DumpMetrics(metrics_out);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace cyqr::bench

// Custom main (no google-benchmark registration): the interesting numbers
// are whole-run throughputs, not per-iteration timings.
int main(int argc, char** argv) {
  std::string metrics_out = "BENCH_training.json";
  std::vector<int64_t> worker_counts = {1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    constexpr char kMetricsFlag[] = "--metrics-out=";
    constexpr char kWorkersFlag[] = "--workers=";
    if (std::strncmp(argv[i], kMetricsFlag, std::strlen(kMetricsFlag)) ==
        0) {
      metrics_out = argv[i] + std::strlen(kMetricsFlag);
    } else if (std::strncmp(argv[i], kWorkersFlag,
                            std::strlen(kWorkersFlag)) == 0) {
      worker_counts.clear();
      std::string list = argv[i] + std::strlen(kWorkersFlag);
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const std::string item =
            list.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!item.empty()) worker_counts.push_back(std::stoll(item));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (worker_counts.empty()) {
    std::fprintf(stderr, "--workers= needs at least one worker count\n");
    return 2;
  }
  return cyqr::bench::RunScalingBench(worker_counts, metrics_out);
}
