// Regenerates Table VI: side-by-side relevancy evaluation of rewrite sets,
// judged by the oracle relevance judge (the stand-in for the paper's human
// labelers). Protocol follows the paper: queries that have rule-based
// synonyms, three rewrites per system, win/tie/lose percentages.
//
// Paper: Joint vs Separate  = 29% win / 49% tie / 22% lose
//        Joint vs Rule-based = 11% win / 60% tie / 29% lose
// Shape to reproduce: joint beats separate; the rule-based system is more
// reliable overall (joint loses more than it wins against it) but the joint
// model wins the polysemous cases ("cherry").

#include <cstdio>

#include "baseline/rule_based.h"
#include "bench/bench_util.h"
#include "eval/judge.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();
  const CycleConfig config = bench::BenchCycleConfig(world.vocab.size());
  const auto separate = bench::GetTrainedCycleModel(
      world, config, /*joint=*/false, "separate_transformer");
  const auto joint = bench::GetTrainedCycleModel(world, config,
                                                 /*joint=*/true,
                                                 "joint_transformer");
  CycleRewriter separate_rewriter(separate.get(), &world.vocab);
  CycleRewriter joint_rewriter(joint.get(), &world.vocab);

  Rng dict_rng(5);
  const SynonymDictionary dict =
      BuildRuleDictionary(world.catalog, /*coverage=*/0.7, dict_rng);
  RuleBasedRewriter rule(&dict);
  const RelevanceJudge judge(&world.catalog);

  // Evaluation set: queries that have rule-based synonyms (paper protocol).
  std::vector<QuerySpec> eval_set;
  for (const QuerySpec& q : world.click_log.queries()) {
    if (rule.HasSynonym(q.tokens)) eval_set.push_back(q);
    if (eval_set.size() >= 200) break;
  }
  std::printf("Table VI — relevancy, %zu queries with rule synonyms\n\n",
              eval_set.size());

  struct Tally {
    int win = 0;
    int tie = 0;
    int lose = 0;
    void Add(RelevanceJudge::Verdict v) {
      if (v == RelevanceJudge::Verdict::kWin) {
        ++win;
      } else if (v == RelevanceJudge::Verdict::kTie) {
        ++tie;
      } else {
        ++lose;
      }
    }
    void Print(const char* label, size_t n) const {
      std::printf("  %-22s lose %4.0f%%   tie %4.0f%%   win %4.0f%%\n",
                  label, 100.0 * lose / n, 100.0 * tie / n,
                  100.0 * win / n);
    }
  };

  Tally joint_vs_separate;
  Tally joint_vs_rule;
  for (const QuerySpec& q : eval_set) {
    const auto joint_rewrites = bench::ModelRewrites(joint_rewriter,
                                                     q.tokens);
    const auto separate_rewrites =
        bench::ModelRewrites(separate_rewriter, q.tokens);
    const auto rule_rewrites = rule.Rewrite(q.tokens, 3);
    joint_vs_separate.Add(
        judge.Compare(q.intent, joint_rewrites, separate_rewrites,
                      /*margin=*/0.15));
    joint_vs_rule.Add(judge.Compare(q.intent, joint_rewrites,
                                    rule_rewrites, /*margin=*/0.15));
  }
  joint_vs_separate.Print("joint vs separate", eval_set.size());
  joint_vs_rule.Print("joint vs rule-based", eval_set.size());
  std::printf("\npaper: joint vs separate 22/49/29, joint vs rule-based "
              "29/60/11 (lose/tie/win).\n");

  // The polysemy cases the paper highlights: rule-based rewrites of
  // brand-"cherry" queries break retrieval; the joint model keeps context.
  std::printf("\npolysemy spot-check (cherry keyboards):\n");
  int cherry_cases = 0;
  int joint_wins = 0;
  for (const QuerySpec& q : world.click_log.queries()) {
    if (q.intent.brand != "cherry") continue;
    const auto joint_rewrites = bench::ModelRewrites(joint_rewriter,
                                                     q.tokens);
    const auto rule_rewrites = rule.Rewrite(q.tokens, 3);
    const auto verdict =
        judge.Compare(q.intent, joint_rewrites, rule_rewrites);
    ++cherry_cases;
    if (verdict == RelevanceJudge::Verdict::kWin) ++joint_wins;
  }
  std::printf("  joint wins %d of %d brand-'cherry' queries vs rules\n",
              joint_wins, cherry_cases);
  return 0;
}
