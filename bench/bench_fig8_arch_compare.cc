// Regenerates Figure 8: transformer-based vs attention(RNN)-based NMT for
// the cyclic rewriting task, on the same three metrics as Figure 7. Paper
// claim: "the transformer-based model provides significantly better results
// than the attention-based model on all three metrics".

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();

  auto run = [&](ArchType arch) {
    // Both architectures get the same depth/width budget and schedule.
    CycleConfig config =
        bench::BenchCycleConfig(world.vocab.size(), arch, /*layers=*/1);
    config.backward.num_layers = 1;
    Rng rng(1234);
    CycleModel model(config, rng);
    CycleTrainerOptions options = bench::BenchTrainerOptions(true);
    options.max_steps = 440;
    options.warmup_steps = 360;
    options.eval_every = 40;
    CycleTrainer trainer(&model, world.train, options);
    const std::vector<SeqPair> eval_subset(
        world.eval.begin(),
        world.eval.begin() + std::min<size_t>(64, world.eval.size()));
    const Status trained = trainer.Train(eval_subset);
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.ToString().c_str());
      std::exit(1);
    }
    return trainer.curve();
  };

  std::printf("Figure 8 — transformer vs attention-based NMT\n\n");
  std::printf("training transformer cycle model...\n");
  const auto transformer = run(ArchType::kTransformer);
  std::printf("training attention-RNN cycle model...\n");
  const auto attention = run(ArchType::kAttentionRnn);

  std::printf("\n%s\n",
              bench::Row({"step", "q2t-ppl(T)", "q2t-ppl(A)", "logP(T)",
                          "logP(A)", "tb-acc(T)", "tb-acc(A)"},
                         12)
                  .c_str());
  std::printf("%s\n", std::string(92, '-').c_str());
  char buf[16];
  for (size_t i = 0; i < transformer.size() && i < attention.size(); ++i) {
    std::vector<std::string> cells;
    auto add = [&](double v) {
      std::snprintf(buf, sizeof(buf), "%.3f", v);
      cells.push_back(buf);
    };
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(transformer[i].step));
    cells.push_back(buf);
    add(transformer[i].q2t_perplexity);
    add(attention[i].q2t_perplexity);
    add(transformer[i].translate_back_log_prob);
    add(attention[i].translate_back_log_prob);
    add(transformer[i].translate_back_accuracy);
    add(attention[i].translate_back_accuracy);
    std::printf("%s\n", bench::Row(cells, 12).c_str());
  }
  std::printf("\nexpected shape: transformer (T) columns dominate the "
              "attention-RNN (A) columns at convergence.\n");
  return 0;
}
