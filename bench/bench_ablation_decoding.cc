// Ablation: sequence decoding strategies (Section III-F + the diverse beam
// search future-work direction [32]). For k = 3 sequences per query,
// measures the diversity (distinct 1/2-grams across outputs), mean model
// log probability, and decode latency of greedy / beam / top-n sampling /
// diverse beam on the trained forward model.
//
// Paper motivation to reproduce: beam search "outputs very similar
// sequences that lack diversity"; the top-n sampling decoder trades a
// little likelihood for much more diversity.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/stopwatch.h"
#include "decode/beam.h"
#include "decode/diverse_beam.h"
#include "decode/greedy.h"
#include "decode/topn_sampling.h"
#include "text/ngram.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();
  const CycleConfig config = bench::BenchCycleConfig(world.vocab.size());
  const auto model = bench::GetTrainedCycleModel(world, config,
                                                 /*joint=*/true,
                                                 "joint_transformer");
  const Seq2SeqModel& forward = model->forward();

  const std::vector<QuerySpec> queries = bench::HardQueries(world, 30);
  DecodeOptions options;
  options.beam_size = 3;
  options.max_len = config.max_title_len;

  struct Summary {
    double distinct_ngrams = 0.0;
    double mean_log_prob = 0.0;
    double millis = 0.0;
    int64_t sequences = 0;
  };
  auto evaluate = [&](auto decode_fn) {
    Summary summary;
    Stopwatch watch;
    for (const QuerySpec& q : queries) {
      const std::vector<DecodedSequence> outs =
          decode_fn(world.vocab.Encode(q.tokens));
      std::vector<std::vector<std::string>> decoded;
      for (const DecodedSequence& s : outs) {
        decoded.push_back(world.vocab.Decode(s.ids));
        summary.mean_log_prob += s.log_prob;
        ++summary.sequences;
      }
      summary.distinct_ngrams +=
          static_cast<double>(DistinctNGrams(decoded, 2));
    }
    summary.millis = watch.ElapsedMillis() / queries.size();
    summary.distinct_ngrams /= queries.size();
    if (summary.sequences > 0) summary.mean_log_prob /= summary.sequences;
    return summary;
  };

  const Summary greedy = evaluate([&](const std::vector<int32_t>& src) {
    return std::vector<DecodedSequence>{GreedyDecode(forward, src, options)};
  });
  const Summary beam = evaluate([&](const std::vector<int32_t>& src) {
    return BeamSearchDecode(forward, src, options);
  });
  const Summary topn = evaluate([&](const std::vector<int32_t>& src) {
    return TopNSamplingDecode(forward, src, options);
  });
  const Summary diverse = evaluate([&](const std::vector<int32_t>& src) {
    return DiverseBeamSearchDecode(forward, src, options);
  });

  std::printf("\nAblation — decoding strategies (k=3, %zu hard queries)\n",
              queries.size());
  std::printf("%s\n",
              bench::Row({"decoder", "distinct-2grams", "mean-logP",
                          "ms/query", "#seq/query"},
                         16)
                  .c_str());
  std::printf("%s\n", std::string(85, '-').c_str());
  auto print = [&](const char* label, const Summary& s) {
    char buf[32];
    std::vector<std::string> cells = {label};
    std::snprintf(buf, sizeof(buf), "%.1f", s.distinct_ngrams);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", s.mean_log_prob);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", s.millis);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f",
                  static_cast<double>(s.sequences) / queries.size());
    cells.push_back(buf);
    std::printf("%s\n", bench::Row(cells, 16).c_str());
  };
  print("greedy", greedy);
  print("beam", beam);
  print("top-n sampling", topn);
  print("diverse beam", diverse);
  std::printf("\nexpected shape: beam has the best log-prob but low "
              "diversity; top-n sampling and diverse beam trade log-prob "
              "for diversity.\n");
  return 0;
}
