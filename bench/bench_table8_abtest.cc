// Regenerates Table VIII: the simulated online A/B experiment. Control is
// the production stack (inverted-index retrieval with the rule-based
// rewriter); treatment additionally retrieves through at most 3 rewrites
// from the jointly trained cycle model, each capped at 1,000 candidates,
// with ranking shared between arms (the paper's configuration).
//
// Paper: UCVR +0.5219%, GMV +1.1054%, QRR -0.0397%.
// Shape to reproduce: UCVR and GMV rise, QRR (manual re-query rate) falls.
// The synthetic world has a much larger fraction of hard queries than JD
// production, so the lifts are larger in magnitude.

#include <cstdio>
#include <map>

#include "baseline/rule_based.h"
#include "bench/bench_util.h"
#include "core/string_util.h"
#include "eval/ab_sim.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();
  const CycleConfig config = bench::BenchCycleConfig(world.vocab.size());
  const auto joint = bench::GetTrainedCycleModel(world, config,
                                                 /*joint=*/true,
                                                 "joint_transformer");
  CycleRewriter rewriter(joint.get(), &world.vocab);

  Rng dict_rng(5);
  const SynonymDictionary dict =
      BuildRuleDictionary(world.catalog, 0.7, dict_rng);
  RuleBasedRewriter rule(&dict);

  InvertedIndex index;
  for (const Product& p : world.catalog.products()) {
    index.AddDocument(p.id, p.title_tokens);
  }

  // Precompute model rewrites per distinct query (the paper's offline
  // KV-store batch job); sessions then look them up.
  std::printf("precomputing model rewrites for %zu distinct queries...\n",
              world.click_log.queries().size());
  std::map<std::string, std::vector<std::vector<std::string>>> model_cache;
  for (const QuerySpec& q : world.click_log.queries()) {
    model_cache[JoinStrings(q.tokens)] =
        bench::ModelRewrites(rewriter, q.tokens, 3);
  }

  auto control_fn = [&rule](const QuerySpec& q) {
    return rule.Rewrite(q.tokens, 3);
  };
  auto treatment_fn = [&rule, &model_cache](const QuerySpec& q) {
    // Control's rule rewrites PLUS the model's (at most 3 total extras
    // beyond the rules, as in the paper's "in addition to the baseline").
    std::vector<std::vector<std::string>> out = rule.Rewrite(q.tokens, 3);
    auto it = model_cache.find(JoinStrings(q.tokens));
    if (it != model_cache.end()) {
      for (const auto& r : it->second) out.push_back(r);
    }
    return out;
  };

  AbSimulator simulator(&world.catalog, &world.click_log, &index);
  AbConfig ab_config;
  ab_config.num_sessions = 20000;
  std::printf("running %lld paired sessions...\n\n",
              static_cast<long long>(ab_config.num_sessions));
  const AbResult result = simulator.Run(control_fn, treatment_fn, ab_config);

  std::printf("Table VIII — simulated 10-day online A/B test\n");
  std::printf("  %-12s %12s %12s %12s\n", "", "UCVR", "GMV", "QRR");
  std::printf("  %-12s %12.4f %12.0f %12.4f\n", "control",
              result.control.ucvr, result.control.gmv, result.control.qrr);
  std::printf("  %-12s %12.4f %12.0f %12.4f\n", "treatment",
              result.treatment.ucvr, result.treatment.gmv,
              result.treatment.qrr);
  std::printf("  %-12s %+11.2f%% %+11.2f%% %+11.2f%%\n", "lift",
              100.0 * result.ucvr_lift, 100.0 * result.gmv_lift,
              100.0 * result.qrr_delta);
  std::printf("\npaper: UCVR +0.5219%%, GMV +1.1054%%, QRR -0.0397%% — "
              "expected shape: UCVR/GMV up, QRR down.\n");
  return 0;
}
