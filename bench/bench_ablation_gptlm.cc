// Section V exploration: the GPT-style decoder-only alternative. A causal
// LM is fine-tuned on "query <sep1> title <sep2> query2" sequences (query2
// is a mined synonymous query); rewriting samples a title continuation and
// then a query continuation. The paper reports this approach "has not been
// found to perform better than our jointly trained machine translation
// models yet" — this bench compares oracle-judge scores of both.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/string_util.h"
#include "eval/judge.h"
#include "lm/gpt_lm.h"

int main() {
  using namespace cyqr;
  bench::BenchWorld world = bench::BuildWorld();

  // Extend the vocabulary with the two separator tokens by injecting them
  // into the corpus before building.
  std::vector<std::vector<std::string>> corpus;
  for (const TokenPair& p : world.token_pairs) {
    corpus.push_back(p.query);
    corpus.push_back(p.title);
  }
  corpus.push_back({"sep1", "sep2"});
  const Vocabulary vocab = Vocabulary::Build(corpus);
  const int32_t sep1 = vocab.Id("sep1");
  const int32_t sep2 = vocab.Id("sep2");

  // Training sequences: query sep1 title sep2 rewrite, where the rewrite
  // is a mined synonymous query of the original.
  const auto mined = MineSynonymousQueryPairs(world.click_log, 3);
  std::map<std::string, std::vector<std::string>> synonym_of;
  for (const QueryPair& p : mined) {
    synonym_of.emplace(JoinStrings(p.a), p.b);
    synonym_of.emplace(JoinStrings(p.b), p.a);
  }
  std::vector<std::vector<int32_t>> sequences;
  for (const TokenPair& p : world.token_pairs) {
    auto it = synonym_of.find(JoinStrings(p.query));
    if (it == synonym_of.end()) continue;
    std::vector<int32_t> seq = vocab.Encode(p.query);
    seq.push_back(sep1);
    for (int32_t id : vocab.Encode(p.title)) seq.push_back(id);
    seq.push_back(sep2);
    for (int32_t id : vocab.Encode(it->second)) seq.push_back(id);
    if (seq.size() > 30) seq.resize(30);
    sequences.push_back(std::move(seq));
  }
  std::printf("GPT-LM training sequences: %zu\n", sequences.size());
  if (sequences.empty()) return 1;

  Seq2SeqConfig lm_config;
  lm_config.vocab_size = vocab.size();
  lm_config.d_model = 32;
  lm_config.num_heads = 2;
  lm_config.ff_hidden = 64;
  lm_config.num_layers = 2;
  Rng rng(21);
  GptLm lm(lm_config, rng);
  LmTrainingOptions lm_options;
  lm_options.max_steps = 400;
  std::printf("fine-tuning decoder-only LM (%lld params)...\n",
              static_cast<long long>(lm.NumParameters()));
  const double lm_loss = TrainLm(lm, sequences, lm_options);
  std::printf("final LM loss: %.3f\n", lm_loss);
  lm.SetTraining(false);

  // Baseline: the jointly trained cycle model (cached).
  const CycleConfig cycle_config =
      bench::BenchCycleConfig(world.vocab.size());
  const auto joint = bench::GetTrainedCycleModel(world, cycle_config,
                                                 /*joint=*/true,
                                                 "joint_transformer");
  CycleRewriter rewriter(joint.get(), &world.vocab);
  const RelevanceJudge judge(&world.catalog);

  const std::vector<QuerySpec> queries = bench::HardQueries(world, 40);
  double lm_score = 0.0;
  double cycle_score = 0.0;
  Rng sample_rng(31);
  for (const QuerySpec& q : queries) {
    // LM rewrite: prefix "BOS query sep1", sample title to sep2, then
    // sample the rewrite to EOS.
    std::vector<int32_t> prefix = {kBosId};
    for (int32_t id : vocab.Encode(q.tokens)) prefix.push_back(id);
    prefix.push_back(sep1);
    const auto title = lm.Generate(prefix, sep2, 24, 5, sample_rng);
    prefix.insert(prefix.end(), title.begin(), title.end());
    prefix.push_back(sep2);
    const auto rewrite_ids = lm.Generate(prefix, kEosId, 8, 5, sample_rng);
    lm_score += judge.Score(q.intent, vocab.Decode(rewrite_ids));

    const auto cycle_rewrites = bench::ModelRewrites(rewriter, q.tokens, 3);
    cycle_score += judge.ScoreSet(q.intent, cycle_rewrites);
  }
  std::printf("\nAblation — GPT-style LM vs jointly trained cycle model\n");
  std::printf("  mean judge score (LM rewrite):        %.3f\n",
              lm_score / queries.size());
  std::printf("  mean judge score (joint cycle model): %.3f\n",
              cycle_score / queries.size());
  std::printf("\npaper: the GPT-2 exploration did not beat the jointly "
              "trained translation models; the same ordering is expected "
              "here.\n");
  return 0;
}
