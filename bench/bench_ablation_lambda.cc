// Ablation: the cycle-consistency weight lambda. From a shared warmup
// checkpoint, continue training with lambda in {0, 0.01, 0.1, 0.5, 1.0}
// and measure the translate-back metrics. The paper fixes lambda = 0.1;
// this sweep shows the tradeoff the choice balances: lambda 0 is the
// separate baseline, large lambda trades forward/backward fit for cycle
// fit.

#include <cstdio>
#include <sstream>

#include "bench/bench_util.h"
#include "nn/serialize.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();
  CycleConfig config = bench::BenchCycleConfig(world.vocab.size());

  // Shared warmup.
  std::printf("warmup (shared checkpoint, 320 steps)...\n");
  Rng rng(1234);
  CycleModel warm(config, rng);
  CycleTrainerOptions warmup_options = bench::BenchTrainerOptions(false);
  warmup_options.max_steps = 320;
  warmup_options.warmup_steps = 320;
  CycleTrainer warmup_trainer(&warm, world.train, warmup_options);
  if (!warmup_trainer.Train({}).ok()) return 1;
  std::stringstream checkpoint;
  if (!SaveParameters(warm.Parameters(), checkpoint).ok()) return 1;

  std::printf("\nAblation — lambda sweep (120 joint steps each)\n");
  std::printf("%s\n", bench::Row({"lambda", "logP(x|x)", "tb-accuracy",
                                  "q2t-ppl", "t2q-ppl"}, 13)
                          .c_str());
  std::printf("%s\n", std::string(70, '-').c_str());
  for (float lambda : {0.0f, 0.01f, 0.1f, 0.5f, 1.0f}) {
    config.lambda = lambda;
    Rng fork_rng(7);
    CycleModel model(config, fork_rng);
    std::stringstream stream(checkpoint.str());
    if (!LoadParameters(model.Parameters(), stream).ok()) return 1;

    CycleTrainerOptions options = bench::BenchTrainerOptions(true);
    options.max_steps = 120;
    options.warmup_steps = 0;  // Cyclic term from the first step.
    options.seed = 999;        // Same batches for every lambda.
    options.joint = lambda > 0.0f;
    CycleTrainer trainer(&model, world.train, options);
    if (!trainer.Train({}).ok()) return 1;
    model.SetTraining(false);
    const TrainMetricsPoint point = trainer.Evaluate(world.eval);

    char buf[16];
    std::vector<std::string> cells;
    std::snprintf(buf, sizeof(buf), "%.2f", lambda);
    cells.push_back(buf);
    auto add = [&](double v) {
      std::snprintf(buf, sizeof(buf), "%.3f", v);
      cells.push_back(buf);
    };
    add(point.translate_back_log_prob);
    add(point.translate_back_accuracy);
    add(point.q2t_perplexity);
    add(point.t2q_perplexity);
    std::printf("%s\n", bench::Row(cells, 13).c_str());
  }
  std::printf("\nexpected shape: translate-back log-prob improves once "
              "lambda > 0; very large lambda starts degrading the "
              "supervised perplexities.\n");
  return 0;
}
