// Section III-H system-optimization bench: retrieval cost of one merged
// syntax tree vs separate per-query trees, over the catalog's inverted
// index. Paper claim: the merged tree is "slightly larger than the previous
// tree for only the original query" and "significantly reduces the
// retrieval system computation cost".

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/rng.h"
#include "index/retrieval.h"

namespace {

using namespace cyqr;

struct Fixture {
  InvertedIndex index;
  // Rewrite sets of increasing size: original + N-1 rewrites that differ
  // in one position (the typical output of the rewriter).
  std::vector<std::vector<std::vector<std::string>>> query_sets;

  Fixture() {
    // A production-shaped corpus: the shared query tokens ("pearfone",
    // "smartphone") have LONG posting lists — that is precisely the cost
    // the merged tree avoids re-scanning per rewrite.
    Rng rng(5);
    const std::vector<std::string> variants = {"senior", "student",
                                               "gaming", "budget"};
    const std::vector<std::string> filler = {"official", "warranty",
                                             "unlocked", "dual", "netcom"};
    for (DocId d = 0; d < 20000; ++d) {
      std::vector<std::string> doc = {"pearfone", "smartphone"};
      doc.push_back(variants[rng.NextBelow(variants.size())]);
      doc.push_back(filler[rng.NextBelow(filler.size())]);
      index.AddDocument(d, doc);
    }
    for (size_t n = 1; n <= 4; ++n) {
      std::vector<std::vector<std::string>> set;
      for (size_t i = 0; i < n; ++i) {
        set.push_back({"pearfone", variants[i], "smartphone"});
      }
      query_sets.push_back(std::move(set));
    }
  }
};

Fixture& GetFixture() {
  // Intentionally leaked Meyers singleton: benchmark fixtures must outlive
  // static-destruction order at process exit.
  static Fixture* fixture = new Fixture();  // NOLINT(cyqr-raw-owning-new)
  return *fixture;
}

void BM_RetrieveSeparate(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto& queries = f.query_sets[state.range(0) - 1];
  RetrievalEngine engine(&f.index);
  int64_t postings = 0;
  int64_t nodes = 0;
  for (auto _ : state) {
    const auto result = engine.RetrieveSeparate(queries);
    benchmark::DoNotOptimize(result.docs.data());
    postings = result.cost.postings_scanned;
    nodes = result.tree_nodes;
  }
  state.counters["postings_scanned"] = static_cast<double>(postings);
  state.counters["tree_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_RetrieveSeparate)->DenseRange(1, 4)->Unit(benchmark::kMicrosecond);

void BM_RetrieveMerged(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto& queries = f.query_sets[state.range(0) - 1];
  RetrievalEngine engine(&f.index);
  int64_t postings = 0;
  int64_t nodes = 0;
  for (auto _ : state) {
    const auto result = engine.RetrieveMerged(queries);
    benchmark::DoNotOptimize(result.docs.data());
    postings = result.cost.postings_scanned;
    nodes = result.tree_nodes;
  }
  state.counters["postings_scanned"] = static_cast<double>(postings);
  state.counters["tree_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_RetrieveMerged)->DenseRange(1, 4)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
