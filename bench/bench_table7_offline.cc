// Regenerates Table VII: lexical and semantic similarity of rewrites from
// the rule-based baseline vs the separately / jointly trained cycle models.
//
// Paper:               F1     EditDist   Cosine
//   rule-based        0.676     1.767     0.711
//   separate          0.193     5.340     0.660
//   joint             0.254     4.821     0.668
//
// Shape to reproduce: the rule-based method has far higher lexical
// similarity (high F1, low edit distance) because it swaps a single phrase;
// both NMT models generate much more diverse rewrites while keeping cosine
// similarity (semantic relevance) close to the rule-based level.

#include <cstdio>

#include "baseline/rule_based.h"
#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "eval/two_tower.h"

namespace {

using namespace cyqr;

OfflineMetrics Aggregate(
    const std::vector<std::vector<std::string>>& originals,
    const std::vector<std::vector<std::vector<std::string>>>& rewrites,
    const TwoTowerModel& embedder, const Vocabulary& vocab) {
  OfflineMetrics m;
  for (size_t i = 0; i < originals.size(); ++i) {
    const auto original_embedding =
        embedder.EmbedQuery(vocab.Encode(originals[i]));
    for (const auto& rewrite : rewrites[i]) {
      m.f1 += NGramF1(rewrite, originals[i]);
      m.edit_distance +=
          static_cast<double>(TokenEditDistance(rewrite, originals[i]));
      m.cosine_similarity += CosineSimilarity(
          original_embedding, embedder.EmbedQuery(vocab.Encode(rewrite)));
      ++m.num_rewrites;
    }
  }
  if (m.num_rewrites > 0) {
    m.f1 /= m.num_rewrites;
    m.edit_distance /= m.num_rewrites;
    m.cosine_similarity /= m.num_rewrites;
  }
  return m;
}

}  // namespace

int main() {
  const bench::BenchWorld world = bench::BuildWorld();
  const CycleConfig config = bench::BenchCycleConfig(world.vocab.size());
  const auto separate = bench::GetTrainedCycleModel(
      world, config, /*joint=*/false, "separate_transformer");
  const auto joint = bench::GetTrainedCycleModel(world, config,
                                                 /*joint=*/true,
                                                 "joint_transformer");
  CycleRewriter separate_rewriter(separate.get(), &world.vocab);
  CycleRewriter joint_rewriter(joint.get(), &world.vocab);

  Rng dict_rng(5);
  const SynonymDictionary dict =
      BuildRuleDictionary(world.catalog, 0.7, dict_rng);
  RuleBasedRewriter rule(&dict);

  // The DPSR stand-in for cosine similarity: a two-tower embedding model
  // trained on the same click pairs.
  std::printf("training two-tower embedding model (cosine metric)...\n");
  Rng tower_rng(8);
  TwoTowerModel embedder(world.vocab.size(), 32, tower_rng);
  TwoTowerModel::TrainOptions tower_options;
  tower_options.steps = 400;
  const double tower_loss = embedder.Train(world.train, tower_options);
  std::printf("two-tower final loss: %.4f\n", tower_loss);

  // Evaluation queries: those with rule synonyms (so all systems produce
  // rewrites), as in the paper's 1,000-query protocol.
  std::vector<std::vector<std::string>> originals;
  std::vector<std::vector<std::vector<std::string>>> rule_rewrites;
  std::vector<std::vector<std::vector<std::string>>> separate_rewrites;
  std::vector<std::vector<std::vector<std::string>>> joint_rewrites;
  for (const QuerySpec& q : world.click_log.queries()) {
    if (!rule.HasSynonym(q.tokens)) continue;
    originals.push_back(q.tokens);
    rule_rewrites.push_back(rule.Rewrite(q.tokens, 3));
    separate_rewrites.push_back(
        bench::ModelRewrites(separate_rewriter, q.tokens));
    joint_rewrites.push_back(bench::ModelRewrites(joint_rewriter, q.tokens));
    if (originals.size() >= 150) break;
  }
  std::printf("evaluating on %zu queries...\n\n", originals.size());

  const OfflineMetrics rule_m =
      Aggregate(originals, rule_rewrites, embedder, world.vocab);
  const OfflineMetrics sep_m =
      Aggregate(originals, separate_rewrites, embedder, world.vocab);
  const OfflineMetrics joint_m =
      Aggregate(originals, joint_rewrites, embedder, world.vocab);

  std::printf("Table VII — comparison with the rule-based baseline\n");
  std::printf("  %-12s %10s %14s %18s %10s\n", "", "F1 (up)",
              "EditDist (down)", "Cosine (up)", "#rewrites");
  auto print = [](const char* label, const OfflineMetrics& m) {
    std::printf("  %-12s %10.3f %14.3f %18.3f %10lld\n", label, m.f1,
                m.edit_distance, m.cosine_similarity,
                static_cast<long long>(m.num_rewrites));
  };
  print("rule-based", rule_m);
  print("separate", sep_m);
  print("joint", joint_m);
  std::printf("\npaper: rule 0.676/1.767/0.711, separate 0.193/5.340/0.660,"
              " joint 0.254/4.821/0.668.\n");
  std::printf("shape check: rule F1 >> model F1; rule edit distance << "
              "model edit distance; cosine within ~0.1 of rule.\n");
  return 0;
}
