// Regenerates Table V: encoder/decoder latency of RNN / GRU / Transformer
// components under the paper's measurement setup — beam width 3, one layer,
// vocabulary 3,000, maximum 15 decode steps, CPU.
//
// Paper numbers (ms): encoder RNN 6 / GRU 9 / Transformer 3.5;
//                     decoder RNN 30 / GRU 35 / Transformer 67.5.
// Shape to reproduce: the transformer ENCODER is competitive (one parallel
// pass over the tokens) while the transformer DECODER is the bottleneck
// (self-attention over all generated tokens at every step).

#include <benchmark/benchmark.h>

#include "nmt/hybrid.h"
#include "nmt/rnn.h"
#include "nmt/transformer.h"
#include "text/vocabulary.h"

namespace {

using namespace cyqr;

constexpr int64_t kVocab = 3000;
constexpr int64_t kSeqLen = 15;
constexpr int64_t kBeam = 3;
constexpr int64_t kDecodeSteps = 15;

Seq2SeqConfig TableVConfig() {
  Seq2SeqConfig config;
  config.vocab_size = kVocab;
  config.d_model = 64;
  config.num_heads = 2;
  config.ff_hidden = 128;
  config.num_layers = 1;
  config.dropout = 0.0f;
  return config;
}

std::vector<int32_t> SourceTokens() {
  std::vector<int32_t> src(kSeqLen);
  for (int64_t i = 0; i < kSeqLen; ++i) {
    src[i] = static_cast<int32_t>(kNumSpecialTokens + i);
  }
  return src;
}

// --------------------------- Encoders ------------------------------------

void BM_EncoderRnn(benchmark::State& state) {
  Rng rng(1);
  RnnEncoder encoder(TableVConfig(), CellType::kRnn, rng);
  encoder.SetTraining(false);
  NoGradGuard no_grad;
  const EncodedBatch src = PadBatch({SourceTokens()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(src).outputs.data());
  }
}
BENCHMARK(BM_EncoderRnn)->Unit(benchmark::kMillisecond);

void BM_EncoderGru(benchmark::State& state) {
  Rng rng(2);
  RnnEncoder encoder(TableVConfig(), CellType::kGru, rng);
  encoder.SetTraining(false);
  NoGradGuard no_grad;
  const EncodedBatch src = PadBatch({SourceTokens()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(src).outputs.data());
  }
}
BENCHMARK(BM_EncoderGru)->Unit(benchmark::kMillisecond);

void BM_EncoderLstm(benchmark::State& state) {
  Rng rng(7);
  RnnEncoder encoder(TableVConfig(), CellType::kLstm, rng);
  encoder.SetTraining(false);
  NoGradGuard no_grad;
  const EncodedBatch src = PadBatch({SourceTokens()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(src).outputs.data());
  }
}
BENCHMARK(BM_EncoderLstm)->Unit(benchmark::kMillisecond);

void BM_EncoderTransformer(benchmark::State& state) {
  Rng rng(3);
  TransformerEncoder encoder(TableVConfig(), rng);
  encoder.SetTraining(false);
  NoGradGuard no_grad;
  const EncodedBatch src = PadBatch({SourceTokens()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(src).data());
  }
}
BENCHMARK(BM_EncoderTransformer)->Unit(benchmark::kMillisecond);

// --------------------------- Decoders ------------------------------------
// Each decoder benchmark measures a full beam-3, 15-step decode, excluding
// the encoder (states are prepared per iteration but encoding is the same
// tiny cost for all variants).

template <typename ModelT>
void RunBeamDecode(const ModelT& model, benchmark::State& state) {
  NoGradGuard no_grad;
  const std::vector<int32_t> src = SourceTokens();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::unique_ptr<DecodeState>> beam;
    for (int64_t b = 0; b < kBeam; ++b) {
      beam.push_back(model.StartDecode(src));
    }
    state.ResumeTiming();
    int32_t token = kBosId;
    for (int64_t step = 0; step < kDecodeSteps; ++step) {
      for (int64_t b = 0; b < kBeam; ++b) {
        const std::vector<float> logits = model.Step(*beam[b], token);
        benchmark::DoNotOptimize(logits.data());
        token = static_cast<int32_t>(kNumSpecialTokens +
                                     (step % (kVocab / 2)));
      }
    }
  }
}

void BM_DecoderRnn(benchmark::State& state) {
  Rng rng(4);
  RnnSeq2Seq model(TableVConfig(), CellType::kRnn, CellType::kRnn,
                   AttentionKind::kDot, rng);
  model.SetTraining(false);
  RunBeamDecode(model, state);
}
BENCHMARK(BM_DecoderRnn)->Unit(benchmark::kMillisecond);

void BM_DecoderGru(benchmark::State& state) {
  Rng rng(5);
  RnnSeq2Seq model(TableVConfig(), CellType::kGru, CellType::kGru,
                   AttentionKind::kDot, rng);
  model.SetTraining(false);
  RunBeamDecode(model, state);
}
BENCHMARK(BM_DecoderGru)->Unit(benchmark::kMillisecond);

void BM_DecoderLstm(benchmark::State& state) {
  Rng rng(8);
  RnnSeq2Seq model(TableVConfig(), CellType::kLstm, CellType::kLstm,
                   AttentionKind::kDot, rng);
  model.SetTraining(false);
  RunBeamDecode(model, state);
}
BENCHMARK(BM_DecoderLstm)->Unit(benchmark::kMillisecond);

void BM_DecoderTransformer(benchmark::State& state) {
  Rng rng(6);
  TransformerSeq2Seq model(TableVConfig(), rng);
  model.SetTraining(false);
  RunBeamDecode(model, state);
}
BENCHMARK(BM_DecoderTransformer)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
