// Regenerates Figure 7: training-convergence curves of the separately
// trained vs jointly trained models. The paper's claim: after the warmup
// boundary (40k steps there, 400 here) the joint run shows "a significant
// jump on all metrics" of the translate-back (query-to-query) task, while
// the title-to-query perplexity stays flat and the query-to-title direction
// is only slightly affected.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

int main() {
  using namespace cyqr;
  const bench::BenchWorld world = bench::BuildWorld();
  const CycleConfig config = bench::BenchCycleConfig(world.vocab.size());

  // A fixed eval subset keeps each curve point cheap.
  std::vector<SeqPair> eval_subset(
      world.eval.begin(),
      world.eval.begin() + std::min<size_t>(64, world.eval.size()));

  auto run = [&](bool joint) {
    Rng rng(1234);
    CycleModel model(config, rng);
    CycleTrainerOptions options = bench::BenchTrainerOptions(joint);
    // A longer joint window than the shared default so the post-warmup
    // separation is visible, and more eval queries to tame the sampling
    // noise of the translate-back metric.
    options.max_steps = 680;
    options.warmup_steps = joint ? 400 : 680;
    options.eval_every = 40;
    options.eval_queries = 64;
    CycleTrainer trainer(&model, world.train, options);
    const Status trained = trainer.Train(eval_subset);
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.ToString().c_str());
      std::exit(1);
    }
    return trainer.curve();
  };

  std::printf("Figure 7 — convergence, separate vs joint "
              "(warmup boundary at step 400)\n\n");
  std::printf("training 'separate' run (no cyclic term)...\n");
  const auto separate = run(false);
  std::printf("training 'joint' run (cyclic term after warmup)...\n");
  const auto joint = run(true);

  std::printf("\n%s\n",
              bench::Row({"step", "q2t-ppl(S)", "q2t-ppl(J)", "t2q-ppl(S)",
                          "t2q-ppl(J)", "logP(x|x)(S)", "logP(x|x)(J)",
                          "tb-acc(S)", "tb-acc(J)"},
                         12)
                  .c_str());
  std::printf("%s\n", std::string(118, '-').c_str());
  for (size_t i = 0; i < separate.size() && i < joint.size(); ++i) {
    char buf[16];
    std::vector<std::string> cells;
    auto add = [&](double v) {
      std::snprintf(buf, sizeof(buf), "%.3f", v);
      cells.push_back(buf);
    };
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(separate[i].step));
    cells.push_back(buf);
    add(separate[i].q2t_perplexity);
    add(joint[i].q2t_perplexity);
    add(separate[i].t2q_perplexity);
    add(joint[i].t2q_perplexity);
    add(separate[i].translate_back_log_prob);
    add(joint[i].translate_back_log_prob);
    add(separate[i].translate_back_accuracy);
    add(joint[i].translate_back_accuracy);
    std::printf("%s\n", bench::Row(cells, 12).c_str());
  }

  const auto& s_last = separate.back();
  const auto& j_last = joint.back();
  std::printf("\nfinal translate-back log P(x|x): separate %.3f vs joint "
              "%.3f (joint should be higher)\n",
              s_last.translate_back_log_prob,
              j_last.translate_back_log_prob);
  std::printf("final translate-back accuracy:   separate %.3f vs joint "
              "%.3f\n",
              s_last.translate_back_accuracy,
              j_last.translate_back_accuracy);
  return 0;
}
