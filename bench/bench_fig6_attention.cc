// Regenerates Figure 6: cross-attention heat maps for the two translation
// hops — query -> synthetic title, then synthetic title -> rewritten query.
// The paper's example shows the brand nickname attending to the canonical
// brand token and the vague word ("comfortable") being skipped; here the
// same effect appears with the synthetic ontology's nicknames ("adi" ->
// "adibo") and vague words.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/string_util.h"
#include "nmt/transformer.h"

namespace {

using namespace cyqr;

/// Renders an ASCII heat map: rows = target tokens, cols = source tokens.
void PrintHeatMap(const std::vector<float>& attention, int64_t rows,
                  int64_t cols, const std::vector<std::string>& row_tokens,
                  const std::vector<std::string>& col_tokens) {
  static const char kShades[] = " .:-=+*#%@";
  std::printf("%16s ", "");
  for (const std::string& tok : col_tokens) {
    std::printf("%-10.9s", tok.c_str());
  }
  std::printf("\n");
  for (int64_t i = 0; i < rows && i < static_cast<int64_t>(row_tokens.size());
       ++i) {
    std::printf("%16.15s ", row_tokens[i].c_str());
    for (int64_t j = 0; j < cols; ++j) {
      const float w = attention[i * cols + j];
      const int shade = std::min(9, static_cast<int>(w * 10.0f));
      std::printf("%c%c%c (%4.2f) ", kShades[shade], kShades[shade],
                  kShades[shade], w);
    }
    std::printf("\n");
  }
}

/// Teacher-forced pass with attention capture: returns the decoder's
/// head-averaged cross attention [tgt_len+1, src_len].
void ShowHop(const Seq2SeqModel& model, const Vocabulary& vocab,
             const std::vector<int32_t>& src, const std::vector<int32_t>& tgt,
             const char* label) {
  auto* transformer =
      dynamic_cast<const TransformerSeq2Seq*>(&model);
  if (transformer == nullptr) {
    std::printf("(%s model is not a transformer; skipping)\n", label);
    return;
  }
  auto* mutable_transformer = const_cast<TransformerSeq2Seq*>(transformer);
  mutable_transformer->SetCaptureAttention(true);
  NoGradGuard no_grad;
  const EncodedBatch src_batch = PadBatch({src});
  const TeacherForcedBatch tf = MakeTeacherForced({tgt});
  (void)model.Forward(src_batch, tf.inputs);
  std::printf("\n%s\n", label);
  std::vector<std::string> row_tokens;
  for (int32_t id : tgt) row_tokens.push_back(vocab.Token(id));
  row_tokens.push_back("<eos>");
  std::vector<std::string> col_tokens;
  for (int32_t id : src) col_tokens.push_back(vocab.Token(id));
  PrintHeatMap(transformer->LastCrossAttention(),
               transformer->LastAttentionRows(),
               transformer->LastAttentionCols(), row_tokens, col_tokens);
  mutable_transformer->SetCaptureAttention(false);
}

}  // namespace

int main() {
  const bench::BenchWorld world = bench::BuildWorld();
  const CycleConfig config = bench::BenchCycleConfig(world.vocab.size());
  const auto model = bench::GetTrainedCycleModel(world, config,
                                                 /*joint=*/true,
                                                 "joint_transformer");
  CycleRewriter rewriter(model.get(), &world.vocab);

  // A nickname or vague-word query, the Figure 6 scenario. Picked from the
  // actual log so every token is in the trained vocabulary.
  std::vector<std::string> query = {"adi", "comfortable", "shoes"};
  for (const QuerySpec& q : world.click_log.queries()) {
    if (!q.is_colloquial || q.tokens.size() < 3 || q.intent.brand.empty()) {
      continue;
    }
    bool in_vocab = true;
    for (const std::string& tok : q.tokens) {
      if (!world.vocab.Contains(tok)) in_vocab = false;
    }
    if (!in_vocab) continue;
    // Prefer a nickname surface (brand token absent from the query).
    bool has_nickname = true;
    for (const std::string& tok : q.tokens) {
      if (tok == q.intent.brand) has_nickname = false;
    }
    if (!has_nickname) continue;
    query = q.tokens;
    break;
  }
  RewriteOptions options;
  options.k = 3;
  const CycleRewriter::Result result = rewriter.Rewrite(query, options);
  if (result.synthetic_titles.empty() || result.rewrites.empty()) {
    std::printf("no rewrite produced; try clearing cyqr_bench_cache\n");
    return 1;
  }
  const std::vector<int32_t> query_ids = world.vocab.Encode(query);
  const std::vector<int32_t>& title_ids = result.synthetic_titles[0].ids;
  const std::vector<int32_t>& rewrite_ids = result.rewrites[0].ids;

  std::printf("Figure 6 — attention heat maps of the two translation hops\n");
  std::printf("query:    %s\n", JoinStrings(query).c_str());
  std::printf("title:    %s\n",
              world.vocab.DecodeToString(title_ids).c_str());
  std::printf("rewrite:  %s\n",
              world.vocab.DecodeToString(rewrite_ids).c_str());

  ShowHop(model->forward(), world.vocab, query_ids, title_ids,
          "(a) query -> synthetic title cross attention");
  ShowHop(model->backward(), world.vocab, title_ids, rewrite_ids,
          "(b) synthetic title -> rewritten query cross attention");
  return 0;
}
