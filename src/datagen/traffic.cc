#include "datagen/traffic.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"

namespace cyqr {

TrafficSampler::TrafficSampler(const ClickLog* log) : log_(log) {
  CYQR_CHECK(log != nullptr);
  const auto& pop = log->query_popularity();
  cdf_.resize(pop.size());
  double acc = 0.0;
  for (size_t i = 0; i < pop.size(); ++i) {
    acc += pop[i];
    cdf_[i] = acc;
  }
  by_popularity_.resize(pop.size());
  std::iota(by_popularity_.begin(), by_popularity_.end(), 0);
  std::sort(by_popularity_.begin(), by_popularity_.end(),
            [&pop](int64_t a, int64_t b) { return pop[a] > pop[b]; });
}

int64_t TrafficSampler::SampleQueryIndex(Rng& rng) const {
  const double u = rng.NextDouble() * cdf_.back();
  const size_t i = static_cast<size_t>(
      std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  return static_cast<int64_t>(std::min(i, cdf_.size() - 1));
}

std::vector<int64_t> TrafficSampler::HeadQueries(double fraction) const {
  std::vector<int64_t> out;
  const auto& pop = log_->query_popularity();
  double covered = 0.0;
  for (int64_t q : by_popularity_) {
    if (covered >= fraction) break;
    out.push_back(q);
    covered += pop[q];
  }
  return out;
}

bool TrafficSampler::IsHeadQuery(int64_t query_index, double fraction) const {
  const std::vector<int64_t> head = HeadQueries(fraction);
  return std::find(head.begin(), head.end(), query_index) != head.end();
}

}  // namespace cyqr
