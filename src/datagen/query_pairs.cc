#include "datagen/query_pairs.h"

#include <algorithm>
#include <map>

#include "core/string_util.h"

namespace cyqr {

std::vector<QueryPair> MineSynonymousQueryPairs(const ClickLog& log,
                                                int64_t min_shared_clicks) {
  // product -> [(query index, clicks)].
  std::map<int64_t, std::vector<std::pair<int64_t, int64_t>>> by_product;
  for (const ClickPair& p : log.pairs()) {
    by_product[p.product_id].emplace_back(p.query_index, p.clicks);
  }
  // Unordered query-index pair -> shared clicks.
  std::map<std::pair<int64_t, int64_t>, int64_t> shared;
  for (const auto& [product, qs] : by_product) {
    for (size_t i = 0; i < qs.size(); ++i) {
      for (size_t j = i + 1; j < qs.size(); ++j) {
        auto key = std::minmax(qs[i].first, qs[j].first);
        shared[{key.first, key.second}] +=
            std::min(qs[i].second, qs[j].second);
      }
    }
  }
  std::vector<QueryPair> out;
  for (const auto& [key, clicks] : shared) {
    if (clicks < min_shared_clicks) continue;
    QueryPair qp;
    qp.a = log.queries()[key.first].tokens;
    qp.b = log.queries()[key.second].tokens;
    qp.shared_clicks = clicks;
    out.push_back(std::move(qp));
  }
  // Most-evidence first.
  std::sort(out.begin(), out.end(), [](const QueryPair& a,
                                       const QueryPair& b) {
    return a.shared_clicks > b.shared_clicks;
  });
  return out;
}

}  // namespace cyqr
