#include "datagen/catalog.h"

#include <algorithm>

#include "core/check.h"
#include "core/string_util.h"

namespace cyqr {

namespace {

/// The fixed ontology. Canonical tokens appear in item titles; colloquial
/// phrases appear only in user queries, creating the query/title vocabulary
/// gap (paper Section I: "cellphone for grandpa" vs "senior mobile phone").
/// The "cherry" brand in the keyboard category doubles as a fruit flavor in
/// the snacks category — the polysemy trap of Section IV-C2.
std::vector<CategorySpec> BuildOntology() {
  std::vector<CategorySpec> cats;

  cats.push_back(CategorySpec{
      /*name=*/"phone",
      /*head=*/{"smartphone"},
      /*query_heads=*/{"phone", "cellphone"},
      /*brands=*/{"pearfone", "nokla", "huawi", "redmo"},
      /*brand_nicknames=*/{{"pear", "pearfone"}, {"hw", "huawi"}},
      /*attributes=*/
      {{"senior", {"for grandpa", "for grandma", "for old people"}},
       {"student", {"for school kids"}},
       {"gaming", {"for playing games"}},
       {"budget", {"cheap", "low price"}},
       {"flagship", {"newest", "latest"}},
       {"64gb", {}},
       {"128gb", {}},
       {"black", {}},
       {"golden", {}}},
      /*marketing=*/
      {"dual", "sim", "netcom", "unlocked", "official", "warranty",
       "fullscreen", "4g"},
      /*base_price=*/300.0});

  cats.push_back(CategorySpec{
      "milkpowder",
      {"milk", "powder"},
      {"milkpowder"},
      {"yilo", "anchor", "friso", "aptam"},
      {{"yl", "yilo"}},
      {{"adult", {"for seniors", "for old people", "for grandpa"}},
       {"infant", {"for baby", "for newborn"}},
       {"skimmed", {"low fat", "diet"}},
       {"goat", {}},
       {"organic", {"natural", "healthy"}},
       {"900g", {}},
       {"imported", {"from overseas"}}},
      {"canned", "formula", "segment3", "nutrition", "calcium", "fresh",
       "bagged", "stage2"},
      40.0});

  cats.push_back(CategorySpec{
      "shoes",
      {"shoes"},
      {"shoes", "sneakers"},
      {"adibo", "niko", "pumo", "liing"},
      {{"adi", "adibo"}, {"nk", "niko"}},
      {{"running", {"for jogging", "for marathon"}},
       {"casual", {"comfortable", "for walking"}},
       {"mens", {"for men", "for boyfriend", "for husband"}},
       {"womens", {"for women", "for girlfriend", "for wife"}},
       {"leather", {}},
       {"white", {}},
       {"red", {}},
       {"size42", {}}},
      {"breathable", "spring", "new", "lightweight", "cushioning", "sport",
       "genuine", "classic"},
      80.0});

  cats.push_back(CategorySpec{
      "coin",
      {"commemorative", "coin"},
      {"coin", "coins"},
      {"chinagold", "royalmint", "centurycoin"},
      {},
      {{"rat2020", {"year of the rat"}},
       {"pig2019", {"year of the pig", "year of the boar"}},
       {"ox2021", {"year of the ox"}},
       {"silver", {}},
       {"gold", {}},
       {"boxed", {"with gift box"}}},
      {"zodiac", "circulation", "collection", "yuan", "facevalue", "limited",
       "edition", "round2"},
      120.0});

  cats.push_back(CategorySpec{
      "skincare",
      {"skincare", "set"},
      {"skincare", "cream"},
      {"lorea", "nivia", "olai", "shisedo"},
      {{"lr", "lorea"}},
      {{"antiwrinkle", {"wrinkle removal", "against wrinkles", "antiaging"}},
       {"moisturizing", {"for dry skin"}},
       {"mens", {"for men", "for boyfriend", "for husband"}},
       {"womens", {"for women", "for mom"}},
       {"whitening", {}},
       {"firming", {}}},
      {"facial", "authentic", "fivepiece", "lotion", "essence", "toner",
       "hydrating", "counter"},
      60.0});

  cats.push_back(CategorySpec{
      "keyboard",
      {"mechanical", "keyboard"},
      {"keyboard"},
      {"cherry", "logitec", "razor", "keychron"},
      {},
      {{"wireless", {"bluetooth", "no cable"}},
       {"gaming", {"for playing games", "for esports"}},
       {"office", {"for work", "for typing"}},
       {"rgb", {"with lights", "backlit"}},
       {"blueswitch", {}},
       {"redswitch", {}},
       {"87key", {}}},
      {"usb", "hotswap", "macro", "ergonomic", "nkey", "rollover",
       "aluminum", "pbt"},
      90.0});

  cats.push_back(CategorySpec{
      "snacks",
      {"dried", "fruit", "snack"},
      {"snack", "snacks"},
      {"threesquirrel", "bestore", "baicao"},
      {},
      {{"cherry", {}},  // Fruit flavor: collides with the keyboard brand.
       {"mango", {}},
       {"strawberry", {}},
       {"nosugar", {"sugar free", "healthy", "diet"}},
       {"spicy", {}},
       {"bulk", {"family pack", "big bag"}}},
      {"preserved", "candied", "office", "leisure", "500g", "gift", "sweet",
       "natural"},
      15.0});

  cats.push_back(CategorySpec{
      "headphones",
      {"headphones"},
      {"headphones", "earphones", "headset"},
      {"sonic", "boso", "jbel", "airpo"},
      {{"ap", "airpo"}},
      {{"wireless", {"bluetooth", "no cable"}},
       {"noisecancel", {"quiet", "for airplane"}},
       {"sport", {"for running", "for gym"}},
       {"kids", {"for children", "for school kids"}},
       {"overear", {}},
       {"inear", {}}},
      {"stereo", "bass", "microphone", "foldable", "hifi", "charging",
       "case", "waterproof"},
      70.0});

  cats.push_back(CategorySpec{
      "watch",
      {"wrist", "watch"},
      {"watch"},
      {"casius", "seikon", "citizon", "fosil"},
      {{"cs", "casius"}},
      {{"mens", {"for men", "for boyfriend", "for husband", "for dad"}},
       {"womens", {"for women", "for girlfriend", "for wife", "for mom"}},
       {"mechanical", {"automatic"}},
       {"quartz", {}},
       {"waterproof", {"for swimming"}},
       {"luminous", {"glow in dark"}}},
      {"sapphire", "steel", "strap", "calendar", "business", "luxury",
       "boxed", "genuine"},
      200.0});

  cats.push_back(CategorySpec{
      "perfume",
      {"eau", "de", "toilette"},
      {"perfume", "fragrance"},
      {"chanol", "dioro", "gucce", "versaco"},
      {},
      {{"mens", {"for men", "for boyfriend", "for husband"}},
       {"womens", {"for women", "for girlfriend", "for wife"}},
       {"50ml", {}},
       {"100ml", {}},
       {"floral", {"flower scent"}},
       {"woody", {}}},
      {"lasting", "spray", "gift", "boxed", "counter", "authentic", "fresh",
       "light"},
      110.0});

  return cats;
}

/// Query-side-only vague words the model should learn to drop (the paper's
/// attention visualization shows "comfortable" being skipped).
const std::vector<std::string>& VagueWords() {
  static const std::vector<std::string> kWords = {
      "nice", "good", "best", "comfortable", "quality", "popular"};
  return kWords;
}

}  // namespace

Catalog Catalog::Generate(const CatalogConfig& config) {
  Catalog catalog;
  catalog.categories_ = BuildOntology();
  Rng rng(config.seed);

  for (size_t ci = 0; ci < catalog.categories_.size(); ++ci) {
    const CategorySpec& cat = catalog.categories_[ci];
    catalog.head_to_category_[JoinStrings(cat.head)] =
        static_cast<int>(ci);
    for (const std::string& qh : cat.query_heads) {
      catalog.head_to_category_.try_emplace(qh, static_cast<int>(ci));
    }
    for (const std::string& b : cat.brands) {
      catalog.brand_to_category_[b] = static_cast<int>(ci);
    }
    for (const auto& [nick, brand] : cat.brand_nicknames) {
      catalog.nickname_to_brand_[nick] = brand;
    }
    for (const AttributeSpec& attr : cat.attributes) {
      catalog.attr_to_categories_[attr.canonical].push_back(
          static_cast<int>(ci));
      for (const std::string& phrase : attr.colloquial) {
        catalog.colloquial_to_canonical_[phrase].push_back(attr.canonical);
      }
    }
  }

  // Instantiate products: every brand x model x a sampled attribute set.
  int64_t next_id = 0;
  for (const CategorySpec& cat : catalog.categories_) {
    for (const std::string& brand : cat.brands) {
      for (int64_t m = 0; m < config.models_per_brand; ++m) {
        Product p;
        p.id = next_id++;
        p.category = cat.name;
        p.brand = brand;
        p.model = brand.substr(0, 2) + std::to_string(100 + 10 * m +
                                                      rng.NextInt(0, 9));
        // 2-4 attributes, distinct.
        const int64_t num_attrs = rng.NextInt(2, 4);
        std::vector<size_t> perm = rng.Permutation(cat.attributes.size());
        for (int64_t a = 0; a < num_attrs &&
                            a < static_cast<int64_t>(perm.size());
             ++a) {
          p.attributes.push_back(cat.attributes[perm[a]].canonical);
        }
        // Long keyword-stuffed title: brand model marketing... attrs head
        // marketing... brand head.
        std::vector<size_t> mperm = rng.Permutation(cat.marketing.size());
        p.title_tokens.push_back(brand);
        p.title_tokens.push_back(p.model);
        for (int i = 0; i < 3; ++i) {
          p.title_tokens.push_back(cat.marketing[mperm[i]]);
        }
        for (const std::string& a : p.attributes) {
          p.title_tokens.push_back(a);
        }
        for (const std::string& h : cat.head) p.title_tokens.push_back(h);
        for (int i = 3; i < 6; ++i) {
          p.title_tokens.push_back(cat.marketing[mperm[i]]);
        }
        p.title_tokens.push_back(brand);
        for (const std::string& h : cat.head) p.title_tokens.push_back(h);

        p.price = cat.base_price * (0.5 + 1.5 * rng.NextDouble());
        p.quality = 0.2 + 1.8 * rng.NextDouble();
        catalog.products_.push_back(std::move(p));
      }
    }
  }
  return catalog;
}

const Product& Catalog::product(int64_t id) const {
  CYQR_CHECK(id >= 0 && id < static_cast<int64_t>(products_.size()));
  return products_[id];
}

const CategorySpec* Catalog::FindCategory(const std::string& name) const {
  for (const CategorySpec& c : categories_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

QuerySpec Catalog::SampleQuery(Rng& rng) const {
  const CategorySpec& cat =
      categories_[rng.NextBelow(categories_.size())];
  QuerySpec spec;
  spec.intent.category = cat.name;

  const bool want_brand = rng.NextBernoulli(0.4);
  std::string brand_surface;
  if (want_brand) {
    spec.intent.brand = cat.brands[rng.NextBelow(cat.brands.size())];
    brand_surface = spec.intent.brand;
  }

  // 0-2 attributes.
  const int64_t num_attrs = rng.NextInt(0, 2);
  std::vector<size_t> perm = rng.Permutation(cat.attributes.size());
  std::vector<const AttributeSpec*> chosen;
  for (int64_t a = 0; a < num_attrs; ++a) {
    chosen.push_back(&cat.attributes[perm[a]]);
    spec.intent.attributes.push_back(cat.attributes[perm[a]].canonical);
  }

  spec.is_colloquial = rng.NextBernoulli(0.45);
  std::vector<std::string> before_head;  // brand/attr words before the head.
  std::vector<std::string> after_head;   // "for grandpa"-style phrases.
  if (spec.is_colloquial) {
    // Nickname for the brand when available.
    if (want_brand) {
      for (const auto& [nick, b] : cat.brand_nicknames) {
        if (b == spec.intent.brand && rng.NextBernoulli(0.6)) {
          brand_surface = nick;
          break;
        }
      }
    }
    // Colloquial phrasing for attributes when available.
    for (const AttributeSpec* attr : chosen) {
      if (!attr->colloquial.empty() && rng.NextBernoulli(0.8)) {
        const std::string& phrase =
            attr->colloquial[rng.NextBelow(attr->colloquial.size())];
        std::vector<std::string> words = SplitString(phrase);
        if (!words.empty() && words[0] == "for") {
          after_head.insert(after_head.end(), words.begin(), words.end());
        } else {
          before_head.insert(before_head.end(), words.begin(), words.end());
        }
      } else {
        before_head.push_back(attr->canonical);
      }
    }
    if (rng.NextBernoulli(0.25)) {
      before_head.insert(
          before_head.begin(),
          VagueWords()[rng.NextBelow(VagueWords().size())]);
    }
  } else {
    for (const AttributeSpec* attr : chosen) {
      before_head.push_back(attr->canonical);
    }
  }

  if (!brand_surface.empty()) spec.tokens.push_back(brand_surface);
  spec.tokens.insert(spec.tokens.end(), before_head.begin(),
                     before_head.end());
  // Head: colloquial queries use the user-side head word.
  if (spec.is_colloquial || rng.NextBernoulli(0.5)) {
    spec.tokens.push_back(
        cat.query_heads[rng.NextBelow(cat.query_heads.size())]);
  } else {
    spec.tokens.insert(spec.tokens.end(), cat.head.begin(), cat.head.end());
  }
  spec.tokens.insert(spec.tokens.end(), after_head.begin(), after_head.end());
  return spec;
}

std::vector<std::string> Catalog::CanonicalQueryTokens(
    const QueryIntent& intent) const {
  std::vector<std::string> out;
  if (!intent.brand.empty()) out.push_back(intent.brand);
  out.insert(out.end(), intent.attributes.begin(), intent.attributes.end());
  const CategorySpec* cat = FindCategory(intent.category);
  if (cat != nullptr) {
    out.insert(out.end(), cat->head.begin(), cat->head.end());
  }
  return out;
}

QueryIntent Catalog::ParseQuery(const std::vector<std::string>& tokens) const {
  QueryIntent intent;
  std::vector<int> category_votes(categories_.size(), 0);
  std::vector<std::string> attrs;
  // Brand candidates with their home category; the winner is picked only
  // after the category vote so polysemous tokens ("cherry" the keyboard
  // brand vs the fruit flavor) resolve by context.
  std::vector<std::pair<std::string, int>> brand_candidates;

  // Resolve colloquial phrases first (longest match, up to 3 tokens).
  std::vector<std::string> resolved;
  for (size_t i = 0; i < tokens.size();) {
    bool matched = false;
    for (size_t len = std::min<size_t>(3, tokens.size() - i); len >= 2;
         --len) {
      std::string phrase = tokens[i];
      for (size_t j = 1; j < len; ++j) phrase += " " + tokens[i + j];
      auto it = colloquial_to_canonical_.find(phrase);
      if (it != colloquial_to_canonical_.end()) {
        // Ambiguous phrases contribute every candidate; the category
        // filter below keeps only the ones consistent with the vote.
        resolved.insert(resolved.end(), it->second.begin(),
                        it->second.end());
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      resolved.push_back(tokens[i]);
      ++i;
    }
  }

  for (size_t i = 0; i < resolved.size(); ++i) {
    const std::string& tok = resolved[i];
    // Bigram heads ("milk powder").
    if (i + 1 < resolved.size()) {
      auto it = head_to_category_.find(tok + " " + resolved[i + 1]);
      if (it != head_to_category_.end()) {
        category_votes[it->second] += 3;
      }
    }
    // Trigram heads ("eau de toilette", "dried fruit snack").
    if (i + 2 < resolved.size()) {
      auto it = head_to_category_.find(tok + " " + resolved[i + 1] + " " +
                                       resolved[i + 2]);
      if (it != head_to_category_.end()) {
        category_votes[it->second] += 3;
      }
    }
    auto hit = head_to_category_.find(tok);
    if (hit != head_to_category_.end()) category_votes[hit->second] += 3;

    auto nit = nickname_to_brand_.find(tok);
    const std::string brand_tok =
        nit != nickname_to_brand_.end() ? nit->second : tok;
    auto bit = brand_to_category_.find(brand_tok);
    if (bit != brand_to_category_.end()) {
      brand_candidates.emplace_back(brand_tok, bit->second);
      category_votes[bit->second] += 2;
    }
    auto ait = attr_to_categories_.find(tok);
    if (ait != attr_to_categories_.end()) {
      attrs.push_back(tok);
      for (int c : ait->second) category_votes[c] += 1;
    }
  }

  int best = -1;
  int best_votes = 0;
  for (size_t c = 0; c < category_votes.size(); ++c) {
    if (category_votes[c] > best_votes) {
      best_votes = category_votes[c];
      best = static_cast<int>(c);
    }
  }
  if (best >= 0) intent.category = categories_[best].name;
  for (const auto& [brand_tok, cat] : brand_candidates) {
    if (cat == best) {
      intent.brand = brand_tok;
      break;
    }
  }
  // Keep only attributes belonging to the resolved category.
  if (best >= 0) {
    for (const std::string& a : attrs) {
      auto it = attr_to_categories_.find(a);
      if (it != attr_to_categories_.end() &&
          std::find(it->second.begin(), it->second.end(), best) !=
              it->second.end()) {
        intent.attributes.push_back(a);
      }
    }
  }
  return intent;
}

double Catalog::MatchScore(const QueryIntent& intent,
                           const Product& product) const {
  if (intent.category.empty() || product.category != intent.category) {
    return 0.0;
  }
  if (!intent.brand.empty() && product.brand != intent.brand) return 0.0;
  if (intent.attributes.empty()) return 1.0;
  int hit = 0;
  for (const std::string& a : intent.attributes) {
    if (std::find(product.attributes.begin(), product.attributes.end(), a) !=
        product.attributes.end()) {
      ++hit;
    }
  }
  return 1.0 + static_cast<double>(hit) / intent.attributes.size();
}

std::vector<int64_t> Catalog::MatchingProducts(
    const QueryIntent& intent) const {
  std::vector<int64_t> out;
  for (const Product& p : products_) {
    if (MatchScore(intent, p) > 0.0) out.push_back(p.id);
  }
  return out;
}

}  // namespace cyqr
