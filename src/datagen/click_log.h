#ifndef CYCLEQR_DATAGEN_CLICK_LOG_H_
#define CYCLEQR_DATAGEN_CLICK_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/catalog.h"

namespace cyqr {

/// An aggregated (query, clicked item) record — the unit of the paper's
/// 60-day click log training data.
struct ClickPair {
  int64_t query_index = 0;  // Into ClickLog::queries().
  int64_t product_id = 0;
  int64_t clicks = 0;
};

struct ClickLogConfig {
  int64_t num_distinct_queries = 1200;
  int64_t num_sessions = 60000;  // Simulated search sessions ("60 days").
  int64_t min_clicks = 2;        // Paper: keep samples with more than one click.
  double zipf_exponent = 1.05;   // Head/tail skew of query traffic.
  uint64_t seed = 11;
};

/// Table I statistics of the generated data set.
struct DatasetStats {
  int64_t num_pairs = 0;
  int64_t num_sessions = 0;
  int64_t num_distinct_queries = 0;
  int64_t num_products = 0;
  int64_t vocab_size = 0;
  double avg_query_words = 0.0;
  double avg_title_words = 0.0;
};

/// A raw (query tokens, title tokens) training pair.
struct TokenPair {
  std::vector<std::string> query;
  std::vector<std::string> title;
  int64_t clicks = 0;
};

/// Synthetic click log: distinct queries with Zipfian popularity, sessions
/// that click relevant products proportionally to quality x relevance, and
/// the >=min_clicks aggregation filter of Section IV-A.
class ClickLog {
 public:
  static ClickLog Generate(const Catalog& catalog,
                           const ClickLogConfig& config);

  const std::vector<QuerySpec>& queries() const { return queries_; }
  const std::vector<double>& query_popularity() const { return popularity_; }
  const std::vector<ClickPair>& pairs() const { return pairs_; }
  int64_t num_sessions() const { return num_sessions_; }

  /// Training pairs in token form (query -> clicked title).
  std::vector<TokenPair> TokenPairs(const Catalog& catalog) const;

  DatasetStats Stats(const Catalog& catalog) const;

 private:
  std::vector<QuerySpec> queries_;
  std::vector<double> popularity_;  // Normalized sampling weights.
  std::vector<ClickPair> pairs_;
  int64_t num_sessions_ = 0;
};

}  // namespace cyqr

#endif  // CYCLEQR_DATAGEN_CLICK_LOG_H_
