#include "datagen/synonyms.h"

#include <algorithm>

#include "core/string_util.h"

namespace cyqr {

void SynonymDictionary::Add(const std::string& phrase,
                            const std::string& replacement) {
  entries_[phrase] = replacement;
}

bool SynonymDictionary::Contains(const std::string& phrase) const {
  return entries_.count(phrase) > 0;
}

bool SynonymDictionary::Apply(const std::vector<std::string>& tokens,
                              std::vector<std::string>* rewritten) const {
  for (size_t i = 0; i < tokens.size(); ++i) {
    for (size_t len = std::min<size_t>(3, tokens.size() - i); len >= 1;
         --len) {
      std::string phrase = tokens[i];
      for (size_t j = 1; j < len; ++j) phrase += " " + tokens[i + j];
      auto it = entries_.find(phrase);
      if (it == entries_.end()) continue;
      rewritten->clear();
      rewritten->insert(rewritten->end(), tokens.begin(),
                        tokens.begin() + i);
      for (std::string& w : SplitString(it->second)) {
        rewritten->push_back(std::move(w));
      }
      rewritten->insert(rewritten->end(), tokens.begin() + i + len,
                        tokens.end());
      return true;
    }
  }
  return false;
}

SynonymDictionary BuildRuleDictionary(const Catalog& catalog, double coverage,
                                      Rng& rng) {
  SynonymDictionary dict;
  for (const CategorySpec& cat : catalog.categories()) {
    for (const auto& [nick, brand] : cat.brand_nicknames) {
      dict.Add(nick, brand);
    }
    const std::string canonical_head = JoinStrings(cat.head);
    for (const std::string& qh : cat.query_heads) {
      if (qh != canonical_head) dict.Add(qh, canonical_head);
    }
    for (const AttributeSpec& attr : cat.attributes) {
      for (const std::string& phrase : attr.colloquial) {
        if (rng.NextBernoulli(coverage)) dict.Add(phrase, attr.canonical);
      }
    }
  }
  // Polysemy trap: a context-free rule that treats "cherry" as the fruit.
  // Correct for snack queries, harmful for the keyboard brand (the rewritten
  // query "cherry fruit keyboard" retrieves nothing).
  dict.Add("cherry", "cherry fruit");
  return dict;
}

}  // namespace cyqr
