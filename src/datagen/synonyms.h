#ifndef CYCLEQR_DATAGEN_SYNONYMS_H_
#define CYCLEQR_DATAGEN_SYNONYMS_H_

#include <map>
#include <string>
#include <vector>

#include "core/rng.h"
#include "datagen/catalog.h"

namespace cyqr {

/// A phrase-to-phrase synonym dictionary, the substrate of the paper's
/// production rule-based rewriter: "it simply replaces the phrase in the
/// query with its synonym phrase from the dictionary".
class SynonymDictionary {
 public:
  /// Phrases are space-joined token sequences.
  void Add(const std::string& phrase, const std::string& replacement);

  bool Contains(const std::string& phrase) const;
  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }
  size_t size() const { return entries_.size(); }

  /// Longest-match replacement of the first matching phrase (up to 3
  /// tokens) in `tokens`. Returns true and writes the rewritten tokens if
  /// any phrase matched.
  bool Apply(const std::vector<std::string>& tokens,
             std::vector<std::string>* rewritten) const;

 private:
  std::map<std::string, std::string> entries_;
};

/// Derives the "human-curated" dictionary from the catalog ontology:
///  * brand nicknames -> brands (fully covered — these are common);
///  * user head words -> canonical heads ("cellphone" -> "smartphone");
///  * colloquial attribute phrases -> canonical attributes, but only a
///    `coverage` fraction — human curation misses the long tail;
///  * the context-free polysemy trap of Section IV-C2: "cherry" (the
///    keyboard brand) -> "cherry fruit".
SynonymDictionary BuildRuleDictionary(const Catalog& catalog, double coverage,
                                      Rng& rng);

}  // namespace cyqr

#endif  // CYCLEQR_DATAGEN_SYNONYMS_H_
