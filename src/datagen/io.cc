#include "datagen/io.h"

#include <cstdlib>
#include <fstream>

#include "core/string_util.h"

namespace cyqr {

Status SaveTokenPairs(const std::vector<TokenPair>& pairs,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  for (const TokenPair& p : pairs) {
    out << JoinStrings(p.query) << '\t' << JoinStrings(p.title) << '\t'
        << p.clicks << '\n';
  }
  if (!out.good()) return Status::IoError("failed writing " + path);
  return Status::OK();
}

Result<std::vector<TokenPair>> LoadTokenPairs(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  std::vector<TokenPair> pairs;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const size_t tab1 = line.find('\t');
    if (tab1 == std::string::npos) {
      return Status::InvalidArgument(
          "missing tab on line " + std::to_string(line_number));
    }
    const size_t tab2 = line.find('\t', tab1 + 1);
    TokenPair p;
    p.query = SplitString(line.substr(0, tab1));
    if (tab2 == std::string::npos) {
      p.title = SplitString(line.substr(tab1 + 1));
      p.clicks = 1;
    } else {
      p.title = SplitString(line.substr(tab1 + 1, tab2 - tab1 - 1));
      // A garbage click field must not silently load as 0 (strtoll's
      // error value): the field has to be a complete non-negative
      // integer.
      const char* begin = line.c_str() + tab2 + 1;
      char* end = nullptr;
      p.clicks = std::strtoll(begin, &end, 10);
      if (end == begin || *end != '\0' || p.clicks < 0) {
        return Status::InvalidArgument(
            "malformed click count on line " +
            std::to_string(line_number) + ": '" + std::string(begin) +
            "'");
      }
    }
    if (p.query.empty() || p.title.empty()) {
      return Status::InvalidArgument(
          "empty query or title on line " + std::to_string(line_number));
    }
    pairs.push_back(std::move(p));
  }
  // getline stops on both EOF and read errors; only the former is a
  // complete load. Without this check a mid-file I/O failure would
  // silently return a truncated pair list (the PR-1 bug class).
  if (in.bad()) return Status::IoError("read error in " + path);
  return pairs;
}

}  // namespace cyqr
