#ifndef CYCLEQR_DATAGEN_QUERY_PAIRS_H_
#define CYCLEQR_DATAGEN_QUERY_PAIRS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/click_log.h"

namespace cyqr {

/// A mined synonymous query pair (Section III-G): two queries that share at
/// least `min_shared_clicks` clicks on the same items are treated as
/// synonyms — the training data for the fast direct query-to-query model.
struct QueryPair {
  std::vector<std::string> a;
  std::vector<std::string> b;
  int64_t shared_clicks = 0;
};

/// Mines synonymous pairs from the click log by co-click counting. The
/// shared-click count of (q1, q2) sums min(clicks1, clicks2) over all items
/// both queries clicked. Pairs are unordered (a < b lexicographically).
std::vector<QueryPair> MineSynonymousQueryPairs(const ClickLog& log,
                                                int64_t min_shared_clicks);

}  // namespace cyqr

#endif  // CYCLEQR_DATAGEN_QUERY_PAIRS_H_
