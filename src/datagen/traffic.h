#ifndef CYCLEQR_DATAGEN_TRAFFIC_H_
#define CYCLEQR_DATAGEN_TRAFFIC_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "datagen/click_log.h"

namespace cyqr {

/// Samples live search traffic over the click log's query population,
/// following its Zipfian popularity — the workload for the serving bench
/// and the online A/B simulation.
class TrafficSampler {
 public:
  /// `log` must outlive the sampler.
  explicit TrafficSampler(const ClickLog* log);

  /// Samples a query index into log->queries().
  int64_t SampleQueryIndex(Rng& rng) const;

  /// Indices of the most popular queries covering `fraction` of traffic —
  /// the "top 8 million queries / 80% of traffic" head the paper
  /// precomputes into the KV store (Section III-G).
  std::vector<int64_t> HeadQueries(double fraction) const;

  /// True if the query index is within the head set for `fraction`.
  bool IsHeadQuery(int64_t query_index, double fraction) const;

 private:
  const ClickLog* log_;
  std::vector<double> cdf_;
  std::vector<int64_t> by_popularity_;  // Query indices, most popular first.
};

}  // namespace cyqr

#endif  // CYCLEQR_DATAGEN_TRAFFIC_H_
