#ifndef CYCLEQR_DATAGEN_IO_H_
#define CYCLEQR_DATAGEN_IO_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "datagen/click_log.h"

namespace cyqr {

/// TSV persistence of click-log token pairs: each line is
/// "query tokens<TAB>title tokens<TAB>clicks". The interchange format of
/// the CLI tools — bring-your-own click logs use the same layout.
[[nodiscard]] Status SaveTokenPairs(const std::vector<TokenPair>& pairs,
                      const std::string& path);

[[nodiscard]] Result<std::vector<TokenPair>> LoadTokenPairs(
    const std::string& path);

}  // namespace cyqr

#endif  // CYCLEQR_DATAGEN_IO_H_
