#include "datagen/click_log.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "core/check.h"
#include "core/string_util.h"

namespace cyqr {

ClickLog ClickLog::Generate(const Catalog& catalog,
                            const ClickLogConfig& config) {
  ClickLog log;
  Rng rng(config.seed);

  // Distinct queries (deduplicated on surface form).
  std::set<std::string> seen;
  while (static_cast<int64_t>(log.queries_.size()) <
         config.num_distinct_queries) {
    QuerySpec spec = catalog.SampleQuery(rng);
    const std::string key = JoinStrings(spec.tokens);
    if (!seen.insert(key).second) continue;
    log.queries_.push_back(std::move(spec));
  }

  // Zipfian popularity over a random rank permutation. Canonical queries
  // dominate the head (users mostly type standard queries); colloquial
  // "hard" queries live in the long tail — the paper's motivation for
  // covering the tail with the model rather than curated rules.
  const size_t n = log.queries_.size();
  std::vector<size_t> rank = rng.Permutation(n);
  log.popularity_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double head_bias = log.queries_[i].is_colloquial ? 1.0 : 3.0;
    log.popularity_[i] =
        head_bias / std::pow(static_cast<double>(rank[i] + 1),
                             config.zipf_exponent);
    total += log.popularity_[i];
  }
  for (double& p : log.popularity_) p /= total;

  // Cache matching products per query.
  std::vector<std::vector<int64_t>> matches(n);
  for (size_t i = 0; i < n; ++i) {
    matches[i] = catalog.MatchingProducts(log.queries_[i].intent);
  }

  // Precompute popularity CDF for session sampling.
  std::vector<double> cdf(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += log.popularity_[i];
    cdf[i] = acc;
  }

  std::map<std::pair<int64_t, int64_t>, int64_t> counts;
  log.num_sessions_ = config.num_sessions;
  for (int64_t s = 0; s < config.num_sessions; ++s) {
    const double u = rng.NextDouble();
    const size_t qi = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const size_t q = std::min(qi, n - 1);
    const auto& cand = matches[q];
    if (cand.empty()) continue;  // Unsatisfiable query: no click.
    // Click weight = quality * relevance.
    std::vector<float> w(cand.size());
    for (size_t j = 0; j < cand.size(); ++j) {
      const Product& p = catalog.product(cand[j]);
      w[j] = static_cast<float>(
          p.quality * catalog.MatchScore(log.queries_[q].intent, p));
    }
    const int64_t num_clicks = rng.NextBernoulli(0.3) ? 2 : 1;
    for (int64_t c = 0; c < num_clicks; ++c) {
      const size_t pick = rng.SampleCategorical(w);
      ++counts[{static_cast<int64_t>(q), cand[pick]}];
    }
  }

  for (const auto& [key, clicks] : counts) {
    if (clicks >= config.min_clicks) {
      log.pairs_.push_back({key.first, key.second, clicks});
    }
  }
  return log;
}

std::vector<TokenPair> ClickLog::TokenPairs(const Catalog& catalog) const {
  std::vector<TokenPair> out;
  out.reserve(pairs_.size());
  for (const ClickPair& p : pairs_) {
    out.push_back({queries_[p.query_index].tokens,
                   catalog.product(p.product_id).title_tokens, p.clicks});
  }
  return out;
}

DatasetStats ClickLog::Stats(const Catalog& catalog) const {
  DatasetStats stats;
  stats.num_pairs = static_cast<int64_t>(pairs_.size());
  stats.num_sessions = num_sessions_;
  stats.num_distinct_queries = static_cast<int64_t>(queries_.size());
  stats.num_products = static_cast<int64_t>(catalog.products().size());

  std::set<std::string> vocab;
  double query_words = 0.0;
  double title_words = 0.0;
  for (const ClickPair& p : pairs_) {
    const auto& q = queries_[p.query_index].tokens;
    const auto& t = catalog.product(p.product_id).title_tokens;
    query_words += static_cast<double>(q.size());
    title_words += static_cast<double>(t.size());
    vocab.insert(q.begin(), q.end());
    vocab.insert(t.begin(), t.end());
  }
  stats.vocab_size = static_cast<int64_t>(vocab.size());
  if (!pairs_.empty()) {
    stats.avg_query_words = query_words / pairs_.size();
    stats.avg_title_words = title_words / pairs_.size();
  }
  return stats;
}

}  // namespace cyqr
