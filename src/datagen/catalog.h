#ifndef CYCLEQR_DATAGEN_CATALOG_H_
#define CYCLEQR_DATAGEN_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/rng.h"

namespace cyqr {

/// One catalog attribute: the canonical token that appears in item titles
/// plus the colloquial phrases users type instead ("senior" <- "for
/// grandpa"). The gap between the two vocabularies is exactly the semantic
/// matching problem the paper attacks.
struct AttributeSpec {
  std::string canonical;                 // Title-side token.
  std::vector<std::string> colloquial;   // Query-side phrases (may be multiword).
};

/// Ontology of one product category.
struct CategorySpec {
  std::string name;                      // Internal id, e.g. "phone".
  std::vector<std::string> head;         // Canonical head tokens ("mobile phone").
  std::vector<std::string> query_heads;  // What users type ("cellphone", "phone").
  std::vector<std::string> brands;
  std::map<std::string, std::string> brand_nicknames;  // nickname -> brand.
  std::vector<AttributeSpec> attributes;
  std::vector<std::string> marketing;    // Title filler ("official", "2020").
  double base_price = 50.0;
};

/// A catalog item. Titles are long, keyword-stuffed token sequences in the
/// canonical vocabulary, mimicking e-commerce item titles (Table I: titles
/// average ~50 words vs ~6 for queries).
struct Product {
  int64_t id = 0;
  std::string category;
  std::string brand;
  std::string model;
  std::vector<std::string> attributes;   // Canonical attribute tokens.
  std::vector<std::string> title_tokens;
  double price = 0.0;
  double quality = 1.0;                  // Intrinsic appeal in [0.2, 2].
};

/// What a query means, independent of its surface form.
struct QueryIntent {
  std::string category;                  // Empty when unparseable.
  std::string brand;                     // Empty = any brand.
  std::vector<std::string> attributes;   // Canonical attribute tokens.
};

/// A concrete query: surface tokens + ground-truth intent.
struct QuerySpec {
  std::vector<std::string> tokens;
  QueryIntent intent;
  bool is_colloquial = false;  // Uses query-side-only vocabulary ("hard").
};

struct CatalogConfig {
  int64_t models_per_brand = 3;
  uint64_t seed = 7;
};

/// The synthetic e-commerce world: a fixed ontology (categories, brands,
/// nicknames, attributes, colloquialisms) instantiated into products.
/// Substitutes for the paper's proprietary JD catalog + click logs; see
/// DESIGN.md "Substitutions".
class Catalog {
 public:
  static Catalog Generate(const CatalogConfig& config);

  const std::vector<Product>& products() const { return products_; }
  const std::vector<CategorySpec>& categories() const { return categories_; }
  const Product& product(int64_t id) const;

  /// Samples a query. With probability ~0.45 the query uses colloquial
  /// phrases / nicknames / vague words (the hard long-tail the paper's
  /// model targets); otherwise it is close to canonical.
  QuerySpec SampleQuery(Rng& rng) const;

  /// Canonical surface for an intent: [brand?] attrs... head — the kind of
  /// query the inverted index retrieves well.
  std::vector<std::string> CanonicalQueryTokens(const QueryIntent& intent) const;

  /// Best-effort intent parse of arbitrary query tokens using the ontology
  /// (canonical + colloquial vocabulary). Used by the oracle judge.
  QueryIntent ParseQuery(const std::vector<std::string>& tokens) const;

  /// Relevance of a product to an intent: 0 = category/brand mismatch,
  /// otherwise 1 + (fraction of requested attributes the product has).
  double MatchScore(const QueryIntent& intent, const Product& product) const;

  /// All products matching an intent with score > 0.
  std::vector<int64_t> MatchingProducts(const QueryIntent& intent) const;

  const CategorySpec* FindCategory(const std::string& name) const;

 private:
  std::vector<CategorySpec> categories_;
  std::vector<Product> products_;
  // Token -> category index lookups for parsing.
  std::map<std::string, int> head_to_category_;
  std::map<std::string, int> brand_to_category_;
  std::map<std::string, std::string> nickname_to_brand_;
  // Attribute tokens may be shared across categories ("mens", "wireless").
  std::map<std::string, std::vector<int>> attr_to_categories_;
  // Colloquial phrase (space-joined) -> canonical attribute candidates.
  // Phrases can be ambiguous across categories ("for grandpa" means
  // "senior" phones but "adult" milk powder); the parser keeps every
  // candidate and lets the category vote decide.
  std::map<std::string, std::vector<std::string>> colloquial_to_canonical_;
};

}  // namespace cyqr

#endif  // CYCLEQR_DATAGEN_CATALOG_H_
