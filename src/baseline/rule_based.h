#ifndef CYCLEQR_BASELINE_RULE_BASED_H_
#define CYCLEQR_BASELINE_RULE_BASED_H_

#include <string>
#include <vector>

#include "datagen/synonyms.h"

namespace cyqr {

/// The paper's production baseline (Section IV-C3): "starts from a
/// human-curated synonym phrase dictionary [and] simply replaces the phrase
/// in the query with its synonym phrase" — high lexical similarity, low
/// diversity, and context-free (the "cherry" polysemy failure).
class RuleBasedRewriter {
 public:
  /// `dictionary` must outlive the rewriter.
  explicit RuleBasedRewriter(const SynonymDictionary* dictionary);

  /// Up to `k` rewrites produced by replacing matching phrases, one
  /// replacement per rewrite (different phrases give different rewrites).
  std::vector<std::vector<std::string>> Rewrite(
      const std::vector<std::string>& query_tokens, int64_t k = 3) const;

  /// True if at least one dictionary phrase occurs in the query — the
  /// paper's Table VI evaluation set is restricted to such queries.
  bool HasSynonym(const std::vector<std::string>& query_tokens) const;

 private:
  const SynonymDictionary* dictionary_;
};

}  // namespace cyqr

#endif  // CYCLEQR_BASELINE_RULE_BASED_H_
