#include "baseline/rule_based.h"

#include <algorithm>

#include "core/check.h"
#include "core/string_util.h"

namespace cyqr {

RuleBasedRewriter::RuleBasedRewriter(const SynonymDictionary* dictionary)
    : dictionary_(dictionary) {
  CYQR_CHECK(dictionary != nullptr);
}

std::vector<std::vector<std::string>> RuleBasedRewriter::Rewrite(
    const std::vector<std::string>& query_tokens, int64_t k) const {
  std::vector<std::vector<std::string>> out;
  // Replace each matching phrase occurrence independently (longest match
  // first at each position), producing one rewrite per replacement site.
  for (size_t i = 0; i < query_tokens.size() &&
                     static_cast<int64_t>(out.size()) < k;
       ++i) {
    for (size_t len = std::min<size_t>(3, query_tokens.size() - i); len >= 1;
         --len) {
      std::string phrase = query_tokens[i];
      for (size_t j = 1; j < len; ++j) phrase += " " + query_tokens[i + j];
      auto it = dictionary_->entries().find(phrase);
      if (it == dictionary_->entries().end()) continue;
      std::vector<std::string> rewritten(query_tokens.begin(),
                                         query_tokens.begin() + i);
      for (std::string& w : SplitString(it->second)) {
        rewritten.push_back(std::move(w));
      }
      rewritten.insert(rewritten.end(), query_tokens.begin() + i + len,
                       query_tokens.end());
      if (rewritten != query_tokens &&
          std::find(out.begin(), out.end(), rewritten) == out.end()) {
        out.push_back(std::move(rewritten));
      }
      i += len - 1;  // Skip past the replaced phrase.
      break;
    }
  }
  return out;
}

bool RuleBasedRewriter::HasSynonym(
    const std::vector<std::string>& query_tokens) const {
  std::vector<std::string> unused;
  return dictionary_->Apply(query_tokens, &unused);
}

}  // namespace cyqr
