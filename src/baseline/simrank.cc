#include "baseline/simrank.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "core/check.h"

namespace cyqr {

namespace {

using SparseRow = std::unordered_map<int64_t, double>;

/// evidence(a, b) = sum_{k=1..common} 2^-k — the SimRank++ evidence factor
/// rewarding many shared neighbors.
double Evidence(int64_t common) {
  double e = 0.0;
  double term = 0.5;
  for (int64_t k = 0; k < common; ++k) {
    e += term;
    term *= 0.5;
  }
  return e;
}

}  // namespace

SimRankRewriter::SimRankRewriter(const ClickLog* log, const Options& options)
    : log_(log), options_(options) {
  CYQR_CHECK(log != nullptr);
  const auto& pairs = log->pairs();
  const int64_t num_queries = static_cast<int64_t>(log->queries().size());

  // Weighted bipartite adjacency, truncated to the heaviest neighbors.
  std::map<int64_t, std::vector<std::pair<int64_t, double>>> q_adj;  // q -> (item, w)
  std::map<int64_t, std::vector<std::pair<int64_t, double>>> i_adj;  // item -> (q, w)
  for (const ClickPair& p : pairs) {
    q_adj[p.query_index].emplace_back(p.product_id,
                                      static_cast<double>(p.clicks));
    i_adj[p.product_id].emplace_back(p.query_index,
                                     static_cast<double>(p.clicks));
  }
  auto truncate_and_normalize =
      [this](std::map<int64_t, std::vector<std::pair<int64_t, double>>>& adj) {
        for (auto& [node, edges] : adj) {
          std::sort(edges.begin(), edges.end(),
                    [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
          if (static_cast<int64_t>(edges.size()) > options_.max_neighbors) {
            edges.resize(options_.max_neighbors);
          }
          double total = 0.0;
          for (const auto& e : edges) total += e.second;
          for (auto& e : edges) e.second /= total;
        }
      };
  truncate_and_normalize(q_adj);
  truncate_and_normalize(i_adj);

  // Candidate pairs: queries sharing an item; items sharing a query.
  std::map<std::pair<int64_t, int64_t>, int64_t> q_common;
  for (const auto& [item, qs] : i_adj) {
    for (size_t i = 0; i < qs.size(); ++i) {
      for (size_t j = i + 1; j < qs.size(); ++j) {
        auto key = std::minmax(qs[i].first, qs[j].first);
        ++q_common[{key.first, key.second}];
      }
    }
  }
  std::map<std::pair<int64_t, int64_t>, int64_t> i_common;
  for (const auto& [q, items] : q_adj) {
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        auto key = std::minmax(items[i].first, items[j].first);
        ++i_common[{key.first, key.second}];
      }
    }
  }

  // Iterate the SimRank++ recurrence on the candidate pairs.
  std::map<std::pair<int64_t, int64_t>, double> q_sim;
  std::map<std::pair<int64_t, int64_t>, double> i_sim;
  auto i_sim_at = [&i_sim](int64_t a, int64_t b) -> double {
    if (a == b) return 1.0;
    auto key = std::minmax(a, b);
    auto it = i_sim.find({key.first, key.second});
    return it == i_sim.end() ? 0.0 : it->second;
  };
  auto q_sim_at = [&q_sim](int64_t a, int64_t b) -> double {
    if (a == b) return 1.0;
    auto key = std::minmax(a, b);
    auto it = q_sim.find({key.first, key.second});
    return it == q_sim.end() ? 0.0 : it->second;
  };

  for (int iter = 0; iter < options_.iterations; ++iter) {
    std::map<std::pair<int64_t, int64_t>, double> q_next;
    for (const auto& [key, common] : q_common) {
      const auto& na = q_adj[key.first];
      const auto& nb = q_adj[key.second];
      double s = 0.0;
      for (const auto& [ia, wa] : na) {
        for (const auto& [ib, wb] : nb) {
          s += wa * wb * i_sim_at(ia, ib);
        }
      }
      q_next[key] = Evidence(common) * options_.decay * s;
    }
    std::map<std::pair<int64_t, int64_t>, double> i_next;
    for (const auto& [key, common] : i_common) {
      const auto& na = i_adj[key.first];
      const auto& nb = i_adj[key.second];
      double s = 0.0;
      for (const auto& [qa, wa] : na) {
        for (const auto& [qb, wb] : nb) {
          s += wa * wb * q_sim_at(qa, qb);
        }
      }
      i_next[key] = Evidence(common) * options_.decay * s;
    }
    q_sim = std::move(q_next);
    i_sim = std::move(i_next);
  }

  sims_.assign(num_queries, {});
  for (const auto& [key, s] : q_sim) {
    if (s <= 0.0) continue;
    sims_[key.first].emplace_back(key.second, s);
    sims_[key.second].emplace_back(key.first, s);
  }
  for (auto& row : sims_) {
    std::sort(row.begin(), row.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
  }
}

std::vector<SimRankRewriter::Similar> SimRankRewriter::MostSimilar(
    int64_t query_index, int64_t k) const {
  CYQR_CHECK(query_index >= 0 &&
             query_index < static_cast<int64_t>(sims_.size()));
  std::vector<Similar> out;
  for (const auto& [other, s] : sims_[query_index]) {
    out.push_back({other, s});
    if (static_cast<int64_t>(out.size()) >= k) break;
  }
  return out;
}

double SimRankRewriter::Similarity(int64_t a, int64_t b) const {
  if (a == b) return 1.0;
  CYQR_CHECK(a >= 0 && a < static_cast<int64_t>(sims_.size()));
  for (const auto& [other, s] : sims_[a]) {
    if (other == b) return s;
  }
  return 0.0;
}

}  // namespace cyqr
