#ifndef CYCLEQR_BASELINE_SIMRANK_H_
#define CYCLEQR_BASELINE_SIMRANK_H_

#include <cstdint>
#include <vector>

#include "datagen/click_log.h"

namespace cyqr {

/// SimRank++ (Antonellis et al. [25]) over the bipartite query-item click
/// graph: similar queries share clicked items, with evidence weighting by
/// click counts. The related-work baseline the paper calls "not scalable to
/// the current industrial scale" — quadratic in co-clicked query pairs,
/// which this implementation demonstrates on the ablation bench.
class SimRankRewriter {
 public:
  struct Options {
    int iterations = 5;
    double decay = 0.8;        // C in the SimRank recurrence.
    int64_t max_neighbors = 64;  // Evidence-graph truncation per node.
  };

  SimRankRewriter(const ClickLog* log, const Options& options);

  /// The `k` most similar distinct queries to queries()[query_index],
  /// sorted by similarity descending.
  struct Similar {
    int64_t query_index = 0;
    double similarity = 0.0;
  };
  std::vector<Similar> MostSimilar(int64_t query_index, int64_t k = 3) const;

  /// Pairwise query similarity after convergence (0 for never co-clicked).
  double Similarity(int64_t a, int64_t b) const;

 private:
  const ClickLog* log_;
  Options options_;
  // Sparse symmetric similarity: (min_idx, max_idx) -> score.
  std::vector<std::vector<std::pair<int64_t, double>>> sims_;
};

}  // namespace cyqr

#endif  // CYCLEQR_BASELINE_SIMRANK_H_
