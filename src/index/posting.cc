#include "index/posting.h"

#include <cstddef>

namespace cyqr {

PostingList IntersectLists(const PostingList& a, const PostingList& b,
                           RetrievalCost* cost) {
  PostingList out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (cost != nullptr) ++cost->postings_scanned;
    if (a[i] == b[j]) {
      out.push_back(a[i]);
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

PostingList UnionLists(const PostingList& a, const PostingList& b,
                       RetrievalCost* cost) {
  PostingList out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (cost != nullptr) ++cost->postings_scanned;
    if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
      out.push_back(a[i++]);
    } else if (i >= a.size() || b[j] < a[i]) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace cyqr
