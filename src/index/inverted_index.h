#ifndef CYCLEQR_INDEX_INVERTED_INDEX_H_
#define CYCLEQR_INDEX_INVERTED_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "index/posting.h"

namespace cyqr {

/// Term -> sorted posting list index over tokenized documents — the
/// candidate-retrieval core of the simulated search engine ("built to
/// efficiently retrieve candidate items based on term matching").
class InvertedIndex {
 public:
  /// Documents must be added in increasing id order to keep postings
  /// sorted without re-sorting.
  void AddDocument(DocId id, const std::vector<std::string>& tokens);

  /// Posting list of a term; empty list for unknown terms.
  const PostingList& Lookup(const std::string& term) const;

  int64_t num_documents() const { return num_documents_; }
  int64_t num_terms() const {
    return static_cast<int64_t>(postings_.size());
  }
  int64_t total_postings() const { return total_postings_; }

 private:
  std::unordered_map<std::string, PostingList> postings_;
  int64_t num_documents_ = 0;
  int64_t total_postings_ = 0;
};

}  // namespace cyqr

#endif  // CYCLEQR_INDEX_INVERTED_INDEX_H_
