#ifndef CYCLEQR_INDEX_INVERTED_INDEX_H_
#define CYCLEQR_INDEX_INVERTED_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "index/posting.h"

namespace cyqr {

/// Term -> sorted posting list index over tokenized documents — the
/// candidate-retrieval core of the simulated search engine ("built to
/// efficiently retrieve candidate items based on term matching").
class InvertedIndex {
 public:
  /// Documents must be added in increasing id order to keep postings
  /// sorted without re-sorting.
  void AddDocument(DocId id, const std::vector<std::string>& tokens);

  /// Posting list of a term; empty list for unknown terms.
  const PostingList& Lookup(const std::string& term) const;

  /// Rebuilds an index from raw postings — the persistence restore path.
  /// Every list must be sorted, duplicate-free, and reference only ids in
  /// [0, num_documents); a snapshot that violates this is rejected rather
  /// than half-loaded.
  [[nodiscard]] static Result<InvertedIndex> FromPostings(
      std::unordered_map<std::string, PostingList> postings,
      int64_t num_documents);

  /// Full term -> postings map (iteration for persistence/stats).
  const std::unordered_map<std::string, PostingList>& postings() const {
    return postings_;
  }

  int64_t num_documents() const { return num_documents_; }
  int64_t num_terms() const {
    return static_cast<int64_t>(postings_.size());
  }
  int64_t total_postings() const { return total_postings_; }

 private:
  std::unordered_map<std::string, PostingList> postings_;
  int64_t num_documents_ = 0;
  int64_t total_postings_ = 0;
};

}  // namespace cyqr

#endif  // CYCLEQR_INDEX_INVERTED_INDEX_H_
