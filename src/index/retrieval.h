#ifndef CYCLEQR_INDEX_RETRIEVAL_H_
#define CYCLEQR_INDEX_RETRIEVAL_H_

#include <string>
#include <vector>

#include "index/tree_merge.h"

namespace cyqr {

/// Candidate retrieval over the inverted index, with both strategies of
/// Section III-H: one syntax tree per query ("straightforward ...
/// unfortunately inefficient") and one merged tree for all queries.
class RetrievalEngine {
 public:
  /// `index` must outlive the engine.
  explicit RetrievalEngine(const InvertedIndex* index);

  struct Result {
    PostingList docs;
    RetrievalCost cost;
    int64_t tree_nodes = 0;  // Total syntax-tree nodes constructed.
  };

  /// Retrieves one query (AND of its terms), optionally capped to the
  /// first `max_docs` candidates (paper: <= 1000 per rewritten query).
  Result RetrieveOne(const std::vector<std::string>& query,
                     int64_t max_docs = 0) const;

  /// Builds a separate tree per query, evaluates each, unions the results.
  Result RetrieveSeparate(const std::vector<std::vector<std::string>>& queries,
                          int64_t max_docs_per_query = 0) const;

  /// Builds one merged tree (Figure 5) and evaluates it once.
  Result RetrieveMerged(const std::vector<std::vector<std::string>>& queries)
      const;

 private:
  const InvertedIndex* index_;
};

}  // namespace cyqr

#endif  // CYCLEQR_INDEX_RETRIEVAL_H_
