#include "index/syntax_tree.h"

#include <set>

#include "core/check.h"

namespace cyqr {

namespace {

int64_t CountNodes(const SyntaxNode* node) {
  if (node == nullptr) return 0;
  int64_t n = 1;
  for (const auto& child : node->children) n += CountNodes(child.get());
  return n;
}

void Render(const SyntaxNode* node, std::string* out) {
  if (node == nullptr) return;
  switch (node->type) {
    case SyntaxNode::Type::kTerm:
      *out += node->term;
      return;
    case SyntaxNode::Type::kAnd:
    case SyntaxNode::Type::kOr: {
      const char* sep = node->type == SyntaxNode::Type::kAnd ? " & " : " | ";
      *out += "(";
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (i > 0) *out += sep;
        Render(node->children[i].get(), out);
      }
      *out += ")";
      return;
    }
  }
}

PostingList EvaluateNode(const SyntaxNode* node, const InvertedIndex& index,
                         RetrievalCost* cost) {
  if (cost != nullptr) ++cost->nodes_evaluated;
  switch (node->type) {
    case SyntaxNode::Type::kTerm: {
      const PostingList& list = index.Lookup(node->term);
      if (cost != nullptr) {
        cost->postings_scanned += static_cast<int64_t>(list.size());
      }
      return list;
    }
    case SyntaxNode::Type::kAnd: {
      CYQR_CHECK(!node->children.empty());
      PostingList acc =
          EvaluateNode(node->children[0].get(), index, cost);
      for (size_t i = 1; i < node->children.size() && !acc.empty(); ++i) {
        acc = IntersectLists(
            acc, EvaluateNode(node->children[i].get(), index, cost), cost);
      }
      return acc;
    }
    case SyntaxNode::Type::kOr: {
      CYQR_CHECK(!node->children.empty());
      PostingList acc =
          EvaluateNode(node->children[0].get(), index, cost);
      for (size_t i = 1; i < node->children.size(); ++i) {
        acc = UnionLists(
            acc, EvaluateNode(node->children[i].get(), index, cost), cost);
      }
      return acc;
    }
  }
  return {};
}

}  // namespace

std::unique_ptr<SyntaxNode> SyntaxNode::Term(std::string term) {
  auto node = std::make_unique<SyntaxNode>();
  node->type = Type::kTerm;
  node->term = std::move(term);
  return node;
}

std::unique_ptr<SyntaxNode> SyntaxNode::And() {
  auto node = std::make_unique<SyntaxNode>();
  node->type = Type::kAnd;
  return node;
}

std::unique_ptr<SyntaxNode> SyntaxNode::Or() {
  auto node = std::make_unique<SyntaxNode>();
  node->type = Type::kOr;
  return node;
}

SyntaxTree::SyntaxTree(std::unique_ptr<SyntaxNode> root)
    : root_(std::move(root)) {}

SyntaxTree SyntaxTree::FromQuery(const std::vector<std::string>& tokens) {
  if (tokens.empty()) return SyntaxTree();
  std::set<std::string> seen;
  auto root = SyntaxNode::And();
  for (const std::string& tok : tokens) {
    if (!seen.insert(tok).second) continue;
    root->children.push_back(SyntaxNode::Term(tok));
  }
  if (root->children.size() == 1) {
    return SyntaxTree(std::move(root->children[0]));
  }
  return SyntaxTree(std::move(root));
}

int64_t SyntaxTree::NodeCount() const { return CountNodes(root_.get()); }

std::string SyntaxTree::ToString() const {
  std::string out;
  Render(root_.get(), &out);
  return out;
}

PostingList SyntaxTree::Evaluate(const InvertedIndex& index,
                                 RetrievalCost* cost) const {
  if (root_ == nullptr) return {};
  return EvaluateNode(root_.get(), index, cost);
}

}  // namespace cyqr
