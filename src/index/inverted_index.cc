#include "index/inverted_index.h"

#include <set>

#include "core/check.h"

namespace cyqr {

void InvertedIndex::AddDocument(DocId id,
                                const std::vector<std::string>& tokens) {
  ++num_documents_;
  std::set<std::string> unique(tokens.begin(), tokens.end());
  for (const std::string& term : unique) {
    PostingList& list = postings_[term];
    CYQR_CHECK_MSG(list.empty() || list.back() < id,
                   "documents must be added in increasing id order");
    list.push_back(id);
    ++total_postings_;
  }
}

const PostingList& InvertedIndex::Lookup(const std::string& term) const {
  static const PostingList kEmpty;
  auto it = postings_.find(term);
  return it == postings_.end() ? kEmpty : it->second;
}

}  // namespace cyqr
