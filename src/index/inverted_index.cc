#include "index/inverted_index.h"

#include <set>

#include "core/check.h"

namespace cyqr {

void InvertedIndex::AddDocument(DocId id,
                                const std::vector<std::string>& tokens) {
  ++num_documents_;
  std::set<std::string> unique(tokens.begin(), tokens.end());
  for (const std::string& term : unique) {
    PostingList& list = postings_[term];
    CYQR_CHECK_MSG(list.empty() || list.back() < id,
                   "documents must be added in increasing id order");
    list.push_back(id);
    ++total_postings_;
  }
}

const PostingList& InvertedIndex::Lookup(const std::string& term) const {
  static const PostingList kEmpty;
  auto it = postings_.find(term);
  return it == postings_.end() ? kEmpty : it->second;
}

Result<InvertedIndex> InvertedIndex::FromPostings(
    std::unordered_map<std::string, PostingList> postings,
    int64_t num_documents) {
  if (num_documents < 0) {
    return Status::InvalidArgument("negative document count");
  }
  int64_t total = 0;
  for (const auto& [term, list] : postings) {
    if (term.empty()) return Status::InvalidArgument("empty term");
    if (list.empty()) {
      return Status::InvalidArgument("empty posting list for term '" +
                                     term + "'");
    }
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] < 0 || list[i] >= num_documents) {
        return Status::OutOfRange("posting id out of range for term '" +
                                  term + "'");
      }
      if (i > 0 && list[i] <= list[i - 1]) {
        return Status::InvalidArgument(
            "posting list not strictly increasing for term '" + term +
            "'");
      }
    }
    total += static_cast<int64_t>(list.size());
  }
  InvertedIndex index;
  index.postings_ = std::move(postings);
  index.num_documents_ = num_documents;
  index.total_postings_ = total;
  return index;
}

}  // namespace cyqr
