#ifndef CYCLEQR_INDEX_TREE_MERGE_H_
#define CYCLEQR_INDEX_TREE_MERGE_H_

#include <set>
#include <string>
#include <vector>

#include "index/syntax_tree.h"

namespace cyqr {

/// Position-aligned merge state: the merged query is an AND over groups;
/// each group is an OR over the tokens the input queries put at that
/// aligned position (Figure 5: Red & Men & (Sandals | Slippers | Anklet)).
struct MergedGroup {
  std::set<std::string> tokens;
  int64_t queries_contributing = 0;  // How many input queries hit the group.
};

/// Merges the original query and its rewrites into one syntax tree
/// (Section III-H). Queries are aligned greedily by longest common
/// subsequence against the running group sequence; tokens aligned to the
/// same position form an OR group, and groups reached by every query stay
/// AND-required. The merged tree's result is a superset of the union of the
/// individual queries' results (no recall loss), at a fraction of the
/// evaluation cost of separate trees.
class TreeMerger {
 public:
  /// Merge result plus bookkeeping for the cost study.
  struct Result {
    SyntaxTree tree;
    int64_t groups_total = 0;
    int64_t groups_required = 0;  // Groups present in every query.
  };

  static Result Merge(const std::vector<std::vector<std::string>>& queries);
};

}  // namespace cyqr

#endif  // CYCLEQR_INDEX_TREE_MERGE_H_
