#include "index/retrieval.h"

#include "core/check.h"
#include "obs/metrics.h"

namespace cyqr {

namespace {

// Process-wide retrieval telemetry: postings touched and tree nodes
// executed per strategy (the separate-vs-merged efficiency comparison of
// Section III-H, as live counters instead of a one-off experiment).
struct RetrievalInstruments {
  Counter* calls;
  Counter* postings_scanned;
  Counter* nodes_evaluated;
};

RetrievalInstruments MakeInstruments(const char* strategy) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricLabels labels = {{"strategy", strategy}};
  RetrievalInstruments in;
  in.calls = registry.GetCounter("cyqr_index_retrieval_calls_total", labels);
  in.postings_scanned = registry.GetCounter(
      "cyqr_index_retrieval_postings_scanned_total", labels);
  in.nodes_evaluated = registry.GetCounter(
      "cyqr_index_retrieval_nodes_evaluated_total", labels);
  return in;
}

// One instrument set per strategy label, resolved on first use.
const RetrievalInstruments& InstrumentsFor(const char* strategy) {
  static const RetrievalInstruments one = MakeInstruments("one");
  static const RetrievalInstruments separate = MakeInstruments("separate");
  static const RetrievalInstruments merged = MakeInstruments("merged");
  if (strategy[0] == 'o') return one;
  if (strategy[0] == 's') return separate;
  return merged;
}

void BookRetrieval(const char* strategy,
                   const RetrievalEngine::Result& result) {
  const RetrievalInstruments& in = InstrumentsFor(strategy);
  in.calls->Increment();
  in.postings_scanned->Increment(result.cost.postings_scanned);
  in.nodes_evaluated->Increment(result.cost.nodes_evaluated);
}

}  // namespace

RetrievalEngine::RetrievalEngine(const InvertedIndex* index)
    : index_(index) {
  CYQR_CHECK(index != nullptr);
}

RetrievalEngine::Result RetrievalEngine::RetrieveOne(
    const std::vector<std::string>& query, int64_t max_docs) const {
  Result result;
  SyntaxTree tree = SyntaxTree::FromQuery(query);
  result.tree_nodes = tree.NodeCount();
  result.docs = tree.Evaluate(*index_, &result.cost);
  if (max_docs > 0 &&
      static_cast<int64_t>(result.docs.size()) > max_docs) {
    result.docs.resize(max_docs);
  }
  BookRetrieval("one", result);
  return result;
}

RetrievalEngine::Result RetrievalEngine::RetrieveSeparate(
    const std::vector<std::vector<std::string>>& queries,
    int64_t max_docs_per_query) const {
  Result result;
  for (const auto& query : queries) {
    Result one = RetrieveOne(query, max_docs_per_query);
    result.tree_nodes += one.tree_nodes;
    result.cost += one.cost;
    result.docs = UnionLists(result.docs, one.docs, &result.cost);
  }
  BookRetrieval("separate", result);
  return result;
}

RetrievalEngine::Result RetrievalEngine::RetrieveMerged(
    const std::vector<std::vector<std::string>>& queries) const {
  Result result;
  TreeMerger::Result merged = TreeMerger::Merge(queries);
  result.tree_nodes = merged.tree.NodeCount();
  result.docs = merged.tree.Evaluate(*index_, &result.cost);
  BookRetrieval("merged", result);
  return result;
}

}  // namespace cyqr
