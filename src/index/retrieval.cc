#include "index/retrieval.h"

#include "core/check.h"

namespace cyqr {

RetrievalEngine::RetrievalEngine(const InvertedIndex* index)
    : index_(index) {
  CYQR_CHECK(index != nullptr);
}

RetrievalEngine::Result RetrievalEngine::RetrieveOne(
    const std::vector<std::string>& query, int64_t max_docs) const {
  Result result;
  SyntaxTree tree = SyntaxTree::FromQuery(query);
  result.tree_nodes = tree.NodeCount();
  result.docs = tree.Evaluate(*index_, &result.cost);
  if (max_docs > 0 &&
      static_cast<int64_t>(result.docs.size()) > max_docs) {
    result.docs.resize(max_docs);
  }
  return result;
}

RetrievalEngine::Result RetrievalEngine::RetrieveSeparate(
    const std::vector<std::vector<std::string>>& queries,
    int64_t max_docs_per_query) const {
  Result result;
  for (const auto& query : queries) {
    Result one = RetrieveOne(query, max_docs_per_query);
    result.tree_nodes += one.tree_nodes;
    result.cost += one.cost;
    result.docs = UnionLists(result.docs, one.docs, &result.cost);
  }
  return result;
}

RetrievalEngine::Result RetrievalEngine::RetrieveMerged(
    const std::vector<std::vector<std::string>>& queries) const {
  Result result;
  TreeMerger::Result merged = TreeMerger::Merge(queries);
  result.tree_nodes = merged.tree.NodeCount();
  result.docs = merged.tree.Evaluate(*index_, &result.cost);
  return result;
}

}  // namespace cyqr
