#ifndef CYCLEQR_INDEX_BM25_H_
#define CYCLEQR_INDEX_BM25_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.h"

namespace cyqr {

/// Okapi BM25 relevance scoring over the same tokenized corpus the
/// inverted index retrieves from — the classic term-matching ranker that
/// scores the candidates the syntax trees produce.
class Bm25Scorer {
 public:
  struct Options {
    double k1 = 1.2;
    double b = 0.75;
  };

  Bm25Scorer() : Bm25Scorer(Options()) {}
  explicit Bm25Scorer(const Options& options);

  /// Documents must be added in increasing id order (matching the index).
  void AddDocument(DocId id, const std::vector<std::string>& tokens);

  /// BM25 score of a document for a tokenized query; 0 for unknown docs.
  double Score(const std::vector<std::string>& query, DocId doc) const;

  /// Scores and sorts candidates descending (ties by ascending id).
  struct Scored {
    DocId doc = 0;
    double score = 0.0;
  };
  std::vector<Scored> Rank(const std::vector<std::string>& query,
                           const PostingList& candidates) const;

  int64_t num_documents() const {
    return static_cast<int64_t>(doc_lengths_.size());
  }

 private:
  Options options_;
  // term -> document frequency.
  std::unordered_map<std::string, int64_t> doc_freq_;
  // doc -> (term -> term frequency); docs are dense ids from 0.
  std::vector<std::unordered_map<std::string, int64_t>> term_freq_;
  std::vector<int64_t> doc_lengths_;
  double total_length_ = 0.0;
};

}  // namespace cyqr

#endif  // CYCLEQR_INDEX_BM25_H_
