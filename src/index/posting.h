#ifndef CYCLEQR_INDEX_POSTING_H_
#define CYCLEQR_INDEX_POSTING_H_

#include <cstdint>
#include <vector>

namespace cyqr {

using DocId = int64_t;

/// A sorted, duplicate-free document id list.
using PostingList = std::vector<DocId>;

/// Work counters for retrieval-cost accounting (Section III-H: the merged
/// syntax tree exists to reduce exactly these numbers).
struct RetrievalCost {
  int64_t postings_scanned = 0;  // Posting entries touched.
  int64_t nodes_evaluated = 0;   // Syntax tree nodes executed.

  RetrievalCost& operator+=(const RetrievalCost& other) {
    postings_scanned += other.postings_scanned;
    nodes_evaluated += other.nodes_evaluated;
    return *this;
  }
};

/// Sorted-list intersection; adds the scanned entries to `cost`.
PostingList IntersectLists(const PostingList& a, const PostingList& b,
                           RetrievalCost* cost);

/// Sorted-list union; adds the scanned entries to `cost`.
PostingList UnionLists(const PostingList& a, const PostingList& b,
                       RetrievalCost* cost);

}  // namespace cyqr

#endif  // CYCLEQR_INDEX_POSTING_H_
