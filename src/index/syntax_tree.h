#ifndef CYCLEQR_INDEX_SYNTAX_TREE_H_
#define CYCLEQR_INDEX_SYNTAX_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "index/inverted_index.h"

namespace cyqr {

/// A boolean retrieval expression over index terms: the "syntax tree" the
/// search engine builds from a query before extracting document lists
/// (Section III-H, Figure 5). "&" nodes intersect children, "|" nodes
/// union them, leaves look up one term.
struct SyntaxNode {
  enum class Type { kTerm, kAnd, kOr };

  Type type = Type::kTerm;
  std::string term;  // For kTerm.
  std::vector<std::unique_ptr<SyntaxNode>> children;

  static std::unique_ptr<SyntaxNode> Term(std::string term);
  static std::unique_ptr<SyntaxNode> And();
  static std::unique_ptr<SyntaxNode> Or();
};

class SyntaxTree {
 public:
  SyntaxTree() = default;
  explicit SyntaxTree(std::unique_ptr<SyntaxNode> root);

  /// AND-of-terms tree for a single tokenized query (duplicates removed).
  static SyntaxTree FromQuery(const std::vector<std::string>& tokens);

  const SyntaxNode* root() const { return root_.get(); }
  bool empty() const { return root_ == nullptr; }

  int64_t NodeCount() const;

  /// "(red & mens & (sandals | slippers))".
  std::string ToString() const;

  /// Executes the tree against the index, accumulating work into `cost`.
  PostingList Evaluate(const InvertedIndex& index, RetrievalCost* cost) const;

 private:
  std::unique_ptr<SyntaxNode> root_;
};

}  // namespace cyqr

#endif  // CYCLEQR_INDEX_SYNTAX_TREE_H_
