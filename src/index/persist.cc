#include "index/persist.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/checksum.h"
#include "core/file_util.h"

namespace cyqr {

namespace {

// Footer line:
// "#cyqr-index-footer docs=<D> terms=<T> postings=<P> fnv1a=<16 hex>".
// Detection does not rely on the '#': the footer must be the last line.
constexpr char kFooterTag[] = "#cyqr-index-footer";

std::string MakeFooter(uint64_t docs, uint64_t terms, uint64_t postings,
                       uint64_t checksum) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s docs=%" PRIu64 " terms=%" PRIu64 " postings=%" PRIu64
                " fnv1a=%016" PRIx64,
                kFooterTag, docs, terms, postings, checksum);
  return buf;
}

bool ParseFooter(const std::string& line, uint64_t* docs, uint64_t* terms,
                 uint64_t* postings, uint64_t* checksum) {
  return std::sscanf(line.c_str(),
                     "#cyqr-index-footer docs=%" SCNu64 " terms=%" SCNu64
                     " postings=%" SCNu64 " fnv1a=%" SCNx64,
                     docs, terms, postings, checksum) == 4;
}

/// Parses a complete base-10 DocId out of [begin, end); false on any
/// trailing garbage so "12x" cannot load as 12.
bool ParseDocId(const char* begin, const char* end, DocId* out) {
  if (begin == end) return false;
  char* parsed_end = nullptr;
  const long long value = std::strtoll(begin, &parsed_end, 10);
  if (parsed_end != end) return false;
  *out = value;
  return true;
}

}  // namespace

Status SaveInvertedIndex(const InvertedIndex& index,
                         const std::string& path) {
  std::vector<const std::string*> terms;
  terms.reserve(index.postings().size());
  for (const auto& [term, list] : index.postings()) {
    terms.push_back(&term);
  }
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) {
              return *a < *b;
            });

  std::ostringstream payload;
  for (const std::string* term : terms) {
    payload << *term;
    char sep = '\t';
    for (DocId id : index.postings().at(*term)) {
      payload << sep << id;
      sep = ' ';
    }
    payload << '\n';
  }
  std::string data = payload.str();
  const uint64_t checksum = Fnv1a64(data);
  data += MakeFooter(static_cast<uint64_t>(index.num_documents()),
                     terms.size(),
                     static_cast<uint64_t>(index.total_postings()),
                     checksum);
  data += '\n';
  return WriteStringToFileAtomic(path, data);
}

Result<InvertedIndex> LoadInvertedIndex(const std::string& path) {
  Result<std::string> file = ReadFileToString(path);
  if (!file.ok()) return file.status();
  const std::string& content = file.value();
  if (content.empty()) return Status::IoError("zero-length file: " + path);
  if (content.back() != '\n') {
    return Status::IoError("truncated file (no trailing newline): " + path);
  }

  const std::string body = content.substr(0, content.size() - 1);
  const size_t last_newline = body.rfind('\n');
  const size_t footer_begin =
      last_newline == std::string::npos ? 0 : last_newline + 1;
  uint64_t expected_docs = 0;
  uint64_t expected_terms = 0;
  uint64_t expected_postings = 0;
  uint64_t expected_checksum = 0;
  if (!ParseFooter(body.substr(footer_begin), &expected_docs,
                   &expected_terms, &expected_postings,
                   &expected_checksum)) {
    return Status::IoError("missing integrity footer: " + path);
  }
  const std::string payload = content.substr(0, footer_begin);
  if (Fnv1a64(payload) != expected_checksum) {
    return Status::IoError("checksum mismatch (corrupt file): " + path);
  }

  std::unordered_map<std::string, PostingList> postings;
  uint64_t total_postings = 0;
  std::istringstream in(payload);
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string where =
        " at line " + std::to_string(line_number) + ": " + path;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos || tab == 0) {
      return Status::IoError("malformed record" + where);
    }
    const std::string term = line.substr(0, tab);
    if (postings.count(term) > 0) {
      return Status::IoError("duplicate term '" + term + "'" + where);
    }
    PostingList list;
    size_t start = tab + 1;
    while (start <= line.size()) {
      size_t space = line.find(' ', start);
      if (space == std::string::npos) space = line.size();
      DocId id = 0;
      if (!ParseDocId(line.c_str() + start, line.c_str() + space, &id)) {
        return Status::IoError("malformed posting id" + where);
      }
      list.push_back(id);
      start = space + 1;
    }
    total_postings += list.size();
    postings[term] = std::move(list);
  }
  if (postings.size() != expected_terms) {
    return Status::IoError(
        "term count mismatch: footer says " +
        std::to_string(expected_terms) + ", file has " +
        std::to_string(postings.size()) + ": " + path);
  }
  if (total_postings != expected_postings) {
    return Status::IoError(
        "posting count mismatch: footer says " +
        std::to_string(expected_postings) + ", file has " +
        std::to_string(total_postings) + ": " + path);
  }
  return InvertedIndex::FromPostings(std::move(postings),
                                     static_cast<int64_t>(expected_docs));
}

}  // namespace cyqr
