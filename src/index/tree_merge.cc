#include "index/tree_merge.h"

#include <algorithm>

#include "core/check.h"
#include "obs/metrics.h"

namespace cyqr {

namespace {

// Process-wide merge telemetry: how often queries are merged and how
// relaxed the resulting trees are (required vs total groups is the
// recall-precision dial of Figure 5).
struct MergeInstruments {
  Counter* calls;
  Counter* groups;
  Counter* required_groups;
};

const MergeInstruments& TreeMergeInstruments() {
  static const MergeInstruments instruments = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    MergeInstruments in;
    in.calls = registry.GetCounter("cyqr_index_tree_merge_calls_total");
    in.groups = registry.GetCounter("cyqr_index_tree_merge_groups_total");
    in.required_groups =
        registry.GetCounter("cyqr_index_tree_merge_required_groups_total");
    return in;
  }();
  return instruments;
}

/// Aligns `tokens` against the running `groups` sequence: LCS on exact
/// token-in-group matches anchors the shared tokens; the gap runs between
/// anchors are zipped positionally so diverging tokens join the group at
/// their position as OR alternatives (Figure 5 behaviour).
void AlignQuery(std::vector<MergedGroup>* groups,
                const std::vector<std::string>& tokens) {
  const size_t m = groups->size();
  const size_t n = tokens.size();
  // LCS DP over exact matches.
  std::vector<std::vector<int>> dp(m + 1, std::vector<int>(n + 1, 0));
  for (size_t i = m; i-- > 0;) {
    for (size_t j = n; j-- > 0;) {
      if ((*groups)[i].tokens.count(tokens[j]) > 0) {
        dp[i][j] = dp[i + 1][j + 1] + 1;
      } else {
        dp[i][j] = std::max(dp[i + 1][j], dp[i][j + 1]);
      }
    }
  }
  // Traceback to anchor pairs.
  std::vector<std::pair<size_t, size_t>> anchors;
  size_t i = 0;
  size_t j = 0;
  while (i < m && j < n) {
    if ((*groups)[i].tokens.count(tokens[j]) > 0 &&
        dp[i][j] == dp[i + 1][j + 1] + 1) {
      anchors.emplace_back(i, j);
      ++i;
      ++j;
    } else if (dp[i + 1][j] >= dp[i][j + 1]) {
      ++i;
    } else {
      ++j;
    }
  }
  anchors.emplace_back(m, n);  // Sentinel closes the final gap.

  // Process gaps between anchors; build the new group sequence.
  std::vector<MergedGroup> next;
  size_t gi = 0;  // Group cursor.
  size_t tj = 0;  // Token cursor.
  for (const auto& [ai, aj] : anchors) {
    // Zip the gap [gi, ai) x [tj, aj) positionally.
    const size_t gap_groups = ai - gi;
    const size_t gap_tokens = aj - tj;
    const size_t zip = std::min(gap_groups, gap_tokens);
    for (size_t p = 0; p < zip; ++p) {
      MergedGroup g = std::move((*groups)[gi + p]);
      g.tokens.insert(tokens[tj + p]);
      ++g.queries_contributing;
      next.push_back(std::move(g));
    }
    // Leftover groups get no contribution from this query.
    for (size_t p = zip; p < gap_groups; ++p) {
      next.push_back(std::move((*groups)[gi + p]));
    }
    // Leftover tokens become fresh groups.
    for (size_t p = zip; p < gap_tokens; ++p) {
      MergedGroup g;
      g.tokens.insert(tokens[tj + p]);
      g.queries_contributing = 1;
      next.push_back(std::move(g));
    }
    // The anchor itself.
    if (ai < m) {
      MergedGroup g = std::move((*groups)[ai]);
      ++g.queries_contributing;
      next.push_back(std::move(g));
    }
    gi = ai + 1;
    tj = aj + 1;
  }
  *groups = std::move(next);
}

}  // namespace

TreeMerger::Result TreeMerger::Merge(
    const std::vector<std::vector<std::string>>& queries) {
  Result result;
  const MergeInstruments& instruments = TreeMergeInstruments();
  instruments.calls->Increment();
  if (queries.empty()) return result;

  std::vector<MergedGroup> groups;
  for (const std::string& tok : queries[0]) {
    MergedGroup g;
    g.tokens.insert(tok);
    g.queries_contributing = 1;
    groups.push_back(std::move(g));
  }
  for (size_t q = 1; q < queries.size(); ++q) {
    AlignQuery(&groups, queries[q]);
  }

  const int64_t num_queries = static_cast<int64_t>(queries.size());
  result.groups_total = static_cast<int64_t>(groups.size());
  auto root = SyntaxNode::And();
  for (const MergedGroup& g : groups) {
    // Only groups every query reached stay AND-required; dropping the
    // others relaxes the tree so the merged result is a superset of the
    // union of the individual queries' results.
    if (g.queries_contributing < num_queries) continue;
    ++result.groups_required;
    if (g.tokens.size() == 1) {
      root->children.push_back(SyntaxNode::Term(*g.tokens.begin()));
    } else {
      auto or_node = SyntaxNode::Or();
      for (const std::string& tok : g.tokens) {
        or_node->children.push_back(SyntaxNode::Term(tok));
      }
      root->children.push_back(std::move(or_node));
    }
  }
  // Degenerate cases: nothing required -> OR everything (recall first).
  if (root->children.empty()) {
    auto or_node = SyntaxNode::Or();
    for (const MergedGroup& g : groups) {
      for (const std::string& tok : g.tokens) {
        or_node->children.push_back(SyntaxNode::Term(tok));
      }
    }
    if (or_node->children.size() == 1) {
      result.tree = SyntaxTree(std::move(or_node->children[0]));
    } else if (!or_node->children.empty()) {
      result.tree = SyntaxTree(std::move(or_node));
    }
    instruments.groups->Increment(result.groups_total);
    return result;
  }
  if (root->children.size() == 1) {
    result.tree = SyntaxTree(std::move(root->children[0]));
  } else {
    result.tree = SyntaxTree(std::move(root));
  }
  instruments.groups->Increment(result.groups_total);
  instruments.required_groups->Increment(result.groups_required);
  return result;
}

}  // namespace cyqr
