#include "index/bm25.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace cyqr {

Bm25Scorer::Bm25Scorer(const Options& options) : options_(options) {}

void Bm25Scorer::AddDocument(DocId id,
                             const std::vector<std::string>& tokens) {
  CYQR_CHECK_EQ(id, static_cast<DocId>(term_freq_.size()));
  std::unordered_map<std::string, int64_t> tf;
  for (const std::string& tok : tokens) ++tf[tok];
  for (const auto& [term, count] : tf) {
    (void)count;
    ++doc_freq_[term];
  }
  doc_lengths_.push_back(static_cast<int64_t>(tokens.size()));
  total_length_ += static_cast<double>(tokens.size());
  term_freq_.push_back(std::move(tf));
}

double Bm25Scorer::Score(const std::vector<std::string>& query,
                         DocId doc) const {
  if (doc < 0 || doc >= static_cast<DocId>(term_freq_.size())) return 0.0;
  const double n = static_cast<double>(term_freq_.size());
  const double avg_len = n > 0 ? total_length_ / n : 1.0;
  const double len_norm =
      options_.k1 *
      (1.0 - options_.b +
       options_.b * static_cast<double>(doc_lengths_[doc]) / avg_len);
  double score = 0.0;
  const auto& tf = term_freq_[doc];
  for (const std::string& term : query) {
    auto tf_it = tf.find(term);
    if (tf_it == tf.end()) continue;
    auto df_it = doc_freq_.find(term);
    const double df = static_cast<double>(df_it->second);
    // BM25+-style floor keeps the IDF non-negative for very common terms.
    const double idf =
        std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    const double f = static_cast<double>(tf_it->second);
    score += idf * (f * (options_.k1 + 1.0)) / (f + len_norm);
  }
  return score;
}

std::vector<Bm25Scorer::Scored> Bm25Scorer::Rank(
    const std::vector<std::string>& query,
    const PostingList& candidates) const {
  std::vector<Scored> out;
  out.reserve(candidates.size());
  for (DocId doc : candidates) {
    out.push_back({doc, Score(query, doc)});
  }
  std::sort(out.begin(), out.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  return out;
}

}  // namespace cyqr
