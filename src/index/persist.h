#ifndef CYCLEQR_INDEX_PERSIST_H_
#define CYCLEQR_INDEX_PERSIST_H_

#include <string>

#include "core/status.h"
#include "index/inverted_index.h"

namespace cyqr {

/// Line-based index snapshots, mirroring the KV-store idiom: one
/// "term\tid id id..." record per line (terms sorted for determinism),
/// terminated by an integrity footer recording the document count, record
/// count, posting count, and an FNV-1a checksum of the payload.
///
/// Save is atomic (temp file + rename): a crash mid-save never clobbers
/// the previous snapshot. Load is all-or-nothing: a missing or mismatched
/// footer, a malformed record, unsorted/out-of-range postings, or a count
/// mismatch returns an error and yields no index.
[[nodiscard]] Status SaveInvertedIndex(const InvertedIndex& index,
                                       const std::string& path);
[[nodiscard]] Result<InvertedIndex> LoadInvertedIndex(
    const std::string& path);

}  // namespace cyqr

#endif  // CYCLEQR_INDEX_PERSIST_H_
