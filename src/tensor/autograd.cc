#include "tensor/autograd.h"

#include <cmath>

#include "core/check.h"

namespace cyqr {

Tensor MakeOpResult(const Shape& shape, std::vector<float> data,
                    std::vector<Tensor> inputs,
                    std::function<void(TensorImpl&)> backward,
                    const char* name) {
  CYQR_CHECK_EQ(static_cast<size_t>(shape.NumElements()), data.size());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(data);

  bool needs_grad = false;
  if (NoGradGuard::GradEnabled()) {
    for (const Tensor& t : inputs) {
      if (t.defined() && (t.requires_grad() || t.impl()->node != nullptr)) {
        needs_grad = true;
        break;
      }
    }
  }
  if (needs_grad) {
    auto node = std::make_shared<GradNode>();
    node->name = name;
    node->inputs.reserve(inputs.size());
    for (const Tensor& t : inputs) node->inputs.push_back(t.impl());
    node->backward = std::move(backward);
    impl->node = std::move(node);
    impl->requires_grad = true;
  }
  return Tensor(std::move(impl));
}

double GradCheck(const std::function<Tensor()>& fn, Tensor input, float eps) {
  CYQR_CHECK(input.requires_grad());
  // Analytic gradient.
  input.ZeroGrad();
  Tensor loss = fn();
  loss.Backward();
  const float* analytic = input.grad();
  CYQR_CHECK(analytic != nullptr);
  std::vector<float> analytic_copy(analytic,
                                   analytic + input.NumElements());

  double max_err = 0.0;
  float* x = input.data();
  for (int64_t i = 0; i < input.NumElements(); ++i) {
    const float saved = x[i];
    x[i] = saved + eps;
    const double up = fn().item();
    x[i] = saved - eps;
    const double down = fn().item();
    x[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    max_err = std::max(max_err, std::fabs(numeric - analytic_copy[i]));
  }
  return max_err;
}

}  // namespace cyqr
