#ifndef CYCLEQR_TENSOR_AUTOGRAD_H_
#define CYCLEQR_TENSOR_AUTOGRAD_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace cyqr {

/// Builds an op output tensor and, when gradients are enabled and any input
/// requires them, records a tape node whose `backward` accumulates into the
/// inputs. The backward closure receives the *output* impl (its .grad is the
/// upstream gradient).
Tensor MakeOpResult(const Shape& shape, std::vector<float> data,
                    std::vector<Tensor> inputs,
                    std::function<void(TensorImpl&)> backward,
                    const char* name);

/// Numerically verifies the gradient of `fn` (a tensor program producing a
/// scalar) with respect to `input` by central differences. Returns the
/// maximum absolute difference between analytic and numeric gradients.
/// Intended for tests.
double GradCheck(const std::function<Tensor()>& fn, Tensor input,
                 float eps = 1e-3f);

}  // namespace cyqr

#endif  // CYCLEQR_TENSOR_AUTOGRAD_H_
