#ifndef CYCLEQR_TENSOR_TENSOR_H_
#define CYCLEQR_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "tensor/shape.h"

namespace cyqr {

struct GradNode;

/// Shared storage + autograd metadata behind a Tensor handle.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // Lazily allocated; same size as data when live.
  bool requires_grad = false;
  std::shared_ptr<GradNode> node;  // Non-null for non-leaf grad tensors.

  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// A node in the dynamic autograd tape. `backward` reads `out.grad` and
/// accumulates into each input's grad (allocating it on demand).
struct GradNode {
  const char* name = "";
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  std::function<void(TensorImpl& out)> backward;
};

/// Value-semantics handle to a float32 tensor with reverse-mode autograd.
///
/// Handles share storage: copying a Tensor aliases the same buffer, like a
/// framework tensor. Ops (see tensor/ops.h) record a dynamic tape; calling
/// Backward() on a scalar loss propagates gradients to every reachable
/// tensor with requires_grad set.
class Tensor {
 public:
  /// Empty (null) tensor; most APIs require a non-null tensor.
  Tensor() = default;

  static Tensor Zeros(const Shape& shape);
  static Tensor Full(const Shape& shape, float value);
  static Tensor FromData(const Shape& shape, std::vector<float> data);
  /// Gaussian init with the given standard deviation.
  static Tensor Randn(const Shape& shape, Rng& rng, float stddev = 1.0f);
  static Tensor Scalar(float value);

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t NumElements() const { return shape().NumElements(); }

  float* data();
  const float* data() const;

  /// Gradient buffer; null until backward has touched this tensor.
  const float* grad() const;
  float* mutable_grad();
  bool has_grad() const;
  void ZeroGrad();

  bool requires_grad() const;
  /// Marks this tensor as a trainable leaf. Returns *this for chaining.
  Tensor& set_requires_grad(bool value);

  /// Value of a single-element tensor.
  float item() const;

  /// Runs reverse-mode autodiff from this tensor, which must be a scalar.
  /// Accumulates into .grad of all reachable requires_grad tensors.
  void Backward();

  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// RAII guard that disables tape recording (used during decoding/serving).
/// Nestable; restores the previous mode on destruction.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True when gradients are currently being recorded.
  static bool GradEnabled();

 private:
  bool previous_;
};

}  // namespace cyqr

#endif  // CYCLEQR_TENSOR_TENSOR_H_
