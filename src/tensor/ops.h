#ifndef CYCLEQR_TENSOR_OPS_H_
#define CYCLEQR_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "tensor/tensor.h"

namespace cyqr {

// ---------------------------------------------------------------------------
// Elementwise arithmetic
// ---------------------------------------------------------------------------

/// a + b. Shapes must match, except the bias-broadcast case where b has rank
/// 1 and its length equals a's last dimension ([..., D] + [D]).
Tensor Add(const Tensor& a, const Tensor& b);

/// a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise a * b (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * s.
Tensor Scale(const Tensor& a, float s);

/// a + s.
Tensor AddScalar(const Tensor& a, float s);

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

/// Matrix multiply with optional logical transposes.
/// Supported shape combinations:
///   (m,k) x (k,n)        -> (m,n)
///   (B,m,k) x (k,n)      -> (B,m,n)   (shared right operand)
///   (B,m,k) x (B,k,n)    -> (B,m,n)   (batched)
/// Transposes apply to the trailing two dimensions.
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Swaps the trailing two dims: [..., m, n] -> [..., n, m].
Tensor TransposeLast2(const Tensor& x);

// ---------------------------------------------------------------------------
// Activations / normalization
// ---------------------------------------------------------------------------

Tensor Relu(const Tensor& a);
Tensor TanhOp(const Tensor& a);
Tensor SigmoidOp(const Tensor& a);

/// Softmax over the last dimension.
Tensor Softmax(const Tensor& a);

/// Log-softmax over the last dimension.
Tensor LogSoftmaxOp(const Tensor& a);

/// Layer normalization over the last dimension with learned gain/bias.
/// gamma/beta have rank 1 with length = last dim of x.
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);

/// Inverted dropout: at training time zeroes elements with probability p and
/// rescales survivors by 1/(1-p); identity when !training or p == 0.
Tensor DropoutOp(const Tensor& x, float p, Rng& rng, bool training);

// ---------------------------------------------------------------------------
// Shape manipulation
// ---------------------------------------------------------------------------

/// Copying reshape (element count must be preserved).
Tensor Reshape(const Tensor& x, const Shape& shape);

/// Multi-head split: [B, T, H*dh] -> [B*H, T, dh].
Tensor SplitHeads(const Tensor& x, int64_t num_heads);

/// Inverse of SplitHeads: [B*H, T, dh] -> [B, T, H*dh].
Tensor MergeHeads(const Tensor& x, int64_t num_heads);

/// Concatenates along the last dimension (all leading dims must match).
Tensor ConcatLastDim(const Tensor& a, const Tensor& b);

/// x[..., begin:end] along the last dimension.
Tensor SliceLastDim(const Tensor& x, int64_t begin, int64_t end);

// ---------------------------------------------------------------------------
// Embedding / sequence ops
// ---------------------------------------------------------------------------

/// Gathers rows of `table` ([V, D]) for `ids` (length batch*seq), producing
/// [batch, seq, D]. Backward scatter-adds into the table.
Tensor EmbeddingGather(const Tensor& table, const std::vector<int32_t>& ids,
                       int64_t batch, int64_t seq);

/// scores + mask where `mask` is a constant buffer of the same element count
/// (used for additive -inf attention masks; no gradient flows to the mask).
Tensor AddMask(const Tensor& scores, const std::vector<float>& mask);

// ---------------------------------------------------------------------------
// Losses / probability ops
// ---------------------------------------------------------------------------

/// Mean negative log-likelihood of `targets` under `logits` ([B, T, V]),
/// averaged over positions where mask != 0. Fused stable softmax.
/// `targets` and `mask` have length B*T. With label_smoothing = e > 0 the
/// target distribution becomes (1-e)*onehot + e/V (uniform smoothing).
Tensor MaskedCrossEntropy(const Tensor& logits,
                          const std::vector<int32_t>& targets,
                          const std::vector<float>& mask,
                          float label_smoothing = 0.0f);

/// Per-sequence sum of the chosen-token log-probabilities: returns [B] where
/// out[b] = sum_t mask[b,t] * log softmax(logits[b,t])[targets[b,t]].
/// This is log P(target sequence | source) under teacher forcing — the
/// building block for the cycle-consistency likelihood (paper Eq. 3/5).
Tensor SequenceLogProb(const Tensor& logits,
                       const std::vector<int32_t>& targets,
                       const std::vector<float>& mask);

/// [n] -> [n/group]: log-sum-exp over consecutive groups of `group` elements.
/// Used to marginalize over the k synthetic titles of each query.
Tensor GroupLogSumExp(const Tensor& x, int64_t group);

/// a[b, t, :] + bcast[b, :] for a of shape [B, T, D] and bcast [B, D] —
/// the broadcast used by Bahdanau-style additive attention.
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bcast);

/// Stacks T tensors of shape [B, D] into [B, T, D] (the RNN unroll op).
Tensor StackRows(const std::vector<Tensor>& steps);

/// Sum of all elements -> scalar.
Tensor SumAll(const Tensor& x);

/// Mean of all elements -> scalar.
Tensor MeanAll(const Tensor& x);

}  // namespace cyqr

#endif  // CYCLEQR_TENSOR_OPS_H_
