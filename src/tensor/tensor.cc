#include "tensor/tensor.h"

#include <unordered_set>

#include "core/check.h"

namespace cyqr {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

Tensor Tensor::Zeros(const Shape& shape) { return Full(shape, 0.0f); }

Tensor Tensor::Full(const Shape& shape, float value) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(static_cast<size_t>(shape.NumElements()), value);
  return Tensor(std::move(impl));
}

Tensor Tensor::FromData(const Shape& shape, std::vector<float> data) {
  CYQR_CHECK_EQ(static_cast<size_t>(shape.NumElements()), data.size());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(data);
  return Tensor(std::move(impl));
}

Tensor Tensor::Randn(const Shape& shape, Rng& rng, float stddev) {
  Tensor t = Zeros(shape);
  float* d = t.data();
  const int64_t n = shape.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    d[i] = static_cast<float>(rng.NextGaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::Scalar(float value) { return Full(Shape{}, value); }

const Shape& Tensor::shape() const {
  CYQR_CHECK(impl_ != nullptr);
  return impl_->shape;
}

float* Tensor::data() {
  CYQR_CHECK(impl_ != nullptr);
  return impl_->data.data();
}

const float* Tensor::data() const {
  CYQR_CHECK(impl_ != nullptr);
  return impl_->data.data();
}

const float* Tensor::grad() const {
  CYQR_CHECK(impl_ != nullptr);
  return impl_->grad.empty() ? nullptr : impl_->grad.data();
}

float* Tensor::mutable_grad() {
  CYQR_CHECK(impl_ != nullptr);
  impl_->EnsureGrad();
  return impl_->grad.data();
}

bool Tensor::has_grad() const {
  return impl_ != nullptr && !impl_->grad.empty();
}

void Tensor::ZeroGrad() {
  CYQR_CHECK(impl_ != nullptr);
  if (!impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

bool Tensor::requires_grad() const {
  return impl_ != nullptr && impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool value) {
  CYQR_CHECK(impl_ != nullptr);
  impl_->requires_grad = value;
  return *this;
}

float Tensor::item() const {
  CYQR_CHECK(impl_ != nullptr);
  CYQR_CHECK_EQ(impl_->data.size(), 1u);
  return impl_->data[0];
}

void Tensor::Backward() {
  CYQR_CHECK(impl_ != nullptr);
  CYQR_CHECK_MSG(impl_->data.size() == 1u,
                 "Backward() requires a scalar tensor");
  // Topological sort of the tape reachable from this output.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (node->node == nullptr || next_child >= node->node->inputs.size()) {
      order.push_back(node);
      stack.pop_back();
      continue;
    }
    TensorImpl* child = node->node->inputs[next_child++].get();
    if (visited.insert(child).second) {
      stack.emplace_back(child, 0);
    }
  }
  // `order` is post-order (children before parents); iterate in reverse so
  // each node's grad is complete before its backward fires.
  impl_->EnsureGrad();
  impl_->grad[0] += 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* t = *it;
    if (t->node != nullptr && !t->grad.empty()) {
      t->node->backward(*t);
    }
  }
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

}  // namespace cyqr
