#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/check.h"
#include "core/math.h"
#include "tensor/autograd.h"

namespace cyqr {

namespace {

std::shared_ptr<TensorImpl> Impl(const Tensor& t) { return t.impl(); }

/// Accumulates `delta` into the input's grad buffer (allocating if needed).
void AccumInto(TensorImpl& in, const float* delta, size_t n) {
  in.EnsureGrad();
  CYQR_CHECK_EQ(in.grad.size(), n);
  for (size_t i = 0; i < n; ++i) in.grad[i] += delta[i];
}

/// C(m x n) (+)= op(A) * op(B) where op(A) is m x k and op(B) is k x n.
/// Physical layouts (row-major): A is (k x m) when trans_a else (m x k);
/// B is (n x k) when trans_b else (k x n).
void GemmRaw(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             const float* a, const float* b, float* c, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * m * n);
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float aval = trans_a ? a[p * m + i] : a[i * k + p];
      if (aval == 0.0f) continue;
      if (!trans_b) {
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
      } else {
        for (int64_t j = 0; j < n; ++j) crow[j] += aval * b[j * k + p];
      }
    }
  }
}

struct MatDims {
  int64_t batch;  // 1 for rank-2.
  int64_t rows;   // Physical trailing dims.
  int64_t cols;
};

MatDims GetMatDims(const Shape& s) {
  CYQR_CHECK(s.rank() == 2 || s.rank() == 3);
  if (s.rank() == 2) return {1, s.dim(0), s.dim(1)};
  return {s.dim(0), s.dim(1), s.dim(2)};
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  const bool bias_broadcast =
      b.shape().rank() == 1 && a.shape().rank() > 1 &&
      a.shape().back() == b.shape().dim(0);
  CYQR_CHECK(bias_broadcast || a.shape() == b.shape());
  const int64_t n = a.NumElements();
  const int64_t d = b.NumElements();
  std::vector<float> out(n);
  const float* pa = a.data();
  const float* pb = b.data();
  if (bias_broadcast) {
    for (int64_t i = 0; i < n; ++i) out[i] = pa[i] + pb[i % d];
  } else {
    for (int64_t i = 0; i < n; ++i) out[i] = pa[i] + pb[i];
  }
  auto ia = Impl(a);
  auto ib = Impl(b);
  return MakeOpResult(
      a.shape(), std::move(out), {a, b},
      [ia, ib, n, d, bias_broadcast](TensorImpl& o) {
        if (ia->requires_grad || ia->node) {
          AccumInto(*ia, o.grad.data(), o.grad.size());
        }
        if (ib->requires_grad || ib->node) {
          ib->EnsureGrad();
          if (bias_broadcast) {
            for (int64_t i = 0; i < n; ++i) ib->grad[i % d] += o.grad[i];
          } else {
            for (int64_t i = 0; i < n; ++i) ib->grad[i] += o.grad[i];
          }
        }
      },
      "Add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CYQR_CHECK(a.shape() == b.shape());
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < n; ++i) out[i] = pa[i] - pb[i];
  auto ia = Impl(a);
  auto ib = Impl(b);
  return MakeOpResult(
      a.shape(), std::move(out), {a, b},
      [ia, ib, n](TensorImpl& o) {
        if (ia->requires_grad || ia->node) {
          AccumInto(*ia, o.grad.data(), o.grad.size());
        }
        if (ib->requires_grad || ib->node) {
          ib->EnsureGrad();
          for (int64_t i = 0; i < n; ++i) ib->grad[i] -= o.grad[i];
        }
      },
      "Sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CYQR_CHECK(a.shape() == b.shape());
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < n; ++i) out[i] = pa[i] * pb[i];
  auto ia = Impl(a);
  auto ib = Impl(b);
  return MakeOpResult(
      a.shape(), std::move(out), {a, b},
      [ia, ib, n](TensorImpl& o) {
        if (ia->requires_grad || ia->node) {
          ia->EnsureGrad();
          for (int64_t i = 0; i < n; ++i) {
            ia->grad[i] += o.grad[i] * ib->data[i];
          }
        }
        if (ib->requires_grad || ib->node) {
          ib->EnsureGrad();
          for (int64_t i = 0; i < n; ++i) {
            ib->grad[i] += o.grad[i] * ia->data[i];
          }
        }
      },
      "Mul");
}

Tensor Scale(const Tensor& a, float s) {
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) out[i] = pa[i] * s;
  auto ia = Impl(a);
  return MakeOpResult(
      a.shape(), std::move(out), {a},
      [ia, s, n](TensorImpl& o) {
        ia->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) ia->grad[i] += o.grad[i] * s;
      },
      "Scale");
}

Tensor AddScalar(const Tensor& a, float s) {
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) out[i] = pa[i] + s;
  auto ia = Impl(a);
  return MakeOpResult(
      a.shape(), std::move(out), {a},
      [ia](TensorImpl& o) { AccumInto(*ia, o.grad.data(), o.grad.size()); },
      "AddScalar");
}

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  const MatDims da = GetMatDims(a.shape());
  const MatDims db = GetMatDims(b.shape());
  const int64_t m = trans_a ? da.cols : da.rows;
  const int64_t k = trans_a ? da.rows : da.cols;
  const int64_t kb = trans_b ? db.cols : db.rows;
  const int64_t n = trans_b ? db.rows : db.cols;
  CYQR_CHECK_EQ(k, kb);
  const bool b_shared = (b.shape().rank() == 2);
  CYQR_CHECK(b_shared || db.batch == da.batch);
  const int64_t batch = da.batch;

  Shape out_shape = (a.shape().rank() == 3) ? Shape{batch, m, n} : Shape{m, n};
  std::vector<float> out(batch * m * n);
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t a_stride = da.rows * da.cols;
  const int64_t b_stride = b_shared ? 0 : db.rows * db.cols;
  for (int64_t bi = 0; bi < batch; ++bi) {
    GemmRaw(trans_a, trans_b, m, n, k, pa + bi * a_stride, pb + bi * b_stride,
            out.data() + bi * m * n, /*accumulate=*/false);
  }

  auto ia = Impl(a);
  auto ib = Impl(b);
  return MakeOpResult(
      out_shape, std::move(out), {a, b},
      [ia, ib, m, n, k, batch, a_stride, b_stride, trans_a,
       trans_b](TensorImpl& o) {
        const float* dc = o.grad.data();
        if (ia->requires_grad || ia->node) {
          ia->EnsureGrad();
          for (int64_t bi = 0; bi < batch; ++bi) {
            const float* dcb = dc + bi * m * n;
            const float* pb = ib->data.data() + bi * b_stride;
            float* dab = ia->grad.data() + bi * a_stride;
            if (!trans_a) {
              // dA = dC * op(B)^T, an (m x k) result contracting n.
              GemmRaw(false, !trans_b, m, k, n, dcb, pb, dab, true);
            } else {
              // A physical is (k x m): dA_phys = op(B) * dC^T.
              GemmRaw(trans_b, true, k, m, n, pb, dcb, dab, true);
            }
          }
        }
        if (ib->requires_grad || ib->node) {
          ib->EnsureGrad();
          for (int64_t bi = 0; bi < batch; ++bi) {
            const float* dcb = dc + bi * m * n;
            const float* pa = ia->data.data() + bi * a_stride;
            float* dbb = ib->grad.data() + bi * b_stride;
            if (!trans_b) {
              // dB = op(A)^T * dC, a (k x n) result contracting m.
              GemmRaw(!trans_a, false, k, n, m, pa, dcb, dbb, true);
            } else {
              // B physical is (n x k): dB_phys = dC^T * op(A).
              GemmRaw(true, trans_a, n, k, m, dcb, pa, dbb, true);
            }
          }
        }
      },
      "MatMul");
}

Tensor TransposeLast2(const Tensor& x) {
  const MatDims d = GetMatDims(x.shape());
  std::vector<float> out(x.NumElements());
  const float* px = x.data();
  for (int64_t b = 0; b < d.batch; ++b) {
    const float* src = px + b * d.rows * d.cols;
    float* dst = out.data() + b * d.rows * d.cols;
    for (int64_t i = 0; i < d.rows; ++i) {
      for (int64_t j = 0; j < d.cols; ++j) {
        dst[j * d.rows + i] = src[i * d.cols + j];
      }
    }
  }
  Shape out_shape = (x.shape().rank() == 3)
                        ? Shape{d.batch, d.cols, d.rows}
                        : Shape{d.cols, d.rows};
  auto ix = Impl(x);
  return MakeOpResult(
      out_shape, std::move(out), {x},
      [ix, d](TensorImpl& o) {
        ix->EnsureGrad();
        for (int64_t b = 0; b < d.batch; ++b) {
          const float* src = o.grad.data() + b * d.rows * d.cols;
          float* dst = ix->grad.data() + b * d.rows * d.cols;
          for (int64_t i = 0; i < d.cols; ++i) {
            for (int64_t j = 0; j < d.rows; ++j) {
              dst[j * d.cols + i] += src[i * d.rows + j];
            }
          }
        }
      },
      "TransposeLast2");
}

Tensor Relu(const Tensor& a) {
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) out[i] = pa[i] > 0.0f ? pa[i] : 0.0f;
  auto ia = Impl(a);
  return MakeOpResult(
      a.shape(), std::move(out), {a},
      [ia, n](TensorImpl& o) {
        ia->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          if (ia->data[i] > 0.0f) ia->grad[i] += o.grad[i];
        }
      },
      "Relu");
}

Tensor TanhOp(const Tensor& a) {
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) out[i] = std::tanh(pa[i]);
  auto ia = Impl(a);
  return MakeOpResult(
      a.shape(), std::move(out), {a},
      [ia, n](TensorImpl& o) {
        ia->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const float y = o.data[i];
          ia->grad[i] += o.grad[i] * (1.0f - y * y);
        }
      },
      "Tanh");
}

Tensor SigmoidOp(const Tensor& a) {
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) out[i] = 1.0f / (1.0f + std::exp(-pa[i]));
  auto ia = Impl(a);
  return MakeOpResult(
      a.shape(), std::move(out), {a},
      [ia, n](TensorImpl& o) {
        ia->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const float y = o.data[i];
          ia->grad[i] += o.grad[i] * y * (1.0f - y);
        }
      },
      "Sigmoid");
}

Tensor Softmax(const Tensor& a) {
  const int64_t d = a.shape().back();
  const int64_t rows = a.NumElements() / d;
  std::vector<float> out(a.data(), a.data() + a.NumElements());
  for (int64_t r = 0; r < rows; ++r) {
    SoftmaxInPlace(out.data() + r * d, d);
  }
  auto ia = Impl(a);
  return MakeOpResult(
      a.shape(), std::move(out), {a},
      [ia, rows, d](TensorImpl& o) {
        ia->EnsureGrad();
        for (int64_t r = 0; r < rows; ++r) {
          const float* y = o.data.data() + r * d;
          const float* dy = o.grad.data() + r * d;
          float dot = 0.0f;
          for (int64_t j = 0; j < d; ++j) dot += y[j] * dy[j];
          float* dx = ia->grad.data() + r * d;
          for (int64_t j = 0; j < d; ++j) dx[j] += y[j] * (dy[j] - dot);
        }
      },
      "Softmax");
}

Tensor LogSoftmaxOp(const Tensor& a) {
  const int64_t d = a.shape().back();
  const int64_t rows = a.NumElements() / d;
  std::vector<float> out(a.NumElements());
  const float* pa = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    LogSoftmax(pa + r * d, d, out.data() + r * d);
  }
  auto ia = Impl(a);
  return MakeOpResult(
      a.shape(), std::move(out), {a},
      [ia, rows, d](TensorImpl& o) {
        ia->EnsureGrad();
        for (int64_t r = 0; r < rows; ++r) {
          const float* logp = o.data.data() + r * d;
          const float* dy = o.grad.data() + r * d;
          float sum_dy = 0.0f;
          for (int64_t j = 0; j < d; ++j) sum_dy += dy[j];
          float* dx = ia->grad.data() + r * d;
          for (int64_t j = 0; j < d; ++j) {
            dx[j] += dy[j] - std::exp(logp[j]) * sum_dy;
          }
        }
      },
      "LogSoftmax");
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  const int64_t d = x.shape().back();
  CYQR_CHECK_EQ(gamma.NumElements(), d);
  CYQR_CHECK_EQ(beta.NumElements(), d);
  const int64_t rows = x.NumElements() / d;
  std::vector<float> out(x.NumElements());
  auto xhat = std::make_shared<std::vector<float>>(x.NumElements());
  auto inv_std = std::make_shared<std::vector<float>>(rows);
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = px + r * d;
    double mu = 0.0;
    for (int64_t j = 0; j < d; ++j) mu += row[j];
    mu /= d;
    double var = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double c = row[j] - mu;
      var += c * c;
    }
    var /= d;
    const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
    (*inv_std)[r] = istd;
    for (int64_t j = 0; j < d; ++j) {
      const float xh = (row[j] - static_cast<float>(mu)) * istd;
      (*xhat)[r * d + j] = xh;
      out[r * d + j] = pg[j] * xh + pb[j];
    }
  }
  auto ix = Impl(x);
  auto ig = Impl(gamma);
  auto ib = Impl(beta);
  return MakeOpResult(
      x.shape(), std::move(out), {x, gamma, beta},
      [ix, ig, ib, xhat, inv_std, rows, d](TensorImpl& o) {
        if (ig->requires_grad || ig->node) ig->EnsureGrad();
        if (ib->requires_grad || ib->node) ib->EnsureGrad();
        const bool need_x = ix->requires_grad || ix->node != nullptr;
        if (need_x) ix->EnsureGrad();
        for (int64_t r = 0; r < rows; ++r) {
          const float* dy = o.grad.data() + r * d;
          const float* xh = xhat->data() + r * d;
          if (!ig->grad.empty()) {
            for (int64_t j = 0; j < d; ++j) ig->grad[j] += dy[j] * xh[j];
          }
          if (!ib->grad.empty()) {
            for (int64_t j = 0; j < d; ++j) ib->grad[j] += dy[j];
          }
          if (need_x) {
            // dxhat = dy * gamma; dx = istd*(dxhat - mean(dxhat)
            //                               - xhat*mean(dxhat*xhat)).
            float mean_dxh = 0.0f;
            float mean_dxh_xh = 0.0f;
            for (int64_t j = 0; j < d; ++j) {
              const float dxh = dy[j] * ig->data[j];
              mean_dxh += dxh;
              mean_dxh_xh += dxh * xh[j];
            }
            mean_dxh /= d;
            mean_dxh_xh /= d;
            const float istd = (*inv_std)[r];
            float* dx = ix->grad.data() + r * d;
            for (int64_t j = 0; j < d; ++j) {
              const float dxh = dy[j] * ig->data[j];
              dx[j] += istd * (dxh - mean_dxh - xh[j] * mean_dxh_xh);
            }
          }
        }
      },
      "LayerNorm");
}

Tensor DropoutOp(const Tensor& x, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) return AddScalar(x, 0.0f);
  CYQR_CHECK_LT(p, 1.0f);
  const int64_t n = x.NumElements();
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(n);
  std::vector<float> out(n);
  const float* px = x.data();
  for (int64_t i = 0; i < n; ++i) {
    const float m = rng.NextFloat() < p ? 0.0f : scale;
    (*mask)[i] = m;
    out[i] = px[i] * m;
  }
  auto ix = Impl(x);
  return MakeOpResult(
      x.shape(), std::move(out), {x},
      [ix, mask, n](TensorImpl& o) {
        ix->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          ix->grad[i] += o.grad[i] * (*mask)[i];
        }
      },
      "Dropout");
}

Tensor Reshape(const Tensor& x, const Shape& shape) {
  CYQR_CHECK_EQ(shape.NumElements(), x.NumElements());
  std::vector<float> out(x.data(), x.data() + x.NumElements());
  auto ix = Impl(x);
  return MakeOpResult(
      shape, std::move(out), {x},
      [ix](TensorImpl& o) { AccumInto(*ix, o.grad.data(), o.grad.size()); },
      "Reshape");
}

Tensor SplitHeads(const Tensor& x, int64_t num_heads) {
  CYQR_CHECK_EQ(x.shape().rank(), 3);
  const int64_t b = x.shape().dim(0);
  const int64_t t = x.shape().dim(1);
  const int64_t d = x.shape().dim(2);
  CYQR_CHECK_EQ(d % num_heads, 0);
  const int64_t dh = d / num_heads;
  std::vector<float> out(x.NumElements());
  const float* px = x.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      for (int64_t h = 0; h < num_heads; ++h) {
        const float* src = px + (bi * t + ti) * d + h * dh;
        float* dst = out.data() + ((bi * num_heads + h) * t + ti) * dh;
        std::memcpy(dst, src, sizeof(float) * dh);
      }
    }
  }
  auto ix = Impl(x);
  return MakeOpResult(
      Shape{b * num_heads, t, dh}, std::move(out), {x},
      [ix, b, t, d, dh, num_heads](TensorImpl& o) {
        ix->EnsureGrad();
        for (int64_t bi = 0; bi < b; ++bi) {
          for (int64_t ti = 0; ti < t; ++ti) {
            for (int64_t h = 0; h < num_heads; ++h) {
              const float* src =
                  o.grad.data() + ((bi * num_heads + h) * t + ti) * dh;
              float* dst = ix->grad.data() + (bi * t + ti) * d + h * dh;
              for (int64_t j = 0; j < dh; ++j) dst[j] += src[j];
            }
          }
        }
      },
      "SplitHeads");
}

Tensor MergeHeads(const Tensor& x, int64_t num_heads) {
  CYQR_CHECK_EQ(x.shape().rank(), 3);
  const int64_t bh = x.shape().dim(0);
  const int64_t t = x.shape().dim(1);
  const int64_t dh = x.shape().dim(2);
  CYQR_CHECK_EQ(bh % num_heads, 0);
  const int64_t b = bh / num_heads;
  const int64_t d = dh * num_heads;
  std::vector<float> out(x.NumElements());
  const float* px = x.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      for (int64_t h = 0; h < num_heads; ++h) {
        const float* src = px + ((bi * num_heads + h) * t + ti) * dh;
        float* dst = out.data() + (bi * t + ti) * d + h * dh;
        std::memcpy(dst, src, sizeof(float) * dh);
      }
    }
  }
  auto ix = Impl(x);
  return MakeOpResult(
      Shape{b, t, d}, std::move(out), {x},
      [ix, b, t, d, dh, num_heads](TensorImpl& o) {
        ix->EnsureGrad();
        for (int64_t bi = 0; bi < b; ++bi) {
          for (int64_t ti = 0; ti < t; ++ti) {
            for (int64_t h = 0; h < num_heads; ++h) {
              const float* src = o.grad.data() + (bi * t + ti) * d + h * dh;
              float* dst =
                  ix->grad.data() + ((bi * num_heads + h) * t + ti) * dh;
              for (int64_t j = 0; j < dh; ++j) dst[j] += src[j];
            }
          }
        }
      },
      "MergeHeads");
}

Tensor ConcatLastDim(const Tensor& a, const Tensor& b) {
  CYQR_CHECK_EQ(a.shape().rank(), b.shape().rank());
  const int64_t da = a.shape().back();
  const int64_t db = b.shape().back();
  const int64_t rows = a.NumElements() / da;
  CYQR_CHECK_EQ(rows, b.NumElements() / db);
  std::vector<int64_t> dims = a.shape().dims();
  dims.back() = da + db;
  std::vector<float> out(rows * (da + db));
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t r = 0; r < rows; ++r) {
    std::memcpy(out.data() + r * (da + db), pa + r * da, sizeof(float) * da);
    std::memcpy(out.data() + r * (da + db) + da, pb + r * db,
                sizeof(float) * db);
  }
  auto ia = Impl(a);
  auto ib = Impl(b);
  return MakeOpResult(
      Shape(dims), std::move(out), {a, b},
      [ia, ib, rows, da, db](TensorImpl& o) {
        if (ia->requires_grad || ia->node) {
          ia->EnsureGrad();
          for (int64_t r = 0; r < rows; ++r) {
            const float* src = o.grad.data() + r * (da + db);
            float* dst = ia->grad.data() + r * da;
            for (int64_t j = 0; j < da; ++j) dst[j] += src[j];
          }
        }
        if (ib->requires_grad || ib->node) {
          ib->EnsureGrad();
          for (int64_t r = 0; r < rows; ++r) {
            const float* src = o.grad.data() + r * (da + db) + da;
            float* dst = ib->grad.data() + r * db;
            for (int64_t j = 0; j < db; ++j) dst[j] += src[j];
          }
        }
      },
      "ConcatLastDim");
}

Tensor SliceLastDim(const Tensor& x, int64_t begin, int64_t end) {
  const int64_t d = x.shape().back();
  CYQR_CHECK(begin >= 0 && begin < end && end <= d);
  const int64_t w = end - begin;
  const int64_t rows = x.NumElements() / d;
  std::vector<int64_t> dims = x.shape().dims();
  dims.back() = w;
  std::vector<float> out(rows * w);
  const float* px = x.data();
  for (int64_t r = 0; r < rows; ++r) {
    std::memcpy(out.data() + r * w, px + r * d + begin, sizeof(float) * w);
  }
  auto ix = Impl(x);
  return MakeOpResult(
      Shape(dims), std::move(out), {x},
      [ix, rows, d, w, begin](TensorImpl& o) {
        ix->EnsureGrad();
        for (int64_t r = 0; r < rows; ++r) {
          const float* src = o.grad.data() + r * w;
          float* dst = ix->grad.data() + r * d + begin;
          for (int64_t j = 0; j < w; ++j) dst[j] += src[j];
        }
      },
      "SliceLastDim");
}

Tensor EmbeddingGather(const Tensor& table, const std::vector<int32_t>& ids,
                       int64_t batch, int64_t seq) {
  CYQR_CHECK_EQ(table.shape().rank(), 2);
  CYQR_CHECK_EQ(static_cast<int64_t>(ids.size()), batch * seq);
  const int64_t v = table.shape().dim(0);
  const int64_t d = table.shape().dim(1);
  std::vector<float> out(batch * seq * d);
  const float* pt = table.data();
  for (size_t i = 0; i < ids.size(); ++i) {
    CYQR_CHECK(ids[i] >= 0 && ids[i] < v);
    std::memcpy(out.data() + i * d, pt + ids[i] * d, sizeof(float) * d);
  }
  auto it = Impl(table);
  auto ids_copy = std::make_shared<std::vector<int32_t>>(ids);
  return MakeOpResult(
      Shape{batch, seq, d}, std::move(out), {table},
      [it, ids_copy, d](TensorImpl& o) {
        it->EnsureGrad();
        for (size_t i = 0; i < ids_copy->size(); ++i) {
          const float* src = o.grad.data() + i * d;
          float* dst = it->grad.data() + (*ids_copy)[i] * d;
          for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
        }
      },
      "EmbeddingGather");
}

Tensor AddMask(const Tensor& scores, const std::vector<float>& mask) {
  CYQR_CHECK_EQ(static_cast<size_t>(scores.NumElements()), mask.size());
  const int64_t n = scores.NumElements();
  std::vector<float> out(n);
  const float* ps = scores.data();
  for (int64_t i = 0; i < n; ++i) out[i] = ps[i] + mask[i];
  auto is = Impl(scores);
  return MakeOpResult(
      scores.shape(), std::move(out), {scores},
      [is](TensorImpl& o) { AccumInto(*is, o.grad.data(), o.grad.size()); },
      "AddMask");
}

Tensor MaskedCrossEntropy(const Tensor& logits,
                          const std::vector<int32_t>& targets,
                          const std::vector<float>& mask,
                          float label_smoothing) {
  CYQR_CHECK_EQ(logits.shape().rank(), 3);
  CYQR_CHECK(label_smoothing >= 0.0f && label_smoothing < 1.0f);
  const int64_t b = logits.shape().dim(0);
  const int64_t t = logits.shape().dim(1);
  const int64_t v = logits.shape().dim(2);
  CYQR_CHECK_EQ(static_cast<int64_t>(targets.size()), b * t);
  CYQR_CHECK_EQ(static_cast<int64_t>(mask.size()), b * t);
  const float eps = label_smoothing;
  const float uniform = eps / static_cast<float>(v);

  auto probs = std::make_shared<std::vector<float>>(
      logits.data(), logits.data() + logits.NumElements());
  double total_nll = 0.0;
  double count = 0.0;
  const float* raw = logits.data();
  for (int64_t i = 0; i < b * t; ++i) {
    float* row = probs->data() + i * v;
    SoftmaxInPlace(row, v);
    if (mask[i] != 0.0f) {
      CYQR_CHECK(targets[i] >= 0 && targets[i] < v);
      // NLL against the smoothed target distribution:
      //   (1-e) * -log p[y]  +  e/V * sum_j -log p[j].
      const double log_py =
          std::log(std::max(row[targets[i]], 1e-12f));
      double nll = -(1.0 - eps) * log_py;
      if (eps > 0.0f) {
        const float* logit_row = raw + i * v;
        const float lse = LogSumExp(logit_row, static_cast<size_t>(v));
        double sum_logp = 0.0;
        for (int64_t j = 0; j < v; ++j) {
          sum_logp += static_cast<double>(logit_row[j]) - lse;
        }
        nll -= uniform * sum_logp;
      }
      total_nll += nll;
      count += 1.0;
    }
  }
  const float loss = count > 0 ? static_cast<float>(total_nll / count) : 0.0f;
  auto il = Impl(logits);
  auto targets_copy = std::make_shared<std::vector<int32_t>>(targets);
  auto mask_copy = std::make_shared<std::vector<float>>(mask);
  return MakeOpResult(
      Shape{}, {loss}, {logits},
      [il, probs, targets_copy, mask_copy, b, t, v, count, eps,
       uniform](TensorImpl& o) {
        if (count <= 0) return;
        il->EnsureGrad();
        const float g = o.grad[0] / static_cast<float>(count);
        for (int64_t i = 0; i < b * t; ++i) {
          if ((*mask_copy)[i] == 0.0f) continue;
          const float* p = probs->data() + i * v;
          float* dst = il->grad.data() + i * v;
          const int32_t y = (*targets_copy)[i];
          // d/dlogits = softmax - smoothed target distribution.
          for (int64_t j = 0; j < v; ++j) {
            dst[j] += g * (p[j] - uniform);
          }
          dst[y] -= g * (1.0f - eps);
        }
      },
      "MaskedCrossEntropy");
}

Tensor SequenceLogProb(const Tensor& logits,
                       const std::vector<int32_t>& targets,
                       const std::vector<float>& mask) {
  CYQR_CHECK_EQ(logits.shape().rank(), 3);
  const int64_t b = logits.shape().dim(0);
  const int64_t t = logits.shape().dim(1);
  const int64_t v = logits.shape().dim(2);
  CYQR_CHECK_EQ(static_cast<int64_t>(targets.size()), b * t);
  CYQR_CHECK_EQ(static_cast<int64_t>(mask.size()), b * t);

  auto probs = std::make_shared<std::vector<float>>(
      logits.data(), logits.data() + logits.NumElements());
  std::vector<float> out(b, 0.0f);
  for (int64_t bi = 0; bi < b; ++bi) {
    double acc = 0.0;
    for (int64_t ti = 0; ti < t; ++ti) {
      const int64_t i = bi * t + ti;
      float* row = probs->data() + i * v;
      SoftmaxInPlace(row, v);
      if (mask[i] != 0.0f) {
        CYQR_CHECK(targets[i] >= 0 && targets[i] < v);
        acc += std::log(std::max(row[targets[i]], 1e-12f));
      }
    }
    out[bi] = static_cast<float>(acc);
  }
  auto il = Impl(logits);
  auto targets_copy = std::make_shared<std::vector<int32_t>>(targets);
  auto mask_copy = std::make_shared<std::vector<float>>(mask);
  return MakeOpResult(
      Shape{b}, std::move(out), {logits},
      [il, probs, targets_copy, mask_copy, b, t, v](TensorImpl& o) {
        il->EnsureGrad();
        for (int64_t bi = 0; bi < b; ++bi) {
          const float g = o.grad[bi];
          if (g == 0.0f) continue;
          for (int64_t ti = 0; ti < t; ++ti) {
            const int64_t i = bi * t + ti;
            if ((*mask_copy)[i] == 0.0f) continue;
            const float* p = probs->data() + i * v;
            float* dst = il->grad.data() + i * v;
            const int32_t y = (*targets_copy)[i];
            // d logp[y] / d logits = onehot(y) - softmax.
            for (int64_t j = 0; j < v; ++j) dst[j] -= g * p[j];
            dst[y] += g;
          }
        }
      },
      "SequenceLogProb");
}

Tensor GroupLogSumExp(const Tensor& x, int64_t group) {
  CYQR_CHECK_EQ(x.shape().rank(), 1);
  const int64_t n = x.NumElements();
  CYQR_CHECK_GT(group, 0);
  CYQR_CHECK_EQ(n % group, 0);
  const int64_t groups = n / group;
  std::vector<float> out(groups);
  const float* px = x.data();
  for (int64_t g = 0; g < groups; ++g) {
    out[g] = LogSumExp(px + g * group, static_cast<size_t>(group));
  }
  auto ix = Impl(x);
  return MakeOpResult(
      Shape{groups}, std::move(out), {x},
      [ix, groups, group](TensorImpl& o) {
        ix->EnsureGrad();
        for (int64_t g = 0; g < groups; ++g) {
          const float lse = o.data[g];
          const float dy = o.grad[g];
          for (int64_t j = 0; j < group; ++j) {
            const int64_t i = g * group + j;
            ix->grad[i] += dy * std::exp(ix->data[i] - lse);
          }
        }
      },
      "GroupLogSumExp");
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bcast) {
  CYQR_CHECK_EQ(a.shape().rank(), 3);
  CYQR_CHECK_EQ(bcast.shape().rank(), 2);
  const int64_t b = a.shape().dim(0);
  const int64_t t = a.shape().dim(1);
  const int64_t d = a.shape().dim(2);
  CYQR_CHECK_EQ(bcast.shape().dim(0), b);
  CYQR_CHECK_EQ(bcast.shape().dim(1), d);
  std::vector<float> out(a.NumElements());
  const float* pa = a.data();
  const float* pb = bcast.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      const float* row = pb + bi * d;
      const float* src = pa + (bi * t + ti) * d;
      float* dst = out.data() + (bi * t + ti) * d;
      for (int64_t j = 0; j < d; ++j) dst[j] = src[j] + row[j];
    }
  }
  auto ia = Impl(a);
  auto ib = Impl(bcast);
  return MakeOpResult(
      a.shape(), std::move(out), {a, bcast},
      [ia, ib, b, t, d](TensorImpl& o) {
        if (ia->requires_grad || ia->node) {
          AccumInto(*ia, o.grad.data(), o.grad.size());
        }
        if (ib->requires_grad || ib->node) {
          ib->EnsureGrad();
          for (int64_t bi = 0; bi < b; ++bi) {
            float* dst = ib->grad.data() + bi * d;
            for (int64_t ti = 0; ti < t; ++ti) {
              const float* src = o.grad.data() + (bi * t + ti) * d;
              for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
            }
          }
        }
      },
      "AddRowBroadcast");
}

Tensor StackRows(const std::vector<Tensor>& steps) {
  CYQR_CHECK(!steps.empty());
  const int64_t b = steps[0].shape().dim(0);
  const int64_t d = steps[0].shape().dim(1);
  const int64_t t = static_cast<int64_t>(steps.size());
  std::vector<float> out(b * t * d);
  for (int64_t ti = 0; ti < t; ++ti) {
    CYQR_CHECK(steps[ti].shape() == Shape({b, d}));
    const float* src = steps[ti].data();
    for (int64_t bi = 0; bi < b; ++bi) {
      std::memcpy(out.data() + (bi * t + ti) * d, src + bi * d,
                  sizeof(float) * d);
    }
  }
  std::vector<std::shared_ptr<TensorImpl>> impls;
  impls.reserve(steps.size());
  for (const Tensor& s : steps) impls.push_back(s.impl());
  return MakeOpResult(
      Shape{b, t, d}, std::move(out), steps,
      [impls, b, t, d](TensorImpl& o) {
        for (int64_t ti = 0; ti < t; ++ti) {
          TensorImpl& in = *impls[ti];
          if (!in.requires_grad && in.node == nullptr) continue;
          in.EnsureGrad();
          for (int64_t bi = 0; bi < b; ++bi) {
            const float* src = o.grad.data() + (bi * t + ti) * d;
            float* dst = in.grad.data() + bi * d;
            for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
          }
        }
      },
      "StackRows");
}

Tensor SumAll(const Tensor& x) {
  const int64_t n = x.NumElements();
  double acc = 0.0;
  const float* px = x.data();
  for (int64_t i = 0; i < n; ++i) acc += px[i];
  auto ix = Impl(x);
  return MakeOpResult(
      Shape{}, {static_cast<float>(acc)}, {x},
      [ix, n](TensorImpl& o) {
        ix->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) ix->grad[i] += o.grad[0];
      },
      "SumAll");
}

Tensor MeanAll(const Tensor& x) {
  const int64_t n = x.NumElements();
  CYQR_CHECK_GT(n, 0);
  return Scale(SumAll(x), 1.0f / static_cast<float>(n));
}

}  // namespace cyqr
