#ifndef CYCLEQR_TENSOR_SHAPE_H_
#define CYCLEQR_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace cyqr {

/// Dense row-major tensor shape. The library works with ranks 0 (scalar)
/// through 3 ([batch, seq, dim]), which covers every architecture in the
/// paper (transformer / RNN / GRU / attention seq2seq).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const;
  /// Last dimension; 1 for scalars.
  int64_t back() const { return dims_.empty() ? 1 : dims_.back(); }
  int64_t NumElements() const;

  const std::vector<int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// e.g. "[2, 3, 8]".
  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace cyqr

#endif  // CYCLEQR_TENSOR_SHAPE_H_
