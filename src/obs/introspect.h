#ifndef CYCLEQR_OBS_INTROSPECT_H_
#define CYCLEQR_OBS_INTROSPECT_H_

#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/stopwatch.h"
#include "core/thread_annotations.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cyqr {

/// One rendered introspection page: what an HTTP front end (or a test)
/// sends back verbatim. The introspector is transport-agnostic on purpose
/// — it lives in obs and knows nothing about sockets; serving's
/// HttpEndpoint (or a unit test calling HandlePath directly) supplies the
/// transport.
struct IntrospectPage {
  int status_code = 200;         // 200 or 404.
  std::string content_type;      // e.g. "text/plain; version=0.0.4".
  std::string body;
};

/// Renders the live-introspection page set over the process's
/// observability state:
///
///   /metrics  — Prometheus text exposition of the metrics registry
///               (histogram buckets carry trace-id exemplars).
///   /statusz  — uptime, build info, flight-recorder stats, plus every
///               registered status section (breaker state, queue depth,
///               collective generation, ...) as `key: value` lines.
///   /tracez   — the TraceSampler's retained traces per outcome bucket:
///               N slowest and N most recent, with hex trace ids that
///               exemplars in /metrics resolve against.
///   /flightz  — the newest slice of the flight recorder's stitched
///               journal, as the same JSON a crash dump writes.
///
/// Thread safety: HandlePath is safe from any number of front-end threads;
/// every underlying store (registry, sampler, recorder) has concurrent
/// snapshot reads, and the section list is mutex-guarded.
class Introspector {
 public:
  struct Options {
    MetricsRegistry* metrics = nullptr;       // Required.
    TraceSampler* traces = nullptr;           // Required.
    FlightRecorder* flight = nullptr;         // Required.
    /// /flightz response bound, in events (newest kept).
    size_t flightz_max_events = 512;
    /// Free-form build/version string shown on /statusz.
    std::string build_info;
  };

  explicit Introspector(const Options& options);
  Introspector(const Introspector&) = delete;
  Introspector& operator=(const Introspector&) = delete;

  /// Adds a `name: <render()>` line to /statusz. Renderers run on the
  /// serving thread of each /statusz hit, so they must be cheap and
  /// thread-safe (typically a gauge read or a lock-guarded accessor).
  void AddStatusSection(const std::string& name,
                        std::function<std::string()> render);

  /// Routes one request path ("/metrics", "/statusz?x" — the query string
  /// is ignored) to its page; unknown paths get a 404 listing the known
  /// endpoints.
  IntrospectPage HandlePath(const std::string& path) const;

  double uptime_seconds() const { return birth_.ElapsedSeconds(); }

 private:
  std::string RenderStatusz() const;
  std::string RenderTracez() const;

  const Options options_;
  Stopwatch birth_;
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      sections_ CYQR_GUARDED_BY(mu_);
};

}  // namespace cyqr

#endif  // CYCLEQR_OBS_INTROSPECT_H_
