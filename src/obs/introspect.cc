#include "obs/introspect.h"

#include <cstdio>

#include "core/check.h"

namespace cyqr {

namespace {

constexpr char kTextPlain[] = "text/plain; charset=utf-8";
/// Prometheus exposition format version marker, as scrapers expect.
constexpr char kPromText[] = "text/plain; version=0.0.4; charset=utf-8";
constexpr char kJson[] = "application/json";

std::string FormatMillis(double millis) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", millis);
  return buf;
}

}  // namespace

Introspector::Introspector(const Options& options) : options_(options) {
  CYQR_CHECK(options_.metrics != nullptr);
  CYQR_CHECK(options_.traces != nullptr);
  CYQR_CHECK(options_.flight != nullptr);
}

void Introspector::AddStatusSection(const std::string& name,
                                    std::function<std::string()> render) {
  CYQR_CHECK(render != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  sections_.emplace_back(name, std::move(render));
}

IntrospectPage Introspector::HandlePath(const std::string& path) const {
  // Strip any query string: the pages take no parameters, but a scraper
  // appending ?format=... should still land on the right page.
  const size_t query = path.find('?');
  const std::string clean =
      query == std::string::npos ? path : path.substr(0, query);
  IntrospectPage page;
  if (clean == "/metrics") {
    page.content_type = kPromText;
    page.body = options_.metrics->ExpositionText();
  } else if (clean == "/statusz" || clean == "/") {
    page.content_type = kTextPlain;
    page.body = RenderStatusz();
  } else if (clean == "/tracez") {
    page.content_type = kTextPlain;
    page.body = RenderTracez();
  } else if (clean == "/flightz") {
    page.content_type = kJson;
    page.body = options_.flight->JournalJson(options_.flightz_max_events);
  } else {
    page.status_code = 404;
    page.content_type = kTextPlain;
    page.body =
        "not found: " + clean +
        "\nknown endpoints: /metrics /statusz /tracez /flightz\n";
  }
  return page;
}

std::string Introspector::RenderStatusz() const {
  std::string out = "cyqr statusz\n";
  if (!options_.build_info.empty()) {
    out += "build: " + options_.build_info + "\n";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "uptime_seconds: %.3f\n",
                uptime_seconds());
  out += buf;
  out += "flight_events_recorded: " +
         std::to_string(options_.flight->events_recorded_total()) + "\n";
  out += "flight_events_dropped: " +
         std::to_string(options_.flight->events_dropped_total()) + "\n";
  out += "flight_threads: " +
         std::to_string(options_.flight->thread_count()) + "\n";
  out += "traces_sampled: " +
         std::to_string(options_.traces->sampled_total()) + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, render] : sections_) {
    out += name + ": " + render() + "\n";
  }
  return out;
}

std::string Introspector::RenderTracez() const {
  std::string out = "cyqr tracez\n";
  const auto buckets = options_.traces->Snapshot();
  if (buckets.empty()) out += "(no traces sampled yet)\n";
  for (const auto& bucket : buckets) {
    out += "\n== outcome: " + bucket.outcome + " ==\n";
    const auto render = [&out](const char* title,
                               const std::vector<TraceRecord>& records) {
      out += title;
      out += ":\n";
      for (const TraceRecord& record : records) {
        char id_hex[24];
        std::snprintf(id_hex, sizeof(id_hex), "%016llx",
                      static_cast<unsigned long long>(record.trace_id));
        out += "  trace_id=";
        out += id_hex;
        out += " total_ms=" + FormatMillis(record.total_millis);
        out += " seq=" + std::to_string(record.sequence);
        out += " path=" + record.path + "\n";
      }
    };
    render("slowest", bucket.slowest);
    render("recent", bucket.recent);
  }
  return out;
}

}  // namespace cyqr
