#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "core/check.h"
#include "core/file_util.h"

namespace cyqr {

namespace {

/// Relaxed CAS add for atomic doubles (libstdc++'s fetch_add on
/// atomic<double> is a CAS loop anyway; writing it out keeps the memory
/// order explicit).
void AtomicAdd(std::atomic<double>* target, double delta) {
  // ordering: relaxed — the CAS loop guarantees lossless accumulation; the
  // value publishes nothing else.
  double current = target->load(std::memory_order_relaxed);
  // ordering: relaxed — the CAS loop needs only atomicity of this double; it
  // publishes nothing else.
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  // ordering: relaxed — CAS loop keeps the max exact; the value publishes
  // nothing else.
  double current = target->load(std::memory_order_relaxed);
  // ordering: relaxed — the CAS loop needs only atomicity of this double; it
  // publishes nothing else.
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

/// The unit vocabulary of the naming convention. `per_sec` is special-cased
/// in IsValidMetricName because it spans two segments.
const char* const kUnitSuffixes[] = {
    "total", "millis", "micros", "seconds", "bytes", "tokens",
    "ratio", "count",  "state",  "norm",    "value",
};

/// Canonical sorted-label key used to identify one instrument inside a
/// family. 0x1f separators cannot appear in validated names/labels.
std::string LabelKey(const MetricLabels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1f';
  }
  return key;
}

MetricLabels SortedLabels(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  for (const auto& [k, v] : labels) {
    CYQR_CHECK_MSG(!k.empty(), "metric label keys must be non-empty");
  }
  return labels;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// Renders `{k="v",...}` (empty string for no labels); `extra` appends one
/// more pair (the histogram `le` label).
std::string LabelBlock(const MetricLabels& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

/// Compact deterministic number rendering: integers print without a
/// decimal point; everything else gets shortest-ish %g.
std::string FormatNumber(double value) {
  if (!std::isfinite(value)) {
    return value > 0 ? "+Inf" : (value < 0 ? "-Inf" : "NaN");
  }
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

/// JSON value rendering: non-finite doubles become null (valid JSON).
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return FormatNumber(value);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonLabels(const MetricLabels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += JsonEscape(k);
    out += "\": \"";
    out += JsonEscape(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// Lowercase-hex rendering of an exemplar trace id (matches the /tracez
/// display format, so an id scraped from /metrics greps straight into it).
std::string TraceIdHex(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  CYQR_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    CYQR_CHECK_MSG(bounds_[i] < bounds_[i + 1],
                   "histogram bounds must be strictly increasing");
  }
  const size_t n = bounds_.size() + 1;
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(n);
  exemplars_ = std::make_unique<ExemplarSlot[]>(n);
  for (size_t i = 0; i < n; ++i) {
    // ordering: relaxed — zeroes a just-allocated array before any reader can
    // hold a reference to it.
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::DefaultLatencyBoundsMillis() {
  return {0.05, 0.1, 0.25, 0.5, 1.0,   2.5,   5.0,   10.0,
          25.0, 50.0, 100.0, 250.0, 500.0, 1000.0};
}

std::vector<double> Histogram::DefaultTimeBoundsMicros() {
  return {10.0, 50.0,  100.0, 500.0, 1e3, 5e3,
          1e4,  5e4,   1e5,   5e5,   1e6, 5e6};
}

void Histogram::Observe(double value, uint64_t exemplar_id) {
  // Linear scan instead of binary search: latency distributions put most
  // observations in the first buckets, so the common case is one or two
  // well-predicted comparisons (lower_bound mispredicts ~log2(n) times).
  const size_t n = bounds_.size();
  size_t bucket = n;
  for (size_t i = 0; i < n; ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  // ordering: relaxed — observability counter/snapshot; no other memory is
  // published or consumed through it.
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  if (exemplar_id != 0) {
    // ordering: relaxed — exemplars are last-writer-wins breadcrumbs;
    // tearing across the (id, value) pair is accepted by contract.
    exemplars_[bucket].trace_id.store(exemplar_id,
                                      std::memory_order_relaxed);
    // ordering: relaxed — same breadcrumb contract as the id store above.
    exemplars_[bucket].value.store(value, std::memory_order_relaxed);
  }
  AtomicAdd(&sum_, value);
  AtomicMax(&max_, value);
}

uint64_t Histogram::ExemplarTraceId(size_t i) const {
  CYQR_CHECK_LE(i, bounds_.size());
  // ordering: relaxed — breadcrumb snapshot; staleness is acceptable.
  return exemplars_[i].trace_id.load(std::memory_order_relaxed);
}

double Histogram::ExemplarValue(size_t i) const {
  CYQR_CHECK_LE(i, bounds_.size());
  // ordering: relaxed — breadcrumb snapshot; staleness is acceptable.
  return exemplars_[i].value.load(std::memory_order_relaxed);
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Mean() const {
  const int64_t n = Count();
  return n > 0 ? Sum() / static_cast<double>(n) : 0.0;
}

int64_t Histogram::BucketCount(size_t i) const {
  CYQR_CHECK_LE(i, bounds_.size());
  // ordering: relaxed — stat snapshot for reporting; a stale value is
  // acceptable.
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::QuantileEstimate(double q) const {
  const int64_t total = Count();
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  const size_t n = bounds_.size();
  int64_t cumulative = 0;
  for (size_t i = 0; i <= n; ++i) {
    const int64_t in_bucket = BucketCount(i);
    if (in_bucket == 0) continue;
    const int64_t previous = cumulative;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == n) return Max();  // Overflow bucket: best answer is the max.
    const double lower = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
    const double upper = bounds_[i];
    const double fraction = std::max(
        0.0, (rank - static_cast<double>(previous)) /
                 static_cast<double>(in_bucket));
    return std::min(lower + fraction * (upper - lower), Max());
  }
  return Max();
}

void Histogram::MergeFrom(const Histogram& other) {
  CYQR_CHECK_MSG(bounds_ == other.bounds_,
                 "can only merge histograms with identical bounds");
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    // ordering: relaxed — merge tallies; snapshot consistency is not promised
    // across buckets.
    buckets_[i].fetch_add(other.BucketCount(i), std::memory_order_relaxed);
    const uint64_t exemplar = other.ExemplarTraceId(i);
    if (exemplar != 0) {
      // ordering: relaxed — same last-writer-wins breadcrumb contract
      // as Observe.
      exemplars_[i].trace_id.store(exemplar, std::memory_order_relaxed);
      // ordering: relaxed — breadcrumb contract, as above.
      exemplars_[i].value.store(other.ExemplarValue(i),
                                std::memory_order_relaxed);
    }
  }
  AtomicAdd(&sum_, other.Sum());
  AtomicMax(&max_, other.Max());
}

bool IsValidMetricName(const std::string& name) {
  if (name.rfind("cyqr_", 0) != 0) return false;
  if (name.back() == '_' || name.find("__") != std::string::npos) {
    return false;
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  // cyqr_<layer>_<name>_<unit>: at least four segments.
  if (std::count(name.begin(), name.end(), '_') < 3) return false;
  if (name.ends_with("_per_sec")) return true;
  const size_t last = name.rfind('_');
  const std::string unit = name.substr(last + 1);
  for (const char* known : kUnitSuffixes) {
    if (unit == known) return true;
  }
  return false;
}

MetricsRegistry::Family* MetricsRegistry::GetFamily(const std::string& name,
                                                    Kind kind) {
  CYQR_CHECK_MSG(IsValidMetricName(name), name.c_str());
  Family& family = families_[name];
  if (family.instruments.empty()) {
    family.kind = kind;
  } else {
    CYQR_CHECK_MSG(family.kind == kind,
                   "instrument re-registered with a different type");
  }
  return &family;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  MetricLabels sorted = SortedLabels(labels);
  const std::string key = LabelKey(sorted);
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, Kind::kCounter);
  Instrument& inst = family->instruments[key];
  if (inst.counter == nullptr) {
    inst.labels = std::move(sorted);
    inst.counter = std::make_unique<Counter>();
  }
  return inst.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  MetricLabels sorted = SortedLabels(labels);
  const std::string key = LabelKey(sorted);
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, Kind::kGauge);
  Instrument& inst = family->instruments[key];
  if (inst.gauge == nullptr) {
    inst.labels = std::move(sorted);
    inst.gauge = std::make_unique<Gauge>();
  }
  return inst.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds,
                                         const MetricLabels& labels) {
  MetricLabels sorted = SortedLabels(labels);
  const std::string key = LabelKey(sorted);
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, Kind::kHistogram);
  Instrument& inst = family->instruments[key];
  if (inst.histogram == nullptr) {
    inst.labels = std::move(sorted);
    inst.histogram = std::make_unique<Histogram>(bounds);
  } else {
    CYQR_CHECK_MSG(inst.histogram->bounds() == bounds,
                   "histogram re-registered with different bounds");
  }
  return inst.histogram.get();
}

std::string MetricsRegistry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    const char* type = family.kind == Kind::kCounter   ? "counter"
                       : family.kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& [key, inst] : family.instruments) {
      (void)key;
      if (family.kind == Kind::kCounter) {
        out += name + LabelBlock(inst.labels) + " " +
               FormatNumber(static_cast<double>(inst.counter->Value())) +
               "\n";
      } else if (family.kind == Kind::kGauge) {
        out += name + LabelBlock(inst.labels) + " " +
               FormatNumber(inst.gauge->Value()) + "\n";
      } else {
        const Histogram& h = *inst.histogram;
        // OpenMetrics-style exemplar suffix: a bucket that saw an exemplar
        // appends ` # {trace_id="<hex>"} <value>` — the join key into
        // /tracez for one concrete request that landed in that bucket.
        const auto exemplar_suffix = [&h](size_t i) -> std::string {
          const uint64_t id = h.ExemplarTraceId(i);
          if (id == 0) return "";
          return " # {trace_id=\"" + TraceIdHex(id) + "\"} " +
                 FormatNumber(h.ExemplarValue(i));
        };
        int64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          out += name + "_bucket" +
                 LabelBlock(inst.labels,
                            "le=\"" + FormatNumber(h.bounds()[i]) + "\"") +
                 " " + FormatNumber(static_cast<double>(cumulative)) +
                 exemplar_suffix(i) + "\n";
        }
        out += name + "_bucket" +
               LabelBlock(inst.labels, "le=\"+Inf\"") + " " +
               FormatNumber(static_cast<double>(h.Count())) +
               exemplar_suffix(h.bounds().size()) + "\n";
        out += name + "_sum" + LabelBlock(inst.labels) + " " +
               FormatNumber(h.Sum()) + "\n";
        out += name + "_count" + LabelBlock(inst.labels) + " " +
               FormatNumber(static_cast<double>(h.Count())) + "\n";
      }
    }
  }
  return out;
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, inst] : family.instruments) {
      (void)key;
      const std::string head = "    {\"name\": \"" + JsonEscape(name) +
                               "\", \"labels\": " + JsonLabels(inst.labels);
      if (family.kind == Kind::kCounter) {
        if (!counters.empty()) counters += ",\n";
        counters += head + ", \"value\": " +
                    JsonNumber(static_cast<double>(inst.counter->Value())) +
                    "}";
      } else if (family.kind == Kind::kGauge) {
        if (!gauges.empty()) gauges += ",\n";
        gauges += head + ", \"value\": " + JsonNumber(inst.gauge->Value()) +
                  "}";
      } else {
        const Histogram& h = *inst.histogram;
        if (!histograms.empty()) histograms += ",\n";
        std::string buckets;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          if (!buckets.empty()) buckets += ", ";
          buckets += "{\"le\": " + JsonNumber(h.bounds()[i]) +
                     ", \"count\": " +
                     JsonNumber(static_cast<double>(h.BucketCount(i))) + "}";
        }
        buckets += buckets.empty() ? "" : ", ";
        buckets +=
            "{\"le\": \"+Inf\", \"count\": " +
            JsonNumber(static_cast<double>(h.BucketCount(h.bounds().size()))) +
            "}";
        histograms += head +
                      ", \"count\": " +
                      JsonNumber(static_cast<double>(h.Count())) +
                      ", \"sum\": " + JsonNumber(h.Sum()) +
                      ", \"max\": " + JsonNumber(h.Max()) +
                      ", \"mean\": " + JsonNumber(h.Mean()) +
                      ", \"p50\": " + JsonNumber(h.QuantileEstimate(0.5)) +
                      ", \"p90\": " + JsonNumber(h.QuantileEstimate(0.9)) +
                      ", \"p99\": " + JsonNumber(h.QuantileEstimate(0.99)) +
                      ", \"buckets\": [" + buckets + "]}";
      }
    }
  }
  return "{\n  \"version\": 1,\n  \"counters\": [\n" + counters +
         "\n  ],\n  \"gauges\": [\n" + gauges +
         "\n  ],\n  \"histograms\": [\n" + histograms + "\n  ]\n}\n";
}

Status MetricsRegistry::WriteJsonSnapshot(const std::string& path) const {
  // Atomic (temp + fsync + rename): a scraper or the bench checker reading
  // mid-write sees the previous complete snapshot, never a torn file.
  return WriteStringToFileAtomic(path, JsonSnapshot());
}

Status MetricsRegistry::WriteExpositionText(const std::string& path) const {
  return WriteStringToFileAtomic(path, ExpositionText());
}

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked so instruments resolved at static-init time stay
  // valid through static destruction at process exit.
  static MetricsRegistry* global =
      new MetricsRegistry();  // NOLINT(cyqr-raw-owning-new)
  return *global;
}

}  // namespace cyqr
