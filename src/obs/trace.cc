#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

namespace cyqr {

namespace {

/// Trace id source: process-unique, monotonic, never 0 (0 is the "no
/// exemplar" sentinel in Histogram::Observe).
std::atomic<uint64_t> g_next_trace_id{1};

}  // namespace

Trace::Trace()
    // ordering: relaxed — ids only need uniqueness; nothing is published
    // through the counter.
    : id_(g_next_trace_id.fetch_add(1, std::memory_order_relaxed)) {}

std::string Trace::IdHex() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id_));
  return buf;
}

void Trace::Annotate(std::string name, std::string detail) {
  TraceEvent event;
  event.name = std::move(name);
  event.detail = std::move(detail);
  event.start_millis = ElapsedMillis();
  events_.push_back(std::move(event));
}

std::string Trace::PathString() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    if (!out.empty()) out += " -> ";
    out += e.name;
    if (!e.detail.empty()) {
      out += ':';
      out += e.detail;
    }
  }
  return out;
}

std::string Trace::ToString() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%9.3f ms %s%7.3f ms  ",
                  e.start_millis, e.duration_millis > 0 ? "+" : " ",
                  e.duration_millis);
    out += buf;
    out += e.ok ? "ok   " : "FAIL ";
    out += e.name;
    if (!e.detail.empty()) {
      out += ": ";
      out += e.detail;
    }
    out += '\n';
  }
  return out;
}

TraceSpan::TraceSpan(Trace* trace, std::string name)
    : trace_(trace), name_(std::move(name)) {
  if (trace_ != nullptr) start_millis_ = trace_->ElapsedMillis();
}

void TraceSpan::SetStatus(const Status& status) {
  if (status.ok()) return;
  ok_ = false;
  detail_ = status.ToString();
}

void TraceSpan::SetDetail(std::string detail) {
  detail_ = std::move(detail);
}

void TraceSpan::End() {
  if (ended_ || trace_ == nullptr) {
    ended_ = true;
    return;
  }
  ended_ = true;
  TraceEvent event;
  event.name = std::move(name_);
  event.detail = std::move(detail_);
  event.start_millis = start_millis_;
  event.duration_millis = watch_.ElapsedMicros() / 1000.0;
  event.ok = ok_;
  trace_->AddEvent(std::move(event));
}

TraceSampler::TraceSampler(size_t keep_per_bucket)
    : keep_per_bucket_(std::max<size_t>(keep_per_bucket, 1)) {}

void TraceSampler::Sample(const Trace& trace, const std::string& outcome) {
  TraceRecord record;
  record.trace_id = trace.id();
  record.outcome = outcome;
  record.total_millis = trace.ElapsedMillis();
  record.path = trace.PathString();
  std::lock_guard<std::mutex> lock(mu_);
  record.sequence = ++sampled_total_;
  Bucket& bucket = buckets_[outcome];
  bucket.recent.push_back(record);
  if (bucket.recent.size() > keep_per_bucket_) bucket.recent.pop_front();
  // Slowest list: insert in sorted position, drop the fastest overflow.
  // Linear work over <= keep_per_bucket_ entries — bounded and tiny.
  auto pos = std::upper_bound(
      bucket.slowest.begin(), bucket.slowest.end(), record,
      [](const TraceRecord& a, const TraceRecord& b) {
        return a.total_millis > b.total_millis;
      });
  bucket.slowest.insert(pos, std::move(record));
  if (bucket.slowest.size() > keep_per_bucket_) bucket.slowest.pop_back();
}

std::vector<TraceSampler::BucketView> TraceSampler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BucketView> out;
  out.reserve(buckets_.size());
  for (const auto& [outcome, bucket] : buckets_) {
    BucketView view;
    view.outcome = outcome;
    view.recent.assign(bucket.recent.rbegin(),
                       bucket.recent.rend());  // Newest first.
    view.slowest = bucket.slowest;
    out.push_back(std::move(view));
  }
  return out;
}

bool TraceSampler::Find(uint64_t trace_id, TraceRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [outcome, bucket] : buckets_) {
    (void)outcome;
    for (const TraceRecord& record : bucket.recent) {
      if (record.trace_id == trace_id) {
        if (out != nullptr) *out = record;
        return true;
      }
    }
    for (const TraceRecord& record : bucket.slowest) {
      if (record.trace_id == trace_id) {
        if (out != nullptr) *out = record;
        return true;
      }
    }
  }
  return false;
}

int64_t TraceSampler::sampled_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_total_;
}

TraceSampler& TraceSampler::Global() {
  // Leaked like MetricsRegistry::Global(): requests may finish (and
  // sample) during process teardown.
  static TraceSampler* const kGlobal =
      new TraceSampler();  // NOLINT(cyqr-raw-owning-new)
  return *kGlobal;
}

}  // namespace cyqr
