#include "obs/trace.h"

#include <cstdio>
#include <utility>

namespace cyqr {

void Trace::Annotate(std::string name, std::string detail) {
  TraceEvent event;
  event.name = std::move(name);
  event.detail = std::move(detail);
  event.start_millis = ElapsedMillis();
  events_.push_back(std::move(event));
}

std::string Trace::PathString() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    if (!out.empty()) out += " -> ";
    out += e.name;
    if (!e.detail.empty()) {
      out += ':';
      out += e.detail;
    }
  }
  return out;
}

std::string Trace::ToString() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%9.3f ms %s%7.3f ms  ",
                  e.start_millis, e.duration_millis > 0 ? "+" : " ",
                  e.duration_millis);
    out += buf;
    out += e.ok ? "ok   " : "FAIL ";
    out += e.name;
    if (!e.detail.empty()) {
      out += ": ";
      out += e.detail;
    }
    out += '\n';
  }
  return out;
}

TraceSpan::TraceSpan(Trace* trace, std::string name)
    : trace_(trace), name_(std::move(name)) {
  if (trace_ != nullptr) start_millis_ = trace_->ElapsedMillis();
}

void TraceSpan::SetStatus(const Status& status) {
  if (status.ok()) return;
  ok_ = false;
  detail_ = status.ToString();
}

void TraceSpan::SetDetail(std::string detail) {
  detail_ = std::move(detail);
}

void TraceSpan::End() {
  if (ended_ || trace_ == nullptr) {
    ended_ = true;
    return;
  }
  ended_ = true;
  TraceEvent event;
  event.name = std::move(name_);
  event.detail = std::move(detail_);
  event.start_millis = start_millis_;
  event.duration_millis = watch_.ElapsedMicros() / 1000.0;
  event.ok = ok_;
  trace_->AddEvent(std::move(event));
}

}  // namespace cyqr
