#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/check.h"
#include "core/fault.h"
#include "core/file_util.h"

namespace cyqr {

namespace {

/// The recorder armed by EnableCrashDump — what the fault-dump trampoline
/// and the signal handlers write. Atomic: the hook can fire on any thread,
/// including inside a signal handler.
std::atomic<FlightRecorder*> g_crash_recorder{nullptr};

/// Re-entrancy guard for the crash dumper: a fault that fires while a dump
/// is already being written (e.g. a SIGSEGV inside the dump itself) must
/// not recurse.
std::atomic<bool> g_dump_in_progress{false};

/// Monotonic recorder-instance ids. The thread-local ring cache is keyed
/// by this id rather than the recorder address, so a new recorder reusing
/// a destroyed one's address can never hit a stale cache entry (ABA).
std::atomic<uint64_t> g_next_instance_id{1};

void FaultDumpTrampoline(const char* source) {
  // ordering: acquire — pairs with the release store in EnableCrashDump so
  // the dumper sees the fully armed recorder (path buffer included).
  FlightRecorder* recorder =
      g_crash_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr) recorder->WriteCrashDumpNow(source);
}

void CrashSignalHandler(int signo) {
  const char* source = "signal";
  if (signo == SIGSEGV) source = "sigsegv";
  if (signo == SIGABRT) source = "sigabrt";
  FaultDumpTrampoline(source);
  // Restore the default disposition and re-raise: the process must still
  // die with the original signal (exit code, core dump) after the journal
  // lands — the recorder observes the crash, it does not swallow it.
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p *= 2;
  return p;
}

// ---------------------------------------------------------------------------
// Async-signal-safe formatting + buffered writer for the crash dump. All of
// this runs inside signal handlers: no allocation, no locks, no stdio.
// ---------------------------------------------------------------------------

/// Streams bytes to an fd through a fixed buffer. write() failures flip
/// `failed` and turn the rest of the dump into a no-op (nothing a signal
/// handler could do about a full disk anyway).
struct SignalSafeWriter {
  int fd = -1;
  char buf[16384];
  size_t len = 0;
  bool failed = false;

  void Flush() {
    size_t off = 0;
    while (off < len && !failed) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) {
        failed = true;
        break;
      }
      off += static_cast<size_t>(n);
    }
    len = 0;
  }
  void Append(const char* s, size_t n) {
    while (n > 0 && !failed) {
      if (len == sizeof(buf)) Flush();
      const size_t take = std::min(n, sizeof(buf) - len);
      std::memcpy(buf + len, s, take);
      len += take;
      s += take;
      n -= take;
    }
  }
  void Str(const char* s) { Append(s, std::strlen(s)); }
  void I64(int64_t value) {
    char digits[24];
    size_t n = 0;
    uint64_t magnitude;
    if (value < 0) {
      Append("-", 1);
      magnitude = static_cast<uint64_t>(-(value + 1)) + 1;
    } else {
      magnitude = static_cast<uint64_t>(value);
    }
    do {
      digits[n++] = static_cast<char>('0' + magnitude % 10);
      magnitude /= 10;
    } while (magnitude > 0);
    while (n > 0) Append(&digits[--n], 1);
  }
};

}  // namespace

const char* FlightCategoryName(FlightCategory category) {
  switch (category) {
    case FlightCategory::kServing:
      return "serving";
    case FlightCategory::kQueue:
      return "queue";
    case FlightCategory::kTrain:
      return "train";
    case FlightCategory::kCollective:
      return "collective";
    case FlightCategory::kFault:
      return "fault";
    case FlightCategory::kGeneral:
      return "general";
  }
  return "general";
}

bool IsValidFlightEventName(const std::string& name) {
  if (name.empty()) return false;
  int segments = 1;
  size_t segment_len = 0;
  for (const char c : name) {
    if (c == '.') {
      if (segment_len == 0) return false;  // Leading or doubled dot.
      ++segments;
      segment_len = 0;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
               c == '_') {
      ++segment_len;
    } else {
      return false;
    }
  }
  return segment_len > 0 && segments >= 2;
}

FlightRecorder::FlightRecorder(size_t events_per_thread)
    : capacity_(RoundUpToPowerOfTwo(std::max<size_t>(events_per_thread, 8))),
      mask_(capacity_ - 1),
      // ordering: relaxed — the counter only needs unique values; no other
      // state is published through it.
      instance_id_(
          g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {}

FlightRecorder::~FlightRecorder() {
  // Disarm the crash path if this recorder was the armed one, so a later
  // fault cannot dump through a dangling pointer.
  FlightRecorder* expected = this;
  // ordering: acq_rel — acquire pairs with EnableCrashDump's release;
  // release orders our teardown before observers of the cleared slot.
  if (g_crash_recorder.compare_exchange_strong(expected, nullptr,
                                               std::memory_order_acq_rel)) {
    SetFaultDumpHook(nullptr);
  }
}

int32_t FlightRecorder::InternName(const char* name) {
  CYQR_CHECK(name != nullptr);
  CYQR_CHECK(IsValidFlightEventName(name));
  // Fast path: already interned (every call site after the first).
  // ordering: acquire — pairs with the release store of name_count_ below
  // so names_[i] for i < count is visibly initialized.
  const int32_t count = name_count_.load(std::memory_order_acquire);
  for (int32_t i = 0; i < count; ++i) {
    // ordering: relaxed — entries below `count` were published by the
    // acquire load of name_count_ above.
    const char* existing = names_[i].load(std::memory_order_relaxed);
    if (existing != nullptr && std::strcmp(existing, name) == 0) return i;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Re-scan under the lock: another thread may have interned it since.
  // ordering: relaxed — mu_ serializes writers; the re-scan only needs the
  // latest value, which the lock acquisition already synchronized.
  const int32_t locked_count = name_count_.load(std::memory_order_relaxed);
  for (int32_t i = 0; i < locked_count; ++i) {
    // ordering: relaxed — publication is ordered by mu_ for this reader.
    const char* existing = names_[i].load(std::memory_order_relaxed);
    if (existing != nullptr && std::strcmp(existing, name) == 0) return i;
  }
  CYQR_CHECK(locked_count < kMaxNames);
  owned_names_.push_back(std::make_unique<std::string>(name));
  // ordering: relaxed — the release store of name_count_ below publishes
  // this entry to lock-free readers.
  names_[locked_count].store(owned_names_.back()->c_str(),
                             std::memory_order_relaxed);
  // ordering: release — publishes names_[locked_count] to the acquire load
  // in the fast path above and in the journal renderers.
  name_count_.store(locked_count + 1, std::memory_order_release);
  return locked_count;
}

FlightRecorder::ThreadRing* FlightRecorder::RingForThisThread() {
  // Per-thread cache of (recorder instance id -> ring). A vector, not a
  // single slot: a thread may record into several recorders (Global plus
  // test-local ones) and must not re-register on every alternation. The
  // ids are never reused, so entries for dead recorders can never be
  // revived by a lookalike address.
  thread_local std::vector<std::pair<uint64_t, ThreadRing*>> cache;
  for (const auto& entry : cache) {
    if (entry.first == instance_id_) return entry.second;
  }
  ThreadRing* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // ordering: relaxed — mu_ serializes registrations; the release store
    // below is what publishes to lock-free readers.
    const int32_t index = ring_count_.load(std::memory_order_relaxed);
    if (index < kMaxThreads) {
      owned_rings_.push_back(std::make_unique<ThreadRing>(capacity_));
      ring = owned_rings_.back().get();
      // ordering: relaxed — the release store of ring_count_ below
      // publishes this entry to snapshot readers.
      rings_[index].store(ring, std::memory_order_relaxed);
      // (Publishes rings_[index] and the ring's zero-initialized slots.)
      // ordering: release — pairs with the acquire load of ring_count_ in
      // Snapshot and the crash dumper.
      ring_count_.store(index + 1, std::memory_order_release);
    }
    // Table full: cache the nullptr too, so an over-subscribed thread
    // drops events cheaply instead of taking mu_ on every Record.
  }
  cache.emplace_back(instance_id_, ring);
  return ring;
}

void FlightRecorder::Record(FlightCategory category, int32_t name_id,
                            int64_t arg0, int64_t arg1) {
  ThreadRing* ring = RingForThisThread();
  if (ring == nullptr) return;  // Thread table full — drop, never block.
  const int64_t t_micros =
      static_cast<int64_t>(std::llround(birth_.ElapsedMicros()));
  const uint64_t meta = (static_cast<uint64_t>(category) << 32) |
                        static_cast<uint32_t>(name_id);
  // Seqlock publish (Boehm-style, every field individually atomic so a
  // concurrent reader races on values, never on bytes — TSan-clean):
  //   odd seq (write in progress) -> release fence -> fields -> even seq.
  // The even value encodes the ticket (2t+2), so a reader can tell "this
  // slot now holds a NEWER event" apart from "consistent read of ticket t".
  // ordering: relaxed — single writer; the fence below orders this store
  // before the field stores for readers.
  const uint64_t ticket = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[ticket & mask_];
  // ordering: relaxed — ordered before the field stores by the release
  // fence just below.
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  // ordering: release fence — orders the odd "in progress" marker before
  // the field stores; pairs with the reader's acquire fence.
  std::atomic_thread_fence(std::memory_order_release);
  // ordering: relaxed — the closing seq store publishes all fields at once.
  slot.t_micros.store(t_micros, std::memory_order_relaxed);
  slot.meta.store(meta, std::memory_order_relaxed);
  // ordering: relaxed — published with the fields above by the seq store.
  slot.arg0.store(arg0, std::memory_order_relaxed);
  slot.arg1.store(arg1, std::memory_order_relaxed);
  // ordering: release — publishes the fields; pairs with the reader's
  // first (acquire) load of seq.
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
  // ordering: release — a reader that observes head > t can read slot t's
  // completed publish.
  ring->head.store(ticket + 1, std::memory_order_release);
}

bool FlightRecorder::ReadSlot(const ThreadRing& ring, uint64_t ticket,
                              FlightEvent* out) const {
  const Slot& slot = ring.slots[ticket & mask_];
  const uint64_t want = 2 * ticket + 2;
  // ordering: acquire — pairs with the writer's closing release store; if
  // we see `want`, the field values of ticket `t` are visible.
  const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
  if (seq_before != want) return false;  // Overwritten or mid-write.
  // ordering: relaxed — bracketed by acquire above and fence+re-check below.
  const int64_t t_micros = slot.t_micros.load(std::memory_order_relaxed);
  const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
  // ordering: relaxed — same bracket as the two loads above.
  const int64_t arg0 = slot.arg0.load(std::memory_order_relaxed);
  const int64_t arg1 = slot.arg1.load(std::memory_order_relaxed);
  // ordering: acquire fence — orders the field loads before the re-check;
  // pairs with the writer's release fence after its odd store.
  std::atomic_thread_fence(std::memory_order_acquire);
  // ordering: relaxed — the fence above already orders this load after the
  // field loads.
  if (slot.seq.load(std::memory_order_relaxed) != want) return false;
  const uint32_t name_id = static_cast<uint32_t>(meta);
  const uint32_t category_raw = static_cast<uint32_t>(meta >> 32);
  out->t_micros = t_micros;
  out->category = category_raw <= static_cast<uint32_t>(FlightCategory::kGeneral)
                      ? static_cast<FlightCategory>(category_raw)
                      : FlightCategory::kGeneral;
  // ordering: acquire — pairs with the release store in InternName.
  const int32_t name_count = name_count_.load(std::memory_order_acquire);
  if (name_id < static_cast<uint32_t>(name_count)) {
    // ordering: relaxed — published by the acquire load of name_count_.
    out->name = names_[name_id].load(std::memory_order_relaxed);
  } else {
    out->name = "";
  }
  out->arg0 = arg0;
  out->arg1 = arg1;
  return true;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  // ordering: acquire — pairs with the release store in RingForThisThread;
  // rings_[i] for i < count is visibly initialized.
  const int32_t ring_count = ring_count_.load(std::memory_order_acquire);
  for (int32_t i = 0; i < ring_count; ++i) {
    // ordering: relaxed — published by the acquire load of ring_count_.
    const ThreadRing* ring = rings_[i].load(std::memory_order_relaxed);
    if (ring == nullptr) continue;
    // ordering: acquire — pairs with the writer's release store of head,
    // so every ticket below `head` has a completed publish to validate.
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t begin = head > capacity_ ? head - capacity_ : 0;
    for (uint64_t ticket = begin; ticket < head; ++ticket) {
      FlightEvent event;
      if (ReadSlot(*ring, ticket, &event)) {
        event.thread_index = i;
        events.push_back(event);
      }
      // else: the writer lapped us mid-read — drop the torn slot.
    }
  }
  // Per-ring collection is already in ticket (hence time) order; a stable
  // sort on the timestamp merges rings without reordering same-thread ties.
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     if (a.t_micros != b.t_micros)
                       return a.t_micros < b.t_micros;
                     return a.thread_index < b.thread_index;
                   });
  return events;
}

std::string FlightRecorder::JournalJson(size_t max_events) const {
  std::vector<FlightEvent> events = Snapshot();
  if (max_events > 0 && events.size() > max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(max_events));
  }
  std::string out;
  out.reserve(64 + events.size() * 96);
  out += "{\"version\":1,\"source\":\"snapshot\",\"recorded_total\":";
  out += std::to_string(events_recorded_total());
  out += ",\"dropped_total\":";
  out += std::to_string(events_dropped_total());
  out += ",\"thread_count\":";
  out += std::to_string(thread_count());
  out += ",\"events\":[";
  bool first = true;
  for (const FlightEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"t_us\":";
    out += std::to_string(event.t_micros);
    out += ",\"thread\":";
    out += std::to_string(event.thread_index);
    out += ",\"category\":\"";
    out += FlightCategoryName(event.category);
    out += "\",\"name\":\"";
    out += event.name;  // Validated charset: no JSON escaping needed.
    out += "\",\"arg0\":";
    out += std::to_string(event.arg0);
    out += ",\"arg1\":";
    out += std::to_string(event.arg1);
    out += "}";
  }
  out += "]}";
  return out;
}

Status FlightRecorder::WriteJournal(const std::string& path) const {
  return WriteStringToFileAtomic(path, JournalJson());
}

void FlightRecorder::EnableCrashDump(const std::string& path) {
  CYQR_CHECK(!path.empty());
  {
    std::lock_guard<std::mutex> lock(mu_);
    owned_crash_path_ = std::make_unique<std::string>(path);
    // ordering: release — the acquire load in WriteCrashDumpNow sees the
    // fully constructed path bytes.
    crash_dump_path_.store(owned_crash_path_->c_str(),
                           std::memory_order_release);
  }
  // ordering: release — pairs with the acquire load in the trampoline /
  // signal handler, publishing the armed recorder (path included).
  g_crash_recorder.store(this, std::memory_order_release);
  SetFaultDumpHook(&FaultDumpTrampoline);
  // Real-crash coverage: a segfault or abort leaves the same journal the
  // scripted drills do. sigaction outside the lock — installing handlers
  // is cheap but still a syscall, and nothing here needs mu_.
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &CrashSignalHandler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGSEGV, &action, nullptr);
  ::sigaction(SIGABRT, &action, nullptr);
}

void FlightRecorder::WriteCrashDumpNow(const char* source) {
  // ordering: acquire — pairs with the release store in EnableCrashDump.
  const char* path = crash_dump_path_.load(std::memory_order_acquire);
  if (path == nullptr) return;  // Not armed.
  // ordering: acq_rel — one dump at a time; a fault during the dump itself
  // must not recurse.
  if (g_dump_in_progress.exchange(true, std::memory_order_acq_rel)) return;

  // Everything below is async-signal-safe: fixed buffers, raw syscalls,
  // no allocation, no locks, no stdio. Same temp+rename discipline as
  // WriteStringToFileAtomic so a fault *during the dump* leaves any
  // previous journal intact.
  static char tmp_path[4096];
  const size_t path_len = std::strlen(path);
  if (path_len + sizeof(".crash.tmp") >= sizeof(tmp_path)) {
    // ordering: release — reopens the dump slot; pairs with the acq_rel
    // exchange above.
    g_dump_in_progress.store(false, std::memory_order_release);
    return;
  }
  std::memcpy(tmp_path, path, path_len);
  std::memcpy(tmp_path + path_len, ".crash.tmp", sizeof(".crash.tmp"));

  const int fd = ::open(tmp_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    // ordering: release — pairs with the acq_rel exchange above.
    g_dump_in_progress.store(false, std::memory_order_release);
    return;
  }

  static SignalSafeWriter writer;  // Static: signal stacks are precious.
  writer.fd = fd;
  writer.len = 0;
  writer.failed = false;
  writer.Str("{\"version\":1,\"source\":\"");
  writer.Str(source != nullptr ? source : "unknown");
  writer.Str("\",\"events\":[");

  // K-way merge of the per-thread rings by timestamp, streaming straight
  // to the fd — no O(total events) staging buffer. Each ring is already
  // time-ordered, so a cursor + peeked-event per ring suffices. The last
  // kCrashEventsPerRing events per ring bound the dump size.
  static constexpr uint64_t kCrashEventsPerRing = 1024;
  static uint64_t cursor[kMaxThreads];
  static uint64_t end[kMaxThreads];
  static FlightEvent peeked[kMaxThreads];
  static bool has_peek[kMaxThreads];

  // ordering: acquire — pairs with the release store in RingForThisThread.
  const int32_t ring_count = ring_count_.load(std::memory_order_acquire);
  for (int32_t i = 0; i < ring_count; ++i) {
    // ordering: relaxed — published by the acquire load of ring_count_.
    const ThreadRing* ring = rings_[i].load(std::memory_order_relaxed);
    if (ring == nullptr) {
      cursor[i] = end[i] = 0;
      has_peek[i] = false;
      continue;
    }
    // ordering: acquire — pairs with the writer's release store of head.
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t resident = std::min<uint64_t>(
        head, std::min<uint64_t>(capacity_, kCrashEventsPerRing));
    cursor[i] = head - resident;
    end[i] = head;
    has_peek[i] = false;
  }

  auto advance = [&](int32_t i) {
    has_peek[i] = false;
    // ordering: relaxed — already published via ring_count_'s acquire.
    const ThreadRing* ring = rings_[i].load(std::memory_order_relaxed);
    if (ring == nullptr) return;
    while (cursor[i] < end[i]) {
      if (ReadSlot(*ring, cursor[i], &peeked[i])) {
        peeked[i].thread_index = i;
        ++cursor[i];
        has_peek[i] = true;
        return;
      }
      ++cursor[i];  // Torn/overwritten slot: skip it.
    }
  };
  for (int32_t i = 0; i < ring_count; ++i) advance(i);

  bool first = true;
  for (;;) {
    int32_t best = -1;
    for (int32_t i = 0; i < ring_count; ++i) {
      if (has_peek[i] &&
          (best < 0 || peeked[i].t_micros < peeked[best].t_micros)) {
        best = i;
      }
    }
    if (best < 0) break;
    const FlightEvent& event = peeked[best];
    if (!first) writer.Str(",");
    first = false;
    writer.Str("{\"t_us\":");
    writer.I64(event.t_micros);
    writer.Str(",\"thread\":");
    writer.I64(event.thread_index);
    writer.Str(",\"category\":\"");
    writer.Str(FlightCategoryName(event.category));
    writer.Str("\",\"name\":\"");
    writer.Str(event.name);
    writer.Str("\",\"arg0\":");
    writer.I64(event.arg0);
    writer.Str(",\"arg1\":");
    writer.I64(event.arg1);
    writer.Str("}");
    advance(best);
  }
  writer.Str("]}");
  writer.Flush();
  const bool ok = !writer.failed;
  ::fsync(fd);
  ::close(fd);
  if (ok) ::rename(tmp_path, path);
  // ordering: release — pairs with the acq_rel exchange above; later
  // dumps see a finished file system state.
  g_dump_in_progress.store(false, std::memory_order_release);
}

int64_t FlightRecorder::events_recorded_total() const {
  int64_t total = 0;
  // ordering: acquire — pairs with the release store in RingForThisThread.
  const int32_t ring_count = ring_count_.load(std::memory_order_acquire);
  for (int32_t i = 0; i < ring_count; ++i) {
    // ordering: relaxed — published by the acquire load of ring_count_.
    const ThreadRing* ring = rings_[i].load(std::memory_order_relaxed);
    if (ring == nullptr) continue;
    // ordering: relaxed — stat snapshot; staleness is acceptable.
    total += static_cast<int64_t>(ring->head.load(std::memory_order_relaxed));
  }
  return total;
}

int64_t FlightRecorder::events_dropped_total() const {
  int64_t dropped = 0;
  // ordering: acquire — pairs with the release store in RingForThisThread.
  const int32_t ring_count = ring_count_.load(std::memory_order_acquire);
  for (int32_t i = 0; i < ring_count; ++i) {
    // ordering: relaxed — published by the acquire load of ring_count_.
    const ThreadRing* ring = rings_[i].load(std::memory_order_relaxed);
    if (ring == nullptr) continue;
    // ordering: relaxed — stat snapshot; staleness is acceptable.
    const uint64_t head = ring->head.load(std::memory_order_relaxed);
    if (head > capacity_) dropped += static_cast<int64_t>(head - capacity_);
  }
  return dropped;
}

int32_t FlightRecorder::thread_count() const {
  // ordering: acquire — pairs with the release store in RingForThisThread.
  return ring_count_.load(std::memory_order_acquire);
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked on purpose, like MetricsRegistry::Global(): threads may record
  // events during process teardown, after static destructors would have
  // run — a destructed global recorder would be a use-after-free trap.
  static FlightRecorder* const kGlobal =
      new FlightRecorder();  // NOLINT(cyqr-raw-owning-new)
  return *kGlobal;
}

}  // namespace cyqr
